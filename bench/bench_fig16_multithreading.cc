// Reproduces Figure 16: query throughput with multithreading (1..32
// threads) for SRS, E2LSHoS on cSSD x 4, and E2LSHoS on XLFDD x 12.
//
// E2LSHoS runs on the library's ShardedQueryEngine: one engine shard per
// thread, each on its own NVMe-style queue pair over the shared drives,
// each paying its own per-core interface submission cost (ChargedDevice).
// The query set is replicated once per shard so every shard processes the
// full set — the same per-thread workload the paper measures.
//
// Host caveat: the reproduction machine exposes a single core, so
// measured thread scaling flattens immediately (all shards time-share
// one core). We therefore report BOTH the measured numbers and the
// cost-model projection qps(T) = min(T * qps_1core, IOPS_total / N_IO),
// which is the shape the paper measures on a 32-core box: linear scaling
// until the storage IOPS ceiling, which only E2LSHoS-on-cSSD hits.
#include "common.h"

#include <thread>

#include "core/sharded_engine.h"
#include "util/clock.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  auto json = args.OpenJson();
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec),
                               args.queries ? args.queries : 128, 1);
  if (!w.ok()) return 1;

  const std::vector<uint32_t> threads = {1, 2, 4, 8, 16, 32};

  // --- Single-thread baselines.
  auto srs = baselines::Srs::Build(w->gen.base, {});
  if (!srs.ok()) return 1;
  const auto srs_batch = (*srs)->SearchBatch(w->gen.queries, 1);
  const double srs_qps1 = srs_batch.QueriesPerSecond();

  struct OsSetup {
    bench::StorageStack stack;
    std::unique_ptr<core::StorageIndex> index;
    storage::InterfaceKind iface;
    double qps1 = 0;
    double n_io = 0;
    double iops_total = 0;
  };
  // One sharded run: QPS plus the queue plumbing the engine resolved
  // ("native" per-shard device queues vs the QueueRouter shim) and the
  // per-shard read counts from the per-queue device counters — the
  // balance evidence behind the one-queue-pair-per-thread claim.
  struct ShardedRun {
    double qps = 0;
    const char* queue_mode = "direct";
    uint64_t shard_reads_min = 0;
    uint64_t shard_reads_max = 0;
    uint64_t shard_reads_total = 0;
  };
  // Shard the batch across `t` engines over the setup's shared drives;
  // per-shard queue pairs and interface cost come from the engine API.
  auto sharded_run = [&](OsSetup& s, uint32_t t) -> ShardedRun {
    core::ShardOptions sopts;
    sopts.num_shards = t;
    // Per-shard budgets stay at the paper's per-thread configuration
    // (32 contexts / 256 deep): total queue depth grows with cores.
    sopts.total_contexts = 32 * t;
    sopts.total_inflight_ios = 256 * t;
    sopts.wrap_shard_device = bench::ChargeWrapper(s.iface);
    core::ShardedQueryEngine engine(s.index.get(), &w->gen.base, sopts);

    // Replicate the query set per shard: every shard processes the full
    // set, matching the per-thread workload of the paper's measurement.
    data::Dataset replicated("rep", w->gen.queries.dim());
    replicated.Reserve(w->gen.queries.n() * t);
    for (uint32_t rep = 0; rep < t; ++rep) {
      for (uint64_t q = 0; q < w->gen.queries.n(); ++q) {
        replicated.Append(w->gen.queries.Row(q));
      }
    }
    auto batch = engine.SearchBatch(replicated, 1);
    ShardedRun run;
    run.qps = batch.ok() ? batch->QueriesPerSecond() : 0.0;
    run.queue_mode = engine.queue_mode();
    for (uint32_t shard = 0; shard < engine.num_shards(); ++shard) {
      const uint64_t reads =
          engine.shard_device(shard)->stats().reads_completed;
      run.shard_reads_min =
          shard == 0 ? reads : std::min(run.shard_reads_min, reads);
      run.shard_reads_max = std::max(run.shard_reads_max, reads);
      run.shard_reads_total += reads;
    }
    return run;
  };
  auto make_os = [&](storage::DeviceKind kind, uint32_t count,
                     storage::InterfaceKind iface) -> Result<OsSetup> {
    OsSetup s;
    s.iface = iface;
    E2_ASSIGN_OR_RETURN(s.stack, bench::MakeStack(kind, count, iface));
    // Build on the raw stripe set: each shard charges its own interface
    // cost, so the stack-level ChargedDevice must stay off the hot path.
    E2_ASSIGN_OR_RETURN(s.index, core::IndexBuilder::Build(
                                     w->gen.base, w->params, s.stack.raw.get()));
    core::ShardOptions one;
    one.num_shards = 1;
    one.total_contexts = 64;
    one.total_inflight_ios = 512;
    one.wrap_shard_device = bench::ChargeWrapper(iface);
    core::ShardedQueryEngine engine(s.index.get(), &w->gen.base, one);
    E2_ASSIGN_OR_RETURN(auto batch, engine.SearchBatch(w->gen.queries, 1));
    s.qps1 = batch.QueriesPerSecond();
    s.n_io = batch.MeanIos();
    s.iops_total = storage::GetDeviceModel(kind).ExpectedIops(128) * count;
    return s;
  };
  auto cssd = make_os(storage::DeviceKind::kCssd, 4,
                      storage::InterfaceKind::kIoUring);
  auto xlfdd = make_os(storage::DeviceKind::kXlfdd, 12,
                       storage::InterfaceKind::kXlfdd);
  if (!cssd.ok() || !xlfdd.ok()) return 1;

  // --- Measured multithreaded runs (threads share this host's core(s)).
  auto measure_threads = [&](uint32_t t, auto run_one) -> double {
    std::vector<std::thread> workers;
    const uint64_t t0 = util::NowNs();
    for (uint32_t i = 0; i < t; ++i) workers.emplace_back(run_one, i);
    for (auto& th : workers) th.join();
    const double secs = static_cast<double>(util::NowNs() - t0) / 1e9;
    return static_cast<double>(w->gen.queries.n()) * t / secs;
  };

  bench::PrintHeader(
      "Figure 16: query speed (QPS) with multithreading (" + name + ")",
      {"threads", "SRS meas", "SRS model", "E2LSHoS cSSDx4 meas",
       "cSSDx4 model", "E2LSHoS XLFDDx12 meas", "XLFDDx12 model"});

  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (const uint32_t t : threads) {
    // Measured SRS: each thread runs the full query set through the
    // shared index (Srs::Search is const and stateless across calls).
    const double srs_meas = measure_threads(
        t, [&](uint32_t) { (*srs)->SearchBatch(w->gen.queries, 1); });
    // Measured E2LSHoS: t engine shards via ShardedQueryEngine.
    const ShardedRun cssd_run = sharded_run(*cssd, t);
    const ShardedRun xlfdd_run = sharded_run(*xlfdd, t);
    const double cssd_meas = cssd_run.qps;
    const double xlfdd_meas = xlfdd_run.qps;

    // Model: linear in threads until the storage IOPS ceiling.
    const double srs_model = srs_qps1 * t;
    const double cssd_model =
        std::min(cssd->qps1 * t, cssd->iops_total / std::max(1.0, cssd->n_io));
    const double xlfdd_model = std::min(
        xlfdd->qps1 * t, xlfdd->iops_total / std::max(1.0, xlfdd->n_io));

    bench::PrintRow({std::to_string(t), bench::Fmt(srs_meas, 0),
                     bench::Fmt(srs_model, 0), bench::Fmt(cssd_meas, 0),
                     bench::Fmt(cssd_model, 0), bench::Fmt(xlfdd_meas, 0),
                     bench::Fmt(xlfdd_model, 0)});
    if (json != nullptr) {
      json->Write(util::JsonRow()
                      .Set("bench", "fig16")
                      .Set("dataset", name)
                      .Set("threads", t)
                      .Set("hw_threads", hw)
                      .Set("queue_mode", cssd_run.queue_mode)
                      .Set("srs_measured_qps", srs_meas)
                      .Set("srs_model_qps", srs_model)
                      .Set("cssd_measured_qps", cssd_meas)
                      .Set("cssd_model_qps", cssd_model)
                      .Set("cssd_shard_reads_min", cssd_run.shard_reads_min)
                      .Set("cssd_shard_reads_max", cssd_run.shard_reads_max)
                      .Set("cssd_shard_reads_total", cssd_run.shard_reads_total)
                      .Set("xlfdd_measured_qps", xlfdd_meas)
                      .Set("xlfdd_model_qps", xlfdd_model)
                      .Set("xlfdd_shard_reads_min", xlfdd_run.shard_reads_min)
                      .Set("xlfdd_shard_reads_max", xlfdd_run.shard_reads_max)
                      .Set("xlfdd_shard_reads_total",
                           xlfdd_run.shard_reads_total));
    }
    if (t == threads.back()) {
      std::printf(
          "\nQueue plumbing: %s (per-shard reads at %u threads: cSSDx4 "
          "min/max %llu/%llu, XLFDDx12 min/max %llu/%llu)\n",
          cssd_run.queue_mode, t,
          static_cast<unsigned long long>(cssd_run.shard_reads_min),
          static_cast<unsigned long long>(cssd_run.shard_reads_max),
          static_cast<unsigned long long>(xlfdd_run.shard_reads_min),
          static_cast<unsigned long long>(xlfdd_run.shard_reads_max));
    }
  }
  std::printf(
      "\nHost has %u hardware thread(s): measured columns flatten at that "
      "point.\nExpected shape (paper, 32-core host = the 'model' columns): "
      "all methods scale\nlinearly except E2LSHoS on cSSDs, which plateaus "
      "at the device IOPS ceiling;\nE2LSHoS on XLFDDs stays ~10x above SRS "
      "throughout.\n",
      hw);
  return 0;
}
