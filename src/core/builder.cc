#include "core/builder.h"

#include <algorithm>
#include <vector>

#include "util/crc32c.h"

namespace e2lshos::core {

namespace {

// (slot, hash32, id) triple used to group objects into buckets.
struct Entry {
  uint32_t slot;
  uint32_t hash32;
  uint32_t id;
};

// Streams the table region (written pair by pair in ascending address
// order) into per-512-byte-sector CRC32Cs without materializing the
// whole region: sectors may straddle (radius, l) pair boundaries when a
// table is smaller than a sector.
class SectorCrcAccumulator {
 public:
  void Append(const uint8_t* data, uint64_t len) {
    while (len > 0) {
      const uint64_t take =
          std::min<uint64_t>(len, storage::kSectorBytes - filled_);
      crc_ = util::Crc32cExtend(crc_, data, take);
      filled_ += static_cast<uint32_t>(take);
      data += take;
      len -= take;
      if (filled_ == storage::kSectorBytes) Flush();
    }
  }

  /// Pad the trailing partial sector with zeros (matching the zeroed
  /// table-to-bucket alignment gap on the device) and return the CRCs.
  std::vector<uint32_t> Finish() {
    if (filled_ != 0) {
      static constexpr uint8_t kZeros[64] = {};
      while (filled_ != 0) {
        const uint32_t take = std::min<uint32_t>(
            sizeof(kZeros), storage::kSectorBytes - filled_);
        crc_ = util::Crc32cExtend(crc_, kZeros, take);
        filled_ += take;
        if (filled_ == storage::kSectorBytes) Flush();
      }
    }
    return std::move(crcs_);
  }

 private:
  void Flush() {
    crcs_.push_back(crc_ ^ 0xFFFFFFFFu);
    crc_ = 0xFFFFFFFFu;
    filled_ = 0;
  }

  uint32_t crc_ = 0xFFFFFFFFu;
  uint32_t filled_ = 0;
  std::vector<uint32_t> crcs_;
};

}  // namespace

Result<std::unique_ptr<StorageIndex>> IndexBuilder::Build(
    const data::Dataset& base, const lsh::E2lshParams& params,
    storage::BlockDevice* device, const BuildOptions& options) {
  if (base.n() == 0) return Status::InvalidArgument("empty dataset");
  if (device == nullptr) return Status::InvalidArgument("null device");
  if (base.n() > (1ULL << 32)) {
    return Status::InvalidArgument("object ids limited to 32 bits");
  }
  if (options.block_bytes < kBlockHeaderBytes + kObjectInfoBytes) {
    return Status::InvalidArgument("block size too small");
  }
  if (options.block_bytes % device->io_alignment() != 0) {
    return Status::InvalidArgument(
        "block size " + std::to_string(options.block_bytes) +
        " is not a multiple of the device I/O alignment (" +
        std::to_string(device->io_alignment()) + ")");
  }

  auto index = std::make_unique<StorageIndex>();
  index->params_ = params;
  index->device_ = device;
  index->n_ = base.n();
  index->dim_ = base.dim();
  index->family_ = lsh::HashFamily(base.dim(), params);

  IndexLayout& layout = index->layout_;
  layout.num_radii = params.num_radii();
  layout.L = params.L;
  layout.block_bytes = options.block_bytes;
  layout.fp = options.table_bits > 0
                  ? lsh::FingerprintScheme{options.table_bits}
                  : lsh::FingerprintScheme::ForDatabaseSize(base.n());
  layout.table_base = 0;
  layout.bucket_base = layout.total_table_bytes();
  // Keep the bucket region block-aligned.
  layout.bucket_base =
      (layout.bucket_base + layout.block_bytes - 1) / layout.block_bytes *
      layout.block_bytes;

  E2_ASSIGN_OR_RETURN(const ObjectInfoCodec codec,
                      ObjectInfoCodec::Make(base.n(), layout.fp));
  layout.id_bits = codec.id_bits;

  const uint64_t slots = layout.slots_per_table();
  const uint32_t num_pairs = layout.num_radii * layout.L;
  index->bitmap_.assign((static_cast<uint64_t>(num_pairs) * slots + 63) / 64, 0);

  const uint32_t per_block = layout.objects_per_block();
  std::vector<Entry> entries(base.n());
  std::vector<uint64_t> table(slots);
  std::vector<uint8_t> block(layout.block_bytes);
  uint64_t next_block_idx = 0;  // bump allocator over the bucket region
  index->checksums_enabled_ = options.checksums;
  SectorCrcAccumulator table_crc;

  IndexSizes& sizes = index->sizes_;

  for (uint32_t r = 0; r < layout.num_radii; ++r) {
    for (uint32_t l = 0; l < layout.L; ++l) {
      const lsh::CompoundHash& g = index->family_.Get(r, l);
      for (uint64_t i = 0; i < base.n(); ++i) {
        const uint32_t h = g.Hash32(base.Row(i));
        entries[i] = {layout.fp.TableIndex(h), h, static_cast<uint32_t>(i)};
      }
      std::sort(entries.begin(), entries.end(),
                [](const Entry& a, const Entry& b) { return a.slot < b.slot; });

      std::fill(table.begin(), table.end(), 0);

      // Emit one chain per non-empty slot.
      uint64_t i = 0;
      while (i < entries.size()) {
        const uint32_t slot = entries[i].slot;
        uint64_t j = i;
        while (j < entries.size() && entries[j].slot == slot) ++j;
        const uint64_t count = j - i;

        const uint64_t blocks_needed = (count + per_block - 1) / per_block;
        const uint64_t first_block = next_block_idx;
        next_block_idx += blocks_needed;
        if (layout.BlockAddr(next_block_idx) > device->capacity()) {
          return Status::OutOfRange("device too small for index");
        }

        uint64_t remaining = count;
        uint64_t src = i;
        for (uint64_t b = 0; b < blocks_needed; ++b) {
          const uint16_t in_block =
              static_cast<uint16_t>(std::min<uint64_t>(remaining, per_block));
          BlockHeader hdr;
          hdr.count = in_block;
          hdr.next =
              (b + 1 < blocks_needed) ? layout.BlockAddr(first_block + b + 1) : 0;
          hdr.EncodeTo(block.data());
          uint8_t* dst = block.data() + kBlockHeaderBytes;
          for (uint16_t e = 0; e < in_block; ++e, ++src, dst += kObjectInfoBytes) {
            codec.Write(dst, entries[src].id,
                        layout.fp.Fingerprint(entries[src].hash32));
          }
          // Zero the tail so blocks are deterministic on storage.
          std::memset(dst, 0,
                      layout.block_bytes - kBlockHeaderBytes -
                          static_cast<size_t>(in_block) * kObjectInfoBytes);
          if (options.checksums) {
            StampBlockCrc(block.data(), layout.block_bytes);
          }
          E2_RETURN_NOT_OK(device->Write(layout.BlockAddr(first_block + b),
                                         block.data(), layout.block_bytes));
          remaining -= in_block;
        }

        table[slot] = layout.BlockAddr(first_block);
        const uint64_t bit = index->BitIndex(r, l, slot);
        index->bitmap_[bit >> 6] |= 1ULL << (bit & 63);
        ++sizes.nonempty_slots;
        sizes.total_entries += count;
        i = j;
      }

      // Write the table for this (radius, l) pair.
      E2_RETURN_NOT_OK(device->Write(layout.TableEntryAddr(r, l, 0),
                                     table.data(), static_cast<uint32_t>(slots * 8)));
      if (options.checksums) {
        table_crc.Append(reinterpret_cast<const uint8_t*>(table.data()),
                         slots * 8);
      }
    }
  }

  // Zero the table-to-bucket alignment gap so the image is deterministic
  // end to end and the last table sector's CRC (computed over zero
  // padding) matches what a widened read returns.
  if (layout.bucket_base > layout.total_table_bytes()) {
    const std::vector<uint8_t> gap(
        static_cast<size_t>(layout.bucket_base - layout.total_table_bytes()), 0);
    E2_RETURN_NOT_OK(device->Write(layout.total_table_bytes(), gap.data(),
                                   static_cast<uint32_t>(gap.size())));
  }
  if (options.checksums) index->table_crcs_ = table_crc.Finish();

  index->next_block_idx_ = next_block_idx;
  sizes.table_bytes = layout.total_table_bytes();
  sizes.bucket_bytes = next_block_idx * layout.block_bytes;
  // The image spans table region + alignment gap + bucket region; the
  // bare table_bytes + bucket_bytes sum undercounted whenever bucket_base
  // was rounded up, truncating the last blocks from saved images.
  sizes.storage_bytes = layout.bucket_base + sizes.bucket_bytes;
  sizes.dram_index_bytes = index->bitmap_.size() * 8 +
                           index->family_.MemoryBytes() +
                           index->table_crcs_.size() * 4;
  return index;
}

}  // namespace e2lshos::core
