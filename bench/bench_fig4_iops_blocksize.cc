// Reproduces Figure 4: the storage random-read performance (kIOPS)
// E2LSHoS needs to match in-memory SRS speed on SIFT, as a function of
// accuracy, for varying block size B (Eq. 13: 1/T_read >= N_IO / T_SRS).
#include "common.h"

#include "model/cost_model.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec), args.queries, 1);
  if (!w.ok()) return 1;
  auto index = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
  if (!index.ok()) return 1;

  const auto profile =
      bench::ProfileInMemoryIo(index->get(), *w, 1, bench::DefaultSFactors());
  const auto srs = bench::SweepSrs(*w, 1, bench::DefaultSrsFractions());

  bench::PrintHeader(
      "Figure 4: required kIOPS for SRS speeds vs accuracy, varying B (" +
          name + ")",
      {"overall ratio", "T_SRS us", "B=128", "B=512", "B=4K", "B=inf"});
  for (const auto& p : profile) {
    // SRS time at the same accuracy point (Eq. 13 denominator).
    const double t_srs = bench::QueryNsAtRatio(srs, p.ratio);
    auto req = [&](double n_io) {
      return model::RequiredIopsAsync(n_io, t_srs) / 1e3;
    };
    bench::PrintRow({bench::Fmt(p.ratio, 3), bench::Fmt(t_srs / 1e3, 1),
                     bench::Fmt(req(p.IoAt(32)), 1),
                     bench::Fmt(req(p.IoAt(128)), 1),
                     bench::Fmt(req(p.IoAt(512)), 1),
                     bench::Fmt(req(p.IoInf()), 1)});
  }
  std::printf(
      "\nExpected shape (paper): requirement rises toward high accuracy "
      "for finite B;\nat full scale the ceiling is a few hundred kIOPS — "
      "within a single cSSD's\nasync random-read performance (273 kIOPS), "
      "far beyond HDDs.\n");

  // --device file:/uring: the achieved side of Eq. 13 on this host's
  // storage — compare these against the required-kIOPS columns above to
  // see which accuracy targets the backend can actually sustain.
  if (!args.device.empty()) {
    const std::string path = args.EffectiveDevicePath("fig4");
    auto dev = bench::MakeRealDevice(args, path, 128ULL << 20);
    if (!dev.ok()) {
      std::fprintf(stderr, "measured-IOPS footer skipped: %s\n",
                   dev.status().ToString().c_str());
      return 0;
    }
    bench::PrintHeader("Achieved random-read kIOPS on " + (*dev)->name(),
                       {"block B", "QD 1", "QD 32", "QD 256"});
    for (const uint32_t block : {512u, 4096u}) {
      std::vector<std::string> row = {std::to_string(block)};
      for (const uint32_t depth : {1u, 32u, 256u}) {
        bench::IopsBenchOptions opt;
        opt.block_bytes = block;
        opt.queue_depth = depth;
        auto pt = bench::MeasureRandomReadIops(dev->get(), opt);
        row.push_back(pt.ok() ? bench::Fmt(pt->kiops, 1) : "-");
      }
      bench::PrintRow(row);
    }
    dev->reset();
    std::remove(path.c_str());
  }
  return 0;
}
