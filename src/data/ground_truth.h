// Exact nearest neighbors by brute force (multi-threaded), plus the
// paper's accuracy metric.
//
// Overall ratio (Sec. 3.2) for top-k ANNS:
//   (1/k) * sum_i ||o_i, q|| / ||o*_i, q||
// where o_i is the i-th returned neighbor and o*_i the exact i-th NN.
// 1.0 means exact; the paper's default target is 1.05.
#pragma once

#include <cstdint>
#include <vector>

#include "data/dataset.h"
#include "util/topk.h"

namespace e2lshos::data {

/// \brief Exact top-k results for a set of queries.
class GroundTruth {
 public:
  GroundTruth() = default;

  /// Compute exact top-k for every query (brute force, `threads` workers).
  static GroundTruth Compute(const Dataset& base, const Dataset& queries,
                             uint32_t k, uint32_t threads = 0);

  const std::vector<util::Neighbor>& ForQuery(uint64_t q) const { return exact_[q]; }
  uint32_t k() const { return k_; }
  uint64_t num_queries() const { return exact_.size(); }

  /// Overall ratio of one query's answer against the exact answer.
  /// `found` must be sorted by ascending distance. Missing results (fewer
  /// than k found) are penalized with the dataset-diameter ratio.
  double OverallRatio(uint64_t q, const std::vector<util::Neighbor>& found,
                      uint32_t k) const;

 private:
  uint32_t k_ = 0;
  std::vector<std::vector<util::Neighbor>> exact_;
};

/// \brief Mean overall ratio over all queries.
double MeanOverallRatio(const GroundTruth& gt,
                        const std::vector<std::vector<util::Neighbor>>& answers,
                        uint32_t k);

}  // namespace e2lshos::data
