// Epoch publication for live index mutation (RCU-flavored, reader-side
// wait-free after a single mutex-guarded pointer load).
//
// Writers (core::LiveUpdater) stage bucket-block mutations into
// copy-on-write device blocks plus DRAM-side overlay state, then
// atomically publish an immutable EpochState snapshot. Readers
// (core::QueryEngine) acquire the current snapshot once per micro-batch
// (SearchBatch) and consult only it for the duration of the batch:
//
//   * `overlay` redirects a bucket's chain head away from the on-device
//     hash-table entry (which is never rewritten while serving, keeping
//     the DRAM table-sector CRCs valid);
//   * `tombstones` and `n` replace the StorageIndex's own copies, which
//     stay frozen at their built/loaded values until a quiesced
//     LiveUpdater::Flush;
//   * `row_chunks` resolves coordinates of ids inserted after the base
//     dataset was frozen (ids >= base_rows).
//
// The publisher hands out shared_ptr<const EpochState> under a mutex:
// the lock is held only for the pointer copy, readers never block on a
// writer's staging work, and the acquire/release pair gives every
// published device write a happens-before edge to any reader that can
// observe its address — which is what makes the scheme TSan-clean on
// DRAM-backed devices.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace e2lshos::core {

/// \brief An immutable snapshot of every piece of mutable index state a
/// query needs. Published whole; never modified after publication.
struct EpochState {
  /// Publication sequence number (first published epoch is 1).
  uint64_t seq = 0;
  /// Effective object count: ids in [0, n) are addressable.
  uint64_t n = 0;
  /// Ids >= base_rows resolve through row_chunks; below it, through the
  /// base dataset the index was built on.
  uint64_t base_rows = 0;
  uint32_t dim = 0;
  uint32_t rows_per_chunk = 0;
  /// Stable per-chunk row storage for inserted coordinates (chunk i
  /// holds rows [i*rows_per_chunk, ...)). The chunks themselves are
  /// owned by the LiveUpdater and never reallocated; this vector is a
  /// snapshot of the chunk pointers taken at publication.
  std::shared_ptr<const std::vector<const float*>> row_chunks;
  /// Complete tombstone set as of this epoch (not a delta).
  std::shared_ptr<const std::unordered_set<uint32_t>> tombstones;
  /// StorageIndex::BucketKey -> current chain-head block address, for
  /// every bucket whose chain changed since the index was built/loaded.
  /// Values are never 0. A hit here replaces the table-entry read.
  std::shared_ptr<const std::unordered_map<uint64_t, uint64_t>> overlay;

  bool IsDeleted(uint32_t id) const {
    return tombstones != nullptr && !tombstones->empty() &&
           tombstones->count(id) > 0;
  }

  /// Coordinates of an inserted row; only valid for base_rows <= id < n.
  const float* RowPtr(uint64_t id) const {
    const uint64_t local = id - base_rows;
    return (*row_chunks)[local / rows_per_chunk] +
           (local % rows_per_chunk) * dim;
  }
};

/// \brief The single shared slot through which epochs flow from the one
/// writer to any number of readers. Owned by the StorageIndex and shared
/// by every WithDevice view of it, so sharded engines see the same
/// publications as the primary.
class EpochPublisher {
 public:
  /// nullptr until the first publication — readers then take the legacy
  /// path (index-resident tombstones/n, no overlay), byte for byte.
  std::shared_ptr<const EpochState> Acquire() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_;
  }

  void Publish(std::shared_ptr<const EpochState> state) {
    std::lock_guard<std::mutex> lock(mu_);
    state_ = std::move(state);
  }

  /// Sequence of the current epoch (0 before the first publication).
  uint64_t seq() const {
    std::lock_guard<std::mutex> lock(mu_);
    return state_ == nullptr ? 0 : state_->seq;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const EpochState> state_;
};

}  // namespace e2lshos::core
