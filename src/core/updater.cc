#include "core/updater.h"

#include <vector>

namespace e2lshos::core {

Status IndexUpdater::Insert(const data::Dataset& base, uint32_t id) {
  if (index_ == nullptr) return Status::InvalidArgument("null index");
  if (id >= base.n()) {
    return Status::InvalidArgument("dataset does not hold the inserted row yet");
  }
  const IndexLayout& layout = index_->layout_;
  E2_ASSIGN_OR_RETURN(const ObjectInfoCodec codec,
                      ObjectInfoCodec::MakeWithIdBits(layout.id_bits, layout.fp));
  if (id >= (1ULL << codec.id_bits)) {
    return Status::FailedPrecondition(
        "id exceeds the id space fixed at build time; rebuild the index");
  }

  storage::BlockDevice* device = index_->device_;
  const uint32_t per_block = layout.objects_per_block();
  std::vector<uint8_t> block(layout.block_bytes);
  const float* row = base.Row(id);

  for (uint32_t r = 0; r < layout.num_radii; ++r) {
    for (uint32_t l = 0; l < layout.L; ++l) {
      const uint32_t h = index_->family_.Get(r, l).Hash32(row);
      const uint32_t slot = layout.fp.TableIndex(h);
      const uint32_t fp = layout.fp.Fingerprint(h);
      const uint64_t table_addr = layout.TableEntryAddr(r, l, slot);

      uint64_t head = 0;
      if (index_->SlotNonEmpty(r, l, slot)) {
        E2_RETURN_NOT_OK(device->ReadSync(table_addr, &head, 8));
      }

      bool appended_in_place = false;
      if (head != 0) {
        // Try to extend the head block in place.
        E2_RETURN_NOT_OK(device->ReadSync(head, block.data(), layout.block_bytes));
        BlockHeader hdr = BlockHeader::DecodeFrom(block.data());
        if (hdr.count < per_block) {
          codec.Write(block.data() + kBlockHeaderBytes +
                          static_cast<size_t>(hdr.count) * kObjectInfoBytes,
                      id, fp);
          ++hdr.count;
          hdr.EncodeTo(block.data());
          E2_RETURN_NOT_OK(device->Write(head, block.data(), layout.block_bytes));
          bytes_written_ += layout.block_bytes;
          appended_in_place = true;
        }
      }

      if (!appended_in_place) {
        // Prepend a fresh head block pointing at the old head (0 if the
        // bucket was empty).
        const uint64_t new_block = index_->next_block_idx_++;
        const uint64_t new_addr = layout.BlockAddr(new_block);
        if (new_addr + layout.block_bytes > device->capacity()) {
          return Status::OutOfRange("device full; cannot grow the index");
        }
        BlockHeader hdr;
        hdr.next = head;
        hdr.count = 1;
        hdr.EncodeTo(block.data());
        codec.Write(block.data() + kBlockHeaderBytes, id, fp);
        std::memset(block.data() + kBlockHeaderBytes + kObjectInfoBytes, 0,
                    layout.block_bytes - kBlockHeaderBytes - kObjectInfoBytes);
        E2_RETURN_NOT_OK(device->Write(new_addr, block.data(), layout.block_bytes));
        E2_RETURN_NOT_OK(device->Write(table_addr, &new_addr, 8));
        bytes_written_ += layout.block_bytes + 8;
        index_->sizes_.bucket_bytes += layout.block_bytes;
        index_->sizes_.storage_bytes += layout.block_bytes;
        if (head == 0) {
          const uint64_t bit = index_->BitIndex(r, l, slot);
          index_->bitmap_[bit >> 6] |= 1ULL << (bit & 63);
          ++index_->sizes_.nonempty_slots;
        }
      }
      ++index_->sizes_.total_entries;
    }
  }
  // If the id was previously tombstoned, the insert re-activates it.
  index_->tombstones_.erase(id);
  // Grow the addressable range so the engine accepts the new id.
  if (id >= index_->n_) index_->n_ = id + 1;
  ++inserts_;
  return Status::OK();
}

Status IndexUpdater::Remove(uint32_t id) {
  if (index_ == nullptr) return Status::InvalidArgument("null index");
  index_->tombstones_.insert(id);
  return Status::OK();
}

Status IndexUpdater::Restore(uint32_t id) {
  if (index_ == nullptr) return Status::InvalidArgument("null index");
  index_->tombstones_.erase(id);
  return Status::OK();
}

}  // namespace e2lshos::core
