// Unit tests for src/util: RNG determinism, stats, histograms, math
// helpers, aligned buffers, thread pool, top-k, distances.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "util/aligned_buffer.h"
#include "util/clock.h"
#include "util/distance.h"
#include "util/jsonl.h"
#include "util/mathutil.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/topk.h"

namespace e2lshos {
namespace {

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::IoError("disk on fire");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kIoError);
  EXPECT_NE(st.ToString().find("disk on fire"), std::string::npos);
}

TEST(Result, HoldsValueOrStatus) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad(Status::NotFound("nope"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(Rng, DeterministicForSameSeed) {
  util::Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(Rng, DifferentSeedsDiffer) {
  util::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.NextU64() == b.NextU64();
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformBoundsRespected) {
  util::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(2.0, 5.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, NextU64BelowInRangeAndCoversValues) {
  util::Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t v = rng.NextU64Below(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, GaussianMomentsAreStandardNormal) {
  util::Rng rng(11);
  util::RunningStats st;
  for (int i = 0; i < 200000; ++i) st.Add(rng.Gaussian());
  EXPECT_NEAR(st.mean(), 0.0, 0.02);
  EXPECT_NEAR(st.stddev(), 1.0, 0.02);
}

TEST(Rng, ForkProducesIndependentStream) {
  util::Rng a(42);
  util::Rng child = a.Fork();
  EXPECT_NE(a.NextU64(), child.NextU64());
}

TEST(RunningStats, BasicMoments) {
  util::RunningStats st;
  for (const double v : {1.0, 2.0, 3.0, 4.0}) st.Add(v);
  EXPECT_EQ(st.count(), 4u);
  EXPECT_DOUBLE_EQ(st.mean(), 2.5);
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 4.0);
  EXPECT_NEAR(st.variance(), 5.0 / 3.0, 1e-12);
}

TEST(RunningStats, MergeMatchesCombined) {
  util::Rng rng(5);
  util::RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.Gaussian();
    (i % 2 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(LatencyHistogram, QuantilesBracketInsertedValues) {
  util::LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) h.Add(v * 1000);  // 1us..1ms
  EXPECT_EQ(h.count(), 1000u);
  const uint64_t p50 = h.Quantile(0.5);
  EXPECT_GT(p50, 400000u);
  EXPECT_LT(p50, 620000u);
  EXPECT_GE(h.Quantile(0.99), 950000u);
  EXPECT_LE(h.min(), 1000u);
  EXPECT_GE(h.max(), 1000000u);
}

TEST(LatencyHistogram, MergeAddsCounts) {
  util::LatencyHistogram a, b;
  a.Add(100);
  b.Add(200);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(LatencyHistogram, QuantilesMatchSortedVectorOracle) {
  // Random samples over five decades; every reported quantile must land
  // within the histogram's relative-error budget of the exact
  // (nearest-rank) answer computed from the sorted sample.
  util::Rng rng(77);
  util::LatencyHistogram h;
  std::vector<uint64_t> oracle;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform in [1us, 100ms): stresses many power-of-two ranges.
    const double exponent = rng.Uniform(3.0, 8.0);
    const uint64_t v = static_cast<uint64_t>(std::pow(10.0, exponent));
    h.Add(v);
    oracle.push_back(v);
  }
  std::sort(oracle.begin(), oracle.end());
  for (const double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    const uint64_t exact =
        oracle[static_cast<size_t>(q * static_cast<double>(oracle.size() - 1))];
    const uint64_t got = h.Quantile(q);
    // Bucket upper-bound semantics: got >= the exact value's bucket
    // lower bound, and within ~2 sub-bucket widths (~3.2%) above it.
    EXPECT_GE(got, exact - exact / 32) << "q=" << q;
    EXPECT_LE(got, exact + exact / 16 + 1) << "q=" << q;
  }
  // The extreme quantile brackets the recorded maximum from above,
  // within one sub-bucket width (upper-bound bucket semantics).
  EXPECT_GE(h.Quantile(1.0), h.max());
  EXPECT_LE(h.Quantile(1.0), h.max() + h.max() / 32 + 1);
}

TEST(LatencyHistogram, BucketBoundaryValues) {
  // Values at and around power-of-two range boundaries must round-trip
  // through Index/UpperBound without under-reporting: the quantile of a
  // single-value histogram is an upper bound of the value within one
  // sub-bucket width.
  for (const uint64_t v :
       {1ULL, 63ULL, 64ULL, 65ULL, 127ULL, 128ULL, 129ULL, 4095ULL, 4096ULL,
        4097ULL, (1ULL << 20) - 1, 1ULL << 20, (1ULL << 20) + 1,
        (1ULL << 40) - 1, 1ULL << 40}) {
    util::LatencyHistogram h;
    h.Add(v);
    const uint64_t got = h.Quantile(0.5);
    EXPECT_GE(got, v) << "v=" << v;
    EXPECT_LE(got, v + v / 32 + 1) << "v=" << v;
  }
}

TEST(LatencyHistogram, OverflowBucketHoldsHugeValues) {
  // Values near UINT64_MAX land in the histogram's topmost bucket
  // without indexing out of bounds, and keep quantile monotonicity.
  util::LatencyHistogram h;
  h.Add(1000);
  h.Add(std::numeric_limits<uint64_t>::max());
  h.Add(std::numeric_limits<uint64_t>::max() - 1);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), std::numeric_limits<uint64_t>::max());
  EXPECT_LE(h.Quantile(0.0), h.Quantile(0.9));
  EXPECT_GT(h.Quantile(0.9), 1ULL << 62);
}

TEST(LatencyRecorder, MergeOfPerShardRecordersMatchesCombined) {
  // Per-shard recorders merged must report the same quantiles and count
  // as one recorder fed every sample (shards share wall-clock epochs).
  util::Rng rng(99);
  util::LatencyRecorder shard0, shard1, combined;
  const uint64_t base_now = 1000000000ULL;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t lat = 1000 + rng.NextU64Below(1000000);
    const uint64_t now = base_now + static_cast<uint64_t>(i) * 100000;
    (i % 2 ? shard0 : shard1).Record(lat, now);
    combined.Record(lat, now);
  }
  shard0.Merge(shard1);
  EXPECT_EQ(shard0.count(), combined.count());
  EXPECT_EQ(shard0.p50_ns(), combined.p50_ns());
  EXPECT_EQ(shard0.p95_ns(), combined.p95_ns());
  EXPECT_EQ(shard0.p99_ns(), combined.p99_ns());
  EXPECT_EQ(shard0.max_ns(), combined.max_ns());
  EXPECT_DOUBLE_EQ(shard0.mean_ns(), combined.mean_ns());
  const uint64_t now = base_now + 5000ULL * 100000;
  EXPECT_NEAR(shard0.SustainedQps(now), combined.SustainedQps(now), 1e-9);
}

TEST(SlidingWindowRate, ReportsRateOverWindowAndForgetsOldTraffic) {
  util::SlidingWindowRate rate(/*window_ns=*/1000000000ULL, /*slots=*/10);
  const uint64_t t0 = 5000000000ULL;
  // 1000 events over one second -> ~1000/s.
  for (int i = 0; i < 1000; ++i) {
    rate.Record(t0 + static_cast<uint64_t>(i) * 1000000);
  }
  const double qps = rate.RatePerSec(t0 + 1000000000ULL);
  EXPECT_GT(qps, 800.0);
  EXPECT_LT(qps, 1250.0);
  // Ten seconds later the window has aged out entirely.
  EXPECT_EQ(rate.RatePerSec(t0 + 11000000000ULL), 0.0);
}

TEST(SlidingWindowRate, FreshRecorderUsesElapsedTimeNotFullWindow) {
  util::SlidingWindowRate rate(1000000000ULL, 10);
  const uint64_t t0 = 7000000000ULL;
  // 100 events in 100 ms: a full-window denominator would report 100/s;
  // the elapsed-time clamp reports ~1000/s.
  for (int i = 0; i < 100; ++i) {
    rate.Record(t0 + static_cast<uint64_t>(i) * 1000000);
  }
  const double qps = rate.RatePerSec(t0 + 100000000ULL);
  EXPECT_GT(qps, 700.0);
  EXPECT_LT(qps, 1300.0);
}

TEST(Jsonl, RowRoundTripsThroughWriterAndParser) {
  const std::string path = ::testing::TempDir() + "/e2_jsonl_roundtrip.jsonl";
  {
    auto writer = util::JsonlWriter::Open(path);
    ASSERT_TRUE(writer.ok());
    util::JsonRow row;
    row.Set("bench", "streaming_serving")
        .Set("dataset", std::string("weird \"name\"\twith\\escapes"))
        .Set("offered_qps", 12345.678)
        .Set("p99_ns", static_cast<uint64_t>(987654321ULL))
        .Set("shards", static_cast<uint32_t>(4));
    (*writer)->Write(row);
  }
  std::FILE* f = std::fopen(path.c_str(), "r");
  ASSERT_NE(f, nullptr);
  char line[512];
  ASSERT_NE(std::fgets(line, sizeof(line), f), nullptr);
  std::fclose(f);
  std::remove(path.c_str());

  auto parsed = util::ParseJsonRow(line);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->at("bench"), "streaming_serving");
  EXPECT_EQ(parsed->at("dataset"), "weird \"name\"\twith\\escapes");
  EXPECT_NEAR(std::stod(parsed->at("offered_qps")), 12345.678, 1e-6);
  EXPECT_EQ(parsed->at("p99_ns"), "987654321");
  EXPECT_EQ(parsed->at("shards"), "4");
}

TEST(Jsonl, ParserRejectsMalformedRows) {
  EXPECT_FALSE(util::ParseJsonRow("not json").ok());
  EXPECT_FALSE(util::ParseJsonRow("{\"a\":1").ok());
  EXPECT_FALSE(util::ParseJsonRow("{\"a\":{\"nested\":1}}").ok());
  // Malformed \u escapes are a Status, not an uncaught throw.
  EXPECT_FALSE(util::ParseJsonRow("{\"a\":\"\\uZZZZ\"}").ok());
  EXPECT_FALSE(util::ParseJsonRow("{\"a\":\"\\u12\"}").ok());
  auto unicode = util::ParseJsonRow("{\"a\":\"\\u0041\"}");
  ASSERT_TRUE(unicode.ok());
  EXPECT_EQ(unicode->at("a"), "A");
  // Code points above 0xFF decode to UTF-8, not a truncated byte.
  auto delta = util::ParseJsonRow("{\"a\":\"\\u0394\"}");
  ASSERT_TRUE(delta.ok());
  EXPECT_EQ(delta->at("a"), "\xCE\x94");  // U+0394 GREEK CAPITAL DELTA
  // Surrogate pairs combine into one 4-byte code point; lone halves fail.
  auto emoji = util::ParseJsonRow("{\"a\":\"\\ud83d\\ude00\"}");
  ASSERT_TRUE(emoji.ok());
  EXPECT_EQ(emoji->at("a"), "\xF0\x9F\x98\x80");  // U+1F600
  EXPECT_FALSE(util::ParseJsonRow("{\"a\":\"\\ud83d\"}").ok());
  EXPECT_FALSE(util::ParseJsonRow("{\"a\":\"\\ude00\"}").ok());
  // Truncated values and trailing garbage are corrupt rows, not data.
  EXPECT_FALSE(util::ParseJsonRow("{\"a\":}").ok());
  EXPECT_FALSE(util::ParseJsonRow("{\"a\":1}garbage").ok());
  EXPECT_TRUE(util::ParseJsonRow("{\"a\":1}\n").ok());
  auto empty = util::ParseJsonRow("{}");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
}

TEST(PowerLawFit, RecoversExponent) {
  std::vector<double> xs, ys;
  for (double x = 1e3; x <= 1e7; x *= 10) {
    xs.push_back(x);
    ys.push_back(3.0 * std::pow(x, 0.42));
  }
  const auto fit = util::FitPowerLaw(xs, ys);
  EXPECT_NEAR(fit.exponent, 0.42, 1e-9);
  EXPECT_NEAR(fit.prefactor, 3.0, 1e-6);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(MathUtil, NormalCdfKnownValues) {
  EXPECT_NEAR(util::NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(util::NormalCdf(1.0), 0.8413447, 1e-6);
  EXPECT_NEAR(util::NormalCdf(-2.0), 0.0227501, 1e-6);
}

TEST(MathUtil, QuantileInvertsCdf) {
  for (const double p : {0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99}) {
    EXPECT_NEAR(util::NormalCdf(util::NormalQuantile(p)), p, 1e-8);
  }
}

TEST(MathUtil, ChiSquaredCdfKnownValues) {
  // chi^2 with 2 dof is Exp(1/2): CDF(x) = 1 - exp(-x/2).
  for (const double x : {0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(util::ChiSquaredCdf(x, 2), 1.0 - std::exp(-x / 2.0), 1e-10);
  }
  // Median of chi^2_k is ~ k(1-2/(9k))^3.
  const double med8 = 8.0 * std::pow(1.0 - 2.0 / 72.0, 3);
  EXPECT_NEAR(util::ChiSquaredCdf(med8, 8), 0.5, 0.01);
}

TEST(MathUtil, Pow2Helpers) {
  EXPECT_EQ(util::NextPow2(1), 1u);
  EXPECT_EQ(util::NextPow2(3), 4u);
  EXPECT_EQ(util::NextPow2(1024), 1024u);
  EXPECT_EQ(util::FloorLog2(1), 0u);
  EXPECT_EQ(util::FloorLog2(1023), 9u);
  EXPECT_EQ(util::FloorLog2(1024), 10u);
}

TEST(AlignedBuffer, AlignmentAndZeroing) {
  util::AlignedBuffer buf(1000, 512);
  ASSERT_NE(buf.data(), nullptr);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(buf.data()) % 512, 0u);
  EXPECT_EQ(buf.size(), 1000u);
  for (size_t i = 0; i < buf.size(); ++i) EXPECT_EQ(buf.data()[i], 0);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  util::AlignedBuffer a(512);
  uint8_t* p = a.data();
  util::AlignedBuffer b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.data(), nullptr);
}

TEST(Clock, BusySpinWaitsAtLeastRequested) {
  const uint64_t t0 = util::NowNs();
  util::BusySpinNs(200000);  // 200 us
  EXPECT_GE(util::NowNs() - t0, 200000u);
}

TEST(ThreadPool, RunsAllTasks) {
  util::ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) pool.Submit([&] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, FuturesReturnValues) {
  util::ThreadPool pool(2);
  auto f = pool.SubmitWithResult([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(TopK, KeepsSmallest) {
  util::TopK topk(3);
  for (uint32_t i = 0; i < 10; ++i) topk.Push(i, static_cast<float>(10 - i));
  const auto res = topk.SortedResults();
  ASSERT_EQ(res.size(), 3u);
  EXPECT_EQ(res[0].dist, 1.f);
  EXPECT_EQ(res[1].dist, 2.f);
  EXPECT_EQ(res[2].dist, 3.f);
}

TEST(TopK, WorstDistInfiniteUntilFull) {
  util::TopK topk(2);
  EXPECT_TRUE(std::isinf(topk.WorstDist()));
  topk.Push(0, 1.f);
  EXPECT_TRUE(std::isinf(topk.WorstDist()));
  topk.Push(1, 5.f);
  EXPECT_EQ(topk.WorstDist(), 5.f);
}

TEST(Distance, MatchesNaive) {
  util::Rng rng(3);
  for (const size_t d : {1u, 3u, 8u, 100u, 128u, 963u}) {
    std::vector<float> a(d), b(d);
    for (size_t i = 0; i < d; ++i) {
      a[i] = rng.NextFloat();
      b[i] = rng.NextFloat();
    }
    float naive = 0.f, dot = 0.f;
    for (size_t i = 0; i < d; ++i) {
      naive += (a[i] - b[i]) * (a[i] - b[i]);
      dot += a[i] * b[i];
    }
    EXPECT_NEAR(util::SquaredL2(a.data(), b.data(), d), naive, 1e-3);
    EXPECT_NEAR(util::Dot(a.data(), b.data(), d), dot, 1e-3);
  }
}

}  // namespace
}  // namespace e2lshos
