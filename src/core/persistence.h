// Index persistence: save/load the DRAM-resident metadata of a built
// E2LSHoS index so that an index written to a durable device (e.g. a
// FileDevice) can be reopened later without rebuilding.
//
// Only the small metadata is serialized: shape (n, dim), the E2LSH
// parameters, the layout, and the non-empty-slot bitmap. The hash
// functions are NOT stored — every hash function is derived
// deterministically from params.seed, so loading regenerates an
// identical family. The bucket data itself lives on the device.
#pragma once

#include <memory>
#include <string>

#include "core/storage_index.h"

namespace e2lshos::core {

/// Serialize the index metadata to `path` (binary, versioned).
Status SaveIndexMeta(const StorageIndex& index, const std::string& path);

/// Recreate a StorageIndex from metadata at `path`, serving bucket data
/// from `device` (which must hold the same byte image the index was
/// built into). The referenced dataset must be supplied to the engine at
/// query time exactly as at build time.
Result<std::unique_ptr<StorageIndex>> LoadIndexMeta(const std::string& path,
                                                    storage::BlockDevice* device);

}  // namespace e2lshos::core
