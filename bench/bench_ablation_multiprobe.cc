// Ablation (paper Sec. 2.4 / conclusion): Multi-Probe LSH on top of the
// E2LSH bucket structure. Probing T perturbed buckets per compound hash
// trades extra bucket reads for a smaller required L (index size). This
// sweep compares a full-size index (registry rho) with a half-exponent
// index driven at increasing probe counts.
#include "common.h"

#include "util/clock.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec), args.queries, 1);
  if (!w.ok()) return 1;

  // Small-index variant: roughly half the L of the registry tuning.
  lsh::E2lshConfig small_cfg = spec->lsh;
  small_cfg.rho = spec->lsh.rho * 0.6;
  small_cfg.x_max = w->gen.base.XMax();
  auto small_params =
      lsh::ComputeParams(w->gen.base.n(), w->gen.base.dim(), small_cfg);
  if (!small_params.ok()) return 1;

  auto full = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
  auto small = e2lsh::InMemoryE2lsh::Build(w->gen.base, *small_params);
  if (!full.ok() || !small.ok()) return 1;

  bench::PrintHeader(
      "Ablation: Multi-Probe LSH (" + name + "), full L=" +
          std::to_string(w->params.L) + " vs small L=" +
          std::to_string(small_params->L),
      {"config", "probes T", "ratio", "us/query", "index entries"});

  auto run = [&](e2lsh::InMemoryE2lsh* index, const char* label, uint32_t probes,
                 uint64_t entries) {
    std::vector<std::vector<util::Neighbor>> results(w->gen.queries.n());
    const uint64_t t0 = util::NowNs();
    for (uint64_t q = 0; q < w->gen.queries.n(); ++q) {
      results[q] = probes == 0
                       ? index->Search(w->gen.queries.Row(q), 1)
                       : index->SearchMultiProbe(w->gen.queries.Row(q), 1, probes);
    }
    const double us = static_cast<double>(util::NowNs() - t0) /
                      static_cast<double>(w->gen.queries.n()) / 1e3;
    bench::PrintRow({label, std::to_string(probes),
                     bench::Fmt(data::MeanOverallRatio(w->gt, results, 1), 3),
                     bench::Fmt(us, 1), std::to_string(entries)});
  };

  const uint64_t full_entries =
      w->n() * w->params.L * w->params.num_radii();
  const uint64_t small_entries =
      w->n() * small_params->L * small_params->num_radii();
  run(full->get(), "full-L plain", 0, full_entries);
  for (const uint32_t probes : {0u, 2u, 4u, 8u, 16u, 32u}) {
    run(small->get(), "small-L multiprobe", probes, small_entries);
  }
  std::printf(
      "\nExpected shape: the small index with enough probes approaches the "
      "full\nindex's accuracy at a fraction of the index entries — the "
      "near-linear-index\nregime the paper's conclusion expects to also "
      "benefit from fast storage.\n");
  return 0;
}
