#include "storage/retry_device.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <utility>

#include "util/rng.h"

namespace e2lshos::storage {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Transient: worth another attempt. ResourceExhausted is backpressure
/// (the caller already knows to poll and resubmit), OutOfRange and
/// InvalidArgument are caller bugs that will fail identically forever.
bool Retryable(StatusCode code) {
  return code == StatusCode::kIoError || code == StatusCode::kInternal ||
         code == StatusCode::kUnavailable;
}

}  // namespace

/// Per-endpoint retry state; every member guarded by mu_.
class RetryDevice::Lane {
 public:
  Lane(const Options& options, uint64_t rng_seed)
      : options_(options), rng_(rng_seed) {}

  Status Submit(const IoRequest& req, BlockDevice* inner) {
    const uint64_t now = NowNs();
    uint64_t ticket = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A recycled user_data while the previous request is still
      // tracked would make completion matching ambiguous; run the
      // newcomer without retry protection instead.
      if (tracked_.count(req.user_data) == 0) {
        Track t;
        t.req = req;
        t.attempts = 1;
        t.first_ns = now;
        t.ticket = ++ticket_seq_;
        ticket = t.ticket;
        tracked_.emplace(req.user_data, t);
      }
    }
    const Status st = inner->SubmitRead(req);
    if (st.ok()) return st;
    std::lock_guard<std::mutex> lock(mu_);
    // The request never reached the device: take the tracking back out
    // (ticket-checked so a concurrent harvest of a recycled user_data is
    // never clobbered), then decide whether to absorb the error.
    if (ticket != 0) {
      auto it = tracked_.find(req.user_data);
      if (it != tracked_.end() && it->second.ticket == ticket) {
        Track t = it->second;
        tracked_.erase(it);
        if (Retryable(st.code()) && CanRetry(t, now)) {
          t.last_code = st.code();
          Defer(std::move(t), now);
          return Status::OK();  // accepted; will resubmit from Poll
        }
        if (Retryable(st.code())) ++counters_.exhausted;
      }
    }
    return st;
  }

  size_t Poll(IoCompletion* out, size_t max, BlockDevice* inner) {
    ResubmitDue(inner);
    const size_t n = inner->PollCompletions(out, max);
    const uint64_t now = NowNs();
    std::lock_guard<std::mutex> lock(mu_);
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      IoCompletion c = out[i];
      auto it = tracked_.find(c.user_data);
      if (it != tracked_.end()) {
        Track t = it->second;
        tracked_.erase(it);
        if (c.code != StatusCode::kOk && Retryable(c.code) && CanRetry(t, now)) {
          t.last_code = c.code;
          Defer(std::move(t), now);
          continue;  // absorbed; the retry will complete it later
        }
        if (c.code != StatusCode::kOk && Retryable(c.code)) ++counters_.exhausted;
        // Report the whole span — backoffs included — so a retried read
        // looks like a slow read, not a fast one.
        c.latency_ns = std::max<uint64_t>(c.latency_ns, now - t.first_ns);
      }
      out[kept++] = c;
    }
    // Requests that died without reaching the device again.
    while (!ready_.empty() && kept < max) {
      out[kept++] = ready_.back();
      ready_.pop_back();
    }
    return kept;
  }

  uint32_t Parked() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint32_t>(deferred_.size() + ready_.size());
  }

  Counters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

  void ResetCounters() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_ = Counters{};
  }

 private:
  struct Track {
    IoRequest req;
    uint32_t attempts = 0;  ///< Submits that reached (or tried) the device.
    uint64_t first_ns = 0;
    uint64_t ticket = 0;
    StatusCode last_code = StatusCode::kIoError;
  };

  struct Deferred {
    Track track;
    uint64_t due_ns = 0;
  };

  /// Another attempt is allowed: attempts left, and a backoff'd resubmit
  /// could still land inside the per-request deadline.
  bool CanRetry(const Track& t, uint64_t now) const {
    if (t.attempts >= options_.max_attempts) return false;
    if (options_.deadline_usec == 0) return true;
    return now + BackoffNs(t.attempts, /*jittered=*/false) <
           t.first_ns + options_.deadline_usec * 1000;
  }

  uint64_t BackoffNs(uint32_t attempts_done, bool jittered) const {
    const uint32_t exp = attempts_done > 0 ? attempts_done - 1 : 0;
    double ns = static_cast<double>(options_.backoff_usec) * 1000.0 *
                static_cast<double>(uint64_t{1} << std::min(exp, 30u));
    if (jittered && options_.jitter > 0) {
      ns *= 1.0 + options_.jitter * (2.0 * rng_.NextDouble() - 1.0);
    }
    return static_cast<uint64_t>(std::max(ns, 0.0));
  }

  void Defer(Track&& t, uint64_t now) {
    Deferred d;
    d.due_ns = now + BackoffNs(t.attempts, /*jittered=*/true);
    d.track = std::move(t);
    deferred_.push_back(std::move(d));
  }

  void ResubmitDue(BlockDevice* inner) {
    const uint64_t now = NowNs();
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < deferred_.size();) {
      if (now < deferred_[i].due_ns) {
        ++i;
        continue;
      }
      Track t = deferred_[i].track;
      deferred_[i] = deferred_.back();
      deferred_.pop_back();
      ++t.attempts;
      ++counters_.retries;
      t.ticket = ++ticket_seq_;
      const bool collision = tracked_.count(t.req.user_data) != 0;
      if (!collision) tracked_.emplace(t.req.user_data, t);
      const Status st =
          collision ? Status::ResourceExhausted("tag busy")
                    : inner->SubmitRead(t.req);
      if (st.ok()) continue;
      if (!collision) tracked_.erase(t.req.user_data);
      if (st.code() == StatusCode::kResourceExhausted) {
        // Device queue full — backpressure, not a failed attempt. Put
        // the request back and try again next poll.
        --t.attempts;
        --counters_.retries;
        t.ticket = 0;
        deferred_.push_back({t, now});
        continue;
      }
      if (Retryable(st.code()) && CanRetry(t, now)) {
        t.last_code = st.code();
        Defer(std::move(t), now);
        continue;
      }
      if (Retryable(st.code())) ++counters_.exhausted;
      IoCompletion c;
      c.user_data = t.req.user_data;
      c.code = st.code();
      c.latency_ns = now - t.first_ns;
      ready_.push_back(c);
    }
  }

  const Options options_;
  mutable std::mutex mu_;
  mutable util::Rng rng_;
  uint64_t ticket_seq_ = 0;
  std::unordered_map<uint64_t, Track> tracked_;
  std::vector<Deferred> deferred_;
  std::vector<IoCompletion> ready_;
  Counters counters_;
};

/// One native queue: a private retry lane over one inner queue.
class RetryDevice::Queue : public BlockDevice {
 public:
  Queue(RetryDevice* parent, std::unique_ptr<BlockDevice> inner,
        uint64_t lane_seed)
      : parent_(parent),
        inner_(std::move(inner)),
        lane_(parent->options_, lane_seed) {}

  ~Queue() override { parent_->RetireQueue(this); }

  Status SubmitRead(const IoRequest& req) override {
    return lane_.Submit(req, inner_.get());
  }
  size_t PollCompletions(IoCompletion* out, size_t max) override {
    return lane_.Poll(out, max, inner_.get());
  }
  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    return inner_->Write(offset, data, length);
  }
  uint64_t capacity() const override { return inner_->capacity(); }
  uint32_t io_alignment() const override { return inner_->io_alignment(); }
  uint32_t outstanding() const override {
    return inner_->outstanding() + lane_.Parked();
  }
  std::string name() const override { return inner_->name() + " (retry)"; }
  DeviceStats stats() const override {
    DeviceStats s = inner_->stats();
    const Counters c = lane_.counters();
    s.retries += c.retries;
    s.retries_exhausted += c.exhausted;
    return s;
  }
  void ResetStats() override {
    inner_->ResetStats();
    lane_.ResetCounters();
  }
  Status RegisterBuffers(
      const std::vector<std::pair<void*, size_t>>& regions) override {
    return inner_->RegisterBuffers(regions);
  }

  Counters lane_counters() const { return lane_.counters(); }
  uint32_t lane_parked() const { return lane_.Parked(); }
  void ResetLaneCounters() { lane_.ResetCounters(); }

 private:
  RetryDevice* parent_;
  std::unique_ptr<BlockDevice> inner_;
  Lane lane_;
};

RetryDevice::RetryDevice(std::unique_ptr<BlockDevice> owned,
                         BlockDevice* inner, const Options& options)
    : owned_(std::move(owned)),
      inner_(inner),
      options_(options),
      lane_(new Lane(options, options.seed)) {}

RetryDevice::RetryDevice(BlockDevice* inner, const Options& options)
    : RetryDevice(nullptr, inner, options) {}

Result<std::unique_ptr<RetryDevice>> RetryDevice::Create(
    std::unique_ptr<BlockDevice> inner, const Options& options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("RetryDevice: null inner device");
  }
  if (options.max_attempts == 0) {
    return Status::InvalidArgument("RetryDevice: max_attempts must be >= 1");
  }
  BlockDevice* raw = inner.get();
  return std::unique_ptr<RetryDevice>(
      new RetryDevice(std::move(inner), raw, options));
}

RetryDevice::~RetryDevice() = default;

Status RetryDevice::SubmitRead(const IoRequest& req) {
  return lane_->Submit(req, inner_);
}

size_t RetryDevice::PollCompletions(IoCompletion* out, size_t max) {
  return lane_->Poll(out, max, inner_);
}

Status RetryDevice::Write(uint64_t offset, const void* data, uint32_t length) {
  return inner_->Write(offset, data, length);
}

uint32_t RetryDevice::outstanding() const {
  uint32_t parked = lane_->Parked();
  {
    std::lock_guard<std::mutex> lock(queues_mu_);
    for (const Queue* q : queues_) parked += q->lane_parked();
  }
  return inner_->outstanding() + parked;
}

DeviceStats RetryDevice::stats() const {
  DeviceStats s = inner_->stats();
  const Counters c = TotalCounters();
  s.retries += c.retries;
  s.retries_exhausted += c.exhausted;
  return s;
}

void RetryDevice::ResetStats() {
  inner_->ResetStats();
  lane_->ResetCounters();
  std::lock_guard<std::mutex> lock(queues_mu_);
  for (Queue* q : queues_) q->ResetLaneCounters();
  retired_ = Counters{};
}

uint32_t RetryDevice::max_queues() const {
  MultiQueueDevice* mq = inner_->multi_queue();
  return mq != nullptr ? mq->max_queues() : 0;
}

Result<std::unique_ptr<BlockDevice>> RetryDevice::CreateQueue(
    const QueueOptions& options) {
  MultiQueueDevice* mq = inner_->multi_queue();
  if (mq == nullptr) {
    return Status::Unimplemented("inner device has no native queues");
  }
  auto inner_queue = mq->CreateQueue(options);
  if (!inner_queue.ok()) return inner_queue.status();
  uint64_t lane_seed;
  {
    std::lock_guard<std::mutex> lock(queues_mu_);
    lane_seed = options_.seed ^ (0xD1B54A32D192ED03ULL * ++queue_seq_);
  }
  auto queue =
      std::make_unique<Queue>(this, std::move(inner_queue).value(), lane_seed);
  {
    std::lock_guard<std::mutex> lock(queues_mu_);
    queues_.push_back(queue.get());
  }
  return std::unique_ptr<BlockDevice>(std::move(queue));
}

void RetryDevice::RetireQueue(Queue* queue) {
  std::lock_guard<std::mutex> lock(queues_mu_);
  const Counters c = queue->lane_counters();
  retired_.retries += c.retries;
  retired_.exhausted += c.exhausted;
  for (auto it = queues_.begin(); it != queues_.end(); ++it) {
    if (*it == queue) {
      queues_.erase(it);
      break;
    }
  }
}

RetryDevice::Counters RetryDevice::TotalCounters() const {
  Counters total = lane_->counters();
  std::lock_guard<std::mutex> lock(queues_mu_);
  for (const Queue* q : queues_) {
    const Counters c = q->lane_counters();
    total.retries += c.retries;
    total.exhausted += c.exhausted;
  }
  total.retries += retired_.retries;
  total.exhausted += retired_.exhausted;
  return total;
}

uint64_t RetryDevice::retries() const { return TotalCounters().retries; }
uint64_t RetryDevice::retries_exhausted() const {
  return TotalCounters().exhausted;
}

}  // namespace e2lshos::storage
