// Demand-paged anonymous memory region used as the data store behind
// simulated devices. Untouched pages cost no physical RAM, so a device
// can declare terabyte capacities while only the written index consumes
// memory.
#pragma once

#include <cstdint>

#include "util/status.h"

namespace e2lshos::storage {

class SparseBacking {
 public:
  SparseBacking() = default;
  ~SparseBacking();

  SparseBacking(const SparseBacking&) = delete;
  SparseBacking& operator=(const SparseBacking&) = delete;
  SparseBacking(SparseBacking&& other) noexcept;
  SparseBacking& operator=(SparseBacking&& other) noexcept;

  /// Map `capacity` bytes of lazily-allocated zeroed memory.
  Status Map(uint64_t capacity);

  /// Release the mapping.
  void Unmap();

  uint8_t* data() { return base_; }
  const uint8_t* data() const { return base_; }
  uint64_t capacity() const { return capacity_; }
  bool mapped() const { return base_ != nullptr; }

 private:
  uint8_t* base_ = nullptr;
  uint64_t capacity_ = 0;
};

}  // namespace e2lshos::storage
