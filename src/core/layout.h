// On-storage index layout of E2LSHoS (paper Sec. 5.1-5.2, Fig. 9).
//
// The device address space holds, in order:
//
//   [ hash tables ][ bucket blocks ... ]
//
// * Hash tables: for each (radius r, compound hash l) there is a table of
//   2^u slots, each an 8-byte storage address of the first bucket block
//   (0 = empty). u is chosen slightly below log2(n).
//
// * Bucket blocks: 512-byte blocks (the minimum NVMe read unit) forming a
//   linked list per bucket:
//
//     +-----------------------------+------------------------------+
//     | header (16 B)               | object infos (5 B each, <=99)|
//     |  next-block address (8 B)   |  [ id | fingerprint ]        |
//     |  object count       (2 B)   |                              |
//     |  padding            (6 B)   |                              |
//     +-----------------------------+------------------------------+
//
//   The object id addresses the in-DRAM coordinates; the fingerprint is
//   the upper v-u bits of the 32-bit compound hash value, checked when
//   the block is read to reject table-index collisions.
//
// Integrity (format v3): header bytes [10,14) hold a CRC32C of the whole
// block computed with that field as zero; bytes [14,16) stay reserved.
// v2 images carry zeros there (EncodeTo's padding), so they load and
// serve unchanged — verification only runs when the index metadata says
// checksums were written. The table region has no spare bytes (slots are
// bare 8-byte addresses), so its CRCs are kept per 512-byte sector in
// DRAM and persisted with the metadata (storage_index.h).
#pragma once

#include <cstdint>
#include <cstring>

#include "lsh/fingerprint.h"
#include "util/crc32c.h"
#include "util/status.h"

namespace e2lshos::core {

/// Default block size: minimum read unit of a typical NVMe SSD.
inline constexpr uint32_t kDefaultBlockBytes = 512;
inline constexpr uint32_t kBlockHeaderBytes = 16;
inline constexpr uint32_t kObjectInfoBytes = 5;

/// Objects that fit in one block of a given size.
constexpr uint32_t ObjectsPerBlock(uint32_t block_bytes) {
  return (block_bytes - kBlockHeaderBytes) / kObjectInfoBytes;
}
static_assert(ObjectsPerBlock(kDefaultBlockBytes) == 99,
              "paper reports 99 objects per 512-byte block");

/// \brief Bucket block header codec.
struct BlockHeader {
  uint64_t next = 0;   ///< Storage address of next block in chain; 0 = end.
  uint16_t count = 0;  ///< Object infos in this block.

  void EncodeTo(uint8_t* block) const {
    std::memcpy(block, &next, 8);
    std::memcpy(block + 8, &count, 2);
    std::memset(block + 10, 0, 6);  // reserved / debug padding
  }
  static BlockHeader DecodeFrom(const uint8_t* block) {
    BlockHeader h;
    std::memcpy(&h.next, block, 8);
    std::memcpy(&h.count, block + 8, 2);
    return h;
  }
};

/// Byte offset of the per-block CRC32C inside the header (format v3).
inline constexpr uint32_t kBlockCrcOffset = 10;

/// CRC32C of a bucket block with the CRC field treated as zero, so the
/// stamp can live inside the block it protects.
inline uint32_t ComputeBlockCrc(const uint8_t* block, uint32_t block_bytes) {
  static constexpr uint8_t kZeros[4] = {0, 0, 0, 0};
  uint32_t crc = util::Crc32cExtend(0xFFFFFFFFu, block, kBlockCrcOffset);
  crc = util::Crc32cExtend(crc, kZeros, sizeof(kZeros));
  crc = util::Crc32cExtend(crc, block + kBlockCrcOffset + 4,
                           block_bytes - kBlockCrcOffset - 4);
  return crc ^ 0xFFFFFFFFu;
}

/// Stamp the block's CRC into header bytes [10,14). Call after the last
/// header/payload mutation — BlockHeader::EncodeTo zeroes the field.
inline void StampBlockCrc(uint8_t* block, uint32_t block_bytes) {
  const uint32_t crc = ComputeBlockCrc(block, block_bytes);
  std::memcpy(block + kBlockCrcOffset, &crc, 4);
}

/// True when the stored stamp matches the block's contents. Only
/// meaningful on images written with checksums (the caller gates on the
/// index metadata; a v2 image stores zeros here).
inline bool VerifyBlockCrc(const uint8_t* block, uint32_t block_bytes) {
  uint32_t stored = 0;
  std::memcpy(&stored, block + kBlockCrcOffset, 4);
  return stored == ComputeBlockCrc(block, block_bytes);
}

/// \brief 5-byte object info codec: id in the low id_bits, fingerprint
/// above it. id_bits + fingerprint bits must fit in 40.
struct ObjectInfoCodec {
  uint32_t id_bits = 0;
  uint32_t fp_bits = 0;

  static Result<ObjectInfoCodec> Make(uint64_t n, const lsh::FingerprintScheme& fp) {
    // One spare bit of id headroom so online inserts have room to grow
    // before a rebuild is required.
    const uint32_t id_bits = (n <= 2 ? 1 : util::FloorLog2(n - 1) + 1) + 1;
    return MakeWithIdBits(id_bits, fp);
  }

  /// Rebuild the codec from a fixed id width (recorded in the layout at
  /// build time; must not be re-derived from a post-insert n).
  static Result<ObjectInfoCodec> MakeWithIdBits(uint32_t id_bits,
                                                const lsh::FingerprintScheme& fp) {
    ObjectInfoCodec c;
    c.id_bits = id_bits;
    c.fp_bits = fp.fingerprint_bits();
    if (c.id_bits + c.fp_bits > 8 * kObjectInfoBytes) {
      return Status::InvalidArgument("object info exceeds 5 bytes");
    }
    return c;
  }

  uint64_t Encode(uint32_t id, uint32_t fingerprint) const {
    return static_cast<uint64_t>(id) |
           (static_cast<uint64_t>(fingerprint) << id_bits);
  }
  uint32_t DecodeId(uint64_t v) const {
    return static_cast<uint32_t>(v & ((1ULL << id_bits) - 1));
  }
  uint32_t DecodeFingerprint(uint64_t v) const {
    return static_cast<uint32_t>((v >> id_bits) & ((1ULL << fp_bits) - 1));
  }

  void Write(uint8_t* dst, uint32_t id, uint32_t fingerprint) const {
    const uint64_t v = Encode(id, fingerprint);
    std::memcpy(dst, &v, kObjectInfoBytes);  // little-endian, low 5 bytes
  }
  uint64_t Read(const uint8_t* src) const {
    uint64_t v = 0;
    std::memcpy(&v, src, kObjectInfoBytes);
    return v;
  }
};

/// \brief Address arithmetic for the whole index.
struct IndexLayout {
  uint32_t num_radii = 0;
  uint32_t L = 0;
  lsh::FingerprintScheme fp;
  uint32_t id_bits = 0;  ///< Fixed at build time; bounds insertable ids.
  uint32_t block_bytes = kDefaultBlockBytes;
  uint64_t table_base = 0;    ///< Byte offset of the first table.
  uint64_t bucket_base = 0;   ///< Byte offset of the bucket block region.

  uint64_t slots_per_table() const { return fp.table_slots(); }
  uint64_t table_bytes_per_pair() const { return slots_per_table() * 8; }
  uint64_t total_table_bytes() const {
    return static_cast<uint64_t>(num_radii) * L * table_bytes_per_pair();
  }

  /// Byte address of the table entry for (radius, l, slot).
  uint64_t TableEntryAddr(uint32_t radius_idx, uint32_t l, uint32_t slot) const {
    const uint64_t pair = static_cast<uint64_t>(radius_idx) * L + l;
    return table_base + pair * table_bytes_per_pair() + static_cast<uint64_t>(slot) * 8;
  }

  /// Byte address of bucket block number `idx` (0-based).
  uint64_t BlockAddr(uint64_t idx) const {
    return bucket_base + idx * block_bytes;
  }

  uint32_t objects_per_block() const { return ObjectsPerBlock(block_bytes); }
};

}  // namespace e2lshos::core
