// Small numeric helpers shared by the LSH math and the cost model.
#pragma once

#include <cmath>
#include <cstdint>

namespace e2lshos::util {

/// \brief Standard normal CDF Phi(x).
inline double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

/// \brief Standard normal PDF phi(x).
inline double NormalPdf(double x) {
  static const double kInvSqrt2Pi = 0.3989422804014327;
  return kInvSqrt2Pi * std::exp(-0.5 * x * x);
}

/// \brief Inverse standard normal CDF (Acklam's rational approximation,
/// ~1.15e-9 absolute error). Input p in (0,1).
double NormalQuantile(double p);

/// \brief Regularized lower incomplete gamma P(a, x) (series + continued
/// fraction). Used for chi-squared CDF in the SRS early-termination test.
double RegularizedGammaP(double a, double x);

/// \brief Chi-squared CDF with k degrees of freedom.
inline double ChiSquaredCdf(double x, double k) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(0.5 * k, 0.5 * x);
}

/// \brief Next power of two >= x (x >= 1).
inline uint64_t NextPow2(uint64_t x) {
  if (x <= 1) return 1;
  return 1ULL << (64 - __builtin_clzll(x - 1));
}

/// \brief floor(log2(x)) for x >= 1.
inline uint32_t FloorLog2(uint64_t x) {
  return static_cast<uint32_t>(63 - __builtin_clzll(x));
}

}  // namespace e2lshos::util
