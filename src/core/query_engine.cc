#include "core/query_engine.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>

#include "util/clock.h"
#include "util/distance.h"

namespace e2lshos::core {

QueryEngine::QueryEngine(const StorageIndex* index, const data::Dataset* base,
                         const EngineOptions& options)
    : index_(index), base_(base), options_(options) {
  if (options_.synchronous) {
    options_.num_contexts = 1;
    options_.max_inflight_ios = 1;
  }
  if (options_.num_contexts == 0) options_.num_contexts = 1;
  if (options_.max_inflight_ios == 0) options_.max_inflight_ios = 1;

  contexts_.resize(options_.num_contexts);
  for (auto& ctx : contexts_) {
    ctx.hashes.resize(index_->layout().L);
  }
  max_chain_blocks_ = static_cast<uint32_t>(
      index_->n() / index_->layout().objects_per_block() + 2);
  slots_.resize(options_.max_inflight_ios);
  free_slots_.reserve(slots_.size());
  // Table-entry reads are issued at the device's advertised granularity
  // (io_alignment probes 4096 on a 4Kn drive in direct mode); buffers
  // get the matching address alignment so direct submission never
  // bounces.
  table_read_bytes_ = std::max(storage::kSectorBytes,
                               index_->device()->io_alignment());
  // A block not aligned to the device unit is read as the widened span
  // containing it, which can start up to one unit before the block and
  // end up to one unit after: size every slot for the worst case.
  const uint32_t block_span =
      (index_->layout().block_bytes + 2 * table_read_bytes_ - 1) /
      table_read_bytes_ * table_read_bytes_;
  const uint32_t slot_bytes = std::max(block_span, table_read_bytes_);
  // One contiguous arena, sliced into per-slot buffers: slot_bytes is a
  // multiple of table_read_bytes_, so every slice keeps the device
  // alignment — and the whole thing registers with the device as a
  // single fixed-buffer region.
  arena_.Reset(static_cast<size_t>(slot_bytes) * slots_.size(),
               table_read_bytes_);
  for (uint32_t i = 0; i < slots_.size(); ++i) {
    slots_[i].buf = arena_.data() + static_cast<size_t>(i) * slot_bytes;
    free_slots_.push_back(i);
  }
  if (options_.register_fixed_buffers) {
    // Best-effort: Unimplemented (backend has no fixed buffers) and
    // FailedPrecondition (shared device already registered by another
    // engine) both mean "run unregistered", not failure.
    fixed_buffers_active_ =
        index_->device()
            ->RegisterBuffers({{arena_.data(), arena_.size()}})
            .ok();
  }
}

void QueryEngine::StartQuery(Context* ctx, int64_t query_idx, const float* q,
                             uint32_t k) {
  ctx->query_idx = query_idx;
  ctx->q = q;
  ctx->topk = std::make_unique<util::TopK>(k);
  ctx->checked.clear();
  ctx->radius_idx = 0;
  ctx->stats = QueryStats{};
  ctx->start_ns = util::NowNs();
  BeginRadius(ctx);
}

void QueryEngine::BeginRadius(Context* ctx) {
  const IndexLayout& layout = index_->layout();
  const uint64_t t0 = util::NowNs();
  index_->family().HashAll(ctx->radius_idx, ctx->q, ctx->hashes.data());
  compute_ns_ += util::NowNs() - t0;

  ctx->checked_in_radius = 0;
  ctx->draining = false;
  ++ctx->stats.radii_searched;

  const std::unordered_map<uint64_t, uint64_t>* overlay =
      (epoch_ != nullptr && epoch_->overlay != nullptr &&
       !epoch_->overlay->empty())
          ? epoch_->overlay.get()
          : nullptr;
  for (uint32_t l = 0; l < layout.L; ++l) {
    const uint32_t h = ctx->hashes[l];
    const uint32_t slot = layout.fp.TableIndex(h);
    if (overlay != nullptr) {
      // A live mutation redirected this bucket's chain head: go straight
      // to the block, skipping the table read (the on-device entry is
      // stale by design — tables are only rewritten at a quiesced
      // Flush). Checked before the bitmap: a bucket born live has no
      // bitmap bit yet.
      const auto it =
          overlay->find(index_->BucketKey(ctx->radius_idx, l, slot));
      if (it != overlay->end()) {
        ++ctx->stats.buckets_probed;
        PendingIssue p;
        p.addr = it->second;
        p.expected_fp = layout.fp.Fingerprint(h);
        p.is_table = false;
        p.chain_budget = max_chain_blocks_;
        ctx->to_issue.push_back(p);
        continue;
      }
    }
    if (!index_->SlotNonEmpty(ctx->radius_idx, l, slot)) continue;
    PendingIssue p;
    p.addr = layout.TableEntryAddr(ctx->radius_idx, l, slot);
    p.expected_fp = layout.fp.Fingerprint(h);
    p.is_table = true;
    ctx->to_issue.push_back(p);
  }
}

bool QueryEngine::IssueFrom(Context* ctx) {
  bool issued = false;
  while (!ctx->to_issue.empty() && inflight_ < options_.max_inflight_ios &&
         !free_slots_.empty()) {
    const PendingIssue p = ctx->to_issue.front();
    const uint32_t slot_idx = free_slots_.back();
    IoSlot& slot = slots_[slot_idx];

    storage::IoRequest req;
    uint32_t buf_offset = 0;
    if (p.is_table) {
      // A table entry is 8 bytes, but direct-I/O devices reject extents
      // smaller than their advertised alignment: read the whole aligned
      // unit containing the entry and remember where it sits inside the
      // buffer.
      const uint64_t aligned =
          p.addr & ~static_cast<uint64_t>(table_read_bytes_ - 1);
      buf_offset = static_cast<uint32_t>(p.addr - aligned);
      req.offset = aligned;
      req.length = table_read_bytes_;
    } else {
      // Bucket blocks are sized by the layout, not the device: on a
      // device whose alignment exceeds the block size (4Kn direct mode
      // over a 512-byte-block layout) widen the read to the aligned
      // span containing the block, exactly like table entries.
      const uint32_t block_bytes = index_->layout().block_bytes;
      if (p.addr % table_read_bytes_ == 0 &&
          block_bytes % table_read_bytes_ == 0) {
        req.offset = p.addr;
        req.length = block_bytes;
      } else {
        const uint64_t aligned =
            p.addr & ~static_cast<uint64_t>(table_read_bytes_ - 1);
        buf_offset = static_cast<uint32_t>(p.addr - aligned);
        req.offset = aligned;
        req.length = (buf_offset + block_bytes + table_read_bytes_ - 1) /
                     table_read_bytes_ * table_read_bytes_;
      }
    }
    req.buf = slot.buf;
    req.user_data = slot_idx;

    const Status st = index_->device()->SubmitRead(req);
    if (!st.ok()) {
      if (st.code() == StatusCode::kResourceExhausted) {
        // Device queue full: retry after draining completions.
        break;
      }
      // Hard submit error (I/O failure, bad address from a corrupted
      // chain pointer): drop the probe and carry on — a lost bucket
      // costs candidates, never progress.
      ctx->to_issue.pop_front();
      ++ctx->stats.io_errors;
      continue;
    }
    ctx->to_issue.pop_front();
    free_slots_.pop_back();
    slot.in_use = true;
    slot.ctx = static_cast<uint32_t>(ctx - contexts_.data());
    slot.expected_fp = p.expected_fp;
    slot.is_table = p.is_table;
    slot.chain_budget = p.chain_budget;
    slot.buf_offset = buf_offset;
    slot.addr = p.addr;
    ++ctx->pending_ios;
    ++inflight_;
    ++ctx->stats.ios;
    if (p.is_table) {
      ++ctx->stats.table_reads;
    } else {
      ++ctx->stats.bucket_block_reads;
    }
    issued = true;
  }
  return issued;
}

void QueryEngine::ProcessBucketBlock(Context* ctx, const IoSlot& slot) {
  const IndexLayout& layout = index_->layout();
  const ObjectInfoCodec& codec = codec_;

  const uint8_t* block = slot.buf + slot.buf_offset;
  const BlockHeader hdr = BlockHeader::DecodeFrom(block);
  const uint32_t per_block = layout.objects_per_block();
  // Clamp in the uint32_t domain: a uint16_t min would truncate
  // per_block when a large block layout holds > 65535 entries.
  const uint32_t count = std::min<uint32_t>(hdr.count, per_block);

  if (index_->checksums_enabled() &&
      !VerifyBlockCrc(block, layout.block_bytes)) {
    // Bit-rot (or an in-flight scramble) detected: never surface entries
    // from this block, and never trust its next pointer — the chain is
    // truncated here. The clamped count is the best available estimate
    // of what was lost.
    ++ctx->stats.corrupt_blocks;
    ctx->stats.dropped_candidates += count;
    return;
  }

  const uint64_t t0 = util::NowNs();
  const uint8_t* entry = block + kBlockHeaderBytes;
  for (uint32_t e = 0; e < count && !ctx->draining; ++e, entry += kObjectInfoBytes) {
    const uint64_t v = codec.Read(entry);
    if (layout.fp.fingerprint_bits() > 0 &&
        codec.DecodeFingerprint(v) != slot.expected_fp) {
      ++ctx->stats.fp_rejects;
      continue;
    }
    const uint32_t id = codec.DecodeId(v);
    if (id >= effective_n_) {
      // Corrupted entry (id beyond the database): never dereference it.
      ++ctx->stats.io_errors;
      continue;
    }
    if (!ctx->checked.insert(id).second) {
      ++ctx->stats.dup_skips;
      continue;
    }
    // With an epoch pinned, its tombstone set is the complete live
    // truth; the index's own copy is frozen at built/loaded state.
    const bool deleted =
        epoch_ != nullptr ? epoch_->IsDeleted(id) : index_->IsDeleted(id);
    if (deleted) {
      ++ctx->stats.tombstone_skips;
      continue;
    }
    const float* row = (epoch_ != nullptr && id >= epoch_->base_rows)
                           ? epoch_->RowPtr(id)
                           : base_->Row(id);
    const float dist = std::sqrt(util::SquaredL2(row, ctx->q, base_->dim()));
    ctx->topk->Push(id, dist);
    ++ctx->stats.candidates;
    if (++ctx->checked_in_radius >= index_->params().S) {
      ctx->draining = true;  // paper: stop after examining S candidates
    }
  }
  compute_ns_ += util::NowNs() - t0;

  if (!ctx->draining && hdr.next != 0) {
    if (slot.chain_budget == 0) {
      // A healthy chain can never exceed ceil(n / objects_per_block)
      // blocks; a longer one is a corrupted (possibly cyclic) pointer.
      ++ctx->stats.io_errors;
      return;
    }
    PendingIssue p;
    p.addr = hdr.next;
    p.expected_fp = slot.expected_fp;
    p.is_table = false;
    p.chain_budget = slot.chain_budget - 1;
    ctx->to_issue.push_back(p);
  }
}

void QueryEngine::HandleCompletion(const storage::IoCompletion& comp,
                                   BatchResult* out, const data::Dataset& queries,
                                   uint32_t k) {
  const uint32_t slot_idx = static_cast<uint32_t>(comp.user_data);
  IoSlot& slot = slots_[slot_idx];
  Context* ctx = &contexts_[slot.ctx];

  --ctx->pending_ios;
  --inflight_;
  slot.in_use = false;

  if (comp.code == StatusCode::kOk && ctx->query_idx >= 0) {
    if (slot.is_table) {
      bool sector_ok = true;
      if (index_->checksums_enabled()) {
        // Verify the 512-byte table sector holding the entry against its
        // DRAM-resident CRC before trusting the chain-head address.
        const uint64_t sec = index_->TableSectorIndex(slot.addr);
        const uint64_t sector_addr = index_->layout().table_base +
                                     sec * storage::kSectorBytes;
        const uint64_t read_base = slot.addr - slot.buf_offset;
        sector_ok = sec < index_->table_crcs().size() &&
                    index_->ComputeTableSectorCrc(
                        sec, slot.buf + (sector_addr - read_base)) ==
                        index_->table_crcs()[sec];
        if (!sector_ok) ++ctx->stats.corrupt_blocks;
      }
      uint64_t addr = 0;
      if (sector_ok) std::memcpy(&addr, slot.buf + slot.buf_offset, 8);
      if (addr != 0 && !ctx->draining) {
        ++ctx->stats.buckets_probed;
        PendingIssue p;
        p.addr = addr;
        p.expected_fp = slot.expected_fp;
        p.is_table = false;
        p.chain_budget = max_chain_blocks_;
        ctx->to_issue.push_back(p);
      }
    } else {
      ProcessBucketBlock(ctx, slot);
    }
  } else if (comp.code != StatusCode::kOk && ctx->query_idx >= 0) {
    ++ctx->stats.io_errors;
  }
  free_slots_.push_back(slot_idx);

  // When draining, queued probes for this radius are abandoned.
  if (ctx->draining) ctx->to_issue.clear();
  MaybeAdvance(ctx, out, queries, k);
}

void QueryEngine::MaybeAdvance(Context* ctx, BatchResult* out,
                               const data::Dataset& queries, uint32_t k) {
  const lsh::E2lshParams& params = index_->params();
  for (;;) {
    if (ctx->query_idx < 0) return;
    if (ctx->pending_ios > 0 || !ctx->to_issue.empty()) return;

    // Radius drained: terminal test of the (R,c)-NN ladder. A query is
    // answered once the k-th best distance is within c*R, or the ladder
    // is exhausted.
    const double radius = params.radii[ctx->radius_idx];
    const bool satisfied =
        ctx->topk->full() && ctx->topk->WorstDist() <= params.c * radius;
    const bool last = ctx->radius_idx + 1 >= params.num_radii();
    if (satisfied || last) {
      FinishQuery(ctx, out);
      if (next_query_ >= total_queries_) return;
      const int64_t idx = next_query_++;
      StartQuery(ctx, idx, queries.Row(idx), k);
      continue;  // the new query may begin with an all-empty radius
    }
    ++ctx->radius_idx;
    BeginRadius(ctx);
    // Loop: the next radius may also have zero non-empty probes.
  }
}

void QueryEngine::FinishQuery(Context* ctx, BatchResult* out) {
  ctx->stats.wall_ns = util::NowNs() - ctx->start_ns;
  ctx->stats.partial =
      ctx->stats.corrupt_blocks > 0 || ctx->stats.io_errors > 0;
  out->results[ctx->query_idx] = ctx->topk->SortedResults();
  out->stats[ctx->query_idx] = ctx->stats;
  ctx->query_idx = -1;
  ++completed_queries_;
}

Result<BatchResult> QueryEngine::SearchBatch(const data::Dataset& queries,
                                             uint32_t k) {
  if (queries.dim() != base_->dim()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be > 0");
  {
    auto codec = ObjectInfoCodec::MakeWithIdBits(index_->layout().id_bits,
                                                 index_->layout().fp);
    if (!codec.ok()) return codec.status();
    codec_ = codec.value();
  }
  // Pin the current epoch for the whole batch (the micro-batch boundary
  // of the live-update scheme — see core/epoch.h). Chain budgets follow
  // the epoch's n: live inserts lengthen chains.
  epoch_ = index_->epoch_publisher()->Acquire();
  effective_n_ = epoch_ != nullptr ? epoch_->n : index_->n();
  max_chain_blocks_ = static_cast<uint32_t>(
      effective_n_ / index_->layout().objects_per_block() + 2);

  BatchResult out;
  out.results.resize(queries.n());
  out.stats.resize(queries.n());
  next_query_ = 0;
  total_queries_ = static_cast<int64_t>(queries.n());
  completed_queries_ = 0;
  compute_ns_ = 0;
  inflight_ = 0;

  const uint64_t batch_start = util::NowNs();

  // Prime the contexts.
  for (auto& ctx : contexts_) {
    if (next_query_ >= total_queries_) break;
    const int64_t idx = next_query_++;
    StartQuery(&ctx, idx, queries.Row(idx), k);
    MaybeAdvance(&ctx, &out, queries, k);
  }

  std::vector<storage::IoCompletion> comps(64);
  uint32_t idle_spins = 0;
  while (completed_queries_ < total_queries_) {
    bool progressed = false;
    for (auto& ctx : contexts_) {
      if (ctx.query_idx < 0) continue;
      progressed |= IssueFrom(&ctx);
      // If every probe of the radius was dropped at submission (hard I/O
      // errors), no completion will arrive to advance this context — do
      // it here. No-op while I/Os are pending or queued.
      if (ctx.pending_ios == 0 && ctx.to_issue.empty()) {
        MaybeAdvance(&ctx, &out, queries, k);
        progressed = true;
      }
    }
    const size_t n = index_->device()->PollCompletions(comps.data(), comps.size());
    for (size_t i = 0; i < n; ++i) {
      HandleCompletion(comps[i], &out, queries, k);
    }
    progressed |= n > 0;
    if (progressed) {
      idle_spins = 0;
    } else {
#if defined(__x86_64__)
      __builtin_ia32_pause();
#endif
      // After a long dry spell, yield the core: when several engines
      // share fewer cores than threads, pure spin-polling would starve
      // whichever thread could actually make progress.
      if (++idle_spins >= 512) {
        idle_spins = 0;
        std::this_thread::yield();
      }
    }
  }

  out.wall_ns = util::NowNs() - batch_start;
  out.compute_ns = compute_ns_;
  epoch_.reset();  // let superseded epochs die between batches
  return out;
}

Result<std::vector<util::Neighbor>> QueryEngine::Search(const float* query,
                                                        uint32_t k,
                                                        QueryStats* stats) {
  data::Dataset one("single", base_->dim());
  one.Append(query);
  E2_ASSIGN_OR_RETURN(BatchResult batch, SearchBatch(one, k));
  if (stats != nullptr) *stats = batch.stats[0];
  return batch.results[0];
}

}  // namespace e2lshos::core
