#include "storage/memory_device.h"

#include <algorithm>
#include <cstring>

namespace e2lshos::storage {

/// \brief One native queue: a private completion inbox over the shared
/// DRAM backing. Reads complete at submission (the device is the
/// T_read = 0 limit), so "lock-free" here means free of any lock shared
/// with other queues — the queue's own mutex only guards its inbox
/// against stats() readers and is never contended on the hot path.
class MemoryDevice::Queue : public BlockDevice {
 public:
  Queue(MemoryDevice* parent, uint32_t id, uint32_t queue_capacity)
      : parent_(parent), id_(id), queue_capacity_(queue_capacity) {
    parent_->queue_registry_.Add(this);
  }
  ~Queue() override { parent_->queue_registry_.Remove(this); }

  Status SubmitRead(const IoRequest& req) override {
    if (req.buf == nullptr || req.length == 0) {
      return Status::InvalidArgument("null buffer or zero length");
    }
    if (!RangeInCapacity(req.offset, req.length, parent_->backing_.capacity())) {
      return Status::OutOfRange("read beyond device capacity");
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (completed_.size() >= queue_capacity_) {
      return Status::ResourceExhausted("queue full");
    }
    std::memcpy(req.buf, parent_->backing_.data() + req.offset, req.length);
    IoCompletion comp;
    comp.user_data = req.user_data;
    comp.code = StatusCode::kOk;
    comp.latency_ns = 0;
    completed_.push_back(comp);
    ++stats_.reads_submitted;
    ++stats_.reads_completed;
    stats_.bytes_read += req.length;
    stats_.read_latency.Add(0);
    return Status::OK();
  }

  size_t PollCompletions(IoCompletion* out, size_t max) override {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    while (n < max && !completed_.empty()) {
      out[n++] = completed_.front();
      completed_.pop_front();
    }
    return n;
  }

  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    return parent_->Write(offset, data, length);
  }
  uint64_t capacity() const override { return parent_->capacity(); }
  uint32_t outstanding() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint32_t>(completed_.size());
  }
  std::string name() const override {
    return parent_->name() + " nq" + std::to_string(id_);
  }
  DeviceStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DeviceStats{};
  }

 private:
  MemoryDevice* parent_;
  uint32_t id_;
  uint32_t queue_capacity_;
  mutable std::mutex mu_;
  std::deque<IoCompletion> completed_;
  DeviceStats stats_;
};

Result<std::unique_ptr<BlockDevice>> MemoryDevice::CreateQueue(
    const QueueOptions& options) {
  const uint32_t id = static_cast<uint32_t>(queue_registry_.size());
  return std::unique_ptr<BlockDevice>(std::make_unique<Queue>(
      this, id, std::max(1u, options.queue_capacity)));
}

Result<std::unique_ptr<MemoryDevice>> MemoryDevice::Create(uint64_t capacity,
                                                           uint32_t queue_capacity) {
  auto dev = std::unique_ptr<MemoryDevice>(new MemoryDevice(queue_capacity));
  E2_RETURN_NOT_OK(dev->backing_.Map(capacity));
  return dev;
}

Status MemoryDevice::SubmitRead(const IoRequest& req) {
  if (req.buf == nullptr || req.length == 0) {
    return Status::InvalidArgument("null buffer or zero length");
  }
  if (!RangeInCapacity(req.offset, req.length, backing_.capacity())) {
    return Status::OutOfRange("read beyond device capacity");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (completed_.size() >= queue_capacity_) {
    return Status::ResourceExhausted("completion queue full");
  }
  std::memcpy(req.buf, backing_.data() + req.offset, req.length);
  IoCompletion comp;
  comp.user_data = req.user_data;
  comp.code = StatusCode::kOk;
  comp.latency_ns = 0;
  completed_.push_back(comp);
  ++stats_.reads_submitted;
  ++stats_.reads_completed;
  stats_.bytes_read += req.length;
  stats_.read_latency.Add(0);
  return Status::OK();
}

size_t MemoryDevice::PollCompletions(IoCompletion* out, size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  while (n < max && !completed_.empty()) {
    out[n++] = completed_.front();
    completed_.pop_front();
  }
  return n;
}

Status MemoryDevice::Write(uint64_t offset, const void* data, uint32_t length) {
  if (!RangeInCapacity(offset, length, backing_.capacity())) {
    return Status::OutOfRange("write beyond device capacity");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::memcpy(backing_.data() + offset, data, length);
  stats_.bytes_written += length;
  return Status::OK();
}

uint32_t MemoryDevice::outstanding() const {
  uint32_t own;
  {
    std::lock_guard<std::mutex> lock(mu_);
    own = static_cast<uint32_t>(completed_.size());
  }
  return own + queue_registry_.SumOutstanding();
}

DeviceStats MemoryDevice::stats() const {
  DeviceStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  queue_registry_.MergeStats(&out);
  return out;
}

void MemoryDevice::ResetStats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DeviceStats{};
  }
  queue_registry_.ResetAll();
}

}  // namespace e2lshos::storage
