#include "core/live_updater.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "storage/multi_queue.h"
#include "util/aligned_buffer.h"

namespace e2lshos::core {

// ---------------------------------------------------------------------------
// StagedIo — a read-modify-write page cache over the device for one row.
//
// Pages are page_bytes_-sized, absolutely aligned (page_off % page == 0),
// so a flushed page can never straddle the private-block boundary that
// PublishLocked maintains. Reads materialize the covering pages from the
// device (through the updater's private read queue) and serve from them,
// which also makes a row's later (radius, l) pairs see blocks its earlier
// pairs wrote. Writes only dirty cached pages; nothing reaches the device
// until Flush() issues every dirty page as one WriteBatch burst.
// ---------------------------------------------------------------------------
class LiveUpdater::StagedIo {
 public:
  StagedIo(storage::BlockDevice* read_dev, storage::BlockDevice* write_dev,
           uint32_t page_bytes)
      : read_dev_(read_dev), write_dev_(write_dev), page_(page_bytes) {}

  Status Read(uint64_t offset, void* out, uint32_t length) {
    return Access(offset, out, length, /*write=*/false);
  }

  Status Write(uint64_t offset, const void* data, uint32_t length) {
    return Access(offset, const_cast<void*>(data), length, /*write=*/true);
  }

  /// Write every dirty page to the device in one burst; returns the
  /// bytes written. The cache is cleared either way — a partially failed
  /// burst leaves only writer-private bytes behind.
  Result<uint64_t> Flush() {
    std::vector<storage::WriteOp> ops;
    uint64_t bytes = 0;
    for (const auto& page : pages_) {
      if (!page->dirty) continue;
      ops.push_back({page->off, page->buf.data(), page->len});
      bytes += page->len;
    }
    std::sort(ops.begin(), ops.end(),
              [](const storage::WriteOp& a, const storage::WriteOp& b) {
                return a.offset < b.offset;
              });
    const Status st = write_dev_->WriteBatch(ops.data(), ops.size());
    pages_.clear();
    by_offset_.clear();
    E2_RETURN_NOT_OK(st);
    return bytes;
  }

 private:
  struct Page {
    uint64_t off = 0;
    uint32_t len = 0;  ///< page_ clamped at device capacity.
    bool dirty = false;
    util::AlignedBuffer buf;
  };

  Status Access(uint64_t offset, void* data, uint32_t length, bool write) {
    uint8_t* cursor = static_cast<uint8_t*>(data);
    uint64_t cur = offset;
    uint32_t left = length;
    while (left > 0) {
      E2_ASSIGN_OR_RETURN(Page * page, Materialize(cur / page_ * page_));
      const uint32_t in_page = static_cast<uint32_t>(cur - page->off);
      if (in_page >= page->len) {
        return Status::OutOfRange("staged I/O beyond device capacity");
      }
      const uint32_t take = std::min(left, page->len - in_page);
      if (write) {
        std::memcpy(page->buf.data() + in_page, cursor, take);
        page->dirty = true;
      } else {
        std::memcpy(cursor, page->buf.data() + in_page, take);
      }
      cursor += take;
      cur += take;
      left -= take;
    }
    return Status::OK();
  }

  Result<LiveUpdater::StagedIo::Page*> Materialize(uint64_t page_off) {
    auto it = by_offset_.find(page_off);
    if (it != by_offset_.end()) return pages_[it->second].get();
    const uint64_t cap = read_dev_->capacity();
    if (page_off >= cap) {
      return Status::OutOfRange("staged I/O beyond device capacity");
    }
    auto page = std::make_unique<Page>();
    page->off = page_off;
    page->len = static_cast<uint32_t>(std::min<uint64_t>(page_, cap - page_off));
    page->buf.Reset(page_, std::max<size_t>(page_, storage::kSectorBytes));
    E2_RETURN_NOT_OK(read_dev_->ReadSync(page_off, page->buf.data(), page->len));
    by_offset_.emplace(page_off, pages_.size());
    pages_.push_back(std::move(page));
    return pages_.back().get();
  }

  storage::BlockDevice* read_dev_;
  storage::BlockDevice* write_dev_;
  const uint32_t page_;
  std::vector<std::unique_ptr<Page>> pages_;
  std::unordered_map<uint64_t, size_t> by_offset_;
};

LiveUpdater::LiveUpdater(StorageIndex* index) : index_(index) {
  const IndexLayout& layout = index_->layout_;
  auto codec = ObjectInfoCodec::MakeWithIdBits(layout.id_bits, layout.fp);
  codec_ = *codec;  // layout came from a built index; cannot fail
  page_bytes_ = std::max(index_->device_->io_alignment(), storage::kSectorBytes);
  next_id_ = index_->n_;
  base_rows_ = index_->n_;
  next_block_ = index_->next_block_idx_;
  tombstones_ = index_->tombstones_;
  if (storage::MultiQueueDevice* mq = index_->device_->multi_queue()) {
    storage::QueueOptions opts;
    opts.queue_capacity = 8;
    opts.io_threads = 1;
    auto queue = mq->CreateQueue(opts);
    if (queue.ok()) read_queue_ = std::move(*queue);
  }
  // Round the private boundary up so no staging RMW window covers a
  // byte of the built image (tables included: for block 0 the window
  // can reach below bucket_base).
  const uint64_t built_end = layout.BlockAddr(next_block_);
  while (layout.BlockAddr(next_block_) / page_bytes_ * page_bytes_ < built_end) {
    ++next_block_;
  }
  private_floor_ = next_block_;
}

Result<uint32_t> LiveUpdater::Insert(const float* row) {
  if (row == nullptr) return Status::InvalidArgument("null row");
  std::lock_guard<std::mutex> lock(mu_);
  uint32_t id = 0;
  const uint64_t cursor = next_block_;
  if (Status st = StageInsertLocked(row, &id); !st.ok()) {
    next_block_ = cursor;  // nothing committed points at the new blocks
    return st;
  }
  PublishLocked();
  return id;
}

Result<uint32_t> LiveUpdater::InsertBatch(const float* rows, uint32_t count) {
  if (rows == nullptr || count == 0) {
    return Status::InvalidArgument("empty insert batch");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t dim = index_->dim_;
  uint32_t first = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t id = 0;
    const uint64_t cursor = next_block_;
    if (Status st = StageInsertLocked(rows + static_cast<size_t>(i) * dim, &id);
        !st.ok()) {
      next_block_ = cursor;
      // Rows staged before the failure stay inserted: publish them.
      if (i > 0) PublishLocked();
      return st;
    }
    if (i == 0) first = id;
  }
  PublishLocked();
  return first;
}

Status LiveUpdater::Remove(uint32_t id) {
  return RemoveBatch(&id, 1);
}

Status LiveUpdater::RemoveBatch(const uint32_t* ids, uint32_t count) {
  if (ids == nullptr && count > 0) {
    return Status::InvalidArgument("null id list");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t i = 0; i < count; ++i) {
    if (tombstones_.insert(ids[i]).second) tombstones_dirty_ = true;
    ++counters_.removes;
    ++counters_.pending_ops;
  }
  PublishLocked();
  return Status::OK();
}

Status LiveUpdater::Restore(uint32_t id) {
  return RestoreBatch(&id, 1);
}

Status LiveUpdater::RestoreBatch(const uint32_t* ids, uint32_t count) {
  if (ids == nullptr && count > 0) {
    return Status::InvalidArgument("null id list");
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (uint32_t i = 0; i < count; ++i) {
    if (tombstones_.erase(ids[i]) > 0) tombstones_dirty_ = true;
    ++counters_.restores;
    ++counters_.pending_ops;
  }
  PublishLocked();
  return Status::OK();
}

Status LiveUpdater::StageInsertLocked(const float* row, uint32_t* id_out) {
  const IndexLayout& layout = index_->layout_;
  storage::BlockDevice* device = index_->device_;
  if (next_id_ >= (1ULL << codec_.id_bits)) {
    return Status::FailedPrecondition(
        "id exceeds the id space fixed at build time; rebuild the index");
  }
  const uint32_t id = static_cast<uint32_t>(next_id_);
  const uint32_t per_block = layout.objects_per_block();
  const uint32_t block_bytes = layout.block_bytes;

  StagedIo io(read_queue_ != nullptr ? read_queue_.get() : device, device,
              page_bytes_);
  std::vector<uint8_t> block(block_bytes);
  // Row-local state, committed only when every pair succeeds.
  std::unordered_map<uint64_t, uint64_t> delta;
  uint64_t new_blocks = 0;
  uint64_t new_slots = 0;

  auto alloc_block = [&]() -> Result<uint64_t> {
    const uint64_t addr = layout.BlockAddr(next_block_);
    if (!storage::RangeInCapacity(addr, block_bytes, device->capacity())) {
      return Status::OutOfRange("device full; cannot grow the index");
    }
    ++next_block_;
    ++new_blocks;
    return addr;
  };

  for (uint32_t r = 0; r < layout.num_radii; ++r) {
    for (uint32_t l = 0; l < layout.L; ++l) {
      const uint32_t h = index_->family_.Get(r, l).Hash32(row);
      const uint32_t slot = layout.fp.TableIndex(h);
      const uint32_t fp = layout.fp.Fingerprint(h);
      const uint64_t key = index_->BucketKey(r, l, slot);

      uint64_t head = 0;
      if (auto dit = delta.find(key); dit != delta.end()) {
        head = dit->second;
      } else if (auto oit = overlay_.find(key); oit != overlay_.end()) {
        head = oit->second;
      } else if (index_->SlotNonEmpty(r, l, slot)) {
        E2_RETURN_NOT_OK(
            io.Read(layout.TableEntryAddr(r, l, slot), &head, sizeof(head)));
      }

      bool placed = false;
      if (head != 0) {
        E2_RETURN_NOT_OK(io.Read(head, block.data(), block_bytes));
        BlockHeader hdr = BlockHeader::DecodeFrom(block.data());
        const uint32_t count = std::min<uint32_t>(hdr.count, per_block);
        if (count < per_block) {
          codec_.Write(block.data() + kBlockHeaderBytes +
                           static_cast<size_t>(count) * kObjectInfoBytes,
                       id, fp);
          hdr.count = static_cast<uint16_t>(count + 1);
          hdr.EncodeTo(block.data());
          if (index_->checksums_enabled_) {
            StampBlockCrc(block.data(), block_bytes);
          }
          const uint64_t head_idx = (head - layout.bucket_base) / block_bytes;
          if (head_idx >= private_floor_) {
            // Writer-private head: append in place.
            E2_RETURN_NOT_OK(io.Write(head, block.data(), block_bytes));
          } else {
            // Published head: copy-on-write to a fresh private block.
            // The published block leaks until a rebuild.
            E2_ASSIGN_OR_RETURN(const uint64_t copy_addr, alloc_block());
            E2_RETURN_NOT_OK(io.Write(copy_addr, block.data(), block_bytes));
            delta[key] = copy_addr;
          }
          placed = true;
        }
      }
      if (!placed) {
        // Empty bucket or full head: prepend a fresh private block.
        E2_ASSIGN_OR_RETURN(const uint64_t new_addr, alloc_block());
        BlockHeader hdr;
        hdr.next = head;
        hdr.count = 1;
        hdr.EncodeTo(block.data());
        codec_.Write(block.data() + kBlockHeaderBytes, id, fp);
        std::memset(block.data() + kBlockHeaderBytes + kObjectInfoBytes, 0,
                    block_bytes - kBlockHeaderBytes - kObjectInfoBytes);
        if (index_->checksums_enabled_) {
          StampBlockCrc(block.data(), block_bytes);
        }
        E2_RETURN_NOT_OK(io.Write(new_addr, block.data(), block_bytes));
        delta[key] = new_addr;
        if (head == 0) ++new_slots;
      }
    }
  }

  // Durable before visible: the burst completes before any commit, so a
  // published overlay address always resolves to device bytes.
  E2_ASSIGN_OR_RETURN(const uint64_t flushed, io.Flush());

  for (const auto& [key, addr] : delta) overlay_[key] = addr;
  if (!delta.empty()) overlay_dirty_ = true;
  AppendRowLocked(row);
  if (tombstones_.erase(id) > 0) tombstones_dirty_ = true;
  staged_blocks_ += new_blocks;
  staged_new_slots_ += new_slots;
  staged_entries_ += static_cast<uint64_t>(layout.num_radii) * layout.L;
  counters_.staged_bytes += flushed;
  ++counters_.inserts;
  ++counters_.pending_ops;
  ++next_id_;
  *id_out = id;
  return Status::OK();
}

void LiveUpdater::AppendRowLocked(const float* row) {
  const uint32_t dim = index_->dim_;
  const uint64_t chunk = rows_ / kRowsPerChunk;
  if (chunk == row_chunks_.size()) {
    row_chunks_.push_back(
        std::make_unique<float[]>(static_cast<size_t>(kRowsPerChunk) * dim));
    rows_dirty_ = true;  // the chunk-pointer table grew
  }
  // Rows past the published n are unreferenced by any reader, so filling
  // the tail of a published chunk races with nothing.
  std::memcpy(
      row_chunks_[chunk].get() + (rows_ % kRowsPerChunk) * static_cast<size_t>(dim),
      row, sizeof(float) * dim);
  ++rows_;
}

void LiveUpdater::PublishLocked() {
  auto state = std::make_shared<EpochState>();
  state->seq = ++seq_;
  state->n = next_id_;
  state->base_rows = base_rows_;
  state->dim = index_->dim_;
  state->rows_per_chunk = kRowsPerChunk;
  if (rows_dirty_ || pub_chunks_ == nullptr) {
    auto chunks = std::make_shared<std::vector<const float*>>();
    chunks->reserve(row_chunks_.size());
    for (const auto& c : row_chunks_) chunks->push_back(c.get());
    pub_chunks_ = std::move(chunks);
    rows_dirty_ = false;
  }
  state->row_chunks = pub_chunks_;
  if (tombstones_dirty_ || pub_tombstones_ == nullptr) {
    pub_tombstones_ =
        std::make_shared<const std::unordered_set<uint32_t>>(tombstones_);
    tombstones_dirty_ = false;
  }
  state->tombstones = pub_tombstones_;
  if (overlay_dirty_ || pub_overlay_ == nullptr) {
    pub_overlay_ =
        std::make_shared<const std::unordered_map<uint64_t, uint64_t>>(overlay_);
    overlay_dirty_ = false;
  }
  state->overlay = pub_overlay_;
  index_->epoch_publisher_->Publish(std::move(state));
  ++counters_.epochs_published;
  counters_.pending_ops = 0;
  // Everything allocated so far is now reader-visible: round the private
  // boundary up past the last RMW window covering published bytes.
  const uint64_t pub_end = index_->layout_.BlockAddr(next_block_);
  while (index_->layout_.BlockAddr(next_block_) / page_bytes_ * page_bytes_ <
         pub_end) {
    ++next_block_;
  }
  private_floor_ = next_block_;
}

Status LiveUpdater::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  const IndexLayout& layout = index_->layout_;
  if (!overlay_.empty()) {
    StagedIo io(read_queue_ != nullptr ? read_queue_.get() : index_->device_,
                index_->device_, page_bytes_);
    std::unordered_set<uint64_t> dirty_sectors;
    const uint64_t slots = layout.slots_per_table();
    for (const auto& [key, addr] : overlay_) {
      const uint64_t pair = key / slots;
      const uint32_t slot = static_cast<uint32_t>(key % slots);
      const uint32_t r = static_cast<uint32_t>(pair / layout.L);
      const uint32_t l = static_cast<uint32_t>(pair % layout.L);
      const uint64_t table_addr = layout.TableEntryAddr(r, l, slot);
      E2_RETURN_NOT_OK(io.Write(table_addr, &addr, sizeof(addr)));
      index_->bitmap_[key >> 6] |= 1ULL << (key & 63);
      if (index_->checksums_enabled_) {
        dirty_sectors.insert(index_->TableSectorIndex(table_addr));
      }
    }
    E2_ASSIGN_OR_RETURN(const uint64_t flushed, io.Flush());
    counters_.staged_bytes += flushed;
    // Recompute the dirty table-sector CRCs from the device bytes (the
    // flush above made them current).
    for (const uint64_t sec : dirty_sectors) {
      uint8_t sector[storage::kSectorBytes];
      const uint32_t valid = index_->TableSectorValidBytes(sec);
      E2_RETURN_NOT_OK(io.Read(
          layout.table_base + sec * storage::kSectorBytes, sector, valid));
      index_->table_crcs_[sec] = index_->ComputeTableSectorCrc(sec, sector);
    }
    overlay_.clear();
    overlay_dirty_ = true;
  }
  index_->n_ = next_id_;
  index_->next_block_idx_ = next_block_;
  index_->tombstones_ = tombstones_;
  index_->sizes_.bucket_bytes += staged_blocks_ * layout.block_bytes;
  index_->sizes_.storage_bytes += staged_blocks_ * layout.block_bytes;
  index_->sizes_.total_entries += staged_entries_;
  index_->sizes_.nonempty_slots += staged_new_slots_;
  staged_blocks_ = 0;
  staged_entries_ = 0;
  staged_new_slots_ = 0;
  PublishLocked();
  return Status::OK();
}

LiveUpdater::Counters LiveUpdater::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

uint64_t LiveUpdater::epoch_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return seq_;
}

uint64_t LiveUpdater::n() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_;
}

}  // namespace e2lshos::core
