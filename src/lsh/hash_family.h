// The full set of compound hashes used by one E2LSH index: L compound
// hashes for each search radius, generated deterministically from the
// master seed (paper Sec. 5.3).
//
// For radius R the component bucket width is w * R: the geometry of
// Eq. 2/3 is scale-free, so scaling w by R makes the same (p1, p2) pair
// apply at every rung of the radius ladder.
#pragma once

#include <cstdint>
#include <vector>

#include "lsh/hash_function.h"
#include "lsh/params.h"

namespace e2lshos::lsh {

class HashFamily {
 public:
  HashFamily() = default;

  /// Generate all num_radii x L compound hashes for dimension `dim`.
  HashFamily(uint32_t dim, const E2lshParams& params);

  /// The compound hash for (radius index, table index l).
  const CompoundHash& Get(uint32_t radius_idx, uint32_t l) const {
    return hashes_[radius_idx * L_ + l];
  }

  /// Hash a point under all L compound hashes of one radius.
  void HashAll(uint32_t radius_idx, const float* o, uint32_t* out) const {
    for (uint32_t l = 0; l < L_; ++l) out[l] = Get(radius_idx, l).Hash32(o);
  }

  uint32_t num_radii() const { return num_radii_; }
  uint32_t L() const { return L_; }
  uint32_t dim() const { return dim_; }

  /// Approximate heap footprint (the DRAM cost of keeping the hash
  /// functions resident; part of Table 6 accounting).
  uint64_t MemoryBytes() const;

 private:
  uint32_t dim_ = 0;
  uint32_t num_radii_ = 0;
  uint32_t L_ = 0;
  std::vector<CompoundHash> hashes_;
};

}  // namespace e2lshos::lsh
