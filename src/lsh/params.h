// E2LSH parameter selection (paper Secs. 2.3 and 3.3).
//
// Theoretical setting (Eq. 5):
//   m = log_{1/p2} n,  L = n^rho,  S = 2 L,
//   rho = log(1/p1) / log(1/p2),  p1 = p_w(R), p2 = p_w(cR).
//
// Practical setting (Sec. 3.3): rho (hence L) is fixed per dataset large
// enough for the target accuracy range, and the accuracy is fine-tuned by
// a scaling parameter gamma applied to m (m = gamma * log_{1/p2} n), which
// leaves the index size unchanged. The candidate cap S = s_factor * L is
// the compensating knob for the modified success probability.
//
// The radius schedule (Sec. 2.3): R = 1, c, c^2, ..., up to
// R_max = 2 * x_max * sqrt(d), giving r = ceil(log_c R_max) + 1 radii.
#pragma once

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace e2lshos::lsh {

/// \brief User-facing tuning knobs.
struct E2lshConfig {
  double c = 2.0;        ///< Approximation ratio of the (R,c)-NN ladder.
  double w = 4.0;        ///< Bucket width at radius R=1 (scaled by R).
  double gamma = 1.0;    ///< m scaling (accuracy knob; index size unchanged).
  double s_factor = 2.0; ///< Candidate cap S = s_factor * L per radius.
  /// If > 0, L = ceil(n^rho) with this exponent (the paper's practical
  /// mode). If 0, rho is derived from w via p1/p2 (theoretical mode).
  double rho = 0.0;
  /// Largest absolute coordinate value in the dataset (x_max); defines
  /// R_max = 2 * x_max * sqrt(d).
  double x_max = 1.0;
  uint64_t seed = 20230328;  ///< EDBT'23 start date; master RNG seed.
};

/// \brief Fully derived parameter set driving index build and search.
struct E2lshParams {
  // Echo of the config.
  double c = 2.0;
  double w = 4.0;
  double gamma = 1.0;
  double s_factor = 2.0;
  uint64_t seed = 0;

  // Derived quantities.
  double p1 = 0.0;   ///< Collision prob. at distance R.
  double p2 = 0.0;   ///< Collision prob. at distance cR.
  double rho = 0.0;  ///< log(1/p1)/log(1/p2) or the user override.
  uint32_t m = 0;    ///< Hash functions per compound hash.
  uint32_t L = 0;    ///< Compound hashes per radius.
  uint64_t S = 0;    ///< Candidate cap per radius.
  std::vector<double> radii;  ///< R = 1, c, c^2, ..., >= R_max.

  uint32_t num_radii() const { return static_cast<uint32_t>(radii.size()); }
};

/// \brief Derive the full parameter set for a database of n points in
/// dimension d.
Result<E2lshParams> ComputeParams(uint64_t n, uint32_t d, const E2lshConfig& config);

/// \brief The index-size exponent rho implied by bucket width w and
/// approximation ratio c (theoretical mode).
double RhoForWidth(double w, double c);

}  // namespace e2lshos::lsh
