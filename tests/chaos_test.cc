// Chaos tests for the full fault-tolerance stack: a net::Daemon serving
// an index over a `fault=`+`retry=` device URI, clients with timeouts,
// reconnects, and idempotent retries, the error-rate breaker tripping
// into degraded mode and recovering, and a 16-connection soak mixing
// injected storage faults with random disconnects — run under TSan via
// the `concurrency` CTest label, and drained clean at the end.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/index.h"
#include "data/generators.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/socket.h"
#include "net/wire.h"

namespace e2lshos {
namespace {

struct TestData {
  data::GeneratedData gen;
  lsh::E2lshConfig cfg;
};

TestData MakeData(uint64_t n = 1500, uint32_t dim = 16,
                  uint64_t num_queries = 20) {
  TestData t;
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 8;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = 23;
  t.gen = data::Generate("chaos", n, num_queries, spec);
  t.cfg.rho = 0.25;
  t.cfg.s_factor = 1000.0;
  return t;
}

Result<std::unique_ptr<Index>> BuildIndex(const TestData& t,
                                          const std::string& uri) {
  IndexSpec spec;
  spec.lsh = t.cfg;
  spec.device_uri = uri;
  spec.device_capacity = 1ULL << 30;
  return Index::Build(spec, t.gen.base);
}

std::string SockPath(const std::string& tag) {
  return ::testing::TempDir() + "e2chaos_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

// ---------------------------------------------------------------------------
// Transient faults are invisible end to end
// ---------------------------------------------------------------------------

TEST(Chaos, DaemonOverFaultRetryUriAbsorbsTransients) {
  const TestData t = MakeData();
  auto index = BuildIndex(
      t, "mem:?fault=submit:0.03,complete:0.03,seed:7&retry=6,backoff:50");
  ASSERT_TRUE(index.ok());
  const std::string sock = SockPath("transient");
  net::DaemonOptions opts;
  opts.unix_path = sock;
  opts.serve.search.shards = 2;
  opts.serve.max_wait_us = 50;
  net::Daemon daemon(opts);
  ASSERT_TRUE(daemon.AddIndex("default", std::move(*index)).ok());
  ASSERT_TRUE(daemon.Start().ok());

  auto client = net::Client::Connect("unix:" + sock);
  ASSERT_TRUE(client.ok());
  auto results = (*client)->SearchBatch(
      "default", t.gen.queries.Row(0),
      static_cast<uint32_t>(t.gen.queries.n()), t.gen.queries.dim(), 10);
  ASSERT_TRUE(results.ok());
  for (size_t q = 0; q < results->size(); ++q) {
    EXPECT_TRUE((*results)[q].status.ok()) << "query " << q;
  }
  // The retry layer worked underneath and is visible in Stats.
  auto stats = (*client)->Stats("default");
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->faults_injected, 0u);
  EXPECT_GT(stats->retries, 0u);
  EXPECT_EQ(stats->retries_exhausted, 0u);
  EXPECT_EQ(stats->failed, 0u);

  // Healthy daemon: no breaker, no shedding.
  auto health = (*client)->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health->state, 0);
  EXPECT_EQ(health->total_shed, 0u);

  daemon.RequestStop();
  daemon.Wait();
}

// ---------------------------------------------------------------------------
// Client receive timeout (satellite: strict --timeout-ms)
// ---------------------------------------------------------------------------

TEST(Chaos, ClientRecvTimeoutSurfacesDeadlineExceeded) {
  // A listener that accepts and then stays silent forever.
  auto listen_fd = net::ListenTcp("127.0.0.1", 0);
  ASSERT_TRUE(listen_fd.ok());
  auto port = net::LocalPort(*listen_fd);
  ASSERT_TRUE(port.ok());
  std::atomic<int> accepted_fd{-1};
  std::thread acceptor([&] {
    accepted_fd.store(::accept(*listen_fd, nullptr, nullptr));
  });

  net::ClientOptions copts;
  copts.recv_timeout_ms = 150;
  auto client = net::Client::Connect(
      "tcp:127.0.0.1:" + std::to_string(*port), copts);
  ASSERT_TRUE(client.ok());
  const auto t0 = std::chrono::steady_clock::now();
  const Status st = (*client)->Ping();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  // Bounded wait: the timeout fired, not a 2-minute TCP stall.
  EXPECT_LT(elapsed, 5000);

  acceptor.join();
  net::CloseFd(accepted_fd.load());
  net::CloseFd(*listen_fd);
}

// ---------------------------------------------------------------------------
// Reconnect with idempotent retry
// ---------------------------------------------------------------------------

TEST(Chaos, ClientReconnectsAcrossDaemonRestart) {
  const TestData t = MakeData();
  const std::string sock = SockPath("reconnect");

  auto first = BuildIndex(t, "mem:");
  ASSERT_TRUE(first.ok());
  net::DaemonOptions opts;
  opts.unix_path = sock;
  auto daemon1 = std::make_unique<net::Daemon>(opts);
  ASSERT_TRUE(daemon1->AddIndex("default", std::move(*first)).ok());
  ASSERT_TRUE(daemon1->Start().ok());

  net::ClientOptions copts;
  copts.max_retries = 3;
  copts.retry_backoff_ms = 20;
  auto client = net::Client::Connect("unix:" + sock, copts);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Ping().ok());
  EXPECT_EQ((*client)->reconnects(), 0u);

  // Kill the daemon; a second generation binds the same socket path.
  daemon1->RequestStop();
  daemon1->Wait();
  daemon1.reset();
  auto second = BuildIndex(t, "mem:");
  ASSERT_TRUE(second.ok());
  net::Daemon daemon2(opts);
  ASSERT_TRUE(daemon2.AddIndex("default", std::move(*second)).ok());
  ASSERT_TRUE(daemon2.Start().ok());

  // The old connection is dead; the retry path must reconnect and
  // resend the same frame transparently.
  auto r = (*client)->Search("default", t.gen.queries.Row(0),
                             t.gen.queries.dim(), 5);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GE((*client)->reconnects(), 1u);

  daemon2.RequestStop();
  daemon2.Wait();
}

// ---------------------------------------------------------------------------
// Error-rate breaker: trip, shed, recover
// ---------------------------------------------------------------------------

TEST(Chaos, BreakerTripsShedsAndRecovers) {
  const TestData t = MakeData(1000, 12, 16);
  // Every offset corrupt: with checksums on, every query is partial —
  // a 100% failure signal for the breaker (while still returning OK,
  // empty-ish results to clients).
  auto index = BuildIndex(t, "mem:?fault=corrupt:1.0,seed:5");
  ASSERT_TRUE(index.ok());
  const std::string sock = SockPath("breaker");
  net::DaemonOptions opts;
  opts.unix_path = sock;
  opts.breaker_trip_ratio = 0.5;
  opts.breaker_min_rate = 1.0;
  net::Daemon daemon(opts);
  ASSERT_TRUE(daemon.AddIndex("default", std::move(*index)).ok());
  ASSERT_TRUE(daemon.Start().ok());

  auto client = net::Client::Connect("unix:" + sock);
  ASSERT_TRUE(client.ok());

  // One batch of all-partial queries trips the breaker.
  auto batch = (*client)->SearchBatch(
      "default", t.gen.queries.Row(0),
      static_cast<uint32_t>(t.gen.queries.n()), t.gen.queries.dim(), 5);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(daemon.degraded());

  // Tripped: queries are shed with kUnavailable before the engine.
  auto shed = (*client)->Search("default", t.gen.queries.Row(0),
                                t.gen.queries.dim(), 5);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable)
      << shed.status().ToString();
  EXPECT_GT(daemon.breaker_shed(), 0u);

  auto health = (*client)->Health();
  ASSERT_TRUE(health.ok());
  EXPECT_NE(health->state, 0);
  EXPECT_GT(health->total_shed, 0u);

  // Shed traffic is recorded as non-failing, so the rolling failure
  // share decays and the breaker clears (hysteresis at half the trip
  // ratio). Keep poking until a query reaches the engine again.
  bool recovered = false;
  for (int i = 0; i < 400 && !recovered; ++i) {
    auto r = (*client)->Search("default", t.gen.queries.Row(0),
                               t.gen.queries.dim(), 5);
    recovered = r.ok();
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(recovered) << "breaker never cleared";

  daemon.RequestStop();
  daemon.Wait();
}

// ---------------------------------------------------------------------------
// Chaos soak: storage faults x random disconnects x drain (TSan leg)
// ---------------------------------------------------------------------------

TEST(ChaosSoak, FaultsDisconnectsAndDrain) {
  const TestData t = MakeData(1200, 12, 8);
  auto index = BuildIndex(
      t,
      "mem:?fault=submit:0.02,complete:0.03,corrupt:0.05,stall:200,"
      "stallp:0.02,seed:9&retry=5,backoff:100");
  ASSERT_TRUE(index.ok());
  const std::string sock = SockPath("soak");
  net::DaemonOptions opts;
  opts.unix_path = sock;
  opts.serve.search.shards = 4;  // native per-shard queues over the stack
  opts.serve.max_wait_us = 50;
  opts.serve.queue_capacity = 128;
  opts.recv_timeout_ms = 5000;
  opts.send_timeout_ms = 5000;
  net::Daemon daemon(opts);
  ASSERT_TRUE(daemon.AddIndex("default", std::move(*index)).ok());
  ASSERT_TRUE(daemon.Start().ok());
  auto ep = net::ParseEndpoint("unix:" + sock);
  ASSERT_TRUE(ep.ok());

  constexpr int kThreads = 16;
  constexpr int kOpsPerThread = 10;
  std::atomic<uint64_t> ok_ops{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      std::mt19937 rng(77 + ti);
      net::ClientOptions copts;
      copts.max_retries = 2;
      copts.retry_backoff_ms = 20;
      for (int op = 0; op < kOpsPerThread; ++op) {
        switch (rng() % 4) {
          case 0: {  // retried batch over the faulty device
            auto client = net::Client::Connect("unix:" + sock, copts);
            if (!client.ok()) {
              failures.fetch_add(1);
              break;
            }
            auto r = (*client)->SearchBatch(
                "default", t.gen.queries.Row(0),
                static_cast<uint32_t>(t.gen.queries.n()),
                t.gen.queries.dim(), 5);
            if (r.ok()) {
              ok_ops.fetch_add(1);
            } else {
              failures.fetch_add(1);
            }
            break;
          }
          case 1: {  // abrupt disconnect with a request in flight
            auto fd = net::Connect(*ep);
            if (!fd.ok()) {
              failures.fetch_add(1);
              break;
            }
            net::Writer w;
            w.Begin(static_cast<uint8_t>(net::MsgType::kSearch), rng());
            w.Str("default");
            w.U32(5);
            w.U32(0);
            w.U32(t.gen.queries.dim());
            w.Raw(t.gen.queries.Row(0),
                  t.gen.queries.dim() * sizeof(float));
            const auto frame = w.Finish();
            net::WriteFull(*fd, frame.data(), frame.size());
            net::CloseFd(*fd);  // never reads the response
            ok_ops.fetch_add(1);
            break;
          }
          case 2: {  // disconnect mid-frame
            auto fd = net::Connect(*ep);
            if (!fd.ok()) {
              failures.fetch_add(1);
              break;
            }
            const uint8_t partial[3] = {0x40, 0x00, 0x00};
            net::WriteFull(*fd, partial, sizeof(partial));
            net::CloseFd(*fd);
            ok_ops.fetch_add(1);
            break;
          }
          default: {  // health + stats probes under load
            auto client = net::Client::Connect("unix:" + sock, copts);
            if (client.ok() && (*client)->Health().ok() &&
                (*client)->Stats("default").ok()) {
              ok_ops.fetch_add(1);
            } else {
              failures.fetch_add(1);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(ok_ops.load(), 0u);

  // The daemon survived and its device absorbed real injected faults.
  auto client = net::Client::Connect("unix:" + sock);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Ping().ok());
  auto stats = (*client)->Stats("default");
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats->faults_injected, 0u);
  EXPECT_GT(stats->retries, 0u);

  // Drain: stop with the soak's debris (half-written frames, vanished
  // peers) behind us; Wait() must return with nothing leaked.
  daemon.RequestStop();
  daemon.Wait();
  EXPECT_EQ(daemon.connections(), 0u);
}

}  // namespace
}  // namespace e2lshos
