// Reproduces Table 2 (storage devices and their random read performance
// at queue depth 1 and 128, 512-byte reads) and Table 5 (the storage
// configurations used in the evaluation).
#include "common.h"

#include <numeric>

#include "util/aligned_buffer.h"
#include "util/clock.h"
#include "util/rng.h"

using namespace e2lshos;

namespace {

// Measure random-read IOPS of a device at a fixed queue depth.
double MeasureIops(storage::BlockDevice* dev, uint32_t depth, uint64_t reads,
                   uint64_t span_bytes) {
  util::Rng rng(7);
  std::vector<util::AlignedBuffer> bufs(depth);
  for (auto& b : bufs) b.Reset(512);
  std::vector<uint32_t> free_bufs(depth);
  std::iota(free_bufs.begin(), free_bufs.end(), 0);
  std::vector<storage::IoCompletion> comps(256);

  const uint64_t sectors = span_bytes / 512;
  const uint64_t t0 = util::NowNs();
  uint64_t submitted = 0, done = 0;
  while (done < reads) {
    while (submitted < reads && !free_bufs.empty()) {
      const uint32_t b = free_bufs.back();
      storage::IoRequest req{rng.NextU64Below(sectors) * 512, 512,
                             bufs[b].data(), b};
      if (!dev->SubmitRead(req).ok()) break;
      free_bufs.pop_back();
      ++submitted;
    }
    const size_t n = dev->PollCompletions(comps.data(), comps.size());
    for (size_t i = 0; i < n; ++i) {
      free_bufs.push_back(static_cast<uint32_t>(comps[i].user_data));
    }
    done += n;
  }
  return static_cast<double>(reads) * 1e9 /
         static_cast<double>(util::NowNs() - t0);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  auto json = args.OpenJson();

  bench::PrintHeader(
      "Table 2: storage devices, measured random read kIOPS (512 B)",
      {"Type", "QD=1 (paper)", "QD=128 (paper)", "model units x service"});

  struct Ref {
    storage::DeviceKind kind;
    double qd1, qd128;
  };
  const Ref refs[] = {{storage::DeviceKind::kCssd, 7.2, 273},
                      {storage::DeviceKind::kEssd, 27.6, 1400},
                      {storage::DeviceKind::kXlfdd, 132.3, 3860},
                      {storage::DeviceKind::kHdd, 0.21, 0.54}};
  for (const auto& ref : refs) {
    storage::DeviceModel model = storage::GetDeviceModel(ref.kind);
    model.capacity_bytes = 64 << 20;
    auto dev = storage::SimulatedDevice::Create(model);
    if (!dev.ok()) continue;
    // Keep HDD measurement short (milliseconds per I/O).
    const uint64_t reads1 = ref.kind == storage::DeviceKind::kHdd ? 40 : 3000;
    const uint64_t reads128 =
        ref.kind == storage::DeviceKind::kHdd
            ? 200
            : (args.fast ? 20000 : 60000);
    const double qd1 = MeasureIops(dev->get(), 1, reads1, model.capacity_bytes);
    const double qd128 =
        MeasureIops(dev->get(), 128, reads128, model.capacity_bytes);
    bench::PrintRow({model.name,
                     bench::Fmt(qd1 / 1e3, 2) + " (" + bench::Fmt(ref.qd1, 2) + ")",
                     bench::Fmt(qd128 / 1e3, 0) + " (" + bench::Fmt(ref.qd128, 0) + ")",
                     std::to_string(model.parallel_units) + " x " +
                         bench::Fmt(model.service_time_ns / 1e3, 1) + " us"});
    if (json != nullptr) {
      json->Write(util::JsonRow()
                      .Set("bench", "table2")
                      .Set("device", model.name)
                      .Set("kiops_qd1", qd1 / 1e3)
                      .Set("kiops_qd128", qd128 / 1e3)
                      .Set("paper_kiops_qd1", ref.qd1)
                      .Set("paper_kiops_qd128", ref.qd128)
                      .Set("parallel_units", model.parallel_units)
                      .Set("service_time_ns", model.service_time_ns));
    }
  }
  std::printf(
      "\nNote: QD=128 XLFDD readings are capped by the single-core "
      "submit/poll loop\n(~1.5 MIOPS), the same per-core ceiling the "
      "paper's Table 3 interface costs\nimply.\n");

  bench::PrintHeader("Table 5: storage device configurations",
                     {"Device", "Number", "Total capacity",
                      "Total random read (model)"});
  for (const auto& cfg : storage::Table5Configs()) {
    const auto model = storage::GetDeviceModel(cfg.kind);
    const double total_iops = model.ExpectedIops(128) * cfg.count;
    bench::PrintRow({model.name, std::to_string(cfg.count),
                     bench::FmtBytes(model.capacity_bytes * cfg.count),
                     total_iops >= 1e6 ? bench::Fmt(total_iops / 1e6, 1) + " MIOPS"
                                       : bench::Fmt(total_iops / 1e3, 0) + " kIOPS"});
    if (json != nullptr) {
      json->Write(util::JsonRow()
                      .Set("bench", "table5")
                      .Set("device", model.name)
                      .Set("count", cfg.count)
                      .Set("capacity_bytes", model.capacity_bytes * cfg.count)
                      .Set("model_kiops", total_iops / 1e3));
    }
  }
  return 0;
}
