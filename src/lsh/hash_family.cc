#include "lsh/hash_family.h"

namespace e2lshos::lsh {

HashFamily::HashFamily(uint32_t dim, const E2lshParams& params)
    : dim_(dim), num_radii_(params.num_radii()), L_(params.L) {
  hashes_.reserve(static_cast<size_t>(num_radii_) * L_);
  util::Rng master(params.seed);
  for (uint32_t r = 0; r < num_radii_; ++r) {
    const double w_r = params.w * params.radii[r];
    for (uint32_t l = 0; l < L_; ++l) {
      util::Rng child = master.Fork();
      hashes_.emplace_back(dim, params.m, w_r, child);
    }
  }
}

uint64_t HashFamily::MemoryBytes() const {
  uint64_t bytes = 0;
  for (const auto& g : hashes_) {
    bytes += static_cast<uint64_t>(g.m()) * (dim_ * sizeof(float) + 2 * sizeof(double));
  }
  return bytes;
}

}  // namespace e2lshos::lsh
