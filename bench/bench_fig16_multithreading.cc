// Reproduces Figure 16: query throughput with multithreading (1..32
// threads) for SRS, E2LSHoS on cSSD x 4, and E2LSHoS on XLFDD x 12.
//
// Host caveat: the reproduction machine exposes a single core, so
// measured thread scaling flattens immediately (all threads time-share
// one core). We therefore report BOTH the measured numbers and the
// cost-model projection qps(T) = min(T * qps_1core, IOPS_total / N_IO),
// which is the shape the paper measures on a 32-core box: linear scaling
// until the storage IOPS ceiling, which only E2LSHoS-on-cSSD hits.
#include "common.h"

#include <thread>

#include "storage/queue_router.h"
#include "util/clock.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec),
                               args.queries ? args.queries : 128, 1);
  if (!w.ok()) return 1;

  const std::vector<uint32_t> threads = {1, 2, 4, 8, 16, 32};

  // --- Single-thread baselines.
  auto srs = baselines::Srs::Build(w->gen.base, {});
  if (!srs.ok()) return 1;
  const auto srs_batch = (*srs)->SearchBatch(w->gen.queries, 1);
  const double srs_qps1 = srs_batch.QueriesPerSecond();

  struct OsSetup {
    bench::StorageStack stack;
    std::unique_ptr<core::StorageIndex> index;
    double qps1 = 0;
    double n_io = 0;
    double iops_total = 0;
  };
  auto make_os = [&](storage::DeviceKind kind, uint32_t count,
                     storage::InterfaceKind iface) -> Result<OsSetup> {
    OsSetup s;
    E2_ASSIGN_OR_RETURN(s.stack, bench::MakeStack(kind, count, iface));
    E2_ASSIGN_OR_RETURN(s.index, core::IndexBuilder::Build(
                                     w->gen.base, w->params, s.stack.device()));
    core::EngineOptions opts;
    opts.num_contexts = 64;
    opts.max_inflight_ios = 512;
    core::QueryEngine engine(s.index.get(), &w->gen.base, opts);
    E2_ASSIGN_OR_RETURN(auto batch, engine.SearchBatch(w->gen.queries, 1));
    s.qps1 = batch.QueriesPerSecond();
    s.n_io = batch.MeanIos();
    s.iops_total = storage::GetDeviceModel(kind).ExpectedIops(128) * count;
    return s;
  };
  auto cssd = make_os(storage::DeviceKind::kCssd, 4,
                      storage::InterfaceKind::kIoUring);
  auto xlfdd = make_os(storage::DeviceKind::kXlfdd, 12,
                       storage::InterfaceKind::kXlfdd);
  if (!cssd.ok() || !xlfdd.ok()) return 1;

  // --- Measured multithreaded runs (threads share this host's core(s)).
  auto measure_threads = [&](uint32_t t, auto run_one) -> double {
    std::vector<std::thread> workers;
    const uint64_t t0 = util::NowNs();
    for (uint32_t i = 0; i < t; ++i) workers.emplace_back(run_one, i);
    for (auto& th : workers) th.join();
    const double secs = static_cast<double>(util::NowNs() - t0) / 1e9;
    return static_cast<double>(w->gen.queries.n()) * t / secs;
  };

  bench::PrintHeader(
      "Figure 16: query speed (QPS) with multithreading (" + name + ")",
      {"threads", "SRS meas", "SRS model", "E2LSHoS cSSDx4 meas",
       "cSSDx4 model", "E2LSHoS XLFDDx12 meas", "XLFDDx12 model"});

  const uint32_t hw = std::max(1u, std::thread::hardware_concurrency());
  for (const uint32_t t : threads) {
    // Measured: each thread runs the full query set through its own
    // engine/searcher against the shared index.
    // Srs::Search is const and stateless across calls, so one shared
    // index serves all threads.
    const double srs_meas = measure_threads(
        t, [&](uint32_t) { (*srs)->SearchBatch(w->gen.queries, 1); });
    // Each thread gets its own NVMe-style queue pair (QueueRouter) over
    // the shared drives, plus its own interface-cost model — a device's
    // completion stream must never be polled by two engines directly.
    auto os_meas = [&](OsSetup& s, storage::InterfaceKind iface) {
      storage::QueueRouter router(s.stack.raw.get());
      std::vector<std::unique_ptr<storage::BlockDevice>> queues(t);
      std::vector<std::unique_ptr<storage::ChargedDevice>> charged(t);
      std::vector<std::unique_ptr<core::StorageIndex>> views(t);
      for (uint32_t i = 0; i < t; ++i) {
        queues[i] = router.CreateQueue();
        charged[i] = std::make_unique<storage::ChargedDevice>(
            queues[i].get(), storage::GetInterfaceSpec(iface));
        views[i] = s.index->WithDevice(charged[i].get());
      }
      return measure_threads(t, [&](uint32_t i) {
        core::EngineOptions opts;
        opts.num_contexts = 32;
        opts.max_inflight_ios = 256;
        core::QueryEngine engine(views[i].get(), &w->gen.base, opts);
        (void)engine.SearchBatch(w->gen.queries, 1);
      });
    };
    const double cssd_meas = os_meas(*cssd, storage::InterfaceKind::kIoUring);
    const double xlfdd_meas = os_meas(*xlfdd, storage::InterfaceKind::kXlfdd);

    // Model: linear in threads until the storage IOPS ceiling.
    const double srs_model = srs_qps1 * t;
    const double cssd_model =
        std::min(cssd->qps1 * t, cssd->iops_total / std::max(1.0, cssd->n_io));
    const double xlfdd_model = std::min(
        xlfdd->qps1 * t, xlfdd->iops_total / std::max(1.0, xlfdd->n_io));

    bench::PrintRow({std::to_string(t), bench::Fmt(srs_meas, 0),
                     bench::Fmt(srs_model, 0), bench::Fmt(cssd_meas, 0),
                     bench::Fmt(cssd_model, 0), bench::Fmt(xlfdd_meas, 0),
                     bench::Fmt(xlfdd_model, 0)});
  }
  std::printf(
      "\nHost has %u hardware thread(s): measured columns flatten at that "
      "point.\nExpected shape (paper, 32-core host = the 'model' columns): "
      "all methods scale\nlinearly except E2LSHoS on cSSDs, which plateaus "
      "at the device IOPS ceiling;\nE2LSHoS on XLFDDs stays ~10x above SRS "
      "throughout.\n",
      hw);
  return 0;
}
