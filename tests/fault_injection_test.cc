// Failure-injection tests: the query engine must terminate and return
// best-effort results under submit failures, completion failures, and
// payload corruption — a lost bucket costs candidates, never progress or
// memory safety.
#include <gtest/gtest.h>

#include <cmath>

#include "core/builder.h"
#include "core/query_engine.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "storage/faulty_device.h"
#include "storage/memory_device.h"

namespace e2lshos::core {
namespace {

struct Fixture {
  data::GeneratedData gen;
  lsh::E2lshParams params;
  std::unique_ptr<storage::MemoryDevice> device;
  std::unique_ptr<StorageIndex> index;
};

Fixture MakeFixture(uint64_t n = 3000, uint32_t dim = 24) {
  Fixture f;
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = 31;
  f.gen = data::Generate("fault", n, 40, spec);
  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = 8.0;
  cfg.x_max = f.gen.base.XMax();
  auto params = lsh::ComputeParams(n, dim, cfg);
  EXPECT_TRUE(params.ok());
  f.params = *params;
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  EXPECT_TRUE(dev.ok());
  f.device = std::move(dev.value());
  auto idx = IndexBuilder::Build(f.gen.base, f.params, f.device.get());
  EXPECT_TRUE(idx.ok());
  f.index = std::move(idx.value());
  return f;
}

TEST(FaultInjection, SurvivesSubmitFailures) {
  auto f = MakeFixture();
  storage::FaultyDevice::Options opt;
  opt.submit_fail_rate = 0.10;
  storage::FaultyDevice faulty(f.device.get(), opt);
  auto view = f.index->WithDevice(&faulty);
  QueryEngine engine(view.get(), &f.gen.base);
  auto batch = engine.SearchBatch(f.gen.queries, 3);
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(faulty.injected_submit_failures(), 0u);
  uint64_t errors = 0, answered = 0;
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    errors += batch->stats[q].io_errors;
    answered += !batch->results[q].empty();
  }
  EXPECT_GT(errors, 0u);
  // Best-effort: the vast majority of queries still produce answers.
  EXPECT_GE(answered, f.gen.queries.n() * 8 / 10);
}

TEST(FaultInjection, SurvivesCompletionFailures) {
  auto f = MakeFixture();
  storage::FaultyDevice::Options opt;
  opt.completion_fail_rate = 0.15;
  storage::FaultyDevice faulty(f.device.get(), opt);
  auto view = f.index->WithDevice(&faulty);
  QueryEngine engine(view.get(), &f.gen.base);
  auto batch = engine.SearchBatch(f.gen.queries, 1);
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(faulty.injected_completion_failures(), 0u);
  // Every query terminated (SearchBatch returned), none hung.
  EXPECT_EQ(batch->results.size(), f.gen.queries.n());
}

TEST(FaultInjection, SurvivesPayloadCorruption) {
  // Corrupted blocks may scramble headers (bogus next pointers and
  // counts), fingerprints, and ids: the engine must neither crash nor
  // dereference out-of-range ids, and must finish every query.
  auto f = MakeFixture();
  storage::FaultyDevice::Options opt;
  opt.corrupt_rate = 0.20;
  storage::FaultyDevice faulty(f.device.get(), opt);
  auto view = f.index->WithDevice(&faulty);
  QueryEngine engine(view.get(), &f.gen.base);
  auto batch = engine.SearchBatch(f.gen.queries, 3);
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(faulty.injected_corruptions(), 0u);
  EXPECT_EQ(batch->results.size(), f.gen.queries.n());
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    for (const auto& nb : batch->results[q]) {
      EXPECT_LT(nb.id, f.gen.base.n());
    }
  }
}

TEST(FaultInjection, AccuracyDegradesGracefully) {
  // With a low failure rate, accuracy stays close to the clean run.
  auto f = MakeFixture(5000);
  const auto gt = data::GroundTruth::Compute(f.gen.base, f.gen.queries, 1, 1);

  QueryEngine clean_engine(f.index.get(), &f.gen.base);
  auto clean = clean_engine.SearchBatch(f.gen.queries, 1);
  ASSERT_TRUE(clean.ok());
  const double clean_ratio = data::MeanOverallRatio(gt, clean->results, 1);

  storage::FaultyDevice::Options opt;
  opt.submit_fail_rate = 0.02;
  opt.completion_fail_rate = 0.02;
  storage::FaultyDevice faulty(f.device.get(), opt);
  auto view = f.index->WithDevice(&faulty);
  QueryEngine engine(view.get(), &f.gen.base);
  auto batch = engine.SearchBatch(f.gen.queries, 1);
  ASSERT_TRUE(batch.ok());
  const double faulty_ratio = data::MeanOverallRatio(gt, batch->results, 1);

  EXPECT_LT(faulty_ratio, clean_ratio + 1.0);
}

TEST(FaultInjection, SyncModeAlsoSurvives) {
  auto f = MakeFixture(1500);
  storage::FaultyDevice::Options opt;
  opt.submit_fail_rate = 0.05;
  opt.completion_fail_rate = 0.05;
  storage::FaultyDevice faulty(f.device.get(), opt);
  auto view = f.index->WithDevice(&faulty);
  QueryEngine engine(view.get(), &f.gen.base, {.synchronous = true});
  auto batch = engine.SearchBatch(f.gen.queries, 1);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->results.size(), f.gen.queries.n());
}

}  // namespace
}  // namespace e2lshos::core
