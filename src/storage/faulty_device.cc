#include "storage/faulty_device.h"

#include <chrono>
#include <unordered_map>
#include <utility>

#include "util/rng.h"

namespace e2lshos::storage {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Stable per-offset hash; also seeds the scramble byte stream so the
/// garbage a corrupt offset returns is itself reproducible.
uint64_t CorruptHash(uint64_t seed, uint64_t offset) {
  uint64_t state = seed ^ (offset + 0x9E3779B97F4A7C15ULL);
  return util::SplitMix64(state);
}

}  // namespace

bool FaultyDevice::WouldCorrupt(uint64_t seed, uint64_t offset, double rate) {
  if (rate <= 0.0) return false;
  const double u =
      static_cast<double>(CorruptHash(seed, offset) >> 11) * 0x1.0p-53;
  return u < rate;
}

/// Per-endpoint injection state. One lane per driving endpoint (the
/// device-level path, or one per native queue); every member is guarded
/// by mu_ and nothing in a lane is touched by another lane.
class FaultyDevice::Lane {
 public:
  Lane(const Options& options, uint64_t rng_seed)
      : options_(options), rng_(rng_seed) {}

  /// Draw the injection decision for `req`. Returns the injected submit
  /// failure, or OK with `*ticket` != 0 when a pending completion-side
  /// injection was recorded (the caller must Rollback on inner-submit
  /// failure).
  Status BeforeSubmit(const IoRequest& req, uint64_t* ticket) {
    *ticket = 0;
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.submit_fail_rate > 0 &&
        rng_.NextDouble() < options_.submit_fail_rate) {
      ++counters_.submit_failures;
      return Status::IoError("injected submit failure");
    }
    Pending p;
    if (options_.completion_fail_rate > 0 &&
        rng_.NextDouble() < options_.completion_fail_rate) {
      p.kind = Pending::kFail;
    } else if (WouldCorrupt(options_.seed, req.offset, options_.corrupt_rate)) {
      p.kind = Pending::kCorrupt;
      p.buf = req.buf;
      p.length = req.length;
      p.offset = req.offset;
    } else if (options_.stall_rate > 0 && options_.stall_usec > 0 &&
               rng_.NextDouble() < options_.stall_rate) {
      p.kind = Pending::kStall;
      p.due_ns = NowNs() + options_.stall_usec * 1000;
    } else {
      return Status::OK();
    }
    // A user_data with an entry still pending means the tag is being
    // reused while the previous request is in flight; matching either
    // completion to either entry would be guesswork, so skip injecting
    // on the new request instead of corrupting the wrong buffer.
    if (pending_.count(req.user_data)) return Status::OK();
    p.ticket = ++ticket_seq_;
    *ticket = p.ticket;
    pending_.emplace(req.user_data, p);
    return Status::OK();
  }

  /// The inner device rejected the submit after BeforeSubmit recorded a
  /// pending injection: the request will never complete, so take the
  /// entry back out. The ticket guarantees we never erase an entry that
  /// a concurrent harvest already replaced for a recycled user_data.
  void Rollback(uint64_t user_data, uint64_t ticket) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pending_.find(user_data);
    if (it != pending_.end() && it->second.ticket == ticket) {
      pending_.erase(it);
    }
  }

  /// Apply pending injections to `n` freshly harvested completions in
  /// `out`, hold stalled ones, release due held ones. Returns the new
  /// completion count (<= max). Must be called with completions that
  /// came from this lane's inner endpoint only.
  size_t Filter(IoCompletion* out, size_t n, size_t max) {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t now = NowNs();
    size_t kept = 0;
    for (size_t i = 0; i < n; ++i) {
      IoCompletion c = out[i];
      auto it = pending_.find(c.user_data);
      if (it != pending_.end()) {
        const Pending p = it->second;
        // Erase before delivery: once the caller sees the completion it
        // may reuse the buffer and the user_data, and a stale entry
        // would fire on that unrelated successor.
        pending_.erase(it);
        switch (p.kind) {
          case Pending::kFail:
            c.code = StatusCode::kIoError;
            ++counters_.completion_failures;
            break;
          case Pending::kCorrupt:
            // Scramble at harvest, inside the lane lock: the inner
            // device published this completion, so its writes into the
            // buffer happen-before us, and the caller cannot observe
            // the completion (and recycle the buffer) until we return.
            if (c.code == StatusCode::kOk) {
              Scramble(p);
              ++counters_.corruptions;
            }
            break;
          case Pending::kStall:
            if (c.code == StatusCode::kOk && now < p.due_ns) {
              ++counters_.stalls;
              held_.push_back({c, p.due_ns, now});
              continue;  // delivered later, not this poll
            }
            break;
        }
      }
      out[kept++] = c;
    }
    // Release held completions that have served their stall.
    for (size_t i = 0; i < held_.size() && kept < max;) {
      if (now >= held_[i].due_ns) {
        IoCompletion c = held_[i].completion;
        c.latency_ns += now - held_[i].harvested_ns;
        out[kept++] = c;
        held_[i] = held_.back();
        held_.pop_back();
      } else {
        ++i;
      }
    }
    return kept;
  }

  /// Completions harvested from the inner device but still held for a
  /// stall — outstanding from the caller's point of view.
  uint32_t HeldCount() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint32_t>(held_.size());
  }

  Counters counters() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
  }

  void ResetCounters() {
    std::lock_guard<std::mutex> lock(mu_);
    counters_ = Counters{};
  }

 private:
  struct Pending {
    enum Kind : uint8_t { kFail, kCorrupt, kStall } kind = kFail;
    uint64_t ticket = 0;
    void* buf = nullptr;
    uint32_t length = 0;
    uint64_t offset = 0;
    uint64_t due_ns = 0;
  };

  struct Held {
    IoCompletion completion;
    uint64_t due_ns = 0;
    uint64_t harvested_ns = 0;
  };

  void Scramble(const Pending& p) {
    auto* bytes = static_cast<uint8_t*>(p.buf);
    uint64_t state = CorruptHash(options_.seed, p.offset);
    for (uint32_t b = 0; b < p.length; b += 7) {
      // `| 1` so every touched byte actually changes.
      bytes[b] ^= static_cast<uint8_t>(util::SplitMix64(state) | 1);
    }
  }

  const Options options_;
  mutable std::mutex mu_;
  util::Rng rng_;
  uint64_t ticket_seq_ = 0;
  std::unordered_map<uint64_t, Pending> pending_;
  std::vector<Held> held_;
  Counters counters_;
};

/// One native queue: a private injection lane over one inner queue.
/// Single-driver like every native queue; the lane lock still guards
/// against the parent reading counters concurrently.
class FaultyDevice::Queue : public BlockDevice {
 public:
  Queue(FaultyDevice* parent, std::unique_ptr<BlockDevice> inner,
        uint64_t lane_seed)
      : parent_(parent),
        inner_(std::move(inner)),
        lane_(parent->options_, lane_seed) {}

  ~Queue() override { parent_->RetireQueue(this); }

  Status SubmitRead(const IoRequest& req) override {
    uint64_t ticket = 0;
    Status pre = lane_.BeforeSubmit(req, &ticket);
    if (!pre.ok()) return pre;
    Status st = inner_->SubmitRead(req);
    if (!st.ok() && ticket != 0) lane_.Rollback(req.user_data, ticket);
    return st;
  }

  size_t PollCompletions(IoCompletion* out, size_t max) override {
    const size_t n = inner_->PollCompletions(out, max);
    return lane_.Filter(out, n, max);
  }

  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    return inner_->Write(offset, data, length);
  }
  uint64_t capacity() const override { return inner_->capacity(); }
  uint32_t io_alignment() const override { return inner_->io_alignment(); }
  uint32_t outstanding() const override {
    return inner_->outstanding() + lane_.HeldCount();
  }
  std::string name() const override { return inner_->name() + " (faulty)"; }
  DeviceStats stats() const override {
    DeviceStats s = inner_->stats();
    const Counters c = lane_.counters();
    s.faults_injected +=
        c.submit_failures + c.completion_failures + c.corruptions + c.stalls;
    return s;
  }
  void ResetStats() override {
    inner_->ResetStats();
    lane_.ResetCounters();
  }
  Status RegisterBuffers(
      const std::vector<std::pair<void*, size_t>>& regions) override {
    return inner_->RegisterBuffers(regions);
  }

  Counters lane_counters() const { return lane_.counters(); }
  uint32_t lane_held() const { return lane_.HeldCount(); }
  void ResetLaneCounters() { lane_.ResetCounters(); }

 private:
  FaultyDevice* parent_;
  std::unique_ptr<BlockDevice> inner_;
  Lane lane_;
};

FaultyDevice::FaultyDevice(std::unique_ptr<BlockDevice> owned,
                           BlockDevice* inner, const Options& options)
    : owned_(std::move(owned)),
      inner_(inner),
      options_(options),
      lane_(new Lane(options, options.seed)) {}

FaultyDevice::FaultyDevice(BlockDevice* inner, const Options& options)
    : FaultyDevice(nullptr, inner, options) {}

Result<std::unique_ptr<FaultyDevice>> FaultyDevice::Create(
    std::unique_ptr<BlockDevice> inner, const Options& options) {
  if (inner == nullptr) {
    return Status::InvalidArgument("FaultyDevice: null inner device");
  }
  BlockDevice* raw = inner.get();
  return std::unique_ptr<FaultyDevice>(
      new FaultyDevice(std::move(inner), raw, options));
}

FaultyDevice::~FaultyDevice() = default;

Status FaultyDevice::SubmitRead(const IoRequest& req) {
  uint64_t ticket = 0;
  Status pre = lane_->BeforeSubmit(req, &ticket);
  if (!pre.ok()) return pre;
  Status st = inner_->SubmitRead(req);
  if (!st.ok() && ticket != 0) lane_->Rollback(req.user_data, ticket);
  return st;
}

size_t FaultyDevice::PollCompletions(IoCompletion* out, size_t max) {
  const size_t n = inner_->PollCompletions(out, max);
  return lane_->Filter(out, n, max);
}

Status FaultyDevice::Write(uint64_t offset, const void* data,
                           uint32_t length) {
  return inner_->Write(offset, data, length);
}

uint32_t FaultyDevice::outstanding() const {
  uint32_t held = lane_->HeldCount();
  {
    std::lock_guard<std::mutex> lock(queues_mu_);
    for (const Queue* q : queues_) held += q->lane_held();
  }
  return inner_->outstanding() + held;
}

DeviceStats FaultyDevice::stats() const {
  DeviceStats s = inner_->stats();
  const Counters c = TotalCounters();
  s.faults_injected +=
      c.submit_failures + c.completion_failures + c.corruptions + c.stalls;
  return s;
}

void FaultyDevice::ResetStats() {
  inner_->ResetStats();
  lane_->ResetCounters();
  std::lock_guard<std::mutex> lock(queues_mu_);
  for (Queue* q : queues_) q->ResetLaneCounters();
  retired_ = Counters{};
}

uint32_t FaultyDevice::max_queues() const {
  MultiQueueDevice* mq = inner_->multi_queue();
  return mq != nullptr ? mq->max_queues() : 0;
}

Result<std::unique_ptr<BlockDevice>> FaultyDevice::CreateQueue(
    const QueueOptions& options) {
  MultiQueueDevice* mq = inner_->multi_queue();
  if (mq == nullptr) {
    return Status::Unimplemented("inner device has no native queues");
  }
  auto inner_queue = mq->CreateQueue(options);
  if (!inner_queue.ok()) return inner_queue.status();
  uint64_t lane_seed;
  {
    std::lock_guard<std::mutex> lock(queues_mu_);
    // Distinct RNG stream per lane for the transient faults; the
    // deterministic corrupt predicate uses options_.seed unchanged, so
    // lane assignment never changes *what* is corrupt.
    lane_seed = options_.seed ^ (0xA24BAED4963EE407ULL * ++queue_seq_);
  }
  auto queue =
      std::make_unique<Queue>(this, std::move(inner_queue).value(), lane_seed);
  {
    std::lock_guard<std::mutex> lock(queues_mu_);
    queues_.push_back(queue.get());
  }
  return std::unique_ptr<BlockDevice>(std::move(queue));
}

void FaultyDevice::RetireQueue(Queue* queue) {
  std::lock_guard<std::mutex> lock(queues_mu_);
  const Counters c = queue->lane_counters();
  retired_.submit_failures += c.submit_failures;
  retired_.completion_failures += c.completion_failures;
  retired_.corruptions += c.corruptions;
  retired_.stalls += c.stalls;
  for (auto it = queues_.begin(); it != queues_.end(); ++it) {
    if (*it == queue) {
      queues_.erase(it);
      break;
    }
  }
}

FaultyDevice::Counters FaultyDevice::TotalCounters() const {
  Counters total = lane_->counters();
  std::lock_guard<std::mutex> lock(queues_mu_);
  for (const Queue* q : queues_) {
    const Counters c = q->lane_counters();
    total.submit_failures += c.submit_failures;
    total.completion_failures += c.completion_failures;
    total.corruptions += c.corruptions;
    total.stalls += c.stalls;
  }
  total.submit_failures += retired_.submit_failures;
  total.completion_failures += retired_.completion_failures;
  total.corruptions += retired_.corruptions;
  total.stalls += retired_.stalls;
  return total;
}

uint64_t FaultyDevice::injected_submit_failures() const {
  return TotalCounters().submit_failures;
}
uint64_t FaultyDevice::injected_completion_failures() const {
  return TotalCounters().completion_failures;
}
uint64_t FaultyDevice::injected_corruptions() const {
  return TotalCounters().corruptions;
}
uint64_t FaultyDevice::injected_stalls() const {
  return TotalCounters().stalls;
}

}  // namespace e2lshos::storage
