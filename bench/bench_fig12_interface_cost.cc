// Reproduces Figure 12: decomposition of the E2LSHoS query time into I/O
// cost (CPU time spent in I/O submission) and computation, per storage
// interface, on eSSD x 8 so that device IOPS is never the limiting
// factor. In-memory E2LSH is the reference bar.
#include "common.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec),
                               args.queries ? args.queries : 200, 1);
  if (!w.ok()) return 1;

  auto master_dev = storage::MemoryDevice::Create(8ULL << 30);
  if (!master_dev.ok()) return 1;
  auto master = core::IndexBuilder::Build(w->gen.base, w->params,
                                          master_dev->get());
  if (!master.ok()) return 1;
  const uint64_t image_bytes = (*master)->sizes().storage_bytes;

  bench::PrintHeader("Figure 12: I/O cost of different storage interfaces (" +
                         name + ", eSSD x 8)",
                     {"Interface", "query us", "I/O cost us", "computation us",
                      "I/O share"});

  core::EngineOptions opts;
  opts.num_contexts = 64;
  opts.max_inflight_ios = 512;

  for (const auto iface :
       {storage::InterfaceKind::kIoUring, storage::InterfaceKind::kSpdk,
        storage::InterfaceKind::kXlfdd}) {
    auto stack = bench::MakeStack(storage::DeviceKind::kEssd, 8, iface);
    if (!stack.ok()) continue;
    if (!bench::CopyIndexImage(master_dev->get(), stack->device(), image_bytes)
             .ok()) {
      continue;
    }
    auto view = (*master)->WithDevice(stack->device());
    const auto sweep =
        bench::SweepOs(view.get(), *w, 1, opts, {4.0}, stack->charged.get());
    if (sweep.empty()) continue;
    const auto& p = sweep[0];
    bench::PrintRow({storage::GetInterfaceSpec(iface).name,
                     bench::Fmt(p.query_ns / 1e3, 1),
                     bench::Fmt(p.io_cpu_ns / 1e3, 2),
                     bench::Fmt(p.compute_ns / 1e3, 2),
                     bench::Fmt(100.0 * p.io_cpu_ns /
                                    std::max(1.0, p.io_cpu_ns + p.compute_ns),
                                0) +
                         "%"});
  }

  // In-memory reference: no I/O cost at all.
  auto mem = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
  if (mem.ok()) {
    const auto sweep = bench::SweepInMemory(mem->get(), *w, 1, {4.0});
    if (!sweep.empty()) {
      bench::PrintRow({"In-memory", bench::Fmt(sweep[0].query_ns / 1e3, 1), "0",
                       bench::Fmt(sweep[0].query_ns / 1e3, 1), "0%"});
    }
  }

  std::printf(
      "\nExpected shape (paper Fig. 12): I/O cost shrinks io_uring -> SPDK "
      "-> XLFDD\n(1000 -> 350 -> 50 ns per request); computation stays "
      "roughly constant.\n");
  return 0;
}
