// A block device backed by DRAM that completes reads instantly.
//
// Serves two roles: (1) a correctness harness for the E2LSHoS engine in
// tests, and (2) the "T_read = 0" limit of the paper's cost model, i.e.
// an idealized storage with in-memory speed.
#pragma once

#include <deque>
#include <memory>
#include <mutex>

#include "storage/block_device.h"
#include "storage/multi_queue.h"
#include "storage/sparse_backing.h"

namespace e2lshos::storage {

class MemoryDevice : public BlockDevice, public MultiQueueDevice {
 public:
  /// Create a device of `capacity` bytes. `queue_capacity` bounds the
  /// number of unharvested completions.
  static Result<std::unique_ptr<MemoryDevice>> Create(uint64_t capacity,
                                                      uint32_t queue_capacity = 4096);

  Status SubmitRead(const IoRequest& req) override;
  size_t PollCompletions(IoCompletion* out, size_t max) override;
  Status Write(uint64_t offset, const void* data, uint32_t length) override;
  uint64_t capacity() const override { return backing_.capacity(); }
  uint32_t outstanding() const override;
  std::string name() const override { return "memory"; }
  DeviceStats stats() const override;
  void ResetStats() override;

  /// Native queues: each gets a private completion inbox over the shared
  /// backing, so per-queue submit/poll touches no device-wide lock.
  MultiQueueDevice* multi_queue() override { return this; }
  uint32_t max_queues() const override { return 255; }
  Result<std::unique_ptr<BlockDevice>> CreateQueue(
      const QueueOptions& options) override;

 private:
  class Queue;  // defined in memory_device.cc

  explicit MemoryDevice(uint32_t queue_capacity) : queue_capacity_(queue_capacity) {}

  SparseBacking backing_;
  uint32_t queue_capacity_;
  mutable std::mutex mu_;
  std::deque<IoCompletion> completed_;
  DeviceStats stats_;
  /// Live native queues; device-level stats()/outstanding() fold their
  /// traffic in so the device remains the cross-queue aggregate.
  QueueRegistry queue_registry_;
};

}  // namespace e2lshos::storage
