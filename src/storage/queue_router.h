// Per-thread I/O queue pairs over a shared device, mirroring NVMe
// multi-queue semantics.
//
// A BlockDevice has a single completion stream: if two query engines
// poll the same device, each would harvest completions belonging to the
// other. QueueRouter multiplexes one device into independent logical
// queues — each queue tags its submissions (high bits of user_data) and
// receives exactly its own completions; foreign completions drained
// during a poll are routed to their owner's inbox.
//
// This is the substrate for multithreaded E2LSHoS execution (paper
// Sec. 6.5, Fig. 16): one queue pair per thread, as an NVMe driver would
// allocate.
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/block_device.h"

namespace e2lshos::storage {

class QueueRouter {
 public:
  /// The router borrows `inner`; it must outlive the router and all
  /// queues. Queues must also not outlive the router.
  explicit QueueRouter(BlockDevice* inner) : inner_(inner) {}

  /// Create a new logical queue. Thread-safe. At most 255 queues.
  std::unique_ptr<BlockDevice> CreateQueue();

  BlockDevice* inner() { return inner_; }

 private:
  friend class RoutedQueue;
  static constexpr int kTagShift = 56;

  Status Submit(uint32_t queue_id, const IoRequest& req);
  size_t Poll(uint32_t queue_id, IoCompletion* out, size_t max);

  BlockDevice* inner_;
  std::mutex mu_;
  std::vector<std::deque<IoCompletion>> inboxes_;
};

/// \brief One logical queue; behaves as a BlockDevice.
class RoutedQueue : public BlockDevice {
 public:
  RoutedQueue(QueueRouter* router, uint32_t id) : router_(router), id_(id) {}

  Status SubmitRead(const IoRequest& req) override {
    return router_->Submit(id_, req);
  }
  size_t PollCompletions(IoCompletion* out, size_t max) override {
    return router_->Poll(id_, out, max);
  }
  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    return router_->inner()->Write(offset, data, length);
  }
  uint64_t capacity() const override { return router_->inner()->capacity(); }
  uint32_t io_alignment() const override {
    return router_->inner()->io_alignment();
  }
  uint32_t outstanding() const override { return router_->inner()->outstanding(); }
  std::string name() const override {
    return router_->inner()->name() + " q" + std::to_string(id_);
  }
  DeviceStats stats() const override { return router_->inner()->stats(); }
  void ResetStats() override { router_->inner()->ResetStats(); }

 private:
  QueueRouter* router_;
  uint32_t id_;
};

}  // namespace e2lshos::storage
