#include "storage/device_registry.h"

namespace e2lshos::storage {

DeviceModel GetDeviceModel(DeviceKind kind) {
  DeviceModel m;
  switch (kind) {
    case DeviceKind::kCssd:
      // QD1: 7.2 kIOPS -> 138.9 us; QD128: 273 kIOPS -> 38 units.
      m.name = "cSSD";
      m.service_time_ns = 138900;
      m.parallel_units = 38;
      m.capacity_bytes = 2ULL << 40;  // 2 TB
      break;
    case DeviceKind::kEssd:
      // QD1: 27.6 kIOPS -> 36.2 us; QD128: 1400 kIOPS -> 51 units.
      m.name = "eSSD";
      m.service_time_ns = 36230;
      m.parallel_units = 51;
      m.capacity_bytes = 800ULL << 30;  // 800 GB
      break;
    case DeviceKind::kXlfdd:
      // QD1: 132.3 kIOPS -> 7.56 us; QD128: 3860 kIOPS -> 29 units.
      m.name = "XLFDD";
      m.service_time_ns = 7560;
      m.parallel_units = 29;
      m.capacity_bytes = 520ULL << 30;  // 520 GB
      break;
    case DeviceKind::kHdd:
      // QD1: 0.21 kIOPS -> 4.76 ms; NCQ gives a modest boost at depth.
      m.name = "HDD";
      m.service_time_ns = 4760000;
      m.parallel_units = 3;
      m.capacity_bytes = 10ULL << 40;  // 10 TB
      break;
  }
  m.queue_capacity = 1024;
  return m;
}

std::vector<std::pair<DeviceKind, std::string>> AllDeviceKinds() {
  return {{DeviceKind::kCssd, "cSSD"},
          {DeviceKind::kEssd, "eSSD"},
          {DeviceKind::kXlfdd, "XLFDD"},
          {DeviceKind::kHdd, "HDD"}};
}

Result<std::unique_ptr<SimulatedDevice>> MakeDevice(DeviceKind kind) {
  return SimulatedDevice::Create(GetDeviceModel(kind));
}

std::string StorageConfig::DisplayName() const {
  return GetDeviceModel(kind).name + " x " + std::to_string(count);
}

std::vector<StorageConfig> Table5Configs() {
  return {{DeviceKind::kCssd, 1},
          {DeviceKind::kCssd, 4},
          {DeviceKind::kEssd, 1},
          {DeviceKind::kEssd, 8},
          {DeviceKind::kXlfdd, 12}};
}

}  // namespace e2lshos::storage
