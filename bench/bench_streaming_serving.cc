// Streaming serving: arrival rate vs. latency percentiles.
//
// The batch benches measure throughput with the whole query set
// materialized up front; this bench measures what a serving front-end
// actually exposes — per-query enqueue→completion latency under a
// sustained arrival process. A producer thread submits queries into a
// bounded SubmissionQueue at a target rate while a StreamingServer
// drains it across N engine shards (micro-batches, no global barrier);
// each point of the sweep reports achieved QPS and p50/p95/p99/max
// latency. Expected shape: latency is flat while the offered rate is
// below the engine's batch capacity, then the queue saturates and p99
// blows up — the classic open-loop hockey stick.
//
// --shards S (default 2), --json PATH for machine-readable rows,
// --deadline-us D to enable load shedding (queries older than D are
// rejected instead of served; the over-capacity points then show p99
// staying bounded at the cost of a nonzero rejected count).
#include "common.h"

#include "core/query_stream.h"
#include "core/sharded_engine.h"
#include "core/streaming_server.h"
#include "util/clock.h"

using namespace e2lshos;

namespace {

struct RatePoint {
  double offered_qps = 0;
  core::StreamingSnapshot snap;
  uint64_t submitted = 0;
};

// Submit `count` queries (cycling the workload's query set) at
// `offered_qps`, serve them, and snapshot the latency profile.
RatePoint RunPoint(core::ShardedQueryEngine* engine, const bench::Workload& w,
                   uint32_t k, double offered_qps, uint64_t count,
                   uint64_t deadline_us) {
  RatePoint point;
  point.offered_qps = offered_qps;

  core::SubmissionQueue queue(w.dim(), 1024);
  core::ServerOptions sopts;
  sopts.k = k;
  sopts.max_batch_size = 32;
  sopts.max_wait_us = 200;
  sopts.deadline_us = deadline_us;
  core::StreamingServer server(engine, sopts);
  if (!server.Start(&queue).ok()) return point;

  const uint64_t interval_ns =
      static_cast<uint64_t>(1e9 / std::max(1.0, offered_qps));
  const uint64_t t0 = util::NowNs();
  for (uint64_t i = 0; i < count; ++i) {
    const uint64_t deadline = t0 + i * interval_ns;
    while (util::NowNs() < deadline) {
      // Open-loop pacing: spin to the per-query deadline so bursts are
      // not smoothed away by sleep granularity.
    }
    if (queue.Submit(w.gen.queries.Row(i % w.gen.queries.n())).ok()) {
      ++point.submitted;
    }
  }
  queue.Close();
  server.Wait();
  point.snap = server.stats();
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  auto args = bench::Args::Parse(argc, argv);
  if (args.shards == 0) args.shards = 2;
  const uint32_t k = 10;
  const uint64_t deadline_us = args.deadline_us;

  auto spec = data::GetDatasetSpec(args.dataset.empty() ? "SIFT" : args.dataset);
  if (!spec.ok()) {
    std::fprintf(stderr, "error: %s\n", spec.status().ToString().c_str());
    return 1;
  }
  const uint64_t n = args.n > 0 ? args.n : (args.fast ? 20000 : 60000);
  auto w = bench::MakeWorkload(*spec, n, args.queries ? args.queries : 200, k);
  if (!w.ok()) {
    std::fprintf(stderr, "error: %s\n", w.status().ToString().c_str());
    return 1;
  }

  // Index on a cSSD x 4 stripe set behind io_uring — the paper's
  // low-cost serving configuration (Sec. 6.2).
  auto stack = bench::MakeStack(storage::DeviceKind::kCssd, 4,
                                storage::InterfaceKind::kIoUring);
  if (!stack.ok()) {
    std::fprintf(stderr, "error: %s\n", stack.status().ToString().c_str());
    return 1;
  }
  auto index =
      core::IndexBuilder::Build(w->gen.base, w->params, stack->raw.get());
  if (!index.ok()) {
    std::fprintf(stderr, "error: %s\n", index.status().ToString().c_str());
    return 1;
  }

  core::ShardOptions sopts;
  sopts.num_shards = args.shards;
  sopts.total_contexts = 32 * args.shards;
  sopts.total_inflight_ios = 256 * args.shards;
  sopts.wrap_shard_device = bench::ChargeWrapper(storage::InterfaceKind::kIoUring);
  core::ShardedQueryEngine engine(index->get(), &w->gen.base, sopts);

  // Closed-loop capacity estimate: one-shot batch QPS sets the sweep's
  // upper anchor.
  auto batch = engine.SearchBatch(w->gen.queries, k);
  if (!batch.ok()) {
    std::fprintf(stderr, "error: %s\n", batch.status().ToString().c_str());
    return 1;
  }
  const double capacity = batch->QueriesPerSecond();
  std::printf("dataset %s, n=%llu, shards=%u, one-shot batch capacity %.0f qps\n",
              spec->name.c_str(), static_cast<unsigned long long>(w->n()),
              engine.num_shards(), capacity);

  auto json = args.OpenJson();
  bench::PrintHeader(
      "Streaming serving (" + spec->name + "): arrival rate vs. latency",
      {"offered qps", "achieved qps", "sustained qps", "p50 us", "p95 us",
       "p99 us", "max us", "mean batch", "rejected"});

  for (const double frac : {0.25, 0.5, 0.7, 0.85, 1.0, 1.2}) {
    const double rate = std::max(100.0, frac * capacity);
    const uint64_t count = std::max<uint64_t>(
        args.fast ? 300 : 1000, static_cast<uint64_t>(rate * 1.0));
    const RatePoint p = RunPoint(&engine, *w, k, rate, count, deadline_us);
    bench::PrintRow(
        {bench::Fmt(p.offered_qps, 0), bench::Fmt(p.snap.overall_qps, 0),
         bench::Fmt(p.snap.sustained_qps, 0),
         bench::Fmt(static_cast<double>(p.snap.p50_ns) / 1e3, 1),
         bench::Fmt(static_cast<double>(p.snap.p95_ns) / 1e3, 1),
         bench::Fmt(static_cast<double>(p.snap.p99_ns) / 1e3, 1),
         bench::Fmt(static_cast<double>(p.snap.max_ns) / 1e3, 1),
         bench::Fmt(p.snap.mean_batch_size, 1),
         std::to_string(p.snap.rejected)});
    if (json != nullptr) {
      util::JsonRow row;
      row.Set("bench", "streaming_serving")
          .Set("dataset", spec->name)
          .Set("shards", engine.num_shards())
          .Set("k", static_cast<uint64_t>(k))
          .Set("offered_qps", p.offered_qps)
          .Set("achieved_qps", p.snap.overall_qps)
          .Set("sustained_qps", p.snap.sustained_qps)
          .Set("completed", p.snap.completed)
          .Set("p50_ns", p.snap.p50_ns)
          .Set("p95_ns", p.snap.p95_ns)
          .Set("p99_ns", p.snap.p99_ns)
          .Set("max_ns", p.snap.max_ns)
          .Set("mean_batch_size", p.snap.mean_batch_size)
          .Set("rejected", p.snap.rejected)
          .Set("deadline_us", deadline_us);
      json->Write(row);
    }
  }
  std::printf(
      "\nExpected shape: flat p50/p99 below capacity, then queueing delay "
      "dominates\nand p99 diverges as the offered rate crosses the engine's "
      "batch capacity.\n");
  return 0;
}
