// Storage access interface models (paper Table 3).
//
// Issuing an I/O consumes CPU time on the submitting core. The paper
// measures, per request:
//
//   io_uring (2.0)      1.0 us   -> 1.0 MIOPS/core max
//   SPDK (21.10)        350 ns   -> 2.9 MIOPS/core
//   XLFDD interface      50 ns   -> 20  MIOPS/core
//
// We reproduce the cost by busy-spinning the submitting core for the
// modeled duration inside SubmitRead (and a small poll cost per harvested
// completion). ChargedDevice wraps any BlockDevice with such a model, so
// the same device can be driven through different "interfaces" — exactly
// the experiment matrix of Figs. 11-13.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "storage/block_device.h"
#include "storage/multi_queue.h"

namespace e2lshos::storage {

/// \brief CPU-cost model of one storage access interface.
struct InterfaceSpec {
  std::string name;
  uint64_t submit_overhead_ns = 0;  ///< CPU time per request submission.
  uint64_t poll_overhead_ns = 0;    ///< CPU time per harvested completion.

  /// Max requests/second one core can issue (the paper's "Max IOPS/core").
  double MaxIopsPerCore() const {
    const uint64_t per_io = submit_overhead_ns + poll_overhead_ns;
    return per_io == 0 ? 0.0 : 1e9 / static_cast<double>(per_io);
  }
};

/// \brief Named interfaces from Table 3 (+ a heavyweight synchronous
/// path approximating page-cache/mmap access, Sec. 6.5).
enum class InterfaceKind { kIoUring, kSpdk, kXlfdd, kMmapSync };

InterfaceSpec GetInterfaceSpec(InterfaceKind kind);
std::vector<std::pair<InterfaceKind, std::string>> AllInterfaceKinds();

/// \brief Wraps a device, charging the interface's CPU cost per I/O.
///
/// Does not own the underlying device by default (the same physical
/// device can back multiple logical views); pass owned=true to take
/// ownership.
class ChargedDevice : public BlockDevice, public MultiQueueDevice {
 public:
  ChargedDevice(BlockDevice* inner, InterfaceSpec spec)
      : inner_(inner), spec_(std::move(spec)) {}
  ChargedDevice(std::unique_ptr<BlockDevice> inner, InterfaceSpec spec)
      : inner_(inner.get()), owned_(std::move(inner)), spec_(std::move(spec)) {}

  Status SubmitRead(const IoRequest& req) override;
  size_t PollCompletions(IoCompletion* out, size_t max) override;
  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    return inner_->Write(offset, data, length);
  }
  uint64_t capacity() const override { return inner_->capacity(); }
  uint32_t io_alignment() const override { return inner_->io_alignment(); }
  uint32_t outstanding() const override { return inner_->outstanding(); }
  std::string name() const override {
    return inner_->name() + " via " + spec_.name;
  }
  DeviceStats stats() const override { return inner_->stats(); }
  void ResetStats() override {
    inner_->ResetStats();
    io_cpu_ns_ = 0;
  }

  Status RegisterBuffers(
      const std::vector<std::pair<void*, size_t>>& regions) override {
    return inner_->RegisterBuffers(regions);
  }

  /// Native queues pass through: each inner queue is wrapped in an owning
  /// ChargedDevice with the same spec, so the per-core CPU charge is
  /// identical on the native and routed paths.
  MultiQueueDevice* multi_queue() override {
    return inner_->multi_queue() != nullptr ? this : nullptr;
  }
  uint32_t max_queues() const override;
  Result<std::unique_ptr<BlockDevice>> CreateQueue(
      const QueueOptions& options) override;

  const InterfaceSpec& spec() const { return spec_; }
  BlockDevice* inner() { return inner_; }

  /// Total CPU time charged for I/O submission/harvest since last reset
  /// (the "I/O cost" bar of Fig. 12).
  uint64_t io_cpu_ns() const { return io_cpu_ns_.load(std::memory_order_relaxed); }

 private:
  BlockDevice* inner_;
  std::unique_ptr<BlockDevice> owned_;
  InterfaceSpec spec_;
  /// Atomic: one charged view may be driven from several threads.
  std::atomic<uint64_t> io_cpu_ns_{0};
};

}  // namespace e2lshos::storage
