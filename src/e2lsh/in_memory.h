// In-memory E2LSH (Datar et al. 2004), the algorithm the paper adapts to
// storage. Semantics match core::QueryEngine exactly — same hash family,
// radius ladder, candidate cap S, and candidate dedup — so the two can be
// cross-checked and their speeds compared apples-to-apples (Figs. 2, 13).
//
// The index is a CSR bucket table per (radius, l): sorted unique 32-bit
// compound hash values with object-id spans. Keeping full 32-bit keys in
// memory corresponds to E2LSHoS's u-bit table + fingerprint check.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "lsh/hash_family.h"
#include "lsh/params.h"
#include "util/topk.h"

namespace e2lshos::e2lsh {

/// \brief Per-query instrumentation (drives the Sec. 4 analysis).
struct SearchStats {
  uint32_t radii_searched = 0;
  uint64_t buckets_probed = 0;   ///< Non-empty buckets visited.
  uint64_t candidates = 0;       ///< Distinct candidates distance-checked.
  uint64_t dup_skips = 0;
  uint64_t entries_scanned = 0;  ///< Bucket entries read (incl. duplicates).
  uint64_t wall_ns = 0;

  /// Hypothetical E2LSHoS I/O count with unlimited block size:
  /// one table read + one bucket read per probed bucket (paper's N_IO,inf).
  uint64_t IoCountInfiniteBlock() const { return 2 * buckets_probed; }
};

class InMemoryE2lsh {
 public:
  static Result<std::unique_ptr<InMemoryE2lsh>> Build(const data::Dataset& base,
                                                      const lsh::E2lshParams& params);

  /// Top-k c-ANNS by the (R,c)-NN ladder. If `bucket_read_sizes` is given,
  /// the number of entries scanned per probed bucket is appended — the
  /// input for computing N_IO at finite block sizes B (Fig. 3).
  std::vector<util::Neighbor> Search(const float* query, uint32_t k,
                                     SearchStats* stats = nullptr,
                                     std::vector<uint32_t>* bucket_read_sizes =
                                         nullptr) const;

  /// Multi-Probe variant (Lv et al. 2007; paper Sec. 2.4): in addition to
  /// the query's own bucket, probe the `num_probes` nearest perturbed
  /// buckets per compound hash. Trades extra bucket scans for a smaller
  /// required L — the near-linear-index regime the paper's conclusion
  /// expects to benefit from storage like E2LSHoS does.
  std::vector<util::Neighbor> SearchMultiProbe(const float* query, uint32_t k,
                                               uint32_t num_probes,
                                               SearchStats* stats = nullptr) const;

  /// Run all queries, collecting per-query stats and wall time.
  struct BatchResult {
    std::vector<std::vector<util::Neighbor>> results;
    std::vector<SearchStats> stats;
    uint64_t wall_ns = 0;

    double MeanRadii() const;
    double MeanIosInfiniteBlock() const;
    double QueriesPerSecond() const;
  };
  BatchResult SearchBatch(const data::Dataset& queries, uint32_t k) const;

  const lsh::E2lshParams& params() const { return params_; }
  const lsh::HashFamily& family() const { return family_; }

  /// Re-tune the per-radius candidate cap S = s_factor * L without
  /// rebuilding (the paper's query-time accuracy knob, Sec. 3.3).
  void SetCandidateCapFactor(double s_factor) {
    params_.s_factor = s_factor;
    params_.S = static_cast<uint64_t>(
        std::max(1.0, std::ceil(s_factor * static_cast<double>(params_.L))));
  }

  /// Number of objects in the bucket keyed by `hash32` under compound
  /// hash (radius_idx, l); 0 if the bucket is empty (diagnostics).
  uint64_t BucketSize(uint32_t radius_idx, uint32_t l, uint32_t hash32) const;

  /// DRAM footprint of the index (hash functions + CSR tables), the
  /// quantity that explodes superlinearly and motivates E2LSHoS.
  uint64_t IndexMemoryBytes() const;

 private:
  // One CSR bucket table for a (radius, l) pair.
  struct BucketTable {
    std::vector<uint32_t> keys;     // sorted unique hash32 values
    std::vector<uint64_t> offsets;  // keys.size() + 1
    std::vector<uint32_t> ids;      // object ids grouped by key
  };

  const BucketTable& Table(uint32_t radius_idx, uint32_t l) const {
    return tables_[static_cast<size_t>(radius_idx) * params_.L + l];
  }

  const data::Dataset* base_ = nullptr;
  lsh::E2lshParams params_;
  lsh::HashFamily family_;
  std::vector<BucketTable> tables_;
};

}  // namespace e2lshos::e2lsh
