// Flash storage device simulator calibrated against the paper's Table 2.
//
// Model: the device contains `parallel_units` internal flash units (dies /
// planes); every read occupies one unit for `service_time_ns`. An arriving
// request is dispatched to the earliest-free unit, so
//
//   * at queue depth 1 the device sustains 1/service_time IOPS, and
//   * at saturation it sustains parallel_units/service_time IOPS,
//   * request latency grows once the queue depth exceeds the unit count
//     (requests wait for a free unit) — reproducing Fig. 15's
//     latency-vs-throughput trade-off.
//
// Completions are gated on the real wall clock: a request submitted at
// time t becomes visible to PollCompletions at its simulated completion
// time, so end-to-end query benchmarks measure genuine elapsed time with
// CPU work and I/O overlapping exactly as in the paper's Fig. 1(B).
//
// Data lives in demand-paged anonymous memory (SparseBacking), so the
// declared multi-terabyte capacities cost only the bytes actually written.
#pragma once

#include <memory>
#include <mutex>
#include <queue>
#include <vector>

#include "storage/block_device.h"
#include "storage/multi_queue.h"
#include "storage/sparse_backing.h"

namespace e2lshos::storage {

/// \brief Calibration parameters for one device model (see Table 2).
struct DeviceModel {
  std::string name;
  uint32_t parallel_units = 1;    ///< Internal flash parallelism.
  uint64_t service_time_ns = 0;   ///< Per-read service time of one unit.
  uint32_t queue_capacity = 1024; ///< Max outstanding requests.
  uint64_t capacity_bytes = 0;

  /// IOPS this model sustains at a given queue depth (analytic).
  double ExpectedIops(uint32_t queue_depth) const {
    const double active = std::min<uint64_t>(queue_depth, parallel_units);
    return active * 1e9 / static_cast<double>(service_time_ns);
  }
};

class SimulatedDevice : public BlockDevice, public MultiQueueDevice {
 public:
  static Result<std::unique_ptr<SimulatedDevice>> Create(const DeviceModel& model);

  Status SubmitRead(const IoRequest& req) override;
  size_t PollCompletions(IoCompletion* out, size_t max) override;
  Status Write(uint64_t offset, const void* data, uint32_t length) override;
  uint64_t capacity() const override { return backing_.capacity(); }
  uint32_t outstanding() const override;
  std::string name() const override { return model_.name; }
  DeviceStats stats() const override;
  void ResetStats() override;

  const DeviceModel& model() const { return model_; }

  /// Fraction of unit-time spent servicing reads since the last
  /// ResetStats (the "device usage" series of Fig. 15).
  double Utilization() const;

  /// Native queues: each has a private pending heap + completion gating,
  /// so per-queue submit/poll never takes another queue's lock. The
  /// flash unit clocks stay shared (one brief device lock at dispatch):
  /// that is the physical hardware every queue pair contends on in a
  /// real NVMe drive too.
  MultiQueueDevice* multi_queue() override { return this; }
  uint32_t max_queues() const override { return 255; }
  Result<std::unique_ptr<BlockDevice>> CreateQueue(
      const QueueOptions& options) override;

 private:
  class Queue;  // defined in simulated_device.cc

  explicit SimulatedDevice(const DeviceModel& model);

  /// Dispatch one read to the earliest-free flash unit; returns its
  /// simulated completion time. Takes the device lock briefly.
  uint64_t ScheduleOnUnit(uint64_t now_ns);

  struct Pending {
    uint64_t complete_at_ns;
    uint64_t submit_ns;
    uint64_t user_data;
    uint64_t offset;
    uint32_t length;
    void* buf;
    bool operator>(const Pending& o) const { return complete_at_ns > o.complete_at_ns; }
  };

  DeviceModel model_;
  SparseBacking backing_;
  mutable std::mutex mu_;
  std::vector<uint64_t> unit_free_ns_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>> pending_;
  DeviceStats stats_;
  uint64_t stats_epoch_ns_ = 0;
  QueueRegistry queue_registry_;
};

}  // namespace e2lshos::storage
