#include "storage/file_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "storage/io_align.h"
#include "util/clock.h"

namespace e2lshos::storage {

FileDevice::FileDevice(std::string path, int fd, const Options& options)
    : path_(std::move(path)),
      fd_(fd),
      capacity_(options.capacity),
      queue_capacity_(options.queue_capacity),
      direct_io_(options.direct_io),
      pool_(std::make_unique<util::ThreadPool>(options.io_threads)) {
  if (direct_io_) align_ = EffectiveDioAlignment(ProbeDioAlignment(fd_));
}

FileDevice::~FileDevice() {
  // Drain in-flight reads before closing the fd.
  pool_->Shutdown();
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<FileDevice>> FileDevice::Create(const std::string& path,
                                                       const Options& options) {
  if (options.capacity == 0) {
    return Status::InvalidArgument("file device capacity must be > 0");
  }
  int flags = O_RDWR | O_CREAT | O_TRUNC;
#ifdef O_DIRECT
  if (options.direct_io) flags |= O_DIRECT;
#endif
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + ") failed: " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(options.capacity)) != 0) {
    ::close(fd);
    return Status::IoError("ftruncate failed: " + std::string(std::strerror(errno)));
  }
  return std::unique_ptr<FileDevice>(new FileDevice(path, fd, options));
}

Result<std::unique_ptr<FileDevice>> FileDevice::Open(const std::string& path,
                                                     const Options& options) {
  int flags = O_RDWR;
#ifdef O_DIRECT
  if (options.direct_io) flags |= O_DIRECT;
#endif
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::NotFound("open(" + path + ") failed: " + std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size <= 0) {
    ::close(fd);
    return Status::InvalidArgument(path + " is empty");
  }
  Options opened = options;
  opened.capacity = static_cast<uint64_t>(size);
  return std::unique_ptr<FileDevice>(new FileDevice(path, fd, opened));
}

Status FileDevice::ValidateRead(const IoRequest& req) const {
  if (req.buf == nullptr || req.length == 0) {
    return Status::InvalidArgument("null buffer or zero length");
  }
  if (!RangeInCapacity(req.offset, req.length, capacity_)) {
    return Status::OutOfRange("read beyond device capacity");
  }
  if (direct_io_ &&
      (req.offset % align_ != 0 || req.length % align_ != 0 ||
       reinterpret_cast<uintptr_t>(req.buf) % align_ != 0)) {
    return Status::InvalidArgument(
        "direct I/O read requires " + std::to_string(align_) +
        "-byte-aligned offset/length/buffer (offset=" +
        std::to_string(req.offset) + " length=" + std::to_string(req.length) +
        ")");
  }
  return Status::OK();
}

/// Read `r`'s full extent with pread, zero-filling past the written
/// extent; shared by the device pool and the per-queue pools.
static StatusCode PreadFully(int fd, const IoRequest& r) {
  size_t done = 0;
  while (done < r.length) {
    const ssize_t got =
        ::pread(fd, static_cast<uint8_t*>(r.buf) + done, r.length - done,
                static_cast<off_t>(r.offset + done));
    if (got < 0) {
      if (errno == EINTR) continue;
      return StatusCode::kIoError;
    }
    if (got == 0) {
      std::memset(static_cast<uint8_t*>(r.buf) + done, 0, r.length - done);
      break;
    }
    done += static_cast<size_t>(got);
  }
  return StatusCode::kOk;
}

/// \brief One native queue: its own pread-thread slice, inflight cap,
/// completion deque, and counters, over the parent's shared fd.
class FileDevice::Queue : public BlockDevice {
 public:
  Queue(FileDevice* parent, uint32_t id, const QueueOptions& options)
      : parent_(parent),
        id_(id),
        queue_capacity_(std::max(1u, options.queue_capacity)),
        pool_(std::make_unique<util::ThreadPool>(
            std::max(1u, options.io_threads))) {
    parent_->queue_registry_.Add(this);
  }

  ~Queue() override {
    // Drain this queue's in-flight reads before the completion deque and
    // the parent registry entry go away.
    pool_->Shutdown();
    parent_->queue_registry_.Remove(this);
  }

  Status SubmitRead(const IoRequest& req) override {
    E2_RETURN_NOT_OK(parent_->ValidateRead(req));
    if (inflight_.fetch_add(1, std::memory_order_relaxed) >= queue_capacity_) {
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      return Status::ResourceExhausted("queue full");
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.reads_submitted;
    }
    const uint64_t submit_ns = util::NowNs();
    const IoRequest r = req;
    pool_->Submit([this, r, submit_ns] {
      IoCompletion comp;
      comp.user_data = r.user_data;
      comp.code = PreadFully(parent_->fd_, r);
      comp.latency_ns = util::NowNs() - submit_ns;
      std::lock_guard<std::mutex> lock(mu_);
      completed_.push_back(comp);
      ++stats_.reads_completed;
      stats_.bytes_read += r.length;
      stats_.read_latency.Add(comp.latency_ns);
    });
    return Status::OK();
  }

  size_t PollCompletions(IoCompletion* out, size_t max) override {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    while (n < max && !completed_.empty()) {
      out[n++] = completed_.front();
      completed_.pop_front();
    }
    inflight_.fetch_sub(static_cast<uint32_t>(n), std::memory_order_relaxed);
    return n;
  }

  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    return parent_->Write(offset, data, length);
  }
  uint64_t capacity() const override { return parent_->capacity(); }
  uint32_t io_alignment() const override { return parent_->io_alignment(); }
  uint32_t outstanding() const override {
    return inflight_.load(std::memory_order_relaxed);
  }
  std::string name() const override {
    return parent_->name() + " nq" + std::to_string(id_);
  }
  DeviceStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DeviceStats{};
  }

 private:
  FileDevice* parent_;
  uint32_t id_;
  uint32_t queue_capacity_;
  std::unique_ptr<util::ThreadPool> pool_;
  std::atomic<uint32_t> inflight_{0};
  mutable std::mutex mu_;
  std::deque<IoCompletion> completed_;
  DeviceStats stats_;
};

Result<std::unique_ptr<BlockDevice>> FileDevice::CreateQueue(
    const QueueOptions& options) {
  const uint32_t id = static_cast<uint32_t>(queue_registry_.size());
  return std::unique_ptr<BlockDevice>(
      std::make_unique<Queue>(this, id, options));
}

Status FileDevice::SubmitRead(const IoRequest& req) {
  E2_RETURN_NOT_OK(ValidateRead(req));
  // Reserve the queue slot atomically: a load-then-add would let
  // concurrent submitters (engine shards sharing one file) overshoot the
  // queue capacity.
  if (inflight_.fetch_add(1, std::memory_order_relaxed) >= queue_capacity_) {
    inflight_.fetch_sub(1, std::memory_order_relaxed);
    return Status::ResourceExhausted("device queue full");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.reads_submitted;
  }
  const uint64_t submit_ns = util::NowNs();
  const IoRequest r = req;
  pool_->Submit([this, r, submit_ns] {
    IoCompletion comp;
    comp.user_data = r.user_data;
    comp.code = PreadFully(fd_, r);
    comp.latency_ns = util::NowNs() - submit_ns;
    {
      std::lock_guard<std::mutex> lock(mu_);
      completed_.push_back(comp);
      ++stats_.reads_completed;
      stats_.bytes_read += r.length;
      stats_.read_latency.Add(comp.latency_ns);
    }
  });
  return Status::OK();
}

size_t FileDevice::PollCompletions(IoCompletion* out, size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  while (n < max && !completed_.empty()) {
    out[n++] = completed_.front();
    completed_.pop_front();
  }
  inflight_.fetch_sub(static_cast<uint32_t>(n), std::memory_order_relaxed);
  return n;
}

Status FileDevice::Write(uint64_t offset, const void* data, uint32_t length) {
  if (!RangeInCapacity(offset, length, capacity_)) {
    return Status::OutOfRange("write beyond device capacity");
  }
  if (direct_io_ &&
      (offset % align_ != 0 || length % align_ != 0 ||
       reinterpret_cast<uintptr_t>(data) % align_ != 0)) {
    return Status::InvalidArgument(
        "direct I/O write requires " + std::to_string(align_) +
        "-byte-aligned offset/length/buffer (offset=" + std::to_string(offset) +
        " length=" + std::to_string(length) + ")");
  }
  size_t done = 0;
  while (done < length) {
    const ssize_t put = ::pwrite(fd_, static_cast<const uint8_t*>(data) + done,
                                 length - done, static_cast<off_t>(offset + done));
    if (put < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("pwrite failed: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(put);
  }
  std::lock_guard<std::mutex> lock(mu_);
  stats_.bytes_written += length;
  return Status::OK();
}

DeviceStats FileDevice::stats() const {
  DeviceStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  queue_registry_.MergeStats(&out);
  return out;
}

void FileDevice::ResetStats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DeviceStats{};
  }
  queue_registry_.ResetAll();
}

}  // namespace e2lshos::storage
