// E2LSHoS index construction (paper Sec. 5.3).
//
// For each radius R in the ladder and each compound hash l in [0, L):
// hash every database object, group objects by the u-bit table index of
// their 32-bit compound value, write each group as a linked chain of
// 512-byte bucket blocks, then write the table of chain-head addresses.
#pragma once

#include <memory>

#include "core/storage_index.h"

namespace e2lshos::core {

struct BuildOptions {
  uint32_t block_bytes = kDefaultBlockBytes;
  /// Table index bits; 0 = choose from n (log2(n) - 1, the paper's
  /// "slightly smaller than log2 n").
  uint32_t table_bits = 0;
  /// Stamp a CRC32C into every bucket block header and record
  /// per-sector CRCs of the table region (format v3, layout.h): the
  /// query engine then detects silent bit-rot and drops the affected
  /// candidates instead of returning garbage neighbors.
  bool checksums = true;
};

class IndexBuilder {
 public:
  /// Build an index for `base` on `device`. The device must be large
  /// enough for tables plus bucket chains; the builder fails with
  /// OutOfRange otherwise. The returned index borrows `device` (caller
  /// keeps ownership) and `base` must outlive query execution.
  static Result<std::unique_ptr<StorageIndex>> Build(
      const data::Dataset& base, const lsh::E2lshParams& params,
      storage::BlockDevice* device, const BuildOptions& options = {});
};

}  // namespace e2lshos::core
