// Tests for online index maintenance: insertion (in-place block append
// and chain-head prepend), deletion via tombstones, endurance accounting,
// and persistence of the updated state.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/builder.h"
#include "core/persistence.h"
#include "core/query_engine.h"
#include "core/updater.h"
#include "data/generators.h"
#include "storage/memory_device.h"

namespace e2lshos::core {
namespace {

struct Fixture {
  data::GeneratedData gen;
  lsh::E2lshParams params;
  std::unique_ptr<storage::MemoryDevice> device;
  std::unique_ptr<StorageIndex> index;
};

Fixture MakeFixture(uint64_t n = 3000, uint32_t dim = 24, double s_factor = 1000.0) {
  Fixture f;
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = 21;
  f.gen = data::Generate("upd", n, 30, spec);
  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = s_factor;
  cfg.x_max = f.gen.base.XMax();
  auto params = lsh::ComputeParams(n, dim, cfg);
  EXPECT_TRUE(params.ok());
  f.params = *params;
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  EXPECT_TRUE(dev.ok());
  f.device = std::move(dev.value());
  auto idx = IndexBuilder::Build(f.gen.base, f.params, f.device.get());
  EXPECT_TRUE(idx.ok());
  f.index = std::move(idx.value());
  return f;
}

TEST(Updater, InsertedObjectBecomesSearchable) {
  // Build on n-10 points, insert the held-out 10, and verify each is
  // found as its own exact nearest neighbor.
  auto f = MakeFixture();
  const uint64_t n_total = f.gen.base.n();
  const uint64_t n_initial = n_total - 10;

  data::Dataset initial("initial", f.gen.base.dim());
  for (uint64_t i = 0; i < n_initial; ++i) initial.Append(f.gen.base.Row(i));
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  ASSERT_TRUE(dev.ok());
  auto idx = IndexBuilder::Build(initial, f.params, dev->get());
  ASSERT_TRUE(idx.ok());

  IndexUpdater updater(idx->get());
  for (uint64_t i = n_initial; i < n_total; ++i) {
    ASSERT_TRUE(updater.Insert(f.gen.base, static_cast<uint32_t>(i)).ok());
  }
  EXPECT_EQ(updater.inserts(), 10u);
  EXPECT_GT(updater.bytes_written(), 0u);

  QueryEngine engine(idx->get(), &f.gen.base);
  for (uint64_t i = n_initial; i < n_total; ++i) {
    auto res = engine.Search(f.gen.base.Row(i), 1);
    ASSERT_TRUE(res.ok());
    ASSERT_FALSE(res->empty());
    EXPECT_EQ((*res)[0].id, static_cast<uint32_t>(i));
    EXPECT_EQ((*res)[0].dist, 0.f);
  }
}

TEST(Updater, InsertMatchesBulkBuiltIndex) {
  // Index built on n points must answer identically to an index built on
  // n-1 points with the last inserted online (same hash family, no
  // candidate truncation).
  auto f = MakeFixture(2000);
  const uint32_t last = static_cast<uint32_t>(f.gen.base.n() - 1);

  data::Dataset initial("initial", f.gen.base.dim());
  for (uint32_t i = 0; i < last; ++i) initial.Append(f.gen.base.Row(i));
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  ASSERT_TRUE(dev.ok());
  auto incremental = IndexBuilder::Build(initial, f.params, dev->get());
  ASSERT_TRUE(incremental.ok());
  IndexUpdater updater(incremental->get());
  ASSERT_TRUE(updater.Insert(f.gen.base, last).ok());

  QueryEngine bulk_engine(f.index.get(), &f.gen.base);
  QueryEngine incr_engine(incremental->get(), &f.gen.base);
  auto bulk = bulk_engine.SearchBatch(f.gen.queries, 5);
  auto incr = incr_engine.SearchBatch(f.gen.queries, 5);
  ASSERT_TRUE(bulk.ok());
  ASSERT_TRUE(incr.ok());
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    ASSERT_EQ(bulk->results[q].size(), incr->results[q].size());
    for (size_t i = 0; i < bulk->results[q].size(); ++i) {
      EXPECT_EQ(bulk->results[q][i].id, incr->results[q][i].id) << "query " << q;
    }
  }
}

TEST(Updater, ManyInsertsGrowChains) {
  // Insert enough near-identical points to overflow head blocks and force
  // chain-head prepends; all must remain searchable. n = 3000 leaves
  // id-space headroom (ceil(log2 3000) = 12 bits -> 4096 ids).
  auto f = MakeFixture(3000);
  data::Dataset& base = f.gen.base;
  const uint32_t dim = base.dim();
  std::vector<float> clone(base.Row(0), base.Row(0) + dim);
  IndexUpdater updater(f.index.get());
  const uint32_t start = static_cast<uint32_t>(base.n());
  const uint64_t storage_before = f.index->sizes().storage_bytes;
  for (int i = 0; i < 120; ++i) {
    clone[0] += 0.0001f;  // near-duplicates share most buckets
    base.Append(clone.data());
    ASSERT_TRUE(updater.Insert(base, start + i).ok());
  }
  EXPECT_GT(f.index->sizes().storage_bytes, storage_before);
  QueryEngine engine(f.index.get(), &base);
  auto res = engine.Search(clone.data(), 1);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->empty());
  EXPECT_EQ((*res)[0].id, start + 119);
}

TEST(Updater, RemoveHidesObjectAndRestoreRevives) {
  auto f = MakeFixture();
  QueryEngine engine(f.index.get(), &f.gen.base);
  const uint32_t victim = 137;
  auto before = engine.Search(f.gen.base.Row(victim), 1);
  ASSERT_TRUE(before.ok());
  ASSERT_EQ((*before)[0].id, victim);

  IndexUpdater updater(f.index.get());
  ASSERT_TRUE(updater.Remove(victim).ok());
  EXPECT_EQ(f.index->num_tombstones(), 1u);
  auto after = engine.Search(f.gen.base.Row(victim), 1);
  ASSERT_TRUE(after.ok());
  ASSERT_FALSE(after->empty());
  EXPECT_NE((*after)[0].id, victim);
  EXPECT_GT((*after)[0].dist, 0.f);

  ASSERT_TRUE(updater.Restore(victim).ok());
  auto revived = engine.Search(f.gen.base.Row(victim), 1);
  ASSERT_TRUE(revived.ok());
  EXPECT_EQ((*revived)[0].id, victim);
}

TEST(Updater, RemoveIsIdempotent) {
  auto f = MakeFixture(500);
  IndexUpdater updater(f.index.get());
  ASSERT_TRUE(updater.Remove(3).ok());
  ASSERT_TRUE(updater.Remove(3).ok());
  EXPECT_EQ(f.index->num_tombstones(), 1u);
}

TEST(Updater, RejectsIdBeyondIdSpace) {
  auto f = MakeFixture(500);
  data::Dataset& base = f.gen.base;
  std::vector<float> p(base.dim(), 0.f);
  // Grow the dataset far past the id space fixed at build time.
  const uint64_t limit = 1ULL << ObjectInfoCodec::Make(
                             500, f.index->layout().fp).value().id_bits;
  while (base.n() <= limit) base.Append(p.data());
  IndexUpdater updater(f.index.get());
  EXPECT_EQ(updater.Insert(base, static_cast<uint32_t>(limit)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Updater, EnduranceAccountingPerInsert) {
  // Each insert writes at most (blocks touched) * 512 B across all
  // (radius, l) pairs — the paper's "impact of insertion is small" claim
  // in numbers.
  auto f = MakeFixture(2000);
  data::Dataset& base = f.gen.base;
  std::vector<float> p(base.Row(42), base.Row(42) + base.dim());
  base.Append(p.data());
  IndexUpdater updater(f.index.get());
  ASSERT_TRUE(updater.Insert(base, static_cast<uint32_t>(base.n() - 1)).ok());
  const uint64_t pairs = static_cast<uint64_t>(f.params.num_radii()) * f.params.L;
  // Upper bound: one block write + one table write per pair.
  EXPECT_LE(updater.bytes_written(), pairs * (512 + 8));
  EXPECT_GT(updater.bytes_written(), 0u);
}

TEST(Updater, TombstonesSurvivePersistence) {
  auto f = MakeFixture(800);
  IndexUpdater updater(f.index.get());
  ASSERT_TRUE(updater.Remove(7).ok());
  ASSERT_TRUE(updater.Remove(9).ok());
  const std::string meta = ::testing::TempDir() + "/e2_upd_meta.bin";
  ASSERT_TRUE(SaveIndexMeta(*f.index, meta).ok());
  auto loaded = LoadIndexMeta(meta, f.device.get());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_tombstones(), 2u);
  EXPECT_TRUE((*loaded)->IsDeleted(7));
  EXPECT_TRUE((*loaded)->IsDeleted(9));
  EXPECT_FALSE((*loaded)->IsDeleted(8));
  std::remove(meta.c_str());
}

}  // namespace
}  // namespace e2lshos::core
