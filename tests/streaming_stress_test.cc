// Stress, soak, and fault-injection coverage for the streaming serving
// path (runs under the TSan preset via the `concurrency` label, and
// RUN_SERIAL because the soak test asserts wall-clock pacing):
//
//   * several producer threads submitting through the MPMC
//     SubmissionQueue while the server's shard workers drain over a
//     shared FileDevice / StripedDevice — every query delivered exactly
//     once with the same results as the one-shot batch API;
//   * a FaultyDevice-backed run asserting per-query error surfacing
//     (io_errors in the delivered stats) without wedging the pipeline;
//   * an arrival-rate soak: a paced open-loop producer, with the
//     latency/QPS accounting checked against the offered rate.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <thread>

#include "core/builder.h"
#include "core/query_stream.h"
#include "core/sharded_engine.h"
#include "core/streaming_server.h"
#include "storage/faulty_device.h"
#include "storage/file_device.h"
#include "storage/striped_device.h"
#include "streaming_test_util.h"
#include "util/clock.h"

namespace e2lshos::core {
namespace {

data::GeneratedData MakeData(uint64_t seed) {
  return MakeStreamingTestData(seed);
}

lsh::E2lshParams MakeParams(const data::Dataset& base) {
  return NeverDrainParams(base);
}

TEST(StreamingStress, MultiProducersOverSharedFileDevice) {
  const auto gen = MakeData(41);
  const auto params = MakeParams(gen.base);
  const std::string path = ::testing::TempDir() + "/e2_streaming_stress.bin";
  storage::FileDevice::Options opt;
  opt.capacity = 1ULL << 30;
  auto dev = storage::FileDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  auto index = IndexBuilder::Build(gen.base, params, dev->get());
  ASSERT_TRUE(index.ok());

  ShardOptions sopts;
  sopts.num_shards = 4;
  ShardedQueryEngine engine(index->get(), &gen.base, sopts);
  auto ref = engine.SearchBatch(gen.queries, 10);
  ASSERT_TRUE(ref.ok());

  Collector collector;
  ServerOptions opts;
  opts.k = 10;
  opts.max_batch_size = 8;
  opts.max_wait_us = 100;
  opts.on_result = collector.Callback();
  StreamingServer server(&engine, opts);

  SubmissionQueue queue(gen.queries.dim(), 64);
  ASSERT_TRUE(server.Start(&queue).ok());

  constexpr int kProducers = 4;
  constexpr int kPerProducer = 150;
  std::mutex id_mu;
  std::map<uint64_t, uint64_t> id_to_row;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t row =
            (static_cast<uint64_t>(t) * 151 + i) % gen.queries.n();
        auto id = queue.Submit(gen.queries.Row(row));
        ASSERT_TRUE(id.ok());
        std::lock_guard<std::mutex> lock(id_mu);
        id_to_row[*id] = row;
      }
    });
  }
  for (auto& p : producers) p.join();
  queue.Close();
  server.Wait();

  std::lock_guard<std::mutex> lock(collector.mu);
  ASSERT_EQ(collector.results.size(),
            static_cast<size_t>(kProducers) * kPerProducer);
  for (const auto& [id, row] : id_to_row) {
    ASSERT_EQ(collector.deliveries[id], 1) << "query id " << id;
    const QueryResult& r = collector.results[id];
    ASSERT_TRUE(r.status.ok()) << "query id " << id;
    ExpectSameNeighbors(r.neighbors, ref->results[row], id);
  }
  const StreamingSnapshot snap = server.stats();
  EXPECT_EQ(snap.completed, static_cast<uint64_t>(kProducers) * kPerProducer);
  EXPECT_EQ(snap.failed, 0u);
  EXPECT_GT(snap.batches, 0u);
  EXPECT_GE(snap.mean_batch_size, 1.0);
  EXPECT_LE(snap.mean_batch_size, opts.max_batch_size);
  std::remove(path.c_str());
}

TEST(StreamingStress, StreamsOverStripedFileDevices) {
  const auto gen = MakeData(43);
  const auto params = MakeParams(gen.base);
  std::vector<std::string> paths;
  std::vector<std::unique_ptr<storage::BlockDevice>> children;
  for (int i = 0; i < 2; ++i) {
    paths.push_back(::testing::TempDir() + "/e2_streaming_stripe_" +
                    std::to_string(i) + ".bin");
    storage::FileDevice::Options opt;
    opt.capacity = 512ULL << 20;
    auto dev = storage::FileDevice::Create(paths.back(), opt);
    ASSERT_TRUE(dev.ok());
    children.push_back(std::move(dev).value());
  }
  auto striped = storage::StripedDevice::Create(std::move(children));
  ASSERT_TRUE(striped.ok());
  auto index = IndexBuilder::Build(gen.base, params, striped->get());
  ASSERT_TRUE(index.ok());

  ShardOptions sopts;
  sopts.num_shards = 2;
  ShardedQueryEngine engine(index->get(), &gen.base, sopts);
  auto ref = engine.SearchBatch(gen.queries, 10);
  ASSERT_TRUE(ref.ok());

  Collector collector;
  ServerOptions opts;
  opts.k = 10;
  opts.max_batch_size = 4;
  opts.on_result = collector.Callback();
  StreamingServer server(&engine, opts);

  // Two producers over the MPMC queue, two shard workers over the stripe
  // set (each shard's queue pair fans out to both child FileDevices).
  SubmissionQueue queue(gen.queries.dim(), 32);
  ASSERT_TRUE(server.Start(&queue).ok());
  std::mutex id_mu;
  std::map<uint64_t, uint64_t> id_to_row;
  std::vector<std::thread> producers;
  for (int t = 0; t < 2; ++t) {
    producers.emplace_back([&, t] {
      for (uint64_t q = t; q < gen.queries.n(); q += 2) {
        auto id = queue.Submit(gen.queries.Row(q));
        ASSERT_TRUE(id.ok());
        std::lock_guard<std::mutex> lock(id_mu);
        id_to_row[*id] = q;
      }
    });
  }
  for (auto& p : producers) p.join();
  queue.Close();
  server.Wait();

  std::lock_guard<std::mutex> lock(collector.mu);
  ASSERT_EQ(collector.results.size(), gen.queries.n());
  for (const auto& [id, row] : id_to_row) {
    ASSERT_EQ(collector.deliveries[id], 1) << "query id " << id;
    const QueryResult& r = collector.results[id];
    ASSERT_TRUE(r.status.ok()) << "query id " << id;
    ExpectSameNeighbors(r.neighbors, ref->results[row], id);
  }
  for (const auto& p : paths) std::remove(p.c_str());
}

TEST(StreamingStress, FaultyDeviceDeliversPerQueryErrorsWithoutWedging) {
  const auto gen = MakeData(47);
  const auto params = MakeParams(gen.base);
  const std::string path = ::testing::TempDir() + "/e2_streaming_faulty.bin";
  storage::FileDevice::Options opt;
  opt.capacity = 1ULL << 30;
  auto dev = storage::FileDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  auto index = IndexBuilder::Build(gen.base, params, dev->get());
  ASSERT_TRUE(index.ok());

  storage::FaultyDevice::Options fopt;
  fopt.submit_fail_rate = 0.05;
  fopt.completion_fail_rate = 0.05;
  storage::FaultyDevice faulty(dev->get(), fopt);
  auto view = (*index)->WithDevice(&faulty);

  ShardOptions sopts;
  sopts.num_shards = 2;
  ShardedQueryEngine engine(view.get(), &gen.base, sopts);

  Collector collector;
  ServerOptions opts;
  opts.k = 5;
  opts.max_batch_size = 8;
  opts.on_result = collector.Callback();
  StreamingServer server(&engine, opts);

  SubmissionQueue queue(gen.queries.dim(), 64);
  ASSERT_TRUE(server.Start(&queue).ok());
  constexpr int kProducers = 2;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int t = 0; t < kProducers; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        const uint64_t row =
            (static_cast<uint64_t>(t) * 37 + i) % gen.queries.n();
        ASSERT_TRUE(queue.Submit(gen.queries.Row(row)).ok());
      }
    });
  }
  for (auto& p : producers) p.join();
  queue.Close();
  server.Wait();  // must return: injected faults never wedge the pipeline

  std::lock_guard<std::mutex> lock(collector.mu);
  const uint64_t total = static_cast<uint64_t>(kProducers) * kPerProducer;
  ASSERT_EQ(collector.results.size(), total);
  uint64_t io_errors = 0, answered = 0;
  for (const auto& [id, r] : collector.results) {
    ASSERT_EQ(collector.deliveries[id], 1) << "query id " << id;
    io_errors += r.stats.io_errors;
    answered += !r.neighbors.empty();
  }
  // Faults were injected and surfaced per query...
  EXPECT_GT(faulty.injected_submit_failures() +
                faulty.injected_completion_failures(),
            0u);
  EXPECT_GT(io_errors, 0u);
  // ...while the engine stayed best-effort: the vast majority answered.
  EXPECT_GE(answered, total * 8 / 10);
  EXPECT_EQ(server.stats().completed, total);
  std::remove(path.c_str());
}

// Arrival-rate soak: an open-loop producer paced at a fixed offered rate.
// Asserts wall-clock pacing, so this suite is RUN_SERIAL in CMake; the
// bounds are loose enough to hold under the TSan slowdown.
TEST(StreamingStress, ArrivalRateSoakKeepsUpAndAccountsLatency) {
  const auto gen = MakeData(53);
  const auto params = MakeParams(gen.base);
  const std::string path = ::testing::TempDir() + "/e2_streaming_soak.bin";
  storage::FileDevice::Options opt;
  opt.capacity = 1ULL << 30;
  auto dev = storage::FileDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  auto index = IndexBuilder::Build(gen.base, params, dev->get());
  ASSERT_TRUE(index.ok());

  ShardOptions sopts;
  sopts.num_shards = 2;
  ShardedQueryEngine engine(index->get(), &gen.base, sopts);

  Collector collector;
  ServerOptions opts;
  opts.k = 5;
  opts.max_batch_size = 16;
  opts.max_wait_us = 500;
  opts.on_result = collector.Callback();
  StreamingServer server(&engine, opts);

  SubmissionQueue queue(gen.queries.dim(), 256);
  ASSERT_TRUE(server.Start(&queue).ok());

  constexpr double kOfferedQps = 200.0;
  constexpr uint64_t kCount = 300;  // ~1.5 s of traffic
  const uint64_t interval_ns = static_cast<uint64_t>(1e9 / kOfferedQps);
  const uint64_t t0 = util::NowNs();
  double mid_run_sustained = -1.0;
  for (uint64_t i = 0; i < kCount; ++i) {
    const uint64_t deadline = t0 + i * interval_ns;
    while (util::NowNs() < deadline) {
      std::this_thread::yield();
    }
    ASSERT_TRUE(queue.Submit(gen.queries.Row(i % gen.queries.n())).ok());
    if (i == kCount / 2) {
      mid_run_sustained = server.stats().sustained_qps;
    }
  }
  const uint64_t submit_elapsed_ns = util::NowNs() - t0;
  queue.Close();
  server.Wait();

  // Pacing actually throttled the producer.
  EXPECT_GE(submit_elapsed_ns, (kCount - 1) * interval_ns);

  const StreamingSnapshot snap = server.stats();
  EXPECT_EQ(snap.completed, kCount);
  EXPECT_EQ(snap.failed, 0u);
  // The engine kept up with the offered rate (loose lower bound for
  // sanitizer slowdowns) and did not invent throughput out of thin air.
  EXPECT_GE(snap.overall_qps, kOfferedQps * 0.25);
  EXPECT_LE(snap.overall_qps, kOfferedQps * 1.5);
  // Mid-run the sliding window saw traffic in the same regime.
  EXPECT_GT(mid_run_sustained, 0.0);
  EXPECT_LE(mid_run_sustained, kOfferedQps * 3.0);
  // Latency accounting is coherent.
  EXPECT_GT(snap.p50_ns, 0u);
  EXPECT_LE(snap.p50_ns, snap.p95_ns);
  EXPECT_LE(snap.p95_ns, snap.p99_ns);
  EXPECT_LE(snap.p99_ns, snap.max_ns);
  EXPECT_GT(snap.mean_latency_ns, 0.0);

  std::lock_guard<std::mutex> lock(collector.mu);
  EXPECT_EQ(collector.results.size(), kCount);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace e2lshos::core
