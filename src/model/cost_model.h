// The paper's query-time model of E2LSHoS (Sec. 4.1) and the storage
// performance requirement solvers derived from it (Secs. 4.4-4.5).
//
// Synchronous I/O (Fig. 1(A), Eq. 6):
//   T_sync = T_compute + N_IO * (T_request + T_read)
//
// Asynchronous I/O (Fig. 1(B), Eq. 7) — CPU and storage overlap, the
// longer side dominates:
//   T_async = max(T_compute + N_IO * T_request, N_IO * T_read)
//
// Requirements for T_async <= T_target (Eqs. 10, 11):
//   1/T_request >= N_IO / (T_target - T_compute)   [CPU-side]
//   1/T_read    >= N_IO / T_target                 [storage IOPS]
//
// For in-memory-speed targets, T_compute ~= 0.9 * T_E2LSH (the ~10%
// memory-stall saving of the smaller E2LSHoS footprint, Sec. 4.5),
// giving Eq. 16: 1/T_request >= 10 * N_IO / T_E2LSH.
#pragma once

#include <cstdint>
#include <vector>

namespace e2lshos::model {

/// \brief Inputs to the query-time model. All times in nanoseconds,
/// per query.
struct CostInputs {
  double t_compute_ns = 0;  ///< Hashing + distance checking CPU time.
  double n_io = 0;          ///< Average I/Os per query.
  double t_request_ns = 0;  ///< CPU overhead per I/O (interface, Table 3).
  double t_read_ns = 0;     ///< Storage time per I/O = 1e9 / IOPS.
};

/// Eq. 6: synchronous query time.
double SyncQueryTimeNs(const CostInputs& in);

/// Eq. 7: asynchronous query time.
double AsyncQueryTimeNs(const CostInputs& in);

/// Eq. 9 (sync): required storage IOPS to hit `t_target_ns`.
/// Returns +inf when the target is unreachable (t_target <= t_compute).
double RequiredIopsSync(double n_io, double t_target_ns, double t_compute_ns);

/// Eq. 11 (async): required storage IOPS to hit `t_target_ns`.
double RequiredIopsAsync(double n_io, double t_target_ns);

/// Eq. 10 (async): required 1/T_request in IOPS/core.
/// Returns +inf when unreachable.
double RequiredRequestIops(double n_io, double t_target_ns, double t_compute_ns);

/// Eq. 16: required 1/T_request for in-memory-speed targets, with
/// T_compute = stall_factor * T_E2LSH (paper: 0.9).
double RequiredRequestIopsInMemory(double n_io, double t_e2lsh_ns,
                                   double stall_factor = 0.9);

/// \brief N_IO at a finite read block size B (Sec. 4.3, Fig. 3).
///
/// Given the entries read per probed bucket for one or more queries, each
/// probed bucket costs 1 hash-table I/O plus ceil(entries / per_io) bucket
/// I/Os. The paper's Fig. 3 analysis assumes 4-byte object entries, i.e.
/// per_io = B / 4; the E2LSHoS implementation packs 99 5-byte entries plus
/// a 16-byte header into 512 bytes (use ObjectsPerBlock for that variant).
double IoCountForBlockSize(const std::vector<uint32_t>& bucket_read_sizes,
                           uint32_t objects_per_io, uint64_t num_queries);

/// N_IO with unlimited block size: 2 I/Os per probed bucket.
double IoCountInfiniteBlock(uint64_t buckets_probed, uint64_t num_queries);

}  // namespace e2lshos::model
