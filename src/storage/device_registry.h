// Device models calibrated to the paper's Table 2 and the configuration
// matrix of Table 5.
//
//   Table 2 (measured random-read kIOPS at 512 B):
//     device   QD=1     QD=128
//     cSSD       7.2       273
//     eSSD      27.6     1,400
//     XLFDD    132.3     3,860
//     HDD       0.21      0.54
//
// Calibration: service_time = 1 / IOPS(QD=1);
//              parallel_units = round(IOPS(QD=128) * service_time).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/simulated_device.h"

namespace e2lshos::storage {

/// \brief Named device models from Table 2.
enum class DeviceKind { kCssd, kEssd, kXlfdd, kHdd };

/// Return the calibrated model for a device kind.
DeviceModel GetDeviceModel(DeviceKind kind);

/// All Table 2 device kinds with display names.
std::vector<std::pair<DeviceKind, std::string>> AllDeviceKinds();

/// Instantiate a simulated device of the given kind.
Result<std::unique_ptr<SimulatedDevice>> MakeDevice(DeviceKind kind);

/// \brief One row of Table 5: a device type and count.
struct StorageConfig {
  DeviceKind kind;
  uint32_t count;
  std::string DisplayName() const;
};

/// The five storage configurations evaluated in Table 5.
std::vector<StorageConfig> Table5Configs();

// ---------------------------------------------------------------------------
// Real-file backends. The simulated kinds above model the paper's
// hardware; these serve an actual index image on an actual SSD. "file"
// is the pread-thread-pool emulation, "uring" submits genuine async I/O
// through io_uring (real queue depth, no per-read thread hop).
// ---------------------------------------------------------------------------

/// \brief How a real backing file is driven. Selected through the
/// `file:` / `uring:` device-URI schemes below.
enum class FileBackendKind { kFile, kUring };

/// True when the backend can actually run here ("uring" needs the
/// compiled-in io_uring gate AND a kernel that accepts the syscalls;
/// "file" always can).
bool FileBackendAvailable(FileBackendKind kind);

/// \brief Shared option surface for the real-file backends.
struct FileBackendOptions {
  uint64_t capacity = 0;       ///< Create() sizes the file to this.
  uint32_t queue_capacity = 1024;
  bool direct_io = false;
  uint32_t io_threads = 4;     ///< FileDevice only: pread pool width.
  bool sqpoll = false;         ///< UringDevice only: kernel SQ polling.
};

/// Create (truncate) `path` under the chosen backend.
Result<std::unique_ptr<BlockDevice>> CreateFileBackend(
    FileBackendKind kind, const std::string& path,
    const FileBackendOptions& options);

/// Open an existing file (capacity from file size) under the backend.
Result<std::unique_ptr<BlockDevice>> OpenFileBackend(
    FileBackendKind kind, const std::string& path,
    const FileBackendOptions& options);

// ---------------------------------------------------------------------------
// Device URIs. One string selects and configures any backend, so every
// entry point (e2lshos::Index, e2lshos_cli --device, bench::Args) shares
// a single vocabulary instead of a per-tool flag zoo:
//
//   mem:                          DRAM device (tests, the T_read = 0 limit)
//   sim:cssd                      one simulated Table-2 device
//   sim:essd*8?iface=spdk        eSSD x 8 stripe behind the SPDK cost model
//   file:/path/img?direct=1&threads=8   real file, pread thread pool
//   uring:/path/img?direct=1&sqpoll=1   real file, io_uring backend
//   uring:/path/img?queues=8&fixed=1    native per-shard rings + READ_FIXED
//   sim:cssd?cache=64m                  DRAM read cache over any stack
//   sim:cssd?fault=complete:0.01,stall:500&retry=3   chaos: faults + retry
//
// Query keys are scheme-checked: an unknown key, a malformed value, or a
// key that does not apply to the scheme is an InvalidArgument, never
// silently ignored. Sizes (`capacity`, `cache`) accept k/m/g/t suffixes.
// ---------------------------------------------------------------------------

/// \brief A parsed device URI. Field applicability by scheme:
/// `sim_kind`/`sim_count`/`iface` for sim:, `path`/`direct_io` for
/// file: and uring:, `io_threads` for file:, `sqpoll`/`fixed_buffers`
/// for uring:, `queue_capacity`/`queues`/`capacity`/`cache_bytes` for
/// all schemes.
struct DeviceUri {
  enum class Scheme { kMem, kSim, kFile, kUring };

  Scheme scheme = Scheme::kMem;
  DeviceKind sim_kind = DeviceKind::kCssd;  ///< sim: device model.
  uint32_t sim_count = 1;                   ///< sim: stripe width (`*N`).
  /// sim: optional interface cost model wrapped around the stack
  /// (`io_uring`, `spdk`, `xlfdd`, `mmap`); empty = no CPU charge.
  std::string iface;
  std::string path;         ///< file:/uring: backing file.
  bool direct_io = false;   ///< file:/uring: `direct=1` -> O_DIRECT.
  bool sqpoll = false;      ///< uring: `sqpoll=1` -> kernel SQ polling.
  uint32_t io_threads = 4;  ///< file: `threads=N` pread pool width.
  uint32_t queue_capacity = 0;  ///< `queue=N`; 0 = backend default.
  uint64_t capacity = 0;        ///< `capacity=SIZE`; 0 = caller decides.
  /// `queues=N`: native-queue policy for sharded serving over this
  /// device. kQueuesAuto (the default, not serialized) = native queues
  /// whenever the device offers them; 0 = force the QueueRouter shim;
  /// N >= 1 = native, but only up to N shards (beyond that, the router).
  static constexpr uint32_t kQueuesAuto = 0xffffffffu;
  uint32_t queues = kQueuesAuto;
  /// `fixed=1` (uring: only): engines register their I/O arenas at
  /// startup so reads go out as READ_FIXED (no per-I/O page pinning).
  bool fixed_buffers = false;
  /// `cache=SIZE[k|m|g|t]` (every scheme): wrap the stack in a
  /// transparent DRAM read cache of this many bytes
  /// (storage/cache_device.h) as the outermost layer, so hits skip
  /// device latency and any iface CPU charge. 0 = no cache.
  uint64_t cache_bytes = 0;
  /// `fault=submit:P,complete:P,corrupt:P,stall:USEC[,stallp:P][,seed:N]`
  /// (every scheme): wrap the bare stack in a fault-injection layer
  /// (storage/faulty_device.h). Sub-keys are comma-separated `name:value`
  /// pairs, all optional but at least one required: submit/complete are
  /// transient-failure probabilities, corrupt the per-offset bit-rot
  /// probability, stall a latency spike in microseconds applied with
  /// probability stallp (default 0.01 once stall is set), seed the
  /// injection seed (default 13).
  bool fault = false;
  double fault_submit = 0.0;
  double fault_complete = 0.0;
  double fault_corrupt = 0.0;
  uint64_t fault_stall_usec = 0;
  double fault_stall_rate = 0.0;
  uint64_t fault_seed = 13;
  /// `retry=N[,backoff:USEC][,deadline:USEC]` (every scheme): wrap the
  /// stack (outside `fault=`, inside `cache=`) in a bounded-retry layer
  /// (storage/retry_device.h): N total attempts, exponential backoff
  /// with jitter starting at backoff microseconds (default 200), and an
  /// optional per-request deadline. 0 = no retry layer.
  uint32_t retry_attempts = 0;
  uint64_t retry_backoff_usec = 200;
  uint64_t retry_deadline_usec = 0;

  /// Canonical string form; ParseDeviceUri(ToString()) reproduces this
  /// struct exactly (round-trip pinned by api_test).
  std::string ToString() const;

  const char* scheme_name() const;
};

/// Parse a device URI string. Errors (InvalidArgument) on an unknown
/// scheme, an unknown or scheme-inapplicable query key, a malformed
/// value, a `sim:` body that is not kind[*N], or a non-empty `mem:` body.
Result<DeviceUri> ParseDeviceUri(const std::string& uri);

/// \brief How OpenDeviceUri materializes the device.
struct DeviceUriOpenOptions {
  /// file:/uring: create (truncate) the backing file instead of opening
  /// an existing one. mem:/sim: devices are always created fresh.
  bool create = false;
  /// Capacity when the URI does not carry `capacity=` (mem: size, the
  /// created file size, or a sim: device's per-child size — overriding
  /// the model's multi-terabyte nameplate, which not every host can
  /// even map sparsely; 0 keeps the nameplate). Ignored when opening an
  /// existing file (size comes from the file).
  uint64_t capacity = 0;
  /// Queue depth cap when the URI does not carry `queue=`.
  uint32_t default_queue_capacity = 1024;
};

/// Instantiate the device a URI describes (the single front door the
/// facade, CLI, and benches share). `uring:` on a host that cannot run
/// io_uring returns Unimplemented; a file:/uring: URI with an empty path
/// returns InvalidArgument.
Result<std::unique_ptr<BlockDevice>> OpenDeviceUri(
    const DeviceUri& uri, const DeviceUriOpenOptions& options);
Result<std::unique_ptr<BlockDevice>> OpenDeviceUri(
    const std::string& uri, const DeviceUriOpenOptions& options);

}  // namespace e2lshos::storage
