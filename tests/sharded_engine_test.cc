// Tests for ShardedQueryEngine: sharded execution over a shared device
// must return exactly the results of a single QueryEngine — same ids,
// same distances, in the same query order — for any shard count, and the
// merged BatchResult must aggregate stats and wall time correctly.
#include <gtest/gtest.h>

#include <cmath>

#include "core/builder.h"
#include "core/query_engine.h"
#include "core/sharded_engine.h"
#include "data/generators.h"
#include "storage/simulated_device.h"

namespace e2lshos::core {
namespace {

// One deterministic workload + index on a SimulatedDevice, shared by all
// tests (the build is the expensive part). The candidate cap S is set far
// above the database size so no query ever hits the draining cutoff —
// the per-query candidate set is then independent of I/O completion
// order and results are bit-reproducible across engine configurations.
struct Fixture {
  data::GeneratedData gen;
  lsh::E2lshParams params;
  std::unique_ptr<storage::SimulatedDevice> dev;
  std::unique_ptr<StorageIndex> index;
};

Fixture* GetFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    data::GeneratorSpec spec;
    spec.kind = data::GeneratorKind::kClustered;
    spec.dim = 24;
    spec.num_clusters = 16;
    spec.cluster_std = 3.0 / std::sqrt(48.0);
    spec.center_spread = 10.0 * std::sqrt(6.0 / 24.0);
    spec.seed = 7;
    fx->gen = data::Generate("sharded", 3000, 30, spec);

    lsh::E2lshConfig cfg;
    cfg.rho = 0.25;
    cfg.s_factor = 1000.0;  // never drain: deterministic candidate sets
    cfg.x_max = fx->gen.base.XMax();
    auto params = lsh::ComputeParams(fx->gen.base.n(), fx->gen.base.dim(), cfg);
    EXPECT_TRUE(params.ok());
    fx->params = *params;

    storage::DeviceModel model{"fast-ssd", 16, 2000, 4096, 2ULL << 30};
    auto dev = storage::SimulatedDevice::Create(model);
    EXPECT_TRUE(dev.ok());
    fx->dev = std::move(dev).value();
    auto idx = IndexBuilder::Build(fx->gen.base, fx->params, fx->dev.get());
    EXPECT_TRUE(idx.ok());
    fx->index = std::move(idx).value();
    return fx;
  }();
  return f;
}

void ExpectBatchesEqual(const BatchResult& got, const BatchResult& want) {
  ASSERT_EQ(got.results.size(), want.results.size());
  for (size_t q = 0; q < want.results.size(); ++q) {
    ASSERT_EQ(got.results[q].size(), want.results[q].size()) << "query " << q;
    for (size_t i = 0; i < want.results[q].size(); ++i) {
      EXPECT_EQ(got.results[q][i].id, want.results[q][i].id)
          << "query " << q << " rank " << i;
      EXPECT_EQ(got.results[q][i].dist, want.results[q][i].dist)
          << "query " << q << " rank " << i;
    }
  }
}

TEST(ShardedQueryEngine, MatchesSingleEngineAcrossShardCountsAndK) {
  Fixture* f = GetFixture();
  for (const uint32_t k : {1u, 10u}) {
    QueryEngine single(f->index.get(), &f->gen.base);
    auto ref = single.SearchBatch(f->gen.queries, k);
    ASSERT_TRUE(ref.ok());

    for (const uint32_t shards : {1u, 2u, 4u, 7u}) {
      ShardOptions opts;
      opts.num_shards = shards;
      ShardedQueryEngine engine(f->index.get(), &f->gen.base, opts);
      ASSERT_EQ(engine.num_shards(), shards);
      auto got = engine.SearchBatch(f->gen.queries, k);
      ASSERT_TRUE(got.ok()) << "shards=" << shards << " k=" << k;
      ExpectBatchesEqual(*got, *ref);
    }
  }
}

TEST(ShardedQueryEngine, BatchSmallerThanShardCount) {
  Fixture* f = GetFixture();
  data::Dataset small("small", f->gen.queries.dim());
  for (uint64_t q = 0; q < 3; ++q) small.Append(f->gen.queries.Row(q));

  QueryEngine single(f->index.get(), &f->gen.base);
  auto ref = single.SearchBatch(small, 10);
  ASSERT_TRUE(ref.ok());

  ShardOptions opts;
  opts.num_shards = 7;
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, opts);
  auto got = engine.SearchBatch(small, 10);
  ASSERT_TRUE(got.ok());
  ExpectBatchesEqual(*got, *ref);
}

TEST(ShardedQueryEngine, EmptyBatch) {
  Fixture* f = GetFixture();
  data::Dataset empty("empty", f->gen.queries.dim());
  ShardOptions opts;
  opts.num_shards = 4;
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, opts);
  auto got = engine.SearchBatch(empty, 10);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->results.empty());
  EXPECT_TRUE(got->stats.empty());
  EXPECT_EQ(got->QueriesPerSecond(), 0.0);
  EXPECT_EQ(got->MeanIos(), 0.0);
}

TEST(ShardedQueryEngine, RejectsBadArguments) {
  Fixture* f = GetFixture();
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, {});
  EXPECT_EQ(engine.SearchBatch(f->gen.queries, 0).status().code(),
            StatusCode::kInvalidArgument);
  data::Dataset wrong_dim("wrong", f->gen.queries.dim() + 1);
  std::vector<float> row(wrong_dim.dim(), 0.0f);
  wrong_dim.Append(row.data());
  EXPECT_EQ(engine.SearchBatch(wrong_dim, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ShardedQueryEngine, DerivesPerShardBudgetsFromGlobalCaps) {
  Fixture* f = GetFixture();
  ShardOptions opts;
  opts.num_shards = 4;
  opts.total_contexts = 32;
  opts.total_inflight_ios = 256;
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, opts);
  EXPECT_EQ(engine.shard_engine_options().num_contexts, 8u);
  EXPECT_EQ(engine.shard_engine_options().max_inflight_ios, 64u);

  // Budgets smaller than the shard count shed shards instead of
  // overshooting the global caps via a per-shard floor of one.
  opts.num_shards = 7;
  opts.total_contexts = 4;
  opts.total_inflight_ios = 4;
  ShardedQueryEngine tiny(f->index.get(), &f->gen.base, opts);
  EXPECT_EQ(tiny.num_shards(), 4u);
  EXPECT_EQ(tiny.shard_engine_options().num_contexts, 1u);
  EXPECT_EQ(tiny.shard_engine_options().max_inflight_ios, 1u);
}

TEST(ResolveShardCount, MatchesEngineResolution) {
  EXPECT_EQ(ResolveShardCount(3), 3u);
  EXPECT_EQ(ResolveShardCount(kMaxShards + 40), kMaxShards);
  const uint32_t auto_resolved = ResolveShardCount(0);
  EXPECT_GE(auto_resolved, 1u);
  EXPECT_LE(auto_resolved, kMaxShards);
}

TEST(PartitionBatch, ContiguousNearEqualRanges) {
  auto r = PartitionBatch(10, 4);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_EQ(r[0].begin, 0u);
  EXPECT_EQ(r[0].size(), 3u);
  EXPECT_EQ(r[1].size(), 3u);
  EXPECT_EQ(r[2].size(), 2u);
  EXPECT_EQ(r[3].size(), 2u);
  EXPECT_EQ(r[3].end, 10u);
  for (size_t s = 1; s < r.size(); ++s) EXPECT_EQ(r[s].begin, r[s - 1].end);

  // Batch smaller than the shard count: trailing shards get nothing.
  r = PartitionBatch(3, 7);
  ASSERT_EQ(r.size(), 7u);
  for (size_t s = 0; s < 3; ++s) EXPECT_EQ(r[s].size(), 1u);
  for (size_t s = 3; s < 7; ++s) EXPECT_EQ(r[s].size(), 0u);

  // Empty batch.
  r = PartitionBatch(0, 4);
  for (const auto& range : r) EXPECT_EQ(range.size(), 0u);
}

TEST(MergeShardResults, WallTimeIsWholeBatchNotSumOfShards) {
  // Regression: under sharding the batch wall time must come from one
  // clock spanning all shards. Two shards that each ran ~in parallel for
  // 100 and 200 ns within a 250 ns window must merge to 250, not 300.
  std::vector<BatchResult> shards(2);
  shards[0].results.resize(2);
  shards[0].stats.resize(2);
  shards[0].wall_ns = 100;
  shards[0].compute_ns = 40;
  shards[0].results[0] = {{7, 1.0f}};
  shards[0].results[1] = {{8, 2.0f}};
  shards[1].results.resize(1);
  shards[1].stats.resize(1);
  shards[1].wall_ns = 200;
  shards[1].compute_ns = 60;
  shards[1].results[0] = {{9, 3.0f}};

  const std::vector<ShardRange> ranges = {{0, 2}, {2, 3}};
  const uint64_t sum_of_shards = shards[0].wall_ns + shards[1].wall_ns;
  BatchResult merged = MergeShardResults(std::move(shards), ranges, 250);

  EXPECT_EQ(merged.wall_ns, 250u);
  EXPECT_NE(merged.wall_ns, sum_of_shards);
  EXPECT_EQ(merged.compute_ns, 100u);
  ASSERT_EQ(merged.results.size(), 3u);
  EXPECT_EQ(merged.results[0][0].id, 7u);
  EXPECT_EQ(merged.results[1][0].id, 8u);
  EXPECT_EQ(merged.results[2][0].id, 9u);
}

TEST(ShardedQueryEngine, MergedStatsSatisfyInvariants) {
  Fixture* f = GetFixture();
  ShardOptions opts;
  opts.num_shards = 4;
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, opts);
  auto batch = engine.SearchBatch(f->gen.queries, 10);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->stats.size(), f->gen.queries.n());

  uint64_t total_ios = 0;
  uint64_t total_radii = 0;
  for (size_t q = 0; q < batch->stats.size(); ++q) {
    const QueryStats& s = batch->stats[q];
    // Every I/O is either a table read or a bucket block read.
    EXPECT_EQ(s.ios, s.table_reads + s.bucket_block_reads) << "query " << q;
    EXPECT_GE(s.radii_searched, 1u) << "query " << q;
    EXPECT_GT(s.wall_ns, 0u) << "query " << q;
    total_ios += s.ios;
    total_radii += s.radii_searched;
  }
  const double n = static_cast<double>(batch->stats.size());
  EXPECT_DOUBLE_EQ(batch->MeanIos(), static_cast<double>(total_ios) / n);
  EXPECT_DOUBLE_EQ(batch->MeanRadii(), static_cast<double>(total_radii) / n);
  ASSERT_GT(batch->wall_ns, 0u);
  EXPECT_DOUBLE_EQ(batch->QueriesPerSecond(),
                   n * 1e9 / static_cast<double>(batch->wall_ns));
  EXPECT_GT(batch->compute_ns, 0u);
}

}  // namespace
}  // namespace e2lshos::core
