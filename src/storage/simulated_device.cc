#include "storage/simulated_device.h"

#include <algorithm>
#include <cstring>

#include "util/clock.h"

namespace e2lshos::storage {

/// \brief One native queue over the simulator: a private pending heap
/// gated on the same wall clock, dispatching to the shared flash units.
/// Submit takes the device lock once (unit allocation — the modeled
/// hardware contention point); everything else is queue-private.
class SimulatedDevice::Queue : public BlockDevice {
 public:
  Queue(SimulatedDevice* parent, uint32_t id, uint32_t queue_capacity)
      : parent_(parent), id_(id), queue_capacity_(queue_capacity) {
    parent_->queue_registry_.Add(this);
  }
  ~Queue() override { parent_->queue_registry_.Remove(this); }

  Status SubmitRead(const IoRequest& req) override {
    if (req.buf == nullptr || req.length == 0) {
      return Status::InvalidArgument("null buffer or zero length");
    }
    if (!RangeInCapacity(req.offset, req.length, parent_->backing_.capacity())) {
      return Status::OutOfRange("read beyond device capacity");
    }
    const uint64_t now = util::NowNs();
    std::lock_guard<std::mutex> lock(mu_);
    if (pending_.size() >= queue_capacity_) {
      return Status::ResourceExhausted("queue full");
    }
    Pending p;
    p.complete_at_ns = parent_->ScheduleOnUnit(now);
    p.submit_ns = now;
    p.user_data = req.user_data;
    p.offset = req.offset;
    p.length = req.length;
    p.buf = req.buf;
    pending_.push(p);
    ++stats_.reads_submitted;
    return Status::OK();
  }

  size_t PollCompletions(IoCompletion* out, size_t max) override {
    const uint64_t now = util::NowNs();
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    while (n < max && !pending_.empty() && pending_.top().complete_at_ns <= now) {
      const Pending& p = pending_.top();
      std::memcpy(p.buf, parent_->backing_.data() + p.offset, p.length);
      out[n].user_data = p.user_data;
      out[n].code = StatusCode::kOk;
      out[n].latency_ns = p.complete_at_ns - p.submit_ns;
      ++stats_.reads_completed;
      stats_.bytes_read += p.length;
      stats_.read_latency.Add(out[n].latency_ns);
      pending_.pop();
      ++n;
    }
    return n;
  }

  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    return parent_->Write(offset, data, length);
  }
  uint64_t capacity() const override { return parent_->capacity(); }
  uint32_t outstanding() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint32_t>(pending_.size());
  }
  std::string name() const override {
    return parent_->name() + " nq" + std::to_string(id_);
  }
  DeviceStats stats() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }
  void ResetStats() override {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DeviceStats{};
  }

 private:
  SimulatedDevice* parent_;
  uint32_t id_;
  uint32_t queue_capacity_;
  mutable std::mutex mu_;
  std::priority_queue<Pending, std::vector<Pending>, std::greater<Pending>> pending_;
  DeviceStats stats_;
};

uint64_t SimulatedDevice::ScheduleOnUnit(uint64_t now_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = std::min_element(unit_free_ns_.begin(), unit_free_ns_.end());
  const uint64_t start = std::max(now_ns, *it);
  const uint64_t done = start + model_.service_time_ns;
  *it = done;
  // Unit busy time is a device-wide quantity (Utilization spans all
  // queues), so it stays on the device counter.
  stats_.busy_ns += model_.service_time_ns;
  return done;
}

Result<std::unique_ptr<BlockDevice>> SimulatedDevice::CreateQueue(
    const QueueOptions& options) {
  const uint32_t id = static_cast<uint32_t>(queue_registry_.size());
  return std::unique_ptr<BlockDevice>(std::make_unique<Queue>(
      this, id, std::max(1u, options.queue_capacity)));
}

SimulatedDevice::SimulatedDevice(const DeviceModel& model) : model_(model) {
  unit_free_ns_.assign(model_.parallel_units, 0);
  stats_epoch_ns_ = util::NowNs();
}

Result<std::unique_ptr<SimulatedDevice>> SimulatedDevice::Create(
    const DeviceModel& model) {
  if (model.parallel_units == 0 || model.service_time_ns == 0) {
    return Status::InvalidArgument("device model needs units > 0 and service time > 0");
  }
  auto dev = std::unique_ptr<SimulatedDevice>(new SimulatedDevice(model));
  E2_RETURN_NOT_OK(dev->backing_.Map(model.capacity_bytes));
  return dev;
}

Status SimulatedDevice::SubmitRead(const IoRequest& req) {
  if (req.buf == nullptr || req.length == 0) {
    return Status::InvalidArgument("null buffer or zero length");
  }
  if (!RangeInCapacity(req.offset, req.length, backing_.capacity())) {
    return Status::OutOfRange("read beyond device capacity");
  }
  const uint64_t now = util::NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_.size() >= model_.queue_capacity) {
    return Status::ResourceExhausted("device queue full");
  }
  // Dispatch to the earliest-free flash unit.
  auto it = std::min_element(unit_free_ns_.begin(), unit_free_ns_.end());
  const uint64_t start = std::max(now, *it);
  const uint64_t done = start + model_.service_time_ns;
  *it = done;

  Pending p;
  p.complete_at_ns = done;
  p.submit_ns = now;
  p.user_data = req.user_data;
  p.offset = req.offset;
  p.length = req.length;
  p.buf = req.buf;
  pending_.push(p);

  ++stats_.reads_submitted;
  stats_.busy_ns += model_.service_time_ns;
  return Status::OK();
}

size_t SimulatedDevice::PollCompletions(IoCompletion* out, size_t max) {
  const uint64_t now = util::NowNs();
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  while (n < max && !pending_.empty() && pending_.top().complete_at_ns <= now) {
    const Pending& p = pending_.top();
    // Data transfer happens at completion time.
    std::memcpy(p.buf, backing_.data() + p.offset, p.length);
    out[n].user_data = p.user_data;
    out[n].code = StatusCode::kOk;
    out[n].latency_ns = p.complete_at_ns - p.submit_ns;
    ++stats_.reads_completed;
    stats_.bytes_read += p.length;
    stats_.read_latency.Add(out[n].latency_ns);
    pending_.pop();
    ++n;
  }
  return n;
}

Status SimulatedDevice::Write(uint64_t offset, const void* data, uint32_t length) {
  if (!RangeInCapacity(offset, length, backing_.capacity())) {
    return Status::OutOfRange("write beyond device capacity");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::memcpy(backing_.data() + offset, data, length);
  stats_.bytes_written += length;
  return Status::OK();
}

uint32_t SimulatedDevice::outstanding() const {
  uint32_t own;
  {
    std::lock_guard<std::mutex> lock(mu_);
    own = static_cast<uint32_t>(pending_.size());
  }
  return own + queue_registry_.SumOutstanding();
}

DeviceStats SimulatedDevice::stats() const {
  DeviceStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  queue_registry_.MergeStats(&out);
  return out;
}

void SimulatedDevice::ResetStats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DeviceStats{};
    stats_epoch_ns_ = util::NowNs();
  }
  queue_registry_.ResetAll();
}

double SimulatedDevice::Utilization() const {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t elapsed = util::NowNs() - stats_epoch_ns_;
  if (elapsed == 0) return 0.0;
  const double unit_time =
      static_cast<double>(elapsed) * static_cast<double>(model_.parallel_units);
  return std::min(1.0, static_cast<double>(stats_.busy_ns) / unit_time);
}

}  // namespace e2lshos::storage
