// Tests for the Sec. 4 cost model: the Eq. 6/7 query-time formulas and
// the storage-requirement solvers (Eqs. 9-11, 16).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "model/cost_model.h"

namespace e2lshos::model {
namespace {

TEST(CostModel, SyncTimeIsAdditive) {
  // Eq. 6: T = T_compute + N_IO * (T_request + T_read).
  CostInputs in{100000, 400, 1000, 3663};  // SIFT-ish: 400 I/Os on cSSD
  EXPECT_DOUBLE_EQ(SyncQueryTimeNs(in), 100000 + 400 * (1000 + 3663));
}

TEST(CostModel, AsyncTimeIsMaxOfSides) {
  // Eq. 7: CPU-bound when compute + request overhead dominates.
  CostInputs cpu_bound{2000000, 100, 1000, 3663};
  EXPECT_DOUBLE_EQ(AsyncQueryTimeNs(cpu_bound), 2000000 + 100 * 1000);
  // Storage-bound when N_IO * T_read dominates.
  CostInputs io_bound{100000, 1000, 50, 3663};
  EXPECT_DOUBLE_EQ(AsyncQueryTimeNs(io_bound), 1000 * 3663);
}

TEST(CostModel, AsyncNeverSlowerThanComponentsAloneAndFasterThanSync) {
  for (double n_io : {10.0, 100.0, 1000.0}) {
    for (double t_read : {357.0, 3663.0, 139000.0}) {
      CostInputs in{150000, n_io, 1000, t_read};
      EXPECT_LE(AsyncQueryTimeNs(in), SyncQueryTimeNs(in));
      EXPECT_GE(AsyncQueryTimeNs(in), in.t_compute_ns);
      EXPECT_GE(AsyncQueryTimeNs(in), in.n_io * in.t_read_ns);
    }
  }
}

TEST(CostModel, RequiredIopsSyncMatchesEq9) {
  // Eq. 9: 1/T_read >= N_IO / (T_target - T_compute).
  const double iops = RequiredIopsSync(400, 2000000, 100000);
  EXPECT_NEAR(iops, 400 * 1e9 / 1900000, 1e-6);
  // Plugging the required T_read back into Eq. 6 (without T_request)
  // exactly hits the target.
  CostInputs in{100000, 400, 0, 1e9 / iops};
  EXPECT_NEAR(SyncQueryTimeNs(in), 2000000, 1.0);
}

TEST(CostModel, RequiredIopsAsyncMatchesEq11) {
  const double iops = RequiredIopsAsync(400, 2000000);
  EXPECT_NEAR(iops, 400 * 1e9 / 2000000, 1e-6);
  // The async requirement is weaker than the sync one (paper Sec. 4.1).
  EXPECT_LT(iops, RequiredIopsSync(400, 2000000, 100000));
}

TEST(CostModel, UnreachableTargetsAreInfinite) {
  EXPECT_TRUE(std::isinf(RequiredIopsSync(400, 100000, 100000)));
  EXPECT_TRUE(std::isinf(RequiredRequestIops(400, 50000, 100000)));
  EXPECT_TRUE(std::isinf(RequiredIopsAsync(400, 0)));
}

TEST(CostModel, PaperScaleSanitySrsTarget) {
  // Paper Sec. 4.4: a few hundred I/Os per query against millisecond-class
  // SRS query times yields a few hundred kIOPS.
  const double t_srs_ns = 2e6;  // ~2 ms
  const double iops = RequiredIopsAsync(400, t_srs_ns);
  EXPECT_GT(iops, 50e3);
  EXPECT_LT(iops, 1e6);
}

TEST(CostModel, PaperScaleSanityInMemoryTarget) {
  // Paper Sec. 4.5: in-memory E2LSH times of a few hundred microseconds
  // demand a few MIOPS...
  const double t_e2lsh_ns = 150e3;
  const double iops = RequiredIopsAsync(400, t_e2lsh_ns);
  EXPECT_GT(iops, 1e6);
  EXPECT_LT(iops, 20e6);
  // ...and Eq. 16: T_request of tens of nanoseconds.
  const double req_iops = RequiredRequestIopsInMemory(400, t_e2lsh_ns);
  const double t_request_ns = 1e9 / req_iops;
  EXPECT_GT(t_request_ns, 5.0);
  EXPECT_LT(t_request_ns, 100.0);
}

TEST(CostModel, Equation16IsTenTimesEquation15) {
  // With the paper's 0.9 stall factor, the request-side requirement is
  // exactly 10x the storage-side requirement.
  const double n_io = 347.5, t = 1e6;
  EXPECT_NEAR(RequiredRequestIopsInMemory(n_io, t, 0.9),
              10.0 * RequiredIopsAsync(n_io, t), 1e-6);
}

TEST(CostModel, IoCountInfiniteBlockIsTwoPerBucket) {
  EXPECT_DOUBLE_EQ(IoCountInfiniteBlock(500, 10), 100.0);
  EXPECT_DOUBLE_EQ(IoCountInfiniteBlock(0, 10), 0.0);
  EXPECT_DOUBLE_EQ(IoCountInfiniteBlock(5, 0), 0.0);
}

TEST(CostModel, IoCountShrinksWithBlockSize) {
  // Bucket read sizes for 4 buckets over 2 queries.
  const std::vector<uint32_t> sizes{10, 100, 300, 1};
  const double io_128 = IoCountForBlockSize(sizes, 32, 2);   // B=128: 32 objs
  const double io_512 = IoCountForBlockSize(sizes, 128, 2);  // B=512
  const double io_4k = IoCountForBlockSize(sizes, 512, 2);   // B=4K
  EXPECT_GT(io_128, io_512);
  EXPECT_GE(io_512, io_4k);
  // B=4K: every bucket fits in one block: (1+1)*4 buckets / 2 queries = 4.
  EXPECT_DOUBLE_EQ(io_4k, 4.0);
  // B=128: ceil(10/32)+ceil(100/32)+ceil(300/32)+ceil(1/32) = 1+4+10+1 = 16
  // blocks + 4 table reads = 20 I/Os over 2 queries = 10.
  EXPECT_DOUBLE_EQ(io_128, 10.0);
}

TEST(CostModel, EmptyBucketsStillCostTableAndOneBlock) {
  // A probed bucket always costs at least 2 I/Os even if the scan stopped
  // after 0 entries (the chain head must be fetched to know).
  const std::vector<uint32_t> sizes{0};
  EXPECT_DOUBLE_EQ(IoCountForBlockSize(sizes, 128, 1), 2.0);
}

// Parameterized consistency sweep: for every (N_IO, target) combination
// the async IOPS requirement must be achievable, i.e. running the model
// with exactly the required T_read meets the target.
struct ReqCase {
  double n_io;
  double target_ns;
};

class RequirementSweep : public ::testing::TestWithParam<ReqCase> {};

TEST_P(RequirementSweep, RequiredIopsExactlyMeetsTarget) {
  const auto [n_io, target] = GetParam();
  const double iops = RequiredIopsAsync(n_io, target);
  CostInputs in{0, n_io, 0, 1e9 / iops};
  EXPECT_NEAR(AsyncQueryTimeNs(in), target, target * 1e-9);
  // Any slower storage misses the target.
  in.t_read_ns *= 1.01;
  EXPECT_GT(AsyncQueryTimeNs(in), target);
}

INSTANTIATE_TEST_SUITE_P(Sweep, RequirementSweep,
                         ::testing::Values(ReqCase{48.7, 5e5}, ReqCase{133.6, 1e6},
                                           ReqCase{347.5, 2e6}, ReqCase{791.0, 4e6},
                                           ReqCase{393.7, 1e7}));

}  // namespace
}  // namespace e2lshos::model
