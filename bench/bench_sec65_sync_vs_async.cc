// Reproduces the Sec. 6.5 "comparison with synchronous I/Os" experiment:
// the same E2LSHoS index driven (a) by the asynchronous engine with
// interleaved query contexts and (b) by a synchronous engine issuing one
// blocking I/O at a time through a heavyweight (page-cache-like)
// interface. The paper measures a 19.7x slowdown for the synchronous
// mmap-based execution on cSSD x 4.
#include "common.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  auto spec = data::GetDatasetSpec(args.dataset.empty() ? "BIGANN"
                                                        : args.dataset);
  if (!spec.ok()) return 1;
  // Modest n and few queries: the synchronous run pays full device
  // latency on every I/O.
  const uint64_t n = args.n ? args.n : (args.fast ? 10000 : 30000);
  auto w = bench::MakeWorkload(*spec, n, args.queries ? args.queries : 20, 1);
  if (!w.ok()) return 1;

  auto stack = bench::MakeStack(storage::DeviceKind::kCssd, 4,
                                storage::InterfaceKind::kIoUring);
  if (!stack.ok()) return 1;
  auto idx = core::IndexBuilder::Build(w->gen.base, w->params, stack->device());
  if (!idx.ok()) return 1;

  core::EngineOptions async_opts;
  async_opts.num_contexts = 64;
  async_opts.max_inflight_ios = 512;
  core::QueryEngine async_engine(idx->get(), &w->gen.base, async_opts);
  auto async_res = async_engine.SearchBatch(w->gen.queries, 1);
  if (!async_res.ok()) return 1;

  // Synchronous run through the mmap-like interface (page-fault cost per
  // I/O, queue depth 1).
  storage::ChargedDevice mmap_like(
      stack->raw.get(), storage::GetInterfaceSpec(storage::InterfaceKind::kMmapSync));
  auto sync_view = (*idx)->WithDevice(&mmap_like);
  core::EngineOptions sync_opts;
  sync_opts.synchronous = true;
  core::QueryEngine sync_engine(sync_view.get(), &w->gen.base, sync_opts);
  auto sync_res = sync_engine.SearchBatch(w->gen.queries, 1);
  if (!sync_res.ok()) return 1;

  bench::PrintHeader("Sec. 6.5: synchronous vs asynchronous I/O (" +
                         spec->name + " n=" + std::to_string(n) + ", cSSD x 4)",
                     {"Mode", "query us", "mean I/Os", "QPS"});
  const double t_async = static_cast<double>(async_res->wall_ns) /
                         static_cast<double>(w->gen.queries.n());
  const double t_sync = static_cast<double>(sync_res->wall_ns) /
                        static_cast<double>(w->gen.queries.n());
  bench::PrintRow({"async (interleaved contexts)", bench::Fmt(t_async / 1e3, 1),
                   bench::Fmt(async_res->MeanIos(), 1),
                   bench::Fmt(async_res->QueriesPerSecond(), 0)});
  bench::PrintRow({"sync (mmap-like, QD=1)", bench::Fmt(t_sync / 1e3, 1),
                   bench::Fmt(sync_res->MeanIos(), 1),
                   bench::Fmt(sync_res->QueriesPerSecond(), 0)});
  std::printf("\nSlowdown of synchronous execution: %.1fx (paper: 19.7x)\n",
              t_sync / t_async);
  std::printf(
      "The synchronous path pays the full device latency on every I/O "
      "(Fig. 1(A));\nthe asynchronous engine overlaps many queries' I/Os "
      "(Fig. 1(B)).\n");
  return 0;
}
