#include "storage/block_device.h"

namespace e2lshos::storage {

Status BlockDevice::RegisterBuffers(
    const std::vector<std::pair<void*, size_t>>&) {
  return Status::Unimplemented("fixed buffers are not supported by " + name());
}

Status BlockDevice::ReadSync(uint64_t offset, void* buf, uint32_t length) {
  IoRequest req;
  req.offset = offset;
  req.length = length;
  req.buf = buf;
  req.user_data = ~0ULL;
  E2_RETURN_NOT_OK(SubmitRead(req));
  IoCompletion comp;
  for (;;) {
    const size_t n = PollCompletions(&comp, 1);
    if (n == 1) {
      if (comp.user_data != ~0ULL) {
        return Status::Internal("unexpected completion during sync read");
      }
      if (comp.code != StatusCode::kOk) {
        return Status(comp.code, "sync read failed");
      }
      return Status::OK();
    }
  }
}

}  // namespace e2lshos::storage
