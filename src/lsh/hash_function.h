// p-stable LSH hash functions for the Euclidean distance (Datar et al.).
//
//   h(o) = floor((a . o + b) / w)            (paper Eq. 1)
//   g_i(o) = (h_i1(o), ..., h_im(o))         (paper Eq. 4)
//
// A compound hash g_i is folded into a single 32-bit value v (paper
// Sec. 5.2): the low u bits index the hash table, the remaining v-u bits
// become the fingerprint stored next to the object id in the bucket.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace e2lshos::lsh {

/// \brief One scalar LSH function h(o) = floor((a.o + b) / w).
class LshFunction {
 public:
  LshFunction() = default;

  /// Draw a ~ N(0, I_d), b ~ U[0, w).
  LshFunction(uint32_t dim, double w, util::Rng& rng);

  /// Hash a d-dimensional point.
  int32_t Hash(const float* o) const;

  /// The projection value (a.o + b) / w before flooring (used by tests
  /// and by multi-probe style analyses).
  double Project(const float* o) const;

  uint32_t dim() const { return static_cast<uint32_t>(a_.size()); }
  double w() const { return w_; }
  const std::vector<float>& a() const { return a_; }
  double b() const { return b_; }

 private:
  std::vector<float> a_;
  double b_ = 0.0;
  double w_ = 1.0;
};

/// \brief A compound hash g(o) of m independent LSH functions folded to a
/// 32-bit value.
class CompoundHash {
 public:
  CompoundHash() = default;

  /// Build m functions over dimension `dim` with bucket width `w`.
  CompoundHash(uint32_t dim, uint32_t m, double w, util::Rng& rng);

  /// 32-bit folded hash of a point: FNV-1a over the m floor values with a
  /// final avalanche. Two points receive equal values iff all m component
  /// hashes collide (modulo a 2^-32 false-collision rate).
  uint32_t Hash32(const float* o) const;

  /// The raw m-dimensional hash vector (diagnostics / tests).
  void HashVector(const float* o, int32_t* out) const;

  /// Floor values plus fractional in-bucket positions (residuals in
  /// [0, 1)), the inputs to Multi-Probe perturbation scoring.
  void HashWithResiduals(const float* o, int32_t* floors, float* residuals) const;

  uint32_t m() const { return static_cast<uint32_t>(funcs_.size()); }
  const LshFunction& func(uint32_t j) const { return funcs_[j]; }

  /// Fold an m-vector of floor values to the 32-bit compound value.
  static uint32_t Fold(const int32_t* values, uint32_t m);

 private:
  std::vector<LshFunction> funcs_;
};

/// \brief Collision probability p_w(s) of h for two points at distance s,
/// parameterized by x = w / s:
///
///   p(x) = 1 - 2 Phi(-x) - (2 / (sqrt(2 pi) x)) (1 - exp(-x^2 / 2)).
///
/// Monotonically increasing in x (so decreasing in the distance s).
double CollisionProbability(double w_over_s);

}  // namespace e2lshos::lsh
