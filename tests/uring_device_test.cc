// UringDevice correctness suite. Every test skips cleanly when the
// backend is unavailable (compiled-out stub, or the kernel refuses
// io_uring_setup at runtime — seccomp-filtered CI containers do), so the
// suite is safe to run unconditionally.
//
// The anchor is FileDevice equivalence: both backends serve the same
// backing file, so every read must come back bit-identical across
// buffered/direct modes, whatever alignment the filesystem advertises.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "storage/file_device.h"
#include "storage/uring_device.h"
#include "util/aligned_buffer.h"
#include "util/rng.h"

namespace e2lshos::storage {
namespace {

constexpr uint64_t kCapacity = 1ULL << 20;  // 1 MiB

std::string TestPath(const std::string& name) {
  return ::testing::TempDir() + "/e2_uring_" + name + ".bin";
}

/// Fill [0, bytes) of the device with a deterministic byte pattern.
void FillPattern(BlockDevice* dev, uint64_t bytes, uint64_t seed) {
  util::Rng rng(seed);
  util::AlignedBuffer chunk(1 << 16, kSectorBytes);
  uint64_t off = 0;
  while (off < bytes) {
    const uint32_t len =
        static_cast<uint32_t>(std::min<uint64_t>(chunk.size(), bytes - off));
    for (uint32_t i = 0; i < len; ++i) {
      chunk.data()[i] = static_cast<uint8_t>(rng.NextU32());
    }
    ASSERT_TRUE(dev->Write(off, chunk.data(), len).ok());
    off += len;
  }
}

IoCompletion AwaitOne(BlockDevice* dev) {
  IoCompletion comp;
  while (dev->PollCompletions(&comp, 1) == 0) {
  }
  return comp;
}

std::unique_ptr<UringDevice> OpenUringOrSkipReason(const std::string& path,
                                                   const UringDevice::Options& opt,
                                                   std::string* reason) {
  if (!UringDevice::Available()) {
    *reason = "io_uring unavailable on this host";
    return nullptr;
  }
  auto dev = UringDevice::Open(path, opt);
  if (!dev.ok()) {
    *reason = dev.status().ToString();
    return nullptr;
  }
  return std::move(dev).value();
}

/// Cross-backend oracle: random extents read through both devices over
/// the same file must match byte for byte.
void ExpectBitIdentical(BlockDevice* uring, BlockDevice* file,
                        uint32_t granule, uint64_t rounds) {
  util::Rng rng(granule + 7);
  const uint64_t units = kCapacity / granule;
  for (uint64_t r = 0; r < rounds; ++r) {
    const uint32_t blocks = 1 + static_cast<uint32_t>(rng.NextU64Below(4));
    const uint64_t offset =
        rng.NextU64Below(units - blocks + 1) * granule;
    const uint32_t length = blocks * granule;
    util::AlignedBuffer a(length, 4096), b(length, 4096);

    IoRequest req;
    req.offset = offset;
    req.length = length;
    req.buf = a.data();
    req.user_data = 1;
    ASSERT_TRUE(uring->SubmitRead(req).ok());
    ASSERT_EQ(AwaitOne(uring).code, StatusCode::kOk);

    req.buf = b.data();
    ASSERT_TRUE(file->SubmitRead(req).ok());
    ASSERT_EQ(AwaitOne(file).code, StatusCode::kOk);

    ASSERT_EQ(std::memcmp(a.data(), b.data(), length), 0)
        << "mismatch at offset " << offset << " length " << length;
  }
}

TEST(UringDevice, BitIdenticalToFileDeviceBuffered) {
  const std::string path = TestPath("buffered");
  {
    FileDevice::Options fopt;
    fopt.capacity = kCapacity;
    fopt.io_threads = 1;
    auto writer = FileDevice::Create(path, fopt);
    ASSERT_TRUE(writer.ok());
    FillPattern(writer->get(), kCapacity, 99);
  }
  std::string reason;
  auto uring = OpenUringOrSkipReason(path, {}, &reason);
  if (uring == nullptr) {
    std::remove(path.c_str());
    GTEST_SKIP() << reason;
  }
  FileDevice::Options fopt;
  fopt.io_threads = 2;
  auto file = FileDevice::Open(path, fopt);
  ASSERT_TRUE(file.ok());

  ExpectBitIdentical(uring.get(), file->get(), 512, 64);
  ExpectBitIdentical(uring.get(), file->get(), 64, 32);  // buffered: any extent
  const DeviceStats stats = uring->stats();
  EXPECT_EQ(stats.reads_completed, stats.reads_submitted);
  EXPECT_EQ(uring->outstanding(), 0u);

  uring.reset();
  file->reset();
  std::remove(path.c_str());
}

TEST(UringDevice, BitIdenticalToFileDeviceDirect) {
  const std::string path = TestPath("direct");
  {
    FileDevice::Options fopt;
    fopt.capacity = kCapacity;
    fopt.io_threads = 1;
    auto writer = FileDevice::Create(path, fopt);
    ASSERT_TRUE(writer.ok());
    FillPattern(writer->get(), kCapacity, 5);
  }
  UringDevice::Options uopt;
  uopt.direct_io = true;
  std::string reason;
  auto uring = OpenUringOrSkipReason(path, uopt, &reason);
  if (uring == nullptr) {
    std::remove(path.c_str());
    GTEST_SKIP() << reason;
  }
  FileDevice::Options fopt;
  fopt.io_threads = 2;
  fopt.direct_io = true;
  auto file = FileDevice::Open(path, fopt);
  if (!file.ok()) {
    uring.reset();
    std::remove(path.c_str());
    GTEST_SKIP() << "filesystem does not support O_DIRECT";
  }
  // Both backends probed the same file: the advertised alignment must
  // agree, and reads at that granularity must match bit for bit.
  EXPECT_EQ(uring->io_alignment(), (*file)->io_alignment());
  ExpectBitIdentical(uring.get(), file->get(), uring->io_alignment(), 64);

  uring.reset();
  file->reset();
  std::remove(path.c_str());
}

TEST(UringDevice, RejectsUnalignedRequestsInDirectMode) {
  const std::string path = TestPath("unaligned");
  UringDevice::Options opt;
  opt.capacity = kCapacity;
  opt.direct_io = true;
  if (!UringDevice::Available()) GTEST_SKIP() << "io_uring unavailable";
  auto dev = UringDevice::Create(path, opt);
  if (!dev.ok()) {
    GTEST_SKIP() << dev.status().ToString();
  }
  const uint32_t align = (*dev)->io_alignment();
  ASSERT_GE(align, kSectorBytes);
  util::AlignedBuffer buf(2 * align, align);

  IoRequest req;
  req.buf = buf.data();
  req.offset = 0;
  req.length = 8;  // sub-alignment extent
  EXPECT_EQ((*dev)->SubmitRead(req).code(), StatusCode::kInvalidArgument);

  req.length = align;
  req.offset = align / 2;  // unaligned offset
  EXPECT_EQ((*dev)->SubmitRead(req).code(), StatusCode::kInvalidArgument);

  req.offset = 0;
  req.buf = buf.data() + 8;  // unaligned destination
  EXPECT_EQ((*dev)->SubmitRead(req).code(), StatusCode::kInvalidArgument);

  req.buf = buf.data();
  ASSERT_TRUE((*dev)->SubmitRead(req).ok());
  EXPECT_EQ(AwaitOne(dev->get()).code, StatusCode::kOk);

  EXPECT_EQ((*dev)->Write(8, buf.data(), align).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE((*dev)->Write(0, buf.data(), align).ok());

  dev->reset();
  std::remove(path.c_str());
}

TEST(UringDevice, CapacityBoundsDoNotWrapOnOverflow) {
  const std::string path = TestPath("overflow");
  UringDevice::Options opt;
  opt.capacity = kCapacity;
  if (!UringDevice::Available()) GTEST_SKIP() << "io_uring unavailable";
  auto dev = UringDevice::Create(path, opt);
  if (!dev.ok()) GTEST_SKIP() << dev.status().ToString();

  util::AlignedBuffer buf(kSectorBytes, kSectorBytes);
  IoRequest req;
  req.buf = buf.data();
  req.length = kSectorBytes;
  req.offset = std::numeric_limits<uint64_t>::max() - kSectorBytes + 1;
  EXPECT_EQ((*dev)->SubmitRead(req).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*dev)->Write(req.offset, buf.data(), kSectorBytes).code(),
            StatusCode::kOutOfRange);

  req.offset = kCapacity - kSectorBytes;  // still fine at the very end
  ASSERT_TRUE((*dev)->SubmitRead(req).ok());
  EXPECT_EQ(AwaitOne(dev->get()).code, StatusCode::kOk);

  dev->reset();
  std::remove(path.c_str());
}

TEST(UringDevice, QueueFullBackpressureThenDrains) {
  const std::string path = TestPath("backpressure");
  UringDevice::Options opt;
  opt.capacity = kCapacity;
  opt.queue_capacity = 8;
  opt.sq_entries = 4;       // force SQ recycling under the small queue
  opt.submit_batch = 64;    // never auto-flush: Poll must do it
  if (!UringDevice::Available()) GTEST_SKIP() << "io_uring unavailable";
  auto dev = UringDevice::Create(path, opt);
  if (!dev.ok()) GTEST_SKIP() << dev.status().ToString();
  FillPattern(dev->get(), 64 * kSectorBytes, 3);

  constexpr uint32_t kTotal = 64;
  std::vector<util::AlignedBuffer> bufs(kTotal);
  for (auto& b : bufs) b.Reset(kSectorBytes);

  uint32_t completed = 0;
  uint32_t exhausted = 0;
  IoCompletion comps[16];
  for (uint32_t i = 0; i < kTotal; ++i) {
    IoRequest req;
    req.offset = (i % 64) * kSectorBytes;
    req.length = kSectorBytes;
    req.buf = bufs[i].data();
    req.user_data = i;
    for (;;) {
      const Status st = (*dev)->SubmitRead(req);
      if (st.ok()) break;
      ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
      ++exhausted;
      completed += static_cast<uint32_t>((*dev)->PollCompletions(comps, 16));
    }
  }
  while (completed < kTotal) {
    completed += static_cast<uint32_t>((*dev)->PollCompletions(comps, 16));
  }
  EXPECT_EQ(completed, kTotal);
  EXPECT_EQ((*dev)->outstanding(), 0u);
  // With 64 reads through an 8-deep queue, backpressure must have fired.
  EXPECT_GT(exhausted, 0u);

  dev->reset();
  std::remove(path.c_str());
}

TEST(UringDevice, RegisteredBuffersServeFixedReads) {
  const std::string path = TestPath("fixed");
  UringDevice::Options opt;
  opt.capacity = kCapacity;
  if (!UringDevice::Available()) GTEST_SKIP() << "io_uring unavailable";
  auto dev = UringDevice::Create(path, opt);
  if (!dev.ok()) GTEST_SKIP() << dev.status().ToString();
  FillPattern(dev->get(), kCapacity, 21);

  // One pinned arena plus one unpinned scratch buffer: reads landing in
  // the arena take the READ_FIXED path, the scratch read does not, and
  // both produce identical bytes.
  util::AlignedBuffer arena(64 * kSectorBytes, 4096);
  util::AlignedBuffer scratch(kSectorBytes, 4096);
  auto reg = (*dev)->RegisterBuffers({{arena.data(), arena.size()}});
  if (!reg.ok()) {
    // Pinning can exceed RLIMIT_MEMLOCK in constrained containers.
    dev->reset();
    std::remove(path.c_str());
    GTEST_SKIP() << reg.ToString();
  }
  EXPECT_EQ((*dev)
                ->RegisterBuffers({{arena.data(), arena.size()}})
                .code(),
            StatusCode::kFailedPrecondition);  // double registration

  for (uint32_t i = 0; i < 32; ++i) {
    const uint64_t offset = (i * 3 % 64) * kSectorBytes;
    IoRequest req;
    req.offset = offset;
    req.length = kSectorBytes;
    req.buf = arena.data() + i * kSectorBytes;
    req.user_data = i;
    ASSERT_TRUE((*dev)->SubmitRead(req).ok());
    ASSERT_EQ(AwaitOne(dev->get()).code, StatusCode::kOk);

    req.buf = scratch.data();
    ASSERT_TRUE((*dev)->SubmitRead(req).ok());
    ASSERT_EQ(AwaitOne(dev->get()).code, StatusCode::kOk);
    ASSERT_EQ(std::memcmp(arena.data() + i * kSectorBytes, scratch.data(),
                          kSectorBytes),
              0);
  }
  EXPECT_EQ((*dev)->fixed_buffer_reads(), 32u);

  dev->reset();
  std::remove(path.c_str());
}

TEST(UringDevice, SqpollModeReadsCorrectly) {
  const std::string path = TestPath("sqpoll");
  UringDevice::Options opt;
  opt.capacity = kCapacity;
  opt.sqpoll = true;
  if (!UringDevice::Available()) GTEST_SKIP() << "io_uring unavailable";
  auto dev = UringDevice::Create(path, opt);
  if (!dev.ok()) GTEST_SKIP() << dev.status().ToString();
  FillPattern(dev->get(), kCapacity, 8);
  // The kernel may refuse SQPOLL (privileges); the device then runs
  // interrupt-driven and this degenerates into a smoke test.
  if (!(*dev)->sqpoll_active()) {
    std::fprintf(stderr, "note: SQPOLL refused, running interrupt-driven\n");
  }

  FileDevice::Options fopt;
  fopt.io_threads = 1;
  auto file = FileDevice::Open(path, fopt);
  ASSERT_TRUE(file.ok());
  ExpectBitIdentical(dev->get(), file->get(), 512, 48);

  dev->reset();
  file->reset();
  std::remove(path.c_str());
}

TEST(UringDevice, UnavailableBackendReportsUnimplemented) {
  if (UringDevice::Available()) {
    GTEST_SKIP() << "io_uring present: stub path not reachable";
  }
  UringDevice::Options opt;
  opt.capacity = kCapacity;
  auto dev = UringDevice::Create(TestPath("stub"), opt);
  ASSERT_FALSE(dev.ok());
  EXPECT_EQ(dev.status().code(), StatusCode::kUnimplemented);
}

}  // namespace
}  // namespace e2lshos::storage
