// Fault-injection wrapper for robustness testing: fails a configurable
// fraction of reads (at submit or at completion), optionally corrupts
// payloads. Production engines must degrade gracefully — a failed bucket
// read costs candidates, never a hang or a crash.
//
// Thread-safe like every other BlockDevice: the fault bookkeeping (RNG,
// pending injections, counters) lives behind one mutex so the wrapper
// can sit under a QueueRouter driven by several engine shards.
#pragma once

#include <iterator>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/block_device.h"
#include "util/rng.h"

namespace e2lshos::storage {

class FaultyDevice : public BlockDevice {
 public:
  struct Options {
    double submit_fail_rate = 0.0;      ///< SubmitRead returns IoError.
    double completion_fail_rate = 0.0;  ///< Completion carries IoError.
    double corrupt_rate = 0.0;          ///< Payload bytes are scrambled.
    uint64_t seed = 13;
  };

  FaultyDevice(BlockDevice* inner, const Options& options)
      : inner_(inner), options_(options), rng_(options.seed) {}

  Status SubmitRead(const IoRequest& req) override {
    bool fail_completion = false;
    bool corrupt = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (options_.submit_fail_rate > 0 &&
          rng_.NextDouble() < options_.submit_fail_rate) {
        ++injected_submit_failures_;
        return Status::IoError("injected submit failure");
      }
      if (options_.completion_fail_rate > 0 &&
          rng_.NextDouble() < options_.completion_fail_rate) {
        fail_completion = true;
        pending_fail_.push_back(req.user_data);
      } else if (options_.corrupt_rate > 0 &&
                 rng_.NextDouble() < options_.corrupt_rate) {
        corrupt = true;
        pending_corrupt_.push_back({req.user_data, req.buf, req.length});
      }
    }
    // The injection is recorded BEFORE the inner submit: a concurrent
    // poller may harvest this request's completion the instant the inner
    // call returns, and must find the entry. If the device rejects the
    // request it can never complete, so take the entry back out — a
    // stale entry would fire on an unrelated request reusing the same
    // user_data (and, for corruption, scribble through a dead buffer).
    const Status st = inner_->SubmitRead(req);
    if (!st.ok() && (fail_completion || corrupt)) {
      std::lock_guard<std::mutex> lock(mu_);
      if (fail_completion) {
        for (auto it = pending_fail_.rbegin(); it != pending_fail_.rend(); ++it) {
          if (*it == req.user_data) {
            pending_fail_.erase(std::next(it).base());
            break;
          }
        }
      } else {
        for (auto it = pending_corrupt_.rbegin(); it != pending_corrupt_.rend();
             ++it) {
          if (it->user_data == req.user_data && it->buf == req.buf) {
            pending_corrupt_.erase(std::next(it).base());
            break;
          }
        }
      }
    }
    return st;
  }

  size_t PollCompletions(IoCompletion* out, size_t max) override {
    const size_t n = inner_->PollCompletions(out, max);
    if (n == 0) return 0;
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < n; ++i) {
      for (auto it = pending_fail_.begin(); it != pending_fail_.end(); ++it) {
        if (*it == out[i].user_data) {
          out[i].code = StatusCode::kIoError;
          pending_fail_.erase(it);
          ++injected_completion_failures_;
          break;
        }
      }
      for (auto it = pending_corrupt_.begin(); it != pending_corrupt_.end(); ++it) {
        if (it->user_data == out[i].user_data) {
          auto* bytes = static_cast<uint8_t*>(it->buf);
          for (uint32_t b = 0; b < it->length; b += 7) {
            bytes[b] ^= static_cast<uint8_t>(rng_.NextU32());
          }
          pending_corrupt_.erase(it);
          ++injected_corruptions_;
          break;
        }
      }
    }
    return n;
  }

  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    return inner_->Write(offset, data, length);
  }
  uint64_t capacity() const override { return inner_->capacity(); }
  uint32_t io_alignment() const override { return inner_->io_alignment(); }
  uint32_t outstanding() const override { return inner_->outstanding(); }
  std::string name() const override { return inner_->name() + " (faulty)"; }
  DeviceStats stats() const override { return inner_->stats(); }
  void ResetStats() override { inner_->ResetStats(); }

  uint64_t injected_submit_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_submit_failures_;
  }
  uint64_t injected_completion_failures() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_completion_failures_;
  }
  uint64_t injected_corruptions() const {
    std::lock_guard<std::mutex> lock(mu_);
    return injected_corruptions_;
  }

 private:
  struct Corrupt {
    uint64_t user_data;
    void* buf;
    uint32_t length;
  };

  BlockDevice* inner_;
  Options options_;
  mutable std::mutex mu_;
  util::Rng rng_;
  std::vector<uint64_t> pending_fail_;
  std::vector<Corrupt> pending_corrupt_;
  uint64_t injected_submit_failures_ = 0;
  uint64_t injected_completion_failures_ = 0;
  uint64_t injected_corruptions_ = 0;
};

}  // namespace e2lshos::storage
