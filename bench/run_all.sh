#!/usr/bin/env sh
# Run every JSONL-emitting bench at a pinned tiny scale and consolidate
# the headline numbers into one BENCH_<n>.json — the perf-trajectory
# file the ROADMAP asks for: one such snapshot per PR makes QPS / p99 /
# kIOPS regressions visible across the history without re-running
# anything.
#
#   bench/run_all.sh [BUILD_DIR] [OUT_DIR]
#
# BUILD_DIR defaults to ./build (the release preset), OUT_DIR to the
# repository root. <n> is the first unused index in OUT_DIR. The raw
# per-bench JSONL rows are kept next to the summary in BENCH_<n>.rows/
# when KEEP_RAW=1 is set, and discarded otherwise.
#
# The pinned scale (N=2000 base points, 16 queries) is deliberately far
# below the paper's datasets: the file tracks *trajectory* (did this PR
# halve uring kIOPS? triple p99?), not absolute reproduction numbers —
# those come from the figure benches at full scale.
set -eu

build="${1:-build}"
out="${2:-.}"
n=2000
queries=16

if [ ! -d "$build" ]; then
  echo "build dir '$build' not found; configure and build the benches first:" >&2
  echo "  cmake --preset release && cmake --build --preset release --target benches" >&2
  exit 1
fi

mkdir -p "$out"
run=1
while [ -e "$out/BENCH_$run.json" ]; do
  run=$((run + 1))
done
# The summary is written to a temp name and renamed into place only
# when complete: a bench failing under `set -eu`, or the run being
# killed, must never leave a partial BENCH_<n>.json that the next
# invocation's run-number scan would treat as a finished snapshot.
summary="$out/BENCH_$run.json"
tmp_summary="$summary.tmp.$$"
raw="$(mktemp -d)"
cleanup() {
  rm -f "$tmp_summary"
  if [ "${KEEP_RAW:-0}" = "1" ] && [ -e "$summary" ]; then
    rm -rf "$out/BENCH_$run.rows"
    mv "$raw" "$out/BENCH_$run.rows"
  else
    rm -rf "$raw"
  fi
}
trap cleanup EXIT
# POSIX sh does not guarantee the EXIT trap on signals; route INT/TERM
# through exit so a mid-run kill still cleans up the temp files.
trap 'exit 130' INT
trap 'exit 143' TERM

# Largest value of a numeric key across a JSONL file (0 when absent):
# the headline "peak" for throughput keys, "worst" for latency keys.
jmax() {
  awk -v k="$2" '
    match($0, "\"" k "\":[-0-9.eE+]+") {
      v = substr($0, RSTART + length(k) + 3, RLENGTH - length(k) - 3) + 0;
      if (!seen || v > m) { m = v; seen = 1 }
    }
    END { if (seen) printf "%g", m; else printf "0" }' "$1"
}

# First string value of a key (empty when absent).
jstr() {
  awk -v k="$2" '
    match($0, "\"" k "\":\"[^\"]*\"") {
      print substr($0, RSTART + length(k) + 4, RLENGTH - length(k) - 5);
      exit
    }' "$1"
}

run_bench() {
  name="$1"
  shift
  echo "== $name" >&2
  if ! "$build/$name" "$@" --json "$raw/$name.jsonl" > "$raw/$name.log" 2>&1; then
    echo "   FAILED (see $name.log; kept out of the summary)" >&2
    rm -f "$raw/$name.jsonl"
    return 0
  fi
}

run_bench bench_table2_devices --fast
run_bench bench_uring_vs_threadpool --fast --ms 100 --file-mb 64
run_bench bench_fig11_storage_configs --n "$n" --queries "$queries"
run_bench bench_fig13_query_performance --dataset SIFT --n "$n" \
  --queries "$queries" --shards 4
run_bench bench_fig16_multithreading --n "$n" --queries "$queries"
run_bench bench_streaming_serving --n "$n" --queries 64 --shards 2
run_bench bench_skew_cache --n "$n"
run_bench bench_update_serving --n "$n" --queries 64

git_rev="$(git -C "$(dirname "$0")/.." rev-parse --short HEAD 2>/dev/null || echo unknown)"

{
  printf '{\n'
  printf '  "run": %s,\n' "$run"
  printf '  "date_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "git": "%s",\n' "$git_rev"
  printf '  "scale": {"n": %s, "queries": %s},\n' "$n" "$queries"
  printf '  "benches": {\n'
  sep=""

  f="$raw/bench_table2_devices.jsonl"
  if [ -s "$f" ]; then
    printf '%b    "table2_devices": {"peak_model_kiops": %s}' \
      "$sep" "$(jmax "$f" model_kiops)"
    sep=",\n"
  fi

  f="$raw/bench_uring_vs_threadpool.jsonl"
  if [ -s "$f" ]; then
    printf '%b    "uring_vs_threadpool": {"peak_file_kiops": %s, "peak_uring_kiops": %s, "worst_file_p99_us": %s, "worst_uring_p99_us": %s}' \
      "$sep" "$(jmax "$f" file_kiops)" "$(jmax "$f" uring_kiops)" \
      "$(jmax "$f" file_p99_us)" "$(jmax "$f" uring_p99_us)"
    sep=",\n"
  fi

  f="$raw/bench_fig11_storage_configs.jsonl"
  if [ -s "$f" ]; then
    printf '%b    "fig11_storage_configs": {"peak_speedup_over_srs": %s}' \
      "$sep" "$(jmax "$f" speedup_over_srs)"
    sep=",\n"
  fi

  f="$raw/bench_fig13_query_performance.jsonl"
  if [ -s "$f" ]; then
    printf '%b    "fig13_query_performance": {"peak_speedup_io_uring": %s, "peak_speedup_xlfdd": %s, "peak_sharded_qps": %s, "queue_mode": "%s"}' \
      "$sep" "$(jmax "$f" speedup_e2lshos_io_uring)" \
      "$(jmax "$f" speedup_e2lshos_xlfdd)" "$(jmax "$f" qps)" \
      "$(jstr "$f" queue_mode)"
    sep=",\n"
  fi

  f="$raw/bench_fig16_multithreading.jsonl"
  if [ -s "$f" ]; then
    printf '%b    "fig16_multithreading": {"peak_cssd_qps": %s, "peak_xlfdd_qps": %s, "peak_srs_qps": %s, "queue_mode": "%s"}' \
      "$sep" "$(jmax "$f" cssd_measured_qps)" \
      "$(jmax "$f" xlfdd_measured_qps)" "$(jmax "$f" srs_measured_qps)" \
      "$(jstr "$f" queue_mode)"
    sep=",\n"
  fi

  f="$raw/bench_streaming_serving.jsonl"
  if [ -s "$f" ]; then
    printf '%b    "streaming_serving": {"peak_sustained_qps": %s, "worst_p99_us": %s}' \
      "$sep" "$(jmax "$f" sustained_qps)" \
      "$(awk "BEGIN { printf \"%g\", $(jmax "$f" p99_ns) / 1000 }")"
    sep=",\n"
  fi

  f="$raw/bench_skew_cache.jsonl"
  if [ -s "$f" ]; then
    # headline_* keys are emitted only on the Zipf theta=1.0 rows: the
    # acceptance scenario (cache ~10% of the index) and its no-cache
    # baseline.
    printf '%b    "skew_cache": {"hit_rate_theta1_cache10": %s, "qps_theta1_cache10": %s, "qps_theta1_nocache": %s, "worst_p99_us": %s}' \
      "$sep" "$(jmax "$f" headline_hit_rate)" \
      "$(jmax "$f" headline_qps)" "$(jmax "$f" headline_qps_nocache)" \
      "$(jmax "$f" p99_us)"
    sep=",\n"
  fi

  f="$raw/bench_update_serving.jsonl"
  if [ -s "$f" ]; then
    # headline_p99_ratio: query p99 with the writer at the top update
    # rate over the same shard count's no-writes p99 (acceptance: < 2).
    printf '%b    "update_serving": {"p99_ratio_writes_vs_none": %s, "peak_update_rate": %s, "worst_p99_us": %s}' \
      "$sep" "$(jmax "$f" headline_p99_ratio)" \
      "$(jmax "$f" update_rate_achieved)" "$(jmax "$f" p99_us)"
    sep=",\n"
  fi

  printf '\n  }\n}\n'
} > "$tmp_summary"
mv "$tmp_summary" "$summary"

echo "wrote $summary" >&2
cat "$summary"
