// Ablation (DESIGN.md): interleaved query contexts = effective queue
// depth. Figure 1(B)'s async advantage comes from keeping many I/Os in
// flight; this sweep shows throughput rising with context count until
// the device's parallel units saturate (cSSD x 1: 38 units).
#include "common.h"

#include "util/clock.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec),
                               args.queries ? args.queries : 256, 1);
  if (!w.ok()) return 1;

  auto stack = bench::MakeStack(storage::DeviceKind::kCssd, 1,
                                storage::InterfaceKind::kSpdk);
  if (!stack.ok()) return 1;
  auto idx = core::IndexBuilder::Build(w->gen.base, w->params, stack->device());
  if (!idx.ok()) return 1;

  bench::PrintHeader(
      "Ablation: query contexts (queue depth driver), cSSD x 1 (" + name + ")",
      {"contexts", "QPS", "observed kIOPS", "mean latency us"});

  for (const uint32_t contexts : {1u, 2u, 4u, 8u, 16u, 32u, 64u, 128u, 256u}) {
    stack->device()->ResetStats();
    core::EngineOptions opts;
    opts.num_contexts = contexts;
    opts.max_inflight_ios = std::max(64u, contexts * 8);
    core::QueryEngine engine(idx->get(), &w->gen.base, opts);
    const uint64_t t0 = util::NowNs();
    auto batch = engine.SearchBatch(w->gen.queries, 1);
    const uint64_t elapsed = util::NowNs() - t0;
    if (!batch.ok()) continue;
    const auto& stats = stack->device()->stats();
    bench::PrintRow(
        {std::to_string(contexts), bench::Fmt(batch->QueriesPerSecond(), 0),
         bench::Fmt(static_cast<double>(stats.reads_completed) * 1e6 /
                        static_cast<double>(elapsed),
                    1),
         bench::Fmt(stats.read_latency.mean() / 1e3, 0)});
  }
  std::printf(
      "\nExpected shape: QPS rises with contexts until the drive's "
      "internal\nparallelism (38 units) is covered, then flattens while "
      "latency climbs —\nthe Fig. 1(B)/Fig. 15 mechanism in one sweep.\n");
  return 0;
}
