#include "lsh/params.h"

#include <cmath>

#include "lsh/hash_function.h"

namespace e2lshos::lsh {

double RhoForWidth(double w, double c) {
  const double p1 = CollisionProbability(w);
  const double p2 = CollisionProbability(w / c);
  if (p1 <= 0.0 || p1 >= 1.0 || p2 <= 0.0 || p2 >= 1.0) return 1.0;
  return std::log(1.0 / p1) / std::log(1.0 / p2);
}

Result<E2lshParams> ComputeParams(uint64_t n, uint32_t d, const E2lshConfig& config) {
  if (n < 2) return Status::InvalidArgument("need at least 2 points");
  if (d == 0) return Status::InvalidArgument("dimension must be > 0");
  if (config.c <= 1.0) return Status::InvalidArgument("approximation ratio c must be > 1");
  if (config.w <= 0.0) return Status::InvalidArgument("bucket width w must be > 0");
  if (config.gamma <= 0.0) return Status::InvalidArgument("gamma must be > 0");
  if (config.s_factor <= 0.0) return Status::InvalidArgument("s_factor must be > 0");
  if (config.x_max <= 0.0) return Status::InvalidArgument("x_max must be > 0");

  E2lshParams p;
  p.c = config.c;
  p.w = config.w;
  p.gamma = config.gamma;
  p.s_factor = config.s_factor;
  p.seed = config.seed;

  p.p1 = CollisionProbability(config.w);
  p.p2 = CollisionProbability(config.w / config.c);
  if (p.p2 <= 0.0 || p.p2 >= 1.0) {
    return Status::InvalidArgument("bucket width w yields degenerate p2");
  }

  p.rho = config.rho > 0.0 ? config.rho : RhoForWidth(config.w, config.c);
  if (p.rho <= 0.0 || p.rho > 1.0) {
    return Status::InvalidArgument("derived rho out of (0, 1]");
  }

  const double ln_n = std::log(static_cast<double>(n));
  const double ln_inv_p2 = std::log(1.0 / p.p2);
  p.m = static_cast<uint32_t>(std::max(1.0, std::round(config.gamma * ln_n / ln_inv_p2)));
  p.L = static_cast<uint32_t>(
      std::max(1.0, std::ceil(std::pow(static_cast<double>(n), p.rho))));
  p.S = static_cast<uint64_t>(
      std::max(1.0, std::ceil(config.s_factor * static_cast<double>(p.L))));

  // Radius ladder R = 1, c, c^2, ... covering R_max = 2 x_max sqrt(d).
  const double r_max = 2.0 * config.x_max * std::sqrt(static_cast<double>(d));
  double radius = 1.0;
  p.radii.push_back(radius);
  while (radius < r_max) {
    radius *= config.c;
    p.radii.push_back(radius);
    if (p.radii.size() > 64) {
      return Status::InvalidArgument("radius schedule too long; rescale data");
    }
  }
  return p;
}

}  // namespace e2lshos::lsh
