// Strict string -> number parsing for user-facing inputs (CLI flag
// values, device-URI query values). One implementation so every entry
// point enforces the same contract: the whole string must be a plain
// non-negative number — no sign, no leading whitespace, no trailing
// garbage, and out-of-range values are errors rather than silent
// saturation (strtoull happily parses "-1" to 2^64-1 and caps 30-digit
// inputs at UINT64_MAX with only errno to tell).
#pragma once

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "util/status.h"

namespace e2lshos::util {

/// Parse a non-negative base-10 integer occupying the entire string.
inline Result<uint64_t> ParseU64(const std::string& s) {
  if (s.empty() || !std::isdigit(static_cast<unsigned char>(s[0]))) {
    return Status::InvalidArgument("'" + s + "' is not a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) {
    return Status::InvalidArgument("trailing garbage in integer '" + s + "'");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("integer '" + s + "' out of range");
  }
  return static_cast<uint64_t>(v);
}

/// Parse a non-negative decimal number occupying the entire string.
inline Result<double> ParseF64(const std::string& s) {
  if (s.empty() || !(std::isdigit(static_cast<unsigned char>(s[0])) ||
                     s[0] == '.')) {
    return Status::InvalidArgument("'" + s + "' is not a non-negative number");
  }
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) {
    return Status::InvalidArgument("trailing garbage in number '" + s + "'");
  }
  if (errno == ERANGE) {
    return Status::InvalidArgument("number '" + s + "' out of range");
  }
  return v;
}

}  // namespace e2lshos::util
