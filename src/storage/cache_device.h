// Transparent DRAM read cache over any BlockDevice.
//
// The paper's premise is a memory hierarchy with flash as the capacity
// tier; production traffic is Zipfian, so the hot fraction of table
// entries and bucket blocks should serve at DRAM speed while the tail
// stays on the device. CacheDevice is that layer:
//
//   * Sharded CLOCK over fixed-size cache blocks of
//     max(inner->io_alignment(), 512) bytes. Each shard owns a private
//     mutex, a block map, and a contiguous data arena; a read that hits
//     touches only the shard locks of the blocks it covers — no
//     cache-wide lock exists.
//   * Reads that miss fall through to the inner device, widened to cache
//     block boundaries so the fill populates whole blocks; the caller's
//     completion carries the original user_data and the inner latency.
//   * Writes are write-through: the inner device is updated first, then
//     any resident blocks are patched in place (no allocate-on-write, so
//     index construction does not flood the cache). A global write epoch
//     invalidates in-flight fills that raced the write.
//   * Native MultiQueueDevice support: when the inner device offers
//     queues, each cache queue owns one inner queue plus a private
//     miss-tracking lane, preserving the zero-shared-lock property of
//     per-shard serving (hits contend only on cache-shard locks, which
//     are keyed by block address, not by queue).
//
// Transparency contract: with the cache in place, every read returns
// bit-identical data and the same status codes as without it (alignment
// violations are rejected up front exactly as the inner device would).
// hits/misses/evictions/bytes_cached surface through DeviceStats.
//
// Stats semantics (the PR 6 aggregation rules): the parent's stats()
// covers its own lane, all live queues, and the store's eviction/
// residency gauges; per-queue ResetStats is queue-local, while
// ResetStats on the parent resets its lane, every live queue, the
// eviction counter, and the inner device — one full reset, never a
// double-count. Cache *contents* survive ResetStats.
#pragma once

#include <memory>
#include <mutex>

#include "storage/block_device.h"
#include "storage/multi_queue.h"

namespace e2lshos::storage {

class CacheDevice : public BlockDevice, public MultiQueueDevice {
 public:
  struct Options {
    /// DRAM budget; rounded down to whole cache blocks. Must hold at
    /// least one block.
    uint64_t capacity_bytes = 0;
    /// Lock shards (clamped so every shard holds >= 1 block).
    uint32_t shards = 16;
    /// Completion-inbox bound of the device-level path (queues take
    /// theirs from QueueOptions::queue_capacity).
    uint32_t queue_capacity = 1024;
    /// Reads spanning more cache blocks than this bypass the cache
    /// entirely (forwarded verbatim, nothing inserted): bulk image
    /// copies must not wipe out the hot set.
    uint32_t max_cached_read_blocks = 16;
  };

  /// Own the wrapped device.
  static Result<std::unique_ptr<CacheDevice>> Create(
      std::unique_ptr<BlockDevice> inner, const Options& options);
  /// Borrow a caller-owned device (tests/benches sharing one stack).
  static Result<std::unique_ptr<CacheDevice>> Wrap(BlockDevice* inner,
                                                   const Options& options);

  ~CacheDevice() override;

  Status SubmitRead(const IoRequest& req) override;
  size_t PollCompletions(IoCompletion* out, size_t max) override;
  Status Write(uint64_t offset, const void* data, uint32_t length) override;
  uint64_t capacity() const override { return inner_->capacity(); }
  uint32_t io_alignment() const override { return inner_->io_alignment(); }
  uint32_t outstanding() const override;
  std::string name() const override;
  DeviceStats stats() const override;
  void ResetStats() override;

  /// Native queues iff the inner device has them; each cache queue pairs
  /// a private lane with one inner queue.
  MultiQueueDevice* multi_queue() override {
    return inner_->multi_queue() != nullptr ? this : nullptr;
  }
  uint32_t max_queues() const override;
  Result<std::unique_ptr<BlockDevice>> CreateQueue(
      const QueueOptions& options) override;

  /// The wrapped device (borrowed; owned by this object when Create()d).
  BlockDevice* inner() { return inner_; }
  /// Cache block size: max(inner io_alignment, 512).
  uint32_t cache_block_bytes() const;

 private:
  class Store;  // sharded-CLOCK block store (cache_device.cc)
  class Lane;   // hit/miss submit-poll path over one inner endpoint
  class Queue;  // Lane + one native inner queue

  CacheDevice(std::unique_ptr<BlockDevice> owned, BlockDevice* inner,
              const Options& options);

  std::unique_ptr<BlockDevice> owned_;  ///< Null when Wrap()ed.
  BlockDevice* inner_;
  Options options_;
  std::unique_ptr<Store> store_;
  std::unique_ptr<Lane> lane_;  ///< Device-level path over inner_.
  /// Live native queues; parent stats()/outstanding() fold them in.
  QueueRegistry queue_registry_;
};

}  // namespace e2lshos::storage
