// Tests for the public facade (e2lshos::Index) and the device-URI
// parser.
//
// The load-bearing property is *parity*: Build -> Save -> Open ->
// SearchBatch through the facade must return bit-identical ids and
// distances to the hand-wired builder + persistence + QueryEngine path,
// across device URIs (mem:, sim:cssd, file:) and shard counts (1, 4).
// The candidate cap is set high enough that draining never triggers, so
// results are deterministic and the comparison is exact.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <thread>

#include "api/index.h"
#include "core/builder.h"
#include "core/persistence.h"
#include "core/query_engine.h"
#include "data/generators.h"
#include "storage/device_registry.h"
#include "storage/memory_device.h"

namespace e2lshos {
namespace {

// ---------------------------------------------------------------------------
// ParseDeviceUri
// ---------------------------------------------------------------------------

using storage::DeviceUri;
using storage::ParseDeviceUri;

TEST(DeviceUri, ParsesEverySchemeAndRoundTrips) {
  const char* uris[] = {
      "mem:",
      "mem:?capacity=1073741824",
      "sim:cssd",
      "sim:hdd",
      "sim:essd*8",
      "sim:cssd*4?iface=spdk",
      "sim:xlfdd*12?iface=xlfdd&queue=2048",
      "file:/tmp/img.bin",
      "file:/tmp/img.bin?direct=1&threads=8",
      "file:relative/path?queue=64",
      "uring:/tmp/img.bin?direct=1&sqpoll=1",
      "mem:?queues=4",
      "sim:cssd*4?queues=0",
      "uring:/tmp/img.bin?queues=8&fixed=1",
  };
  for (const char* uri : uris) {
    auto parsed = ParseDeviceUri(uri);
    ASSERT_TRUE(parsed.ok()) << uri << ": " << parsed.status().ToString();
    // Canonical form re-parses to the same canonical form.
    auto reparsed = ParseDeviceUri(parsed->ToString());
    ASSERT_TRUE(reparsed.ok()) << parsed->ToString();
    EXPECT_EQ(reparsed->ToString(), parsed->ToString()) << uri;
  }
}

TEST(DeviceUri, ParsedFieldsMatch) {
  auto sim = ParseDeviceUri("sim:essd*8?iface=spdk&queue=2048");
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->scheme, DeviceUri::Scheme::kSim);
  EXPECT_EQ(sim->sim_kind, storage::DeviceKind::kEssd);
  EXPECT_EQ(sim->sim_count, 8u);
  EXPECT_EQ(sim->iface, "spdk");
  EXPECT_EQ(sim->queue_capacity, 2048u);

  auto file = ParseDeviceUri("file:/a/b?direct=1&threads=2&capacity=4m");
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->scheme, DeviceUri::Scheme::kFile);
  EXPECT_EQ(file->path, "/a/b");
  EXPECT_TRUE(file->direct_io);
  EXPECT_EQ(file->io_threads, 2u);
  EXPECT_EQ(file->capacity, 4ULL << 20);

  auto uring = ParseDeviceUri("uring:/a/b?sqpoll=1");
  ASSERT_TRUE(uring.ok());
  EXPECT_EQ(uring->scheme, DeviceUri::Scheme::kUring);
  EXPECT_TRUE(uring->sqpoll);
  EXPECT_FALSE(uring->direct_io);
  // Native-queue knobs: default is auto (not serialized), 0 forces the
  // router, N caps native; fixed=1 is uring-only.
  EXPECT_EQ(uring->queues, DeviceUri::kQueuesAuto);
  EXPECT_FALSE(uring->fixed_buffers);
  auto queued = ParseDeviceUri("uring:/a/b?queues=8&fixed=1");
  ASSERT_TRUE(queued.ok());
  EXPECT_EQ(queued->queues, 8u);
  EXPECT_TRUE(queued->fixed_buffers);
  auto routed = ParseDeviceUri("mem:?queues=0");
  ASSERT_TRUE(routed.ok());
  EXPECT_EQ(routed->queues, 0u);
}

TEST(DeviceUri, RejectsMalformedUris) {
  const char* bad[] = {
      "",                          // no scheme
      "file",                      // no colon
      "ssd:cssd",                  // unknown scheme
      "mem:stuff",                 // mem takes no body
      "sim:",                      // missing kind
      "sim:nvme",                  // unknown kind
      "sim:cssd*0",                // zero stripe
      "sim:cssd*four",             // malformed stripe count
      "sim:cssd?direct=1",         // direct doesn't apply to sim
      "sim:cssd?iface=verbs",      // unknown interface model
      "file:/p?sqpoll=1",          // sqpoll is uring-only
      "uring:/p?threads=4",        // threads is file-only
      "file:/p?direct=yes",        // bool must be 0|1
      "file:/p?threads=0",         // zero pool
      "file:/p?queue=0",           // zero queue
      "file:/p?capacity=12q",      // bad size suffix
      "file:/p?capacity=-1",       // negative (strtoull would wrap)
      "file:/p?queue=+4",          // explicit sign rejected
      "file:/p?queue= 4",          // leading whitespace rejected
      "file:/p?capacity=99999999999999999999",  // overflow, not saturation
      "file:/p?bogus=1",           // unknown key
      "file:/p?direct",            // key without value
      "mem:?capacity=",            // empty value
      "file:/p?fixed=1",           // fixed is uring-only
      "mem:?queues=256",           // above the 255 native-queue cap
      "mem:?queues=-1",            // negative
  };
  for (const char* uri : bad) {
    auto parsed = ParseDeviceUri(uri);
    EXPECT_FALSE(parsed.ok()) << "'" << uri << "' should have been rejected";
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument) << uri;
    }
  }
}

TEST(DeviceUri, OpenRejectsPathlessFileAndOversizedStripe) {
  storage::DeviceUriOpenOptions opt;
  opt.create = true;
  opt.capacity = 1 << 20;
  EXPECT_EQ(storage::OpenDeviceUri("file:", opt).status().code(),
            StatusCode::kInvalidArgument);
  // mem: with no capacity anywhere.
  EXPECT_EQ(storage::OpenDeviceUri("mem:", storage::DeviceUriOpenOptions{})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(DeviceUri, OpenBuildsSimStacksAndChargesInterface) {
  // Explicit capacity: the 2 TB model nameplate cannot be mapped under
  // TSan's shadow memory (the facade always supplies a capacity too).
  storage::DeviceUriOpenOptions opt;
  opt.capacity = 1ULL << 30;
  auto plain = storage::OpenDeviceUri("sim:cssd", opt);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();
  EXPECT_EQ((*plain)->name(), "cSSD");
  EXPECT_EQ((*plain)->capacity(), 1ULL << 30);

  auto striped = storage::OpenDeviceUri("sim:cssd*4?iface=spdk", opt);
  ASSERT_TRUE(striped.ok()) << striped.status().ToString();
  EXPECT_NE((*striped)->name().find("SPDK"), std::string::npos)
      << (*striped)->name();
}

// ---------------------------------------------------------------------------
// Facade parity
// ---------------------------------------------------------------------------

struct TestData {
  data::GeneratedData gen;
  lsh::E2lshConfig cfg;
};

TestData MakeData(uint64_t n = 3000, uint32_t dim = 24) {
  TestData t;
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = 9;
  t.gen = data::Generate("api", n, 25, spec);
  t.cfg.rho = 0.25;
  t.cfg.s_factor = 1000.0;  // no draining: answers must match exactly
  return t;
}

/// The hand-wired reference path: builder + MemoryDevice + QueryEngine.
std::vector<std::vector<util::Neighbor>> ReferenceResults(const TestData& t,
                                                          uint32_t k) {
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  EXPECT_TRUE(dev.ok());
  lsh::E2lshConfig cfg = t.cfg;
  cfg.x_max = t.gen.base.XMax();
  auto params = lsh::ComputeParams(t.gen.base.n(), t.gen.base.dim(), cfg);
  EXPECT_TRUE(params.ok());
  auto idx = core::IndexBuilder::Build(t.gen.base, *params, dev->get());
  EXPECT_TRUE(idx.ok());
  core::QueryEngine engine(idx->get(), &t.gen.base);
  auto batch = engine.SearchBatch(t.gen.queries, k);
  EXPECT_TRUE(batch.ok());
  return batch->results;
}

void ExpectSameResults(const std::vector<std::vector<util::Neighbor>>& got,
                       const std::vector<std::vector<util::Neighbor>>& want,
                       const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (size_t q = 0; q < want.size(); ++q) {
    ASSERT_EQ(got[q].size(), want[q].size()) << label << " query " << q;
    for (size_t i = 0; i < want[q].size(); ++i) {
      EXPECT_EQ(got[q][i].id, want[q][i].id)
          << label << " query " << q << " rank " << i;
      EXPECT_FLOAT_EQ(got[q][i].dist, want[q][i].dist)
          << label << " query " << q << " rank " << i;
    }
  }
}

class ApiParity : public ::testing::TestWithParam<const char*> {};

TEST_P(ApiParity, BuildSaveOpenSearchMatchesHandWiredPath) {
  const uint32_t k = 5;
  auto t = MakeData();
  const auto want = ReferenceResults(t, k);

  std::string uri = GetParam();
  const std::string image = ::testing::TempDir() + "/e2_api_image.bin";
  const std::string meta = ::testing::TempDir() + "/e2_api_meta.bin";
  // The file: parameterization needs a concrete path.
  if (uri == std::string("file:")) uri += image;

  IndexSpec spec;
  spec.lsh = t.cfg;
  spec.device_uri = uri;
  spec.device_capacity = 2ULL << 30;

  // Build through the facade; results must match before persistence too.
  auto built = Index::Build(spec, t.gen.base /* copy: reused below */);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  EXPECT_EQ((*built)->n(), t.gen.base.n());
  EXPECT_EQ((*built)->dim(), t.gen.base.dim());
  {
    auto batch = (*built)->SearchBatch(t.gen.queries, k);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ExpectSameResults(batch->results, want, uri + " built");
  }
  ASSERT_TRUE((*built)->Save(meta).ok());
  const auto built_sizes = (*built)->sizes();
  built->reset();  // release the backing file before reopening

  for (const uint32_t shards : {1u, 4u}) {
    auto opened = Index::Open(meta, OpenSpec{uri}, t.gen.base);
    ASSERT_TRUE(opened.ok()) << opened.status().ToString();
    EXPECT_EQ((*opened)->sizes().storage_bytes, built_sizes.storage_bytes);
    ASSERT_TRUE((*opened)
                    ->Configure(SearchSpec{shards, 32, 256, false})
                    .ok());
    auto batch = (*opened)->SearchBatch(t.gen.queries, k);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    ExpectSameResults(batch->results, want,
                      uri + " shards=" + std::to_string(shards));
  }

  std::remove(meta.c_str());
  std::remove((meta + ".image").c_str());
  std::remove(image.c_str());
}

INSTANTIATE_TEST_SUITE_P(Devices, ApiParity,
                         ::testing::Values("mem:", "sim:cssd", "sim:cssd*4",
                                           "file:"),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == ':' || c == '*' || c == '?') c = '_';
                           }
                           return name;
                         });

// ---------------------------------------------------------------------------
// Facade behavior beyond parity
// ---------------------------------------------------------------------------

TEST(ApiIndex, RejectsDirectBuildAndEmptyDataset) {
  auto t = MakeData(400);
  IndexSpec spec;
  spec.lsh = t.cfg;
  spec.device_uri = "file:/tmp/e2_api_direct.bin?direct=1";
  auto built = Index::Build(spec, t.gen.base);
  EXPECT_EQ(built.status().code(), StatusCode::kInvalidArgument);

  IndexSpec mem_spec;
  mem_spec.device_uri = "mem:";
  EXPECT_EQ(Index::Build(mem_spec, data::Dataset("empty", 8)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ApiIndex, OpenRejectsShapeMismatchAndMissingSidecar) {
  auto t = MakeData(600);
  IndexSpec spec;
  spec.lsh = t.cfg;
  spec.device_uri = "mem:";
  auto built = Index::Build(spec, t.gen.base);
  ASSERT_TRUE(built.ok());
  const std::string meta = ::testing::TempDir() + "/e2_api_shape.bin";
  ASSERT_TRUE((*built)->Save(meta).ok());

  // Wrong dataset shape.
  auto wrong = MakeData(500);
  EXPECT_EQ(Index::Open(meta, OpenSpec{"mem:"}, wrong.gen.base)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  // Sidecar removed: a volatile reopen cannot restore the image.
  std::remove((meta + ".image").c_str());
  EXPECT_EQ(Index::Open(meta, OpenSpec{"mem:"}, t.gen.base).status().code(),
            StatusCode::kNotFound);
  std::remove(meta.c_str());
}

TEST(ApiIndex, SingleQuerySearchMatchesBatch) {
  auto t = MakeData(1500);
  IndexSpec spec;
  spec.lsh = t.cfg;
  spec.device_uri = "mem:";
  auto idx = Index::Build(spec, t.gen.base);
  ASSERT_TRUE(idx.ok());
  auto batch = (*idx)->SearchBatch(t.gen.queries, 5);
  ASSERT_TRUE(batch.ok());
  for (uint64_t q = 0; q < t.gen.queries.n(); ++q) {
    core::QueryStats stats;
    auto one = (*idx)->Search(t.gen.queries.Row(q), 5, &stats);
    ASSERT_TRUE(one.ok());
    ExpectSameResults({*one}, {batch->results[q]},
                      "single query " + std::to_string(q));
    EXPECT_GT(stats.ios, 0u);
  }
}

TEST(ApiIndex, CandidateCapFactorRetunesWithoutRebuild) {
  auto t = MakeData(1500);
  IndexSpec spec;
  spec.lsh = t.cfg;
  spec.device_uri = "mem:";
  auto idx = Index::Build(spec, t.gen.base);
  ASSERT_TRUE(idx.ok());
  const uint64_t s_before = (*idx)->params().S;
  ASSERT_TRUE((*idx)->SetCandidateCapFactor(0.5).ok());
  EXPECT_LT((*idx)->params().S, s_before);
  EXPECT_FALSE((*idx)->SetCandidateCapFactor(0.0).ok());
  // Queries still run after the retune (engine was rebuilt).
  EXPECT_TRUE((*idx)->SearchBatch(t.gen.queries, 5).ok());
}

TEST(ApiIndex, ServeDeliversEveryQueryAndGuardsTheEngine) {
  auto t = MakeData(1500);
  IndexSpec spec;
  spec.lsh = t.cfg;
  spec.device_uri = "mem:";
  auto idx = Index::Build(spec, t.gen.base);
  ASSERT_TRUE(idx.ok());

  auto batch = (*idx)->SearchBatch(t.gen.queries, 5);
  ASSERT_TRUE(batch.ok());

  core::FutureSink sink;
  ServeSpec serve;
  serve.k = 5;
  serve.max_batch_size = 7;
  serve.search.shards = 2;
  serve.on_result = sink.Callback();
  auto server = (*idx)->Serve(serve);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // The engine is single-owner while serving — and so is the device:
  // Save's image dump would steal the shard routers' completions.
  EXPECT_EQ((*idx)->SearchBatch(t.gen.queries, 5).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*idx)->Serve(serve).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*idx)->Save(::testing::TempDir() + "/e2_api_live.bin").code(),
            StatusCode::kFailedPrecondition);

  std::vector<std::pair<uint64_t, core::QueryFuture>> futures;
  for (uint64_t q = 0; q < t.gen.queries.n(); ++q) {
    auto id = (*server)->Submit(t.gen.queries.Row(q));
    ASSERT_TRUE(id.ok());
    futures.emplace_back(q, sink.Register(*id));
  }
  (*server)->Close();
  (*server)->Wait();
  for (auto& [q, fut] : futures) {
    auto result = fut.Take();
    ASSERT_TRUE(result.status.ok()) << result.status.ToString();
    ExpectSameResults({result.neighbors}, {batch->results[q]},
                      "served query " + std::to_string(q));
  }
  const auto snap = (*server)->stats();
  EXPECT_EQ(snap.completed, t.gen.queries.n());

  server->reset();  // destroying the Server releases the engine
  EXPECT_TRUE((*idx)->SearchBatch(t.gen.queries, 5).ok());
}

TEST(ApiIndex, ServerStopUnblocksProducers) {
  auto t = MakeData(1500);
  IndexSpec spec;
  spec.lsh = t.cfg;
  spec.device_uri = "mem:";
  auto idx = Index::Build(spec, t.gen.base);
  ASSERT_TRUE(idx.ok());

  ServeSpec serve;
  serve.k = 3;
  serve.queue_capacity = 2;  // tiny: producers hit backpressure fast
  auto server = (*idx)->Serve(serve);
  ASSERT_TRUE(server.ok());

  // A producer pushing far more than the queue holds blocks in Submit()
  // regularly; Stop() must wake it (closed queue) rather than leave it
  // waiting on a drain that never comes.
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (int i = 0; i < 100000 && !done.load(); ++i) {
      if (!(*server)->Submit(t.gen.queries.Row(0)).ok()) break;
    }
    done.store(true);
  });
  while (!done.load() && (*server)->stats().completed < 10) {
    std::this_thread::yield();
  }
  (*server)->Stop();  // must not deadlock against the blocked producer
  producer.join();
  EXPECT_FALSE((*server)->Submit(t.gen.queries.Row(0)).ok());
}

TEST(ApiIndex, IndexDestroyedBeforeServerIsSafe) {
  auto t = MakeData(1500);
  IndexSpec spec;
  spec.lsh = t.cfg;
  spec.device_uri = "mem:";
  auto idx = Index::Build(spec, t.gen.base);
  ASSERT_TRUE(idx.ok());

  ServeSpec serve;
  serve.k = 3;
  auto server = (*idx)->Serve(serve);
  ASSERT_TRUE(server.ok());
  ASSERT_TRUE((*server)->Submit(t.gen.queries.Row(0)).ok());

  // Documented misuse, but it must not be a use-after-free: the Index
  // stops serving on destruction and detaches the Server, which then
  // rejects submissions and destructs cleanly on its own.
  idx->reset();
  EXPECT_FALSE((*server)->Submit(t.gen.queries.Row(0)).ok());
  server->reset();
}

}  // namespace
}  // namespace e2lshos
