// Microbenchmarks (google-benchmark) for the hot kernels: distance,
// dot product, LSH hashing, compound-hash folding, RNG, and the
// simulated-device submit/poll path.
#include <benchmark/benchmark.h>

#include <vector>

#include "lsh/hash_function.h"
#include "storage/memory_device.h"
#include "util/aligned_buffer.h"
#include "util/distance.h"
#include "util/rng.h"

namespace e2lshos {
namespace {

void BM_SquaredL2(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  util::Rng rng(1);
  std::vector<float> a(d), b(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = rng.NextFloat();
    b[i] = rng.NextFloat();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::SquaredL2(a.data(), b.data(), d));
  }
  state.SetItemsProcessed(state.iterations());
  state.SetBytesProcessed(state.iterations() * d * 2 * sizeof(float));
}
BENCHMARK(BM_SquaredL2)->Arg(100)->Arg(128)->Arg(420)->Arg(784)->Arg(960);

void BM_Dot(benchmark::State& state) {
  const size_t d = static_cast<size_t>(state.range(0));
  util::Rng rng(2);
  std::vector<float> a(d), b(d);
  for (size_t i = 0; i < d; ++i) {
    a[i] = rng.NextFloat();
    b[i] = rng.NextFloat();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::Dot(a.data(), b.data(), d));
  }
  state.SetBytesProcessed(state.iterations() * d * 2 * sizeof(float));
}
BENCHMARK(BM_Dot)->Arg(128)->Arg(960);

void BM_CompoundHash32(benchmark::State& state) {
  const uint32_t d = 128;
  const uint32_t m = static_cast<uint32_t>(state.range(0));
  util::Rng rng(3);
  lsh::CompoundHash g(d, m, 4.0, rng);
  std::vector<float> p(d);
  for (auto& v : p) v = rng.NextFloat();
  for (auto _ : state) {
    benchmark::DoNotOptimize(g.Hash32(p.data()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CompoundHash32)->Arg(8)->Arg(16)->Arg(28);

void BM_Fold(benchmark::State& state) {
  std::vector<int32_t> vals(28);
  for (int i = 0; i < 28; ++i) vals[i] = i * 2654435761;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lsh::CompoundHash::Fold(vals.data(), 28));
  }
}
BENCHMARK(BM_Fold);

void BM_RngGaussian(benchmark::State& state) {
  util::Rng rng(4);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Gaussian());
}
BENCHMARK(BM_RngGaussian);

void BM_MemoryDeviceSubmitPoll(benchmark::State& state) {
  auto dev = storage::MemoryDevice::Create(16 << 20);
  if (!dev.ok()) {
    state.SkipWithError("device create failed");
    return;
  }
  util::AlignedBuffer buf(512);
  storage::IoCompletion comp;
  uint64_t i = 0;
  for (auto _ : state) {
    storage::IoRequest req{(i++ % 1024) * 512, 512, buf.data(), i};
    benchmark::DoNotOptimize((*dev)->SubmitRead(req));
    benchmark::DoNotOptimize((*dev)->PollCompletions(&comp, 1));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryDeviceSubmitPoll);

}  // namespace
}  // namespace e2lshos

BENCHMARK_MAIN();
