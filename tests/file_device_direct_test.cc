// Regression tests for the FileDevice direct-I/O path and its bounds
// checks:
//
//  * O_DIRECT rejects extents that are not sector-aligned, so the query
//    engine must issue table-entry reads (8-byte payloads) as full
//    sector reads — covered end-to-end by building an index on a
//    buffered file and re-serving it through an O_DIRECT reopen.
//  * Unaligned direct requests must fail fast with InvalidArgument at
//    submission, not as a confusing kIoError completion.
//  * The capacity bounds must not wrap for hostile/corrupt addresses
//    near UINT64_MAX (`offset + length` overflow).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>

#include "core/builder.h"
#include "core/persistence.h"
#include "core/query_engine.h"
#include "data/generators.h"
#include "storage/device_registry.h"
#include "storage/file_device.h"
#include "storage/memory_device.h"
#include "storage/simulated_device.h"
#include "util/aligned_buffer.h"

namespace e2lshos::storage {
namespace {

constexpr uint64_t kCapacity = 1ULL << 20;  // 1 MiB, sector-multiple

// Some filesystems (tmpfs) do not support O_DIRECT at all; skip the
// direct tests there rather than failing.
std::unique_ptr<FileDevice> MakeDirectDeviceOrSkip(const std::string& path) {
  FileDevice::Options opt;
  opt.capacity = kCapacity;
  opt.io_threads = 1;
  opt.direct_io = true;
  auto dev = FileDevice::Create(path, opt);
  if (!dev.ok()) return nullptr;
  return std::move(dev).value();
}

IoCompletion AwaitOne(BlockDevice* dev) {
  IoCompletion comp;
  while (dev->PollCompletions(&comp, 1) == 0) {
  }
  return comp;
}

TEST(FileDeviceDirect, RejectsUnalignedRequestsWithInvalidArgument) {
  const std::string path = ::testing::TempDir() + "/e2_direct_reject.bin";
  auto dev = MakeDirectDeviceOrSkip(path);
  if (dev == nullptr) GTEST_SKIP() << "filesystem does not support O_DIRECT";

  util::AlignedBuffer buf(2 * kSectorBytes, kSectorBytes);

  IoRequest req;
  req.buf = buf.data();

  // 8-byte table-entry-style read: the exact shape QueryEngine used to
  // issue. Must be rejected at submission with a clear error.
  req.offset = 0;
  req.length = 8;
  EXPECT_EQ(dev->SubmitRead(req).code(), StatusCode::kInvalidArgument);

  // Unaligned offset.
  req.offset = 24;
  req.length = kSectorBytes;
  EXPECT_EQ(dev->SubmitRead(req).code(), StatusCode::kInvalidArgument);

  // Unaligned destination buffer.
  req.offset = 0;
  req.buf = buf.data() + 8;
  EXPECT_EQ(dev->SubmitRead(req).code(), StatusCode::kInvalidArgument);

  // Fully aligned request sails through and completes OK.
  req.buf = buf.data();
  ASSERT_TRUE(dev->SubmitRead(req).ok());
  EXPECT_EQ(AwaitOne(dev.get()).code, StatusCode::kOk);

  // Unaligned direct writes are rejected the same way.
  EXPECT_EQ(dev->Write(8, buf.data(), kSectorBytes).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(dev->Write(0, buf.data(), 24).code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(dev->Write(0, buf.data(), kSectorBytes).ok());

  dev.reset();
  std::remove(path.c_str());
}

TEST(FileDeviceDirect, CapacityBoundsDoNotWrapOnOverflow) {
  const std::string path = ::testing::TempDir() + "/e2_overflow_bounds.bin";
  FileDevice::Options opt;
  opt.capacity = kCapacity;
  opt.io_threads = 1;
  auto dev = FileDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());

  util::AlignedBuffer buf(kSectorBytes, kSectorBytes);
  IoRequest req;
  req.buf = buf.data();
  req.length = kSectorBytes;

  // A corrupt chain pointer near UINT64_MAX: offset + length wraps past
  // zero and used to pass the `> capacity_` bound.
  req.offset = std::numeric_limits<uint64_t>::max() - kSectorBytes + 1;
  EXPECT_EQ((*dev)->SubmitRead(req).code(), StatusCode::kOutOfRange);
  req.offset = std::numeric_limits<uint64_t>::max();
  req.length = 2;
  EXPECT_EQ((*dev)->SubmitRead(req).code(), StatusCode::kOutOfRange);

  // Length alone exceeding capacity is also out of range.
  req.offset = 0;
  req.length = static_cast<uint32_t>(kCapacity) + kSectorBytes;
  EXPECT_EQ((*dev)->SubmitRead(req).code(), StatusCode::kOutOfRange);

  // Same wrap on the write path.
  EXPECT_EQ((*dev)
                ->Write(std::numeric_limits<uint64_t>::max() - 4, buf.data(), 8)
                .code(),
            StatusCode::kOutOfRange);

  // In-bounds requests still work at the very end of the device.
  req.offset = kCapacity - kSectorBytes;
  req.length = kSectorBytes;
  ASSERT_TRUE((*dev)->SubmitRead(req).ok());
  EXPECT_EQ(AwaitOne(dev->get()).code, StatusCode::kOk);

  dev->reset();
  std::remove(path.c_str());
}

// The same wrap must be caught by the in-memory devices — they back the
// tests and benches, and a corrupt chain pointer would otherwise walk a
// wild memcpy instead of returning OutOfRange.
TEST(FileDeviceDirect, InMemoryDeviceBoundsDoNotWrapOnOverflow) {
  util::AlignedBuffer buf(kSectorBytes, kSectorBytes);
  IoRequest req;
  req.buf = buf.data();
  req.length = kSectorBytes;
  req.offset = std::numeric_limits<uint64_t>::max() - kSectorBytes + 1;

  auto mem = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(mem.ok());
  EXPECT_EQ((*mem)->SubmitRead(req).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*mem)->Write(req.offset, buf.data(), kSectorBytes).code(),
            StatusCode::kOutOfRange);

  DeviceModel model = GetDeviceModel(DeviceKind::kCssd);
  model.capacity_bytes = kCapacity;
  auto sim = SimulatedDevice::Create(model);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ((*sim)->SubmitRead(req).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*sim)->Write(req.offset, buf.data(), kSectorBytes).code(),
            StatusCode::kOutOfRange);
}

// An index laid out with blocks smaller than a sector is still served
// correctly by a direct device: the engine widens each bucket read to
// the aligned span containing the block (the same treatment a 512-byte
// block layout gets on a 4Kn drive) and answers must match the buffered
// run bit for bit.
TEST(FileDeviceDirect, ServesSubSectorBlockLayoutThroughDirectDevice) {
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kUniform;
  spec.dim = 8;
  spec.seed = 3;
  auto gen = data::Generate("tinyblocks", 500, 8, spec);
  lsh::E2lshConfig cfg;
  cfg.s_factor = 1000.0;  // no truncation: answers must match exactly
  cfg.x_max = gen.base.XMax();
  auto params = lsh::ComputeParams(500, 8, cfg);
  ASSERT_TRUE(params.ok());

  const std::string image = ::testing::TempDir() + "/e2_tinyblock_image.bin";
  const std::string meta = ::testing::TempDir() + "/e2_tinyblock_meta.bin";
  std::vector<std::vector<util::Neighbor>> before;
  {
    FileDevice::Options opt;
    opt.capacity = 256ULL << 20;
    opt.io_threads = 1;
    auto dev = FileDevice::Create(image, opt);
    ASSERT_TRUE(dev.ok());
    core::BuildOptions bopt;
    bopt.block_bytes = 128;  // sub-sector: every block read needs widening
    auto idx = core::IndexBuilder::Build(gen.base, *params, dev->get(), bopt);
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    ASSERT_TRUE(core::SaveIndexMeta(**idx, meta).ok());

    core::QueryEngine engine(idx->get(), &gen.base);
    auto batch = engine.SearchBatch(gen.queries, 3);
    ASSERT_TRUE(batch.ok());
    before = batch->results;
  }
  {
    FileDevice::Options opt;
    opt.io_threads = 1;
    opt.direct_io = true;
    auto dev = FileDevice::Open(image, opt);
    if (!dev.ok()) GTEST_SKIP() << "filesystem does not support O_DIRECT";
    auto idx = core::LoadIndexMeta(meta, dev->get());
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();

    core::QueryEngine engine(idx->get(), &gen.base);
    auto batch = engine.SearchBatch(gen.queries, 3);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->results.size(), before.size());
    for (size_t q = 0; q < before.size(); ++q) {
      EXPECT_EQ(batch->stats[q].io_errors, 0u) << "query " << q;
      ASSERT_EQ(batch->results[q].size(), before[q].size()) << "query " << q;
      for (size_t i = 0; i < before[q].size(); ++i) {
        EXPECT_EQ(batch->results[q][i].id, before[q][i].id);
        EXPECT_FLOAT_EQ(batch->results[q][i].dist, before[q][i].dist);
      }
    }
  }
  std::remove(image.c_str());
  std::remove(meta.c_str());
}

// End-to-end regression for the sector-aligned table reads: build an
// index on a buffered file device, then serve the identical byte image
// through an O_DIRECT reopen. Before the fix, every 8-byte table read
// failed with EINVAL and queries silently returned empty answers.
TEST(FileDeviceDirect, ServesQueriesThroughODirectReopen) {
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = 24;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * 24);
  spec.center_spread = 10.0 * std::sqrt(6.0 / 24);
  spec.seed = 11;
  auto gen = data::Generate("direct", 3000, 25, spec);

  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = 1000.0;  // no truncation: answers must match exactly
  cfg.x_max = gen.base.XMax();
  auto params = lsh::ComputeParams(3000, 24, cfg);
  ASSERT_TRUE(params.ok());

  const std::string image = ::testing::TempDir() + "/e2_direct_image.bin";
  const std::string meta = ::testing::TempDir() + "/e2_direct_meta.bin";

  std::vector<std::vector<util::Neighbor>> before;
  {
    FileDevice::Options opt;
    opt.capacity = 2ULL << 30;
    opt.io_threads = 2;
    auto dev = FileDevice::Create(image, opt);
    ASSERT_TRUE(dev.ok());
    auto idx = core::IndexBuilder::Build(gen.base, *params, dev->get());
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();
    ASSERT_TRUE(core::SaveIndexMeta(**idx, meta).ok());

    core::QueryEngine engine(idx->get(), &gen.base);
    auto batch = engine.SearchBatch(gen.queries, 5);
    ASSERT_TRUE(batch.ok());
    before = batch->results;
  }

  {
    FileDevice::Options opt;
    opt.io_threads = 2;
    opt.direct_io = true;
    auto dev = FileDevice::Open(image, opt);
    if (!dev.ok()) GTEST_SKIP() << "filesystem does not support O_DIRECT";
    auto idx = core::LoadIndexMeta(meta, dev->get());
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();

    core::QueryEngine engine(idx->get(), &gen.base);
    auto batch = engine.SearchBatch(gen.queries, 5);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->results.size(), before.size());
    for (size_t q = 0; q < before.size(); ++q) {
      // No read may fail: a single EINVAL would show up here.
      EXPECT_EQ(batch->stats[q].io_errors, 0u) << "query " << q;
      ASSERT_EQ(batch->results[q].size(), before[q].size()) << "query " << q;
      for (size_t i = 0; i < before[q].size(); ++i) {
        EXPECT_EQ(batch->results[q][i].id, before[q][i].id);
        EXPECT_FLOAT_EQ(batch->results[q][i].dist, before[q][i].dist);
      }
    }
  }
  std::remove(image.c_str());
  std::remove(meta.c_str());
}

}  // namespace
}  // namespace e2lshos::storage
