// Minimal JSON-lines emission for machine-readable benchmark output.
//
// A JsonRow is an ordered flat map of key -> scalar (string / double /
// integer); JsonlWriter appends one row per line to a file so CI can
// track recall/QPS/latency regressions across runs without scraping the
// human-oriented TSV tables. ParseJsonRow reads a flat row back (used by
// the round-trip unit test and by any tooling that wants to stay
// dependency-free).
#pragma once

#include <cinttypes>
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace e2lshos::util {

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// \brief One flat JSON object, keys kept in insertion order.
class JsonRow {
 public:
  JsonRow& Set(const std::string& key, const std::string& v) {
    fields_.emplace_back(key, "\"" + JsonEscape(v) + "\"");
    return *this;
  }
  JsonRow& Set(const std::string& key, const char* v) {
    return Set(key, std::string(v));
  }
  JsonRow& Set(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", v);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonRow& Set(const std::string& key, uint64_t v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    fields_.emplace_back(key, buf);
    return *this;
  }
  JsonRow& Set(const std::string& key, uint32_t v) {
    return Set(key, static_cast<uint64_t>(v));
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < fields_.size(); ++i) {
      if (i) out += ",";
      out += "\"" + JsonEscape(fields_[i].first) + "\":" + fields_[i].second;
    }
    out += "}";
    return out;
  }

  bool empty() const { return fields_.empty(); }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Parse one flat JSON object line into key -> value. String values are
/// returned unescaped and unquoted; numbers/booleans as their raw token.
/// Nested objects/arrays are rejected (rows are flat by construction).
inline Result<std::map<std::string, std::string>> ParseJsonRow(
    const std::string& line) {
  std::map<std::string, std::string> out;
  size_t i = 0;
  auto skip_ws = [&] {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
  };
  // Parse the 4 hex digits following "\u"; `i` points at the 'u'.
  auto parse_hex4 = [&](unsigned* code) -> Status {
    if (i + 4 >= line.size()) {
      return Status::InvalidArgument("truncated \\u escape");
    }
    *code = 0;
    for (int d = 1; d <= 4; ++d) {
      const char h = line[i + d];
      *code <<= 4;
      if (h >= '0' && h <= '9') {
        *code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        *code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        *code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        return Status::InvalidArgument("bad \\u escape digit");
      }
    }
    i += 4;
    return Status::OK();
  };
  auto parse_string = [&](std::string* s) -> Status {
    if (i >= line.size() || line[i] != '"') {
      return Status::InvalidArgument("expected string at " + std::to_string(i));
    }
    ++i;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\' && i + 1 < line.size()) {
        ++i;
        switch (line[i]) {
          case 'n': *s += '\n'; break;
          case 'r': *s += '\r'; break;
          case 't': *s += '\t'; break;
          case 'u': {
            unsigned code = 0;
            E2_RETURN_NOT_OK(parse_hex4(&code));
            if (code >= 0xD800 && code <= 0xDBFF) {
              // High surrogate: JSON encodes astral code points as a
              // \uD8xx\uDCxx pair; combine or the output is CESU-8.
              if (i + 2 >= line.size() || line[i + 1] != '\\' ||
                  line[i + 2] != 'u') {
                return Status::InvalidArgument("lone high surrogate");
              }
              i += 2;
              unsigned low = 0;
              E2_RETURN_NOT_OK(parse_hex4(&low));
              if (low < 0xDC00 || low > 0xDFFF) {
                return Status::InvalidArgument("bad low surrogate");
              }
              const unsigned cp =
                  0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
              *s += static_cast<char>(0xF0 | (cp >> 18));
              *s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
              *s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
              *s += static_cast<char>(0x80 | (cp & 0x3F));
              break;
            }
            if (code >= 0xDC00 && code <= 0xDFFF) {
              return Status::InvalidArgument("lone low surrogate");
            }
            // UTF-8-encode; truncating to one byte would silently
            // corrupt anything above U+00FF.
            if (code < 0x80) {
              *s += static_cast<char>(code);
            } else if (code < 0x800) {
              *s += static_cast<char>(0xC0 | (code >> 6));
              *s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              *s += static_cast<char>(0xE0 | (code >> 12));
              *s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              *s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: *s += line[i];
        }
      } else {
        *s += line[i];
      }
      ++i;
    }
    if (i >= line.size()) return Status::InvalidArgument("unterminated string");
    ++i;  // closing quote
    return Status::OK();
  };

  skip_ws();
  if (i >= line.size() || line[i] != '{') {
    return Status::InvalidArgument("expected '{'");
  }
  ++i;
  skip_ws();
  if (i < line.size() && line[i] == '}') {
    ++i;
  } else {
    for (;;) {
      skip_ws();
      std::string key;
      E2_RETURN_NOT_OK(parse_string(&key));
      skip_ws();
      if (i >= line.size() || line[i] != ':') {
        return Status::InvalidArgument("expected ':'");
      }
      ++i;
      skip_ws();
      std::string value;
      if (i < line.size() && line[i] == '"') {
        E2_RETURN_NOT_OK(parse_string(&value));
      } else if (i < line.size() && (line[i] == '{' || line[i] == '[')) {
        return Status::InvalidArgument("nested values not supported");
      } else {
        while (i < line.size() && line[i] != ',' && line[i] != '}') {
          value += line[i++];
        }
        while (!value.empty() && (value.back() == ' ' || value.back() == '\t')) {
          value.pop_back();
        }
        if (value.empty()) return Status::InvalidArgument("empty value");
      }
      out[key] = value;
      skip_ws();
      if (i >= line.size()) {
        return Status::InvalidArgument("unterminated object");
      }
      if (line[i] == '}') {
        ++i;
        break;
      }
      if (line[i] != ',') return Status::InvalidArgument("expected ',' or '}'");
      ++i;
    }
  }
  // A JSONL row is exactly one object per line: anything but trailing
  // whitespace after the brace means a corrupt/truncated line.
  while (i < line.size() &&
         (line[i] == ' ' || line[i] == '\t' || line[i] == '\n' ||
          line[i] == '\r')) {
    ++i;
  }
  if (i != line.size()) {
    return Status::InvalidArgument("trailing garbage after object");
  }
  return out;
}

/// \brief Append-one-row-per-line writer (JSONL), flushed per row so a
/// crashed bench still leaves every completed row on disk.
class JsonlWriter {
 public:
  static Result<std::unique_ptr<JsonlWriter>> Open(const std::string& path) {
    FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return Status::IoError("cannot open " + path + " for writing");
    }
    return std::unique_ptr<JsonlWriter>(new JsonlWriter(f));
  }

  ~JsonlWriter() {
    if (f_ != nullptr) std::fclose(f_);
  }
  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  void Write(const JsonRow& row) {
    std::fprintf(f_, "%s\n", row.ToString().c_str());
    std::fflush(f_);
  }

 private:
  explicit JsonlWriter(FILE* f) : f_(f) {}
  FILE* f_;
};

}  // namespace e2lshos::util
