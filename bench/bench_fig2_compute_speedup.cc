// Reproduces Figure 2: speedup gains of in-memory E2LSH over in-memory
// SRS and QALSH at matched accuracy (overall ratio target 1.05), per
// dataset. The paper's Observation 1: E2LSH's computational cost is much
// lower, often by one to two orders of magnitude.
#include "common.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  constexpr double kTargetRatio = 1.05;
  constexpr uint32_t kK = 1;

  bench::PrintHeader(
      "Figure 2: speedup of in-memory E2LSH over SRS and QALSH (k=1, "
      "ratio target 1.05)",
      {"Dataset", "E2LSH us/q", "SRS us/q", "QALSH us/q", "speedup vs SRS",
       "speedup vs QALSH"});

  for (const auto& spec : data::PaperDatasets()) {
    if (!args.dataset.empty() && spec.name != args.dataset) continue;
    auto w = bench::MakeWorkload(spec, args.EffectiveN(spec), args.queries, kK);
    if (!w.ok()) continue;

    auto index = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
    if (!index.ok()) continue;
    const auto e2 = bench::SweepInMemory(index->get(), *w, kK,
                                         bench::DefaultSFactors());
    const auto srs = bench::SweepSrs(*w, kK, bench::DefaultSrsFractions());
    const auto qalsh = bench::SweepQalsh(*w, kK, bench::DefaultQalshCs());

    const double t_e2 = bench::QueryNsAtRatio(e2, kTargetRatio);
    const double t_srs = bench::QueryNsAtRatio(srs, kTargetRatio);
    const double t_qalsh = bench::QueryNsAtRatio(qalsh, kTargetRatio);
    bench::PrintRow({spec.name, bench::Fmt(t_e2 / 1e3, 1),
                     bench::Fmt(t_srs / 1e3, 1), bench::Fmt(t_qalsh / 1e3, 1),
                     bench::Fmt(t_srs / t_e2, 1), bench::Fmt(t_qalsh / t_e2, 1)});
  }
  std::printf(
      "\nExpected shape (paper): every speedup > 1; often 10-100x; SRS "
      "consistently\nfaster than QALSH. Gaps widen with database size n "
      "(sublinear vs linear vs\nsuperlinear query time).\n");
  return 0;
}
