// SRS: c-ANNS with a tiny index (Sun et al., PVLDB 8(1), 2014).
//
// Objects are projected onto an m-dimensional space (m = 8 per the
// paper's Sec. 3.3 tuning) with Gaussian projections; for a point at true
// distance s, the squared projected distance is distributed s^2 * chi^2_m.
// Queries run an incremental NN scan in the projected space via an R-tree
// and verify true distances in increasing projected order. Two stopping
// rules (SRS-12 in the original):
//   * examined T' points (the accuracy knob the paper sweeps), or
//   * early termination: once Psi_m(r_proj^2 / (d_k / c)^2) >= p_tau,
//     an unseen point closer than d_k / c is sufficiently unlikely.
//
// Index and query time are both linear in n — this is the in-memory
// baseline E2LSHoS is compared against throughout the paper.
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "baselines/rtree.h"
#include "data/dataset.h"
#include "util/topk.h"

namespace e2lshos::baselines {

struct SrsConfig {
  uint32_t proj_dim = 8;       ///< m: projection dimensionality.
  double c = 4.0;              ///< Approximation ratio (paper uses c=4).
  double success_prob = 0.5 - 1.0 / M_E;  ///< Algorithm success target.
  /// Confidence required before the early-termination rule fires: the
  /// chi-squared tail probability that no unseen point beats d_k / c.
  /// Higher values stop later and verify more points.
  double early_stop_confidence = 0.9;
  /// Max data points verified (T'); the accuracy knob. 0 = sqrt-scaled
  /// default of 5% of n.
  uint64_t max_verify = 0;
  uint64_t seed = 20140901;
};

struct SrsStats {
  uint64_t points_verified = 0;
  uint64_t rtree_nodes_visited = 0;
  uint64_t wall_ns = 0;
  bool early_terminated = false;
};

class Srs {
 public:
  static Result<std::unique_ptr<Srs>> Build(const data::Dataset& base,
                                            const SrsConfig& config);

  std::vector<util::Neighbor> Search(const float* query, uint32_t k,
                                     SrsStats* stats = nullptr) const;

  struct BatchResult {
    std::vector<std::vector<util::Neighbor>> results;
    std::vector<SrsStats> stats;
    uint64_t wall_ns = 0;
    double QueriesPerSecond() const {
      return wall_ns == 0 ? 0.0
                          : static_cast<double>(results.size()) * 1e9 /
                                static_cast<double>(wall_ns);
    }
  };
  BatchResult SearchBatch(const data::Dataset& queries, uint32_t k) const;

  const SrsConfig& config() const { return config_; }
  uint64_t IndexMemoryBytes() const;

 private:
  void Project(const float* src, float* dst) const;

  const data::Dataset* base_ = nullptr;
  SrsConfig config_;
  std::vector<float> proj_matrix_;  // proj_dim x dim
  std::vector<float> projections_;  // n x proj_dim
  RTree tree_;
};

}  // namespace e2lshos::baselines
