#include "storage/uring_device.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "storage/io_align.h"
#include "util/clock.h"

#if defined(E2LSHOS_HAVE_LIBURING)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#endif

namespace e2lshos::storage {

#if defined(E2LSHOS_HAVE_LIBURING)

namespace {

int SysUringSetup(unsigned entries, io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                  unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

int SysUringRegister(int ring_fd, unsigned opcode, const void* arg,
                     unsigned nr_args) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_register, ring_fd, opcode, arg, nr_args));
}

uint32_t Pow2Ceil(uint32_t v) {
  uint32_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

std::string ErrnoString(const std::string& what, int err) {
  return what + " failed: " + std::strerror(err);
}

}  // namespace

/// The mmap'ed ring state. The kernel writes cq tail / sq head; we write
/// sq tail / cq head. Cross-side words go through __atomic builtins with
/// acquire/release ordering, exactly as liburing does; our own side is
/// additionally serialized by UringDevice::mu_.
struct UringDevice::Ring {
  int ring_fd = -1;
  uint32_t sq_entry_count = 0;
  uint32_t cq_entry_count = 0;
  uint32_t features = 0;

  void* sq_mmap = nullptr;
  size_t sq_mmap_sz = 0;
  void* cq_mmap = nullptr;  ///< == sq_mmap under IORING_FEAT_SINGLE_MMAP.
  size_t cq_mmap_sz = 0;
  io_uring_sqe* sqes = nullptr;
  size_t sqes_sz = 0;

  unsigned* sq_head = nullptr;
  unsigned* sq_tail = nullptr;
  unsigned sq_mask = 0;
  unsigned* sq_flags = nullptr;
  unsigned* sq_array = nullptr;
  unsigned* cq_head = nullptr;
  unsigned* cq_tail = nullptr;
  unsigned cq_mask = 0;
  io_uring_cqe* cqes = nullptr;

  unsigned local_sq_tail = 0;  ///< Published to *sq_tail on every enqueue.
  unsigned local_cq_head = 0;
  unsigned to_submit = 0;  ///< Enqueued SQEs not yet handed to the kernel.
  bool sqpoll = false;

  ~Ring() {
    if (sqes != nullptr) ::munmap(sqes, sqes_sz);
    if (cq_mmap != nullptr && cq_mmap != sq_mmap) ::munmap(cq_mmap, cq_mmap_sz);
    if (sq_mmap != nullptr) ::munmap(sq_mmap, sq_mmap_sz);
    if (ring_fd >= 0) ::close(ring_fd);
  }
};

bool UringDevice::Available() {
  static const bool available = [] {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = SysUringSetup(2, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return available;
}

UringDevice::UringDevice(std::string path, int fd, const Options& options)
    : path_(std::move(path)),
      fd_(fd),
      capacity_(options.capacity),
      queue_capacity_(std::max<uint32_t>(1, options.queue_capacity)),
      submit_batch_(std::max<uint32_t>(1, options.submit_batch)),
      direct_io_(options.direct_io),
      sqpoll_requested_(options.sqpoll),
      sqpoll_idle_ms_(options.sqpoll_idle_ms) {
  if (direct_io_) align_ = EffectiveDioAlignment(ProbeDioAlignment(fd_));
  slots_.resize(queue_capacity_);
  free_slots_.reserve(queue_capacity_);
  for (uint32_t i = 0; i < queue_capacity_; ++i) free_slots_.push_back(i);
}

UringDevice::~UringDevice() {
  // Detach from the parent first so its stats()/outstanding() aggregation
  // can no longer reach a half-destroyed queue.
  if (parent_ != nullptr) parent_->queue_registry_.Remove(this);
  // The kernel writes completions into caller buffers: tearing the ring
  // down with reads in flight would let those writes land after the
  // buffers are freed. Block until everything completed.
  if (ring_ != nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    IoCompletion sink[64];
    while (inflight_.load(std::memory_order_relaxed) > 0) {
      ProcessRetriesLocked();
      (void)FlushLocked();
      if (ProcessCqesLocked(sink, 64) == 0 && retry_.empty()) {
        (void)SysUringEnter(ring_->ring_fd, 0, 1, IORING_ENTER_GETEVENTS);
      }
    }
  }
  ring_.reset();
  if (fd_ >= 0) ::close(fd_);
}

Status UringDevice::InitRing(const Options& options) {
  auto setup = [&](bool with_sqpoll) -> Result<std::unique_ptr<Ring>> {
    io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const uint32_t sq_entries =
        Pow2Ceil(std::clamp<uint32_t>(options.sq_entries, 1, 4096));
    // The CQ ring must hold every unharvested completion: an overflow
    // would stall the device (or drop completions on pre-NODROP
    // kernels), so size it to the queue capacity, never below the SQ.
    params.flags |= IORING_SETUP_CQSIZE;
    params.cq_entries = Pow2Ceil(std::max(queue_capacity_, sq_entries));
    if (with_sqpoll) {
      params.flags |= IORING_SETUP_SQPOLL;
      params.sq_thread_idle = options.sqpoll_idle_ms;
    }
    const int ring_fd = SysUringSetup(sq_entries, &params);
    if (ring_fd < 0) {
      return Status::IoError(ErrnoString("io_uring_setup", errno));
    }

    auto ring = std::make_unique<Ring>();
    ring->ring_fd = ring_fd;
    ring->sq_entry_count = params.sq_entries;
    ring->cq_entry_count = params.cq_entries;
    ring->features = params.features;
    ring->sqpoll = with_sqpoll;

    ring->sq_mmap_sz =
        params.sq_off.array + params.sq_entries * sizeof(unsigned);
    ring->cq_mmap_sz =
        params.cq_off.cqes + params.cq_entries * sizeof(io_uring_cqe);
    if ((params.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      ring->sq_mmap_sz = ring->cq_mmap_sz =
          std::max(ring->sq_mmap_sz, ring->cq_mmap_sz);
    }
    ring->sq_mmap =
        ::mmap(nullptr, ring->sq_mmap_sz, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQ_RING);
    if (ring->sq_mmap == MAP_FAILED) {
      ring->sq_mmap = nullptr;
      return Status::IoError(ErrnoString("mmap(sq ring)", errno));
    }
    if ((params.features & IORING_FEAT_SINGLE_MMAP) != 0) {
      ring->cq_mmap = ring->sq_mmap;
    } else {
      ring->cq_mmap =
          ::mmap(nullptr, ring->cq_mmap_sz, PROT_READ | PROT_WRITE,
                 MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_CQ_RING);
      if (ring->cq_mmap == MAP_FAILED) {
        ring->cq_mmap = nullptr;
        return Status::IoError(ErrnoString("mmap(cq ring)", errno));
      }
    }
    ring->sqes_sz = params.sq_entries * sizeof(io_uring_sqe);
    ring->sqes = static_cast<io_uring_sqe*>(
        ::mmap(nullptr, ring->sqes_sz, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd, IORING_OFF_SQES));
    if (ring->sqes == MAP_FAILED) {
      ring->sqes = nullptr;
      return Status::IoError(ErrnoString("mmap(sqes)", errno));
    }

    uint8_t* sq = static_cast<uint8_t*>(ring->sq_mmap);
    uint8_t* cq = static_cast<uint8_t*>(ring->cq_mmap);
    ring->sq_head = reinterpret_cast<unsigned*>(sq + params.sq_off.head);
    ring->sq_tail = reinterpret_cast<unsigned*>(sq + params.sq_off.tail);
    ring->sq_mask =
        *reinterpret_cast<unsigned*>(sq + params.sq_off.ring_mask);
    ring->sq_flags = reinterpret_cast<unsigned*>(sq + params.sq_off.flags);
    ring->sq_array = reinterpret_cast<unsigned*>(sq + params.sq_off.array);
    ring->cq_head = reinterpret_cast<unsigned*>(cq + params.cq_off.head);
    ring->cq_tail = reinterpret_cast<unsigned*>(cq + params.cq_off.tail);
    ring->cq_mask =
        *reinterpret_cast<unsigned*>(cq + params.cq_off.ring_mask);
    ring->cqes =
        reinterpret_cast<io_uring_cqe*>(cq + params.cq_off.cqes);

    // Identity-map the SQ index array once; SQE slots are then addressed
    // directly by tail & mask (the liburing convention).
    for (unsigned i = 0; i < params.sq_entries; ++i) ring->sq_array[i] = i;
    ring->local_sq_tail = *ring->sq_tail;
    ring->local_cq_head = *ring->cq_head;
    return ring;
  };

  if (options.sqpoll) {
    auto ring = setup(true);
    if (ring.ok()) {
      ring_ = std::move(ring).value();
      sqpoll_active_ = true;
    }
    // SQPOLL can be refused (EPERM in restricted containers, resource
    // limits): degrade to interrupt-driven mode rather than failing the
    // open — sqpoll_active() reports what actually happened.
  }
  if (ring_ == nullptr) {
    E2_ASSIGN_OR_RETURN(ring_, setup(false));
    sqpoll_active_ = false;
  }

  // Register the backing fd: the kernel resolves it once instead of per
  // submission. SQPOLL historically requires it; plain mode merely
  // benefits, so a refusal only downgrades.
  if (SysUringRegister(ring_->ring_fd, IORING_REGISTER_FILES, &fd_, 1) == 0) {
    fixed_file_ = true;
  } else if (sqpoll_active_ &&
             (ring_->features & IORING_FEAT_SQPOLL_NONFIXED) == 0) {
    return Status::IoError(
        "SQPOLL requires registered files on this kernel and "
        "IORING_REGISTER_FILES failed: " +
        std::string(std::strerror(errno)));
  }
  return Status::OK();
}

Result<std::unique_ptr<UringDevice>> UringDevice::Create(
    const std::string& path, const Options& options) {
  if (!Available()) {
    return Status::Unimplemented(
        "io_uring is not available (kernel refused io_uring_setup)");
  }
  if (options.capacity == 0) {
    return Status::InvalidArgument("uring device capacity must be > 0");
  }
  int flags = O_RDWR | O_CREAT | O_TRUNC;
#ifdef O_DIRECT
  if (options.direct_io) flags |= O_DIRECT;
#endif
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return Status::IoError("open(" + path + ") failed: " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(options.capacity)) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IoError(ErrnoString("ftruncate", err));
  }
  std::unique_ptr<UringDevice> dev(new UringDevice(path, fd, options));
  E2_RETURN_NOT_OK(dev->InitRing(options));
  return dev;
}

Result<std::unique_ptr<UringDevice>> UringDevice::Open(const std::string& path,
                                                       const Options& options) {
  if (!Available()) {
    return Status::Unimplemented(
        "io_uring is not available (kernel refused io_uring_setup)");
  }
  int flags = O_RDWR;
#ifdef O_DIRECT
  if (options.direct_io) flags |= O_DIRECT;
#endif
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::NotFound("open(" + path + ") failed: " + std::strerror(errno));
  }
  const off_t size = ::lseek(fd, 0, SEEK_END);
  if (size <= 0) {
    ::close(fd);
    return Status::InvalidArgument(path + " is empty");
  }
  Options opened = options;
  opened.capacity = static_cast<uint64_t>(size);
  std::unique_ptr<UringDevice> dev(new UringDevice(path, fd, opened));
  E2_RETURN_NOT_OK(dev->InitRing(opened));
  return dev;
}

int UringDevice::FindFixedBuffer(const void* buf, uint32_t length) const {
  if (fixed_regions_.empty()) return -1;
  const uintptr_t start = reinterpret_cast<uintptr_t>(buf);
  // Regions are sorted by start: find the last region beginning at or
  // before `buf`, then check containment of the whole extent.
  auto it = std::upper_bound(
      fixed_regions_.begin(), fixed_regions_.end(), start,
      [](uintptr_t addr, const FixedRegion& r) { return addr < r.start; });
  if (it == fixed_regions_.begin()) return -1;
  --it;
  if (start + length <= it->start + it->length) return it->index;
  return -1;
}

Status UringDevice::RegisterBuffers(
    const std::vector<std::pair<void*, size_t>>& regions) {
  if (regions.empty() || regions.size() > 1024) {
    return Status::InvalidArgument("1..1024 buffer regions required");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (inflight_.load(std::memory_order_relaxed) != 0) {
    return Status::FailedPrecondition(
        "cannot register buffers with reads in flight");
  }
  if (!fixed_regions_.empty()) {
    return Status::FailedPrecondition("buffers already registered");
  }
  std::vector<iovec> iovs;
  iovs.reserve(regions.size());
  for (const auto& [ptr, len] : regions) {
    if (ptr == nullptr || len == 0) {
      return Status::InvalidArgument("null or empty buffer region");
    }
    iovs.push_back({ptr, len});
  }
  if (SysUringRegister(ring_->ring_fd, IORING_REGISTER_BUFFERS, iovs.data(),
                       static_cast<unsigned>(iovs.size())) != 0) {
    return Status::IoError(ErrnoString("IORING_REGISTER_BUFFERS", errno));
  }
  fixed_regions_.reserve(regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    fixed_regions_.push_back({reinterpret_cast<uintptr_t>(regions[i].first),
                              regions[i].second, static_cast<int>(i)});
  }
  std::sort(fixed_regions_.begin(), fixed_regions_.end(),
            [](const FixedRegion& a, const FixedRegion& b) {
              return a.start < b.start;
            });
  return Status::OK();
}

Status UringDevice::EnqueueSqeLocked(uint32_t slot_idx) {
  Ring& ring = *ring_;
  unsigned head = __atomic_load_n(ring.sq_head, __ATOMIC_ACQUIRE);
  if (ring.local_sq_tail - head >= ring.sq_entry_count) {
    // SQ full: push the batched entries at the kernel and re-check (in
    // SQPOLL mode the kernel thread drains on its own schedule).
    E2_RETURN_NOT_OK(FlushLocked());
    head = __atomic_load_n(ring.sq_head, __ATOMIC_ACQUIRE);
    if (ring.local_sq_tail - head >= ring.sq_entry_count) {
      return Status::ResourceExhausted("submission ring full");
    }
  }

  Slot& slot = slots_[slot_idx];
  io_uring_sqe& sqe = ring.sqes[ring.local_sq_tail & ring.sq_mask];
  std::memset(&sqe, 0, sizeof(sqe));
  if (slot.is_write) {
    sqe.opcode = IORING_OP_WRITE;
  } else {
    sqe.opcode = slot.fixed_index >= 0 ? IORING_OP_READ_FIXED : IORING_OP_READ;
  }
  if (fixed_file_) {
    sqe.fd = 0;  // index into the registered-file table
    sqe.flags = IOSQE_FIXED_FILE;
  } else {
    sqe.fd = fd_;
  }
  sqe.off = slot.offset + slot.done;
  sqe.addr = reinterpret_cast<uint64_t>(slot.buf + slot.done);
  sqe.len = slot.length - slot.done;
  if (slot.fixed_index >= 0) {
    sqe.buf_index = static_cast<uint16_t>(slot.fixed_index);
  }
  sqe.user_data = slot_idx;

  ++ring.local_sq_tail;
  __atomic_store_n(ring.sq_tail, ring.local_sq_tail, __ATOMIC_RELEASE);

  if (ring.sqpoll) {
    // The kernel thread picks the SQE up from the published tail; only a
    // parked thread needs an explicit wakeup.
    if ((__atomic_load_n(ring.sq_flags, __ATOMIC_RELAXED) &
         IORING_SQ_NEED_WAKEUP) != 0) {
      (void)SysUringEnter(ring.ring_fd, 0, 0, IORING_ENTER_SQ_WAKEUP);
    }
  } else {
    ++ring.to_submit;
  }
  return Status::OK();
}

Status UringDevice::FlushLocked() {
  Ring& ring = *ring_;
  while (ring.to_submit > 0) {
    const int r = SysUringEnter(ring.ring_fd, ring.to_submit, 0, 0);
    if (r >= 0) {
      ring.to_submit -= static_cast<unsigned>(r);
      if (r == 0) break;  // nothing consumed; avoid a spin
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EBUSY) {
      // Kernel temporarily out of resources; the entries stay queued in
      // the ring and the next flush retries.
      return Status::ResourceExhausted(ErrnoString("io_uring_enter", errno));
    }
    return Status::IoError(ErrnoString("io_uring_enter", errno));
  }
  return Status::OK();
}

Status UringDevice::SubmitRead(const IoRequest& req) {
  if (req.buf == nullptr || req.length == 0) {
    return Status::InvalidArgument("null buffer or zero length");
  }
  if (!RangeInCapacity(req.offset, req.length, capacity_)) {
    return Status::OutOfRange("read beyond device capacity");
  }
  if (direct_io_ &&
      (req.offset % align_ != 0 || req.length % align_ != 0 ||
       reinterpret_cast<uintptr_t>(req.buf) % align_ != 0)) {
    return Status::InvalidArgument(
        "direct I/O read requires " + std::to_string(align_) +
        "-byte-aligned offset/length/buffer (offset=" +
        std::to_string(req.offset) + " length=" + std::to_string(req.length) +
        ")");
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (free_slots_.empty()) {
    return Status::ResourceExhausted("device queue full");
  }
  const uint32_t slot_idx = free_slots_.back();
  Slot& slot = slots_[slot_idx];
  slot.user_data = req.user_data;
  slot.offset = req.offset;
  slot.length = req.length;
  slot.done = 0;
  slot.buf = static_cast<uint8_t*>(req.buf);
  slot.fixed_index = FindFixedBuffer(req.buf, req.length);
  // The slot may be recycled from a completed write: a stale is_write
  // would submit this read as IORING_OP_WRITE (clobbering the device with
  // the caller's buffer) and route its completion into the write path —
  // the caller would then wait forever and writes_pending_ would
  // underflow.
  slot.is_write = false;
  slot.submit_ns = util::NowNs();

  const Status st = EnqueueSqeLocked(slot_idx);
  if (!st.ok()) return st;  // slot was never claimed

  free_slots_.pop_back();
  inflight_.fetch_add(1, std::memory_order_relaxed);
  ++stats_.reads_submitted;
  if (slot.fixed_index >= 0) {
    fixed_buffer_reads_.fetch_add(1, std::memory_order_relaxed);
  }
  if (!ring_->sqpoll && ring_->to_submit >= submit_batch_) {
    (void)FlushLocked();  // deferred entries go out on the next flush
  }
  return Status::OK();
}

void UringDevice::ProcessRetriesLocked() {
  while (!retry_.empty()) {
    const uint32_t slot_idx = retry_.front();
    if (!EnqueueSqeLocked(slot_idx).ok()) return;  // ring full; retry later
    retry_.pop_front();
  }
}

size_t UringDevice::ProcessCqesLocked(IoCompletion* out, size_t max) {
  Ring& ring = *ring_;
  unsigned head = ring.local_cq_head;
  const unsigned tail = __atomic_load_n(ring.cq_tail, __ATOMIC_ACQUIRE);
  size_t n = 0;
  while (head != tail && n < max) {
    const io_uring_cqe& cqe = ring.cqes[head & ring.cq_mask];
    const uint32_t slot_idx = static_cast<uint32_t>(cqe.user_data);
    const int32_t res = cqe.res;
    ++head;
    Slot& slot = slots_[slot_idx];

    if (res == -EAGAIN || res == -EINTR) {
      retry_.push_back(slot_idx);
      continue;
    }
    if (slot.is_write) {
      // Write completions stay internal: account, resubmit short writes,
      // record the burst's first failure — never emitted to `out`.
      if (res < 0) {
        if (write_error_.ok()) {
          write_error_ = Status::IoError(
              ErrnoString("io_uring write", -res) + " at offset " +
              std::to_string(slot.offset));
        }
      } else if (res > 0 &&
                 (slot.done += static_cast<uint32_t>(res)) < slot.length) {
        retry_.push_back(slot_idx);  // genuine short write: resubmit rest
        continue;
      } else if (res == 0) {
        if (write_error_.ok()) {
          write_error_ = Status::IoError("io_uring wrote zero bytes at offset " +
                                         std::to_string(slot.offset));
        }
      } else {
        stats_.bytes_written += slot.length;
      }
      slot.is_write = false;  // freed slots must read as read slots
      free_slots_.push_back(slot_idx);
      --writes_pending_;
      continue;
    }
    StatusCode code = StatusCode::kOk;
    if (res < 0) {
      code = StatusCode::kIoError;
    } else {
      slot.done += static_cast<uint32_t>(res);
      if (slot.done < slot.length) {
        if (res == 0) {
          // Past the written extent within capacity: zero-fill, matching
          // FileDevice's sparse-read safeguard.
          std::memset(slot.buf + slot.done, 0, slot.length - slot.done);
        } else {
          retry_.push_back(slot_idx);  // genuine short read: resubmit rest
          continue;
        }
      }
    }

    out[n].user_data = slot.user_data;
    out[n].code = code;
    out[n].latency_ns = util::NowNs() - slot.submit_ns;
    ++stats_.reads_completed;
    stats_.bytes_read += slot.length;
    stats_.read_latency.Add(out[n].latency_ns);
    ++n;
    free_slots_.push_back(slot_idx);
    inflight_.fetch_sub(1, std::memory_order_relaxed);
  }
  ring.local_cq_head = head;
  __atomic_store_n(ring.cq_head, head, __ATOMIC_RELEASE);
  return n;
}

size_t UringDevice::PollCompletions(IoCompletion* out, size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  // Read completions a WriteBatch harvested while draining its writes
  // replay first, in arrival order.
  size_t n = 0;
  while (!parked_.empty() && n < max) {
    out[n++] = parked_.front();
    parked_.pop_front();
  }
  ProcessRetriesLocked();
  (void)FlushLocked();
  n += ProcessCqesLocked(out + n, max - n);
  // Short-read/EAGAIN resubmissions must not wait for the caller's next
  // submit: push them out now or the affected reads would stall.
  ProcessRetriesLocked();
  if (!ring_->sqpoll && ring_->to_submit > 0) (void)FlushLocked();
  return n;
}

Status UringDevice::Write(uint64_t offset, const void* data, uint32_t length) {
  const WriteOp op{offset, data, length};
  return WriteBatch(&op, 1);
}

Status UringDevice::WriteBatch(const WriteOp* ops, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    if (ops[i].data == nullptr || ops[i].length == 0) {
      return Status::InvalidArgument("null buffer or zero length");
    }
    if (!RangeInCapacity(ops[i].offset, ops[i].length, capacity_)) {
      return Status::OutOfRange("write beyond device capacity");
    }
    if (direct_io_ &&
        (ops[i].offset % align_ != 0 || ops[i].length % align_ != 0 ||
         reinterpret_cast<uintptr_t>(ops[i].data) % align_ != 0)) {
      return Status::InvalidArgument(
          "direct I/O write requires " + std::to_string(align_) +
          "-byte-aligned offset/length/buffer (offset=" +
          std::to_string(ops[i].offset) +
          " length=" + std::to_string(ops[i].length) + ")");
    }
  }

  // The whole burst runs under mu_: SQEs batch into one io_uring_enter,
  // and the wait loop drains the shared CQ ring, parking any read
  // completions that surface for the next PollCompletions.
  std::lock_guard<std::mutex> lock(mu_);
  write_error_ = Status::OK();
  Status submit_error;
  size_t next = 0;
  while (next < count || writes_pending_ > 0) {
    if (next < count && !free_slots_.empty() && submit_error.ok() &&
        write_error_.ok()) {
      const uint32_t slot_idx = free_slots_.back();
      Slot& slot = slots_[slot_idx];
      slot.user_data = 0;
      slot.offset = ops[next].offset;
      slot.length = ops[next].length;
      slot.done = 0;
      slot.buf = static_cast<uint8_t*>(
          const_cast<void*>(ops[next].data));  // written, never modified
      slot.fixed_index = -1;
      slot.is_write = true;
      slot.submit_ns = util::NowNs();
      const Status st = EnqueueSqeLocked(slot_idx);
      if (st.ok()) {
        free_slots_.pop_back();
        ++writes_pending_;
        ++next;
        continue;
      }
      slot.is_write = false;  // slot was never claimed
      if (st.code() != StatusCode::kResourceExhausted) {
        submit_error = st;  // stop submitting; drain what's in flight
      }
      // ResourceExhausted: SQ full — fall through and drain.
    }
    if (!submit_error.ok() || !write_error_.ok()) next = count;
    (void)FlushLocked();
    IoCompletion parked[64];
    const size_t n = ProcessCqesLocked(parked, 64);
    for (size_t i = 0; i < n; ++i) parked_.push_back(parked[i]);
    ProcessRetriesLocked();
    // A retry enqueued above is only published, not submitted: blocking
    // before flushing it would wait on a completion the kernel was never
    // asked to produce.
    if (!ring_->sqpoll && ring_->to_submit > 0) (void)FlushLocked();
    if (n == 0 && (writes_pending_ > 0 || free_slots_.empty())) {
      // Nothing surfaced but something is in flight (a write of ours, or
      // the reads hogging every slot): block for at least one CQE
      // instead of spinning.
      (void)SysUringEnter(ring_->ring_fd, 0, 1, IORING_ENTER_GETEVENTS);
    }
  }
  if (!submit_error.ok()) return submit_error;
  return write_error_;
}

Result<std::unique_ptr<BlockDevice>> UringDevice::CreateQueue(
    const QueueOptions& options) {
  if (ring_ == nullptr) {
    return Status::FailedPrecondition("device has no ring");
  }
  // Each queue gets its own fd so registered-file and fixed-buffer tables
  // stay per-queue; the dup shares the open file description, so offsets
  // written through the parent are immediately visible to queue reads.
  const int qfd = ::dup(fd_);
  if (qfd < 0) {
    return Status::IoError(ErrnoString("dup", errno));
  }
  Options opt;
  opt.capacity = capacity_;
  opt.queue_capacity = std::max(1u, options.queue_capacity);
  opt.sq_entries = std::min(256u, std::max(8u, opt.queue_capacity));
  opt.submit_batch = submit_batch_;
  opt.direct_io = direct_io_;
  opt.sqpoll = sqpoll_requested_;
  opt.sqpoll_idle_ms = sqpoll_idle_ms_;
  const uint32_t id = static_cast<uint32_t>(queue_registry_.size());
  std::unique_ptr<UringDevice> queue(
      new UringDevice(path_ + " nq" + std::to_string(id), qfd, opt));
  E2_RETURN_NOT_OK(queue->InitRing(opt));  // failure: dtor closes qfd
  queue->parent_ = this;
  queue_registry_.Add(queue.get());
  return std::unique_ptr<BlockDevice>(std::move(queue));
}

std::string UringDevice::name() const {
  std::string n = "uring:" + path_;
  if (sqpoll_active_) n += " (sqpoll)";
  return n;
}

DeviceStats UringDevice::stats() const {
  DeviceStats out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = stats_;
  }
  queue_registry_.MergeStats(&out);
  return out;
}

void UringDevice::ResetStats() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DeviceStats{};
  }
  queue_registry_.ResetAll();
}

#else  // !E2LSHOS_HAVE_LIBURING

// Graceful stub: the header set is absent at configure time. The class
// still links so callers can probe Available() and fall back.

struct UringDevice::Ring {};

namespace {
Status NotCompiledIn() {
  return Status::Unimplemented(
      "UringDevice was not compiled in (io_uring headers unavailable at "
      "configure time; E2LSHOS_HAVE_LIBURING is off)");
}
}  // namespace

bool UringDevice::Available() { return false; }

UringDevice::UringDevice(std::string path, int fd, const Options& options)
    : path_(std::move(path)),
      fd_(fd),
      capacity_(options.capacity),
      queue_capacity_(options.queue_capacity),
      direct_io_(options.direct_io) {}

UringDevice::~UringDevice() {
  if (fd_ >= 0) ::close(fd_);
}

Status UringDevice::InitRing(const Options&) { return NotCompiledIn(); }

Result<std::unique_ptr<UringDevice>> UringDevice::Create(const std::string&,
                                                         const Options&) {
  return NotCompiledIn();
}

Result<std::unique_ptr<UringDevice>> UringDevice::Open(const std::string&,
                                                       const Options&) {
  return NotCompiledIn();
}

Status UringDevice::SubmitRead(const IoRequest&) { return NotCompiledIn(); }

size_t UringDevice::PollCompletions(IoCompletion*, size_t) { return 0; }

Status UringDevice::Write(uint64_t, const void*, uint32_t) {
  return NotCompiledIn();
}

Status UringDevice::WriteBatch(const WriteOp*, size_t) {
  return NotCompiledIn();
}

Status UringDevice::RegisterBuffers(
    const std::vector<std::pair<void*, size_t>>&) {
  return NotCompiledIn();
}

Result<std::unique_ptr<BlockDevice>> UringDevice::CreateQueue(
    const QueueOptions&) {
  return NotCompiledIn();
}

Status UringDevice::EnqueueSqeLocked(uint32_t) { return NotCompiledIn(); }
Status UringDevice::FlushLocked() { return NotCompiledIn(); }
void UringDevice::ProcessRetriesLocked() {}
size_t UringDevice::ProcessCqesLocked(IoCompletion*, size_t) { return 0; }
int UringDevice::FindFixedBuffer(const void*, uint32_t) const { return -1; }

std::string UringDevice::name() const { return "uring:" + path_ + " (stub)"; }

DeviceStats UringDevice::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void UringDevice::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = DeviceStats{};
}

#endif  // E2LSHOS_HAVE_LIBURING

}  // namespace e2lshos::storage
