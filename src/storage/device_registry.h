// Device models calibrated to the paper's Table 2 and the configuration
// matrix of Table 5.
//
//   Table 2 (measured random-read kIOPS at 512 B):
//     device   QD=1     QD=128
//     cSSD       7.2       273
//     eSSD      27.6     1,400
//     XLFDD    132.3     3,860
//     HDD       0.21      0.54
//
// Calibration: service_time = 1 / IOPS(QD=1);
//              parallel_units = round(IOPS(QD=128) * service_time).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/simulated_device.h"

namespace e2lshos::storage {

/// \brief Named device models from Table 2.
enum class DeviceKind { kCssd, kEssd, kXlfdd, kHdd };

/// Return the calibrated model for a device kind.
DeviceModel GetDeviceModel(DeviceKind kind);

/// All Table 2 device kinds with display names.
std::vector<std::pair<DeviceKind, std::string>> AllDeviceKinds();

/// Instantiate a simulated device of the given kind.
Result<std::unique_ptr<SimulatedDevice>> MakeDevice(DeviceKind kind);

/// \brief One row of Table 5: a device type and count.
struct StorageConfig {
  DeviceKind kind;
  uint32_t count;
  std::string DisplayName() const;
};

/// The five storage configurations evaluated in Table 5.
std::vector<StorageConfig> Table5Configs();

}  // namespace e2lshos::storage
