// Tests for the network serving layer (net/wire.h, net/socket.h,
// net/daemon.h, net/client.h).
//
// The load-bearing claim is *remote parity*: SearchBatch through a
// net::Client against a net::Daemon must return bit-identical ids and
// distances to in-process Index::SearchBatch, across device URIs. The
// candidate cap is set high enough that draining never triggers, so the
// comparison is exact regardless of micro-batch boundaries or shard
// assignment. Around that: protocol-error containment (garbage frames
// close one connection, never the listener), multi-index routing,
// clean-drain shutdown with requests in flight, abrupt-disconnect
// robustness, and a 64-connection random-disconnect soak (run under
// TSan via the `concurrency` label).
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "api/index.h"
#include "data/generators.h"
#include "net/client.h"
#include "net/daemon.h"
#include "net/socket.h"
#include "net/wire.h"

namespace e2lshos {
namespace {

struct TestData {
  data::GeneratedData gen;
  lsh::E2lshConfig cfg;
};

TestData MakeData(uint64_t n = 2000, uint32_t dim = 16,
                  uint64_t num_queries = 20, uint64_t seed = 11) {
  TestData t;
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 8;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = seed;
  t.gen = data::Generate("net", n, num_queries, spec);
  t.cfg.rho = 0.25;
  t.cfg.s_factor = 1000.0;  // no draining: remote == local must be exact
  return t;
}

Result<std::unique_ptr<Index>> BuildIndex(const TestData& t,
                                          const std::string& uri) {
  IndexSpec spec;
  spec.lsh = t.cfg;
  spec.device_uri = uri;
  spec.device_capacity = 1ULL << 30;
  return Index::Build(spec, t.gen.base);
}

std::string SockPath(const std::string& tag) {
  return ::testing::TempDir() + "e2net_" + tag + "_" +
         std::to_string(::getpid()) + ".sock";
}

net::DaemonOptions UnixOptions(const std::string& sock) {
  net::DaemonOptions opts;
  opts.unix_path = sock;
  opts.serve.search.shards = 2;
  opts.serve.max_wait_us = 50;
  opts.serve.queue_capacity = 256;
  return opts;
}

void ExpectParity(const std::vector<net::WireQueryResult>& remote,
                  const std::vector<std::vector<util::Neighbor>>& local,
                  const std::string& tag) {
  ASSERT_EQ(remote.size(), local.size()) << tag;
  for (size_t q = 0; q < local.size(); ++q) {
    ASSERT_TRUE(remote[q].status.ok())
        << tag << " query " << q << ": " << remote[q].status.ToString();
    ASSERT_EQ(remote[q].neighbors.size(), local[q].size())
        << tag << " query " << q;
    for (size_t i = 0; i < local[q].size(); ++i) {
      EXPECT_EQ(remote[q].neighbors[i].id, local[q][i].id)
          << tag << " query " << q << " rank " << i;
      EXPECT_EQ(remote[q].neighbors[i].dist, local[q][i].dist)
          << tag << " query " << q << " rank " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

TEST(Wire, StatusCodesSurviveRoundTrip) {
  const Status statuses[] = {
      Status::OK(),
      Status::InvalidArgument("bad"),
      Status::OutOfRange("range"),
      Status::IoError("io"),
      Status::ResourceExhausted("full"),
      Status::FailedPrecondition("pre"),
      Status::NotFound("missing"),
      Status::Internal("bug"),
      Status::Unimplemented("todo"),
  };
  for (const Status& st : statuses) {
    net::Writer w;
    w.Begin(net::kResponseBit, 7);
    net::EncodeStatus(&w, st);
    const auto frame = w.Finish();
    net::Reader r(frame.data() + 4, frame.size() - 4);
    net::FrameHeader hdr;
    ASSERT_TRUE(r.Header(&hdr).ok());
    EXPECT_EQ(hdr.request_id, 7u);
    Status back = Status::OK();
    ASSERT_TRUE(net::DecodeStatus(&r, &back).ok());
    EXPECT_EQ(back.code(), st.code());
    if (!st.ok()) {
      EXPECT_EQ(back.message(), st.message());
    }
  }
}

TEST(Wire, FrameLengthValidation) {
  EXPECT_FALSE(net::ValidateFrameLength(0, 1024).ok());
  EXPECT_FALSE(net::ValidateFrameLength(net::kHeaderBytes - 1, 1024).ok());
  EXPECT_TRUE(net::ValidateFrameLength(net::kHeaderBytes, 1024).ok());
  EXPECT_TRUE(net::ValidateFrameLength(1024, 1024).ok());
  EXPECT_FALSE(net::ValidateFrameLength(1025, 1024).ok());
}

TEST(Wire, ReaderRejectsTruncationAndTrailingGarbage) {
  net::Writer w;
  w.Begin(static_cast<uint8_t>(net::MsgType::kPing), 1);
  w.U32(42);
  const auto frame = w.Finish();

  // Truncated: stop one byte short of the u32.
  net::Reader trunc(frame.data() + 4, frame.size() - 4 - 1);
  net::FrameHeader hdr;
  ASSERT_TRUE(trunc.Header(&hdr).ok());
  uint32_t v;
  EXPECT_FALSE(trunc.U32(&v).ok());

  // Trailing garbage: header consumed, u32 left over.
  net::Reader full(frame.data() + 4, frame.size() - 4);
  ASSERT_TRUE(full.Header(&hdr).ok());
  EXPECT_FALSE(full.ExpectEnd().ok());
  ASSERT_TRUE(full.U32(&v).ok());
  EXPECT_EQ(v, 42u);
  EXPECT_TRUE(full.ExpectEnd().ok());
}

TEST(Wire, QueryResultRejectsLyingNeighborCount) {
  net::Writer w;
  w.Begin(net::kResponseBit, 1);
  w.U8(0);           // qcode OK
  w.U64(123);        // latency
  w.U32(1u << 30);   // nk far beyond the frame
  const auto frame = w.Finish();
  net::Reader r(frame.data() + 4, frame.size() - 4);
  net::FrameHeader hdr;
  ASSERT_TRUE(r.Header(&hdr).ok());
  net::WireQueryResult out;
  EXPECT_FALSE(net::DecodeQueryResult(&r, &out).ok());
}

// ---------------------------------------------------------------------------
// Endpoint / flag validation (strict range checks)
// ---------------------------------------------------------------------------

TEST(Endpoint, ParsesValidSpecs) {
  auto ux = net::ParseEndpoint("unix:/tmp/a.sock");
  ASSERT_TRUE(ux.ok());
  EXPECT_EQ(ux->kind, net::Endpoint::Kind::kUnix);
  EXPECT_EQ(ux->path, "/tmp/a.sock");

  auto tcp = net::ParseEndpoint("tcp:127.0.0.1:7070");
  ASSERT_TRUE(tcp.ok());
  EXPECT_EQ(tcp->kind, net::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp->host, "127.0.0.1");
  EXPECT_EQ(tcp->port, 7070);

  // Port 0 is only an ephemeral-listener request, never a connect target.
  EXPECT_FALSE(net::ParseEndpoint("tcp:127.0.0.1:0").ok());
  auto eph = net::ParseEndpoint("tcp:127.0.0.1:0", /*allow_port_zero=*/true);
  EXPECT_TRUE(eph.ok());
}

TEST(Endpoint, RejectsMalformedSpecs) {
  const char* bad[] = {
      "",                      // no scheme
      "unix:",                 // empty path
      "tcp:127.0.0.1",         // missing port
      "tcp::80",               // empty host
      "tcp:127.0.0.1:65536",   // above the u16 range
      "tcp:127.0.0.1:-1",      // sign rejected (no wrap into range)
      "tcp:127.0.0.1:80x",     // trailing garbage, not truncation
      "tcp:127.0.0.1: 80",     // whitespace rejected
      "tcp:127.0.0.1:99999999999999999999",  // overflow, not saturation
      "http:127.0.0.1:80",     // unknown scheme
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(net::ParseEndpoint(spec).ok()) << spec;
  }
  // A UNIX path must fit sockaddr_un with its terminator.
  EXPECT_FALSE(net::ValidateUnixPath(std::string(200, 'x')).ok());
  EXPECT_TRUE(net::ValidateUnixPath("/tmp/short.sock").ok());
}

// ---------------------------------------------------------------------------
// Daemon lifecycle misuse
// ---------------------------------------------------------------------------

TEST(Daemon, LifecycleValidation) {
  const TestData t = MakeData(300, 8, 4);
  net::Daemon empty(UnixOptions(SockPath("lifecycle_empty")));
  EXPECT_EQ(empty.Start().code(), StatusCode::kFailedPrecondition);

  net::Daemon daemon(UnixOptions(SockPath("lifecycle")));
  EXPECT_EQ(daemon.AddIndex("", nullptr).code(), StatusCode::kInvalidArgument);
  auto a = BuildIndex(t, "mem:");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(daemon.AddIndex("a", std::move(*a)).ok());
  auto b = BuildIndex(t, "mem:");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(daemon.AddIndex("a", std::move(*b)).code(),
            StatusCode::kInvalidArgument);  // duplicate name
  ASSERT_TRUE(daemon.Start().ok());
  EXPECT_EQ(daemon.Start().code(), StatusCode::kFailedPrecondition);
  auto c = BuildIndex(t, "mem:");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(daemon.AddIndex("c", std::move(*c)).code(),
            StatusCode::kFailedPrecondition);  // after Start
  daemon.RequestStop();
  daemon.Wait();
}

// ---------------------------------------------------------------------------
// Remote parity: the tentpole claim
// ---------------------------------------------------------------------------

TEST(Daemon, RemoteParityAcrossDeviceUris) {
  const TestData t = MakeData();
  const uint32_t k = 10;
  const std::string image = ::testing::TempDir() + "e2net_parity_image.bin";
  const std::string uris[] = {"mem:", "sim:cssd*4", "file:" + image};

  for (const std::string& uri : uris) {
    auto index = BuildIndex(t, uri);
    ASSERT_TRUE(index.ok()) << uri << ": " << index.status().ToString();

    // In-process answers first; Serve() takes the engine after this.
    auto local = (*index)->SearchBatch(t.gen.queries, k);
    ASSERT_TRUE(local.ok()) << uri << ": " << local.status().ToString();

    const std::string sock = SockPath("parity");
    net::Daemon daemon(UnixOptions(sock));
    ASSERT_TRUE(daemon.AddIndex("default", std::move(*index)).ok());
    ASSERT_TRUE(daemon.Start().ok()) << uri;

    auto client = net::Client::Connect("unix:" + sock);
    ASSERT_TRUE(client.ok()) << uri << ": " << client.status().ToString();
    ASSERT_TRUE((*client)->Ping().ok());

    const uint32_t count = static_cast<uint32_t>(t.gen.queries.n());
    auto remote = (*client)->SearchBatch("default", t.gen.queries.Row(0),
                                         count, t.gen.queries.dim(), k);
    ASSERT_TRUE(remote.ok()) << uri << ": " << remote.status().ToString();
    ExpectParity(*remote, local->results, uri);

    // Single-query path and the nowait admission path agree too.
    auto one = (*client)->Search("default", t.gen.queries.Row(0),
                                 t.gen.queries.dim(), k);
    ASSERT_TRUE(one.ok()) << uri;
    ExpectParity({*one}, {local->results[0]}, uri + " single");
    auto nowait = (*client)->Search("default", t.gen.queries.Row(1),
                                    t.gen.queries.dim(), k, /*nowait=*/true);
    ASSERT_TRUE(nowait.ok()) << uri;
    ExpectParity({*nowait}, {local->results[1]}, uri + " nowait");

    // Stats reflect the served traffic, captured without tearing.
    auto stats = (*client)->Stats("default");
    ASSERT_TRUE(stats.ok()) << uri;
    EXPECT_GE(stats->completed, static_cast<uint64_t>(count) + 2) << uri;
    EXPECT_EQ(stats->failed, 0u) << uri;
    EXPECT_GT(stats->p50_ns, 0u) << uri;

    daemon.RequestStop();
    daemon.Wait();
    EXPECT_EQ(daemon.connections(), 0u) << uri;
  }
  std::remove(image.c_str());
}

TEST(Daemon, TcpEphemeralPortRoundTrip) {
  const TestData t = MakeData(800, 12, 8);
  const uint32_t k = 5;
  auto index = BuildIndex(t, "mem:");
  ASSERT_TRUE(index.ok());
  auto local = (*index)->SearchBatch(t.gen.queries, k);
  ASSERT_TRUE(local.ok());

  net::DaemonOptions opts;
  opts.tcp_port = 0;  // ephemeral
  opts.serve.search.shards = 2;
  net::Daemon daemon(opts);
  ASSERT_TRUE(daemon.AddIndex("default", std::move(*index)).ok());
  ASSERT_TRUE(daemon.Start().ok());
  ASSERT_GT(daemon.tcp_port(), 0);

  auto client = net::Client::Connect("tcp:127.0.0.1:" +
                                     std::to_string(daemon.tcp_port()));
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  ASSERT_TRUE((*client)->Ping().ok());
  const uint32_t count = static_cast<uint32_t>(t.gen.queries.n());
  auto remote = (*client)->SearchBatch("default", t.gen.queries.Row(0), count,
                                       t.gen.queries.dim(), k);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  ExpectParity(*remote, local->results, "tcp");
}

// ---------------------------------------------------------------------------
// Multi-index routing + per-index configuration
// ---------------------------------------------------------------------------

TEST(Daemon, MultiIndexRoutingAndConfigure) {
  const TestData ta = MakeData(1000, 16, 8, /*seed=*/21);
  const TestData tb = MakeData(1000, 24, 8, /*seed=*/22);
  auto ia = BuildIndex(ta, "mem:");
  auto ib = BuildIndex(tb, "mem:");
  ASSERT_TRUE(ia.ok());
  ASSERT_TRUE(ib.ok());
  auto la = (*ia)->SearchBatch(ta.gen.queries, 10);
  auto lb = (*ib)->SearchBatch(tb.gen.queries, 10);
  ASSERT_TRUE(la.ok());
  ASSERT_TRUE(lb.ok());

  const std::string sock = SockPath("multi");
  net::Daemon daemon(UnixOptions(sock));
  ASSERT_TRUE(daemon.AddIndex("alpha", std::move(*ia)).ok());
  ASSERT_TRUE(daemon.AddIndex("beta", std::move(*ib)).ok());
  ASSERT_TRUE(daemon.Start().ok());

  auto client = net::Client::Connect("unix:" + sock);
  ASSERT_TRUE(client.ok());

  // Each name answers from its own index (different dims prove routing).
  auto ra = (*client)->SearchBatch(
      "alpha", ta.gen.queries.Row(0),
      static_cast<uint32_t>(ta.gen.queries.n()), ta.gen.queries.dim(), 10);
  ASSERT_TRUE(ra.ok()) << ra.status().ToString();
  ExpectParity(*ra, la->results, "alpha");
  auto rb = (*client)->SearchBatch(
      "beta", tb.gen.queries.Row(0),
      static_cast<uint32_t>(tb.gen.queries.n()), tb.gen.queries.dim(), 10);
  ASSERT_TRUE(rb.ok()) << rb.status().ToString();
  ExpectParity(*rb, lb->results, "beta");

  // Semantic errors answer on the wire without closing the connection.
  EXPECT_EQ((*client)
                ->Search("gamma", ta.gen.queries.Row(0),
                         ta.gen.queries.dim(), 10)
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*client)
                ->Search("beta", ta.gen.queries.Row(0),
                         ta.gen.queries.dim() /* != beta's 24 */, 10)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*client)->Configure("gamma", 5).code(), StatusCode::kNotFound);
  EXPECT_EQ((*client)->Configure("alpha", 0).code(),
            StatusCode::kInvalidArgument);

  // Configure sets the k applied when a Search carries k == 0 — and only
  // for the named index.
  ASSERT_TRUE((*client)->Configure("alpha", 3).ok());
  auto k0 = (*client)->Search("alpha", ta.gen.queries.Row(0),
                              ta.gen.queries.dim(), /*k=*/0);
  ASSERT_TRUE(k0.ok());
  EXPECT_EQ(k0->neighbors.size(), 3u);
  auto beta_k0 = (*client)->Search("beta", tb.gen.queries.Row(0),
                                   tb.gen.queries.dim(), /*k=*/0);
  ASSERT_TRUE(beta_k0.ok());
  EXPECT_EQ(beta_k0->neighbors.size(), 10u);  // untouched default

  // The connection survived every error above.
  EXPECT_TRUE((*client)->Ping().ok());
}

// ---------------------------------------------------------------------------
// Protocol-error containment
// ---------------------------------------------------------------------------

/// Read one frame (length prefix + payload) from a raw socket.
Status ReadFrame(int fd, std::vector<uint8_t>* payload) {
  uint8_t lenbuf[4];
  E2_RETURN_NOT_OK(net::ReadFull(fd, lenbuf, sizeof(lenbuf)));
  const uint32_t len = static_cast<uint32_t>(lenbuf[0]) |
                       (static_cast<uint32_t>(lenbuf[1]) << 8) |
                       (static_cast<uint32_t>(lenbuf[2]) << 16) |
                       (static_cast<uint32_t>(lenbuf[3]) << 24);
  E2_RETURN_NOT_OK(net::ValidateFrameLength(len, net::kDefaultMaxFrameBytes));
  payload->resize(len);
  return net::ReadFull(fd, payload->data(), len);
}

/// Expect a kProtocolError response followed by EOF (connection closed).
void ExpectProtocolErrorThenClose(int fd) {
  std::vector<uint8_t> payload;
  ASSERT_TRUE(ReadFrame(fd, &payload).ok());
  net::Reader r(payload.data(), payload.size());
  net::FrameHeader hdr;
  ASSERT_TRUE(r.Header(&hdr).ok());
  EXPECT_NE(hdr.type & net::kResponseBit, 0);
  uint8_t code;
  ASSERT_TRUE(r.U8(&code).ok());
  EXPECT_EQ(code, static_cast<uint8_t>(net::WireCode::kProtocolError));
  // Then EOF: the daemon closed this connection.
  uint8_t b;
  bool eof = false;
  ASSERT_TRUE(net::ReadFull(fd, &b, 1, &eof).ok());
  EXPECT_TRUE(eof);
}

TEST(Daemon, MalformedFramesCloseOneConnectionNotTheListener) {
  const TestData t = MakeData(300, 8, 4);
  auto index = BuildIndex(t, "mem:");
  ASSERT_TRUE(index.ok());
  const std::string sock = SockPath("garbage");
  net::Daemon daemon(UnixOptions(sock));
  ASSERT_TRUE(daemon.AddIndex("default", std::move(*index)).ok());
  ASSERT_TRUE(daemon.Start().ok());
  auto ep = net::ParseEndpoint("unix:" + sock);
  ASSERT_TRUE(ep.ok());

  {  // Length prefix 0: below the header floor.
    auto fd = net::Connect(*ep);
    ASSERT_TRUE(fd.ok());
    const uint8_t zeros[4] = {0, 0, 0, 0};
    ASSERT_TRUE(net::WriteFull(*fd, zeros, sizeof(zeros)).ok());
    ExpectProtocolErrorThenClose(*fd);
    net::CloseFd(*fd);
  }
  {  // Oversized length prefix: rejected before any allocation.
    auto fd = net::Connect(*ep);
    ASSERT_TRUE(fd.ok());
    const uint32_t huge = net::kDefaultMaxFrameBytes + 1;
    uint8_t lenbuf[4];
    for (int i = 0; i < 4; ++i) lenbuf[i] = static_cast<uint8_t>(huge >> (8 * i));
    ASSERT_TRUE(net::WriteFull(*fd, lenbuf, sizeof(lenbuf)).ok());
    ExpectProtocolErrorThenClose(*fd);
    net::CloseFd(*fd);
  }
  {  // Bad magic.
    auto fd = net::Connect(*ep);
    ASSERT_TRUE(fd.ok());
    net::Writer w;
    w.Begin(static_cast<uint8_t>(net::MsgType::kPing), 1);
    auto frame = w.Finish();
    frame[4] ^= 0xFF;  // corrupt the magic
    ASSERT_TRUE(net::WriteFull(*fd, frame.data(), frame.size()).ok());
    ExpectProtocolErrorThenClose(*fd);
    net::CloseFd(*fd);
  }
  {  // Unknown message type.
    auto fd = net::Connect(*ep);
    ASSERT_TRUE(fd.ok());
    net::Writer w;
    w.Begin(0x7F, 1);
    const auto frame = w.Finish();
    ASSERT_TRUE(net::WriteFull(*fd, frame.data(), frame.size()).ok());
    ExpectProtocolErrorThenClose(*fd);
    net::CloseFd(*fd);
  }
  {  // Truncated Search body (name promised, bytes missing).
    auto fd = net::Connect(*ep);
    ASSERT_TRUE(fd.ok());
    net::Writer w;
    w.Begin(static_cast<uint8_t>(net::MsgType::kSearch), 1);
    w.U16(500);  // string length with no bytes behind it
    const auto frame = w.Finish();
    ASSERT_TRUE(net::WriteFull(*fd, frame.data(), frame.size()).ok());
    ExpectProtocolErrorThenClose(*fd);
    net::CloseFd(*fd);
  }
  {  // Trailing garbage after a well-formed Ping body.
    auto fd = net::Connect(*ep);
    ASSERT_TRUE(fd.ok());
    net::Writer w;
    w.Begin(static_cast<uint8_t>(net::MsgType::kPing), 1);
    w.U32(0xDEAD);
    const auto frame = w.Finish();
    ASSERT_TRUE(net::WriteFull(*fd, frame.data(), frame.size()).ok());
    ExpectProtocolErrorThenClose(*fd);
    net::CloseFd(*fd);
  }

  // After all of that the listener still accepts and serves.
  auto client = net::Client::Connect("unix:" + sock);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());
  auto result = (*client)->Search("default", t.gen.queries.Row(0),
                                  t.gen.queries.dim(), 3);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

// ---------------------------------------------------------------------------
// Abrupt disconnect + shutdown drain
// ---------------------------------------------------------------------------

TEST(Daemon, AbruptDisconnectWithQueriesInFlight) {
  const TestData t = MakeData(1500, 16, 16);
  auto index = BuildIndex(t, "sim:cssd");
  ASSERT_TRUE(index.ok());
  const std::string sock = SockPath("abrupt");
  net::Daemon daemon(UnixOptions(sock));
  ASSERT_TRUE(daemon.AddIndex("default", std::move(*index)).ok());
  ASSERT_TRUE(daemon.Start().ok());
  auto ep = net::ParseEndpoint("unix:" + sock);
  ASSERT_TRUE(ep.ok());

  // Fire SearchBatch frames and slam the connection shut without ever
  // reading a response: the handler's results are dropped on the floor,
  // and no shard worker may wedge on it.
  for (int round = 0; round < 8; ++round) {
    auto fd = net::Connect(*ep);
    ASSERT_TRUE(fd.ok());
    net::Writer w;
    w.Begin(static_cast<uint8_t>(net::MsgType::kSearchBatch), 1);
    w.Str("default");
    w.U32(5);  // k
    w.U32(0);  // flags
    w.U32(static_cast<uint32_t>(t.gen.queries.n()));
    w.U32(t.gen.queries.dim());
    w.Raw(t.gen.queries.Row(0),
          t.gen.queries.n() * t.gen.queries.dim() * sizeof(float));
    const auto frame = w.Finish();
    ASSERT_TRUE(net::WriteFull(*fd, frame.data(), frame.size()).ok());
    net::CloseFd(*fd);  // gone before the response exists
  }

  // The daemon still serves new clients correctly afterwards.
  auto client = net::Client::Connect("unix:" + sock);
  ASSERT_TRUE(client.ok());
  auto result = (*client)->Search("default", t.gen.queries.Row(0),
                                  t.gen.queries.dim(), 5);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->neighbors.size(), 5u);

  // And shuts down cleanly with those dropped results behind it.
  daemon.RequestStop();
  daemon.Wait();
}

TEST(Daemon, ShutdownDrainsInFlightRequests) {
  const TestData t = MakeData(1500, 16, 32);
  auto index = BuildIndex(t, "sim:cssd");
  ASSERT_TRUE(index.ok());
  auto local = (*index)->SearchBatch(t.gen.queries, 10);
  ASSERT_TRUE(local.ok());

  const std::string sock = SockPath("drain");
  net::Daemon daemon(UnixOptions(sock));
  ASSERT_TRUE(daemon.AddIndex("default", std::move(*index)).ok());
  ASSERT_TRUE(daemon.Start().ok());

  // A client mid-batch when the stop lands must still get its complete,
  // correct response: that is the drain guarantee.
  std::atomic<bool> ok{false};
  std::thread requester([&] {
    auto client = net::Client::Connect("unix:" + sock);
    ASSERT_TRUE(client.ok());
    for (int round = 0; round < 20; ++round) {
      auto remote = (*client)->SearchBatch(
          "default", t.gen.queries.Row(0),
          static_cast<uint32_t>(t.gen.queries.n()), t.gen.queries.dim(), 10);
      if (!remote.ok()) return;  // raced past the drain window: fine
      ExpectParity(*remote, local->results, "drain round");
    }
    ok.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  daemon.RequestStop();
  daemon.Wait();  // returns only after the in-flight response was written
  requester.join();
  // Whether the requester finished all rounds or was cut off at a frame
  // boundary, every response it did receive was complete and correct
  // (ExpectParity above); reaching here without a wedge is the drain.
  EXPECT_EQ(daemon.connections(), 0u);
}

// ---------------------------------------------------------------------------
// Soak: 64 concurrent connections with random disconnects (TSan-covered
// via the `concurrency` ctest label)
// ---------------------------------------------------------------------------

TEST(DaemonSoak, ConcurrentConnectionsWithRandomDisconnects) {
  const TestData t = MakeData(1200, 12, 8);
  auto index = BuildIndex(t, "mem:");
  ASSERT_TRUE(index.ok());
  const std::string sock = SockPath("soak");
  net::DaemonOptions opts = UnixOptions(sock);
  opts.serve.queue_capacity = 64;  // small: exercise real backpressure
  net::Daemon daemon(opts);
  ASSERT_TRUE(daemon.AddIndex("default", std::move(*index)).ok());
  ASSERT_TRUE(daemon.Start().ok());
  auto ep = net::ParseEndpoint("unix:" + sock);
  ASSERT_TRUE(ep.ok());

  constexpr int kThreads = 64;
  constexpr int kOpsPerThread = 12;
  std::atomic<uint64_t> ok_ops{0};
  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int ti = 0; ti < kThreads; ++ti) {
    threads.emplace_back([&, ti] {
      std::mt19937 rng(1234 + ti);
      for (int op = 0; op < kOpsPerThread; ++op) {
        switch (rng() % 6) {
          case 0: {  // full client round trip
            auto client = net::Client::Connect("unix:" + sock);
            if (!client.ok()) {
              failures.fetch_add(1);
              break;
            }
            auto r = (*client)->Search(
                "default", t.gen.queries.Row(rng() % t.gen.queries.n()),
                t.gen.queries.dim(), 5, /*nowait=*/(rng() % 2) == 0);
            // nowait may surface ResourceExhausted under this load —
            // that is the admission control working, not a failure.
            if (r.ok() || r.status().code() == StatusCode::kResourceExhausted) {
              ok_ops.fetch_add(1);
            } else {
              failures.fetch_add(1);
            }
            break;
          }
          case 1: {  // batch round trip
            auto client = net::Client::Connect("unix:" + sock);
            if (!client.ok()) {
              failures.fetch_add(1);
              break;
            }
            auto r = (*client)->SearchBatch(
                "default", t.gen.queries.Row(0),
                static_cast<uint32_t>(t.gen.queries.n()),
                t.gen.queries.dim(), 5);
            if (r.ok()) {
              ok_ops.fetch_add(1);
            } else {
              failures.fetch_add(1);
            }
            break;
          }
          case 2: {  // stats while everyone else is searching
            auto client = net::Client::Connect("unix:" + sock);
            if (!client.ok()) {
              failures.fetch_add(1);
              break;
            }
            auto s = (*client)->Stats("default");
            if (s.ok() && s->failed == 0) {
              ok_ops.fetch_add(1);
            } else {
              failures.fetch_add(1);
            }
            break;
          }
          case 3: {  // abrupt disconnect with a request in flight
            auto fd = net::Connect(*ep);
            if (!fd.ok()) {
              failures.fetch_add(1);
              break;
            }
            net::Writer w;
            w.Begin(static_cast<uint8_t>(net::MsgType::kSearchBatch),
                    rng());
            w.Str("default");
            w.U32(5);
            w.U32(0);
            w.U32(static_cast<uint32_t>(t.gen.queries.n()));
            w.U32(t.gen.queries.dim());
            w.Raw(t.gen.queries.Row(0),
                  t.gen.queries.n() * t.gen.queries.dim() * sizeof(float));
            const auto frame = w.Finish();
            net::WriteFull(*fd, frame.data(), frame.size());
            net::CloseFd(*fd);  // never reads the response
            ok_ops.fetch_add(1);
            break;
          }
          case 4: {  // disconnect mid-frame (dies inside the length)
            auto fd = net::Connect(*ep);
            if (!fd.ok()) {
              failures.fetch_add(1);
              break;
            }
            const uint8_t partial[2] = {0x40, 0x00};
            net::WriteFull(*fd, partial, sizeof(partial));
            net::CloseFd(*fd);
            ok_ops.fetch_add(1);
            break;
          }
          default: {  // ping
            auto client = net::Client::Connect("unix:" + sock);
            if (client.ok() && (*client)->Ping().ok()) {
              ok_ops.fetch_add(1);
            } else {
              failures.fetch_add(1);
            }
            break;
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(ok_ops.load(), 0u);

  // The daemon survived the storm and still answers...
  auto client = net::Client::Connect("unix:" + sock);
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Ping().ok());
  auto stats = (*client)->Stats("default");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->failed, 0u);

  // ...and still shuts down clean.
  daemon.RequestStop();
  daemon.Wait();
  EXPECT_EQ(daemon.connections(), 0u);
}

}  // namespace
}  // namespace e2lshos
