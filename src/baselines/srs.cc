#include "baselines/srs.h"

#include <cmath>

#include "util/clock.h"
#include "util/distance.h"
#include "util/mathutil.h"
#include "util/rng.h"

namespace e2lshos::baselines {

Result<std::unique_ptr<Srs>> Srs::Build(const data::Dataset& base,
                                        const SrsConfig& config) {
  if (base.n() == 0) return Status::InvalidArgument("empty dataset");
  if (config.proj_dim == 0) return Status::InvalidArgument("proj_dim must be > 0");
  if (config.c <= 1.0) return Status::InvalidArgument("c must be > 1");

  auto srs = std::make_unique<Srs>();
  srs->base_ = &base;
  srs->config_ = config;
  if (srs->config_.max_verify == 0) {
    srs->config_.max_verify = std::max<uint64_t>(100, base.n() / 20);
  }

  util::Rng rng(config.seed);
  const uint32_t d = base.dim();
  const uint32_t m = config.proj_dim;
  srs->proj_matrix_.resize(static_cast<size_t>(m) * d);
  for (auto& v : srs->proj_matrix_) v = static_cast<float>(rng.Gaussian());

  srs->projections_.resize(base.n() * m);
  for (uint64_t i = 0; i < base.n(); ++i) {
    srs->Project(base.Row(i), srs->projections_.data() + i * m);
  }

  E2_ASSIGN_OR_RETURN(srs->tree_,
                      RTree::Build(srs->projections_.data(), base.n(), m));
  return srs;
}

void Srs::Project(const float* src, float* dst) const {
  const uint32_t d = base_->dim();
  const uint32_t m = config_.proj_dim;
  for (uint32_t j = 0; j < m; ++j) {
    dst[j] = util::Dot(proj_matrix_.data() + static_cast<size_t>(j) * d, src, d);
  }
}

std::vector<util::Neighbor> Srs::Search(const float* query, uint32_t k,
                                        SrsStats* stats) const {
  const uint64_t start = util::NowNs();
  SrsStats local;
  const uint32_t d = base_->dim();
  const uint32_t m = config_.proj_dim;

  std::vector<float> qproj(m);
  Project(query, qproj.data());

  util::TopK topk(k);
  RTree::Iterator it = tree_.Iterate(qproj.data());

  uint32_t id = 0;
  float proj_dist2 = 0.f;
  while (local.points_verified < config_.max_verify && it.Next(&id, &proj_dist2)) {
    const float dist = std::sqrt(util::SquaredL2(base_->Row(id), query, d));
    topk.Push(id, dist);
    ++local.points_verified;

    // Early termination (SRS-12): if the projected frontier has moved far
    // enough that any unseen point with true distance < d_k / c would
    // almost surely have appeared already, d_k is a c-approximate answer.
    if (topk.full()) {
      const double dk = topk.WorstDist();
      if (dk > 1e-20) {
        const double threshold = dk / config_.c;
        const double ratio =
            static_cast<double>(proj_dist2) / (threshold * threshold);
        if (util::ChiSquaredCdf(ratio, m) >= config_.early_stop_confidence) {
          local.early_terminated = true;
          break;
        }
      }
    }
  }

  local.rtree_nodes_visited = it.nodes_visited();
  local.wall_ns = util::NowNs() - start;
  if (stats != nullptr) *stats = local;
  return topk.SortedResults();
}

Srs::BatchResult Srs::SearchBatch(const data::Dataset& queries, uint32_t k) const {
  BatchResult out;
  out.results.resize(queries.n());
  out.stats.resize(queries.n());
  const uint64_t start = util::NowNs();
  for (uint64_t q = 0; q < queries.n(); ++q) {
    out.results[q] = Search(queries.Row(q), k, &out.stats[q]);
  }
  out.wall_ns = util::NowNs() - start;
  return out;
}

uint64_t Srs::IndexMemoryBytes() const {
  return proj_matrix_.size() * sizeof(float) + projections_.size() * sizeof(float) +
         tree_.MemoryBytes();
}

}  // namespace e2lshos::baselines
