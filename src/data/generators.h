// Synthetic dataset generators approximating the paper's Table 1 corpus.
//
// E2LSH behaviour is governed by the dimension d and by dataset hardness
// (Relative Contrast / Local Intrinsic Dimensionality), not by the
// semantic content of the vectors. Three generator families cover the
// whole hardness range:
//
//   * Clustered: Gaussian mixture with tunable cluster count and spread —
//     models real corpora (SIFT, MSONG, GIST, GLOVE, MNIST, BIGANN);
//     fewer/larger clusters -> smaller RC -> harder.
//   * Uniform: i.i.d. U[0, scale]^d — the paper's RAND.
//   * Gaussian: single isotropic blob — the paper's GAUSS (hardest,
//     RC 1.14 / LID 147).
//
// Coordinates are scaled so that nearest-neighbor distances land inside
// the radius ladder R = 1, c, c^2, ... (see DatasetSpec::distance_scale).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace e2lshos::data {

enum class GeneratorKind { kClustered, kUniform, kGaussian };

/// \brief How query points are drawn relative to each other. Production
/// traffic is not i.i.d.: a few hot queries dominate (Zipf), or a hot
/// working set absorbs most of the load (hotspot). Skewed modes draw
/// from a fixed population of template points so repeats actually
/// repeat — the access pattern a DRAM cache layer exists to exploit.
enum class QueryDistribution {
  kIndependent,  ///< Every query is a fresh draw (the historical default).
  kZipf,         ///< Population ranks weighted 1/(rank+1)^theta.
  kHotspot,      ///< hotspot_weight of traffic on hotspot_fraction of points.
};

struct GeneratorSpec {
  GeneratorKind kind = GeneratorKind::kClustered;
  uint32_t dim = 128;
  uint32_t num_clusters = 200;   ///< Clustered only.
  double cluster_std = 1.0;      ///< Clustered: per-coordinate sigma.
  double center_spread = 10.0;   ///< Clustered: centers ~ U[0, spread]^d.
  double scale = 10.0;           ///< Uniform: U[0, scale); Gaussian: sigma.
  bool byte_quantize = false;    ///< Round to the 0..255 grid (re-scaled).
  uint64_t seed = 7;

  /// Query-side skew (base points are always independent draws).
  QueryDistribution query_dist = QueryDistribution::kIndependent;
  uint64_t query_population = 1024;  ///< Distinct points behind a skewed mode.
  double zipf_theta = 0.99;          ///< kZipf: 0 = uniform, 1 = classic Zipf.
  double hotspot_fraction = 0.1;     ///< kHotspot: hot share of the population.
  double hotspot_weight = 0.9;       ///< kHotspot: probability mass on it.
};

/// \brief Stateful one-point-at-a-time sampler: the single source of
/// truth for every generator family's per-point logic.
///
/// Generate() below and streaming sources (core::GeneratorStream) share
/// it, so a spec produces the same value distribution — including the
/// byte-quantization grid — whether the corpus is materialized up front
/// or synthesized on the fly. Not thread-safe; callers serialize.
class PointSampler {
 public:
  explicit PointSampler(const GeneratorSpec& spec);

  /// Fill one point (spec.dim floats), advancing the random stream.
  void Next(float* out);

  /// Fill one *query* point. kIndependent is exactly Next(); the skewed
  /// modes draw a rank from the query distribution and return the
  /// corresponding template point (materialized from the same family on
  /// first use, so repeated ranks repeat bit-exactly).
  void NextQuery(float* out);

  uint32_t dim() const { return spec_.dim; }

 private:
  void EnsurePopulation();
  uint64_t NextRank();

  const GeneratorSpec spec_;
  util::Rng rng_;
  std::vector<float> centers_;   ///< Clustered only.
  double quantize_range_ = 0.0;  ///< 0 = byte quantization off.
  std::vector<float> population_;  ///< Skewed modes: templates, rank-major.
  std::vector<double> zipf_cdf_;   ///< kZipf: cumulative rank weights.
};

/// Generate `n` database points plus `num_queries` query points drawn from
/// the same distribution.
struct GeneratedData {
  Dataset base;
  Dataset queries;
};

GeneratedData Generate(const std::string& name, uint64_t n, uint64_t num_queries,
                       const GeneratorSpec& spec);

}  // namespace e2lshos::data
