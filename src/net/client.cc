#include "net/client.h"

#include <chrono>
#include <cstring>
#include <thread>

namespace e2lshos::net {

Result<std::unique_ptr<Client>> Client::Connect(const std::string& endpoint,
                                                const ClientOptions& options) {
  if (options.max_frame_bytes < kHeaderBytes) {
    return Status::InvalidArgument("max_frame_bytes below the frame header");
  }
  E2_ASSIGN_OR_RETURN(Endpoint ep, ParseEndpoint(endpoint));
  E2_ASSIGN_OR_RETURN(const int fd, net::Connect(ep));
  std::unique_ptr<Client> client(new Client(fd, std::move(ep), options));
  const Status armed = client->ArmSocket(fd);
  if (!armed.ok()) return armed;
  return client;
}

Result<std::unique_ptr<Client>> Client::Connect(const std::string& endpoint,
                                                uint32_t max_frame_bytes) {
  ClientOptions options;
  options.max_frame_bytes = max_frame_bytes;
  return Connect(endpoint, options);
}

Client::~Client() { CloseFd(fd_); }

Status Client::ArmSocket(int fd) const {
  if (options_.recv_timeout_ms > 0) {
    E2_RETURN_NOT_OK(SetRecvTimeout(fd, options_.recv_timeout_ms));
  }
  return Status::OK();
}

Status Client::Reconnect() {
  CloseFd(fd_);
  fd_ = -1;
  E2_ASSIGN_OR_RETURN(const int fd, net::Connect(endpoint_));
  const Status armed = ArmSocket(fd);
  if (!armed.ok()) {
    CloseFd(fd);
    return armed;
  }
  fd_ = fd;
  ++reconnects_;
  return Status::OK();
}

Status Client::RoundTrip(const std::vector<uint8_t>& frame,
                         uint64_t request_id, std::vector<uint8_t>* payload,
                         size_t* body_offset) {
  Status last;
  for (uint32_t attempt = 0;; ++attempt) {
    if (fd_ < 0) {
      // A prior transport failure closed the socket; every further
      // attempt (including the first of a new logical request) must
      // re-establish it.
      const Status re = Reconnect();
      if (!re.ok()) {
        if (attempt >= options_.max_retries) return re;
        last = re;
        std::this_thread::sleep_for(std::chrono::milliseconds(
            static_cast<uint64_t>(options_.retry_backoff_ms) << attempt));
        continue;
      }
    }
    last = RoundTripOnce(frame, request_id, payload, body_offset);
    if (last.ok()) return last;
    const StatusCode code = last.code();
    const bool transport =
        code == StatusCode::kIoError || code == StatusCode::kDeadlineExceeded;
    if (transport) {
      // Stream position unknown (or the daemon is gone): the connection
      // is unusable either way.
      CloseFd(fd_);
      fd_ = -1;
    }
    const bool retryable = transport || code == StatusCode::kUnavailable;
    if (!retryable || attempt >= options_.max_retries) return last;
    if (code == StatusCode::kUnavailable) {
      // Daemon shedding load (degraded mode): the connection is fine,
      // give the breaker time to clear before resending.
      std::this_thread::sleep_for(std::chrono::milliseconds(
          static_cast<uint64_t>(options_.retry_backoff_ms) << attempt));
    }
    // Resend the identical frame bytes: same request_id, so the retry
    // is idempotent from the daemon's point of view.
  }
}

Status Client::RoundTripOnce(const std::vector<uint8_t>& frame,
                             uint64_t request_id, std::vector<uint8_t>* payload,
                             size_t* body_offset) {
  E2_RETURN_NOT_OK(WriteFull(fd_, frame.data(), frame.size()));

  uint8_t lenbuf[4];
  E2_RETURN_NOT_OK(ReadFull(fd_, lenbuf, sizeof(lenbuf)));
  const uint32_t len = static_cast<uint32_t>(lenbuf[0]) |
                       (static_cast<uint32_t>(lenbuf[1]) << 8) |
                       (static_cast<uint32_t>(lenbuf[2]) << 16) |
                       (static_cast<uint32_t>(lenbuf[3]) << 24);
  E2_RETURN_NOT_OK(ValidateFrameLength(len, options_.max_frame_bytes));
  payload->resize(len);
  E2_RETURN_NOT_OK(ReadFull(fd_, payload->data(), len));

  Reader r(payload->data(), payload->size());
  FrameHeader hdr;
  E2_RETURN_NOT_OK(r.Header(&hdr));
  if ((hdr.type & kResponseBit) == 0) {
    return Status::IoError("frame is not a response");
  }
  // A bare-kResponseBit frame is the daemon reporting it could not even
  // parse our request header; its request_id may be 0.
  if (hdr.request_id != request_id &&
      !(hdr.type == kResponseBit && hdr.request_id == 0)) {
    return Status::IoError("response for request " +
                           std::to_string(hdr.request_id) + ", expected " +
                           std::to_string(request_id) +
                           " (out-of-sync connection)");
  }
  Status remote;
  E2_RETURN_NOT_OK(DecodeStatus(&r, &remote));
  E2_RETURN_NOT_OK(remote);
  *body_offset = payload->size() - r.remaining();
  return Status::OK();
}

Status Client::Ping() {
  const uint64_t id = next_request_id_++;
  Writer w;
  w.Begin(static_cast<uint8_t>(MsgType::kPing), id);
  std::vector<uint8_t> payload;
  size_t off;
  E2_RETURN_NOT_OK(RoundTrip(w.Finish(), id, &payload, &off));
  return Reader(payload.data() + off, payload.size() - off).ExpectEnd();
}

Result<WireQueryResult> Client::Search(const std::string& index,
                                       const float* query, uint32_t dim,
                                       uint32_t k, bool nowait) {
  const uint64_t id = next_request_id_++;
  Writer w;
  w.Begin(static_cast<uint8_t>(MsgType::kSearch), id);
  w.Str(index);
  w.U32(k);
  w.U32(nowait ? kFlagNoWait : 0);
  w.U32(dim);
  w.Raw(query, static_cast<size_t>(dim) * sizeof(float));
  std::vector<uint8_t> payload;
  size_t off;
  E2_RETURN_NOT_OK(RoundTrip(w.Finish(), id, &payload, &off));

  Reader r(payload.data() + off, payload.size() - off);
  uint32_t count;
  E2_RETURN_NOT_OK(r.U32(&count));
  if (count != 1) {
    return Status::IoError("Search response carries " +
                           std::to_string(count) + " results, expected 1");
  }
  WireQueryResult out;
  E2_RETURN_NOT_OK(DecodeQueryResult(&r, &out));
  E2_RETURN_NOT_OK(r.ExpectEnd());
  return out;
}

Result<std::vector<WireQueryResult>> Client::SearchBatch(
    const std::string& index, const float* queries, uint32_t count,
    uint32_t dim, uint32_t k, bool nowait) {
  const uint64_t id = next_request_id_++;
  const uint64_t vec_bytes =
      static_cast<uint64_t>(count) * dim * sizeof(float);
  if (kHeaderBytes + 2 + index.size() + 16 + vec_bytes >
      options_.max_frame_bytes) {
    return Status::InvalidArgument(
        "batch of " + std::to_string(count) + " queries x dim " +
        std::to_string(dim) + " exceeds the " +
        std::to_string(options_.max_frame_bytes) +
        "-byte frame cap; split it");
  }
  Writer w;
  w.Begin(static_cast<uint8_t>(MsgType::kSearchBatch), id);
  w.Str(index);
  w.U32(k);
  w.U32(nowait ? kFlagNoWait : 0);
  w.U32(count);
  w.U32(dim);
  w.Raw(queries, static_cast<size_t>(vec_bytes));
  std::vector<uint8_t> payload;
  size_t off;
  E2_RETURN_NOT_OK(RoundTrip(w.Finish(), id, &payload, &off));

  Reader r(payload.data() + off, payload.size() - off);
  uint32_t got;
  E2_RETURN_NOT_OK(r.U32(&got));
  if (got != count) {
    return Status::IoError("SearchBatch response carries " +
                           std::to_string(got) + " results, expected " +
                           std::to_string(count));
  }
  std::vector<WireQueryResult> out(got);
  for (uint32_t i = 0; i < got; ++i) {
    E2_RETURN_NOT_OK(DecodeQueryResult(&r, &out[i]));
  }
  E2_RETURN_NOT_OK(r.ExpectEnd());
  return out;
}

Status Client::Configure(const std::string& index, uint32_t default_k) {
  const uint64_t id = next_request_id_++;
  Writer w;
  w.Begin(static_cast<uint8_t>(MsgType::kConfigure), id);
  w.Str(index);
  w.U32(default_k);
  std::vector<uint8_t> payload;
  size_t off;
  E2_RETURN_NOT_OK(RoundTrip(w.Finish(), id, &payload, &off));
  return Reader(payload.data() + off, payload.size() - off).ExpectEnd();
}

Result<WireUpdateAck> Client::Update(const std::string& index, UpdateOp op,
                                     const void* payload, uint32_t count,
                                     uint32_t dim) {
  const uint64_t id = next_request_id_++;
  const uint64_t payload_bytes =
      op == UpdateOp::kInsert
          ? static_cast<uint64_t>(count) * dim * sizeof(float)
          : static_cast<uint64_t>(count) * sizeof(uint32_t);
  if (kHeaderBytes + 2 + index.size() + 9 + 4 + payload_bytes >
      options_.max_frame_bytes) {
    return Status::InvalidArgument(
        "update of " + std::to_string(count) + " entries exceeds the " +
        std::to_string(options_.max_frame_bytes) +
        "-byte frame cap; split it");
  }
  Writer w;
  w.Begin(static_cast<uint8_t>(MsgType::kUpdate), id);
  w.Str(index);
  w.U8(static_cast<uint8_t>(op));
  w.U32(count);
  if (op == UpdateOp::kInsert) w.U32(dim);
  w.Raw(payload, static_cast<size_t>(payload_bytes));
  std::vector<uint8_t> frame_payload;
  size_t off;
  E2_RETURN_NOT_OK(RoundTrip(w.Finish(), id, &frame_payload, &off));

  Reader r(frame_payload.data() + off, frame_payload.size() - off);
  WireUpdateAck ack;
  E2_RETURN_NOT_OK(DecodeUpdateAck(&r, &ack));
  E2_RETURN_NOT_OK(r.ExpectEnd());
  return ack;
}

Result<WireUpdateAck> Client::Insert(const std::string& index,
                                     const float* rows, uint32_t count,
                                     uint32_t dim) {
  return Update(index, UpdateOp::kInsert, rows, count, dim);
}

Result<WireUpdateAck> Client::Remove(const std::string& index,
                                     const uint32_t* ids, uint32_t count) {
  return Update(index, UpdateOp::kRemove, ids, count, 0);
}

Result<WireUpdateAck> Client::Restore(const std::string& index,
                                      const uint32_t* ids, uint32_t count) {
  return Update(index, UpdateOp::kRestore, ids, count, 0);
}

Result<WireStats> Client::Stats(const std::string& index) {
  const uint64_t id = next_request_id_++;
  Writer w;
  w.Begin(static_cast<uint8_t>(MsgType::kStats), id);
  w.Str(index);
  std::vector<uint8_t> payload;
  size_t off;
  E2_RETURN_NOT_OK(RoundTrip(w.Finish(), id, &payload, &off));

  Reader r(payload.data() + off, payload.size() - off);
  WireStats stats;
  E2_RETURN_NOT_OK(DecodeStats(&r, &stats));
  E2_RETURN_NOT_OK(r.ExpectEnd());
  return stats;
}

Result<WireHealth> Client::Health() {
  const uint64_t id = next_request_id_++;
  Writer w;
  w.Begin(static_cast<uint8_t>(MsgType::kHealth), id);
  std::vector<uint8_t> payload;
  size_t off;
  E2_RETURN_NOT_OK(RoundTrip(w.Finish(), id, &payload, &off));

  Reader r(payload.data() + off, payload.size() - off);
  WireHealth health;
  E2_RETURN_NOT_OK(DecodeHealth(&r, &health));
  E2_RETURN_NOT_OK(r.ExpectEnd());
  return health;
}

}  // namespace e2lshos::net
