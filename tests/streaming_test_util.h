// Shared helpers for the streaming serving test suites
// (streaming_server_test.cc, streaming_stress_test.cc): the
// deterministic clustered workload, the "never drain" parameter recipe
// that makes streamed == one-shot an exact claim, and a thread-safe
// completion collector.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <map>
#include <mutex>

#include "core/streaming_server.h"
#include "data/generators.h"
#include "lsh/params.h"

namespace e2lshos::core {

/// The suites' common clustered workload shape (dim 24, 16 clusters).
inline data::GeneratorSpec StreamingTestSpec(uint64_t seed) {
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = 24;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(48.0);
  spec.center_spread = 10.0 * std::sqrt(6.0 / 24.0);
  spec.seed = seed;
  return spec;
}

inline data::GeneratedData MakeStreamingTestData(uint64_t seed,
                                                 uint64_t n = 3000,
                                                 uint64_t num_queries = 40) {
  return data::Generate("streaming", n, num_queries, StreamingTestSpec(seed));
}

/// Candidate cap S far above the database size so no query ever drains:
/// per-query results are then independent of I/O completion order,
/// micro-batch boundaries, and shard assignment — which is what makes
/// "streamed == one-shot batch" an exact (bitwise) claim.
inline lsh::E2lshParams NeverDrainParams(const data::Dataset& base) {
  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = 1000.0;
  cfg.x_max = base.XMax();
  auto params = lsh::ComputeParams(base.n(), base.dim(), cfg);
  EXPECT_TRUE(params.ok());
  return *params;
}

/// Thread-safe completion collector: id -> result, deliveries per id.
struct Collector {
  std::mutex mu;
  std::map<uint64_t, QueryResult> results;
  std::map<uint64_t, int> deliveries;

  std::function<void(QueryResult&&)> Callback() {
    return [this](QueryResult&& r) {
      std::lock_guard<std::mutex> lock(mu);
      ++deliveries[r.id];
      results[r.id] = std::move(r);
    };
  }
};

inline void ExpectSameNeighbors(const std::vector<util::Neighbor>& got,
                                const std::vector<util::Neighbor>& want,
                                uint64_t id) {
  ASSERT_EQ(got.size(), want.size()) << "query id " << id;
  for (size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].id, want[i].id) << "query id " << id << " rank " << i;
    EXPECT_EQ(got[i].dist, want[i].dist) << "query id " << id << " rank " << i;
  }
}

}  // namespace e2lshos::core
