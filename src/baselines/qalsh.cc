#include "baselines/qalsh.h"

#include <algorithm>
#include <cmath>

#include "util/clock.h"
#include "util/distance.h"
#include "util/mathutil.h"
#include "util/rng.h"

namespace e2lshos::baselines {

double Qalsh::CollisionProb(double w, double s) {
  if (s <= 1e-20) return 1.0;
  return 2.0 * util::NormalCdf(w / (2.0 * s)) - 1.0;
}

Result<std::unique_ptr<Qalsh>> Qalsh::Build(const data::Dataset& base,
                                            const QalshConfig& config) {
  if (base.n() == 0) return Status::InvalidArgument("empty dataset");
  if (config.c <= 1.0) return Status::InvalidArgument("c must be > 1");
  if (config.w <= 0.0) return Status::InvalidArgument("w must be > 0");

  auto q = std::make_unique<Qalsh>();
  q->base_ = &base;
  q->config_ = config;

  const double n = static_cast<double>(base.n());
  const double beta = config.beta > 0.0 ? config.beta : std::min(1.0, 100.0 / n);
  q->verify_budget_ = static_cast<uint64_t>(std::max(100.0, beta * n));

  // Error bounds from QALSH Theorem 1: with delta the failure probability
  // (QALSH's default 1/e) and beta the false-positive budget,
  //   K = ceil( (sqrt(ln(2/beta)) + sqrt(ln(1/delta)))^2 / (2 (p1-p2)^2) )
  //   alpha = (sqrt(ln(2/beta)) p1 + sqrt(ln(1/delta)) p2) / (sum of sqrts).
  const double p1 = CollisionProb(config.w, 1.0);
  const double p2 = CollisionProb(config.w, config.c);
  const double delta = 1.0 / M_E;
  const double t1 = std::sqrt(std::log(2.0 / beta));
  const double t2 = std::sqrt(std::log(1.0 / delta));
  const double alpha = (t1 * p1 + t2 * p2) / (t1 + t2);

  if (config.num_hashes > 0) {
    q->K_ = config.num_hashes;
  } else {
    const double k_real = (t1 + t2) * (t1 + t2) / (2.0 * (p1 - p2) * (p1 - p2));
    q->K_ = static_cast<uint32_t>(std::max(4.0, std::ceil(k_real)));
  }
  q->threshold_ = static_cast<uint32_t>(
      std::min<double>(q->K_, std::max(1.0, std::ceil(alpha * q->K_))));

  // Draw the K projection lines and sort the projections per line.
  util::Rng rng(config.seed);
  const uint32_t d = base.dim();
  q->proj_matrix_.resize(static_cast<size_t>(q->K_) * d);
  for (auto& v : q->proj_matrix_) v = static_cast<float>(rng.Gaussian());

  q->line_proj_.resize(q->K_);
  q->line_ids_.resize(q->K_);
  std::vector<std::pair<float, uint32_t>> order(base.n());
  for (uint32_t i = 0; i < q->K_; ++i) {
    const float* a = q->proj_matrix_.data() + static_cast<size_t>(i) * d;
    for (uint64_t j = 0; j < base.n(); ++j) {
      order[j] = {util::Dot(a, base.Row(j), d), static_cast<uint32_t>(j)};
    }
    std::sort(order.begin(), order.end());
    q->line_proj_[i].resize(base.n());
    q->line_ids_[i].resize(base.n());
    for (uint64_t j = 0; j < base.n(); ++j) {
      q->line_proj_[i][j] = order[j].first;
      q->line_ids_[i][j] = order[j].second;
    }
  }

  q->counts_.assign(base.n(), 0);
  q->count_epoch_.assign(base.n(), 0);
  q->epoch_ = 0;
  return q;
}

std::vector<util::Neighbor> Qalsh::Search(const float* query, uint32_t k,
                                          QalshStats* stats) const {
  const uint64_t start = util::NowNs();
  QalshStats local;
  const uint32_t d = base_->dim();
  const uint64_t n = base_->n();

  if (++epoch_ == 0) {
    // Epoch counter wrapped: reset the scratch arrays.
    std::fill(count_epoch_.begin(), count_epoch_.end(), 0);
    epoch_ = 1;
  }

  // Per-line query projection and expansion cursors [left, right).
  std::vector<float> qp(K_);
  std::vector<uint64_t> left(K_), right(K_);
  for (uint32_t i = 0; i < K_; ++i) {
    qp[i] = util::Dot(proj_matrix_.data() + static_cast<size_t>(i) * d, query, d);
    const auto& proj = line_proj_[i];
    const uint64_t pos = static_cast<uint64_t>(
        std::lower_bound(proj.begin(), proj.end(), qp[i]) - proj.begin());
    left[i] = pos;
    right[i] = pos;
  }

  util::TopK topk(k);
  uint64_t verified = 0;

  auto touch = [&](uint32_t id) {
    ++local.window_entries_scanned;
    if (count_epoch_[id] != epoch_) {
      count_epoch_[id] = epoch_;
      counts_[id] = 0;
    }
    if (++counts_[id] == threshold_) {
      // Candidate: verify its true distance.
      const float dist = std::sqrt(util::SquaredL2(base_->Row(id), query, d));
      topk.Push(id, dist);
      ++verified;
      ++local.points_verified;
    }
  };

  double radius = 1.0;
  for (uint32_t round = 0; round < 64; ++round) {
    ++local.virtual_radii;
    const double half = config_.w * radius / 2.0;
    bool all_exhausted = true;
    for (uint32_t i = 0; i < K_; ++i) {
      const auto& proj = line_proj_[i];
      const auto& ids = line_ids_[i];
      const float lo = static_cast<float>(qp[i] - half);
      const float hi = static_cast<float>(qp[i] + half);
      while (left[i] > 0 && proj[left[i] - 1] >= lo) {
        touch(ids[--left[i]]);
        if (verified >= verify_budget_ + k) break;
      }
      while (right[i] < n && proj[right[i]] <= hi) {
        touch(ids[right[i]++]);
        if (verified >= verify_budget_ + k) break;
      }
      if (left[i] > 0 || right[i] < n) all_exhausted = false;
    }

    if (verified >= verify_budget_ + k) break;
    if (topk.full() && topk.WorstDist() <= config_.c * radius) break;
    if (all_exhausted) break;
    radius *= config_.c;
  }

  local.wall_ns = util::NowNs() - start;
  if (stats != nullptr) *stats = local;
  return topk.SortedResults();
}

Qalsh::BatchResult Qalsh::SearchBatch(const data::Dataset& queries,
                                      uint32_t k) const {
  BatchResult out;
  out.results.resize(queries.n());
  out.stats.resize(queries.n());
  const uint64_t start = util::NowNs();
  for (uint64_t q = 0; q < queries.n(); ++q) {
    out.results[q] = Search(queries.Row(q), k, &out.stats[q]);
  }
  out.wall_ns = util::NowNs() - start;
  return out;
}

uint64_t Qalsh::IndexMemoryBytes() const {
  uint64_t bytes = proj_matrix_.size() * sizeof(float);
  for (uint32_t i = 0; i < K_; ++i) {
    bytes += line_proj_[i].size() * sizeof(float) +
             line_ids_[i].size() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace e2lshos::baselines
