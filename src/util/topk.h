// Bounded top-k accumulator for nearest-neighbor results.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace e2lshos::util {

/// \brief One (object id, distance) search hit.
struct Neighbor {
  uint32_t id = 0;
  float dist = 0.f;  // Euclidean distance (not squared).

  bool operator<(const Neighbor& o) const {
    return dist < o.dist || (dist == o.dist && id < o.id);
  }
};

/// \brief Keeps the k smallest-distance neighbors seen so far.
///
/// Backed by a max-heap; Push is O(log k). Duplicate ids are the caller's
/// responsibility (E2LSH dedupes candidates before distance checks).
class TopK {
 public:
  explicit TopK(size_t k) : k_(k == 0 ? 1 : k) {}

  /// Insert a candidate; returns true if it entered the top-k.
  bool Push(uint32_t id, float dist) {
    if (heap_.size() < k_) {
      heap_.push_back({id, dist});
      std::push_heap(heap_.begin(), heap_.end(), Cmp);
      return true;
    }
    if (dist < heap_.front().dist) {
      std::pop_heap(heap_.begin(), heap_.end(), Cmp);
      heap_.back() = {id, dist};
      std::push_heap(heap_.begin(), heap_.end(), Cmp);
      return true;
    }
    return false;
  }

  bool full() const { return heap_.size() >= k_; }
  size_t size() const { return heap_.size(); }
  size_t k() const { return k_; }

  /// Largest distance currently in the top-k (+inf if not yet full).
  float WorstDist() const {
    if (!full()) return std::numeric_limits<float>::infinity();
    return heap_.front().dist;
  }

  /// Extract results sorted by ascending distance.
  std::vector<Neighbor> SortedResults() const {
    std::vector<Neighbor> out = heap_;
    std::sort(out.begin(), out.end());
    return out;
  }

 private:
  static bool Cmp(const Neighbor& a, const Neighbor& b) { return a < b; }

  size_t k_;
  std::vector<Neighbor> heap_;
};

}  // namespace e2lshos::util
