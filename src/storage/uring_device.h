// A block device backed by a real file with reads submitted as genuine
// asynchronous I/O over a Linux io_uring SQ/CQ ring pair.
//
// FileDevice emulates the paper's deep-queue regime by bouncing every
// read onto a pread thread pool, so achievable IOPS is capped by thread
// count and wakeup latency. UringDevice keeps the queue depth real: the
// submitting thread writes SQEs into a shared submission ring (batched
// into one io_uring_enter per `submit_batch` requests), the kernel
// services them in parallel, and PollCompletions() drains the completion
// ring with no syscall and no reaper thread. This is the backend the
// paper's interface model prices at ~1.0 us/op (Table 3, io_uring row).
//
// Features, all optional at Options level:
//   * SQPOLL: a kernel thread polls the submission ring, removing even
//     the batched io_uring_enter from the submit path (falls back to
//     interrupt-driven mode when the kernel refuses).
//   * Registered file: the backing fd is registered once so the kernel
//     skips per-I/O fd lookup.
//   * Registered (fixed) buffers: RegisterBuffers() pins caller-owned
//     arenas (e.g. util::AlignedBuffer memory); reads whose destination
//     falls inside a registered region are submitted as READ_FIXED,
//     skipping per-I/O page pinning.
//
// Availability is a configure-time gate (E2LSHOS_HAVE_LIBURING, probed
// from <linux/io_uring.h>; the implementation speaks the raw kernel
// syscall ABI, so the liburing userspace library is not required) plus a
// runtime probe — seccomp-filtered containers can refuse the syscalls
// even when the headers compile. When either is absent, Create/Open
// return Unimplemented and Available() is false.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "storage/block_device.h"
#include "storage/multi_queue.h"

namespace e2lshos::storage {

class UringDevice : public BlockDevice, public MultiQueueDevice {
 public:
  struct Options {
    uint64_t capacity = 0;       ///< File is sized to this on creation.
    uint32_t queue_capacity = 1024;  ///< Max submitted-but-unharvested reads.
    /// Submission ring slots (rounded up to a power of two). May be
    /// smaller than queue_capacity: SQEs recycle at submission, the CQ
    /// ring is sized to hold queue_capacity completions.
    uint32_t sq_entries = 256;
    /// SQEs accumulated before an io_uring_enter; 1 = syscall per read.
    /// PollCompletions always flushes, so a batch never goes stale.
    uint32_t submit_batch = 16;
    bool direct_io = false;  ///< O_DIRECT (probed-alignment extents).
    bool sqpoll = false;     ///< Kernel submission-queue polling thread.
    uint32_t sqpoll_idle_ms = 20;  ///< SQPOLL thread spin-down idle.
  };

  /// True when the backend is compiled in AND the kernel accepts
  /// io_uring_setup at runtime. Cached after the first call.
  static bool Available();

  /// Create (or truncate) `path` and open it for read/write.
  static Result<std::unique_ptr<UringDevice>> Create(const std::string& path,
                                                     const Options& options);

  /// Open an existing file without truncation. Capacity is taken from
  /// the file size; `options.capacity` is ignored.
  static Result<std::unique_ptr<UringDevice>> Open(const std::string& path,
                                                   const Options& options);

  ~UringDevice() override;

  Status SubmitRead(const IoRequest& req) override;
  size_t PollCompletions(IoCompletion* out, size_t max) override;
  /// Synchronous from the caller's view, but ring-submitted: the write
  /// goes out as an IORING_OP_WRITE SQE and the call drains the ring
  /// until it completes (EAGAIN/short writes resubmit, like reads). Read
  /// completions harvested while waiting are parked and replayed by the
  /// next PollCompletions, so a concurrent poller loses nothing.
  Status Write(uint64_t offset, const void* data, uint32_t length) override;
  /// One flush for the whole burst: every extent gets its own SQE, a
  /// single io_uring_enter pushes them, and the call returns when all
  /// have completed. Any extent's failure fails the batch (the rest
  /// still run to completion before returning).
  Status WriteBatch(const WriteOp* ops, size_t count) override;
  uint64_t capacity() const override { return capacity_; }
  uint32_t io_alignment() const override { return direct_io_ ? align_ : 1; }
  uint32_t outstanding() const override {
    return inflight_.load(std::memory_order_relaxed) +
           queue_registry_.SumOutstanding();
  }
  std::string name() const override;
  DeviceStats stats() const override;
  void ResetStats() override;

  /// Pin caller-owned buffer regions with the kernel; subsequent reads
  /// whose destination lies inside a region go out as READ_FIXED. Call
  /// once, before I/O is in flight. The regions must stay valid for the
  /// device's lifetime.
  Status RegisterBuffers(
      const std::vector<std::pair<void*, size_t>>& regions) override;

  /// Native queues: each is a full UringDevice with its OWN io_uring
  /// ring (real hardware queue-pair semantics) over a dup of the shared
  /// fd. A queue registers its own fd and its own fixed buffers, so the
  /// per-shard submit/poll path shares no lock, no ring, and no kernel
  /// object with other queues. Inherits direct_io/sqpoll from the parent.
  MultiQueueDevice* multi_queue() override {
    return ring_ != nullptr ? this : nullptr;
  }
  uint32_t max_queues() const override { return ring_ != nullptr ? 255 : 0; }
  Result<std::unique_ptr<BlockDevice>> CreateQueue(
      const QueueOptions& options) override;

  /// True when the ring runs with a kernel SQPOLL thread (the sqpoll
  /// option may be refused by the kernel and silently downgraded).
  bool sqpoll_active() const { return sqpoll_active_; }

  /// Reads submitted through a registered buffer so far (test/bench
  /// visibility into the fixed-buffer path).
  uint64_t fixed_buffer_reads() const {
    return fixed_buffer_reads_.load(std::memory_order_relaxed);
  }

 private:
  struct Ring;  ///< mmap'ed SQ/CQ state; defined in uring_device.cc.

  /// One in-flight request: submission timestamp for completion latency,
  /// progress cursor for short-read/short-write resubmission.
  struct Slot {
    uint64_t user_data = 0;
    uint64_t submit_ns = 0;
    uint64_t offset = 0;
    uint32_t length = 0;
    uint32_t done = 0;
    uint8_t* buf = nullptr;
    int fixed_index = -1;
    bool is_write = false;  ///< IORING_OP_WRITE; completion never emitted.
  };

  struct FixedRegion {
    uintptr_t start = 0;
    size_t length = 0;
    int index = -1;
  };

  UringDevice(std::string path, int fd, const Options& options);

  Status InitRing(const Options& options);
  /// Write one SQE for slot `slot_idx`'s remaining extent. mu_ held.
  Status EnqueueSqeLocked(uint32_t slot_idx);
  /// io_uring_enter for any batched SQEs. mu_ held.
  Status FlushLocked();
  /// Re-enqueue slots parked after EAGAIN / short reads. mu_ held.
  void ProcessRetriesLocked();
  /// Drain up to `max` CQEs into `out`; returns the count. mu_ held.
  size_t ProcessCqesLocked(IoCompletion* out, size_t max);
  int FindFixedBuffer(const void* buf, uint32_t length) const;

  std::string path_;
  int fd_;
  uint64_t capacity_;
  uint32_t queue_capacity_;
  uint32_t submit_batch_ = 16;
  bool direct_io_;
  uint32_t align_ = kSectorBytes;
  bool sqpoll_active_ = false;
  bool fixed_file_ = false;
  /// The caller's sqpoll request (vs. sqpoll_active_, what the kernel
  /// granted); native queues inherit the request and re-negotiate.
  bool sqpoll_requested_ = false;
  uint32_t sqpoll_idle_ms_ = 20;
  /// Set on queue devices: the device that created them (for registry
  /// removal at destruction).
  UringDevice* parent_ = nullptr;
  QueueRegistry queue_registry_;

  std::unique_ptr<Ring> ring_;
  std::atomic<uint32_t> inflight_{0};
  std::atomic<uint64_t> fixed_buffer_reads_{0};

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  std::deque<uint32_t> retry_;
  /// Read completions harvested while WriteBatch drains the shared CQ
  /// ring; replayed (FIFO) ahead of fresh CQEs by PollCompletions.
  std::deque<IoCompletion> parked_;
  /// Writes in flight; nonzero only while WriteBatch holds mu_.
  uint32_t writes_pending_ = 0;
  /// First failure among the current burst's writes.
  Status write_error_;
  std::vector<FixedRegion> fixed_regions_;  ///< Sorted by start address.
  DeviceStats stats_;
};

}  // namespace e2lshos::storage
