// Abstract block device with an asynchronous read interface.
//
// This is the substrate the paper's E2LSHoS runs on. The model follows
// Sec. 4.1 of the paper: the CPU submits read requests (possibly many in
// flight, i.e. a deep queue) and later harvests completions; the device
// processes requests in parallel across its internal flash units.
//
// Contract:
//  * Reads and writes must not cross a 512-byte block boundary unless the
//    device documents otherwise (SimulatedDevice and MemoryDevice allow
//    arbitrary extents; StripedDevice enforces the boundary rule).
//  * SubmitRead may return ResourceExhausted when the device queue is
//    full; the caller must PollCompletions and retry.
//  * user_data is round-tripped to the completion untouched.
//  * Writes are synchronous from the caller's point of view: Write (and
//    the batched WriteBatch) return only when the data is durable in the
//    device's backing store. Index construction uses them off the
//    measured path; the live-update path (core/live_updater.h) issues
//    them concurrently with serving reads — devices must tolerate a
//    writer thread alongside reader threads, which every backend here
//    does (mutexed DRAM stores, per-sector stripe locks, pwrite/ring
//    writes on an idempotent fd).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"
#include "util/status.h"

namespace e2lshos::storage {

class MultiQueueDevice;  // storage/multi_queue.h

/// \brief The read unit used throughout the paper: the minimum NVMe
/// sector size.
inline constexpr uint32_t kSectorBytes = 512;

/// \brief True when [offset, offset+length) lies within capacity. Written
/// without `offset + length` so a corrupt address near UINT64_MAX cannot
/// wrap past the bound.
inline constexpr bool RangeInCapacity(uint64_t offset, uint64_t length,
                                      uint64_t capacity) {
  return length <= capacity && offset <= capacity - length;
}

/// \brief One asynchronous read request.
struct IoRequest {
  uint64_t offset = 0;     ///< Byte offset on the device.
  uint32_t length = 0;     ///< Bytes to read.
  void* buf = nullptr;     ///< Destination buffer (caller-owned).
  uint64_t user_data = 0;  ///< Opaque tag returned with the completion.
};

/// \brief One harvested completion.
struct IoCompletion {
  uint64_t user_data = 0;
  StatusCode code = StatusCode::kOk;
  uint64_t latency_ns = 0;  ///< Submit-to-completion time.
};

/// \brief One write extent of a WriteBatch burst.
struct WriteOp {
  uint64_t offset = 0;
  const void* data = nullptr;
  uint32_t length = 0;
};

/// \brief Aggregate device counters (reset with ResetStats).
struct DeviceStats {
  uint64_t reads_submitted = 0;
  uint64_t reads_completed = 0;
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  uint64_t busy_ns = 0;  ///< Sum of per-unit service time consumed.
  /// DRAM-cache layer counters (storage/cache_device.h); zero on devices
  /// without a cache. hits/misses count whole reads, not blocks.
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t cache_evictions = 0;
  /// Resident cache bytes at snapshot time — a gauge, not a counter; it
  /// survives ResetStats (the cache keeps its contents).
  uint64_t bytes_cached = 0;
  /// Fault-injection layer counters (storage/faulty_device.h); zero on
  /// devices without a fault layer.
  uint64_t faults_injected = 0;  ///< Submit + completion + corrupt + stall.
  /// Retry layer counters (storage/retry_device.h); zero without one.
  uint64_t retries = 0;          ///< Resubmits after a transient error.
  uint64_t retries_exhausted = 0;  ///< Requests failed after the last attempt.
  /// Live-update counters (core/live_updater.h), folded in by the api
  /// facade's device_stats(); zero straight off a device.
  uint64_t updates_applied = 0;   ///< Inserts + removes + restores staged.
  uint64_t epochs_published = 0;
  uint64_t update_staged_bytes = 0;  ///< Device bytes written by staging.
  uint64_t update_lag = 0;  ///< Ops staged but not yet reader-visible.
  util::LatencyHistogram read_latency;
};

/// Fold `more` into `into`: counters add, the latency histogram merges.
/// bytes_cached adds too: per-queue snapshots report 0 and only the cache
/// parent contributes the gauge, so the aggregate stays the gauge.
inline void MergeDeviceStats(DeviceStats* into, const DeviceStats& more) {
  into->reads_submitted += more.reads_submitted;
  into->reads_completed += more.reads_completed;
  into->bytes_read += more.bytes_read;
  into->bytes_written += more.bytes_written;
  into->busy_ns += more.busy_ns;
  into->cache_hits += more.cache_hits;
  into->cache_misses += more.cache_misses;
  into->cache_evictions += more.cache_evictions;
  into->bytes_cached += more.bytes_cached;
  into->faults_injected += more.faults_injected;
  into->retries += more.retries;
  into->retries_exhausted += more.retries_exhausted;
  into->updates_applied += more.updates_applied;
  into->epochs_published += more.epochs_published;
  into->update_staged_bytes += more.update_staged_bytes;
  into->update_lag += more.update_lag;
  into->read_latency.Merge(more.read_latency);
}

class BlockDevice {
 public:
  virtual ~BlockDevice() = default;

  /// Queue an asynchronous read. May fail with ResourceExhausted (queue
  /// full) or OutOfRange (beyond capacity).
  virtual Status SubmitRead(const IoRequest& req) = 0;

  /// Harvest up to `max` completions into `out`; returns the count.
  /// Non-blocking.
  virtual size_t PollCompletions(IoCompletion* out, size_t max) = 0;

  /// Synchronous write (index construction and the live-update staging
  /// path; see the contract comment above for concurrency expectations).
  virtual Status Write(uint64_t offset, const void* data, uint32_t length) = 0;

  /// Write a burst of extents; returns on the first failure (extents
  /// before it are durable, the failed one and everything after are
  /// not). The default loops over Write; UringDevice overrides it with
  /// one ring submission for the whole burst.
  virtual Status WriteBatch(const WriteOp* ops, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      E2_RETURN_NOT_OK(Write(ops[i].offset, ops[i].data, ops[i].length));
    }
    return Status::OK();
  }

  /// Device capacity in bytes.
  virtual uint64_t capacity() const = 0;

  /// Required alignment of request offsets and lengths, in bytes.
  /// 1 = arbitrary extents; an O_DIRECT FileDevice requires sectors.
  virtual uint32_t io_alignment() const { return 1; }

  /// Number of requests submitted but not yet harvested.
  virtual uint32_t outstanding() const = 0;

  /// Human-readable device description.
  virtual std::string name() const = 0;

  /// A consistent snapshot of the counters, by value: devices are
  /// driven from many threads, so returning a reference to live
  /// internals would hand the caller a torn read.
  virtual DeviceStats stats() const = 0;
  virtual void ResetStats() = 0;

  /// Native multi-queue capability (NVMe semantics: one queue pair per
  /// serving thread; see storage/multi_queue.h). nullptr = no native
  /// queues; callers fall back to the QueueRouter shim, typically via
  /// AcquireQueues which does so automatically.
  virtual MultiQueueDevice* multi_queue() { return nullptr; }

  /// Pin caller-owned buffer regions with the device so reads into them
  /// skip per-I/O setup (io_uring READ_FIXED). Call before I/O is in
  /// flight; regions must stay valid for the device's lifetime. The
  /// default is Unimplemented — registration is an optimization, so
  /// callers treat failure as "run unregistered", never as fatal.
  virtual Status RegisterBuffers(
      const std::vector<std::pair<void*, size_t>>& regions);

  /// Convenience: submit one read and spin until it completes.
  /// This is the "synchronous I/O" execution mode of Fig. 1(A).
  Status ReadSync(uint64_t offset, void* buf, uint32_t length);
};

}  // namespace e2lshos::storage
