#include "storage/memory_device.h"

#include <cstring>

namespace e2lshos::storage {

Result<std::unique_ptr<MemoryDevice>> MemoryDevice::Create(uint64_t capacity,
                                                           uint32_t queue_capacity) {
  auto dev = std::unique_ptr<MemoryDevice>(new MemoryDevice(queue_capacity));
  E2_RETURN_NOT_OK(dev->backing_.Map(capacity));
  return dev;
}

Status MemoryDevice::SubmitRead(const IoRequest& req) {
  if (req.buf == nullptr || req.length == 0) {
    return Status::InvalidArgument("null buffer or zero length");
  }
  if (!RangeInCapacity(req.offset, req.length, backing_.capacity())) {
    return Status::OutOfRange("read beyond device capacity");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (completed_.size() >= queue_capacity_) {
    return Status::ResourceExhausted("completion queue full");
  }
  std::memcpy(req.buf, backing_.data() + req.offset, req.length);
  IoCompletion comp;
  comp.user_data = req.user_data;
  comp.code = StatusCode::kOk;
  comp.latency_ns = 0;
  completed_.push_back(comp);
  ++stats_.reads_submitted;
  ++stats_.reads_completed;
  stats_.bytes_read += req.length;
  stats_.read_latency.Add(0);
  return Status::OK();
}

size_t MemoryDevice::PollCompletions(IoCompletion* out, size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  while (n < max && !completed_.empty()) {
    out[n++] = completed_.front();
    completed_.pop_front();
  }
  return n;
}

Status MemoryDevice::Write(uint64_t offset, const void* data, uint32_t length) {
  if (!RangeInCapacity(offset, length, backing_.capacity())) {
    return Status::OutOfRange("write beyond device capacity");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::memcpy(backing_.data() + offset, data, length);
  stats_.bytes_written += length;
  return Status::OK();
}

uint32_t MemoryDevice::outstanding() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<uint32_t>(completed_.size());
}

void MemoryDevice::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  stats_ = DeviceStats{};
}

}  // namespace e2lshos::storage
