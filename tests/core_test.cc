// Tests for E2LSHoS: on-storage layout codecs, index construction
// invariants, and the asynchronous query engine — including equivalence
// with in-memory E2LSH under identical hash functions.
#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "core/builder.h"
#include "core/layout.h"
#include "core/query_engine.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "e2lsh/in_memory.h"
#include "storage/device_registry.h"
#include "storage/interface_model.h"
#include "storage/memory_device.h"
#include "storage/striped_device.h"

namespace e2lshos::core {
namespace {

TEST(Layout, ObjectsPerBlockMatchesPaper) {
  EXPECT_EQ(ObjectsPerBlock(512), 99u);   // (512 - 16) / 5, paper Sec. 5.1
  EXPECT_EQ(ObjectsPerBlock(128), 22u);
  EXPECT_EQ(ObjectsPerBlock(4096), 816u);
}

TEST(Layout, BlockHeaderRoundTrips) {
  uint8_t block[512] = {};
  BlockHeader h;
  h.next = 0x123456789abcULL;
  h.count = 77;
  h.EncodeTo(block);
  const BlockHeader d = BlockHeader::DecodeFrom(block);
  EXPECT_EQ(d.next, h.next);
  EXPECT_EQ(d.count, h.count);
  // Padding bytes are zeroed (reserved for debug, paper Sec. 5.1).
  for (int i = 10; i < 16; ++i) EXPECT_EQ(block[i], 0);
}

TEST(Layout, ObjectInfoCodecRoundTrips) {
  const lsh::FingerprintScheme fp{14};
  auto codec = ObjectInfoCodec::Make(1 << 16, fp);
  ASSERT_TRUE(codec.ok());
  EXPECT_EQ(codec->id_bits, 17u);  // ceil(log2 n) + 1 headroom bit
  EXPECT_EQ(codec->fp_bits, 18u);
  uint8_t buf[5];
  codec->Write(buf, 54321, 0x2ffff);
  const uint64_t v = codec->Read(buf);
  EXPECT_EQ(codec->DecodeId(v), 54321u);
  EXPECT_EQ(codec->DecodeFingerprint(v), 0x2ffffu);
}

TEST(Layout, ObjectInfoRejectsOverflow) {
  // 32 id bits + 24 fp bits > 40 bits must be rejected.
  const lsh::FingerprintScheme fp{8};
  EXPECT_FALSE(ObjectInfoCodec::Make(1ULL << 32, fp).ok());
}

TEST(Layout, TableAddressingIsDisjoint) {
  IndexLayout layout;
  layout.num_radii = 3;
  layout.L = 4;
  layout.fp = {10};
  layout.table_base = 0;
  layout.bucket_base = layout.total_table_bytes();
  std::set<uint64_t> addrs;
  for (uint32_t r = 0; r < 3; ++r) {
    for (uint32_t l = 0; l < 4; ++l) {
      for (uint32_t s : {0u, 1u, 1023u}) {
        const uint64_t a = layout.TableEntryAddr(r, l, s);
        EXPECT_TRUE(addrs.insert(a).second);
        EXPECT_LT(a + 8, layout.bucket_base + 1);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Builder + engine fixtures.

struct Fixture {
  data::GeneratedData gen;
  lsh::E2lshParams params;
  std::unique_ptr<storage::MemoryDevice> device;
  std::unique_ptr<StorageIndex> index;
};

Fixture MakeFixture(uint64_t n = 4000, uint32_t dim = 24, double s_factor = 4.0,
                    uint64_t seed = 1, uint32_t block_bytes = 512) {
  Fixture f;
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = seed;
  f.gen = data::Generate("fixture", n, 40, spec);

  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = s_factor;
  cfg.x_max = f.gen.base.XMax();
  auto params = lsh::ComputeParams(n, dim, cfg);
  EXPECT_TRUE(params.ok());
  f.params = *params;

  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  EXPECT_TRUE(dev.ok());
  f.device = std::move(dev.value());

  BuildOptions opt;
  opt.block_bytes = block_bytes;
  auto idx = IndexBuilder::Build(f.gen.base, f.params, f.device.get(), opt);
  EXPECT_TRUE(idx.ok()) << idx.status().ToString();
  f.index = std::move(idx.value());
  return f;
}

TEST(Builder, RejectsBadInputs) {
  auto f = MakeFixture(500);
  data::Dataset empty("e", 24);
  EXPECT_FALSE(IndexBuilder::Build(empty, f.params, f.device.get()).ok());
  EXPECT_FALSE(IndexBuilder::Build(f.gen.base, f.params, nullptr).ok());
  BuildOptions bad;
  bad.block_bytes = 8;  // smaller than header + one entry
  EXPECT_FALSE(IndexBuilder::Build(f.gen.base, f.params, f.device.get(), bad).ok());
}

TEST(Builder, FailsWhenDeviceTooSmall) {
  auto f = MakeFixture(2000);
  auto tiny = storage::MemoryDevice::Create(1 << 20);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(IndexBuilder::Build(f.gen.base, f.params, tiny->get()).status().code(),
            StatusCode::kOutOfRange);
}

TEST(Builder, SizesAccounting) {
  auto f = MakeFixture();
  const IndexSizes sizes = f.index->sizes();
  // Every object lands in L buckets per radius.
  EXPECT_EQ(sizes.total_entries,
            f.gen.base.n() * f.params.L * f.params.num_radii());
  EXPECT_EQ(sizes.storage_bytes, sizes.table_bytes + sizes.bucket_bytes);
  EXPECT_GT(sizes.bucket_bytes, 0u);
  // The DRAM-resident part is much smaller than the storage part
  // (Table 6's central claim).
  EXPECT_LT(sizes.dram_index_bytes, sizes.storage_bytes / 4);
}

// Walk all chains on the device and verify every (radius, l) pair stores
// each object exactly once, with the correct fingerprint.
TEST(Builder, ChainsContainEveryObjectOncePerPair) {
  auto f = MakeFixture(1500);
  const IndexLayout& layout = f.index->layout();
  auto codec = ObjectInfoCodec::Make(f.gen.base.n(), layout.fp);
  ASSERT_TRUE(codec.ok());

  for (uint32_t r = 0; r < layout.num_radii; ++r) {
    for (uint32_t l = 0; l < layout.L; ++l) {
      std::map<uint32_t, int> seen;
      for (uint32_t slot = 0; slot < layout.slots_per_table(); ++slot) {
        uint64_t addr = 0;
        ASSERT_TRUE(f.device
                        ->ReadSync(layout.TableEntryAddr(r, l, slot), &addr, 8)
                        .ok());
        ASSERT_EQ(addr != 0, f.index->SlotNonEmpty(r, l, slot))
            << "bitmap/table disagree at r=" << r << " l=" << l;
        std::vector<uint8_t> block(layout.block_bytes);
        while (addr != 0) {
          ASSERT_TRUE(
              f.device->ReadSync(addr, block.data(), layout.block_bytes).ok());
          const BlockHeader hdr = BlockHeader::DecodeFrom(block.data());
          ASSERT_LE(hdr.count, layout.objects_per_block());
          for (uint16_t e = 0; e < hdr.count; ++e) {
            const uint64_t v =
                codec->Read(block.data() + kBlockHeaderBytes + e * kObjectInfoBytes);
            seen[codec->DecodeId(v)]++;
          }
          addr = hdr.next;
        }
      }
      ASSERT_EQ(seen.size(), f.gen.base.n()) << "r=" << r << " l=" << l;
      for (const auto& [id, count] : seen) EXPECT_EQ(count, 1) << "id " << id;
    }
  }
}

TEST(Builder, FingerprintsMatchHashes) {
  auto f = MakeFixture(800);
  const IndexLayout& layout = f.index->layout();
  auto codec = ObjectInfoCodec::Make(f.gen.base.n(), layout.fp);
  ASSERT_TRUE(codec.ok());
  // Follow object 0's bucket at (radius 0, l 0) and check its fingerprint.
  const uint32_t h = f.index->family().Get(0, 0).Hash32(f.gen.base.Row(0));
  const uint32_t slot = layout.fp.TableIndex(h);
  uint64_t addr = 0;
  ASSERT_TRUE(
      f.device->ReadSync(layout.TableEntryAddr(0, 0, slot), &addr, 8).ok());
  ASSERT_NE(addr, 0u);
  bool found = false;
  std::vector<uint8_t> block(layout.block_bytes);
  while (addr != 0 && !found) {
    ASSERT_TRUE(f.device->ReadSync(addr, block.data(), layout.block_bytes).ok());
    const BlockHeader hdr = BlockHeader::DecodeFrom(block.data());
    for (uint16_t e = 0; e < hdr.count; ++e) {
      const uint64_t v =
          codec->Read(block.data() + kBlockHeaderBytes + e * kObjectInfoBytes);
      if (codec->DecodeId(v) == 0) {
        EXPECT_EQ(codec->DecodeFingerprint(v), layout.fp.Fingerprint(h));
        found = true;
      }
    }
    addr = hdr.next;
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// Query engine.

TEST(QueryEngine, FindsExactDuplicates) {
  auto f = MakeFixture();
  QueryEngine engine(f.index.get(), &f.gen.base);
  for (uint64_t i = 0; i < 10; ++i) {
    auto res = engine.Search(f.gen.base.Row(i * 31), 1);
    ASSERT_TRUE(res.ok());
    ASSERT_FALSE(res->empty());
    EXPECT_EQ((*res)[0].dist, 0.f);
    EXPECT_EQ((*res)[0].id, static_cast<uint32_t>(i * 31));
  }
}

TEST(QueryEngine, MatchesInMemoryE2lshResults) {
  // Same hash family + same semantics => identical result sets when the
  // candidate cap is generous enough that truncation order cannot differ.
  auto f = MakeFixture(4000, 24, /*s_factor=*/1000.0);
  auto mem = e2lsh::InMemoryE2lsh::Build(f.gen.base, f.params);
  ASSERT_TRUE(mem.ok());

  QueryEngine engine(f.index.get(), &f.gen.base);
  auto batch = engine.SearchBatch(f.gen.queries, 5);
  ASSERT_TRUE(batch.ok());
  const auto mem_batch = (*mem)->SearchBatch(f.gen.queries, 5);

  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    const auto& a = batch->results[q];
    const auto& b = mem_batch.results[q];
    ASSERT_EQ(a.size(), b.size()) << "query " << q;
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].id, b[i].id) << "query " << q << " rank " << i;
      EXPECT_FLOAT_EQ(a[i].dist, b[i].dist);
    }
  }
}

TEST(QueryEngine, StatsMatchInMemoryProbes) {
  auto f = MakeFixture(4000, 24, 1000.0);
  auto mem = e2lsh::InMemoryE2lsh::Build(f.gen.base, f.params);
  ASSERT_TRUE(mem.ok());
  QueryEngine engine(f.index.get(), &f.gen.base, {.num_contexts = 1});

  for (uint64_t q = 0; q < 10; ++q) {
    QueryStats st;
    ASSERT_TRUE(engine.Search(f.gen.queries.Row(q), 1, &st).ok());
    e2lsh::SearchStats ms;
    (*mem)->Search(f.gen.queries.Row(q), 1, &ms);
    EXPECT_EQ(st.radii_searched, ms.radii_searched);
    // E2LSHoS indexes by the u-bit slot, so table-index collisions make it
    // probe a superset of the true buckets; fingerprints reject the extras
    // without affecting the candidate set (paper Sec. 5.2).
    EXPECT_GE(st.buckets_probed, ms.buckets_probed);
    EXPECT_EQ(st.candidates, ms.candidates);
    EXPECT_EQ(st.table_reads, st.buckets_probed);
    EXPECT_GE(st.bucket_block_reads, ms.buckets_probed);
    EXPECT_EQ(st.ios, st.table_reads + st.bucket_block_reads);
  }
}

TEST(QueryEngine, CandidateCapRespected) {
  auto f = MakeFixture(4000, 24, /*s_factor=*/0.5);
  QueryEngine engine(f.index.get(), &f.gen.base);
  for (uint64_t q = 0; q < 20; ++q) {
    QueryStats st;
    ASSERT_TRUE(engine.Search(f.gen.queries.Row(q), 1, &st).ok());
    EXPECT_LE(st.candidates, f.params.S * st.radii_searched);
  }
}

TEST(QueryEngine, SynchronousModeSameResults) {
  auto f = MakeFixture(3000, 24, 1000.0);
  QueryEngine async_engine(f.index.get(), &f.gen.base);
  QueryEngine sync_engine(f.index.get(), &f.gen.base, {.synchronous = true});
  auto a = async_engine.SearchBatch(f.gen.queries, 3);
  auto s = sync_engine.SearchBatch(f.gen.queries, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(s.ok());
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    ASSERT_EQ(a->results[q].size(), s->results[q].size());
    for (size_t i = 0; i < a->results[q].size(); ++i) {
      EXPECT_EQ(a->results[q][i].id, s->results[q][i].id);
    }
  }
}

TEST(QueryEngine, ManyContextsSameResultsAsOne) {
  auto f = MakeFixture(3000, 24, 1000.0);
  QueryEngine one(f.index.get(), &f.gen.base, {.num_contexts = 1});
  QueryEngine many(f.index.get(), &f.gen.base, {.num_contexts = 64});
  auto a = one.SearchBatch(f.gen.queries, 3);
  auto b = many.SearchBatch(f.gen.queries, 3);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    ASSERT_EQ(a->results[q].size(), b->results[q].size());
    for (size_t i = 0; i < a->results[q].size(); ++i) {
      EXPECT_EQ(a->results[q][i].id, b->results[q][i].id);
    }
  }
}

TEST(QueryEngine, WorksOnSimulatedSsd) {
  auto f = MakeFixture(2000);
  // Rebuild the index on a simulated cSSD behind SPDK.
  storage::DeviceModel model = storage::GetDeviceModel(storage::DeviceKind::kCssd);
  model.service_time_ns = 5000;  // sped-up cSSD to keep the test quick
  // The registry capacity is 2 TB; ThreadSanitizer cannot reserve
  // multi-TB anonymous mappings, and this 2000-point index needs far
  // less anyway.
  model.capacity_bytes = 4ULL << 30;
  auto ssd = storage::SimulatedDevice::Create(model);
  ASSERT_TRUE(ssd.ok());
  storage::ChargedDevice charged(
      ssd->get(), storage::GetInterfaceSpec(storage::InterfaceKind::kSpdk));
  auto idx = IndexBuilder::Build(f.gen.base, f.params, &charged);
  ASSERT_TRUE(idx.ok());
  QueryEngine engine(idx->get(), &f.gen.base, {.num_contexts = 16});
  auto batch = engine.SearchBatch(f.gen.queries, 1);
  ASSERT_TRUE(batch.ok());
  EXPECT_GT(batch->MeanIos(), 0.0);
  EXPECT_GT(charged.io_cpu_ns(), 0u);
  // Every query got an answer (clustered data, generous ladder).
  for (const auto& r : batch->results) EXPECT_FALSE(r.empty());
}

TEST(QueryEngine, WorksOnStripedDevices) {
  auto f = MakeFixture(2000);
  std::vector<std::unique_ptr<storage::BlockDevice>> children;
  for (int i = 0; i < 4; ++i) {
    auto dev = storage::MemoryDevice::Create(512ULL << 20);
    ASSERT_TRUE(dev.ok());
    children.push_back(std::move(dev.value()));
  }
  auto striped = storage::StripedDevice::Create(std::move(children));
  ASSERT_TRUE(striped.ok());
  auto idx = IndexBuilder::Build(f.gen.base, f.params, striped->get());
  ASSERT_TRUE(idx.ok());
  QueryEngine engine(idx->get(), &f.gen.base);
  auto res = engine.Search(f.gen.base.Row(123), 1);
  ASSERT_TRUE(res.ok());
  ASSERT_FALSE(res->empty());
  EXPECT_EQ((*res)[0].id, 123u);
}

TEST(QueryEngine, SmallBlocksNeedMoreIos) {
  auto f128 = MakeFixture(4000, 24, 4.0, 7, /*block_bytes=*/128);
  auto f4k = MakeFixture(4000, 24, 4.0, 7, /*block_bytes=*/4096);
  QueryEngine e128(f128.index.get(), &f128.gen.base);
  QueryEngine e4k(f4k.index.get(), &f4k.gen.base);
  auto b128 = e128.SearchBatch(f128.gen.queries, 1);
  auto b4k = e4k.SearchBatch(f4k.gen.queries, 1);
  ASSERT_TRUE(b128.ok());
  ASSERT_TRUE(b4k.ok());
  EXPECT_GT(b128->MeanIos(), b4k->MeanIos());
}

TEST(QueryEngine, RejectsBadQueries) {
  auto f = MakeFixture(1000);
  QueryEngine engine(f.index.get(), &f.gen.base);
  data::Dataset wrong("w", 7);
  EXPECT_FALSE(engine.SearchBatch(wrong, 1).ok());
  EXPECT_FALSE(engine.SearchBatch(f.gen.queries, 0).ok());
}

TEST(QueryEngine, AccuracyAgainstGroundTruth) {
  auto f = MakeFixture(6000);
  const auto gt = data::GroundTruth::Compute(f.gen.base, f.gen.queries, 1, 1);
  QueryEngine engine(f.index.get(), &f.gen.base);
  auto batch = engine.SearchBatch(f.gen.queries, 1);
  ASSERT_TRUE(batch.ok());
  const double ratio = data::MeanOverallRatio(gt, batch->results, 1);
  EXPECT_LT(ratio, 1.5);
}

// Block-size sweep: identical result sets regardless of B (the paper's
// observation that block size affects I/O count, never correctness).
class BlockSizeSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BlockSizeSweep, ResultsIndependentOfBlockSize) {
  auto base_f = MakeFixture(2500, 24, 1000.0, 5, 512);
  auto f = MakeFixture(2500, 24, 1000.0, 5, GetParam());
  QueryEngine a(base_f.index.get(), &base_f.gen.base);
  QueryEngine b(f.index.get(), &f.gen.base);
  auto ra = a.SearchBatch(base_f.gen.queries, 3);
  auto rb = b.SearchBatch(f.gen.queries, 3);
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  for (uint64_t q = 0; q < base_f.gen.queries.n(); ++q) {
    ASSERT_EQ(ra->results[q].size(), rb->results[q].size());
    for (size_t i = 0; i < ra->results[q].size(); ++i) {
      EXPECT_EQ(ra->results[q][i].id, rb->results[q][i].id);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Blocks, BlockSizeSweep,
                         ::testing::Values(128, 256, 1024, 4096));

}  // namespace
}  // namespace e2lshos::core
