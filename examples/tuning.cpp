// Parameter tuning guide: how the three E2LSH(oS) knobs trade accuracy,
// speed, and index size on a GLOVE-like workload (paper Sec. 3.3):
//
//   * rho   — index-size exponent: L = n^rho tables per radius. Fixed per
//             dataset; more tables = better accuracy ceiling, bigger index.
//   * gamma — scales m (hashes per compound). Changes selectivity without
//             changing the index entry count.
//   * s_factor — the per-radius candidate cap S = s_factor * L. The pure
//             query-time knob: no rebuild needed
//             (Index::SetCandidateCapFactor).
//
// Every run goes through e2lshos::Index on a "mem:" device URI — the
// DRAM-backed, zero-latency limit, so the timings isolate CPU cost.
//
//   ./examples/tuning
#include <cstdio>

#include "api/index.h"
#include "data/ground_truth.h"
#include "data/registry.h"

using namespace e2lshos;

namespace {

struct RunResult {
  double ratio;
  double us_per_query;
  double ios;
  uint64_t index_mb;
  uint32_t m;
  uint32_t L;
};

RunResult RunWith(const data::GeneratedData& gen, const data::GroundTruth& gt,
                  const lsh::E2lshConfig& cfg) {
  RunResult r{0, 0, 0, 0, 0, 0};
  IndexSpec spec;
  spec.lsh = cfg;
  spec.device_uri = "mem:";
  spec.device_capacity = 4ULL << 30;
  auto index = Index::Build(spec, gen.base);  // copy: the sweep reuses gen
  if (!index.ok()) return r;
  auto batch = (*index)->SearchBatch(gen.queries, 10);
  if (!batch.ok()) return r;
  r.ratio = data::MeanOverallRatio(gt, batch->results, 10);
  r.us_per_query = static_cast<double>(batch->wall_ns) / gen.queries.n() / 1e3;
  r.ios = batch->MeanIos();
  r.index_mb = (*index)->sizes().storage_bytes >> 20;
  r.m = (*index)->params().m;
  r.L = (*index)->params().L;
  return r;
}

}  // namespace

int main() {
  auto spec = data::GetDatasetSpec("GLOVE");
  if (!spec.ok()) return 1;
  auto gen = data::MakeDataset(*spec, 20000, 100);
  const auto gt = data::GroundTruth::Compute(gen.base, gen.queries, 10);

  lsh::E2lshConfig base_cfg = spec->lsh;

  std::printf("GLOVE-like, n=20000, top-10; baseline rho=%.3f gamma=%.2f "
              "s_factor=%.1f\n\n",
              base_cfg.rho, base_cfg.gamma, base_cfg.s_factor);

  std::printf("--- rho (index size exponent; L = n^rho) ---\n");
  std::printf("%8s %8s %8s %12s %8s %10s\n", "rho", "L", "ratio", "us/query",
              "I/Os", "index MB");
  for (const double rho : {0.15, 0.20, 0.25, 0.30}) {
    lsh::E2lshConfig cfg = base_cfg;
    cfg.rho = rho;
    const auto r = RunWith(gen, gt, cfg);
    std::printf("%8.2f %8u %8.3f %12.1f %8.1f %10llu\n", rho, r.L, r.ratio,
                r.us_per_query, r.ios,
                static_cast<unsigned long long>(r.index_mb));
  }

  std::printf("\n--- gamma (hash selectivity; m = gamma * log_{1/p2} n) ---\n");
  std::printf("%8s %8s %8s %12s %8s %10s\n", "gamma", "m", "ratio", "us/query",
              "I/Os", "index MB");
  for (const double gamma : {0.7, 0.85, 1.0, 1.2, 1.4}) {
    lsh::E2lshConfig cfg = base_cfg;
    cfg.gamma = gamma;
    const auto r = RunWith(gen, gt, cfg);
    std::printf("%8.2f %8u %8.3f %12.1f %8.1f %10llu\n", gamma, r.m, r.ratio,
                r.us_per_query, r.ios,
                static_cast<unsigned long long>(r.index_mb));
  }

  std::printf("\n--- s_factor (candidate cap; query-time only) ---\n");
  std::printf("%8s %8s %8s %12s %8s\n", "s", "S", "ratio", "us/query", "I/Os");
  {
    // One build; the cap is re-tuned on the live index between sweeps.
    IndexSpec build_spec;
    build_spec.lsh = base_cfg;
    build_spec.device_uri = "mem:";
    build_spec.device_capacity = 4ULL << 30;
    auto index = Index::Build(build_spec, gen.base);
    if (index.ok()) {
      for (const double s : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
        if (!(*index)->SetCandidateCapFactor(s).ok()) continue;
        auto batch = (*index)->SearchBatch(gen.queries, 10);
        if (!batch.ok()) continue;
        std::printf("%8.1f %8llu %8.3f %12.1f %8.1f\n", s,
                    static_cast<unsigned long long>((*index)->params().S),
                    data::MeanOverallRatio(gt, batch->results, 10),
                    static_cast<double>(batch->wall_ns) / gen.queries.n() / 1e3,
                    batch->MeanIos());
      }
    }
  }
  std::printf(
      "\nRules of thumb (paper Sec. 3.3): pick rho for the accuracy range "
      "(index\nsize cost), trim with gamma (free), then sweep s_factor at "
      "query time.\n");
  return 0;
}
