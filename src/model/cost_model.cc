#include "model/cost_model.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace e2lshos::model {

double SyncQueryTimeNs(const CostInputs& in) {
  return in.t_compute_ns + in.n_io * (in.t_request_ns + in.t_read_ns);
}

double AsyncQueryTimeNs(const CostInputs& in) {
  return std::max(in.t_compute_ns + in.n_io * in.t_request_ns,
                  in.n_io * in.t_read_ns);
}

double RequiredIopsSync(double n_io, double t_target_ns, double t_compute_ns) {
  const double budget = t_target_ns - t_compute_ns;
  if (budget <= 0.0) return std::numeric_limits<double>::infinity();
  return n_io * 1e9 / budget;
}

double RequiredIopsAsync(double n_io, double t_target_ns) {
  if (t_target_ns <= 0.0) return std::numeric_limits<double>::infinity();
  return n_io * 1e9 / t_target_ns;
}

double RequiredRequestIops(double n_io, double t_target_ns, double t_compute_ns) {
  const double budget = t_target_ns - t_compute_ns;
  if (budget <= 0.0) return std::numeric_limits<double>::infinity();
  return n_io * 1e9 / budget;
}

double RequiredRequestIopsInMemory(double n_io, double t_e2lsh_ns,
                                   double stall_factor) {
  // T_target = T_E2LSH, T_compute = stall_factor * T_E2LSH:
  //   1/T_request >= N_IO / ((1 - stall_factor) * T_E2LSH).
  const double budget = (1.0 - stall_factor) * t_e2lsh_ns;
  if (budget <= 0.0) return std::numeric_limits<double>::infinity();
  return n_io * 1e9 / budget;
}

double IoCountForBlockSize(const std::vector<uint32_t>& bucket_read_sizes,
                           uint32_t objects_per_io, uint64_t num_queries) {
  if (num_queries == 0 || objects_per_io == 0) return 0.0;
  uint64_t ios = 0;
  for (const uint32_t entries : bucket_read_sizes) {
    const uint64_t bucket_ios =
        (static_cast<uint64_t>(entries) + objects_per_io - 1) / objects_per_io;
    ios += 1 + std::max<uint64_t>(1, bucket_ios);  // table read + >=1 block
  }
  return static_cast<double>(ios) / static_cast<double>(num_queries);
}

double IoCountInfiniteBlock(uint64_t buckets_probed, uint64_t num_queries) {
  if (num_queries == 0) return 0.0;
  return 2.0 * static_cast<double>(buckets_probed) /
         static_cast<double>(num_queries);
}

}  // namespace e2lshos::model
