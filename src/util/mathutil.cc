#include "util/mathutil.h"

#include <limits>

namespace e2lshos::util {

double NormalQuantile(double p) {
  // Peter Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  static const double p_low = 0.02425;
  static const double p_high = 1.0 - p_low;

  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();

  double q, r;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

namespace {

// Series expansion of P(a, x), valid for x < a + 1.
double GammaPSeries(double a, double x) {
  const double gln = std::lgamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::abs(del) < std::abs(sum) * 1e-14) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Continued fraction for Q(a, x) = 1 - P(a, x), valid for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double gln = std::lgamma(a);
  const double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-14) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double RegularizedGammaP(double a, double x) {
  if (x <= 0.0 || a <= 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

}  // namespace e2lshos::util
