// Quickstart: build an E2LSHoS index for a small synthetic dataset on a
// simulated consumer SSD and answer a few top-5 queries.
//
//   ./examples/quickstart
//
// Walks through the full public API surface: dataset generation, E2LSH
// parameter derivation, device setup, index construction, and the
// asynchronous query engine.
#include <cstdio>

#include "core/builder.h"
#include "core/query_engine.h"
#include "data/generators.h"
#include "lsh/params.h"
#include "storage/device_registry.h"
#include "storage/interface_model.h"

using namespace e2lshos;

int main() {
  // 1. Make a dataset: 20k clustered points in 64 dimensions, plus 5
  //    held-out queries drawn from the same distribution.
  data::GeneratorSpec gen_spec;
  gen_spec.kind = data::GeneratorKind::kClustered;
  gen_spec.dim = 64;
  gen_spec.num_clusters = 32;
  gen_spec.cluster_std = 0.27;    // NN distances land near 3
  gen_spec.center_spread = 3.0;
  gen_spec.seed = 42;
  auto gen = data::Generate("quickstart", 20000, 5, gen_spec);
  std::printf("dataset: %llu points, dim %u\n",
              static_cast<unsigned long long>(gen.base.n()), gen.base.dim());

  // 2. Derive E2LSH parameters: approximation ratio c=2, index-size
  //    exponent rho=0.25 (L = n^rho compound hashes per radius).
  lsh::E2lshConfig cfg;
  cfg.c = 2.0;
  cfg.rho = 0.25;
  cfg.s_factor = 4.0;
  cfg.x_max = gen.base.XMax();
  auto params = lsh::ComputeParams(gen.base.n(), gen.base.dim(), cfg);
  if (!params.ok()) {
    std::fprintf(stderr, "params: %s\n", params.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "params: m=%u hashes/compound, L=%u compounds, S=%llu cap, %u radii\n",
      params->m, params->L, static_cast<unsigned long long>(params->S),
      params->num_radii());

  // 3. Storage: a simulated consumer NVMe SSD accessed through the
  //    io_uring cost model. Swap in FileDevice to use a real disk.
  auto ssd = storage::MakeDevice(storage::DeviceKind::kCssd);
  if (!ssd.ok()) return 1;
  storage::ChargedDevice device(
      ssd->get(), storage::GetInterfaceSpec(storage::InterfaceKind::kIoUring));

  // 4. Build the on-storage index: hash tables + 512-byte bucket chains.
  auto index = core::IndexBuilder::Build(gen.base, *params, &device);
  if (!index.ok()) {
    std::fprintf(stderr, "build: %s\n", index.status().ToString().c_str());
    return 1;
  }
  const auto sizes = (*index)->sizes();
  std::printf("index: %.1f MB on storage, %.1f KB resident in DRAM\n",
              static_cast<double>(sizes.storage_bytes) / (1 << 20),
              static_cast<double>(sizes.dram_index_bytes) / (1 << 10));

  // 5. Query: asynchronous engine with interleaved contexts.
  core::QueryEngine engine(index->get(), &gen.base);
  for (uint64_t q = 0; q < gen.queries.n(); ++q) {
    core::QueryStats stats;
    auto result = engine.Search(gen.queries.Row(q), 5, &stats);
    if (!result.ok()) continue;
    std::printf("query %llu: %u radii, %llu I/Os ->",
                static_cast<unsigned long long>(q), stats.radii_searched,
                static_cast<unsigned long long>(stats.ios));
    for (const auto& nb : *result) {
      std::printf(" (id %u, d=%.3f)", nb.id, nb.dist);
    }
    std::printf("\n");
  }
  return 0;
}
