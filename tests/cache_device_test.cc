// CacheDevice tests: the transparent DRAM read cache layer.
//
//   * Counter unit tests: hit/miss/eviction/bytes_cached accounting,
//     write-through coherence, oversized-read bypass, and the alignment/
//     range contract mirroring the inner device.
//   * ResetStats propagation (the PR's audit): parent reset is one full
//     reset — its lane, every live queue, the eviction counter, and the
//     inner device, exactly once, even when the inner device is a
//     StripedDevice fanning out to shared children; per-queue reset
//     stays queue-local; cache *contents* survive every reset.
//   * Parity: query results over a cached device are bit-identical to
//     the bare device — cold cache, warm cache, and a cache under heavy
//     eviction pressure — across mem:/sim:cssd*4/file:/uring: backends
//     at 1 and 4 shards.
//   * Concurrency hammer: one thread per native cache queue plus a
//     writer exercising the write-epoch path (run under TSan in CI).
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/builder.h"
#include "core/sharded_engine.h"
#include "data/generators.h"
#include "storage/cache_device.h"
#include "storage/file_device.h"
#include "storage/memory_device.h"
#include "storage/multi_queue.h"
#include "storage/simulated_device.h"
#include "storage/striped_device.h"
#include "storage/uring_device.h"
#include "util/aligned_buffer.h"

namespace e2lshos::storage {
namespace {

constexpr uint64_t kCapacity = 1 << 20;

// Stamp sector `s` of `dev` with byte value ('A' + s) % 256.
void StampSectors(BlockDevice* dev, uint64_t count) {
  std::vector<uint8_t> sector(kSectorBytes);
  for (uint64_t s = 0; s < count; ++s) {
    std::memset(sector.data(), static_cast<int>(('A' + s) & 0xFF),
                sector.size());
    ASSERT_TRUE(dev->Write(s * kSectorBytes, sector.data(), sector.size()).ok());
  }
}

// One synchronous read through the async API; returns the completion.
IoCompletion ReadOne(BlockDevice* dev, uint64_t offset, uint32_t length,
                     void* buf, uint64_t user_data = 7) {
  IoCompletion comp;
  comp.code = StatusCode::kInternal;
  Status s = dev->SubmitRead({offset, length, buf, user_data});
  EXPECT_TRUE(s.ok()) << s.message();
  if (!s.ok()) return comp;
  size_t got = 0;
  for (int spin = 0; spin < 2000000 && got == 0; ++spin) {
    got = dev->PollCompletions(&comp, 1);
  }
  EXPECT_EQ(got, 1u);
  return comp;
}

// ---------------------------------------------------------------------------
// Counter unit tests.
// ---------------------------------------------------------------------------

TEST(CacheCounters, MissThenHitThenEviction) {
  auto mem = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(mem.ok());
  StampSectors(mem->get(), 8);

  CacheDevice::Options copt;
  copt.capacity_bytes = 4 * kSectorBytes;  // 4 cache blocks
  copt.shards = 1;                         // deterministic CLOCK sweep
  auto cache = CacheDevice::Wrap(mem->get(), copt);
  ASSERT_TRUE(cache.ok());
  EXPECT_EQ((*cache)->cache_block_bytes(), kSectorBytes);

  util::AlignedBuffer buf(kSectorBytes);
  // First touch: a miss that fills the block.
  ReadOne(cache->get(), 0, kSectorBytes, buf.data());
  EXPECT_EQ(buf.data()[0], 'A');
  DeviceStats st = (*cache)->stats();
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.cache_hits, 0u);
  EXPECT_EQ(st.bytes_cached, kSectorBytes);

  // Second touch: served from DRAM with zero latency.
  const IoCompletion hit = ReadOne(cache->get(), 0, kSectorBytes, buf.data());
  EXPECT_EQ(hit.latency_ns, 0u);
  EXPECT_EQ(buf.data()[0], 'A');
  st = (*cache)->stats();
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.reads_completed, 2u);

  // 4 more distinct blocks through a 4-slot cache: at least one eviction,
  // and the cache stays full, never over budget.
  for (uint64_t s = 1; s <= 4; ++s) {
    ReadOne(cache->get(), s * kSectorBytes, kSectorBytes, buf.data());
    EXPECT_EQ(buf.data()[0], static_cast<uint8_t>('A' + s));
  }
  st = (*cache)->stats();
  EXPECT_GE(st.cache_evictions, 1u);
  EXPECT_EQ(st.bytes_cached, 4 * kSectorBytes);
}

TEST(CacheCounters, WriteThroughPatchesResidentBlocks) {
  auto mem = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(mem.ok());
  StampSectors(mem->get(), 2);

  CacheDevice::Options copt;
  copt.capacity_bytes = 8 * kSectorBytes;
  auto cache = CacheDevice::Wrap(mem->get(), copt);
  ASSERT_TRUE(cache.ok());

  util::AlignedBuffer buf(kSectorBytes);
  ReadOne(cache->get(), 0, kSectorBytes, buf.data());  // fill block 0

  // Write through the cache: inner bytes and the resident copy must both
  // change, and the next read must be a *hit* that returns the new data.
  std::vector<uint8_t> fresh(kSectorBytes, 0x5A);
  ASSERT_TRUE((*cache)->Write(0, fresh.data(), fresh.size()).ok());

  std::vector<uint8_t> inner_now(kSectorBytes);
  ASSERT_TRUE(mem->get()->ReadSync(0, inner_now.data(), kSectorBytes).ok());
  EXPECT_EQ(inner_now[0], 0x5A);

  const uint64_t hits_before = (*cache)->stats().cache_hits;
  ReadOne(cache->get(), 0, kSectorBytes, buf.data());
  EXPECT_EQ(buf.data()[0], 0x5A);
  EXPECT_EQ((*cache)->stats().cache_hits, hits_before + 1);
}

TEST(CacheCounters, OversizedReadsBypassTheCache) {
  auto mem = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(mem.ok());
  StampSectors(mem->get(), 8);

  CacheDevice::Options copt;
  copt.capacity_bytes = 8 * kSectorBytes;
  copt.max_cached_read_blocks = 2;
  auto cache = CacheDevice::Wrap(mem->get(), copt);
  ASSERT_TRUE(cache.ok());

  // 3 blocks > the 2-block cap: forwarded verbatim, nothing inserted.
  util::AlignedBuffer big(3 * kSectorBytes);
  ReadOne(cache->get(), 0, 3 * kSectorBytes, big.data());
  EXPECT_EQ(big.data()[0], 'A');
  EXPECT_EQ(big.data()[2 * kSectorBytes], 'C');
  DeviceStats st = (*cache)->stats();
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.bytes_cached, 0u);

  // The bypass inserted nothing, so a small read of the same range still
  // misses (and now fills).
  util::AlignedBuffer buf(kSectorBytes);
  ReadOne(cache->get(), 0, kSectorBytes, buf.data());
  st = (*cache)->stats();
  EXPECT_EQ(st.cache_misses, 2u);
  EXPECT_EQ(st.bytes_cached, kSectorBytes);
}

TEST(CacheCounters, RejectsWhatTheInnerDeviceWouldReject) {
  auto mem = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(mem.ok());
  CacheDevice::Options copt;
  copt.capacity_bytes = 8 * kSectorBytes;
  auto cache = CacheDevice::Wrap(mem->get(), copt);
  ASSERT_TRUE(cache.ok());

  util::AlignedBuffer buf(kSectorBytes);
  EXPECT_EQ((*cache)->SubmitRead({0, kSectorBytes, nullptr, 0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((*cache)->SubmitRead({0, 0, buf.data(), 0}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      (*cache)->SubmitRead({kCapacity, kSectorBytes, buf.data(), 0}).code(),
      StatusCode::kOutOfRange);
}

TEST(CacheCounters, CreateValidatesCapacity) {
  auto mem = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(mem.ok());
  CacheDevice::Options copt;
  copt.capacity_bytes = kSectorBytes - 1;  // below one cache block
  EXPECT_FALSE(CacheDevice::Wrap(mem->get(), copt).ok());
  copt.capacity_bytes = kSectorBytes;
  copt.max_cached_read_blocks = 0;
  EXPECT_FALSE(CacheDevice::Wrap(mem->get(), copt).ok());
}

// ---------------------------------------------------------------------------
// ResetStats propagation (the satellite audit): one full reset from the
// parent, queue-local resets from queues, no double-reset of shared
// children, and exact re-aggregation afterwards.
// ---------------------------------------------------------------------------

TEST(CacheResetStats, ParentResetIsOneFullReset) {
  auto mem = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(mem.ok());
  StampSectors(mem->get(), 8);
  CacheDevice::Options copt;
  copt.capacity_bytes = 8 * kSectorBytes;
  auto cache = CacheDevice::Wrap(mem->get(), copt);
  ASSERT_TRUE(cache.ok());
  ASSERT_NE((*cache)->multi_queue(), nullptr);
  auto q0 = (*cache)->CreateQueue({});
  auto q1 = (*cache)->CreateQueue({});
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(q1.ok());

  util::AlignedBuffer buf(kSectorBytes);
  ReadOne(cache->get(), 0, kSectorBytes, buf.data());       // parent miss
  ReadOne(q0->get(), kSectorBytes, kSectorBytes, buf.data());  // q0 miss
  ReadOne(q0->get(), kSectorBytes, kSectorBytes, buf.data());  // q0 hit
  ReadOne(q1->get(), 2 * kSectorBytes, kSectorBytes, buf.data());  // q1 miss

  DeviceStats st = (*cache)->stats();
  EXPECT_EQ(st.cache_misses, 3u);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.reads_completed, 4u);

  // One parent reset: lane, both live queues, the inner device — all
  // zeroed together; the cache *contents* survive (bytes_cached gauge).
  (*cache)->ResetStats();
  st = (*cache)->stats();
  EXPECT_EQ(st.cache_misses, 0u);
  EXPECT_EQ(st.cache_hits, 0u);
  EXPECT_EQ(st.cache_evictions, 0u);
  EXPECT_EQ(st.reads_completed, 0u);
  EXPECT_EQ(st.bytes_cached, 3 * kSectorBytes);
  EXPECT_EQ((*q0)->stats().reads_completed, 0u);
  EXPECT_EQ(mem->get()->stats().reads_completed, 0u);

  // Post-reset traffic re-aggregates exactly once: one hit on a block
  // cached before the reset proves contents survived, counted once.
  ReadOne(q1->get(), 0, kSectorBytes, buf.data());
  EXPECT_EQ(buf.data()[0], 'A');
  st = (*cache)->stats();
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.cache_misses, 0u);
  EXPECT_EQ(st.reads_completed, 1u);
}

TEST(CacheResetStats, QueueResetStaysQueueLocal) {
  auto mem = MemoryDevice::Create(kCapacity);
  ASSERT_TRUE(mem.ok());
  StampSectors(mem->get(), 8);
  CacheDevice::Options copt;
  copt.capacity_bytes = 8 * kSectorBytes;
  auto cache = CacheDevice::Wrap(mem->get(), copt);
  ASSERT_TRUE(cache.ok());
  auto q0 = (*cache)->CreateQueue({});
  ASSERT_TRUE(q0.ok());

  util::AlignedBuffer buf(kSectorBytes);
  ReadOne(cache->get(), 0, kSectorBytes, buf.data());          // parent miss
  ReadOne(q0->get(), kSectorBytes, kSectorBytes, buf.data());  // q0 miss

  (*q0)->ResetStats();
  EXPECT_EQ((*q0)->stats().reads_completed, 0u);
  // The parent lane's own traffic is untouched; only the queue's
  // contribution left the aggregate.
  DeviceStats st = (*cache)->stats();
  EXPECT_EQ(st.cache_misses, 1u);
  EXPECT_EQ(st.reads_completed, 1u);
  // The inner device was NOT reset by the queue-local reset.
  EXPECT_EQ(mem->get()->stats().reads_completed, 2u);
}

TEST(CacheResetStats, StripedChildrenResetOnceAndReaggregateExactly) {
  std::vector<std::unique_ptr<BlockDevice>> children;
  for (int i = 0; i < 4; ++i) {
    auto child = MemoryDevice::Create(kCapacity);
    ASSERT_TRUE(child.ok());
    children.push_back(std::move(child).value());
  }
  auto striped = StripedDevice::Create(std::move(children));
  ASSERT_TRUE(striped.ok());
  const uint64_t cap = (*striped)->capacity();
  StampSectors(striped->get(), 16);

  CacheDevice::Options copt;
  copt.capacity_bytes = 8 * kSectorBytes;
  auto cache = CacheDevice::Create(std::move(striped).value(), copt);
  ASSERT_TRUE(cache.ok());
  ASSERT_EQ((*cache)->capacity(), cap);
  auto q0 = (*cache)->CreateQueue({});
  auto q1 = (*cache)->CreateQueue({});
  ASSERT_TRUE(q0.ok());
  ASSERT_TRUE(q1.ok());

  util::AlignedBuffer buf(kSectorBytes);
  for (uint64_t s = 0; s < 4; ++s) {
    ReadOne(q0->get(), s * kSectorBytes, kSectorBytes, buf.data());
  }
  ReadOne(q1->get(), 0, kSectorBytes, buf.data());  // hit

  (*cache)->ResetStats();
  DeviceStats st = (*cache)->stats();
  EXPECT_EQ(st.cache_hits, 0u);
  EXPECT_EQ(st.cache_misses, 0u);
  EXPECT_EQ(st.reads_completed, 0u);
  EXPECT_EQ((*cache)->inner()->stats().reads_completed, 0u);

  // Fresh traffic after the reset: 2 misses + 1 hit, each counted
  // exactly once at the cache level, and exactly the 2 misses visible at
  // the striped inner device (hits never reach it).
  ReadOne(q0->get(), 8 * kSectorBytes, kSectorBytes, buf.data());
  ReadOne(q1->get(), 9 * kSectorBytes, kSectorBytes, buf.data());
  ReadOne(q1->get(), 8 * kSectorBytes, kSectorBytes, buf.data());
  st = (*cache)->stats();
  EXPECT_EQ(st.cache_misses, 2u);
  EXPECT_EQ(st.cache_hits, 1u);
  EXPECT_EQ(st.reads_completed, 3u);
  EXPECT_EQ((*cache)->inner()->stats().reads_completed, 2u);
}

// ---------------------------------------------------------------------------
// Parity: cached vs bare answers, bit for bit. s_factor is high enough
// that the candidate cap never binds, so results are deterministic.
// ---------------------------------------------------------------------------

struct ParityFixture {
  data::GeneratedData gen;
  lsh::E2lshParams params;
};

ParityFixture MakeParityFixture() {
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = 24;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(48.0);
  spec.center_spread = 10.0 * std::sqrt(6.0 / 24.0);
  spec.seed = 11;
  auto gen = data::Generate("parity", 2000, 24, spec);

  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = 1000.0;  // cap never binds -> deterministic results
  cfg.x_max = gen.base.XMax();
  auto params = lsh::ComputeParams(gen.base.n(), gen.base.dim(), cfg);
  EXPECT_TRUE(params.ok());
  return {std::move(gen), std::move(params).value()};
}

void ExpectBatchesIdentical(const core::BatchResult& a,
                            const core::BatchResult& b, const std::string& what) {
  ASSERT_EQ(a.results.size(), b.results.size()) << what;
  for (size_t q = 0; q < a.results.size(); ++q) {
    ASSERT_EQ(a.results[q].size(), b.results[q].size())
        << what << " query " << q;
    for (size_t i = 0; i < a.results[q].size(); ++i) {
      EXPECT_EQ(a.results[q][i].id, b.results[q][i].id)
          << what << " query " << q << " rank " << i;
      EXPECT_EQ(a.results[q][i].dist, b.results[q][i].dist)
          << what << " query " << q << " rank " << i;
    }
  }
}

void RunCacheParity(BlockDevice* dev, const ParityFixture& fx,
                    const char* what) {
  auto idx = core::IndexBuilder::Build(fx.gen.base, fx.params, dev);
  ASSERT_TRUE(idx.ok()) << what << ": " << idx.status().message();

  CacheDevice::Options copt;
  copt.capacity_bytes = 32ULL << 20;  // comfortably holds the whole index
  copt.shards = 4;
  auto cache = CacheDevice::Wrap(dev, copt);
  ASSERT_TRUE(cache.ok()) << what;
  auto cached_view = (*idx)->WithDevice(cache->get());

  for (uint32_t shards : {1u, 4u}) {
    core::ShardOptions opts;
    opts.num_shards = shards;
    opts.total_contexts = 8 * shards;
    opts.total_inflight_ios = 64 * shards;
    // Force the queue layer even at 1 shard (the degenerate direct path
    // would bypass it and prove nothing).
    opts.wrap_shard_device =
        [](std::unique_ptr<storage::BlockDevice> q) { return q; };

    core::ShardedQueryEngine bare_engine(idx->get(), &fx.gen.base, opts);
    auto bare = bare_engine.SearchBatch(fx.gen.queries, 5);
    ASSERT_TRUE(bare.ok()) << what;

    const std::string tag =
        std::string(what) + " shards=" + std::to_string(shards);
    // Cold pass fills the cache; the warm pass answers mostly from DRAM.
    // Both must be bit-identical to the bare device.
    core::ShardedQueryEngine cold_engine(cached_view.get(), &fx.gen.base,
                                         opts);
    auto cold = cold_engine.SearchBatch(fx.gen.queries, 5);
    ASSERT_TRUE(cold.ok()) << what;
    ExpectBatchesIdentical(*bare, *cold, tag + " cold");

    core::ShardedQueryEngine warm_engine(cached_view.get(), &fx.gen.base,
                                         opts);
    auto warm = warm_engine.SearchBatch(fx.gen.queries, 5);
    ASSERT_TRUE(warm.ok()) << what;
    ExpectBatchesIdentical(*bare, *warm, tag + " warm");

    // Sampled while the warm engine's queues are live: per-queue lane
    // stats leave the parent aggregate when their queue is destroyed.
    EXPECT_GT((*cache)->stats().cache_hits, 0u) << tag;
  }
}

TEST(CacheParity, MemoryDevice) {
  ParityFixture fx = MakeParityFixture();
  auto dev = MemoryDevice::Create(256 << 20);
  ASSERT_TRUE(dev.ok());
  RunCacheParity(dev->get(), fx, "mem:");
}

TEST(CacheParity, StripedSimulatedCssd) {
  ParityFixture fx = MakeParityFixture();
  // Fast calibration (not Table 2) so the suite stays quick.
  DeviceModel model{"cssd-fast", 16, 2000, 4096, 256ULL << 20};
  std::vector<std::unique_ptr<BlockDevice>> children;
  for (int i = 0; i < 4; ++i) {
    auto child = SimulatedDevice::Create(model);
    ASSERT_TRUE(child.ok());
    children.push_back(std::move(child).value());
  }
  auto striped = StripedDevice::Create(std::move(children));
  ASSERT_TRUE(striped.ok());
  RunCacheParity(striped->get(), fx, "sim:cssd*4");
}

TEST(CacheParity, FileDevice) {
  ParityFixture fx = MakeParityFixture();
  const std::string path = ::testing::TempDir() + "/e2_cache_parity_file.bin";
  FileDevice::Options opt;
  opt.capacity = 256 << 20;
  auto dev = FileDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  RunCacheParity(dev->get(), fx, "file:");
  dev->reset();
  std::remove(path.c_str());
}

TEST(CacheParity, UringDevice) {
  if (!UringDevice::Available()) {
    GTEST_SKIP() << "io_uring unavailable on this host";
  }
  ParityFixture fx = MakeParityFixture();
  const std::string path = ::testing::TempDir() + "/e2_cache_parity_uring.bin";
  UringDevice::Options opt;
  opt.capacity = 256 << 20;
  auto dev = UringDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  RunCacheParity(dev->get(), fx, "uring:");
  dev->reset();
  std::remove(path.c_str());
}

TEST(CacheParity, EvictionPressureKeepsAnswersIdentical) {
  ParityFixture fx = MakeParityFixture();
  auto dev = MemoryDevice::Create(256 << 20);
  ASSERT_TRUE(dev.ok());
  auto idx = core::IndexBuilder::Build(fx.gen.base, fx.params, dev->get());
  ASSERT_TRUE(idx.ok());

  core::ShardOptions opts;
  opts.num_shards = 2;
  opts.total_contexts = 16;
  opts.total_inflight_ios = 128;
  core::ShardedQueryEngine bare_engine(idx->get(), &fx.gen.base, opts);
  auto bare = bare_engine.SearchBatch(fx.gen.queries, 5);
  ASSERT_TRUE(bare.ok());

  // A cache of 64 blocks against a multi-MB index: constant eviction
  // churn, yet every answer must stay bit-identical.
  CacheDevice::Options copt;
  copt.capacity_bytes = 64 * kSectorBytes;
  copt.shards = 4;
  auto cache = CacheDevice::Wrap(dev->get(), copt);
  ASSERT_TRUE(cache.ok());
  auto cached_view = (*idx)->WithDevice(cache->get());
  core::ShardedQueryEngine cached_engine(cached_view.get(), &fx.gen.base,
                                         opts);
  auto cached = cached_engine.SearchBatch(fx.gen.queries, 5);
  ASSERT_TRUE(cached.ok());
  ExpectBatchesIdentical(*bare, *cached, "eviction-pressure");

  const DeviceStats st = (*cache)->stats();
  EXPECT_GT(st.cache_evictions, 0u);
  EXPECT_LE(st.bytes_cached, copt.capacity_bytes);
}

// ---------------------------------------------------------------------------
// Concurrency hammer: one thread per native cache queue re-reading a
// small sector set (heavy hit traffic on the shared store) while a
// writer rewrites the same bytes through the write-through path (epoch
// bumps + resident patches). TSan verifies the locking story.
// ---------------------------------------------------------------------------

TEST(CacheHammer, QueuesAndWriterUnderTsan) {
  auto mem = MemoryDevice::Create(kCapacity, /*queue_capacity=*/8192);
  ASSERT_TRUE(mem.ok());
  BlockDevice* dev = mem->get();
  const uint64_t sectors = dev->capacity() / kSectorBytes;
  StampSectors(dev, sectors);

  CacheDevice::Options copt;
  copt.capacity_bytes = 256 * kSectorBytes;  // smaller than the device
  copt.shards = 4;
  auto cache = CacheDevice::Wrap(dev, copt);
  ASSERT_TRUE(cache.ok());

  constexpr uint32_t kQueues = 4;
  constexpr int kReadsPerQueue = 500;
  QueueSet qs = AcquireQueues(cache->get(), kQueues);
  ASSERT_TRUE(qs.native);

  std::atomic<int> failures{0};
  std::atomic<bool> stop{false};
  // Writer: rewrites sectors with the bytes they already hold, so every
  // read stays verifiable while the epoch/patch machinery runs hot.
  std::thread writer([&] {
    std::vector<uint8_t> sector(kSectorBytes);
    uint64_t s = 0;
    while (!stop.load(std::memory_order_acquire)) {
      std::memset(sector.data(), static_cast<int>(('A' + s) & 0xFF),
                  sector.size());
      if (!cache->get()->Write(s * kSectorBytes, sector.data(),
                               sector.size()).ok()) {
        failures.fetch_add(1, std::memory_order_relaxed);
      }
      s = (s + 7) % sectors;
    }
  });

  std::vector<std::thread> threads;
  threads.reserve(kQueues);
  for (uint32_t t = 0; t < kQueues; ++t) {
    threads.emplace_back([&, t] {
      BlockDevice* q = qs.queues[t].get();
      util::AlignedBuffer buf(kSectorBytes, kSectorBytes);
      IoCompletion comp;
      for (int r = 0; r < kReadsPerQueue; ++r) {
        // A 128-sector working set over a 256-block cache: mostly hits,
        // with misses and evictions mixed in across threads.
        const uint64_t s = (t * 131 + r * 17) % 128;
        if (!q->SubmitRead({s * kSectorBytes, kSectorBytes, buf.data(), s})
                 .ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        size_t got = 0;
        // Yield while polling (see multi_queue_test's hammer): a tight
        // spin from every thread can starve I/O threads under ctest -j.
        for (int spin = 0; spin < 2000000 && got == 0; ++spin) {
          got = q->PollCompletions(&comp, 1);
          if (got == 0 && (spin & 0x3FF) == 0x3FF) std::this_thread::yield();
        }
        if (got != 1 || comp.user_data != s ||
            comp.code != StatusCode::kOk ||
            buf.data()[0] != static_cast<uint8_t>(('A' + s) & 0xFF)) {
          failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  stop.store(true, std::memory_order_release);
  writer.join();
  EXPECT_EQ(failures.load(), 0);

  const DeviceStats st = (*cache)->stats();
  EXPECT_EQ(st.reads_completed,
            static_cast<uint64_t>(kQueues) * kReadsPerQueue);
  EXPECT_GT(st.cache_hits, 0u);
}

}  // namespace
}  // namespace e2lshos::storage
