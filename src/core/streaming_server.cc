#include "core/streaming_server.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "util/clock.h"

namespace e2lshos::core {

StreamingServer::StreamingServer(ShardedQueryEngine* engine,
                                 const ServerOptions& options)
    : engine_(engine), options_(options) {
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  shards_.reserve(engine_->num_shards());
  for (uint32_t s = 0; s < engine_->num_shards(); ++s) {
    shards_.push_back(std::make_unique<ShardState>());
  }
}

StreamingServer::~StreamingServer() {
  Stop();
  Wait();
}

Status StreamingServer::Start(QueryStream* stream) {
  if (options_.k == 0) return Status::InvalidArgument("k must be > 0");
  if (stream->dim() != engine_->dim()) {
    return Status::InvalidArgument("stream dimension mismatch");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return Status::FailedPrecondition("server already running");
  running_ = true;
  stop_.store(false, std::memory_order_relaxed);
  stream_ = stream;
  // Each serving run reports its own metrics: a restart must not blend
  // the previous run's latencies/counts into a fresh start_ns_ window.
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_lock(shard->mu);
    shard->recorder.Reset();
    shard->completed = 0;
    shard->failed = 0;
    shard->rejected = 0;
    shard->batches = 0;
    shard->batched_queries = 0;
  }
  start_ns_ = util::NowNs();
  live_workers_.store(engine_->num_shards(), std::memory_order_relaxed);
  workers_.reserve(engine_->num_shards());
  for (uint32_t s = 0; s < engine_->num_shards(); ++s) {
    workers_.emplace_back([this, s] { WorkerLoop(s); });
  }
  return Status::OK();
}

void StreamingServer::Wait() {
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
  }
  for (auto& w : workers) {
    if (w.joinable()) w.join();
  }
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void StreamingServer::Stop() { stop_.store(true, std::memory_order_relaxed); }

Status StreamingServer::Serve(QueryStream* stream) {
  E2_RETURN_NOT_OK(Start(stream));
  Wait();
  return Status::OK();
}

bool StreamingServer::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void StreamingServer::WorkerLoop(uint32_t shard) {
  std::vector<StreamQuery> batch;
  std::vector<StreamQuery> shed;
  for (;;) {
    batch.clear();
    shed.clear();
    const bool closed = FormBatch(&batch, &shed);
    if (!shed.empty()) ShedQueries(shard, &shed);
    if (!batch.empty()) RunBatch(shard, &batch);
    if (closed || stop_.load(std::memory_order_relaxed)) break;
  }
  // Last worker out tells the stream its consumer is gone. On a normal
  // drain (stream closed) this is a no-op; after Stop() it is the only
  // thing standing between a producer blocked in Submit on a full
  // SubmissionQueue and a deadlock — nobody will ever pull again.
  if (live_workers_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    stream_->ConsumerStopped();
  }
}

bool StreamingServer::FormBatch(std::vector<StreamQuery>* batch,
                                std::vector<StreamQuery>* shed) {
  const uint64_t max_wait_ns = options_.max_wait_us * 1000;
  const uint64_t deadline_ns = options_.deadline_us * 1000;
  uint64_t first_pull_ns = 0;
  StreamQuery q;
  // The shed bound keeps rejection delivery prompt under sustained
  // overload: a worker drowning in expired queries still returns to
  // deliver them instead of pulling the stream dry first.
  while (batch->size() < options_.max_batch_size &&
         shed->size() < options_.max_batch_size) {
    // Once a stop is requested no new query is pulled — queries already
    // in the forming batch are in flight and still get flushed.
    if (stop_.load(std::memory_order_relaxed)) return false;
    switch (stream_->TryPull(&q)) {
      case StreamPull::kReady:
        // A query that aged past the deadline while queued is shed, not
        // dispatched: serving it would burn I/O on an answer the client
        // has already given up on, while stretching the p99 of the rest.
        if (deadline_ns > 0 && util::NowNs() - q.enqueue_ns > deadline_ns) {
          shed->push_back(std::move(q));
          break;
        }
        if (batch->empty()) first_pull_ns = util::NowNs();
        batch->push_back(std::move(q));
        break;
      case StreamPull::kClosed:
        return true;
      case StreamPull::kPending:
        if (!batch->empty()) {
          if (util::NowNs() - first_pull_ns >= max_wait_ns) return false;
          std::this_thread::yield();
        } else {
          // Idle: nothing pulled yet, nothing to flush. Sleep briefly so
          // an idle server doesn't spin a core per shard.
          std::this_thread::sleep_for(std::chrono::microseconds(20));
        }
        break;
    }
  }
  return false;
}

void StreamingServer::ShedQueries(uint32_t shard,
                                  std::vector<StreamQuery>* shed) {
  const uint64_t now = util::NowNs();
  std::vector<QueryResult> outs;
  outs.reserve(shed->size());
  for (StreamQuery& sq : *shed) {
    QueryResult out;
    out.id = sq.id;
    out.status = Status::ResourceExhausted(
        "deadline exceeded in submission queue (load shed)");
    out.latency_ns = now > sq.enqueue_ns ? now - sq.enqueue_ns : 0;
    outs.push_back(std::move(out));
  }
  {
    // Rejected queries are counted but not recorded in the latency
    // histogram: the percentiles describe served traffic.
    ShardState& state = *shards_[shard];
    std::lock_guard<std::mutex> lock(state.mu);
    state.rejected += outs.size();
  }
  if (options_.on_result) {
    for (QueryResult& out : outs) options_.on_result(std::move(out));
  }
}

void StreamingServer::RunBatch(uint32_t shard, std::vector<StreamQuery>* batch) {
  // A micro-batch is usually homogeneous in k (options_.k, or one
  // remote client's k), but the per-query override means it need not
  // be: group by effective k and run one engine batch per group, so
  // every query is answered by the exact same engine call an
  // in-process SearchBatch(queries, k) would make — truncating a
  // wider top-k instead would not be bit-identical under distance
  // ties.
  std::map<uint32_t, std::vector<size_t>> by_k;
  for (size_t i = 0; i < batch->size(); ++i) {
    const StreamQuery& sq = (*batch)[i];
    by_k[sq.k == 0 ? options_.k : sq.k].push_back(i);
  }

  std::vector<QueryResult> outs(batch->size());
  for (auto& [k, idxs] : by_k) {
    data::Dataset micro("stream", engine_->dim());
    micro.Reserve(idxs.size());
    for (size_t i : idxs) micro.Append((*batch)[i].vec.data());

    Result<BatchResult> result =
        engine_->shard_engine(shard)->SearchBatch(micro, k);
    const uint64_t now = util::NowNs();

    for (size_t j = 0; j < idxs.size(); ++j) {
      StreamQuery& sq = (*batch)[idxs[j]];
      QueryResult out;
      out.id = sq.id;
      out.latency_ns = now > sq.enqueue_ns ? now - sq.enqueue_ns : 0;
      if (result.ok()) {
        out.neighbors = std::move(result->results[j]);
        if (j < result->stats.size()) out.stats = result->stats[j];
      } else {
        out.status = result.status();
      }
      outs[idxs[j]] = std::move(out);
    }
  }

  // One lock per micro-batch on the delivery path, not one per query;
  // the callback runs outside the lock so a slow consumer can't stall a
  // concurrent stats() reader.
  const uint64_t done_ns = util::NowNs();
  ShardState& state = *shards_[shard];
  {
    std::lock_guard<std::mutex> lock(state.mu);
    ++state.batches;
    state.batched_queries += batch->size();
    for (const QueryResult& out : outs) {
      state.recorder.Record(out.latency_ns, done_ns);
      ++state.completed;
      if (!out.status.ok()) ++state.failed;
    }
  }
  if (options_.on_result) {
    for (QueryResult& out : outs) options_.on_result(std::move(out));
  }
}

StreamingSnapshot StreamingServer::stats() const {
  StreamingSnapshot snap;
  util::LatencyRecorder merged;
  uint64_t batched_queries = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    merged.Merge(shard->recorder);
    snap.completed += shard->completed;
    snap.failed += shard->failed;
    snap.rejected += shard->rejected;
    snap.batches += shard->batches;
    batched_queries += shard->batched_queries;
  }
  if (snap.batches > 0) {
    snap.mean_batch_size = static_cast<double>(batched_queries) /
                           static_cast<double>(snap.batches);
  }
  snap.mean_latency_ns = merged.mean_ns();
  snap.p50_ns = merged.p50_ns();
  snap.p95_ns = merged.p95_ns();
  snap.p99_ns = merged.p99_ns();
  snap.max_ns = merged.max_ns();
  const uint64_t now = util::NowNs();
  snap.sustained_qps = merged.SustainedQps(now);
  uint64_t start;
  {
    std::lock_guard<std::mutex> lock(mu_);
    start = start_ns_;
  }
  if (start != 0 && now > start && snap.completed > 0) {
    snap.overall_qps = static_cast<double>(snap.completed) * 1e9 /
                       static_cast<double>(now - start);
  }
  return snap;
}

bool QueryFuture::Ready() const {
  if (!state_) return false;
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->ready;
}

QueryResult QueryFuture::Take() {
  if (!state_) {
    QueryResult unbound;
    unbound.status = Status::FailedPrecondition("future not bound to a query");
    return unbound;
  }
  std::unique_lock<std::mutex> lock(state_->mu);
  state_->cv.wait(lock, [this] { return state_->ready; });
  return std::move(state_->result);
}

QueryFuture FutureSink::Register(uint64_t id) {
  QueryFuture fut;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = unclaimed_.find(id);
  if (it != unclaimed_.end()) {
    fut.state_ = std::make_shared<QueryFuture::State>();
    fut.state_->result = std::move(it->second);
    fut.state_->ready = true;
    unclaimed_.erase(it);
    return fut;
  }
  // Registering the same pending id twice hands out futures sharing one
  // state (overwriting the first entry would orphan its future: Take()
  // would block forever with no delivery or FailPending able to reach
  // it). Note Take() moves the result out — one taker per id.
  auto entry =
      waiting_.try_emplace(id, std::make_shared<QueryFuture::State>()).first;
  fut.state_ = entry->second;
  return fut;
}

void FutureSink::Deliver(QueryResult&& result) {
  std::shared_ptr<QueryFuture::State> state;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = waiting_.find(result.id);
    if (it == waiting_.end()) {
      if (unclaimed_.size() >= max_unclaimed_) {
        ++dropped_;
      } else {
        unclaimed_.emplace(result.id, std::move(result));
      }
      return;
    }
    state = std::move(it->second);
    waiting_.erase(it);
  }
  {
    std::lock_guard<std::mutex> lock(state->mu);
    state->result = std::move(result);
    state->ready = true;
  }
  state->cv.notify_all();
}

void FutureSink::FailPending(const Status& status) {
  std::unordered_map<uint64_t, std::shared_ptr<QueryFuture::State>> waiting;
  {
    std::lock_guard<std::mutex> lock(mu_);
    waiting.swap(waiting_);
  }
  for (auto& [id, state] : waiting) {
    {
      std::lock_guard<std::mutex> lock(state->mu);
      state->result.id = id;
      state->result.status = status;
      state->ready = true;
    }
    state->cv.notify_all();
  }
}

size_t FutureSink::unclaimed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unclaimed_.size();
}

uint64_t FutureSink::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace e2lshos::core
