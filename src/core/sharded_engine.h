// Multi-core E2LSHoS serving: shard one query batch across N per-core
// QueryEngines over a single shared device.
//
// A QueryEngine is one thread interleaving contexts — it can keep a
// device queue deep (Fig. 1(B)) but it cannot use more than one core.
// The paper's Sec. 6.5 / Fig. 16 experiment scales QPS with cores by
// running one engine per thread; ShardedQueryEngine makes that a
// first-class API:
//
//   * the batch is split into contiguous, near-equal ranges, one per
//     shard, so the merged results preserve query order;
//   * every shard owns an independent queue over the shared device
//     (NVMe multi-queue semantics: a shard never consumes another
//     shard's completions). On a multi-queue-capable device each shard
//     gets a NATIVE queue — its own io_uring ring / pread slice /
//     completion inbox — so the per-shard submit/poll hot path crosses
//     no shared lock; otherwise the QueueRouter shim multiplexes the
//     single completion stream in software;
//   * per-shard context / inflight budgets are derived from global
//     budgets, so the device-visible queue depth stays at the configured
//     cap no matter how many shards poll it;
//   * per-shard BatchResults are merged back into query order, stats and
//     compute_ns aggregated, and wall_ns taken from one clock around the
//     whole parallel section (never the sum of per-shard times).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/query_engine.h"
#include "core/storage_index.h"
#include "storage/multi_queue.h"
#include "util/thread_pool.h"

namespace e2lshos::core {

/// \brief How shards acquire device queues (the `queues=` URI knob).
enum class QueueMode {
  kAuto,    ///< Native queues when the device offers them, router otherwise.
  kRouter,  ///< Always the QueueRouter shim (the pre-multi-queue behavior).
};

struct ShardOptions {
  /// Number of per-core engines; 0 = one per hardware thread.
  uint32_t num_shards = 1;
  /// Global budgets, split evenly across shards. The defaults match a
  /// single QueryEngine's defaults, so a 1-shard engine behaves exactly
  /// like the unsharded one and an N-shard engine presents the same
  /// total queue depth to the device. The shard count is reduced when
  /// it exceeds a budget (see ResolveShardCount).
  uint32_t total_contexts = 32;
  uint32_t total_inflight_ios = 256;
  /// Fig. 1(A) mode: every shard runs one blocking I/O at a time.
  bool synchronous = false;
  /// Queue-acquisition policy for the per-shard devices.
  QueueMode queue_mode = QueueMode::kAuto;
  /// Cap on native queues (0 = uncapped): asking for more shards than
  /// this falls back to the router for ALL shards (never a mixed set).
  uint32_t max_native_queues = 0;
  /// Register every shard engine's I/O arena with its device at startup
  /// (UringDevice: READ_FIXED, no per-I/O page pinning). Best-effort —
  /// devices without fixed-buffer support simply run unregistered.
  bool register_fixed_buffers = false;
  /// Optional decorator applied to each shard's routed queue before the
  /// shard engine sees it — e.g. wrap it in a storage::ChargedDevice so
  /// every shard pays its own per-core interface submission cost.
  std::function<std::unique_ptr<storage::BlockDevice>(
      std::unique_ptr<storage::BlockDevice>)>
      wrap_shard_device;
};

/// Hard cap on shards (a QueueRouter supports at most 255 queues).
inline constexpr uint32_t kMaxShards = 255;

/// Resolve a requested shard count (0 = one per hardware thread) to the
/// count the engine will use, bounded by kMaxShards. Callers deriving
/// global budgets from a shard count (e.g. "32 contexts per shard")
/// must use this instead of re-implementing the rule. The engine
/// additionally never runs more shards than the global context/inflight
/// budgets allow — a shard cannot run on a zero budget, and a floor of
/// one would overshoot the device-visible queue-depth cap.
uint32_t ResolveShardCount(uint32_t requested);

/// \brief Contiguous slice of a batch assigned to one shard.
struct ShardRange {
  uint64_t begin = 0;
  uint64_t end = 0;  ///< One past the last query of the slice.
  uint64_t size() const { return end - begin; }
};

/// Split `n` queries into `num_shards` contiguous near-equal ranges (the
/// first n % num_shards ranges are one longer). Ranges may be empty when
/// the batch is smaller than the shard count.
std::vector<ShardRange> PartitionBatch(uint64_t n, uint32_t num_shards);

/// Merge per-shard batch results back into query order. `shard_results[s]`
/// holds the results for `ranges[s]`; `batch_wall_ns` must be the
/// whole-batch wall time measured from one clock around all shards —
/// summing per-shard wall times would overstate latency by up to the
/// shard count under parallel execution.
BatchResult MergeShardResults(std::vector<BatchResult>&& shard_results,
                              const std::vector<ShardRange>& ranges,
                              uint64_t batch_wall_ns);

class ShardedQueryEngine {
 public:
  /// The index and base dataset must outlive the engine; the shared
  /// device is the one the index was built on. Each shard gets its own
  /// StorageIndex view (DRAM metadata is duplicated per shard, as in the
  /// Fig. 16 per-thread setup). A 1-shard engine with no device wrapper
  /// degenerates to a plain QueryEngine on the index's device: no queue
  /// pair, no worker thread, no batch copy.
  ShardedQueryEngine(const StorageIndex* index, const data::Dataset* base,
                     const ShardOptions& options = {});

  /// Run top-k ANNS for every query in `queries` across all shards.
  /// Results are in query order. As long as the per-radius candidate cap
  /// S never triggers draining, results are bit-identical to a single
  /// QueryEngine run over the same index; once S binds, the examined
  /// candidate subset depends on I/O completion order, so results may
  /// vary across shard counts (and across runs of a single engine).
  Result<BatchResult> SearchBatch(const data::Dataset& queries, uint32_t k);

  uint32_t num_shards() const { return static_cast<uint32_t>(engines_.size()); }
  /// The derived per-shard engine configuration.
  const EngineOptions& shard_engine_options() const { return shard_opts_; }
  /// Dimension of the base dataset (and of every accepted query).
  uint32_t dim() const { return base_->dim(); }

  /// Barrier-free dispatch for streaming serving: direct access to shard
  /// `s`'s engine so a front-end (core::StreamingServer) can run
  /// independent micro-batches on each shard with no whole-batch join.
  /// A shard engine is single-threaded — exactly one caller may drive a
  /// given shard at a time, and SearchBatch (which uses every shard)
  /// must not run concurrently with per-shard dispatch.
  QueryEngine* shard_engine(uint32_t s) { return engines_[s].get(); }

  /// True when every shard runs on a native device queue (no QueueRouter
  /// lock is reachable from the serving hot path).
  bool native_queues() const { return native_queues_; }
  /// "direct" (1-shard degenerate path, straight on the index's device),
  /// "native", or "router" — the `queue_mode` key of bench JSONL rows.
  const char* queue_mode() const {
    if (pool_ == nullptr) return "direct";
    return native_queues_ ? "native" : "router";
  }
  /// The device shard `s` actually submits to (its queue, after any
  /// wrap_shard_device decoration) — per-shard stats come from here.
  storage::BlockDevice* shard_device(uint32_t s) {
    if (pool_ == nullptr) return index_->device();
    return shard_devices_[s].get();
  }

 private:
  const StorageIndex* index_;
  const data::Dataset* base_;
  EngineOptions shard_opts_;
  bool native_queues_ = false;
  /// Fallback shim; null on the native-queue and degenerate paths.
  /// Declared before shard_devices_ so the queues are destroyed first.
  std::unique_ptr<storage::QueueRouter> router_;
  std::vector<std::unique_ptr<storage::BlockDevice>> shard_devices_;
  std::vector<std::unique_ptr<StorageIndex>> views_;
  std::vector<std::unique_ptr<QueryEngine>> engines_;
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace e2lshos::core
