// Tests for the LSH primitives: hash functions, collision probabilities,
// parameter derivation, fingerprint splitting, hash family determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "lsh/fingerprint.h"
#include "lsh/hash_family.h"
#include "lsh/hash_function.h"
#include "lsh/params.h"
#include "util/rng.h"

namespace e2lshos::lsh {
namespace {

std::vector<float> RandomPoint(uint32_t d, util::Rng& rng, double scale = 1.0) {
  std::vector<float> p(d);
  for (auto& v : p) v = static_cast<float>(rng.Gaussian(0.0, scale));
  return p;
}

// A point at exact distance `dist` from `base` in a random direction.
std::vector<float> PointAtDistance(const std::vector<float>& base, double dist,
                                   util::Rng& rng) {
  std::vector<float> dir(base.size());
  double norm = 0.0;
  for (auto& v : dir) {
    v = static_cast<float>(rng.Gaussian());
    norm += static_cast<double>(v) * v;
  }
  norm = std::sqrt(norm);
  std::vector<float> out(base.size());
  for (size_t i = 0; i < base.size(); ++i) {
    out[i] = base[i] + static_cast<float>(dist * dir[i] / norm);
  }
  return out;
}

TEST(LshFunction, HashIsFloorOfProjection) {
  util::Rng rng(1);
  LshFunction h(16, 4.0, rng);
  util::Rng rng2(2);
  const auto p = RandomPoint(16, rng2);
  EXPECT_EQ(h.Hash(p.data()),
            static_cast<int32_t>(std::floor(h.Project(p.data()))));
}

TEST(LshFunction, OffsetWithinBucketWidth) {
  util::Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    LshFunction h(8, 2.5, rng);
    EXPECT_GE(h.b(), 0.0);
    EXPECT_LT(h.b(), 2.5);
  }
}

TEST(LshFunction, IdenticalPointsAlwaysCollide) {
  util::Rng rng(4);
  LshFunction h(32, 4.0, rng);
  util::Rng rng2(5);
  const auto p = RandomPoint(32, rng2);
  const auto q = p;
  EXPECT_EQ(h.Hash(p.data()), h.Hash(q.data()));
}

TEST(CollisionProbability, AnalyticPropertiesHold) {
  // Monotonically increasing in x = w/s; limits 0 and 1.
  EXPECT_DOUBLE_EQ(CollisionProbability(0.0), 0.0);
  double prev = 0.0;
  for (double x = 0.1; x < 50.0; x *= 1.5) {
    const double p = CollisionProbability(x);
    EXPECT_GT(p, prev);
    EXPECT_GT(p, 0.0);
    EXPECT_LT(p, 1.0);
    prev = p;
  }
  EXPECT_GT(CollisionProbability(100.0), 0.98);
}

TEST(CollisionProbability, MatchesEmpiricalRate) {
  // Empirical collision frequency of h at distance s must match p_w(w/s).
  const uint32_t d = 64;
  const double w = 4.0;
  util::Rng rng(6);
  for (const double dist : {1.0, 2.0, 4.0}) {
    int collisions = 0;
    const int trials = 4000;
    for (int t = 0; t < trials; ++t) {
      LshFunction h(d, w, rng);
      const auto p = RandomPoint(d, rng);
      const auto q = PointAtDistance(p, dist, rng);
      collisions += h.Hash(p.data()) == h.Hash(q.data());
    }
    const double expected = CollisionProbability(w / dist);
    EXPECT_NEAR(static_cast<double>(collisions) / trials, expected, 0.035)
        << "at distance " << dist;
  }
}

TEST(CompoundHash, EqualIffAllComponentsEqual) {
  util::Rng rng(7);
  CompoundHash g(16, 8, 4.0, rng);
  util::Rng rng2(8);
  const auto p = RandomPoint(16, rng2);
  std::vector<int32_t> vp(8), vq(8);
  g.HashVector(p.data(), vp.data());
  // Identical point: identical fold.
  EXPECT_EQ(g.Hash32(p.data()), g.Hash32(p.data()));
  // A nearby point colliding on all m components folds equal.
  const auto q = PointAtDistance(p, 0.001, rng2);
  g.HashVector(q.data(), vq.data());
  if (vp == vq) EXPECT_EQ(g.Hash32(p.data()), g.Hash32(q.data()));
}

TEST(CompoundHash, FoldIsDeterministicAndSensitive) {
  std::vector<int32_t> a{1, 2, 3, 4};
  std::vector<int32_t> b{1, 2, 3, 5};
  EXPECT_EQ(CompoundHash::Fold(a.data(), 4), CompoundHash::Fold(a.data(), 4));
  EXPECT_NE(CompoundHash::Fold(a.data(), 4), CompoundHash::Fold(b.data(), 4));
}

TEST(CompoundHash, FarPointsRarelyCollide) {
  // With m=12 components, p2^m is tiny: far pairs should essentially
  // never fold equal.
  util::Rng rng(9);
  int collisions = 0;
  for (int t = 0; t < 500; ++t) {
    CompoundHash g(32, 12, 4.0, rng);
    const auto p = RandomPoint(32, rng);
    const auto q = PointAtDistance(p, 8.0, rng);  // far: w/s = 0.5
    collisions += g.Hash32(p.data()) == g.Hash32(q.data());
  }
  EXPECT_LE(collisions, 2);
}

TEST(Params, Equation5Derivation) {
  E2lshConfig cfg;
  cfg.c = 2.0;
  cfg.w = 4.0;
  cfg.x_max = 1.0;
  auto params = ComputeParams(1000000, 128, cfg);
  ASSERT_TRUE(params.ok());
  // p1 = p(4) ~ 0.8005, p2 = p(2) ~ 0.6095 (Datar et al. values).
  EXPECT_NEAR(params->p1, 0.8005, 0.001);
  EXPECT_NEAR(params->p2, 0.6095, 0.001);
  // rho = ln(1/p1)/ln(1/p2) ~ 0.449.
  EXPECT_NEAR(params->rho, 0.449, 0.005);
  // m = ln(n)/ln(1/p2) ~ 27.9 -> 28.
  EXPECT_EQ(params->m, 28u);
  // S = 2L by default.
  EXPECT_EQ(params->S, 2ULL * params->L);
}

TEST(Params, RhoOverrideControlsL) {
  E2lshConfig cfg;
  cfg.rho = 0.25;
  auto params = ComputeParams(100000, 64, cfg);
  ASSERT_TRUE(params.ok());
  EXPECT_EQ(params->L, static_cast<uint32_t>(std::ceil(std::pow(100000, 0.25))));
  EXPECT_NEAR(params->rho, 0.25, 1e-12);
}

TEST(Params, GammaScalesMNotL) {
  E2lshConfig a, b;
  a.rho = b.rho = 0.25;
  a.gamma = 1.0;
  b.gamma = 1.5;
  auto pa = ComputeParams(100000, 64, a);
  auto pb = ComputeParams(100000, 64, b);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_EQ(pa->L, pb->L);  // index size unchanged (paper Sec. 3.3)
  EXPECT_GT(pb->m, pa->m);
  EXPECT_NEAR(static_cast<double>(pb->m) / pa->m, 1.5, 0.1);
}

TEST(Params, RadiusLadderCoversRmax) {
  E2lshConfig cfg;
  cfg.c = 2.0;
  cfg.x_max = 1.0;
  auto params = ComputeParams(10000, 100, cfg);
  ASSERT_TRUE(params.ok());
  const double r_max = 2.0 * std::sqrt(100.0);
  EXPECT_GE(params->radii.back(), r_max);
  EXPECT_EQ(params->radii.front(), 1.0);
  for (size_t i = 1; i < params->radii.size(); ++i) {
    EXPECT_DOUBLE_EQ(params->radii[i], params->radii[i - 1] * 2.0);
  }
  // Ladder shorter than the conservative bound + 1 extra rung.
  EXPECT_LE(params->radii.size(),
            static_cast<size_t>(std::ceil(std::log2(r_max))) + 2);
}

TEST(Params, InvalidInputsRejected) {
  E2lshConfig cfg;
  EXPECT_FALSE(ComputeParams(1, 64, cfg).ok());   // n too small
  EXPECT_FALSE(ComputeParams(1000, 0, cfg).ok()); // d = 0
  cfg.c = 1.0;
  EXPECT_FALSE(ComputeParams(1000, 64, cfg).ok());
  cfg.c = 2.0;
  cfg.w = 0.0;
  EXPECT_FALSE(ComputeParams(1000, 64, cfg).ok());
  cfg.w = 4.0;
  cfg.gamma = 0.0;
  EXPECT_FALSE(ComputeParams(1000, 64, cfg).ok());
}

TEST(Params, RhoForWidthMatchesTheory) {
  // rho approaches 1/c for large w and stays below 1.
  EXPECT_LT(RhoForWidth(4.0, 2.0), 0.5);
  EXPECT_GT(RhoForWidth(4.0, 2.0), 0.4);
  EXPECT_LT(RhoForWidth(16.0, 2.0), RhoForWidth(1.0, 2.0));
}

TEST(Fingerprint, SplitRoundTrips) {
  const FingerprintScheme fp{12};
  const uint32_t h = 0xdeadbeef;
  EXPECT_EQ(fp.TableIndex(h), h & 0xfff);
  EXPECT_EQ(fp.Fingerprint(h), h >> 12);
  EXPECT_EQ((fp.Fingerprint(h) << 12) | fp.TableIndex(h), h);
  EXPECT_EQ(fp.fingerprint_bits(), 20u);
  EXPECT_EQ(fp.table_slots(), 4096u);
}

TEST(Fingerprint, DefaultSlightlyBelowLog2N) {
  EXPECT_EQ(FingerprintScheme::ForDatabaseSize(1 << 16).u, 14u);
  EXPECT_EQ(FingerprintScheme::ForDatabaseSize(1000000).u, 17u);  // log2 ~ 19.9
  EXPECT_EQ(FingerprintScheme::ForDatabaseSize(100).u, 8u);       // clamped low
  EXPECT_EQ(FingerprintScheme::ForDatabaseSize(1ULL << 40).u, 28u);  // clamped
}

TEST(HashFamily, DeterministicForSameSeed) {
  E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.seed = 777;
  auto params = ComputeParams(5000, 16, cfg);
  ASSERT_TRUE(params.ok());
  HashFamily fam1(16, *params), fam2(16, *params);
  util::Rng rng(10);
  const auto p = RandomPoint(16, rng);
  for (uint32_t r = 0; r < params->num_radii(); ++r) {
    for (uint32_t l = 0; l < params->L; ++l) {
      EXPECT_EQ(fam1.Get(r, l).Hash32(p.data()), fam2.Get(r, l).Hash32(p.data()));
    }
  }
}

TEST(HashFamily, BucketWidthScalesWithRadius) {
  E2lshConfig cfg;
  cfg.rho = 0.2;
  auto params = ComputeParams(5000, 16, cfg);
  ASSERT_TRUE(params.ok());
  HashFamily fam(16, *params);
  // Component width at radius index r is w * c^r.
  for (uint32_t r = 0; r < params->num_radii(); ++r) {
    EXPECT_NEAR(fam.Get(r, 0).func(0).w(), params->w * params->radii[r], 1e-9);
  }
}

TEST(HashFamily, WiderBucketsCatchFartherNeighbors) {
  // At a large radius, two points at distance ~4 should nearly always
  // fold equal; at radius 1 they almost never should.
  E2lshConfig cfg;
  cfg.rho = 0.2;
  cfg.x_max = 4.0;
  auto params = ComputeParams(5000, 32, cfg);
  ASSERT_TRUE(params.ok());
  HashFamily fam(32, *params);
  util::Rng rng(11);
  int near_radius_collisions = 0, far_radius_collisions = 0;
  const uint32_t last = params->num_radii() - 1;
  for (int t = 0; t < 200; ++t) {
    const auto p = RandomPoint(32, rng, 2.0);
    const auto q = PointAtDistance(p, 4.0, rng);
    const uint32_t l = static_cast<uint32_t>(t) % params->L;
    near_radius_collisions += fam.Get(0, l).Hash32(p.data()) ==
                              fam.Get(0, l).Hash32(q.data());
    far_radius_collisions += fam.Get(last, l).Hash32(p.data()) ==
                             fam.Get(last, l).Hash32(q.data());
  }
  EXPECT_LT(near_radius_collisions, 20);
  EXPECT_GT(far_radius_collisions, 120);
}

// Property sweep: the empirical compound collision probability at the
// design distances brackets (p2^m, p1^m) as the theory requires.
struct CollisionCase {
  double w;
  double dist;
};

class CompoundCollisionTest : public ::testing::TestWithParam<CollisionCase> {};

TEST_P(CompoundCollisionTest, EmpiricalRateNearTheory) {
  const auto [w, dist] = GetParam();
  const uint32_t d = 48;
  const uint32_t m = 4;
  util::Rng rng(12);
  int collisions = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    CompoundHash g(d, m, w, rng);
    const auto p = RandomPoint(d, rng);
    const auto q = PointAtDistance(p, dist, rng);
    collisions += g.Hash32(p.data()) == g.Hash32(q.data());
  }
  const double single = CollisionProbability(w / dist);
  const double expected = std::pow(single, m);
  EXPECT_NEAR(static_cast<double>(collisions) / trials, expected,
              0.03 + 3.0 * std::sqrt(expected * (1 - expected) / trials));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CompoundCollisionTest,
    ::testing::Values(CollisionCase{2.0, 1.0}, CollisionCase{4.0, 1.0},
                      CollisionCase{4.0, 2.0}, CollisionCase{8.0, 1.0},
                      CollisionCase{8.0, 4.0}, CollisionCase{16.0, 2.0}));

}  // namespace
}  // namespace e2lshos::lsh
