// Lightweight Status / Result types for error propagation without
// exceptions, in the spirit of arrow::Status.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <variant>

namespace e2lshos {

enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kIoError,
  kResourceExhausted,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
  kUnavailable,
};

/// \brief Outcome of an operation that can fail.
///
/// A default-constructed Status is OK and carries no message. Error
/// statuses carry a code and a human-readable message.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return msg_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + msg_;
  }

  static const char* CodeName(StatusCode code) {
    switch (code) {
      case StatusCode::kOk: return "OK";
      case StatusCode::kInvalidArgument: return "InvalidArgument";
      case StatusCode::kOutOfRange: return "OutOfRange";
      case StatusCode::kIoError: return "IoError";
      case StatusCode::kResourceExhausted: return "ResourceExhausted";
      case StatusCode::kFailedPrecondition: return "FailedPrecondition";
      case StatusCode::kNotFound: return "NotFound";
      case StatusCode::kInternal: return "Internal";
      case StatusCode::kUnimplemented: return "Unimplemented";
      case StatusCode::kDeadlineExceeded: return "DeadlineExceeded";
      case StatusCode::kUnavailable: return "Unavailable";
    }
    return "Unknown";
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string msg_;
};

/// \brief Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  Result(T value) : v_(std::move(value)) {}                 // NOLINT implicit
  Result(Status status) : v_(std::move(status)) {}          // NOLINT implicit

  bool ok() const { return std::holds_alternative<T>(v_); }
  const T& value() const& { return std::get<T>(v_); }
  T& value() & { return std::get<T>(v_); }
  T&& value() && { return std::get<T>(std::move(v_)); }
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(v_);
  }
  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> v_;
};

#define E2_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::e2lshos::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (0)

#define E2_CONCAT_INNER_(a, b) a##b
#define E2_CONCAT_(a, b) E2_CONCAT_INNER_(a, b)

#define E2_ASSIGN_OR_RETURN(lhs, expr)                          \
  auto E2_CONCAT_(_e2_res_, __LINE__) = (expr);                 \
  if (!E2_CONCAT_(_e2_res_, __LINE__).ok())                     \
    return E2_CONCAT_(_e2_res_, __LINE__).status();             \
  lhs = std::move(E2_CONCAT_(_e2_res_, __LINE__)).value();

}  // namespace e2lshos
