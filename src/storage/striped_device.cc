#include "storage/striped_device.h"

#include <algorithm>

namespace e2lshos::storage {

StripedDevice::StripedDevice(std::vector<std::unique_ptr<BlockDevice>> children)
    : children_(std::move(children)) {
  uint64_t min_cap = children_[0]->capacity();
  for (const auto& c : children_) min_cap = std::min(min_cap, c->capacity());
  // Whole sectors only.
  min_cap = min_cap / kSectorBytes * kSectorBytes;
  capacity_ = min_cap * children_.size();
  for (const auto& c : children_) {
    io_alignment_ = std::max(io_alignment_, c->io_alignment());
  }
}

Result<std::unique_ptr<StripedDevice>> StripedDevice::Create(
    std::vector<std::unique_ptr<BlockDevice>> children) {
  if (children.empty()) {
    return Status::InvalidArgument("striped device needs at least one child");
  }
  for (const auto& c : children) {
    if (c == nullptr) return Status::InvalidArgument("null child device");
    // Striping splits the address space at 512-byte granularity; a child
    // demanding coarser extents (a 4Kn drive in direct mode) could never
    // be satisfied through the stripe map.
    if (c->io_alignment() > kSectorBytes) {
      return Status::InvalidArgument(
          "child device requires " + std::to_string(c->io_alignment()) +
          "-byte alignment, above the 512-byte stripe unit");
    }
  }
  return std::unique_ptr<StripedDevice>(new StripedDevice(std::move(children)));
}

Status StripedDevice::Translate(uint64_t offset, uint32_t length, size_t* child,
                                uint64_t* child_offset) const {
  if (!RangeInCapacity(offset, length, capacity_)) {
    return Status::OutOfRange("beyond capacity");
  }
  const uint64_t sector = offset / kSectorBytes;
  const uint64_t within = offset % kSectorBytes;
  if (within + length > kSectorBytes) {
    return Status::InvalidArgument("request crosses a sector boundary");
  }
  *child = static_cast<size_t>(sector % children_.size());
  *child_offset = (sector / children_.size()) * kSectorBytes + within;
  return Status::OK();
}

Status StripedDevice::SubmitRead(const IoRequest& req) {
  size_t child;
  uint64_t child_offset;
  E2_RETURN_NOT_OK(Translate(req.offset, req.length, &child, &child_offset));
  IoRequest sub = req;
  sub.offset = child_offset;
  return children_[child]->SubmitRead(sub);
}

size_t StripedDevice::PollCompletions(IoCompletion* out, size_t max) {
  // Round-robin across children for fairness; the cursor advance is a
  // single atomic so concurrent pollers never race (each child device is
  // itself thread-safe).
  size_t total = 0;
  const size_t n = children_.size();
  const uint64_t start = poll_cursor_.fetch_add(1, std::memory_order_relaxed);
  for (size_t i = 0; i < n && total < max; ++i) {
    const size_t idx = static_cast<size_t>((start + i) % n);
    total += children_[idx]->PollCompletions(out + total, max - total);
  }
  return total;
}

Status StripedDevice::Write(uint64_t offset, const void* data, uint32_t length) {
  // Writes may span sectors; split per sector.
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (length > 0) {
    const uint64_t within = offset % kSectorBytes;
    const uint32_t chunk =
        std::min<uint64_t>(length, kSectorBytes - within);
    size_t child;
    uint64_t child_offset;
    E2_RETURN_NOT_OK(Translate(offset, chunk, &child, &child_offset));
    E2_RETURN_NOT_OK(children_[child]->Write(child_offset, p, chunk));
    offset += chunk;
    p += chunk;
    length -= chunk;
  }
  return Status::OK();
}

/// \brief One native queue over the stripe set: a private native queue
/// per child drive plus a private poll cursor. Submit translates through
/// the parent's (immutable) stripe map and lands on this queue's slice of
/// the target drive; no state is shared with sibling stripe queues.
class StripedDevice::Queue : public BlockDevice {
 public:
  Queue(StripedDevice* parent,
        std::vector<std::unique_ptr<BlockDevice>> child_queues)
      : parent_(parent), child_queues_(std::move(child_queues)) {}

  Status SubmitRead(const IoRequest& req) override {
    size_t child;
    uint64_t child_offset;
    E2_RETURN_NOT_OK(
        parent_->Translate(req.offset, req.length, &child, &child_offset));
    IoRequest sub = req;
    sub.offset = child_offset;
    return child_queues_[child]->SubmitRead(sub);
  }

  size_t PollCompletions(IoCompletion* out, size_t max) override {
    size_t total = 0;
    const size_t n = child_queues_.size();
    const uint64_t start = poll_cursor_++;
    for (size_t i = 0; i < n && total < max; ++i) {
      const size_t idx = static_cast<size_t>((start + i) % n);
      total += child_queues_[idx]->PollCompletions(out + total, max - total);
    }
    return total;
  }

  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    return parent_->Write(offset, data, length);
  }
  uint64_t capacity() const override { return parent_->capacity(); }
  uint32_t io_alignment() const override { return parent_->io_alignment(); }
  uint32_t outstanding() const override {
    uint32_t total = 0;
    for (const auto& q : child_queues_) total += q->outstanding();
    return total;
  }
  std::string name() const override { return parent_->name() + " nq"; }
  DeviceStats stats() const override {
    DeviceStats merged;
    for (const auto& q : child_queues_) MergeDeviceStats(&merged, q->stats());
    return merged;
  }
  void ResetStats() override {
    for (auto& q : child_queues_) q->ResetStats();
  }
  Status RegisterBuffers(
      const std::vector<std::pair<void*, size_t>>& regions) override {
    // Registration is per child ring; reads to any drive may target any
    // region, so every child queue needs the full set. All-or-nothing.
    for (auto& q : child_queues_) {
      E2_RETURN_NOT_OK(q->RegisterBuffers(regions));
    }
    return Status::OK();
  }

 private:
  StripedDevice* parent_;
  std::vector<std::unique_ptr<BlockDevice>> child_queues_;
  /// Only this queue's owner polls, so a plain cursor suffices.
  uint64_t poll_cursor_ = 0;
};

MultiQueueDevice* StripedDevice::multi_queue() {
  for (auto& c : children_) {
    if (c->multi_queue() == nullptr) return nullptr;
  }
  return this;
}

uint32_t StripedDevice::max_queues() const {
  uint32_t m = 255;
  for (const auto& c : children_) {
    MultiQueueDevice* mq = c->multi_queue();
    if (mq == nullptr) return 0;
    m = std::min(m, mq->max_queues());
  }
  return m;
}

Result<std::unique_ptr<BlockDevice>> StripedDevice::CreateQueue(
    const QueueOptions& options) {
  std::vector<std::unique_ptr<BlockDevice>> child_queues;
  child_queues.reserve(children_.size());
  for (auto& c : children_) {
    MultiQueueDevice* mq = c->multi_queue();
    if (mq == nullptr) {
      return Status::FailedPrecondition(
          "child device " + c->name() + " has no native queues");
    }
    E2_ASSIGN_OR_RETURN(auto q, mq->CreateQueue(options));
    child_queues.push_back(std::move(q));
  }
  return std::unique_ptr<BlockDevice>(
      std::make_unique<Queue>(this, std::move(child_queues)));
}

uint32_t StripedDevice::outstanding() const {
  uint32_t total = 0;
  for (const auto& c : children_) total += c->outstanding();
  return total;
}

std::string StripedDevice::name() const {
  return children_[0]->name() + " x " + std::to_string(children_.size());
}

DeviceStats StripedDevice::stats() const {
  DeviceStats merged;
  for (const auto& c : children_) {
    const DeviceStats s = c->stats();
    merged.reads_submitted += s.reads_submitted;
    merged.reads_completed += s.reads_completed;
    merged.bytes_read += s.bytes_read;
    merged.bytes_written += s.bytes_written;
    merged.busy_ns += s.busy_ns;
    merged.read_latency.Merge(s.read_latency);
  }
  return merged;
}

void StripedDevice::ResetStats() {
  for (auto& c : children_) c->ResetStats();
}

}  // namespace e2lshos::storage
