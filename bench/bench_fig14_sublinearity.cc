// Reproduces Figure 14: query time versus database size n on the
// BIGANN-like dataset at ratio target 1.05:
//   * SRS grows linearly,
//   * E2LSHoS (XLFDD x 12) and in-memory E2LSH (same rho) grow
//     sublinearly and overlap,
//   * in-memory E2LSH with an extremely small rho = 0.09 fits in memory
//     but pays a much higher query time.
// A power-law fit (log-log least squares) quantifies the exponents.
#include "common.h"

#include "util/stats.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  constexpr double kTargetRatio = 1.05;
  auto spec = data::GetDatasetSpec(args.dataset.empty() ? "BIGANN"
                                                        : args.dataset);
  if (!spec.ok()) return 1;

  std::vector<uint64_t> ns = args.fast
                                 ? std::vector<uint64_t>{10000, 20000, 40000, 80000}
                                 : std::vector<uint64_t>{20000, 40000, 80000,
                                                         160000, 320000};
  if (args.n > 0) ns.back() = args.n;

  core::EngineOptions opts;
  opts.num_contexts = 64;
  opts.max_inflight_ios = 512;

  bench::PrintHeader(
      "Figure 14: query time vs database size n (" + spec->name +
          ", ratio 1.05)",
      {"n", "SRS us", "E2LSHoS(XLFDD) us", "E2LSH(in-mem) us",
       "E2LSH(in-mem, rho=0.09) us"});

  std::vector<double> xs, srs_ts, os_ts, mem_ts, smallrho_ts;
  for (const uint64_t n : ns) {
    auto w = bench::MakeWorkload(*spec, n, args.queries ? args.queries : 100, 1);
    if (!w.ok()) continue;

    const double t_srs = bench::QueryNsAtRatio(
        bench::SweepSrs(*w, 1, bench::DefaultSrsFractions()), kTargetRatio);

    // E2LSHoS on XLFDD x 12.
    double t_os = 0;
    {
      auto stack = bench::MakeStack(storage::DeviceKind::kXlfdd, 12,
                                    storage::InterfaceKind::kXlfdd);
      if (stack.ok()) {
        auto idx = core::IndexBuilder::Build(w->gen.base, w->params,
                                             stack->device());
        if (idx.ok()) {
          t_os = bench::QueryNsAtRatio(
              bench::SweepOs(idx->get(), *w, 1, opts, bench::DefaultSFactors(),
                             stack->charged.get()),
              kTargetRatio);
        }
      }
    }

    // In-memory E2LSH, same rho.
    double t_mem = 0;
    {
      auto mem = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
      if (mem.ok()) {
        t_mem = bench::QueryNsAtRatio(
            bench::SweepInMemory(mem->get(), *w, 1, bench::DefaultSFactors()),
            kTargetRatio);
      }
    }

    // In-memory E2LSH with rho = 0.09: tiny L, compensated by scanning
    // far more candidates to reach the same accuracy.
    double t_small = 0;
    {
      lsh::E2lshConfig cfg = spec->lsh;
      cfg.rho = 0.09;
      cfg.x_max = w->gen.base.XMax();
      auto params = lsh::ComputeParams(w->gen.base.n(), w->gen.base.dim(), cfg);
      if (params.ok()) {
        auto mem = e2lsh::InMemoryE2lsh::Build(w->gen.base, *params);
        if (mem.ok()) {
          t_small = bench::QueryNsAtRatio(
              bench::SweepInMemory(mem->get(), *w, 1,
                                   {8, 32, 128, 512, 2048}),
              kTargetRatio);
        }
      }
    }

    xs.push_back(static_cast<double>(n));
    srs_ts.push_back(t_srs);
    os_ts.push_back(t_os);
    mem_ts.push_back(t_mem);
    smallrho_ts.push_back(t_small);
    bench::PrintRow({std::to_string(n), bench::Fmt(t_srs / 1e3, 1),
                     bench::Fmt(t_os / 1e3, 1), bench::Fmt(t_mem / 1e3, 1),
                     bench::Fmt(t_small / 1e3, 1)});
  }

  bench::PrintHeader("Power-law fit t ~ n^alpha (log-log least squares)",
                     {"Series", "alpha", "R^2"});
  auto fit_row = [&](const char* name, const std::vector<double>& ys) {
    const auto fit = util::FitPowerLaw(xs, ys);
    bench::PrintRow({name, bench::Fmt(fit.exponent, 2), bench::Fmt(fit.r2, 3)});
  };
  fit_row("SRS", srs_ts);
  fit_row("E2LSHoS(XLFDD)", os_ts);
  fit_row("E2LSH(in-mem)", mem_ts);
  fit_row("E2LSH(small rho)", smallrho_ts);

  std::printf(
      "\nExpected shape (paper): SRS alpha ~= 1 (linear); E2LSHoS and "
      "in-memory E2LSH\nsublinear (alpha well below 1) and overlapping; "
      "small-rho E2LSH much slower at\nlarge n despite fitting in memory. "
      "In the paper in-memory E2LSH stops at 100M\n(DRAM limit) while "
      "E2LSHoS continues to 1B.\n");
  return 0;
}
