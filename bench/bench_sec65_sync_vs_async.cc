// Reproduces the Sec. 6.5 "comparison with synchronous I/Os" experiment:
// the same E2LSHoS index driven (a) by the asynchronous engine with
// interleaved query contexts and (b) by a synchronous engine issuing one
// blocking I/O at a time through a heavyweight (page-cache-like)
// interface. The paper measures a 19.7x slowdown for the synchronous
// mmap-based execution on cSSD x 4.
//
// With --device file:/uring: (a URI, e.g. uring:?direct=1) the index is
// served from a real
// backing file on this host instead of the simulated cSSD x 4 stack: the
// async run's submission cost is then the genuine backend cost (thread
// hop vs. io_uring SQE) and the sync run is the same device at queue
// depth 1, no interface model applied.
#include "common.h"

#include <memory>

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  auto spec = data::GetDatasetSpec(args.dataset.empty() ? "BIGANN"
                                                        : args.dataset);
  if (!spec.ok()) return 1;
  // Modest n and few queries: the synchronous run pays full device
  // latency on every I/O.
  const uint64_t n = args.n ? args.n : (args.fast ? 10000 : 30000);
  auto w = bench::MakeWorkload(*spec, n, args.queries ? args.queries : 20, 1);
  if (!w.ok()) return 1;

  // Build once on a DRAM master, then rehost the image on the measured
  // configuration (the simulated cSSD x 4, or the --device backend).
  auto master_dev = storage::MemoryDevice::Create(8ULL << 30);
  if (!master_dev.ok()) return 1;
  auto idx =
      core::IndexBuilder::Build(w->gen.base, w->params, master_dev->get());
  if (!idx.ok()) return 1;
  const uint64_t image_bytes = (*idx)->sizes().storage_bytes;

  auto stack = bench::MakeStack(storage::DeviceKind::kCssd, 4,
                                storage::InterfaceKind::kIoUring);
  if (!stack.ok()) return 1;

  std::unique_ptr<storage::BlockDevice> real;
  std::string config_name = "cSSD x 4";
  std::string real_path;
  if (!args.device.empty()) {
    real_path = args.EffectiveDevicePath("sec65");
    auto made = bench::MakeRealDevice(args, real_path, image_bytes,
                                      /*queue_capacity=*/1024,
                                      /*fill_noise=*/false);
    if (made.ok()) {
      real = std::move(*made);
      config_name = real->name();
    } else {
      std::fprintf(stderr, "real-device mode skipped: %s\n",
                   made.status().ToString().c_str());
    }
  }
  storage::BlockDevice* serving_dev = real ? real.get() : stack->device();
  if (!bench::CopyIndexImage(master_dev->get(),
                             real ? real.get() : stack->raw.get(), image_bytes)
           .ok()) {
    std::fprintf(stderr, "image copy failed\n");
    return 1;
  }
  auto serving_view = (*idx)->WithDevice(serving_dev);
  core::StorageIndex* serving = serving_view.get();

  core::EngineOptions async_opts;
  async_opts.num_contexts = 64;
  async_opts.max_inflight_ios = 512;
  core::QueryEngine async_engine(serving, &w->gen.base, async_opts);
  auto async_res = async_engine.SearchBatch(w->gen.queries, 1);
  if (!async_res.ok()) return 1;

  // Synchronous run at queue depth 1. The simulated configuration adds
  // the mmap-like page-fault cost per I/O; the real device is simply
  // driven one blocking read at a time.
  std::unique_ptr<core::StorageIndex> sync_view;
  std::unique_ptr<storage::ChargedDevice> mmap_like;
  if (real) {
    sync_view = (*idx)->WithDevice(real.get());
  } else {
    mmap_like = std::make_unique<storage::ChargedDevice>(
        stack->raw.get(),
        storage::GetInterfaceSpec(storage::InterfaceKind::kMmapSync));
    sync_view = (*idx)->WithDevice(mmap_like.get());
  }
  core::EngineOptions sync_opts;
  sync_opts.synchronous = true;
  core::QueryEngine sync_engine(sync_view.get(), &w->gen.base, sync_opts);
  auto sync_res = sync_engine.SearchBatch(w->gen.queries, 1);
  if (!sync_res.ok()) return 1;

  bench::PrintHeader("Sec. 6.5: synchronous vs asynchronous I/O (" +
                         spec->name + " n=" + std::to_string(n) + ", " +
                         config_name + ")",
                     {"Mode", "query us", "mean I/Os", "QPS"});
  const double t_async = static_cast<double>(async_res->wall_ns) /
                         static_cast<double>(w->gen.queries.n());
  const double t_sync = static_cast<double>(sync_res->wall_ns) /
                        static_cast<double>(w->gen.queries.n());
  bench::PrintRow({"async (interleaved contexts)", bench::Fmt(t_async / 1e3, 1),
                   bench::Fmt(async_res->MeanIos(), 1),
                   bench::Fmt(async_res->QueriesPerSecond(), 0)});
  bench::PrintRow({real ? "sync (QD=1)" : "sync (mmap-like, QD=1)",
                   bench::Fmt(t_sync / 1e3, 1),
                   bench::Fmt(sync_res->MeanIos(), 1),
                   bench::Fmt(sync_res->QueriesPerSecond(), 0)});
  std::printf("\nSlowdown of synchronous execution: %.1fx (paper: 19.7x)\n",
              t_sync / t_async);
  std::printf(
      "The synchronous path pays the full device latency on every I/O "
      "(Fig. 1(A));\nthe asynchronous engine overlaps many queries' I/Os "
      "(Fig. 1(B)).\n");
  if (!real_path.empty()) std::remove(real_path.c_str());
  return 0;
}
