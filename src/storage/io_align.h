// Device-advertised direct-I/O alignment probing.
//
// Direct I/O on a 512e drive accepts 512-byte-aligned extents; a 4Kn
// drive (4096-byte logical blocks) rejects anything under 4 KiB. The
// real constraint is only known to the kernel, so the file devices probe
// it at open instead of hard-coding kSectorBytes:
//
//   1. statx(STATX_DIOALIGN) — the authoritative answer on kernels
//      >= 6.1 for both the offset/length granularity and the buffer
//      address alignment;
//   2. BLKSSZGET             — logical sector size, when the fd is a
//      raw block device;
//   3. 512                   — the paper's NVMe minimum, otherwise.
//
// The result feeds BlockDevice::io_alignment(), which the query engine
// uses to size and align its table-entry reads.
#pragma once

#include <cstdint>

namespace e2lshos::storage {

/// \brief What the kernel advertises for direct I/O on one open file.
struct DioAlignment {
  uint32_t offset_align = 0;  ///< Required offset/length granularity.
  uint32_t mem_align = 0;     ///< Required buffer address alignment.
  bool probed = false;        ///< True when the kernel reported values.
};

/// Probe the direct-I/O alignment for `fd` (statx STATX_DIOALIGN, then
/// BLKSSZGET for block devices). `probed` is false when neither source
/// answered and the fields are 0.
DioAlignment ProbeDioAlignment(int fd);

/// Collapse a probe into the single figure BlockDevice::io_alignment()
/// reports: the larger of the two constraints, never below the 512-byte
/// sector the index layout assumes.
uint32_t EffectiveDioAlignment(const DioAlignment& alignment);

}  // namespace e2lshos::storage
