// Reproduces Figure 8: the in-memory-speed IOPS requirement on SIFT for
// varying k (1, 5, 10, 50, 100), B = 512. The requirement should stay
// within the same order of magnitude across k because both T_E2LSH and
// N_IO grow together.
#include "common.h"

#include "model/cost_model.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec), args.queries, 100);
  if (!w.ok()) return 1;
  auto index = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
  if (!index.ok()) return 1;

  bench::PrintHeader(
      "Figure 8: required kIOPS for in-memory E2LSH speeds vs k (B = 512, " +
          name + ")",
      {"k", "ratio(hi acc)", "kIOPS(hi)", "ratio(lo acc)", "kIOPS(lo)"});
  for (const uint32_t k : {1u, 5u, 10u, 50u, 100u}) {
    const auto profile =
        bench::ProfileInMemoryIo(index->get(), *w, k, bench::DefaultSFactors());
    std::vector<bench::IoProfilePoint> pts = profile;
    std::sort(pts.begin(), pts.end(),
              [](const auto& a, const auto& b) { return a.ratio < b.ratio; });
    auto req = [&](const bench::IoProfilePoint& p) {
      return model::RequiredIopsAsync(p.IoAt(128), p.e2lsh_query_ns) / 1e3;
    };
    bench::PrintRow({std::to_string(k), bench::Fmt(pts.front().ratio, 3),
                     bench::Fmt(req(pts.front()), 0),
                     bench::Fmt(pts.back().ratio, 3),
                     bench::Fmt(req(pts.back()), 0)});
  }
  std::printf(
      "\nExpected shape (paper): no substantial change in the IOPS "
      "requirement across k.\n");
  return 0;
}
