// Dataset file I/O in the standard ANN-benchmark formats, so the library
// runs on the paper's real corpora (SIFT/GIST/BIGANN distributions) when
// available:
//
//   .fvecs — per vector: int32 dimension d, then d float32 values.
//   .bvecs — per vector: int32 dimension d, then d uint8 values
//            (converted to float32 in memory, matching our pipeline).
//
// Plus Save/Load for our own float32 format (a thin header + raw rows).
#pragma once

#include <string>

#include "data/dataset.h"

namespace e2lshos::data {

/// Load up to `max_vectors` vectors (0 = all) from an .fvecs file.
Result<Dataset> LoadFvecs(const std::string& path, uint64_t max_vectors = 0);

/// Load up to `max_vectors` vectors (0 = all) from a .bvecs file.
Result<Dataset> LoadBvecs(const std::string& path, uint64_t max_vectors = 0);

/// Write a dataset as .fvecs (interoperates with standard ANN tooling).
Status SaveFvecs(const Dataset& dataset, const std::string& path);

/// Dispatch on extension: .fvecs or .bvecs.
Result<Dataset> LoadVectorFile(const std::string& path, uint64_t max_vectors = 0);

}  // namespace e2lshos::data
