// Concurrency hammer tests for the storage layer: many threads submit
// reads, poll completions, and write to a shared device at once. The
// assertions check that no request or completion is lost or corrupted;
// the ASan and TSan CI presets check the memory/race side (these suites
// carry the `concurrency` ctest label the TSan job selects on).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <thread>
#include <vector>

#include "storage/file_device.h"
#include "storage/memory_device.h"
#include "storage/queue_router.h"
#include "storage/simulated_device.h"
#include "storage/striped_device.h"
#include "storage/uring_device.h"
#include "util/aligned_buffer.h"

namespace e2lshos::storage {
namespace {

constexpr uint32_t kThreads = 4;
constexpr uint32_t kReadsPerThread = 200;
constexpr uint32_t kReadSectors = 64;   ///< Read region: sectors [0, 64).
constexpr uint64_t kWriteBase = kReadSectors * kSectorBytes;

uint8_t PatternByte(uint64_t offset, uint64_t i) {
  return static_cast<uint8_t>((offset / kSectorBytes + i) & 0xff);
}

/// Fill the read region with a per-sector pattern via the device's
/// (synchronous) write path.
void WritePattern(BlockDevice* dev) {
  std::vector<uint8_t> sector(kSectorBytes);
  for (uint64_t s = 0; s < kReadSectors; ++s) {
    const uint64_t offset = s * kSectorBytes;
    for (uint64_t i = 0; i < kSectorBytes; ++i) sector[i] = PatternByte(offset, i);
    ASSERT_TRUE(dev->Write(offset, sector.data(), kSectorBytes).ok());
  }
}

/// The shared hammer: kThreads reader threads each submit
/// kReadsPerThread sector reads (every read gets a dedicated buffer) and
/// poll the shared completion stream, while two writer threads pound a
/// disjoint region. Afterwards every completion must have been harvested
/// exactly once and every buffer must hold its sector's pattern.
void HammerSharedDevice(BlockDevice* dev) {
  WritePattern(dev);

  const uint32_t total_reads = kThreads * kReadsPerThread;
  std::vector<util::AlignedBuffer> bufs(total_reads);
  for (auto& b : bufs) b.Reset(kSectorBytes);

  std::atomic<uint32_t> completed{0};
  std::atomic<uint32_t> io_errors{0};
  std::vector<uint8_t> seen(total_reads);  // each slot written by one harvester

  auto drain = [&](IoCompletion* comps, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      ASSERT_LT(comps[i].user_data, total_reads);
      seen[comps[i].user_data] = 1;
      if (comps[i].code != StatusCode::kOk) io_errors.fetch_add(1);
      completed.fetch_add(1);
    }
  };

  auto reader = [&](uint32_t tid) {
    IoCompletion comps[32];
    for (uint32_t r = 0; r < kReadsPerThread; ++r) {
      const uint32_t global = tid * kReadsPerThread + r;
      IoRequest req;
      req.offset = (static_cast<uint64_t>(global) % kReadSectors) * kSectorBytes;
      req.length = kSectorBytes;
      req.buf = bufs[global].data();
      req.user_data = global;
      for (;;) {
        const Status st = dev->SubmitRead(req);
        if (st.ok()) break;
        ASSERT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
        drain(comps, dev->PollCompletions(comps, 32));
        std::this_thread::yield();
      }
      drain(comps, dev->PollCompletions(comps, 32));
    }
  };
  auto writer = [&](uint32_t tid) {
    std::vector<uint8_t> block(kSectorBytes, static_cast<uint8_t>(0xA0 + tid));
    for (uint32_t w = 0; w < 200; ++w) {
      const uint64_t offset = kWriteBase + ((tid * 200 + w) % 64) * kSectorBytes;
      ASSERT_TRUE(dev->Write(offset, block.data(), kSectorBytes).ok());
    }
  };

  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) threads.emplace_back(reader, t);
  for (uint32_t t = 0; t < 2; ++t) threads.emplace_back(writer, t);
  for (auto& th : threads) th.join();

  // Drain whatever is still pending (SimulatedDevice completes on the
  // wall clock; FileDevice on its worker pool).
  IoCompletion comps[64];
  while (completed.load() < total_reads) {
    const size_t n = dev->PollCompletions(comps, 64);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    drain(comps, n);
  }
  EXPECT_EQ(completed.load(), total_reads);  // no lost or duplicated completions
  EXPECT_EQ(dev->outstanding(), 0u);
  EXPECT_EQ(io_errors.load(), 0u);

  // Exactly-once delivery and uncorrupted data.
  uint32_t delivered = 0;
  for (uint32_t g = 0; g < total_reads; ++g) delivered += seen[g];
  EXPECT_EQ(delivered, total_reads);
  for (uint32_t g = 0; g < total_reads; ++g) {
    const uint64_t offset =
        (static_cast<uint64_t>(g) % kReadSectors) * kSectorBytes;
    const uint8_t* data = bufs[g].data();
    bool match = true;
    for (uint64_t i = 0; i < kSectorBytes && match; ++i) {
      match = data[i] == PatternByte(offset, i);
    }
    EXPECT_TRUE(match) << "read " << g << " returned corrupted data";
  }

  const DeviceStats& stats = dev->stats();
  EXPECT_GE(stats.reads_submitted, total_reads);
  EXPECT_EQ(stats.reads_completed, stats.reads_submitted);
}

TEST(DeviceConcurrency, MemoryDeviceSharedHammer) {
  auto dev = MemoryDevice::Create(1 << 20, /*queue_capacity=*/256);
  ASSERT_TRUE(dev.ok());
  HammerSharedDevice(dev->get());
}

TEST(DeviceConcurrency, SimulatedDeviceSharedHammer) {
  DeviceModel model{"hammer-ssd", 8, 1000, 256, 1 << 20};
  auto dev = SimulatedDevice::Create(model);
  ASSERT_TRUE(dev.ok());
  HammerSharedDevice(dev->get());
}

TEST(DeviceConcurrency, SharedFileDeviceHammer) {
  const std::string path = ::testing::TempDir() + "/e2_concurrency_hammer.bin";
  FileDevice::Options opt;
  opt.capacity = 1 << 20;
  opt.io_threads = 4;
  opt.queue_capacity = 256;
  auto dev = FileDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  HammerSharedDevice(dev->get());
  dev->reset();
  std::remove(path.c_str());
}

// The io_uring backend under the same hammer: many threads write SQEs
// into one submission ring and drain one completion ring concurrently.
// A lost wakeup, a torn tail publish, or a double-harvested CQE shows up
// here as a lost/duplicated completion or corrupted data.
TEST(DeviceConcurrency, SharedUringDeviceHammer) {
  if (!UringDevice::Available()) {
    GTEST_SKIP() << "io_uring unavailable on this host";
  }
  const std::string path = ::testing::TempDir() + "/e2_uring_hammer.bin";
  UringDevice::Options opt;
  opt.capacity = 1 << 20;
  opt.queue_capacity = 256;
  opt.sq_entries = 64;
  auto dev = UringDevice::Create(path, opt);
  if (!dev.ok()) GTEST_SKIP() << dev.status().ToString();
  HammerSharedDevice(dev->get());
  dev->reset();
  std::remove(path.c_str());
}

// Same hammer with a tiny submission ring and submit batching forced to
// the maximum: SQ-full recycling and Poll-side flushing race with the
// readers instead of staying on the happy path.
TEST(DeviceConcurrency, UringDeviceTinyRingHammer) {
  if (!UringDevice::Available()) {
    GTEST_SKIP() << "io_uring unavailable on this host";
  }
  const std::string path = ::testing::TempDir() + "/e2_uring_tiny_hammer.bin";
  UringDevice::Options opt;
  opt.capacity = 1 << 20;
  opt.queue_capacity = 32;
  opt.sq_entries = 4;
  opt.submit_batch = 1000;  // only Poll flushes
  auto dev = UringDevice::Create(path, opt);
  if (!dev.ok()) GTEST_SKIP() << dev.status().ToString();
  HammerSharedDevice(dev->get());
  dev->reset();
  std::remove(path.c_str());
}

TEST(DeviceConcurrency, StripedDeviceConcurrentPollers) {
  std::vector<std::unique_ptr<BlockDevice>> children;
  for (int i = 0; i < 4; ++i) {
    auto child = MemoryDevice::Create(1 << 18, /*queue_capacity=*/512);
    ASSERT_TRUE(child.ok());
    children.push_back(std::move(child).value());
  }
  auto striped = StripedDevice::Create(std::move(children));
  ASSERT_TRUE(striped.ok());
  HammerSharedDevice(striped->get());
}

TEST(DeviceConcurrency, QueueRouterIsolationUnderConcurrency) {
  // Each thread drives its own routed queue over one shared simulated
  // device; a queue must receive exactly its own completions even while
  // all queues submit and poll concurrently.
  DeviceModel model{"router-ssd", 8, 500, 4096, 1 << 20};
  auto dev = SimulatedDevice::Create(model);
  ASSERT_TRUE(dev.ok());
  WritePattern(dev->get());

  QueueRouter router(dev->get());
  std::vector<std::unique_ptr<BlockDevice>> queues;
  for (uint32_t t = 0; t < kThreads; ++t) queues.push_back(router.CreateQueue());

  std::atomic<uint32_t> foreign{0};
  auto worker = [&](uint32_t tid) {
    BlockDevice* queue = queues[tid].get();
    std::vector<util::AlignedBuffer> bufs(kReadsPerThread);
    for (auto& b : bufs) b.Reset(kSectorBytes);
    uint32_t got = 0;
    IoCompletion comps[32];
    for (uint32_t r = 0; r < kReadsPerThread; ++r) {
      IoRequest req;
      req.offset = (static_cast<uint64_t>(r) % kReadSectors) * kSectorBytes;
      req.length = kSectorBytes;
      req.buf = bufs[r].data();
      req.user_data = tid * 1000 + r;
      for (;;) {
        const Status st = queue->SubmitRead(req);
        if (st.ok()) break;
        ASSERT_EQ(st.code(), StatusCode::kResourceExhausted);
        std::this_thread::yield();
      }
    }
    while (got < kReadsPerThread) {
      const size_t n = queue->PollCompletions(comps, 32);
      for (size_t i = 0; i < n; ++i) {
        if (comps[i].user_data / 1000 != tid) foreign.fetch_add(1);
      }
      got += static_cast<uint32_t>(n);
      if (n == 0) std::this_thread::yield();
    }
    EXPECT_EQ(got, kReadsPerThread);
  };

  std::vector<std::thread> threads;
  for (uint32_t t = 0; t < kThreads; ++t) threads.emplace_back(worker, t);
  for (auto& th : threads) th.join();
  EXPECT_EQ(foreign.load(), 0u);
  EXPECT_EQ(dev->get()->outstanding(), 0u);
}

}  // namespace
}  // namespace e2lshos::storage
