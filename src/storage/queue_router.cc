#include "storage/queue_router.h"

namespace e2lshos::storage {

std::unique_ptr<BlockDevice> QueueRouter::CreateQueue() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = static_cast<uint32_t>(inboxes_.size());
  if (id >= 255) return nullptr;
  inboxes_.emplace_back();
  return std::make_unique<RoutedQueue>(this, id);
}

Status QueueRouter::Submit(uint32_t queue_id, const IoRequest& req) {
  if (req.user_data >> kTagShift) {
    return Status::InvalidArgument("user_data must leave the top 8 bits free");
  }
  IoRequest tagged = req;
  tagged.user_data |= static_cast<uint64_t>(queue_id + 1) << kTagShift;
  // No router lock: every BlockDevice's SubmitRead is itself thread-safe,
  // and serializing submissions here would put all shards' submission
  // paths behind one mutex. The router lock only protects the inboxes.
  return inner_->SubmitRead(tagged);
}

size_t QueueRouter::Poll(uint32_t queue_id, IoCompletion* out, size_t max) {
  size_t n = 0;
  {
    // First serve completions other pollers routed to this inbox.
    std::lock_guard<std::mutex> lock(mu_);
    auto& inbox = inboxes_[queue_id];
    while (n < max && !inbox.empty()) {
      out[n++] = inbox.front();
      inbox.pop_front();
    }
  }
  if (n == max) return n;

  // Drain the shared device OUTSIDE the router lock — the device is
  // thread-safe, and completion harvesting is every shard's spin loop;
  // the lock is held only while routing. Keep ours, route the rest.
  IoCompletion batch[64];
  for (;;) {
    const size_t got = inner_->PollCompletions(batch, 64);
    if (got == 0) break;
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < got; ++i) {
      const uint32_t owner =
          static_cast<uint32_t>(batch[i].user_data >> kTagShift);
      batch[i].user_data &= (1ULL << kTagShift) - 1;
      if (owner == queue_id + 1 && n < max) {
        out[n++] = batch[i];
      } else if (owner >= 1 && owner <= inboxes_.size()) {
        // Foreign completions, and our own overflow past `max`, go to
        // the owner's inbox for its next poll.
        inboxes_[owner - 1].push_back(batch[i]);
      }
      // Untagged or unknown-owner completions are dropped; they cannot
      // arise from requests submitted through this router.
    }
    if (got < 64) break;
  }
  return n;
}

}  // namespace e2lshos::storage
