// net::Client — a blocking, single-connection client for the net::Daemon
// wire protocol (net/wire.h).
//
//   ClientOptions opt;
//   opt.recv_timeout_ms = 500;   // stalled daemon -> kDeadlineExceeded
//   opt.max_retries = 3;         // transparent reconnect + resend
//   auto client = net::Client::Connect("unix:/tmp/e2lshos.sock", opt);
//   // or "tcp:127.0.0.1:7070"
//   auto results = (*client)->SearchBatch("default", queries.data(),
//                                         count, dim, /*k=*/10);
//
// One request is in flight at a time (request_id echo is verified on
// every response); open several clients for concurrent streams. All
// socket I/O retries EINTR and short reads/writes; SIGPIPE is
// suppressed, so a daemon that vanished surfaces as an IoError Status,
// never a signal. Received frames obey the same max_frame_bytes cap as
// the daemon side — a corrupt length prefix is a protocol error, not an
// allocation.
//
// Fault tolerance (opt-in via ClientOptions):
//  - recv_timeout_ms arms SO_RCVTIMEO on the connection; a daemon that
//    stops responding surfaces as kDeadlineExceeded instead of hanging
//    the caller forever.
//  - max_retries > 0 turns transport failures into transparent
//    retries. The request_id is assigned once per logical request and
//    the identical frame bytes are resent, so a daemon that executed
//    the request before the connection died sees a duplicate of the
//    SAME id — retries are idempotent at the protocol level. A
//    transport error (kIoError, kDeadlineExceeded) closes the socket
//    and reconnects before resending; a daemon-side kUnavailable
//    (degraded mode shedding) keeps the connection and backs off with
//    escalating sleeps (retry_backoff_ms, doubling per attempt).
//    Request-level semantic errors (bad index, dimension mismatch) are
//    never retried.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "net/socket.h"
#include "net/wire.h"
#include "util/status.h"

namespace e2lshos::net {

struct ClientOptions {
  /// Received frames above this cap are protocol errors.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// SO_RCVTIMEO per connection; 0 = block forever. Expiry surfaces as
  /// kDeadlineExceeded (and, with retries, triggers a reconnect).
  uint32_t recv_timeout_ms = 0;
  /// Extra attempts after the first on transport failure or daemon
  /// kUnavailable; 0 = fail fast.
  uint32_t max_retries = 0;
  /// Base sleep before re-sending after kUnavailable; doubles per
  /// attempt. Reconnect-path retries resend immediately.
  uint32_t retry_backoff_ms = 50;
};

class Client {
 public:
  /// Connect to "unix:PATH" or "tcp:HOST:PORT" (see net::ParseEndpoint).
  static Result<std::unique_ptr<Client>> Connect(const std::string& endpoint,
                                                 const ClientOptions& options);
  /// Back-compat overload: options all default except the frame cap.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& endpoint,
      uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trip liveness probe.
  Status Ping();

  /// Top-k for one query of `dim` floats against the daemon's index
  /// `index`. k == 0 uses the index's server-side default (Configure).
  /// `nowait` sets kFlagNoWait: a full submission queue returns a
  /// kResourceExhausted per-query status instead of blocking.
  Result<WireQueryResult> Search(const std::string& index, const float* query,
                                 uint32_t dim, uint32_t k,
                                 bool nowait = false);

  /// Top-k for `count` packed queries; one result per query, in order.
  Result<std::vector<WireQueryResult>> SearchBatch(const std::string& index,
                                                   const float* queries,
                                                   uint32_t count,
                                                   uint32_t dim, uint32_t k,
                                                   bool nowait = false);

  /// Set the server-side default k applied when a Search carries k == 0.
  Status Configure(const std::string& index, uint32_t default_k);

  /// Insert `count` packed rows of `dim` floats into the daemon's index
  /// `index` (live mutation; legal while the daemon is serving). The ack
  /// carries the first assigned id (consecutive from there) and the
  /// epoch that made the rows searchable. NOTE: the daemon does not
  /// deduplicate request ids, so a transport-failure retry of an insert
  /// that DID execute applies it again under fresh ids — run inserts on
  /// a max_retries = 0 client when that matters.
  Result<WireUpdateAck> Insert(const std::string& index, const float* rows,
                               uint32_t count, uint32_t dim);

  /// Tombstone `count` ids on the daemon's index (idempotent — safe to
  /// retry).
  Result<WireUpdateAck> Remove(const std::string& index, const uint32_t* ids,
                               uint32_t count);

  /// Erase tombstones for `count` ids (idempotent — safe to retry).
  Result<WireUpdateAck> Restore(const std::string& index, const uint32_t* ids,
                                uint32_t count);

  /// Per-index serving + device metrics, captured by value on the daemon.
  Result<WireStats> Stats(const std::string& index);

  /// Daemon health: ok / degraded (breaker tripped, queries shed) /
  /// unhealthy, plus rolling error and shed rates.
  Result<WireHealth> Health();

  /// Times the connection was re-established by the retry path.
  uint64_t reconnects() const { return reconnects_; }

 private:
  Client(int fd, Endpoint endpoint, const ClientOptions& options)
      : fd_(fd), endpoint_(std::move(endpoint)), options_(options) {}

  /// Shared encode/round-trip/decode for the three Update operations.
  Result<WireUpdateAck> Update(const std::string& index, UpdateOp op,
                               const void* payload, uint32_t count,
                               uint32_t dim);

  /// Apply socket options (timeouts) to a freshly connected fd.
  Status ArmSocket(int fd) const;
  /// Close the current socket and dial `endpoint_` again.
  Status Reconnect();

  /// Write `frame`, read one response frame, validate header + echo of
  /// `request_id`, decode the status preamble. On success `*payload`
  /// holds the response bytes and body_offset points past the preamble.
  /// Retries per ClientOptions: the same frame bytes (same request_id)
  /// are resent after a reconnect (transport failure) or a backoff
  /// (daemon kUnavailable).
  Status RoundTrip(const std::vector<uint8_t>& frame, uint64_t request_id,
                   std::vector<uint8_t>* payload, size_t* body_offset);
  /// One attempt of RoundTrip, no retry policy.
  Status RoundTripOnce(const std::vector<uint8_t>& frame, uint64_t request_id,
                       std::vector<uint8_t>* payload, size_t* body_offset);

  int fd_;
  Endpoint endpoint_;
  ClientOptions options_;
  uint64_t next_request_id_ = 1;
  uint64_t reconnects_ = 0;
};

}  // namespace e2lshos::net
