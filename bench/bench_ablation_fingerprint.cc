// Ablation (DESIGN.md): the table-index width u vs fingerprint width
// (32 - u) trade-off of Sec. 5.2. Smaller u shrinks the on-storage hash
// tables and densifies bucket chains, but merges more distinct compound
// values per slot; the fingerprints must then reject the extra entries.
// We sweep u and report table size, chain occupancy, fingerprint
// rejections, I/Os, query time, and accuracy — all on the same dataset
// and hash family.
#include "common.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec), args.queries, 1);
  if (!w.ok()) return 1;

  bench::PrintHeader(
      "Ablation: table bits u vs fingerprint (n=" + std::to_string(w->n()) +
          ", " + name + ")",
      {"u", "tables", "buckets", "fp rejects/query", "I/Os/query", "query us",
       "ratio"});

  for (uint32_t u = 10; u <= 18; u += 2) {
    auto dev = storage::MemoryDevice::Create(8ULL << 30);
    if (!dev.ok()) continue;
    core::BuildOptions opt;
    opt.table_bits = u;
    auto idx = core::IndexBuilder::Build(w->gen.base, w->params, dev->get(), opt);
    if (!idx.ok()) continue;
    core::QueryEngine engine(idx->get(), &w->gen.base);
    auto batch = engine.SearchBatch(w->gen.queries, 1);
    if (!batch.ok()) continue;

    uint64_t rejects = 0;
    for (const auto& s : batch->stats) rejects += s.fp_rejects;
    const auto sizes = (*idx)->sizes();
    bench::PrintRow(
        {std::to_string(u), bench::FmtBytes(sizes.table_bytes),
         bench::FmtBytes(sizes.bucket_bytes),
         bench::Fmt(static_cast<double>(rejects) / w->gen.queries.n(), 1),
         bench::Fmt(batch->MeanIos(), 1),
         bench::Fmt(static_cast<double>(batch->wall_ns) / w->gen.queries.n() / 1e3,
                    1),
         bench::Fmt(data::MeanOverallRatio(w->gt, batch->results, 1), 3)});
  }
  std::printf(
      "\nExpected shape: accuracy is u-invariant (fingerprints restore "
      "32-bit\nprecision); small u inflates rejects and per-bucket scan "
      "cost, large u\ninflates table bytes. The paper picks u slightly "
      "below log2(n).\n");
  return 0;
}
