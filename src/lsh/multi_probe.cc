#include "lsh/multi_probe.h"

#include <algorithm>

namespace e2lshos::lsh {

MultiProbeSequence::MultiProbeSequence(const std::vector<float>& residuals)
    : m_(static_cast<uint32_t>(residuals.size())) {
  sorted_atoms_.reserve(2 * m_);
  for (uint32_t j = 0; j < m_; ++j) {
    const float lo = residuals[j];         // distance to lower boundary
    const float hi = 1.0f - residuals[j];  // distance to upper boundary
    sorted_atoms_.push_back({lo * lo, j, -1});
    sorted_atoms_.push_back({hi * hi, j, +1});
  }
  std::sort(sorted_atoms_.begin(), sorted_atoms_.end(),
            [](const Atom& a, const Atom& b) { return a.score2 < b.score2; });
  // Seed: the singleton subset {atom 0}.
  if (!sorted_atoms_.empty()) {
    Subset s;
    s.atoms = {0};
    s.score = sorted_atoms_[0].score2;
    heap_.push_back(std::move(s));
  }
}

bool MultiProbeSequence::Valid(const Subset& s) const {
  // A perturbation may not move the same component both ways. Atoms for
  // the same component are the (2j, 2j+1) pair before sorting; after
  // sorting we just check func collisions.
  for (size_t i = 0; i < s.atoms.size(); ++i) {
    for (size_t k = i + 1; k < s.atoms.size(); ++k) {
      if (sorted_atoms_[s.atoms[i]].func == sorted_atoms_[s.atoms[k]].func) {
        return false;
      }
    }
  }
  return true;
}

bool MultiProbeSequence::Next(std::vector<int8_t>* deltas) {
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Subset>());
    Subset top = std::move(heap_.back());
    heap_.pop_back();

    // Generate successors (shift the last atom; expand with the next).
    const uint32_t last = top.atoms.back();
    if (last + 1 < sorted_atoms_.size()) {
      Subset shift = top;
      shift.atoms.back() = last + 1;
      shift.score += sorted_atoms_[last + 1].score2 - sorted_atoms_[last].score2;
      heap_.push_back(std::move(shift));
      std::push_heap(heap_.begin(), heap_.end(), std::greater<Subset>());

      Subset expand = top;
      expand.atoms.push_back(last + 1);
      expand.score += sorted_atoms_[last + 1].score2;
      heap_.push_back(std::move(expand));
      std::push_heap(heap_.begin(), heap_.end(), std::greater<Subset>());
    }

    if (!Valid(top)) continue;
    deltas->assign(m_, 0);
    for (const uint32_t a : top.atoms) {
      (*deltas)[sorted_atoms_[a].func] = sorted_atoms_[a].delta;
    }
    return true;
  }
  return false;
}

std::vector<std::vector<int8_t>> MultiProbeSequence::FirstT(uint32_t t) {
  std::vector<std::vector<int8_t>> out;
  std::vector<int8_t> deltas;
  while (out.size() < t && Next(&deltas)) out.push_back(deltas);
  return out;
}

uint32_t PerturbedHash32(const int32_t* floors, const int8_t* deltas, uint32_t m) {
  std::vector<int32_t> perturbed(floors, floors + m);
  for (uint32_t j = 0; j < m; ++j) perturbed[j] += deltas[j];
  return CompoundHash::Fold(perturbed.data(), m);
}

}  // namespace e2lshos::lsh
