// In-DRAM object store: an n x d row-major float32 matrix.
//
// Following the paper (Sec. 3), the database itself always lives in DRAM;
// only the hash index is placed on storage. Byte-typed datasets (SIFT,
// MNIST, BIGANN) are represented as float32 as well — the value grid is
// preserved by the generators, only the in-memory width differs (see
// DESIGN.md, substitutions).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace e2lshos::data {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::string name, uint32_t dim) : name_(std::move(name)), d_(dim) {}

  /// Append one point (must have exactly dim() values).
  void Append(const float* point) {
    data_.insert(data_.end(), point, point + d_);
    ++n_;
  }

  void Reserve(uint64_t n) { data_.reserve(n * d_); }

  const float* Row(uint64_t i) const { return data_.data() + i * d_; }
  uint64_t n() const { return n_; }
  uint32_t dim() const { return d_; }
  const std::string& name() const { return name_; }
  uint64_t SizeBytes() const { return data_.size() * sizeof(float); }
  bool empty() const { return n_ == 0; }

  /// Largest absolute coordinate (the paper's x_max, defining R_max).
  float XMax() const;

  /// Split off the last `count` rows into a separate dataset (queries).
  Result<Dataset> SplitTail(uint64_t count);

  /// Raw storage access for bulk operations.
  std::vector<float>& mutable_data() { return data_; }
  const std::vector<float>& raw() const { return data_; }
  void set_n(uint64_t n) { n_ = n; }

 private:
  std::string name_;
  uint32_t d_ = 0;
  uint64_t n_ = 0;
  std::vector<float> data_;
};

}  // namespace e2lshos::data
