#include "storage/queue_router.h"

namespace e2lshos::storage {

std::unique_ptr<BlockDevice> QueueRouter::CreateQueue() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint32_t id = static_cast<uint32_t>(queues_.size());
  if (id >= kMaxQueues) return nullptr;
  queues_.push_back(std::make_unique<QueueState>());
  return std::make_unique<RoutedQueue>(this, id);
}

Status QueueRouter::Submit(uint32_t queue_id, const IoRequest& req) {
  if (req.user_data >> kTagShift) {
    return Status::InvalidArgument("user_data must leave the top 8 bits free");
  }
  IoRequest tagged = req;
  tagged.user_data |= static_cast<uint64_t>(queue_id + 1) << kTagShift;
  // No router lock: every BlockDevice's SubmitRead is itself thread-safe,
  // and serializing submissions here would put all shards' submission
  // paths behind one mutex. The router lock only protects the inboxes.
  QueueState& qs = *queues_[queue_id];
  const Status st = inner_->SubmitRead(tagged);
  if (st.ok()) {
    qs.outstanding.fetch_add(1, std::memory_order_relaxed);
    qs.reads_submitted.fetch_add(1, std::memory_order_relaxed);
    qs.bytes_read.fetch_add(req.length, std::memory_order_relaxed);
  }
  return st;
}

size_t QueueRouter::Poll(uint32_t queue_id, IoCompletion* out, size_t max) {
  QueueState& qs = *queues_[queue_id];
  size_t n = 0;
  {
    // First serve completions other pollers routed to this inbox.
    std::lock_guard<std::mutex> lock(mu_);
    auto& inbox = qs.inbox;
    while (n < max && !inbox.empty()) {
      out[n++] = inbox.front();
      inbox.pop_front();
    }
    qs.reads_completed += n;
    for (size_t i = 0; i < n; ++i) qs.read_latency.Add(out[i].latency_ns);
  }
  if (n == max) {
    qs.outstanding.fetch_sub(static_cast<uint32_t>(n),
                             std::memory_order_relaxed);
    return n;
  }

  // Drain the shared device OUTSIDE the router lock — the device is
  // thread-safe, and completion harvesting is every shard's spin loop;
  // the lock is held only while routing. Keep ours, route the rest.
  IoCompletion batch[64];
  for (;;) {
    const size_t got = inner_->PollCompletions(batch, 64);
    if (got == 0) break;
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < got; ++i) {
      const uint32_t owner =
          static_cast<uint32_t>(batch[i].user_data >> kTagShift);
      batch[i].user_data &= (1ULL << kTagShift) - 1;
      if (owner == queue_id + 1 && n < max) {
        out[n++] = batch[i];
        qs.reads_completed += 1;
        qs.read_latency.Add(batch[i].latency_ns);
      } else if (owner >= 1 && owner <= queues_.size()) {
        // Foreign completions, and our own overflow past `max`, go to
        // the owner's inbox for its next poll.
        queues_[owner - 1]->inbox.push_back(batch[i]);
      }
      // Untagged or unknown-owner completions are dropped; they cannot
      // arise from requests submitted through this router.
    }
    if (got < 64) break;
  }
  qs.outstanding.fetch_sub(static_cast<uint32_t>(n),
                           std::memory_order_relaxed);
  return n;
}

Status QueueRouter::WriteThrough(uint32_t queue_id, uint64_t offset,
                                 const void* data, uint32_t length) {
  const Status st = inner_->Write(offset, data, length);
  if (st.ok()) {
    queues_[queue_id]->bytes_written.fetch_add(length,
                                               std::memory_order_relaxed);
  }
  return st;
}

uint32_t QueueRouter::QueueOutstanding(uint32_t queue_id) const {
  return queues_[queue_id]->outstanding.load(std::memory_order_relaxed);
}

DeviceStats QueueRouter::QueueStats(uint32_t queue_id) const {
  const QueueState& qs = *queues_[queue_id];
  DeviceStats out;
  out.reads_submitted = qs.reads_submitted.load(std::memory_order_relaxed);
  out.bytes_read = qs.bytes_read.load(std::memory_order_relaxed);
  out.bytes_written = qs.bytes_written.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  out.reads_completed = qs.reads_completed;
  out.read_latency = qs.read_latency;
  return out;
}

void QueueRouter::ResetQueueStats(uint32_t queue_id) {
  QueueState& qs = *queues_[queue_id];
  qs.reads_submitted.store(0, std::memory_order_relaxed);
  qs.bytes_read.store(0, std::memory_order_relaxed);
  qs.bytes_written.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mu_);
  qs.reads_completed = 0;
  qs.read_latency.Reset();
}

}  // namespace e2lshos::storage
