// Device models calibrated to the paper's Table 2 and the configuration
// matrix of Table 5.
//
//   Table 2 (measured random-read kIOPS at 512 B):
//     device   QD=1     QD=128
//     cSSD       7.2       273
//     eSSD      27.6     1,400
//     XLFDD    132.3     3,860
//     HDD       0.21      0.54
//
// Calibration: service_time = 1 / IOPS(QD=1);
//              parallel_units = round(IOPS(QD=128) * service_time).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/simulated_device.h"

namespace e2lshos::storage {

/// \brief Named device models from Table 2.
enum class DeviceKind { kCssd, kEssd, kXlfdd, kHdd };

/// Return the calibrated model for a device kind.
DeviceModel GetDeviceModel(DeviceKind kind);

/// All Table 2 device kinds with display names.
std::vector<std::pair<DeviceKind, std::string>> AllDeviceKinds();

/// Instantiate a simulated device of the given kind.
Result<std::unique_ptr<SimulatedDevice>> MakeDevice(DeviceKind kind);

/// \brief One row of Table 5: a device type and count.
struct StorageConfig {
  DeviceKind kind;
  uint32_t count;
  std::string DisplayName() const;
};

/// The five storage configurations evaluated in Table 5.
std::vector<StorageConfig> Table5Configs();

// ---------------------------------------------------------------------------
// Real-file backends. The simulated kinds above model the paper's
// hardware; these serve an actual index image on an actual SSD. "file"
// is the pread-thread-pool emulation, "uring" submits genuine async I/O
// through io_uring (real queue depth, no per-read thread hop).
// ---------------------------------------------------------------------------

/// \brief How a real backing file is driven.
enum class FileBackendKind { kFile, kUring };

/// Parse "file" / "uring" (case-sensitive, the CLI flag vocabulary).
Result<FileBackendKind> ParseFileBackendKind(const std::string& name);

const char* FileBackendName(FileBackendKind kind);

/// True when the backend can actually run here ("uring" needs the
/// compiled-in io_uring gate AND a kernel that accepts the syscalls;
/// "file" always can).
bool FileBackendAvailable(FileBackendKind kind);

/// \brief Shared option surface for the real-file backends.
struct FileBackendOptions {
  uint64_t capacity = 0;       ///< Create() sizes the file to this.
  uint32_t queue_capacity = 1024;
  bool direct_io = false;
  uint32_t io_threads = 4;     ///< FileDevice only: pread pool width.
  bool sqpoll = false;         ///< UringDevice only: kernel SQ polling.
};

/// Create (truncate) `path` under the chosen backend.
Result<std::unique_ptr<BlockDevice>> CreateFileBackend(
    FileBackendKind kind, const std::string& path,
    const FileBackendOptions& options);

/// Open an existing file (capacity from file size) under the backend.
Result<std::unique_ptr<BlockDevice>> OpenFileBackend(
    FileBackendKind kind, const std::string& path,
    const FileBackendOptions& options);

}  // namespace e2lshos::storage
