// Reproduces Figure 11: E2LSHoS speedup over in-memory SRS on SIFT for
// the six storage configuration groups:
//   Group 1: cSSD x 1 (io_uring / SPDK)        — device IOPS limited
//   Group 2: {cSSD x 4, eSSD x 1, eSSD x 8} with io_uring — interface CPU
//            limited (~1 MIOPS/core)
//   Group 3: cSSD x 4 with SPDK
//   Group 4: {eSSD x 1, eSSD x 8} with SPDK
//   Group 5: in-memory E2LSH
//   Group 6: XLFDD x 12 with the XLFDD interface
//
// One index image is built once and copied onto every storage stack, so
// all configurations answer from byte-identical indexes.
#include "common.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  auto json = args.OpenJson();
  constexpr double kTargetRatio = 1.05;
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  // SRS query time is linear in n while E2LSHoS pays per-I/O costs that
  // barely grow, so the paper's Fig. 11 separation needs a larger n than
  // the registry's quick default.
  const uint64_t n = args.n ? args.n : (args.fast ? 50000 : 200000);
  auto w = bench::MakeWorkload(*spec, n, args.queries ? args.queries : 200, 1);
  if (!w.ok()) return 1;

  // Build once on an instant device; copy the image to every config.
  auto master_dev = storage::MemoryDevice::Create(8ULL << 30);
  if (!master_dev.ok()) return 1;
  auto master = core::IndexBuilder::Build(w->gen.base, w->params,
                                          master_dev->get());
  if (!master.ok()) {
    std::fprintf(stderr, "build: %s\n", master.status().ToString().c_str());
    return 1;
  }
  const uint64_t image_bytes = (*master)->sizes().storage_bytes;

  // SRS reference sweep.
  const auto srs = bench::SweepSrs(*w, 1, bench::DefaultSrsFractions());
  const double t_srs = bench::QueryNsAtRatio(srs, kTargetRatio);

  struct Config {
    const char* group;
    storage::DeviceKind kind;
    uint32_t count;
    storage::InterfaceKind iface;
  };
  const Config configs[] = {
      {"1", storage::DeviceKind::kCssd, 1, storage::InterfaceKind::kIoUring},
      {"1", storage::DeviceKind::kCssd, 1, storage::InterfaceKind::kSpdk},
      {"2", storage::DeviceKind::kCssd, 4, storage::InterfaceKind::kIoUring},
      {"2", storage::DeviceKind::kEssd, 1, storage::InterfaceKind::kIoUring},
      {"2", storage::DeviceKind::kEssd, 8, storage::InterfaceKind::kIoUring},
      {"3", storage::DeviceKind::kCssd, 4, storage::InterfaceKind::kSpdk},
      {"4", storage::DeviceKind::kEssd, 1, storage::InterfaceKind::kSpdk},
      {"4", storage::DeviceKind::kEssd, 8, storage::InterfaceKind::kSpdk},
      {"6", storage::DeviceKind::kXlfdd, 12, storage::InterfaceKind::kXlfdd},
  };

  bench::PrintHeader(
      "Figure 11: speedup over SRS per storage configuration (" + name +
          ", ratio 1.05; T_SRS = " + bench::Fmt(t_srs / 1e3, 1) + " us)",
      {"Group", "Configuration", "query us", "speedup over SRS"});

  core::EngineOptions opts;
  opts.num_contexts = 64;
  opts.max_inflight_ios = 512;

  auto emit_row = [&](const std::string& group, const std::string& config,
                      double t) {
    bench::PrintRow({group, config, bench::Fmt(t / 1e3, 1),
                     bench::Fmt(t_srs / t, 1)});
    if (json != nullptr) {
      json->Write(util::JsonRow()
                      .Set("bench", "fig11")
                      .Set("dataset", name)
                      .Set("n", w->n())
                      .Set("group", group)
                      .Set("config", config)
                      .Set("srs_query_ns", t_srs)
                      .Set("query_ns", t)
                      .Set("speedup_over_srs", t > 0 ? t_srs / t : 0.0));
    }
  };

  for (const auto& cfg : configs) {
    auto stack = bench::MakeStack(cfg.kind, cfg.count, cfg.iface);
    if (!stack.ok()) continue;
    if (!bench::CopyIndexImage(master_dev->get(), stack->device(), image_bytes)
             .ok()) {
      continue;
    }
    auto view = (*master)->WithDevice(stack->device());
    const auto sweep = bench::SweepOs(view.get(), *w, 1, opts,
                                      bench::DefaultSFactors(),
                                      stack->charged.get());
    const double t = bench::QueryNsAtRatio(sweep, kTargetRatio);
    emit_row(cfg.group, stack->name, t);
  }

  // Group 5: in-memory E2LSH.
  auto mem = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
  if (mem.ok()) {
    const auto sweep =
        bench::SweepInMemory(mem->get(), *w, 1, bench::DefaultSFactors());
    const double t = bench::QueryNsAtRatio(sweep, kTargetRatio);
    emit_row("5", "In-memory E2LSH", t);
  }

  std::printf(
      "\nExpected shape (paper): all speedups > 1; groups ordered "
      "1 < 2 < 3 < 4 <= 5;\nGroup 6 (XLFDD) reaches or exceeds the "
      "in-memory speed. Group 2 shows the\nio_uring CPU ceiling: adding "
      "devices beyond ~1 MIOPS/core does not help.\n");
  return 0;
}
