// Reproduces Table 4: per-dataset E2LSH hash/radius statistics and the
// average number of I/Os per query N_IO,inf (block size unlimited):
// L compound hashes, total radii r, average searched radii r-bar, and
// 2 I/Os per non-empty probed bucket.
#include "common.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);

  bench::PrintHeader("Table 4: Average number of hash bucket reads per query",
                     {"Dataset", "L", "total radii r", "avg radii r-bar",
                      "N_IO,inf", "candidates/query", "ratio"});

  for (const auto& spec : data::PaperDatasets()) {
    if (!args.dataset.empty() && spec.name != args.dataset) continue;
    auto w = bench::MakeWorkload(spec, args.EffectiveN(spec), args.queries, 1);
    if (!w.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name.c_str(),
                   w.status().ToString().c_str());
      continue;
    }
    auto index = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
    if (!index.ok()) continue;
    const auto batch = (*index)->SearchBatch(w->gen.queries, 1);

    uint64_t cands = 0;
    for (const auto& s : batch.stats) cands += s.candidates;
    bench::PrintRow(
        {spec.name, std::to_string(w->params.L),
         std::to_string(w->params.num_radii()), bench::Fmt(batch.MeanRadii()),
         bench::Fmt(batch.MeanIosInfiniteBlock(), 1),
         bench::Fmt(static_cast<double>(cands) / batch.stats.size(), 1),
         bench::Fmt(data::MeanOverallRatio(w->gt, batch.results, 1), 3)});
  }
  std::printf(
      "\nPaper reference (n up to 1e9): L 16-51, r 4-13, r-bar 1.7-11.6,\n"
      "N_IO,inf 48.7-791. Our scaled n trims L = n^rho and r-bar "
      "proportionally;\nthe shape (hundreds of I/Os at full scale) is what "
      "matters.\n");
  return 0;
}
