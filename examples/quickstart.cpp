// Quickstart: build an E2LSHoS index for a small synthetic dataset on a
// simulated consumer SSD and answer a few top-5 queries — all through
// the one-object public API, e2lshos::Index.
//
//   ./examples/quickstart
//
// The storage backend is a device URI: swap "sim:cssd?iface=io_uring"
// for "file:/path/img.bin" to run the same program against a real disk,
// or "mem:" for the in-DRAM limit.
#include <cstdio>

#include "api/index.h"
#include "data/generators.h"

using namespace e2lshos;

int main() {
  // 1. Make a dataset: 20k clustered points in 64 dimensions, plus 5
  //    held-out queries drawn from the same distribution.
  data::GeneratorSpec gen_spec;
  gen_spec.kind = data::GeneratorKind::kClustered;
  gen_spec.dim = 64;
  gen_spec.num_clusters = 32;
  gen_spec.cluster_std = 0.27;    // NN distances land near 3
  gen_spec.center_spread = 3.0;
  gen_spec.seed = 42;
  auto gen = data::Generate("quickstart", 20000, 5, gen_spec);
  std::printf("dataset: %llu points, dim %u\n",
              static_cast<unsigned long long>(gen.base.n()), gen.base.dim());

  // 2. Spec: E2LSH knobs (approximation ratio c=2, index-size exponent
  //    rho=0.25 so L = n^rho compound hashes per radius) and the storage
  //    device — a simulated consumer NVMe SSD behind the io_uring
  //    interface cost model.
  IndexSpec spec;
  spec.lsh.c = 2.0;
  spec.lsh.rho = 0.25;
  spec.lsh.s_factor = 4.0;
  spec.device_uri = "sim:cssd?iface=io_uring";

  // 3. Build. The Index owns the dataset, the device, and the on-storage
  //    index: nothing to keep alive on the side.
  auto index = Index::Build(spec, std::move(gen.base));
  if (!index.ok()) {
    std::fprintf(stderr, "build: %s\n", index.status().ToString().c_str());
    return 1;
  }
  const auto& params = (*index)->params();
  std::printf(
      "params: m=%u hashes/compound, L=%u compounds, S=%llu cap, %u radii\n",
      params.m, params.L, static_cast<unsigned long long>(params.S),
      params.num_radii());
  const auto sizes = (*index)->sizes();
  std::printf("index: %.1f MB on storage, %.1f KB resident in DRAM\n",
              static_cast<double>(sizes.storage_bytes) / (1 << 20),
              static_cast<double>(sizes.dram_index_bytes) / (1 << 10));

  // 4. Query: the asynchronous engine with interleaved contexts runs
  //    behind Search().
  for (uint64_t q = 0; q < gen.queries.n(); ++q) {
    core::QueryStats stats;
    auto result = (*index)->Search(gen.queries.Row(q), 5, &stats);
    if (!result.ok()) continue;
    std::printf("query %llu: %u radii, %llu I/Os ->",
                static_cast<unsigned long long>(q), stats.radii_searched,
                static_cast<unsigned long long>(stats.ios));
    for (const auto& nb : *result) {
      std::printf(" (id %u, d=%.3f)", nb.id, nb.dist);
    }
    std::printf("\n");
  }
  return 0;
}
