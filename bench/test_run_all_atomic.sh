#!/usr/bin/env sh
# Regression test for the partial-snapshot bug in bench/run_all.sh: a
# run killed (or failing) mid-way must leave NO BENCH_<n>.json and no
# temp files behind, because the next invocation's run-number scan
# treats any existing BENCH_<n>.json as a completed snapshot. Runs
# against a stub build dir, so it needs no compiled benches.
#
#   bench/test_run_all_atomic.sh
set -eu

script_dir=$(cd "$(dirname "$0")" && pwd)
run_all="$script_dir/run_all.sh"
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

fake="$work/build"
out="$work/out"
mkdir -p "$fake" "$out"

stubs="bench_table2_devices bench_uring_vs_threadpool \
bench_fig11_storage_configs bench_fig13_query_performance \
bench_fig16_multithreading bench_streaming_serving bench_skew_cache"

# Every stub accepts the real flag vocabulary and emits one JSONL row;
# SLEEP_FILE makes a stub dawdle so the kill lands mid-run.
write_stubs() {
  sleep_s="$1"
  for b in $stubs; do
    cat > "$fake/$b" <<EOF
#!/bin/sh
json=""
prev=""
for a in "\$@"; do
  [ "\$prev" = "--json" ] && json="\$a"
  prev="\$a"
done
[ "$sleep_s" != "0" ] && sleep "$sleep_s"
[ -n "\$json" ] && printf '{"bench":"stub","qps":1,"p99_us":2}\n' > "\$json"
exit 0
EOF
    chmod +x "$fake/$b"
  done
}

fail() {
  echo "FAIL: $1" >&2
  exit 1
}

# --- Phase 1: kill mid-run -> nothing may land in OUT_DIR. -----------------
write_stubs 5
sh "$run_all" "$fake" "$out" >/dev/null 2>&1 &
pid=$!
sleep 1
kill -TERM "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true

for f in "$out"/BENCH_*; do
  [ -e "$f" ] && fail "killed run left '$f' behind"
done

# --- Phase 2: a clean run still writes BENCH_1.json atomically. ------------
write_stubs 0
sh "$run_all" "$fake" "$out" >/dev/null 2>&1 || fail "clean run failed"
[ -s "$out/BENCH_1.json" ] || fail "clean run wrote no BENCH_1.json"
grep -q '"benches"' "$out/BENCH_1.json" || fail "BENCH_1.json is malformed"
for f in "$out"/BENCH_1.json.tmp.*; do
  [ -e "$f" ] && fail "temp summary '$f' survived the rename"
done

# --- Phase 3: numbering continues past the completed snapshot. --------------
sh "$run_all" "$fake" "$out" >/dev/null 2>&1 || fail "second run failed"
[ -s "$out/BENCH_2.json" ] || fail "second run did not advance to BENCH_2"

echo "PASS: run_all.sh snapshots are atomic"
