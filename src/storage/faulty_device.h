// Fault-injection layer for robustness testing: fails a configurable
// fraction of reads (at submit or at completion), corrupts payloads, and
// injects latency spikes ("stalls"). Production engines must degrade
// gracefully — a failed bucket read costs candidates, never a hang or a
// crash — and the layers above (RetryDevice, checksum verification, the
// daemon's health breaker) are proven against this device.
//
// First-class URI layer: `fault=submit:P,complete:P,corrupt:P,stall:USEC`
// on any scheme (see storage/device_registry.h). Writes are never
// injected — index construction must stay reliable so every run starts
// from a known-good image.
//
// Injection model:
//   * submit / completion failures and stalls are drawn from a per-lane
//     RNG — transient, non-deterministic per request, exactly what a
//     retry policy is meant to absorb.
//   * corruption is a pure function of (seed, request offset): the same
//     offset is corrupt on every read, on every lane, in every shard.
//     This makes checksum accounting reproducible — a sharded engine and
//     a single engine over the same seed report identical corrupt_blocks
//     — and models bit-rot (bad media) rather than a transport glitch.
//   * a stalled completion is harvested from the inner device but held
//     in the lane until its due time, then delivered with the stall
//     added to its latency.
//
// Concurrency: all fault bookkeeping lives in per-lane state (the
// device-level path is one lane; every native queue gets its own), each
// behind its own mutex. Pending injections are keyed by user_data and
// erased under the lane lock *before* the completion is handed to the
// caller, and corrupt-path scrambling happens at harvest inside that
// same critical section — after the inner device has published the
// completion (so its writes into the buffer happen-before the scramble)
// and before the caller can observe the completion and reuse the buffer.
// Entries carry an insertion ticket so the submit-failure rollback can
// never erase a newer entry for a recycled user_data.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "storage/block_device.h"
#include "storage/multi_queue.h"

namespace e2lshos::storage {

class FaultyDevice : public BlockDevice, public MultiQueueDevice {
 public:
  struct Options {
    double submit_fail_rate = 0.0;      ///< SubmitRead returns IoError.
    double completion_fail_rate = 0.0;  ///< Completion carries IoError.
    /// Probability a given *offset* is corrupt (deterministic in
    /// (seed, offset); every read of a corrupt offset is scrambled).
    double corrupt_rate = 0.0;
    double stall_rate = 0.0;   ///< Completion held for stall_usec.
    uint64_t stall_usec = 0;   ///< Latency spike added to stalled reads.
    uint64_t seed = 13;
  };

  /// Own the wrapped device (the URI-layer path).
  static Result<std::unique_ptr<FaultyDevice>> Create(
      std::unique_ptr<BlockDevice> inner, const Options& options);

  /// Borrow a caller-owned device (tests sharing one stack).
  FaultyDevice(BlockDevice* inner, const Options& options);

  ~FaultyDevice() override;

  Status SubmitRead(const IoRequest& req) override;
  size_t PollCompletions(IoCompletion* out, size_t max) override;
  Status Write(uint64_t offset, const void* data, uint32_t length) override;
  uint64_t capacity() const override { return inner_->capacity(); }
  uint32_t io_alignment() const override { return inner_->io_alignment(); }
  uint32_t outstanding() const override;
  std::string name() const override { return inner_->name() + " (faulty)"; }
  DeviceStats stats() const override;
  void ResetStats() override;
  Status RegisterBuffers(
      const std::vector<std::pair<void*, size_t>>& regions) override {
    return inner_->RegisterBuffers(regions);
  }

  /// Native queues iff the inner device has them; each faulty queue
  /// pairs a private injection lane with one inner queue.
  MultiQueueDevice* multi_queue() override {
    return inner_->multi_queue() != nullptr ? this : nullptr;
  }
  uint32_t max_queues() const override;
  Result<std::unique_ptr<BlockDevice>> CreateQueue(
      const QueueOptions& options) override;

  /// The wrapped device (borrowed; owned by this object when Create()d).
  BlockDevice* inner() { return inner_; }

  /// Injection counters, aggregated across the device lane and every
  /// queue lane (including queues already destroyed). Monotonic until
  /// ResetStats.
  uint64_t injected_submit_failures() const;
  uint64_t injected_completion_failures() const;
  uint64_t injected_corruptions() const;
  uint64_t injected_stalls() const;

  /// The deterministic corruption predicate, exposed so tests can
  /// predict exactly which offsets a given (seed, rate) poisons.
  static bool WouldCorrupt(uint64_t seed, uint64_t offset, double rate);

 private:
  class Lane;   // per-endpoint injection state (faulty_device.cc)
  class Queue;  // Lane + one native inner queue
  friend class Queue;

  FaultyDevice(std::unique_ptr<BlockDevice> owned, BlockDevice* inner,
               const Options& options);

  struct Counters {
    uint64_t submit_failures = 0;
    uint64_t completion_failures = 0;
    uint64_t corruptions = 0;
    uint64_t stalls = 0;
  };

  void RetireQueue(Queue* queue);
  /// Device lane + live queue lanes + retired queue lanes.
  Counters TotalCounters() const;

  std::unique_ptr<BlockDevice> owned_;  ///< Null when borrowing.
  BlockDevice* inner_;
  Options options_;
  std::unique_ptr<Lane> lane_;  ///< Device-level path over inner_.
  mutable std::mutex queues_mu_;
  std::vector<Queue*> queues_;  ///< Live native queues.
  Counters retired_;            ///< Folded in when a queue dies.
  uint64_t queue_seq_ = 0;      ///< Seeds each queue lane differently.
};

}  // namespace e2lshos::storage
