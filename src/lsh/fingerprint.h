// Hash-value splitting: table index bits vs fingerprint bits
// (paper Sec. 5.2).
//
// A compound hash value has v = 32 bits. The hash table is indexed by the
// low u bits; the remaining v - u bits travel with the object id inside
// the bucket as a fingerprint, restoring full 32-bit precision when the
// bucket is read. u is chosen slightly below log2(n).
#pragma once

#include <cstdint>

#include "util/mathutil.h"

namespace e2lshos::lsh {

inline constexpr uint32_t kHashBits = 32;  ///< v in the paper.

/// \brief Split policy for one index.
struct FingerprintScheme {
  uint32_t u = 0;  ///< Table index bits.

  uint32_t fingerprint_bits() const { return kHashBits - u; }
  uint64_t table_slots() const { return 1ULL << u; }

  uint32_t TableIndex(uint32_t hash32) const {
    return hash32 & static_cast<uint32_t>((1ULL << u) - 1);
  }
  uint32_t Fingerprint(uint32_t hash32) const { return hash32 >> u; }

  /// Default u for a database of n objects: two bits below log2(n),
  /// clamped to [8, 28]. Slightly undersized tables keep the O(L r n)
  /// table footprint down and keep bucket chains dense (fewer half-empty
  /// 512-byte blocks) without materially increasing false collisions —
  /// the fingerprints reject them at read time (paper Sec. 5.2 uses "u
  /// slightly smaller than log2 n").
  static FingerprintScheme ForDatabaseSize(uint64_t n) {
    uint32_t u = n < 2 ? 8 : util::FloorLog2(n);
    u = u > 2 ? u - 2 : 8;
    if (u < 8) u = 8;
    if (u > 28) u = 28;
    return {u};
  }
};

}  // namespace e2lshos::lsh
