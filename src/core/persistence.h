// Index persistence: save/load the DRAM-resident metadata of a built
// E2LSHoS index so that an index written to a durable device (e.g. a
// FileDevice) can be reopened later without rebuilding.
//
// Only the small metadata is serialized: shape (n, dim), the E2LSH
// parameters, the layout, and the non-empty-slot bitmap. The hash
// functions are NOT stored — every hash function is derived
// deterministically from params.seed, so loading regenerates an
// identical family. The bucket data itself lives on the device.
#pragma once

#include <memory>
#include <string>

#include "core/storage_index.h"

namespace e2lshos::core {

/// Serialize the index metadata to `path` (binary, versioned).
Status SaveIndexMeta(const StorageIndex& index, const std::string& path);

/// Recreate a StorageIndex from metadata at `path`, serving bucket data
/// from `device` (which must hold the same byte image the index was
/// built into). The referenced dataset must be supplied to the engine at
/// query time exactly as at build time.
Result<std::unique_ptr<StorageIndex>> LoadIndexMeta(const std::string& path,
                                                    storage::BlockDevice* device);

/// Dump the index's on-device byte image ([0, sizes().storage_bytes) of
/// its device) to a plain file, so an index built on a volatile device
/// (mem:, sim:) survives process exit. File-backed devices don't need
/// this — their backing file IS the image.
Status SaveIndexImage(const StorageIndex& index, const std::string& path);

/// Write the byte image stored at `path` into `device` starting at
/// offset 0. Returns the number of bytes restored. The device must be at
/// least as large as the file.
Result<uint64_t> LoadIndexImage(const std::string& path,
                                storage::BlockDevice* device);

}  // namespace e2lshos::core
