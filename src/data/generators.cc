#include "data/generators.h"

#include <algorithm>
#include <cmath>

namespace e2lshos::data {

namespace {

// Round coordinates onto a 256-level grid over [0, range], emulating
// byte-typed datasets (SIFT/MNIST/BIGANN) while keeping float storage.
void ByteQuantize(Dataset* ds, double range) {
  const double step = range / 255.0;
  for (float& v : ds->mutable_data()) {
    double q = std::round(std::clamp(static_cast<double>(v), 0.0, range) / step);
    v = static_cast<float>(q * step);
  }
}

void FillClustered(Dataset* ds, uint64_t n, const GeneratorSpec& spec,
                   const std::vector<float>& centers, util::Rng& rng) {
  const uint32_t d = spec.dim;
  std::vector<float> point(d);
  for (uint64_t i = 0; i < n; ++i) {
    const uint64_t c = rng.NextU64Below(spec.num_clusters);
    const float* center = centers.data() + c * d;
    for (uint32_t j = 0; j < d; ++j) {
      point[j] = center[j] + static_cast<float>(rng.Gaussian(0.0, spec.cluster_std));
    }
    ds->Append(point.data());
  }
}

void FillUniform(Dataset* ds, uint64_t n, const GeneratorSpec& spec, util::Rng& rng) {
  std::vector<float> point(spec.dim);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < spec.dim; ++j) {
      point[j] = static_cast<float>(rng.Uniform(0.0, spec.scale));
    }
    ds->Append(point.data());
  }
}

void FillGaussian(Dataset* ds, uint64_t n, const GeneratorSpec& spec, util::Rng& rng) {
  std::vector<float> point(spec.dim);
  for (uint64_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < spec.dim; ++j) {
      point[j] = static_cast<float>(rng.Gaussian(0.0, spec.scale));
    }
    ds->Append(point.data());
  }
}

}  // namespace

GeneratedData Generate(const std::string& name, uint64_t n, uint64_t num_queries,
                       const GeneratorSpec& spec) {
  GeneratedData out;
  out.base = Dataset(name, spec.dim);
  out.base.Reserve(n);
  out.queries = Dataset(name + "-queries", spec.dim);
  out.queries.Reserve(num_queries);

  util::Rng rng(spec.seed);
  switch (spec.kind) {
    case GeneratorKind::kClustered: {
      std::vector<float> centers(static_cast<size_t>(spec.num_clusters) * spec.dim);
      for (auto& v : centers) {
        v = static_cast<float>(rng.Uniform(0.0, spec.center_spread));
      }
      FillClustered(&out.base, n, spec, centers, rng);
      FillClustered(&out.queries, num_queries, spec, centers, rng);
      if (spec.byte_quantize) {
        const double range = spec.center_spread + 4.0 * spec.cluster_std;
        ByteQuantize(&out.base, range);
        ByteQuantize(&out.queries, range);
      }
      break;
    }
    case GeneratorKind::kUniform: {
      FillUniform(&out.base, n, spec, rng);
      FillUniform(&out.queries, num_queries, spec, rng);
      if (spec.byte_quantize) {
        ByteQuantize(&out.base, spec.scale);
        ByteQuantize(&out.queries, spec.scale);
      }
      break;
    }
    case GeneratorKind::kGaussian: {
      FillGaussian(&out.base, n, spec, rng);
      FillGaussian(&out.queries, num_queries, spec, rng);
      break;
    }
  }
  return out;
}

}  // namespace e2lshos::data
