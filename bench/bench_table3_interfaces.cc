// Reproduces Table 3: storage access interfaces and their CPU overhead —
// the CPU time one core spends issuing a single I/O request and the
// reciprocal max IOPS/core. Measured by driving an instant (in-memory)
// device through each interface model, so all time is interface cost.
#include "common.h"

#include "util/aligned_buffer.h"
#include "util/clock.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const uint64_t reads = args.fast ? 20000 : 100000;

  bench::PrintHeader("Table 3: storage interfaces and their CPU overhead",
                     {"Interface", "CPU time per I/O (paper)",
                      "Max IOPS/core (paper)"});

  struct Ref {
    storage::InterfaceKind kind;
    const char* paper_time;
    const char* paper_iops;
  };
  const Ref refs[] = {
      {storage::InterfaceKind::kIoUring, "1.0 usec", "1.0 MIOPS"},
      {storage::InterfaceKind::kSpdk, "350 nsec", "2.9 MIOPS"},
      {storage::InterfaceKind::kXlfdd, "50 nsec", "20 MIOPS"},
  };

  auto dev = storage::MemoryDevice::Create(16 << 20, /*queue_capacity=*/8192);
  if (!dev.ok()) return 1;
  util::AlignedBuffer buf(512);
  std::vector<storage::IoCompletion> comps(256);

  // Baseline: raw device submit+poll cost without any interface model.
  uint64_t t0 = util::NowNs();
  for (uint64_t i = 0; i < reads; ++i) {
    storage::IoRequest req{(i % 1024) * 512, 512, buf.data(), i};
    (void)(*dev)->SubmitRead(req);
    (void)(*dev)->PollCompletions(comps.data(), comps.size());
  }
  const double base_ns = static_cast<double>(util::NowNs() - t0) /
                         static_cast<double>(reads);

  for (const auto& ref : refs) {
    storage::ChargedDevice charged(dev->get(),
                                   storage::GetInterfaceSpec(ref.kind));
    t0 = util::NowNs();
    for (uint64_t i = 0; i < reads; ++i) {
      storage::IoRequest req{(i % 1024) * 512, 512, buf.data(), i};
      (void)charged.SubmitRead(req);
      (void)charged.PollCompletions(comps.data(), comps.size());
    }
    const double per_io =
        static_cast<double>(util::NowNs() - t0) / static_cast<double>(reads) -
        base_ns;
    const double max_iops = 1e9 / std::max(per_io, 1.0);
    bench::PrintRow(
        {charged.spec().name,
         bench::Fmt(per_io, 0) + " nsec (" + ref.paper_time + ")",
         bench::Fmt(max_iops / 1e6, 1) + " MIOPS (" + ref.paper_iops + ")"});
  }
  std::printf(
      "\nThe mmap-sync model (Sec. 6.5 page-cache path) charges %u ns per "
      "4 kB miss.\n",
      static_cast<unsigned>(
          storage::GetInterfaceSpec(storage::InterfaceKind::kMmapSync)
              .submit_overhead_ns));
  return 0;
}
