// A block device backed by a real file, with asynchronous reads executed
// on a small thread pool (simulating an async I/O ring over a regular
// filesystem). This is the path a downstream user takes to run E2LSHoS
// against an actual SSD without SPDK: it issues genuine preads.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <mutex>
#include <string>

#include "storage/block_device.h"
#include "storage/multi_queue.h"
#include "util/thread_pool.h"

namespace e2lshos::storage {

class FileDevice : public BlockDevice, public MultiQueueDevice {
 public:
  struct Options {
    uint64_t capacity = 0;     ///< File is sized to this on creation.
    uint32_t io_threads = 4;   ///< Worker threads servicing preads.
    uint32_t queue_capacity = 1024;
    bool direct_io = false;    ///< O_DIRECT (requires 512-B aligned bufs).
  };

  /// Create (or truncate) `path` and open it for read/write.
  static Result<std::unique_ptr<FileDevice>> Create(const std::string& path,
                                                    const Options& options);

  /// Open an existing file without truncation (e.g. to serve a
  /// previously-built, persisted index). Capacity is taken from the file
  /// size; `options.capacity` is ignored.
  static Result<std::unique_ptr<FileDevice>> Open(const std::string& path,
                                                  const Options& options);

  ~FileDevice() override;

  Status SubmitRead(const IoRequest& req) override;
  size_t PollCompletions(IoCompletion* out, size_t max) override;
  Status Write(uint64_t offset, const void* data, uint32_t length) override;
  uint64_t capacity() const override { return capacity_; }
  /// Direct mode reports the device-advertised alignment probed at open
  /// (statx STATX_DIOALIGN / BLKSSZGET), so 4Kn drives are honored.
  uint32_t io_alignment() const override { return direct_io_ ? align_ : 1; }
  uint32_t outstanding() const override {
    return inflight_.load(std::memory_order_relaxed) +
           queue_registry_.SumOutstanding();
  }
  std::string name() const override { return "file:" + path_; }
  DeviceStats stats() const override;
  void ResetStats() override;

  /// Native queues: each gets a private pread-thread slice and a private
  /// completion ring over the shared fd (pread carries its own offset,
  /// so fd sharing is race-free). One queue's submit/poll never touches
  /// another queue's pool, lock, or completions.
  MultiQueueDevice* multi_queue() override { return this; }
  uint32_t max_queues() const override { return 255; }
  Result<std::unique_ptr<BlockDevice>> CreateQueue(
      const QueueOptions& options) override;

 private:
  class Queue;  // defined in file_device.cc

  FileDevice(std::string path, int fd, const Options& options);

  /// Shared request validation (bounds + direct-I/O alignment).
  Status ValidateRead(const IoRequest& req) const;

  std::string path_;
  int fd_;
  uint64_t capacity_;
  uint32_t queue_capacity_;
  bool direct_io_;
  uint32_t align_ = kSectorBytes;
  std::unique_ptr<util::ThreadPool> pool_;
  std::atomic<uint32_t> inflight_{0};
  mutable std::mutex mu_;
  std::deque<IoCompletion> completed_;
  DeviceStats stats_;
  QueueRegistry queue_registry_;
};

}  // namespace e2lshos::storage
