// Parameter tuning guide: how the three E2LSH(oS) knobs trade accuracy,
// speed, and index size on a GLOVE-like workload (paper Sec. 3.3):
//
//   * rho   — index-size exponent: L = n^rho tables per radius. Fixed per
//             dataset; more tables = better accuracy ceiling, bigger index.
//   * gamma — scales m (hashes per compound). Changes selectivity without
//             changing the index entry count.
//   * s_factor — the per-radius candidate cap S = s_factor * L. The pure
//             query-time knob: no rebuild needed.
//
//   ./examples/tuning
#include <cstdio>

#include "core/builder.h"
#include "core/query_engine.h"
#include "data/ground_truth.h"
#include "data/registry.h"
#include "storage/memory_device.h"

using namespace e2lshos;

namespace {

struct RunResult {
  double ratio;
  double us_per_query;
  double ios;
  uint64_t index_mb;
};

RunResult RunWith(const data::GeneratedData& gen, const data::GroundTruth& gt,
                  const lsh::E2lshParams& params) {
  RunResult r{0, 0, 0, 0};
  auto dev = storage::MemoryDevice::Create(4ULL << 30);
  if (!dev.ok()) return r;
  auto index = core::IndexBuilder::Build(gen.base, params, dev->get());
  if (!index.ok()) return r;
  core::QueryEngine engine(index->get(), &gen.base);
  auto batch = engine.SearchBatch(gen.queries, 10);
  if (!batch.ok()) return r;
  r.ratio = data::MeanOverallRatio(gt, batch->results, 10);
  r.us_per_query = static_cast<double>(batch->wall_ns) / gen.queries.n() / 1e3;
  r.ios = batch->MeanIos();
  r.index_mb = (*index)->sizes().storage_bytes >> 20;
  return r;
}

}  // namespace

int main() {
  auto spec = data::GetDatasetSpec("GLOVE");
  if (!spec.ok()) return 1;
  auto gen = data::MakeDataset(*spec, 20000, 100);
  const auto gt = data::GroundTruth::Compute(gen.base, gen.queries, 10);

  lsh::E2lshConfig base_cfg = spec->lsh;
  base_cfg.x_max = gen.base.XMax();

  std::printf("GLOVE-like, n=20000, top-10; baseline rho=%.3f gamma=%.2f "
              "s_factor=%.1f\n\n",
              base_cfg.rho, base_cfg.gamma, base_cfg.s_factor);

  std::printf("--- rho (index size exponent; L = n^rho) ---\n");
  std::printf("%8s %8s %8s %12s %8s %10s\n", "rho", "L", "ratio", "us/query",
              "I/Os", "index MB");
  for (const double rho : {0.15, 0.20, 0.25, 0.30}) {
    lsh::E2lshConfig cfg = base_cfg;
    cfg.rho = rho;
    auto params = lsh::ComputeParams(gen.base.n(), gen.base.dim(), cfg);
    if (!params.ok()) continue;
    const auto r = RunWith(gen, gt, *params);
    std::printf("%8.2f %8u %8.3f %12.1f %8.1f %10llu\n", rho, params->L,
                r.ratio, r.us_per_query, r.ios,
                static_cast<unsigned long long>(r.index_mb));
  }

  std::printf("\n--- gamma (hash selectivity; m = gamma * log_{1/p2} n) ---\n");
  std::printf("%8s %8s %8s %12s %8s %10s\n", "gamma", "m", "ratio", "us/query",
              "I/Os", "index MB");
  for (const double gamma : {0.7, 0.85, 1.0, 1.2, 1.4}) {
    lsh::E2lshConfig cfg = base_cfg;
    cfg.gamma = gamma;
    auto params = lsh::ComputeParams(gen.base.n(), gen.base.dim(), cfg);
    if (!params.ok()) continue;
    const auto r = RunWith(gen, gt, *params);
    std::printf("%8.2f %8u %8.3f %12.1f %8.1f %10llu\n", gamma, params->m,
                r.ratio, r.us_per_query, r.ios,
                static_cast<unsigned long long>(r.index_mb));
  }

  std::printf("\n--- s_factor (candidate cap; query-time only) ---\n");
  std::printf("%8s %8s %8s %12s %8s\n", "s", "S", "ratio", "us/query", "I/Os");
  {
    auto params = lsh::ComputeParams(gen.base.n(), gen.base.dim(), base_cfg);
    if (params.ok()) {
      auto dev = storage::MemoryDevice::Create(4ULL << 30);
      auto index = core::IndexBuilder::Build(gen.base, *params, dev->get());
      if (index.ok()) {
        for (const double s : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
          (*index)->SetCandidateCapFactor(s);
          core::QueryEngine engine(index->get(), &gen.base);
          auto batch = engine.SearchBatch(gen.queries, 10);
          if (!batch.ok()) continue;
          std::printf("%8.1f %8llu %8.3f %12.1f %8.1f\n", s,
                      static_cast<unsigned long long>((*index)->params().S),
                      data::MeanOverallRatio(gt, batch->results, 10),
                      static_cast<double>(batch->wall_ns) / gen.queries.n() / 1e3,
                      batch->MeanIos());
        }
      }
    }
  }
  std::printf(
      "\nRules of thumb (paper Sec. 3.3): pick rho for the accuracy range "
      "(index\nsize cost), trim with gamma (free), then sweep s_factor at "
      "query time.\n");
  return 0;
}
