// Reproduces Figure 15: query speed, total observed IOPS, mean latency,
// and device usage for a varying number of cSSDs (1..6) on SIFT. The
// paper's finding: query speed is proportional to delivered IOPS until
// the devices can sustain more than the workload needs; per-I/O latency
// is high while devices are saturated but does not by itself determine
// application performance.
#include "common.h"

#include "storage/simulated_device.h"
#include "util/clock.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec),
                               args.queries ? args.queries : 400, 1);
  if (!w.ok()) return 1;

  auto master_dev = storage::MemoryDevice::Create(8ULL << 30);
  if (!master_dev.ok()) return 1;
  auto master = core::IndexBuilder::Build(w->gen.base, w->params,
                                          master_dev->get());
  if (!master.ok()) return 1;
  const uint64_t image_bytes = (*master)->sizes().storage_bytes;

  bench::PrintHeader(
      "Figure 15: query speed and device statistics vs number of cSSDs (" +
          name + ", io_uring)",
      {"devices", "QPS", "observed kIOPS", "mean latency us", "p99 us",
       "device usage %"});

  core::EngineOptions opts;
  opts.num_contexts = 64;
  opts.max_inflight_ios = 512;

  for (uint32_t count = 1; count <= 6; ++count) {
    auto stack = bench::MakeStack(storage::DeviceKind::kCssd, count,
                                  storage::InterfaceKind::kIoUring);
    if (!stack.ok()) continue;
    if (!bench::CopyIndexImage(master_dev->get(), stack->device(), image_bytes)
             .ok()) {
      continue;
    }
    auto view = (*master)->WithDevice(stack->device());
    view->SetCandidateCapFactor(4.0);
    stack->charged->ResetStats();
    const uint64_t t0 = util::NowNs();
    core::QueryEngine engine(view.get(), &w->gen.base, opts);
    auto batch = engine.SearchBatch(w->gen.queries, 1);
    const uint64_t elapsed = util::NowNs() - t0;
    if (!batch.ok()) continue;

    const auto& stats = stack->device()->stats();
    const double iops = static_cast<double>(stats.reads_completed) * 1e9 /
                        static_cast<double>(elapsed);
    // Device usage: busy unit-time over elapsed wall time across units.
    const auto model = storage::GetDeviceModel(storage::DeviceKind::kCssd);
    const double usage =
        100.0 * static_cast<double>(stats.busy_ns) /
        (static_cast<double>(elapsed) * model.parallel_units * count);
    bench::PrintRow({std::to_string(count),
                     bench::Fmt(batch->QueriesPerSecond(), 0),
                     bench::Fmt(iops / 1e3, 1),
                     bench::Fmt(stats.read_latency.mean() / 1e3, 0),
                     bench::Fmt(stats.read_latency.Quantile(0.99) / 1e3, 0),
                     bench::Fmt(std::min(usage, 100.0), 0)});
  }
  std::printf(
      "\nExpected shape (paper): QPS tracks delivered IOPS and saturates "
      "once total\ndevice IOPS exceeds what the workload demands; latency "
      "is longest when few\ndevices run at high usage, and falls as "
      "devices are added.\n");
  return 0;
}
