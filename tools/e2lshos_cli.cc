// Command-line front end: build, persist, and query E2LSHoS indexes over
// real vector files (.fvecs / .bvecs) or registry-generated datasets.
//
//   e2lshos_cli build  --base data.fvecs --index idx.bin --image img.bin
//                      [--rho R] [--c C] [--w W] [--max-n N]
//   e2lshos_cli query  --base data.fvecs --index idx.bin --image img.bin
//                      --queries q.fvecs [--k K] [--probe-contexts P]
//                      [--shards S]   (S engine shards, one per core;
//                                      0 = one per hardware thread)
//   e2lshos_cli gen    --dataset SIFT --out data.fvecs [--n N]
//   e2lshos_cli serve  --base data.fvecs --index idx.bin --image img.bin
//                      [--queries q.fvecs] [--count N] [--rate QPS]
//                      [--k K] [--shards S] [--batch B] [--max-wait-us W]
//                      [--deadline-us D]  (shed queries older than D
//                                          instead of serving them late)
//                      (continuous serving: queries are submitted at the
//                       target arrival rate — from the file, cycled, or
//                       sampled from the base set when no file is given —
//                       and a latency/QPS report is printed)
//
// The index image lives in a plain file so indexes persist across runs;
// metadata travels in the small --index file. Every file-touching command
// accepts --device file|uring (default file: pread thread pool; uring:
// genuine async I/O over io_uring when the host supports it) and, for
// uring, --sqpoll 1; query/serve additionally accept --direct 1 (O_DIRECT
// at the probed device alignment — build always needs a buffered device
// for its sub-sector table writes).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "core/builder.h"
#include "core/persistence.h"
#include "core/query_engine.h"
#include "core/query_stream.h"
#include "core/sharded_engine.h"
#include "core/streaming_server.h"
#include "data/io.h"
#include "data/registry.h"
#include "storage/device_registry.h"
#include "util/clock.h"
#include "util/rng.h"

using namespace e2lshos;

namespace {

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i + 1 < argc; i += 2) {
    if (argv[i][0] == '-' && argv[i][1] == '-') {
      flags[argv[i] + 2] = argv[i + 1];
    }
  }
  return flags;
}

double GetD(const std::map<std::string, std::string>& f, const std::string& k,
            double dflt) {
  auto it = f.find(k);
  return it == f.end() ? dflt : std::stod(it->second);
}

uint64_t GetU(const std::map<std::string, std::string>& f, const std::string& k,
              uint64_t dflt) {
  auto it = f.find(k);
  return it == f.end() ? dflt : std::stoull(it->second);
}

std::string GetS(const std::map<std::string, std::string>& f,
                 const std::string& k) {
  auto it = f.find(k);
  return it == f.end() ? std::string() : it->second;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

/// Open (or create) the index image under the backend picked by
/// --device / --direct / --sqpoll.
Result<std::unique_ptr<storage::BlockDevice>> OpenImage(
    const std::map<std::string, std::string>& flags, bool create,
    uint64_t capacity) {
  const std::string name = GetS(flags, "device");
  E2_ASSIGN_OR_RETURN(const storage::FileBackendKind kind,
                      storage::ParseFileBackendKind(name.empty() ? "file"
                                                                 : name));
  if (!storage::FileBackendAvailable(kind)) {
    return Status::Unimplemented(
        "backend 'uring' is unavailable on this host (kernel refused "
        "io_uring, or built without it); use --device file");
  }
  storage::FileBackendOptions opt;
  opt.capacity = capacity;
  opt.direct_io = GetU(flags, "direct", 0) != 0;
  opt.sqpoll = GetU(flags, "sqpoll", 0) != 0;
  auto dev = create
                 ? storage::CreateFileBackend(kind, GetS(flags, "image"), opt)
                 : storage::OpenFileBackend(kind, GetS(flags, "image"), opt);
  if (dev.ok()) {
    std::printf("image device: %s\n", (*dev)->name().c_str());
  }
  return dev;
}

int CmdGen(const std::map<std::string, std::string>& flags) {
  const std::string name = GetS(flags, "dataset");
  const std::string out = GetS(flags, "out");
  if (name.empty() || out.empty()) {
    std::fprintf(stderr, "gen requires --dataset and --out\n");
    return 1;
  }
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return Fail(spec.status());
  auto gen = data::MakeDataset(*spec, GetU(flags, "n", 0), GetU(flags, "queries", 100));
  if (Status st = data::SaveFvecs(gen.base, out); !st.ok()) return Fail(st);
  if (Status st = data::SaveFvecs(gen.queries, out + ".queries"); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %llu vectors to %s (+%llu queries to %s.queries)\n",
              static_cast<unsigned long long>(gen.base.n()), out.c_str(),
              static_cast<unsigned long long>(gen.queries.n()), out.c_str());
  return 0;
}

int CmdBuild(const std::map<std::string, std::string>& flags) {
  const std::string base_path = GetS(flags, "base");
  const std::string index_path = GetS(flags, "index");
  const std::string image_path = GetS(flags, "image");
  if (base_path.empty() || index_path.empty() || image_path.empty()) {
    std::fprintf(stderr, "build requires --base, --index and --image\n");
    return 1;
  }
  auto base = data::LoadVectorFile(base_path, GetU(flags, "max-n", 0));
  if (!base.ok()) return Fail(base.status());
  std::printf("loaded %llu x %u vectors\n",
              static_cast<unsigned long long>(base->n()), base->dim());

  lsh::E2lshConfig cfg;
  cfg.c = GetD(flags, "c", 2.0);
  cfg.w = GetD(flags, "w", 4.0);
  cfg.rho = GetD(flags, "rho", 0.25);
  cfg.gamma = GetD(flags, "gamma", 1.0);
  cfg.s_factor = GetD(flags, "s", 4.0);
  cfg.x_max = base->XMax();
  auto params = lsh::ComputeParams(base->n(), base->dim(), cfg);
  if (!params.ok()) return Fail(params.status());
  std::printf("params: m=%u L=%u radii=%u\n", params->m, params->L,
              params->num_radii());

  if (GetU(flags, "direct", 0) != 0) {
    std::fprintf(stderr,
                 "build requires a buffered device: the index builder issues "
                 "8-byte table writes that O_DIRECT rejects.\n"
                 "Build without --direct, then serve the image with "
                 "query/serve --direct 1.\n");
    return 1;
  }
  auto dev = OpenImage(flags, /*create=*/true,
                       GetU(flags, "capacity", 32ULL << 30));
  if (!dev.ok()) return Fail(dev.status());

  const uint64_t t0 = util::NowNs();
  auto index = core::IndexBuilder::Build(*base, *params, dev->get());
  if (!index.ok()) return Fail(index.status());
  if (Status st = core::SaveIndexMeta(**index, index_path); !st.ok()) {
    return Fail(st);
  }
  const auto sizes = (*index)->sizes();
  std::printf("built in %.1fs: %.1f MB on storage, %.1f MB DRAM metadata\n",
              static_cast<double>(util::NowNs() - t0) / 1e9,
              static_cast<double>(sizes.storage_bytes) / (1 << 20),
              static_cast<double>(sizes.dram_index_bytes) / (1 << 20));
  return 0;
}

int CmdQuery(const std::map<std::string, std::string>& flags) {
  const std::string base_path = GetS(flags, "base");
  const std::string index_path = GetS(flags, "index");
  const std::string image_path = GetS(flags, "image");
  const std::string query_path = GetS(flags, "queries");
  if (base_path.empty() || index_path.empty() || image_path.empty() ||
      query_path.empty()) {
    std::fprintf(stderr, "query requires --base, --index, --image, --queries\n");
    return 1;
  }
  auto base = data::LoadVectorFile(base_path, GetU(flags, "max-n", 0));
  if (!base.ok()) return Fail(base.status());
  auto queries = data::LoadVectorFile(query_path);
  if (!queries.ok()) return Fail(queries.status());

  auto dev = OpenImage(flags, /*create=*/false, 0);
  if (!dev.ok()) return Fail(dev.status());
  auto index = core::LoadIndexMeta(index_path, dev->get());
  if (!index.ok()) return Fail(index.status());
  if ((*index)->n() != base->n() || (*index)->dim() != base->dim()) {
    std::fprintf(stderr, "index was built over a different dataset shape\n");
    return 1;
  }

  const uint32_t k = static_cast<uint32_t>(GetU(flags, "k", 10));
  // The batch is sharded across per-core engines over the shared index
  // file; --shards 1 (the default) behaves exactly like the single
  // QueryEngine, --shards 0 uses one shard per hardware thread.
  core::ShardOptions sopts;
  sopts.num_shards = static_cast<uint32_t>(GetU(flags, "shards", 1));
  const uint32_t contexts =
      std::max<uint32_t>(1, GetU(flags, "probe-contexts", 32));
  const uint32_t resolved = core::ResolveShardCount(sopts.num_shards);
  sopts.total_contexts = contexts * resolved;
  sopts.total_inflight_ios = 256 * resolved;
  core::ShardedQueryEngine engine(index->get(), &*base, sopts);
  auto batch = engine.SearchBatch(*queries, k);
  if (!batch.ok()) return Fail(batch.status());

  for (uint64_t q = 0; q < std::min<uint64_t>(queries->n(), 5); ++q) {
    std::printf("query %llu:", static_cast<unsigned long long>(q));
    for (const auto& nb : batch->results[q]) {
      std::printf(" %u(%.3f)", nb.id, nb.dist);
    }
    std::printf("\n");
  }
  std::printf(
      "%llu queries on %u shard(s), %.0f qps, %.1f I/Os per query, "
      "%.1f radii per query\n",
      static_cast<unsigned long long>(queries->n()), engine.num_shards(),
      batch->QueriesPerSecond(), batch->MeanIos(), batch->MeanRadii());
  return 0;
}

int CmdServe(const std::map<std::string, std::string>& flags) {
  const std::string base_path = GetS(flags, "base");
  const std::string index_path = GetS(flags, "index");
  const std::string image_path = GetS(flags, "image");
  if (base_path.empty() || index_path.empty() || image_path.empty()) {
    std::fprintf(stderr, "serve requires --base, --index and --image\n");
    return 1;
  }
  auto base = data::LoadVectorFile(base_path, GetU(flags, "max-n", 0));
  if (!base.ok()) return Fail(base.status());

  auto dev = OpenImage(flags, /*create=*/false, 0);
  if (!dev.ok()) return Fail(dev.status());
  auto index = core::LoadIndexMeta(index_path, dev->get());
  if (!index.ok()) return Fail(index.status());
  if ((*index)->n() != base->n() || (*index)->dim() != base->dim()) {
    std::fprintf(stderr, "index was built over a different dataset shape\n");
    return 1;
  }

  // Query source: a file (cycled up to --count), else random base rows
  // (the generator case — a load without a recorded query log).
  const std::string query_path = GetS(flags, "queries");
  data::Dataset queries;
  if (!query_path.empty()) {
    auto loaded = data::LoadVectorFile(query_path);
    if (!loaded.ok()) return Fail(loaded.status());
    if (loaded->dim() != base->dim()) {
      std::fprintf(stderr, "query dimension mismatch\n");
      return 1;
    }
    queries = std::move(*loaded);
  }
  const uint64_t count =
      GetU(flags, "count", queries.n() > 0 ? queries.n() : 1000);
  const double rate = GetD(flags, "rate", 0.0);  // 0 = unthrottled

  core::ShardOptions sopts;
  sopts.num_shards = static_cast<uint32_t>(GetU(flags, "shards", 1));
  const uint32_t resolved = core::ResolveShardCount(sopts.num_shards);
  sopts.total_contexts =
      std::max<uint32_t>(1, GetU(flags, "probe-contexts", 32)) * resolved;
  sopts.total_inflight_ios = 256 * resolved;
  core::ShardedQueryEngine engine(index->get(), &*base, sopts);

  core::ServerOptions server_opts;
  server_opts.k = static_cast<uint32_t>(GetU(flags, "k", 10));
  server_opts.max_batch_size = static_cast<uint32_t>(GetU(flags, "batch", 64));
  server_opts.max_wait_us = GetU(flags, "max-wait-us", 200);
  server_opts.deadline_us = GetU(flags, "deadline-us", 0);

  core::SubmissionQueue queue(base->dim(), 1024);
  core::StreamingServer server(&engine, server_opts);
  if (Status st = server.Start(&queue); !st.ok()) return Fail(st);

  util::Rng rng(17);
  const uint64_t interval_ns =
      rate > 0 ? static_cast<uint64_t>(1e9 / rate) : 0;
  const uint64_t t0 = util::NowNs();
  uint64_t submitted = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (interval_ns > 0) {
      // Sleep off most of the interval, spin only the last stretch: the
      // pacing thread shares the host with the shard workers it drives.
      const uint64_t deadline = t0 + i * interval_ns;
      uint64_t now = util::NowNs();
      if (deadline > now + 200000) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(deadline - now - 100000));
      }
      while (util::NowNs() < deadline) {
      }
    }
    const float* vec = queries.n() > 0
                           ? queries.Row(i % queries.n())
                           : base->Row(rng.NextU64Below(base->n()));
    if (queue.Submit(vec).ok()) ++submitted;
  }
  queue.Close();
  server.Wait();

  const core::StreamingSnapshot snap = server.stats();
  std::printf(
      "served %llu/%llu queries on %u shard(s), k=%u, batch<=%u, "
      "max-wait %llu us\n",
      static_cast<unsigned long long>(snap.completed),
      static_cast<unsigned long long>(submitted), engine.num_shards(),
      server_opts.k, server_opts.max_batch_size,
      static_cast<unsigned long long>(server_opts.max_wait_us));
  std::printf("  offered rate: %s qps\n",
              rate > 0 ? std::to_string(static_cast<uint64_t>(rate)).c_str()
                       : "unthrottled");
  std::printf("  achieved:     %.0f qps overall, %.0f qps sustained window\n",
              snap.overall_qps, snap.sustained_qps);
  std::printf(
      "  latency (enqueue->completion): p50 %.2f ms, p95 %.2f ms, "
      "p99 %.2f ms, max %.2f ms\n",
      static_cast<double>(snap.p50_ns) / 1e6,
      static_cast<double>(snap.p95_ns) / 1e6,
      static_cast<double>(snap.p99_ns) / 1e6,
      static_cast<double>(snap.max_ns) / 1e6);
  std::printf("  micro-batches: %llu (mean size %.1f), failed queries: %llu\n",
              static_cast<unsigned long long>(snap.batches),
              snap.mean_batch_size,
              static_cast<unsigned long long>(snap.failed));
  if (server_opts.deadline_us > 0) {
    std::printf("  load shedding: %llu rejected past the %llu us deadline\n",
                static_cast<unsigned long long>(snap.rejected),
                static_cast<unsigned long long>(server_opts.deadline_us));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s {gen|build|query|serve} --flag value ...\n"
                 "  gen    --dataset SIFT --out data.fvecs [--n N]\n"
                 "  build  --base data.fvecs --index idx.bin --image img.bin\n"
                 "  query  --base data.fvecs --index idx.bin --image img.bin "
                 "--queries q.fvecs [--k K]\n"
                 "  serve  --base data.fvecs --index idx.bin --image img.bin "
                 "[--queries q.fvecs]\n"
                 "         [--count N] [--rate QPS] [--k K] [--shards S] "
                 "[--batch B] [--max-wait-us W] [--deadline-us D]\n"
                 "  build/query/serve also accept --device file|uring "
                 "[--sqpoll 1]; query/serve\n"
                 "  accept --direct 1 (build needs a buffered device for its "
                 "8-byte table writes)\n",
                 argv[0]);
    return 1;
  }
  const std::string cmd = argv[1];
  const auto flags = ParseFlags(argc, argv);
  if (cmd == "gen") return CmdGen(flags);
  if (cmd == "build") return CmdBuild(flags);
  if (cmd == "query") return CmdQuery(flags);
  if (cmd == "serve") return CmdServe(flags);
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return 1;
}
