// Reproduces Figure 5: the storage IOPS requirement for E2LSHoS to match
// in-memory SRS speed at block size B = 512 bytes, for all datasets
// across the accuracy range (Eq. 13).
#include "common.h"

#include "model/cost_model.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);

  bench::PrintHeader(
      "Figure 5: required kIOPS for SRS speeds, B = 512 bytes, all datasets",
      {"Dataset", "ratio(lo acc)", "kIOPS", "ratio(mid)", "kIOPS",
       "ratio(hi acc)", "kIOPS", "max kIOPS"});

  for (const auto& spec : data::PaperDatasets()) {
    if (!args.dataset.empty() && spec.name != args.dataset) continue;
    auto w = bench::MakeWorkload(spec, args.EffectiveN(spec), args.queries, 1);
    if (!w.ok()) continue;
    auto index = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
    if (!index.ok()) continue;

    const auto profile =
        bench::ProfileInMemoryIo(index->get(), *w, 1, bench::DefaultSFactors());
    const auto srs = bench::SweepSrs(*w, 1, bench::DefaultSrsFractions());

    // Pick the least/middle/most accurate profile points.
    std::vector<bench::IoProfilePoint> pts = profile;
    std::sort(pts.begin(), pts.end(),
              [](const auto& a, const auto& b) { return a.ratio < b.ratio; });
    const auto& hi = pts.front();                  // most accurate
    const auto& mid = pts[pts.size() / 2];
    const auto& lo = pts.back();                   // least accurate
    auto req = [&](const bench::IoProfilePoint& p) {
      return model::RequiredIopsAsync(p.IoAt(128),
                                      bench::QueryNsAtRatio(srs, p.ratio)) / 1e3;
    };
    double max_req = 0;
    for (const auto& p : pts) max_req = std::max(max_req, req(p));
    bench::PrintRow({spec.name, bench::Fmt(lo.ratio, 3), bench::Fmt(req(lo), 1),
                     bench::Fmt(mid.ratio, 3), bench::Fmt(req(mid), 1),
                     bench::Fmt(hi.ratio, 3), bench::Fmt(req(hi), 1),
                     bench::Fmt(max_req, 1)});
  }
  std::printf(
      "\nExpected shape (paper): a few hundred kIOPS suffices across all "
      "datasets\nand accuracy levels (Observation 3); our scaled datasets "
      "sit proportionally\nlower since N_IO shrinks with L = n^rho.\n");
  return 0;
}
