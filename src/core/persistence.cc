#include "core/persistence.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

namespace e2lshos::core {

namespace {

// v3 adds the checksum flag + per-sector table CRCs after the tombstone
// list; v2 files (no checksums) still load — see LoadIndexMeta.
constexpr char kMagicV2[8] = {'E', '2', 'O', 'S', 'I', 'D', 'X', '2'};
constexpr char kMagicV3[8] = {'E', '2', 'O', 'S', 'I', 'D', 'X', '3'};

// Minimal buffered binary writer/reader with error capture.
class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}
  template <typename T>
  void Pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (ok_ && std::fwrite(&v, sizeof(T), 1, f_) != 1) ok_ = false;
  }
  void Bytes(const void* p, size_t len) {
    if (ok_ && len > 0 && std::fwrite(p, 1, len, f_) != len) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}
  template <typename T>
  void Pod(T* v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (ok_ && std::fread(v, sizeof(T), 1, f_) != 1) ok_ = false;
  }
  void Bytes(void* p, size_t len) {
    if (ok_ && len > 0 && std::fread(p, 1, len, f_) != len) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

}  // namespace

Status SaveIndexMeta(const StorageIndex& index, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path + " for write");
  Writer w(f);
  w.Bytes(kMagicV3, sizeof(kMagicV3));

  w.Pod(index.n_);
  w.Pod(index.dim_);

  const IndexLayout& layout = index.layout_;
  w.Pod(layout.num_radii);
  w.Pod(layout.L);
  w.Pod(layout.fp.u);
  w.Pod(layout.id_bits);
  w.Pod(layout.block_bytes);
  w.Pod(layout.table_base);
  w.Pod(layout.bucket_base);

  const lsh::E2lshParams& p = index.params_;
  w.Pod(p.c);
  w.Pod(p.w);
  w.Pod(p.gamma);
  w.Pod(p.s_factor);
  w.Pod(p.seed);
  w.Pod(p.p1);
  w.Pod(p.p2);
  w.Pod(p.rho);
  w.Pod(p.m);
  w.Pod(p.L);
  w.Pod(p.S);
  const uint32_t num_radii = static_cast<uint32_t>(p.radii.size());
  w.Pod(num_radii);
  w.Bytes(p.radii.data(), num_radii * sizeof(double));

  w.Pod(index.sizes_);

  const uint64_t bitmap_words = index.bitmap_.size();
  w.Pod(bitmap_words);
  w.Bytes(index.bitmap_.data(), bitmap_words * sizeof(uint64_t));

  w.Pod(index.next_block_idx_);
  const uint64_t tombstones = index.tombstones_.size();
  w.Pod(tombstones);
  for (const uint32_t id : index.tombstones_) w.Pod(id);

  const uint8_t checksums = index.checksums_enabled_ ? 1 : 0;
  w.Pod(checksums);
  const uint64_t table_crcs = index.table_crcs_.size();
  w.Pod(table_crcs);
  w.Bytes(index.table_crcs_.data(), table_crcs * sizeof(uint32_t));

  const bool ok = w.ok();
  std::fclose(f);
  if (!ok) return Status::IoError("short write to " + path);
  return Status::OK();
}

Result<std::unique_ptr<StorageIndex>> LoadIndexMeta(const std::string& path,
                                                    storage::BlockDevice* device) {
  if (device == nullptr) return Status::InvalidArgument("null device");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  Reader r(f);

  char magic[8];
  r.Bytes(magic, sizeof(magic));
  const bool v3 = r.ok() && std::memcmp(magic, kMagicV3, sizeof(kMagicV3)) == 0;
  if (!r.ok() ||
      (!v3 && std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) != 0)) {
    std::fclose(f);
    return Status::InvalidArgument(path + " is not an E2LSHoS index meta file");
  }

  auto index = std::make_unique<StorageIndex>();
  index->device_ = device;
  r.Pod(&index->n_);
  r.Pod(&index->dim_);

  IndexLayout& layout = index->layout_;
  r.Pod(&layout.num_radii);
  r.Pod(&layout.L);
  r.Pod(&layout.fp.u);
  r.Pod(&layout.id_bits);
  r.Pod(&layout.block_bytes);
  r.Pod(&layout.table_base);
  r.Pod(&layout.bucket_base);

  lsh::E2lshParams& p = index->params_;
  r.Pod(&p.c);
  r.Pod(&p.w);
  r.Pod(&p.gamma);
  r.Pod(&p.s_factor);
  r.Pod(&p.seed);
  r.Pod(&p.p1);
  r.Pod(&p.p2);
  r.Pod(&p.rho);
  r.Pod(&p.m);
  r.Pod(&p.L);
  r.Pod(&p.S);
  uint32_t num_radii = 0;
  r.Pod(&num_radii);
  if (!r.ok() || num_radii == 0 || num_radii > 64) {
    std::fclose(f);
    return Status::InvalidArgument("corrupt radius schedule in " + path);
  }
  p.radii.resize(num_radii);
  r.Bytes(p.radii.data(), num_radii * sizeof(double));

  r.Pod(&index->sizes_);

  uint64_t bitmap_words = 0;
  r.Pod(&bitmap_words);
  const uint64_t expected_words =
      (static_cast<uint64_t>(layout.num_radii) * layout.L *
           layout.slots_per_table() + 63) / 64;
  if (!r.ok() || bitmap_words != expected_words) {
    std::fclose(f);
    return Status::InvalidArgument("corrupt bitmap in " + path);
  }
  index->bitmap_.resize(bitmap_words);
  r.Bytes(index->bitmap_.data(), bitmap_words * sizeof(uint64_t));

  r.Pod(&index->next_block_idx_);
  uint64_t tombstones = 0;
  r.Pod(&tombstones);
  if (!r.ok() || tombstones > index->n_ + (1ULL << 20)) {
    std::fclose(f);
    return Status::InvalidArgument("corrupt tombstone list in " + path);
  }
  for (uint64_t i = 0; i < tombstones; ++i) {
    uint32_t id = 0;
    r.Pod(&id);
    index->tombstones_.insert(id);
  }

  if (v3) {
    uint8_t checksums = 0;
    r.Pod(&checksums);
    uint64_t table_crcs = 0;
    r.Pod(&table_crcs);
    const uint64_t expected_crcs =
        checksums != 0
            ? (layout.total_table_bytes() + storage::kSectorBytes - 1) /
                  storage::kSectorBytes
            : 0;
    if (!r.ok() || checksums > 1 || table_crcs != expected_crcs) {
      std::fclose(f);
      return Status::InvalidArgument("corrupt table checksums in " + path);
    }
    index->checksums_enabled_ = checksums != 0;
    index->table_crcs_.resize(table_crcs);
    r.Bytes(index->table_crcs_.data(), table_crcs * sizeof(uint32_t));
  }
  // v2: checksums_enabled_ stays false — the image predates block CRCs
  // and is served without verification.

  const bool ok = r.ok();
  std::fclose(f);
  if (!ok) return Status::IoError("short read from " + path);

  if (index->sizes_.storage_bytes > device->capacity()) {
    return Status::OutOfRange("device smaller than the stored index image");
  }
  // No block-size-vs-alignment gate here: the query engine widens any
  // read (table entry or bucket block) to the device's advertised
  // alignment unit, so an index laid out at 128- or 512-byte blocks
  // serves correctly from a direct device with a coarser granularity.

  // The hash family is fully determined by (dim, params): regenerate it.
  index->family_ = lsh::HashFamily(index->dim_, p);
  return index;
}

namespace {

/// Fill `buf` with device bytes [off, off+len). Reads are issued
/// per-unit — max(sector, io_alignment()) — because a StripedDevice
/// rejects any request crossing its 512-byte stripe unit; many units
/// are kept in flight so wall-clock-gated simulated devices drain at
/// their parallel bandwidth rather than one service time per sector.
Status ReadImageChunk(storage::BlockDevice* device, uint64_t off, uint32_t len,
                      uint8_t* buf) {
  const uint32_t unit =
      std::max<uint32_t>(storage::kSectorBytes, device->io_alignment());
  const uint32_t total = (len + unit - 1) / unit;
  uint32_t next = 0, submitted = 0, completed = 0;
  storage::IoCompletion comps[64];
  Status st;
  while (completed < total && st.ok()) {
    while (next < total) {
      const uint64_t rel = static_cast<uint64_t>(next) * unit;
      storage::IoRequest req;
      req.offset = off + rel;
      req.length = static_cast<uint32_t>(std::min<uint64_t>(unit, len - rel));
      req.buf = buf + rel;
      req.user_data = next;
      const Status submit = device->SubmitRead(req);
      if (submit.code() == StatusCode::kResourceExhausted) break;
      if (!submit.ok()) {
        st = submit;
        break;
      }
      ++next;
      ++submitted;
    }
    const size_t n = device->PollCompletions(comps, 64);
    for (size_t i = 0; i < n; ++i) {
      if (comps[i].code != StatusCode::kOk && st.ok()) {
        st = Status::IoError("image read failed");
      }
    }
    completed += static_cast<uint32_t>(n);
  }
  // On error the remaining in-flight reads still target `buf`: drain
  // before returning or the device writes into freed memory.
  while (completed < submitted) {
    completed += static_cast<uint32_t>(device->PollCompletions(comps, 64));
  }
  return st;
}

}  // namespace

Status SaveIndexImage(const StorageIndex& index, const std::string& path) {
  storage::BlockDevice* device = index.device();
  if (device == nullptr) return Status::InvalidArgument("index has no device");
  const uint64_t bytes = index.sizes().storage_bytes;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path + " for write");
  constexpr uint32_t kChunk = 1 << 20;
  std::vector<uint8_t> buf(kChunk);
  Status st;
  for (uint64_t off = 0; off < bytes && st.ok(); off += kChunk) {
    const uint32_t len =
        static_cast<uint32_t>(std::min<uint64_t>(kChunk, bytes - off));
    st = ReadImageChunk(device, off, len, buf.data());
    if (st.ok() && std::fwrite(buf.data(), 1, len, f) != len) {
      st = Status::IoError("short write to " + path);
    }
  }
  std::fclose(f);
  return st;
}

Result<uint64_t> LoadIndexImage(const std::string& path,
                                storage::BlockDevice* device) {
  if (device == nullptr) return Status::InvalidArgument("null device");
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open image " + path);
  constexpr uint32_t kChunk = 1 << 20;
  std::vector<uint8_t> buf(kChunk);
  uint64_t off = 0;
  Status st;
  for (;;) {
    const size_t got = std::fread(buf.data(), 1, kChunk, f);
    if (got == 0) {
      if (std::ferror(f) != 0) st = Status::IoError("read error on " + path);
      break;
    }
    st = device->Write(off, buf.data(), static_cast<uint32_t>(got));
    if (!st.ok()) break;
    off += got;
  }
  std::fclose(f);
  if (!st.ok()) return st;
  return off;
}

}  // namespace e2lshos::core
