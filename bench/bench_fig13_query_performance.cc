// Reproduces Figure 13: speedups over in-memory SRS across all datasets
// for in-memory E2LSH and E2LSHoS behind the three interfaces, at the
// 1.05 overall-ratio target, for top-1 and top-100 ANNS.
//
// SSD configuration: cSSD x 4 ("a low-cost solution that still provides
// sufficient random read performance", Sec. 6.2); XLFDD x 12 for the
// XLFDD interface rows, matching Table 5.
//
// With --shards S an extra sharded-mode table is printed: E2LSHoS QPS on
// cSSD x 4 / io_uring as the batch is sharded across 1..S per-core
// engines (ShardedQueryEngine) — QPS vs. cores, end to end.
//
// With --device file:/uring: (a device URI) the same index image is also
// served from a real backing file on this host (FileDevice thread pool
// or UringDevice async I/O) and an extra measured row is printed per
// dataset — the paper's numbers on your own SSD.
#include "common.h"

#include "core/sharded_engine.h"

using namespace e2lshos;

namespace {

// QPS vs. shard count for one dataset: shard the batch across 1..max_shards
// per-core engines over one shared cSSD x 4 stripe set behind io_uring.
void RunShardedMode(const bench::Workload& w, core::StorageIndex* master,
                    storage::BlockDevice* master_dev, uint64_t image_bytes,
                    uint32_t max_shards, util::JsonlWriter* json) {
  auto stack = bench::MakeStack(storage::DeviceKind::kCssd, 4,
                                storage::InterfaceKind::kIoUring);
  if (!stack.ok()) return;
  if (!bench::CopyIndexImage(master_dev, stack->raw.get(), image_bytes).ok()) {
    return;
  }
  auto view = master->WithDevice(stack->raw.get());

  bench::PrintHeader(
      "Sharded mode (" + w.spec.name + ", cSSDx4/io_uring): QPS vs. cores",
      {"shards", "qps", "mean I/Os", "wall ms", "ratio"});
  // Doubling sweep, always ending exactly at the requested count
  // (--shards 12 measures 1, 2, 4, 8, 12).
  std::vector<uint32_t> shard_counts;
  for (uint32_t s = 1; s < max_shards; s *= 2) shard_counts.push_back(s);
  shard_counts.push_back(max_shards);
  for (const uint32_t s : shard_counts) {
    core::ShardOptions sopts;
    sopts.num_shards = s;
    // Fixed global budgets: the device-visible queue depth stays at the
    // paper's configuration while the per-core submission work shrinks.
    sopts.total_contexts = 64;
    sopts.total_inflight_ios = 512;
    sopts.wrap_shard_device =
        bench::ChargeWrapper(storage::InterfaceKind::kIoUring);
    core::ShardedQueryEngine engine(view.get(), &w.gen.base, sopts);
    auto batch = engine.SearchBatch(w.gen.queries, 1);
    if (!batch.ok()) continue;
    bench::PrintRow(
        {std::to_string(s), bench::Fmt(batch->QueriesPerSecond(), 0),
         bench::Fmt(batch->MeanIos(), 1),
         bench::Fmt(static_cast<double>(batch->wall_ns) / 1e6, 1),
         bench::Fmt(data::MeanOverallRatio(w.gt, batch->results, 1), 3)});
    if (json != nullptr) {
      json->Write(util::JsonRow()
                      .Set("bench", "fig13_sharded")
                      .Set("dataset", w.spec.name)
                      .Set("shards", s)
                      .Set("queue_mode", engine.queue_mode())
                      .Set("qps", batch->QueriesPerSecond())
                      .Set("mean_ios", batch->MeanIos())
                      .Set("wall_ms", static_cast<double>(batch->wall_ns) / 1e6)
                      .Set("ratio",
                           data::MeanOverallRatio(w.gt, batch->results, 1)));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  auto json = args.OpenJson();
  constexpr double kTargetRatio = 1.05;

  core::EngineOptions opts;
  opts.num_contexts = 64;
  opts.max_inflight_ios = 512;

  for (const uint32_t k : {1u, 100u}) {
    bench::PrintHeader(
        "Figure 13: speedup over SRS at ratio 1.05, k=" + std::to_string(k),
        {"Dataset", "E2LSH(in-mem)", "E2LSHoS(io_uring)", "E2LSHoS(SPDK)",
         "E2LSHoS(XLFDD)"});

    for (const auto& spec : data::PaperDatasets()) {
      if (!args.dataset.empty() && spec.name != args.dataset) continue;
      auto w = bench::MakeWorkload(spec, args.EffectiveN(spec), args.queries, k);
      if (!w.ok()) continue;

      auto master_dev = storage::MemoryDevice::Create(8ULL << 30);
      if (!master_dev.ok()) continue;
      auto master = core::IndexBuilder::Build(w->gen.base, w->params,
                                              master_dev->get());
      if (!master.ok()) continue;
      const uint64_t image_bytes = (*master)->sizes().storage_bytes;

      const auto srs = bench::SweepSrs(*w, k, bench::DefaultSrsFractions());
      const double t_srs = bench::QueryNsAtRatio(srs, kTargetRatio);

      auto mem = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
      double t_mem = 0;
      if (mem.ok()) {
        t_mem = bench::QueryNsAtRatio(
            bench::SweepInMemory(mem->get(), *w, k, bench::DefaultSFactors()),
            kTargetRatio);
      }

      auto run_os = [&](storage::DeviceKind kind, uint32_t count,
                        storage::InterfaceKind iface) -> double {
        auto stack = bench::MakeStack(kind, count, iface);
        if (!stack.ok()) return 0;
        if (!bench::CopyIndexImage(master_dev->get(), stack->device(),
                                   image_bytes)
                 .ok()) {
          return 0;
        }
        auto view = (*master)->WithDevice(stack->device());
        return bench::QueryNsAtRatio(
            bench::SweepOs(view.get(), *w, k, opts, bench::DefaultSFactors(),
                           stack->charged.get()),
            kTargetRatio);
      };
      const double t_uring = run_os(storage::DeviceKind::kCssd, 4,
                                    storage::InterfaceKind::kIoUring);
      const double t_spdk =
          run_os(storage::DeviceKind::kCssd, 4, storage::InterfaceKind::kSpdk);
      const double t_xlfdd = run_os(storage::DeviceKind::kXlfdd, 12,
                                    storage::InterfaceKind::kXlfdd);

      // --device file:/uring: the same index image served from an actual
      // backing file on this host (no simulated device or interface
      // model), measured through the identical sweep.
      double t_real = 0;
      std::string real_name;
      if (!args.device.empty()) {
        const std::string path = args.EffectiveDevicePath("fig13");
        auto real = bench::MakeRealDevice(args, path, image_bytes,
                                          /*queue_capacity=*/1024,
                                          /*fill_noise=*/false);
        if (!real.ok()) {
          std::fprintf(stderr, "real-device mode skipped: %s\n",
                       real.status().ToString().c_str());
        } else if (bench::CopyIndexImage(master_dev->get(), real->get(),
                                         image_bytes)
                       .ok()) {
          real_name = (*real)->name();
          auto real_view = (*master)->WithDevice(real->get());
          t_real = bench::QueryNsAtRatio(
              bench::SweepOs(real_view.get(), *w, k, opts,
                             bench::DefaultSFactors()),
              kTargetRatio);
        }
        std::remove(path.c_str());
      }

      auto speedup = [&](double t) {
        return t > 0 ? bench::Fmt(t_srs / t, 1) : std::string("-");
      };
      bench::PrintRow({spec.name, speedup(t_mem), speedup(t_uring),
                       speedup(t_spdk), speedup(t_xlfdd)});
      if (t_real > 0) {
        std::printf("  real SSD (%s): %.1fx over SRS, %.1f us/query\n",
                    real_name.c_str(), t_srs / t_real, t_real / 1e3);
      }
      if (json != nullptr) {
        auto over_srs = [&](double t) { return t > 0 ? t_srs / t : 0.0; };
        util::JsonRow row;
        row.Set("bench", "fig13")
            .Set("dataset", spec.name)
            .Set("k", static_cast<uint64_t>(k))
            .Set("n", w->n())
            .Set("srs_query_ns", t_srs)
            .Set("speedup_e2lsh_mem", over_srs(t_mem))
            .Set("speedup_e2lshos_io_uring", over_srs(t_uring))
            .Set("speedup_e2lshos_spdk", over_srs(t_spdk))
            .Set("speedup_e2lshos_xlfdd", over_srs(t_xlfdd));
        if (t_real > 0) {
          row.Set("real_backend", real_name)
              .Set("speedup_e2lshos_real", over_srs(t_real));
        }
        json->Write(row);
      }

      if (args.shards > 0 && k == 1) {
        RunShardedMode(*w, master->get(), master_dev->get(), image_bytes,
                       args.shards, json.get());
      }
    }
  }
  std::printf(
      "\nExpected shape (paper): E2LSHoS consistently above 1 (beats SRS); "
      "faster\ninterfaces close the gap to in-memory E2LSH and XLFDD "
      "sometimes exceeds it;\nthe advantage grows with dataset size "
      "(BIGANN largest).\n");
  return 0;
}
