// Tests for the streaming serving front-end: results streamed through
// StreamingServer must be bit-identical to a one-shot
// ShardedQueryEngine::SearchBatch over the same queries, every query's
// completion must be delivered exactly once, and shutdown must be clean
// with queries still in flight.
#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <thread>

#include "core/builder.h"
#include "core/query_stream.h"
#include "core/sharded_engine.h"
#include "core/streaming_server.h"
#include "storage/simulated_device.h"
#include "streaming_test_util.h"
#include "util/clock.h"

namespace e2lshos::core {
namespace {

// One deterministic workload + never-drain index on a SimulatedDevice,
// shared by all tests (see streaming_test_util.h for why never-drain
// makes the equivalence claims exact).
struct Fixture {
  data::GeneratedData gen;
  lsh::E2lshParams params;
  std::unique_ptr<storage::SimulatedDevice> dev;
  std::unique_ptr<StorageIndex> index;
};

Fixture* GetFixture() {
  static Fixture* f = [] {
    auto* fx = new Fixture();
    fx->gen = MakeStreamingTestData(19);
    fx->params = NeverDrainParams(fx->gen.base);
    storage::DeviceModel model{"fast-ssd", 16, 2000, 4096, 2ULL << 30};
    auto dev = storage::SimulatedDevice::Create(model);
    EXPECT_TRUE(dev.ok());
    fx->dev = std::move(dev).value();
    auto idx = IndexBuilder::Build(fx->gen.base, fx->params, fx->dev.get());
    EXPECT_TRUE(idx.ok());
    fx->index = std::move(idx).value();
    return fx;
  }();
  return f;
}

void ExpectResultMatchesReference(const QueryResult& got,
                                  const std::vector<util::Neighbor>& want,
                                  uint64_t q) {
  ASSERT_TRUE(got.status.ok()) << "query " << q;
  ExpectSameNeighbors(got.neighbors, want, q);
}

TEST(StreamingServer, MatchesOneShotBatchAcrossShardsAndBatchSizes) {
  Fixture* f = GetFixture();
  const uint32_t k = 10;

  for (const uint32_t shards : {1u, 2u, 4u}) {
    ShardOptions sopts;
    sopts.num_shards = shards;
    ShardedQueryEngine engine(f->index.get(), &f->gen.base, sopts);
    auto ref = engine.SearchBatch(f->gen.queries, k);
    ASSERT_TRUE(ref.ok());

    for (const uint32_t batch_size : {1u, 7u, 64u}) {
      Collector collector;
      ServerOptions opts;
      opts.k = k;
      opts.max_batch_size = batch_size;
      opts.max_wait_us = 100;
      opts.on_result = collector.Callback();
      StreamingServer server(&engine, opts);

      DatasetStream stream(&f->gen.queries);
      ASSERT_TRUE(server.Serve(&stream).ok())
          << "shards=" << shards << " batch=" << batch_size;

      std::lock_guard<std::mutex> lock(collector.mu);
      ASSERT_EQ(collector.results.size(), f->gen.queries.n())
          << "shards=" << shards << " batch=" << batch_size;
      for (uint64_t q = 0; q < f->gen.queries.n(); ++q) {
        ASSERT_EQ(collector.deliveries[q], 1)
            << "query " << q << " delivered more than once";
        ExpectResultMatchesReference(collector.results[q], ref->results[q], q);
      }
    }
  }
}

TEST(StreamingServer, NeighborsSortedWithinEachQuery) {
  Fixture* f = GetFixture();
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, {});
  Collector collector;
  ServerOptions opts;
  opts.k = 10;
  opts.max_batch_size = 8;
  opts.on_result = collector.Callback();
  StreamingServer server(&engine, opts);
  DatasetStream stream(&f->gen.queries);
  ASSERT_TRUE(server.Serve(&stream).ok());

  std::lock_guard<std::mutex> lock(collector.mu);
  for (const auto& [id, r] : collector.results) {
    for (size_t i = 1; i < r.neighbors.size(); ++i) {
      EXPECT_LE(r.neighbors[i - 1].dist, r.neighbors[i].dist)
          << "query " << id << " rank " << i;
    }
  }
}

TEST(StreamingServer, MaxWaitFlushesPartialBatch) {
  Fixture* f = GetFixture();
  ShardOptions sopts;
  sopts.num_shards = 2;
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, sopts);

  Collector collector;
  ServerOptions opts;
  opts.k = 5;
  opts.max_batch_size = 64;  // far more than we submit
  opts.max_wait_us = 500;
  opts.on_result = collector.Callback();
  StreamingServer server(&engine, opts);

  SubmissionQueue queue(f->gen.queries.dim(), 16);
  ASSERT_TRUE(server.Start(&queue).ok());
  for (uint64_t q = 0; q < 3; ++q) {
    ASSERT_TRUE(queue.Submit(f->gen.queries.Row(q)).ok());
  }
  // The queue stays open: only the max-wait timer can flush these three.
  const uint64_t deadline = util::NowNs() + 10ULL * 1000 * 1000 * 1000;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(collector.mu);
      if (collector.results.size() == 3) break;
    }
    ASSERT_LT(util::NowNs(), deadline) << "max-wait flush never happened";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  queue.Close();
  server.Wait();
  const StreamingSnapshot snap = server.stats();
  EXPECT_EQ(snap.completed, 3u);
  EXPECT_EQ(snap.failed, 0u);
}

TEST(StreamingServer, PollableFutureHandles) {
  Fixture* f = GetFixture();
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, {});
  auto ref = engine.SearchBatch(f->gen.queries, 10);
  ASSERT_TRUE(ref.ok());

  FutureSink sink;
  ServerOptions opts;
  opts.k = 10;
  opts.max_batch_size = 4;
  opts.on_result = sink.Callback();
  StreamingServer server(&engine, opts);

  SubmissionQueue queue(f->gen.queries.dim(), 64);
  ASSERT_TRUE(server.Start(&queue).ok());

  std::vector<std::pair<uint64_t, QueryFuture>> futures;
  for (uint64_t q = 0; q < 10; ++q) {
    auto id = queue.Submit(f->gen.queries.Row(q));
    ASSERT_TRUE(id.ok());
    futures.emplace_back(q, sink.Register(*id));
  }
  queue.Close();
  server.Wait();

  for (auto& [q, fut] : futures) {
    EXPECT_TRUE(fut.Ready());  // server drained: all must be ready
    QueryResult r = fut.Take();
    ExpectResultMatchesReference(r, ref->results[q], q);
    EXPECT_GT(r.latency_ns, 0u);
  }
  EXPECT_EQ(sink.unclaimed(), 0u);
}

TEST(StreamingServer, CleanShutdownWithQueriesInFlight) {
  Fixture* f = GetFixture();
  ShardOptions sopts;
  sopts.num_shards = 4;
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, sopts);
  auto ref = engine.SearchBatch(f->gen.queries, 10);
  ASSERT_TRUE(ref.ok());

  Collector collector;
  ServerOptions opts;
  opts.k = 10;
  opts.max_batch_size = 2;
  opts.on_result = collector.Callback();
  StreamingServer server(&engine, opts);

  // Submit everything up front (capacity >= count: Submit never blocks),
  // then stop while workers are mid-drain.
  SubmissionQueue queue(f->gen.queries.dim(), f->gen.queries.n());
  for (uint64_t q = 0; q < f->gen.queries.n(); ++q) {
    ASSERT_TRUE(queue.Submit(f->gen.queries.Row(q)).ok());
  }
  ASSERT_TRUE(server.Start(&queue).ok());
  server.Stop();
  server.Wait();  // must return: no wedge on undrained queries
  queue.Close();

  // Whatever was delivered is delivered exactly once and correct; the
  // rest was never pulled.
  std::lock_guard<std::mutex> lock(collector.mu);
  for (const auto& [id, n] : collector.deliveries) {
    EXPECT_EQ(n, 1) << "query " << id;
    ExpectResultMatchesReference(collector.results[id], ref->results[id], id);
  }
  EXPECT_LE(collector.results.size(), f->gen.queries.n());
  EXPECT_EQ(server.stats().completed, collector.results.size());
}

TEST(StreamingServer, EmptyStreamAndZeroQueries) {
  Fixture* f = GetFixture();
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, {});

  // Empty materialized dataset: serve returns with nothing delivered.
  data::Dataset empty("empty", f->gen.queries.dim());
  Collector collector;
  ServerOptions opts;
  opts.k = 10;
  opts.on_result = collector.Callback();
  {
    StreamingServer server(&engine, opts);
    DatasetStream stream(&empty);
    ASSERT_TRUE(server.Serve(&stream).ok());
    EXPECT_EQ(server.stats().completed, 0u);
    EXPECT_EQ(server.stats().batches, 0u);
    EXPECT_EQ(server.stats().sustained_qps, 0.0);
  }
  // Submission queue closed with zero submissions: same.
  {
    StreamingServer server(&engine, opts);
    SubmissionQueue queue(f->gen.queries.dim(), 8);
    queue.Close();
    ASSERT_TRUE(server.Serve(&queue).ok());
    EXPECT_EQ(server.stats().completed, 0u);
  }
  std::lock_guard<std::mutex> lock(collector.mu);
  EXPECT_TRUE(collector.results.empty());
}

TEST(StreamingServer, BoundedGeneratorStreamDrains) {
  Fixture* f = GetFixture();
  ShardOptions sopts;
  sopts.num_shards = 2;
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, sopts);

  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = f->gen.base.dim();
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(48.0);
  spec.center_spread = 10.0 * std::sqrt(6.0 / 24.0);
  spec.seed = 23;
  GeneratorStream stream(spec, 100);

  Collector collector;
  ServerOptions opts;
  opts.k = 5;
  opts.max_batch_size = 16;
  opts.on_result = collector.Callback();
  StreamingServer server(&engine, opts);
  ASSERT_TRUE(server.Serve(&stream).ok());

  std::lock_guard<std::mutex> lock(collector.mu);
  ASSERT_EQ(collector.results.size(), 100u);
  for (const auto& [id, r] : collector.results) {
    EXPECT_TRUE(r.status.ok()) << "query " << id;
    EXPECT_EQ(r.neighbors.size(), 5u) << "query " << id;
    EXPECT_EQ(collector.deliveries[id], 1) << "query " << id;
  }
  const StreamingSnapshot snap = server.stats();
  EXPECT_EQ(snap.completed, 100u);
  EXPECT_GT(snap.overall_qps, 0.0);
  EXPECT_LE(snap.p50_ns, snap.p95_ns);
  EXPECT_LE(snap.p95_ns, snap.p99_ns);
  EXPECT_LE(snap.p99_ns, snap.max_ns);
}

TEST(StreamingServer, RejectsBadConfigurations) {
  Fixture* f = GetFixture();
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, {});
  DatasetStream stream(&f->gen.queries);

  ServerOptions zero_k;
  zero_k.k = 0;
  StreamingServer bad_k(&engine, zero_k);
  EXPECT_EQ(bad_k.Start(&stream).code(), StatusCode::kInvalidArgument);

  data::Dataset wrong("wrong", f->gen.queries.dim() + 1);
  std::vector<float> row(wrong.dim(), 0.0f);
  wrong.Append(row.data());
  DatasetStream wrong_stream(&wrong);
  ServerOptions opts;
  opts.k = 5;
  StreamingServer server(&engine, opts);
  EXPECT_EQ(server.Start(&wrong_stream).code(), StatusCode::kInvalidArgument);

  // Double-start is rejected; the first run still drains cleanly.
  StreamingServer running(&engine, opts);
  ASSERT_TRUE(running.Start(&stream).ok());
  EXPECT_EQ(running.Start(&stream).code(), StatusCode::kFailedPrecondition);
  running.Wait();
}

TEST(StreamingServer, RestartReportsOnlyTheCurrentRun) {
  Fixture* f = GetFixture();
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, {});
  ServerOptions opts;
  opts.k = 5;
  StreamingServer server(&engine, opts);

  DatasetStream first(&f->gen.queries);
  ASSERT_TRUE(server.Serve(&first).ok());
  ASSERT_EQ(server.stats().completed, f->gen.queries.n());

  // Second run over 3 queries: the snapshot must not blend in the first
  // run's counts or latencies.
  data::Dataset small("small", f->gen.queries.dim());
  for (uint64_t q = 0; q < 3; ++q) small.Append(f->gen.queries.Row(q));
  DatasetStream second(&small);
  ASSERT_TRUE(server.Serve(&second).ok());
  const StreamingSnapshot snap = server.stats();
  EXPECT_EQ(snap.completed, 3u);
  EXPECT_LE(snap.batches, 3u);
}

TEST(QueryFuture, UnboundFutureIsSafe) {
  QueryFuture fut;
  EXPECT_FALSE(fut.Ready());
  QueryResult r = fut.Take();  // must not crash
  EXPECT_EQ(r.status.code(), StatusCode::kFailedPrecondition);
}

TEST(FutureSink, FailPendingUnblocksUndeliveredFutures) {
  // After an early Stop() the server never delivers queries it never
  // pulled; FailPending is the escape hatch that keeps their futures
  // from blocking forever.
  FutureSink sink;
  QueryFuture delivered = sink.Register(1);
  QueryFuture orphaned = sink.Register(2);

  QueryResult r;
  r.id = 1;
  sink.Deliver(std::move(r));
  sink.FailPending(Status::IoError("server stopped"));

  ASSERT_TRUE(delivered.Ready());
  EXPECT_TRUE(delivered.Take().status.ok());
  ASSERT_TRUE(orphaned.Ready());
  QueryResult failed = orphaned.Take();
  EXPECT_EQ(failed.status.code(), StatusCode::kIoError);
  EXPECT_EQ(failed.id, 2u);
}

TEST(FutureSink, DuplicateRegistrationsShareOneState) {
  // Registering an id twice must not orphan the first future: both
  // become ready on delivery (Take moves, so one taker per id).
  FutureSink sink;
  QueryFuture first = sink.Register(9);
  QueryFuture second = sink.Register(9);
  QueryResult r;
  r.id = 9;
  sink.Deliver(std::move(r));
  EXPECT_TRUE(first.Ready());
  EXPECT_TRUE(second.Ready());
  EXPECT_TRUE(first.Take().status.ok());
}

TEST(FutureSink, UnclaimedStashIsBounded) {
  FutureSink sink(/*max_unclaimed=*/2);
  for (uint64_t id = 0; id < 5; ++id) {
    QueryResult r;
    r.id = id;
    sink.Deliver(std::move(r));  // nothing registered: all go unclaimed
  }
  EXPECT_EQ(sink.unclaimed(), 2u);
  EXPECT_EQ(sink.dropped(), 3u);
  // Stashed ids are still claimable; dropped ones are gone.
  EXPECT_TRUE(sink.Register(0).Ready());
}

TEST(GeneratorStream, HonorsByteQuantization) {
  // The stream shares data::PointSampler with data::Generate, so a
  // byte-quantized spec yields grid-aligned query coordinates.
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kUniform;
  spec.dim = 8;
  spec.scale = 10.0;
  spec.byte_quantize = true;
  spec.seed = 3;
  GeneratorStream stream(spec, 50);
  const double step = spec.scale / 255.0;
  StreamQuery q;
  while (stream.TryPull(&q) == StreamPull::kReady) {
    for (const float v : q.vec) {
      const double levels = static_cast<double>(v) / step;
      EXPECT_NEAR(levels, std::round(levels), 1e-3);
    }
  }
}

TEST(SubmissionQueue, BackpressureAndClose) {
  SubmissionQueue queue(4, 2);
  const float vec[4] = {1, 2, 3, 4};
  ASSERT_TRUE(queue.TrySubmit(vec).ok());
  ASSERT_TRUE(queue.TrySubmit(vec).ok());
  EXPECT_EQ(queue.TrySubmit(vec).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.depth(), 2u);

  StreamQuery q;
  EXPECT_EQ(queue.TryPull(&q), StreamPull::kReady);
  EXPECT_EQ(q.id, 0u);
  EXPECT_GT(q.enqueue_ns, 0u);
  ASSERT_EQ(q.vec.size(), 4u);
  EXPECT_EQ(q.vec[3], 4.0f);

  queue.Close();
  EXPECT_EQ(queue.Submit(vec).status().code(), StatusCode::kFailedPrecondition);
  // Queued entries still drain after Close, then the stream reports closed.
  EXPECT_EQ(queue.TryPull(&q), StreamPull::kReady);
  EXPECT_EQ(q.id, 1u);
  EXPECT_EQ(queue.TryPull(&q), StreamPull::kClosed);
}

TEST(StreamingServer, DeadlineShedsStaleQueriesAndCountsRejected) {
  Fixture* f = GetFixture();
  const uint32_t k = 5;
  ShardOptions sopts;
  sopts.num_shards = 2;
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, sopts);

  // Age a backlog in the queue before the server starts: every one of
  // these has waited far past the deadline by the time a worker pulls
  // it, so all must be shed — delivered exactly once as rejections,
  // counted in rejected, absent from completed and the percentiles.
  const uint64_t kStale = 12;
  SubmissionQueue queue(f->gen.base.dim(), 256);
  for (uint64_t i = 0; i < kStale; ++i) {
    ASSERT_TRUE(queue.Submit(f->gen.queries.Row(i)).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  Collector collector;
  ServerOptions opts;
  opts.k = k;
  opts.max_batch_size = 4;
  opts.deadline_us = 100000;  // 100 ms, long since blown by the backlog
  opts.on_result = collector.Callback();
  StreamingServer server(&engine, opts);
  ASSERT_TRUE(server.Start(&queue).ok());

  // Wait until the backlog is shed, then offer fresh queries: they are
  // pulled within microseconds of submission and must be served.
  while (server.stats().rejected < kStale) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const uint64_t kFresh = 8;
  std::vector<uint64_t> fresh_ids;
  for (uint64_t i = 0; i < kFresh; ++i) {
    auto id = queue.Submit(f->gen.queries.Row(i));
    ASSERT_TRUE(id.ok());
    fresh_ids.push_back(*id);
  }
  queue.Close();
  server.Wait();

  const StreamingSnapshot snap = server.stats();
  EXPECT_EQ(snap.rejected, kStale);
  EXPECT_EQ(snap.completed, kFresh);
  EXPECT_EQ(snap.failed, 0u);

  std::lock_guard<std::mutex> lock(collector.mu);
  ASSERT_EQ(collector.results.size(), kStale + kFresh);
  for (uint64_t id = 0; id < kStale; ++id) {
    ASSERT_EQ(collector.deliveries[id], 1) << "stale id " << id;
    EXPECT_EQ(collector.results[id].status.code(),
              StatusCode::kResourceExhausted)
        << "stale id " << id;
    EXPECT_TRUE(collector.results[id].neighbors.empty());
  }
  for (const uint64_t id : fresh_ids) {
    ASSERT_EQ(collector.deliveries[id], 1) << "fresh id " << id;
    EXPECT_TRUE(collector.results[id].status.ok()) << "fresh id " << id;
    EXPECT_EQ(collector.results[id].neighbors.size(), k);
  }
}

TEST(StreamingServer, NoDeadlineMeansNoShedding) {
  Fixture* f = GetFixture();
  ShardOptions sopts;
  sopts.num_shards = 1;
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, sopts);

  // Same aged backlog, but deadline_us = 0: everything is served.
  SubmissionQueue queue(f->gen.base.dim(), 64);
  for (uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(queue.Submit(f->gen.queries.Row(i)).ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  queue.Close();

  Collector collector;
  ServerOptions opts;
  opts.k = 3;
  opts.on_result = collector.Callback();
  StreamingServer server(&engine, opts);
  ASSERT_TRUE(server.Serve(&queue).ok());

  const StreamingSnapshot snap = server.stats();
  EXPECT_EQ(snap.rejected, 0u);
  EXPECT_EQ(snap.completed, 6u);
}

// Regression: producers blocked in Submit() on a full queue must wake
// with an error when the serving side dies (Stop without Close). Before
// the QueryStream::ConsumerStopped hook the workers exited without
// closing the queue, and every wedged producer waited forever for a
// drain that could never happen — this test then hangs until the ctest
// timeout kills it.
TEST(SubmissionQueue, WedgedProducersWakeWhenConsumerDies) {
  Fixture* f = GetFixture();
  ShardOptions sopts;
  sopts.num_shards = 1;
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, sopts);

  Collector collector;
  ServerOptions opts;
  opts.k = 3;
  opts.on_result = collector.Callback();
  StreamingServer server(&engine, opts);

  // Capacity 1 with 8 producers in tight Submit loops: at any moment
  // nearly all of them are blocked inside Submit on the full queue.
  SubmissionQueue queue(f->gen.queries.dim(), 1);
  ASSERT_TRUE(server.Start(&queue).ok());

  constexpr int kProducers = 8;
  std::vector<Status> last(kProducers, Status::OK());
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (;;) {
        auto id = queue.Submit(f->gen.queries.Row(p % f->gen.queries.n()));
        if (!id.ok()) {
          last[p] = id.status();
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  // Kill the server out from under them: no Close(), just Stop. The
  // last worker out must close the queue and wake every producer.
  server.Stop();
  server.Wait();
  for (auto& t : producers) t.join();  // pre-fix: hangs here

  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(last[p].code(), StatusCode::kFailedPrecondition) << p;
    EXPECT_NE(last[p].message().find("consumer"), std::string::npos)
        << "producer " << p << " got: " << last[p].ToString();
  }
  // And a fresh submission attempt fails the same way instead of
  // blocking.
  EXPECT_EQ(queue.Submit(f->gen.queries.Row(0)).status().code(),
            StatusCode::kFailedPrecondition);
}

// Stats snapshots must be coherent while workers are recording: no torn
// histogram or counter reads (TSan covers the data-race half; the
// invariants below catch torn merges). Readers hammer stats() while
// producers keep the server busy.
TEST(StreamingServer, StatsSnapshotsCoherentWhileServing) {
  Fixture* f = GetFixture();
  ShardOptions sopts;
  sopts.num_shards = 4;
  ShardedQueryEngine engine(f->index.get(), &f->gen.base, sopts);

  ServerOptions opts;
  opts.k = 5;
  opts.max_batch_size = 4;
  StreamingServer server(&engine, opts);
  SubmissionQueue queue(f->gen.queries.dim(), 128);
  ASSERT_TRUE(server.Start(&queue).ok());

  std::atomic<bool> done{false};
  std::thread producer([&] {
    uint64_t i = 0;
    while (!done.load(std::memory_order_relaxed)) {
      (void)queue.Submit(f->gen.queries.Row(i++ % f->gen.queries.n()));
    }
  });

  constexpr int kReaders = 4;
  std::vector<std::thread> readers;
  std::atomic<uint64_t> snapshots{0};
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      uint64_t prev_completed = 0;
      while (!done.load(std::memory_order_relaxed)) {
        const StreamingSnapshot snap = server.stats();
        // Counters only grow, and the merged histogram's percentiles
        // are ordered — a torn read breaks one of these.
        EXPECT_GE(snap.completed, prev_completed);
        prev_completed = snap.completed;
        EXPECT_LE(snap.failed, snap.completed);
        EXPECT_LE(snap.p50_ns, snap.p95_ns);
        EXPECT_LE(snap.p95_ns, snap.p99_ns);
        EXPECT_LE(snap.p99_ns, snap.max_ns);
        if (snap.batches > 0) {
          EXPECT_GT(snap.mean_batch_size, 0.0);
          EXPECT_LE(snap.mean_batch_size,
                    static_cast<double>(opts.max_batch_size));
        }
        snapshots.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  done.store(true, std::memory_order_relaxed);
  producer.join();
  for (auto& t : readers) t.join();
  EXPECT_GT(snapshots.load(), 0u);

  queue.Close();
  server.Wait();
  const StreamingSnapshot final_snap = server.stats();
  EXPECT_GT(final_snap.completed, 0u);
  EXPECT_EQ(final_snap.failed, 0u);
}

}  // namespace
}  // namespace e2lshos::core
