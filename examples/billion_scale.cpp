// Billion-scale projection: the paper's Sec. 6.3 story in miniature.
// Measures E2LSHoS (through e2lshos::Index on a simulated XL-Flash DD,
// device URI "sim:xlfdd?iface=xlfdd") and SRS query times over a
// geometric ladder of database sizes, fits power laws, and extrapolates
// both to 10^9 objects — showing why sublinear query time wins at scale
// and what index size the billion-object run would need (the paper:
// 6.1 TB on storage, ~139 GB DRAM for the database).
//
//   ./examples/billion_scale [--max-n N]
#include <cstdio>
#include <cstring>

#include "api/index.h"
#include "baselines/srs.h"
#include "data/registry.h"
#include "util/stats.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  uint64_t max_n = 160000;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--max-n") == 0) max_n = std::stoull(argv[i + 1]);
  }
  auto spec = data::GetDatasetSpec("BIGANN");
  if (!spec.ok()) return 1;

  std::vector<double> xs, os_ts, srs_ts;
  std::vector<uint64_t> index_bytes;
  std::printf("%10s %14s %14s %16s\n", "n", "E2LSHoS us/q", "SRS us/q",
              "index on storage");
  for (uint64_t n = max_n / 8; n <= max_n; n *= 2) {
    auto gen = data::MakeDataset(*spec, n, 50);

    IndexSpec index_spec;
    index_spec.lsh = spec->lsh;
    index_spec.device_uri = "sim:xlfdd?iface=xlfdd";
    auto index = Index::Build(index_spec, gen.base);  // copy: SRS reuses gen
    if (!index.ok()) continue;
    SearchSpec search;
    search.contexts_per_shard = 64;
    if (!(*index)->Configure(search).ok()) continue;
    auto batch = (*index)->SearchBatch(gen.queries, 1);
    if (!batch.ok()) continue;
    const double t_os = static_cast<double>(batch->wall_ns) / gen.queries.n();

    baselines::SrsConfig srs_cfg;
    srs_cfg.max_verify = n / 20;
    auto srs = baselines::Srs::Build(gen.base, srs_cfg);
    if (!srs.ok()) continue;
    const auto sb = (*srs)->SearchBatch(gen.queries, 1);
    const double t_srs = static_cast<double>(sb.wall_ns) / gen.queries.n();

    xs.push_back(static_cast<double>(n));
    os_ts.push_back(t_os);
    srs_ts.push_back(t_srs);
    index_bytes.push_back((*index)->sizes().storage_bytes);
    std::printf("%10llu %14.1f %14.1f %15.1fM\n",
                static_cast<unsigned long long>(n), t_os / 1e3, t_srs / 1e3,
                static_cast<double>(index_bytes.back()) / (1 << 20));
  }
  if (xs.size() < 2) return 1;

  const auto os_fit = util::FitPowerLaw(xs, os_ts);
  const auto srs_fit = util::FitPowerLaw(xs, srs_ts);
  std::printf("\npower-law fits: E2LSHoS t ~ n^%.2f, SRS t ~ n^%.2f\n",
              os_fit.exponent, srs_fit.exponent);

  const double billion = 1e9;
  const double os_1b = os_fit.prefactor * std::pow(billion, os_fit.exponent);
  const double srs_1b = srs_fit.prefactor * std::pow(billion, srs_fit.exponent);
  // Index bytes scale ~ n^(1+rho) with the same rho as L.
  const auto idx_fit = util::FitPowerLaw(
      xs, std::vector<double>(index_bytes.begin(), index_bytes.end()));
  const double idx_1b = idx_fit.prefactor * std::pow(billion, idx_fit.exponent);

  std::printf(
      "\nextrapolation to n = 1e9:\n"
      "  E2LSHoS : %8.2f ms/query   (paper measures ~tens of ms-class at "
      "1B)\n"
      "  SRS     : %8.2f ms/query   (linear growth)\n"
      "  speedup : %8.1fx           (paper reports ~100x at 1B)\n"
      "  index   : %8.1f TB on storage (paper: 6.1 TB)\n",
      os_1b / 1e6, srs_1b / 1e6, srs_1b / os_1b, idx_1b / 1e12);
  std::printf(
      "\nDRAM stays at the database size plus megabytes of table "
      "addresses — the\nindex size limit of in-memory E2LSH no longer "
      "applies.\n");
  return 0;
}
