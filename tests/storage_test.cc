// Tests for the storage substrate: memory/simulated/file/striped devices
// and the interface CPU-cost models.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <numeric>

#include "storage/device_registry.h"
#include "storage/file_device.h"
#include "storage/interface_model.h"
#include "storage/memory_device.h"
#include "storage/simulated_device.h"
#include "storage/striped_device.h"
#include "util/aligned_buffer.h"
#include "util/clock.h"
#include "util/rng.h"

namespace e2lshos::storage {
namespace {

// Fill a device region with a deterministic pattern.
void WritePattern(BlockDevice* dev, uint64_t offset, uint32_t len, uint64_t seed) {
  std::vector<uint8_t> buf(len);
  util::Rng rng(seed);
  for (auto& b : buf) b = static_cast<uint8_t>(rng.NextU32());
  ASSERT_TRUE(dev->Write(offset, buf.data(), len).ok());
}

bool CheckPattern(const uint8_t* data, uint32_t len, uint64_t seed) {
  util::Rng rng(seed);
  for (uint32_t i = 0; i < len; ++i) {
    if (data[i] != static_cast<uint8_t>(rng.NextU32())) return false;
  }
  return true;
}

TEST(MemoryDevice, WriteThenSyncReadRoundTrips) {
  auto dev = MemoryDevice::Create(1 << 20);
  ASSERT_TRUE(dev.ok());
  WritePattern(dev->get(), 4096, 512, 1);
  util::AlignedBuffer buf(512);
  ASSERT_TRUE((*dev)->ReadSync(4096, buf.data(), 512).ok());
  EXPECT_TRUE(CheckPattern(buf.data(), 512, 1));
}

TEST(MemoryDevice, RejectsOutOfRange) {
  auto dev = MemoryDevice::Create(4096);
  ASSERT_TRUE(dev.ok());
  util::AlignedBuffer buf(512);
  IoRequest req{4096 - 256, 512, buf.data(), 0};
  EXPECT_EQ((*dev)->SubmitRead(req).code(), StatusCode::kOutOfRange);
  EXPECT_EQ((*dev)->Write(4000, buf.data(), 512).code(), StatusCode::kOutOfRange);
}

TEST(MemoryDevice, RejectsNullBuffer) {
  auto dev = MemoryDevice::Create(4096);
  ASSERT_TRUE(dev.ok());
  IoRequest req{0, 512, nullptr, 0};
  EXPECT_EQ((*dev)->SubmitRead(req).code(), StatusCode::kInvalidArgument);
}

TEST(MemoryDevice, UserDataRoundTrips) {
  auto dev = MemoryDevice::Create(1 << 16);
  ASSERT_TRUE(dev.ok());
  util::AlignedBuffer buf(512);
  for (uint64_t tag : {7ULL, 42ULL, ~0ULL >> 1}) {
    IoRequest req{0, 512, buf.data(), tag};
    ASSERT_TRUE((*dev)->SubmitRead(req).ok());
    IoCompletion comp;
    ASSERT_EQ((*dev)->PollCompletions(&comp, 1), 1u);
    EXPECT_EQ(comp.user_data, tag);
  }
}

TEST(MemoryDevice, StatsCountReads) {
  auto dev = MemoryDevice::Create(1 << 16);
  ASSERT_TRUE(dev.ok());
  util::AlignedBuffer buf(512);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE((*dev)->ReadSync(0, buf.data(), 512).ok());
  }
  EXPECT_EQ((*dev)->stats().reads_completed, 5u);
  EXPECT_EQ((*dev)->stats().bytes_read, 5 * 512u);
  (*dev)->ResetStats();
  EXPECT_EQ((*dev)->stats().reads_completed, 0u);
}

TEST(SimulatedDevice, DataIntegrityThroughQueue) {
  DeviceModel model{"test", 4, 1000, 64, 1 << 20};
  auto dev = SimulatedDevice::Create(model);
  ASSERT_TRUE(dev.ok());
  for (int i = 0; i < 8; ++i) WritePattern(dev->get(), i * 512, 512, 100 + i);

  std::vector<util::AlignedBuffer> bufs(8);
  for (int i = 0; i < 8; ++i) {
    bufs[i].Reset(512);
    IoRequest req{static_cast<uint64_t>(i) * 512, 512, bufs[i].data(),
                  static_cast<uint64_t>(i)};
    ASSERT_TRUE((*dev)->SubmitRead(req).ok());
  }
  int done = 0;
  IoCompletion comps[8];
  while (done < 8) {
    const size_t n = (*dev)->PollCompletions(comps, 8);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_TRUE(CheckPattern(bufs[comps[j].user_data].data(), 512,
                               100 + comps[j].user_data));
    }
    done += static_cast<int>(n);
  }
}

TEST(SimulatedDevice, Qd1LatencyMatchesServiceTime) {
  DeviceModel model{"test", 8, 200000, 64, 1 << 20};  // 200 us service
  auto dev = SimulatedDevice::Create(model);
  ASSERT_TRUE(dev.ok());
  util::AlignedBuffer buf(512);
  const uint64_t t0 = util::NowNs();
  ASSERT_TRUE((*dev)->ReadSync(0, buf.data(), 512).ok());
  const uint64_t elapsed = util::NowNs() - t0;
  EXPECT_GE(elapsed, 200000u);
  EXPECT_LT(elapsed, 2000000u);  // within 10x (scheduling noise)
}

TEST(SimulatedDevice, ThroughputScalesWithQueueDepth) {
  // With 8 parallel units, deep queues should complete ~8x faster than
  // one-at-a-time.
  DeviceModel model{"test", 8, 100000, 256, 1 << 20};
  auto dev = SimulatedDevice::Create(model);
  ASSERT_TRUE(dev.ok());
  constexpr int kReads = 64;
  std::vector<util::AlignedBuffer> bufs(kReads);
  for (auto& b : bufs) b.Reset(512);

  const uint64_t t0 = util::NowNs();
  for (int i = 0; i < kReads; ++i) {
    IoRequest req{0, 512, bufs[i].data(), static_cast<uint64_t>(i)};
    ASSERT_TRUE((*dev)->SubmitRead(req).ok());
  }
  int done = 0;
  IoCompletion comps[16];
  while (done < kReads) done += static_cast<int>((*dev)->PollCompletions(comps, 16));
  const uint64_t deep_ns = util::NowNs() - t0;

  // Expected: 64 reads / 8 units * 100 us = 800 us (vs 6.4 ms serial).
  EXPECT_LT(deep_ns, 3200000u);
  EXPECT_GE(deep_ns, 800000u);
}

TEST(SimulatedDevice, QueueCapacityEnforced) {
  DeviceModel model{"test", 1, 1000000, 4, 1 << 20};
  auto dev = SimulatedDevice::Create(model);
  ASSERT_TRUE(dev.ok());
  util::AlignedBuffer buf(512);
  IoRequest req{0, 512, buf.data(), 0};
  for (int i = 0; i < 4; ++i) ASSERT_TRUE((*dev)->SubmitRead(req).ok());
  EXPECT_EQ((*dev)->SubmitRead(req).code(), StatusCode::kResourceExhausted);
}

TEST(SimulatedDevice, LatencyGrowsWhenSaturated) {
  // 2 units, 100 us service: 32 outstanding reads queue ~16 deep per unit.
  DeviceModel model{"test", 2, 100000, 256, 1 << 20};
  auto dev = SimulatedDevice::Create(model);
  ASSERT_TRUE(dev.ok());
  std::vector<util::AlignedBuffer> bufs(32);
  for (auto& b : bufs) b.Reset(512);
  for (int i = 0; i < 32; ++i) {
    IoRequest req{0, 512, bufs[i].data(), static_cast<uint64_t>(i)};
    ASSERT_TRUE((*dev)->SubmitRead(req).ok());
  }
  int done = 0;
  IoCompletion comps[32];
  while (done < 32) done += static_cast<int>((*dev)->PollCompletions(comps, 32));
  // Mean latency far above one service time (queueing delay).
  EXPECT_GT((*dev)->stats().read_latency.mean(), 300000.0);
}

TEST(DeviceRegistry, Qd1IopsMatchTable2) {
  // QD=1 IOPS = 1e9 / service_time; Table 2 column 1.
  EXPECT_NEAR(GetDeviceModel(DeviceKind::kCssd).ExpectedIops(1) / 1e3, 7.2, 0.1);
  EXPECT_NEAR(GetDeviceModel(DeviceKind::kEssd).ExpectedIops(1) / 1e3, 27.6, 0.1);
  EXPECT_NEAR(GetDeviceModel(DeviceKind::kXlfdd).ExpectedIops(1) / 1e3, 132.3, 0.3);
  EXPECT_NEAR(GetDeviceModel(DeviceKind::kHdd).ExpectedIops(1) / 1e3, 0.21, 0.01);
}

TEST(DeviceRegistry, Qd128IopsMatchTable2) {
  // Saturated IOPS = units / service_time; Table 2 column 2.
  EXPECT_NEAR(GetDeviceModel(DeviceKind::kCssd).ExpectedIops(128) / 1e3, 273, 5);
  EXPECT_NEAR(GetDeviceModel(DeviceKind::kEssd).ExpectedIops(128) / 1e3, 1400, 20);
  EXPECT_NEAR(GetDeviceModel(DeviceKind::kXlfdd).ExpectedIops(128) / 1e3, 3860, 60);
}

TEST(DeviceRegistry, Table5ConfigsPresent) {
  const auto configs = Table5Configs();
  ASSERT_EQ(configs.size(), 5u);
  EXPECT_EQ(configs[0].DisplayName(), "cSSD x 1");
  EXPECT_EQ(configs[4].DisplayName(), "XLFDD x 12");
}

TEST(StripedDevice, RoundTripsAcrossChildren) {
  std::vector<std::unique_ptr<BlockDevice>> children;
  for (int i = 0; i < 4; ++i) {
    auto dev = MemoryDevice::Create(1 << 20);
    ASSERT_TRUE(dev.ok());
    children.push_back(std::move(dev.value()));
  }
  auto striped = StripedDevice::Create(std::move(children));
  ASSERT_TRUE(striped.ok());
  EXPECT_EQ((*striped)->capacity(), 4ULL << 20);

  // Write a multi-sector extent, read back sector by sector.
  WritePattern(striped->get(), 1024, 4096, 55);
  util::Rng rng(55);
  std::vector<uint8_t> expect(4096);
  for (auto& b : expect) b = static_cast<uint8_t>(rng.NextU32());
  for (int s = 0; s < 8; ++s) {
    util::AlignedBuffer buf(512);
    ASSERT_TRUE((*striped)->ReadSync(1024 + s * 512, buf.data(), 512).ok());
    EXPECT_EQ(std::memcmp(buf.data(), expect.data() + s * 512, 512), 0);
  }
}

TEST(StripedDevice, RejectsSectorCrossingReads) {
  std::vector<std::unique_ptr<BlockDevice>> children;
  auto dev = MemoryDevice::Create(1 << 20);
  ASSERT_TRUE(dev.ok());
  children.push_back(std::move(dev.value()));
  auto dev2 = MemoryDevice::Create(1 << 20);
  ASSERT_TRUE(dev2.ok());
  children.push_back(std::move(dev2.value()));
  auto striped = StripedDevice::Create(std::move(children));
  ASSERT_TRUE(striped.ok());
  util::AlignedBuffer buf(512);
  IoRequest req{256, 512, buf.data(), 0};  // crosses a sector boundary
  EXPECT_EQ((*striped)->SubmitRead(req).code(), StatusCode::kInvalidArgument);
}

TEST(StripedDevice, DistributesLoadEvenly) {
  std::vector<std::unique_ptr<BlockDevice>> children;
  std::vector<BlockDevice*> raw;
  for (int i = 0; i < 4; ++i) {
    auto dev = MemoryDevice::Create(1 << 20);
    ASSERT_TRUE(dev.ok());
    raw.push_back(dev->get());
    children.push_back(std::move(dev.value()));
  }
  auto striped = StripedDevice::Create(std::move(children));
  ASSERT_TRUE(striped.ok());
  util::AlignedBuffer buf(512);
  for (int s = 0; s < 64; ++s) {
    ASSERT_TRUE((*striped)->ReadSync(static_cast<uint64_t>(s) * 512, buf.data(), 512).ok());
  }
  for (auto* dev : raw) EXPECT_EQ(dev->stats().reads_completed, 16u);
}

TEST(InterfaceModel, SpecsMatchTable3) {
  EXPECT_EQ(GetInterfaceSpec(InterfaceKind::kIoUring).submit_overhead_ns, 1000u);
  EXPECT_EQ(GetInterfaceSpec(InterfaceKind::kSpdk).submit_overhead_ns, 350u);
  EXPECT_EQ(GetInterfaceSpec(InterfaceKind::kXlfdd).submit_overhead_ns, 50u);
  EXPECT_NEAR(GetInterfaceSpec(InterfaceKind::kIoUring).MaxIopsPerCore() / 1e6,
              1.0, 0.01);
  EXPECT_NEAR(GetInterfaceSpec(InterfaceKind::kSpdk).MaxIopsPerCore() / 1e6, 2.9,
              0.1);
  EXPECT_NEAR(GetInterfaceSpec(InterfaceKind::kXlfdd).MaxIopsPerCore() / 1e6, 20,
              0.1);
}

TEST(InterfaceModel, ChargedDeviceBurnsCpuTime) {
  auto dev = MemoryDevice::Create(1 << 16);
  ASSERT_TRUE(dev.ok());
  ChargedDevice charged(dev->get(), {"slow-if", 50000, 0});  // 50 us per I/O
  util::AlignedBuffer buf(512);
  const uint64_t t0 = util::NowNs();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(charged.ReadSync(0, buf.data(), 512).ok());
  }
  EXPECT_GE(util::NowNs() - t0, 500000u);  // >= 10 * 50 us
  EXPECT_GE(charged.io_cpu_ns(), 500000u);
}

TEST(InterfaceModel, ChargedDeviceForwardsData) {
  auto dev = MemoryDevice::Create(1 << 16);
  ASSERT_TRUE(dev.ok());
  ChargedDevice charged(dev->get(), GetInterfaceSpec(InterfaceKind::kXlfdd));
  WritePattern(&charged, 512, 512, 9);
  util::AlignedBuffer buf(512);
  ASSERT_TRUE(charged.ReadSync(512, buf.data(), 512).ok());
  EXPECT_TRUE(CheckPattern(buf.data(), 512, 9));
}

TEST(FileDevice, RoundTripsThroughRealFile) {
  const std::string path = ::testing::TempDir() + "/e2_file_device_test.bin";
  FileDevice::Options opt;
  opt.capacity = 1 << 20;
  opt.io_threads = 2;
  auto dev = FileDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  WritePattern(dev->get(), 8192, 512, 77);
  util::AlignedBuffer buf(512);
  ASSERT_TRUE((*dev)->ReadSync(8192, buf.data(), 512).ok());
  EXPECT_TRUE(CheckPattern(buf.data(), 512, 77));
  std::remove(path.c_str());
}

TEST(FileDevice, ManyConcurrentReads) {
  const std::string path = ::testing::TempDir() + "/e2_file_device_many.bin";
  FileDevice::Options opt;
  opt.capacity = 1 << 20;
  opt.io_threads = 4;
  auto dev = FileDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  for (int i = 0; i < 32; ++i) WritePattern(dev->get(), i * 512, 512, 300 + i);

  std::vector<util::AlignedBuffer> bufs(32);
  for (int i = 0; i < 32; ++i) {
    bufs[i].Reset(512);
    IoRequest req{static_cast<uint64_t>(i) * 512, 512, bufs[i].data(),
                  static_cast<uint64_t>(i)};
    ASSERT_TRUE((*dev)->SubmitRead(req).ok());
  }
  int done = 0;
  IoCompletion comps[32];
  while (done < 32) {
    const size_t n = (*dev)->PollCompletions(comps, 32);
    for (size_t j = 0; j < n; ++j) {
      EXPECT_EQ(comps[j].code, StatusCode::kOk);
      EXPECT_TRUE(CheckPattern(bufs[comps[j].user_data].data(), 512,
                               300 + comps[j].user_data));
    }
    done += static_cast<int>(n);
  }
  std::remove(path.c_str());
}

// Property sweep: every device kind serves QD-128 random 512-byte reads at
// (at least half of) its calibrated rate, and data is intact.
class DeviceKindTest : public ::testing::TestWithParam<DeviceKind> {};

TEST_P(DeviceKindTest, SaturatedIopsNearCalibration) {
  DeviceModel model = GetDeviceModel(GetParam());
  if (GetParam() == DeviceKind::kHdd) GTEST_SKIP() << "HDD too slow for CI";
  model.capacity_bytes = 16 << 20;
  auto dev = SimulatedDevice::Create(model);
  ASSERT_TRUE(dev.ok());

  constexpr int kReads = 2000;
  constexpr int kDepth = 128;
  util::Rng rng(1);
  std::vector<util::AlignedBuffer> bufs(kDepth);
  for (auto& b : bufs) b.Reset(512);

  // The 2000-read window is ~2 ms at the fastest calibration: a single
  // scheduler preemption on a contended one-core CI host sinks any one
  // sample. Take the best of three — a genuinely mis-calibrated device
  // fails all of them.
  double iops = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    const uint64_t t0 = util::NowNs();
    int submitted = 0, done = 0;
    IoCompletion comps[64];
    std::vector<uint32_t> free_bufs(kDepth);
    std::iota(free_bufs.begin(), free_bufs.end(), 0);
    while (done < kReads) {
      while (submitted < kReads && !free_bufs.empty()) {
        const uint32_t b = free_bufs.back();
        const uint64_t sector = rng.NextU64Below(model.capacity_bytes / 512);
        IoRequest req{sector * 512, 512, bufs[b].data(), b};
        if (!(*dev)->SubmitRead(req).ok()) break;
        free_bufs.pop_back();
        ++submitted;
      }
      const size_t n = (*dev)->PollCompletions(comps, 64);
      for (size_t j = 0; j < n; ++j) {
        free_bufs.push_back(static_cast<uint32_t>(comps[j].user_data));
      }
      done += static_cast<int>(n);
    }
    const double secs = static_cast<double>(util::NowNs() - t0) / 1e9;
    iops = std::max(iops, kReads / secs);
  }
  // A single-core submit/poll loop itself tops out near ~1.5 MIOPS (the
  // very CPU bound the paper's Table 3 is about), so cap the expectation.
  EXPECT_GT(iops, std::min(model.ExpectedIops(kDepth) * 0.5, 1.2e6));
}

INSTANTIATE_TEST_SUITE_P(AllDevices, DeviceKindTest,
                         ::testing::Values(DeviceKind::kCssd, DeviceKind::kEssd,
                                           DeviceKind::kXlfdd, DeviceKind::kHdd),
                         [](const auto& info) {
                           switch (info.param) {
                             case DeviceKind::kCssd: return "cSSD";
                             case DeviceKind::kEssd: return "eSSD";
                             case DeviceKind::kXlfdd: return "XLFDD";
                             case DeviceKind::kHdd: return "HDD";
                           }
                           return "unknown";
                         });

}  // namespace
}  // namespace e2lshos::storage
