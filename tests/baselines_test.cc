// Tests for the small-index baselines: the R-tree substrate, SRS, and
// QALSH.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "baselines/qalsh.h"
#include "baselines/rtree.h"
#include "baselines/srs.h"
#include "data/generators.h"
#include "data/ground_truth.h"
#include "util/distance.h"
#include "util/rng.h"

namespace e2lshos::baselines {
namespace {

data::GeneratedData MakeData(uint64_t n = 5000, uint32_t dim = 32,
                             uint64_t seed = 1) {
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 20;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = seed;
  return data::Generate("bl", n, 40, spec);
}

// --------------------------------------------------------------------------
// R-tree.

TEST(RTree, RejectsBadInputs) {
  float p[4] = {0, 0, 0, 0};
  EXPECT_FALSE(RTree::Build(p, 0, 2).ok());
  EXPECT_FALSE(RTree::Build(p, 2, 0).ok());
  EXPECT_FALSE(RTree::Build(p, 2, 2, 1).ok());
}

TEST(RTree, IncrementalNnIsGloballySorted) {
  util::Rng rng(3);
  const uint32_t d = 8;
  const uint64_t n = 2000;
  std::vector<float> pts(n * d);
  for (auto& v : pts) v = static_cast<float>(rng.Gaussian());
  auto tree = RTree::Build(pts.data(), n, d);
  ASSERT_TRUE(tree.ok());

  std::vector<float> q(d);
  for (auto& v : q) v = static_cast<float>(rng.Gaussian());

  auto it = tree->Iterate(q.data());
  uint32_t id;
  float d2, prev = -1.f;
  uint64_t count = 0;
  std::vector<bool> seen(n, false);
  while (it.Next(&id, &d2)) {
    EXPECT_GE(d2, prev);
    EXPECT_FALSE(seen[id]);
    seen[id] = true;
    prev = d2;
    ++count;
  }
  EXPECT_EQ(count, n);  // enumerates every point exactly once
}

TEST(RTree, FirstResultIsExactNn) {
  util::Rng rng(4);
  const uint32_t d = 8;
  const uint64_t n = 3000;
  std::vector<float> pts(n * d);
  for (auto& v : pts) v = static_cast<float>(rng.Gaussian());
  auto tree = RTree::Build(pts.data(), n, d);
  ASSERT_TRUE(tree.ok());

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> q(d);
    for (auto& v : q) v = static_cast<float>(rng.Gaussian());
    // Brute force NN.
    uint32_t best = 0;
    float best_d2 = std::numeric_limits<float>::infinity();
    for (uint64_t i = 0; i < n; ++i) {
      const float d2 = util::SquaredL2(pts.data() + i * d, q.data(), d);
      if (d2 < best_d2) {
        best_d2 = d2;
        best = static_cast<uint32_t>(i);
      }
    }
    auto iter = tree->Iterate(q.data());
    uint32_t id;
    float d2;
    ASSERT_TRUE(iter.Next(&id, &d2));
    EXPECT_EQ(id, best);
    EXPECT_FLOAT_EQ(d2, best_d2);
  }
}

TEST(RTree, VisitsFewNodesForEarlyNeighbors) {
  util::Rng rng(5);
  const uint32_t d = 8;
  const uint64_t n = 20000;
  std::vector<float> pts(n * d);
  for (auto& v : pts) v = static_cast<float>(rng.Gaussian());
  auto tree = RTree::Build(pts.data(), n, d);
  ASSERT_TRUE(tree.ok());
  std::vector<float> q(d, 0.f);
  auto it = tree->Iterate(q.data());
  uint32_t id;
  float d2;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(it.Next(&id, &d2));
  // Far fewer node visits than a full scan of ~n/32 leaves would pop.
  EXPECT_LT(it.nodes_visited(), n / 16);
}

// --------------------------------------------------------------------------
// SRS.

TEST(Srs, RejectsBadConfig) {
  auto gen = MakeData(500);
  SrsConfig cfg;
  cfg.proj_dim = 0;
  EXPECT_FALSE(Srs::Build(gen.base, cfg).ok());
  cfg = SrsConfig{};
  cfg.c = 1.0;
  EXPECT_FALSE(Srs::Build(gen.base, cfg).ok());
}

TEST(Srs, FindsExactDuplicate) {
  auto gen = MakeData();
  auto srs = Srs::Build(gen.base, {});
  ASSERT_TRUE(srs.ok());
  const auto res = (*srs)->Search(gen.base.Row(77), 1);
  ASSERT_FALSE(res.empty());
  EXPECT_EQ(res[0].id, 77u);
  EXPECT_EQ(res[0].dist, 0.f);
}

TEST(Srs, AccuracyReasonable) {
  auto gen = MakeData(8000);
  SrsConfig cfg;
  cfg.max_verify = 800;  // 10% of n
  auto srs = Srs::Build(gen.base, cfg);
  ASSERT_TRUE(srs.ok());
  const auto gt = data::GroundTruth::Compute(gen.base, gen.queries, 1, 1);
  const auto batch = (*srs)->SearchBatch(gen.queries, 1);
  const double ratio = data::MeanOverallRatio(gt, batch.results, 1);
  EXPECT_LT(ratio, 1.3);
}

TEST(Srs, MoreVerificationImprovesAccuracy) {
  auto gen = MakeData(8000);
  SrsConfig coarse, fine;
  coarse.max_verify = 40;
  fine.max_verify = 2000;
  auto s_coarse = Srs::Build(gen.base, coarse);
  auto s_fine = Srs::Build(gen.base, fine);
  ASSERT_TRUE(s_coarse.ok());
  ASSERT_TRUE(s_fine.ok());
  const auto gt = data::GroundTruth::Compute(gen.base, gen.queries, 10, 1);
  const double r_coarse = data::MeanOverallRatio(
      gt, (*s_coarse)->SearchBatch(gen.queries, 10).results, 10);
  const double r_fine = data::MeanOverallRatio(
      gt, (*s_fine)->SearchBatch(gen.queries, 10).results, 10);
  EXPECT_LE(r_fine, r_coarse);
}

TEST(Srs, VerificationBudgetRespected) {
  auto gen = MakeData();
  SrsConfig cfg;
  cfg.max_verify = 123;
  auto srs = Srs::Build(gen.base, cfg);
  ASSERT_TRUE(srs.ok());
  for (uint64_t q = 0; q < 10; ++q) {
    SrsStats st;
    (*srs)->Search(gen.queries.Row(q), 1, &st);
    EXPECT_LE(st.points_verified, 123u);
  }
}

TEST(Srs, EarlyTerminationTriggersOnEasyQueries) {
  // A query identical to a database point has d_1 = 0 ... use a near-dup
  // query: early termination should fire well before max_verify.
  auto gen = MakeData(8000);
  SrsConfig cfg;
  cfg.max_verify = 8000;
  auto srs = Srs::Build(gen.base, cfg);
  ASSERT_TRUE(srs.ok());
  uint64_t early = 0;
  for (uint64_t q = 0; q < 20; ++q) {
    SrsStats st;
    (*srs)->Search(gen.queries.Row(q), 1, &st);
    early += st.early_terminated;
  }
  EXPECT_GT(early, 0u);
}

TEST(Srs, TinyIndexComparedToData) {
  auto gen = MakeData(10000, 128);
  auto srs = Srs::Build(gen.base, {});
  ASSERT_TRUE(srs.ok());
  // The SRS pitch: index is a small fraction of the raw data size.
  EXPECT_LT((*srs)->IndexMemoryBytes(), gen.base.SizeBytes() / 2);
}

// --------------------------------------------------------------------------
// QALSH.

TEST(Qalsh, RejectsBadConfig) {
  auto gen = MakeData(500);
  QalshConfig cfg;
  cfg.c = 0.5;
  EXPECT_FALSE(Qalsh::Build(gen.base, cfg).ok());
  cfg = QalshConfig{};
  cfg.w = 0.0;
  EXPECT_FALSE(Qalsh::Build(gen.base, cfg).ok());
}

TEST(Qalsh, DerivedParametersSane) {
  auto gen = MakeData(5000);
  auto q = Qalsh::Build(gen.base, {});
  ASSERT_TRUE(q.ok());
  EXPECT_GE((*q)->num_hashes(), 8u);
  EXPECT_LE((*q)->num_hashes(), 512u);
  EXPECT_GE((*q)->collision_threshold(), 1u);
  EXPECT_LE((*q)->collision_threshold(), (*q)->num_hashes());
}

TEST(Qalsh, FindsExactDuplicate) {
  auto gen = MakeData();
  auto q = Qalsh::Build(gen.base, {});
  ASSERT_TRUE(q.ok());
  const auto res = (*q)->Search(gen.base.Row(42), 1);
  ASSERT_FALSE(res.empty());
  EXPECT_EQ(res[0].id, 42u);
  EXPECT_EQ(res[0].dist, 0.f);
}

TEST(Qalsh, AccuracyReasonable) {
  auto gen = MakeData(8000);
  auto q = Qalsh::Build(gen.base, {});
  ASSERT_TRUE(q.ok());
  const auto gt = data::GroundTruth::Compute(gen.base, gen.queries, 1, 1);
  const auto batch = (*q)->SearchBatch(gen.queries, 1);
  const double ratio = data::MeanOverallRatio(gt, batch.results, 1);
  EXPECT_LT(ratio, 1.3);
}

TEST(Qalsh, SmallerCImprovesAccuracy) {
  auto gen = MakeData(6000);
  QalshConfig loose, tight;
  loose.c = 3.0;
  tight.c = 1.5;
  auto q_loose = Qalsh::Build(gen.base, loose);
  auto q_tight = Qalsh::Build(gen.base, tight);
  ASSERT_TRUE(q_loose.ok());
  ASSERT_TRUE(q_tight.ok());
  const auto gt = data::GroundTruth::Compute(gen.base, gen.queries, 10, 1);
  const double r_loose = data::MeanOverallRatio(
      gt, (*q_loose)->SearchBatch(gen.queries, 10).results, 10);
  const double r_tight = data::MeanOverallRatio(
      gt, (*q_tight)->SearchBatch(gen.queries, 10).results, 10);
  EXPECT_LE(r_tight, r_loose + 0.02);
}

TEST(Qalsh, StatsPopulated) {
  auto gen = MakeData();
  auto q = Qalsh::Build(gen.base, {});
  ASSERT_TRUE(q.ok());
  QalshStats st;
  (*q)->Search(gen.queries.Row(0), 1, &st);
  EXPECT_GE(st.virtual_radii, 1u);
  EXPECT_GT(st.window_entries_scanned, 0u);
}

TEST(Qalsh, RepeatedQueriesConsistent) {
  // The epoch-based count reset must make back-to-back searches agree.
  auto gen = MakeData();
  auto q = Qalsh::Build(gen.base, {});
  ASSERT_TRUE(q.ok());
  const auto a = (*q)->Search(gen.queries.Row(5), 5);
  const auto b = (*q)->Search(gen.queries.Row(5), 5);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].id, b[i].id);
}

}  // namespace
}  // namespace e2lshos::baselines
