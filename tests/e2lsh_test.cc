// Tests for the in-memory E2LSH baseline: recall on planted neighbors,
// ladder behavior, the S cap, accuracy against ground truth, and the
// instrumentation driving the paper's Sec. 4 analysis.
#include <gtest/gtest.h>

#include <cmath>

#include "data/generators.h"
#include "data/ground_truth.h"
#include "e2lsh/in_memory.h"
#include "lsh/params.h"

namespace e2lshos::e2lsh {
namespace {

struct Fixture {
  data::GeneratedData gen;
  lsh::E2lshParams params;
  std::unique_ptr<InMemoryE2lsh> index;
};

Fixture MakeFixture(uint64_t n = 5000, uint32_t dim = 32, double rho = 0.25,
                    double s_factor = 4.0, uint64_t seed = 1) {
  Fixture f;
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 20;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = seed;
  f.gen = data::Generate("fixture", n, 50, spec);

  lsh::E2lshConfig cfg;
  cfg.rho = rho;
  cfg.s_factor = s_factor;
  cfg.x_max = f.gen.base.XMax();
  auto params = lsh::ComputeParams(n, dim, cfg);
  EXPECT_TRUE(params.ok());
  f.params = *params;
  auto idx = InMemoryE2lsh::Build(f.gen.base, f.params);
  EXPECT_TRUE(idx.ok());
  f.index = std::move(idx.value());
  return f;
}

TEST(InMemoryE2lsh, RejectsEmptyDataset) {
  data::Dataset empty("e", 4);
  lsh::E2lshConfig cfg;
  auto params = lsh::ComputeParams(100, 4, cfg);
  ASSERT_TRUE(params.ok());
  EXPECT_FALSE(InMemoryE2lsh::Build(empty, *params).ok());
}

TEST(InMemoryE2lsh, FindsExactDuplicate) {
  // A query identical to a database point must return it at distance 0:
  // identical points collide under every hash at every radius.
  auto f = MakeFixture();
  for (uint64_t i = 0; i < 10; ++i) {
    const auto res = f.index->Search(f.gen.base.Row(i * 37), 1);
    ASSERT_FALSE(res.empty());
    EXPECT_EQ(res[0].dist, 0.f);
    EXPECT_EQ(res[0].id, static_cast<uint32_t>(i * 37));
  }
}

TEST(InMemoryE2lsh, AccuracyWellWithinGuarantee) {
  // The ladder guarantees c^2-approximation; empirically E2LSH lands far
  // closer. Require mean overall ratio < 1.5 (paper targets 1.05).
  auto f = MakeFixture(8000);
  const auto gt = data::GroundTruth::Compute(f.gen.base, f.gen.queries, 1, 1);
  const auto batch = f.index->SearchBatch(f.gen.queries, 1);
  const double ratio = data::MeanOverallRatio(gt, batch.results, 1);
  EXPECT_GE(ratio, 1.0);
  EXPECT_LT(ratio, 1.5);
}

TEST(InMemoryE2lsh, TopKReturnsSortedDistinct) {
  auto f = MakeFixture();
  for (uint64_t q = 0; q < 10; ++q) {
    const auto res = f.index->Search(f.gen.queries.Row(q), 10);
    for (size_t i = 1; i < res.size(); ++i) {
      EXPECT_GE(res[i].dist, res[i - 1].dist);
      EXPECT_NE(res[i].id, res[i - 1].id);
    }
  }
}

TEST(InMemoryE2lsh, StatsAreConsistent) {
  auto f = MakeFixture();
  SearchStats stats;
  f.index->Search(f.gen.queries.Row(0), 1, &stats);
  EXPECT_GE(stats.radii_searched, 1u);
  EXPECT_LE(stats.radii_searched, f.params.num_radii());
  EXPECT_GE(stats.entries_scanned, stats.candidates);
  EXPECT_EQ(stats.IoCountInfiniteBlock(), 2 * stats.buckets_probed);
}

TEST(InMemoryE2lsh, CandidateCapRespectedPerRadius) {
  // With a tiny S, candidates per query cannot exceed S * radii searched.
  auto f = MakeFixture(5000, 32, 0.25, /*s_factor=*/0.5);
  for (uint64_t q = 0; q < 20; ++q) {
    SearchStats stats;
    f.index->Search(f.gen.queries.Row(q), 1, &stats);
    EXPECT_LE(stats.candidates,
              f.params.S * static_cast<uint64_t>(stats.radii_searched));
  }
}

TEST(InMemoryE2lsh, LargerGammaReducesCandidates) {
  // Scaling m up makes compound hashes more selective: fewer candidates
  // per bucket (the paper's accuracy knob, Sec. 3.3).
  auto lo = MakeFixture(5000, 32, 0.25, 4.0, 3);
  data::GeneratorSpec spec;  // same data, higher gamma
  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = 4.0;
  cfg.gamma = 1.6;
  cfg.x_max = lo.gen.base.XMax();
  auto params_hi = lsh::ComputeParams(5000, 32, cfg);
  ASSERT_TRUE(params_hi.ok());
  auto hi = InMemoryE2lsh::Build(lo.gen.base, *params_hi);
  ASSERT_TRUE(hi.ok());

  // A more selective compound hash (larger m) thins the buckets at every
  // fixed rung of the radius ladder: the query's total bucket occupancy
  // at a mid/deep radius must shrink.
  const uint32_t r_fixed = lo.params.num_radii() - 2;
  uint64_t occ_lo = 0, occ_hi = 0;
  for (uint64_t q = 0; q < 30; ++q) {
    const float* query = lo.gen.queries.Row(q);
    for (uint32_t l = 0; l < lo.params.L; ++l) {
      occ_lo += lo.index->BucketSize(r_fixed, l,
                                     lo.index->family().Get(r_fixed, l).Hash32(query));
      occ_hi += (*hi)->BucketSize(r_fixed, l,
                                  (*hi)->family().Get(r_fixed, l).Hash32(query));
    }
  }
  EXPECT_LT(occ_hi, occ_lo);
}

TEST(InMemoryE2lsh, BucketReadSizesSumToEntriesScanned) {
  auto f = MakeFixture();
  SearchStats stats;
  std::vector<uint32_t> sizes;
  f.index->Search(f.gen.queries.Row(1), 1, &stats, &sizes);
  EXPECT_EQ(sizes.size(), stats.buckets_probed);
  uint64_t sum = 0;
  for (const uint32_t s : sizes) sum += s;
  EXPECT_EQ(sum, stats.entries_scanned);
}

TEST(InMemoryE2lsh, IndexMemoryGrowsWithL) {
  auto small = MakeFixture(4000, 16, 0.15);
  auto large = MakeFixture(4000, 16, 0.35);
  EXPECT_GT(large.index->IndexMemoryBytes(), small.index->IndexMemoryBytes());
}

TEST(InMemoryE2lsh, BatchMatchesIndividualSearches) {
  auto f = MakeFixture();
  const auto batch = f.index->SearchBatch(f.gen.queries, 3);
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    const auto single = f.index->Search(f.gen.queries.Row(q), 3);
    ASSERT_EQ(batch.results[q].size(), single.size());
    for (size_t i = 0; i < single.size(); ++i) {
      EXPECT_EQ(batch.results[q][i].id, single[i].id);
    }
  }
}

TEST(InMemoryE2lsh, SublinearCandidateGrowth) {
  // Candidates checked grow sublinearly in n (the core E2LSH property):
  // quadrupling n should far less than quadruple the mean candidates.
  auto small = MakeFixture(3000, 24, 0.25, 4.0, 11);
  auto large = MakeFixture(12000, 24, 0.25, 4.0, 11);
  auto count = [](Fixture& f) {
    const auto batch = f.index->SearchBatch(f.gen.queries, 1);
    uint64_t total = 0;
    for (const auto& s : batch.stats) total += s.candidates;
    return static_cast<double>(total) / static_cast<double>(batch.stats.size());
  };
  const double c_small = count(small);
  const double c_large = count(large);
  EXPECT_LT(c_large, c_small * 4.0);
}

// Property sweep over k: results are exact-duplicates-first and stats sane.
class TopKSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TopKSweep, ReturnsAtMostKSorted) {
  static Fixture f = MakeFixture(6000);
  const uint32_t k = GetParam();
  const auto res = f.index->Search(f.gen.queries.Row(2), k);
  EXPECT_LE(res.size(), static_cast<size_t>(k));
  for (size_t i = 1; i < res.size(); ++i) EXPECT_GE(res[i].dist, res[i - 1].dist);
}

INSTANTIATE_TEST_SUITE_P(Ks, TopKSweep, ::testing::Values(1, 5, 10, 50, 100));

}  // namespace
}  // namespace e2lshos::e2lsh
