#include "data/registry.h"

#include <cmath>

namespace e2lshos::data {

namespace {

// All generators target a mean NN distance near kTargetNn so that the
// radius ladder R = 1, c, c^2, ... is exercised on its middle rungs, as
// in the paper (Table 4 reports average searched radii between 1.7 and
// 11.6 across datasets).
constexpr double kTargetNn = 3.0;

// Clustered generator tuned for a given dimension and RC target.
GeneratorSpec Clustered(uint32_t dim, double rc_target, uint32_t clusters,
                        bool byte_quantize, uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorKind::kClustered;
  g.dim = dim;
  g.num_clusters = clusters;
  // Intra-cluster NN distance ~ sigma * sqrt(2d) ~= kTargetNn.
  g.cluster_std = kTargetNn / std::sqrt(2.0 * dim);
  // Center distance ~ spread * sqrt(d/6); want mean distance ~ RC * NN.
  g.center_spread = rc_target * kTargetNn * std::sqrt(6.0 / dim);
  g.byte_quantize = byte_quantize;
  g.seed = seed;
  return g;
}

GeneratorSpec Uniform(uint32_t dim, uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorKind::kUniform;
  g.dim = dim;
  // Mean pairwise distance = scale * sqrt(d/6).
  g.scale = 1.42 * kTargetNn / std::sqrt(dim / 6.0);
  g.seed = seed;
  return g;
}

GeneratorSpec Gaussian(uint32_t dim, uint64_t seed) {
  GeneratorSpec g;
  g.kind = GeneratorKind::kGaussian;
  g.dim = dim;
  // Pairwise distance concentrates at sigma * sqrt(2d).
  g.scale = 1.14 * kTargetNn / std::sqrt(2.0 * dim);
  g.seed = seed;
  return g;
}

// rho chosen so that L = n^rho reproduces the paper's Table 4 L at the
// paper's n; gamma/s_factor tuned for the 1.0-1.2 overall-ratio band.
lsh::E2lshConfig Lsh(double rho, double gamma, double s_factor) {
  lsh::E2lshConfig cfg;
  cfg.c = 2.0;
  cfg.w = 4.0;
  cfg.rho = rho;
  cfg.gamma = gamma;
  cfg.s_factor = s_factor;
  return cfg;
}

}  // namespace

std::vector<DatasetSpec> PaperDatasets() {
  std::vector<DatasetSpec> all;

  {
    DatasetSpec s;
    s.name = "MSONG";
    s.default_n = 20000;
    s.gen = Clustered(420, 4.04, 64, false, 101);
    s.lsh = Lsh(0.201, 1.0, 4.0);
    s.paper_n_thousands = 983;
    s.paper_rc = 4.04;
    s.paper_lid = 23.8;
    s.paper_L = 16;
    s.paper_type = "Audio";
    all.push_back(s);
  }
  {
    DatasetSpec s;
    s.name = "SIFT";
    s.default_n = 50000;
    s.gen = Clustered(128, 3.20, 64, true, 102);
    s.lsh = Lsh(0.233, 1.0, 4.0);
    s.paper_n_thousands = 1000;
    s.paper_rc = 3.20;
    s.paper_lid = 21.7;
    s.paper_L = 25;
    s.paper_type = "Image";
    all.push_back(s);
  }
  {
    DatasetSpec s;
    s.name = "GIST";
    s.default_n = 15000;
    s.gen = Clustered(960, 2.14, 32, false, 103);
    s.lsh = Lsh(0.251, 1.0, 4.0);
    s.paper_n_thousands = 1000;
    s.paper_rc = 2.14;
    s.paper_lid = 47.3;
    s.paper_L = 32;
    s.paper_type = "Image";
    all.push_back(s);
  }
  {
    DatasetSpec s;
    s.name = "RAND";
    s.default_n = 50000;
    s.gen = Uniform(100, 104);
    s.lsh = Lsh(0.280, 1.0, 4.0);
    s.paper_n_thousands = 1000;
    s.paper_rc = 1.42;
    s.paper_lid = 49.6;
    s.paper_L = 48;
    s.paper_type = "Synthetic";
    all.push_back(s);
  }
  {
    DatasetSpec s;
    s.name = "GLOVE";
    s.default_n = 50000;
    s.gen = Clustered(100, 2.20, 48, false, 105);
    s.lsh = Lsh(0.281, 1.0, 4.0);
    s.paper_n_thousands = 1183;
    s.paper_rc = 2.20;
    s.paper_lid = 22.1;
    s.paper_L = 51;
    s.paper_type = "Text";
    all.push_back(s);
  }
  {
    DatasetSpec s;
    s.name = "GAUSS";
    s.default_n = 20000;
    s.gen = Gaussian(512, 106);
    s.lsh = Lsh(0.203, 1.0, 4.0);
    s.paper_n_thousands = 2000;
    s.paper_rc = 1.14;
    s.paper_lid = 147.1;
    s.paper_L = 19;
    s.paper_type = "Synthetic";
    all.push_back(s);
  }
  {
    DatasetSpec s;
    s.name = "MNIST";
    s.default_n = 15000;
    s.gen = Clustered(784, 3.00, 64, true, 107);
    s.lsh = Lsh(0.182, 1.0, 4.0);
    s.paper_n_thousands = 8000;
    s.paper_rc = 3.00;
    s.paper_lid = 20.4;
    s.paper_L = 18;
    s.paper_type = "Image";
    all.push_back(s);
  }
  {
    DatasetSpec s;
    s.name = "BIGANN";
    s.default_n = 100000;
    s.gen = Clustered(128, 3.55, 128, true, 108);
    s.lsh = Lsh(0.187, 1.0, 4.0);
    s.paper_n_thousands = 1000000;
    s.paper_rc = 3.55;
    s.paper_lid = 25.4;
    s.paper_L = 48;
    s.paper_type = "Image";
    all.push_back(s);
  }
  return all;
}

Result<DatasetSpec> GetDatasetSpec(const std::string& name) {
  for (auto& s : PaperDatasets()) {
    if (s.name == name) return s;
  }
  return Status::NotFound("unknown dataset: " + name);
}

GeneratedData MakeDataset(const DatasetSpec& spec, uint64_t n_override,
                          uint64_t num_queries_override) {
  const uint64_t n = n_override > 0 ? n_override : spec.default_n;
  const uint64_t nq =
      num_queries_override > 0 ? num_queries_override : spec.default_queries;
  return Generate(spec.name, n, nq, spec.gen);
}

}  // namespace e2lshos::data
