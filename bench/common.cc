#include "common.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "model/cost_model.h"
#include "util/aligned_buffer.h"
#include "util/clock.h"
#include "util/rng.h"

namespace e2lshos::bench {

Args Args::Parse(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::string {
      return i + 1 < argc ? std::string(argv[++i]) : std::string();
    };
    if (a == "--dataset") {
      args.dataset = next();
    } else if (a == "--n") {
      args.n = std::stoull(next());
    } else if (a == "--queries") {
      args.queries = std::stoull(next());
    } else if (a == "--shards") {
      args.shards = static_cast<uint32_t>(std::stoul(next()));
    } else if (a == "--json") {
      args.json = next();
    } else if (a == "--device") {
      args.device = next();
    } else if (a == "--deadline-us") {
      args.deadline_us = std::stoull(next());
    } else if (a == "--fast") {
      args.fast = true;
    } else if (a == "--help") {
      std::printf(
          "flags: --dataset NAME  --n N  --queries Q  --shards S (multi-core "
          "mode)  --json PATH (JSONL rows)  --device URI (real-SSD mode, "
          "e.g. file: | uring:?direct=1&sqpoll=1 | file:/ssd/img?threads=8; "
          "path defaults per bench)  --deadline-us D (load shedding, serving "
          "benches)  --fast (quarter scale)\n");
      std::exit(0);
    }
  }
  return args;
}

uint64_t Args::EffectiveN(const data::DatasetSpec& spec) const {
  if (n > 0) return n;
  return fast ? std::max<uint64_t>(2000, spec.default_n / 4) : spec.default_n;
}

std::unique_ptr<util::JsonlWriter> Args::OpenJson() const {
  if (json.empty()) return nullptr;
  auto writer = util::JsonlWriter::Open(json);
  if (!writer.ok()) {
    std::fprintf(stderr, "warning: %s\n", writer.status().ToString().c_str());
    return nullptr;
  }
  return std::move(writer).value();
}

std::string Args::EffectiveDevicePath(const std::string& bench_name) const {
  auto uri = storage::ParseDeviceUri(device);
  if (uri.ok() && !uri->path.empty()) return uri->path;
  return "/tmp/e2lshos_" + bench_name + ".img";
}

Result<Workload> MakeWorkload(const data::DatasetSpec& spec, uint64_t n_override,
                              uint64_t nq_override, uint32_t gt_k) {
  Workload w;
  w.spec = spec;
  w.gen = data::MakeDataset(spec, n_override, nq_override);
  w.gt = data::GroundTruth::Compute(w.gen.base, w.gen.queries, gt_k);
  lsh::E2lshConfig cfg = spec.lsh;
  cfg.x_max = w.gen.base.XMax();
  E2_ASSIGN_OR_RETURN(w.params,
                      lsh::ComputeParams(w.gen.base.n(), w.gen.base.dim(), cfg));
  return w;
}

std::vector<double> DefaultSFactors() { return {0.5, 1, 2, 4, 8, 16, 32}; }
std::vector<double> DefaultSrsFractions() {
  return {0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2};
}
std::vector<double> DefaultQalshCs() { return {3.0, 2.5, 2.0, 1.7, 1.5}; }

std::vector<SweepPoint> SweepInMemory(e2lsh::InMemoryE2lsh* index,
                                      const Workload& w, uint32_t k,
                                      const std::vector<double>& s_factors) {
  std::vector<SweepPoint> out;
  for (const double f : s_factors) {
    index->SetCandidateCapFactor(f);
    const auto batch = index->SearchBatch(w.gen.queries, k);
    SweepPoint p;
    p.knob = f;
    p.ratio = data::MeanOverallRatio(w.gt, batch.results, k);
    p.query_ns = static_cast<double>(batch.wall_ns) /
                 static_cast<double>(w.gen.queries.n());
    p.qps = batch.QueriesPerSecond();
    p.mean_ios = batch.MeanIosInfiniteBlock();
    p.mean_radii = batch.MeanRadii();
    p.compute_ns = p.query_ns;  // in-memory: all time is compute
    out.push_back(p);
  }
  return out;
}

std::vector<SweepPoint> SweepOs(core::StorageIndex* index, const Workload& w,
                                uint32_t k, const core::EngineOptions& opts,
                                const std::vector<double>& s_factors,
                                storage::ChargedDevice* charged) {
  std::vector<SweepPoint> out;
  for (const double f : s_factors) {
    index->SetCandidateCapFactor(f);
    core::QueryEngine engine(index, &w.gen.base, opts);
    if (charged != nullptr) charged->ResetStats();
    auto batch = engine.SearchBatch(w.gen.queries, k);
    if (!batch.ok()) continue;
    SweepPoint p;
    p.knob = f;
    p.ratio = data::MeanOverallRatio(w.gt, batch->results, k);
    p.query_ns = static_cast<double>(batch->wall_ns) /
                 static_cast<double>(w.gen.queries.n());
    p.qps = batch->QueriesPerSecond();
    p.mean_ios = batch->MeanIos();
    p.mean_radii = batch->MeanRadii();
    p.compute_ns = static_cast<double>(batch->compute_ns) /
                   static_cast<double>(w.gen.queries.n());
    if (charged != nullptr) {
      p.io_cpu_ns = static_cast<double>(charged->io_cpu_ns()) /
                    static_cast<double>(w.gen.queries.n());
    }
    out.push_back(p);
  }
  return out;
}

std::vector<SweepPoint> SweepSrs(const Workload& w, uint32_t k,
                                 const std::vector<double>& fractions) {
  std::vector<SweepPoint> out;
  for (const double f : fractions) {
    baselines::SrsConfig cfg;
    cfg.max_verify =
        std::max<uint64_t>(k, static_cast<uint64_t>(f * static_cast<double>(w.n())));
    auto srs = baselines::Srs::Build(w.gen.base, cfg);
    if (!srs.ok()) continue;
    const auto batch = (*srs)->SearchBatch(w.gen.queries, k);
    SweepPoint p;
    p.knob = f;
    p.ratio = data::MeanOverallRatio(w.gt, batch.results, k);
    p.query_ns = static_cast<double>(batch.wall_ns) /
                 static_cast<double>(w.gen.queries.n());
    p.qps = batch.QueriesPerSecond();
    out.push_back(p);
  }
  return out;
}

std::vector<SweepPoint> SweepQalsh(const Workload& w, uint32_t k,
                                   const std::vector<double>& cs) {
  std::vector<SweepPoint> out;
  for (const double c : cs) {
    baselines::QalshConfig cfg;
    cfg.c = c;
    auto qalsh = baselines::Qalsh::Build(w.gen.base, cfg);
    if (!qalsh.ok()) continue;
    const auto batch = (*qalsh)->SearchBatch(w.gen.queries, k);
    SweepPoint p;
    p.knob = c;
    p.ratio = data::MeanOverallRatio(w.gt, batch.results, k);
    p.query_ns = static_cast<double>(batch.wall_ns) /
                 static_cast<double>(w.gen.queries.n());
    p.qps = batch.QueriesPerSecond();
    out.push_back(p);
  }
  return out;
}

double IoProfilePoint::IoInf() const {
  return model::IoCountInfiniteBlock(buckets_probed, num_queries);
}

double IoProfilePoint::IoAt(uint32_t objects_per_io) const {
  return model::IoCountForBlockSize(bucket_read_sizes, objects_per_io, num_queries);
}

std::vector<IoProfilePoint> ProfileInMemoryIo(e2lsh::InMemoryE2lsh* index,
                                              const Workload& w, uint32_t k,
                                              const std::vector<double>& s_factors) {
  std::vector<IoProfilePoint> out;
  for (const double f : s_factors) {
    index->SetCandidateCapFactor(f);
    IoProfilePoint p;
    p.s_factor = f;
    p.num_queries = w.gen.queries.n();
    std::vector<std::vector<util::Neighbor>> results(p.num_queries);
    const uint64_t t0 = util::NowNs();
    for (uint64_t q = 0; q < p.num_queries; ++q) {
      e2lsh::SearchStats stats;
      results[q] =
          index->Search(w.gen.queries.Row(q), k, &stats, &p.bucket_read_sizes);
      p.buckets_probed += stats.buckets_probed;
    }
    p.e2lsh_query_ns = static_cast<double>(util::NowNs() - t0) /
                       static_cast<double>(p.num_queries);
    p.ratio = data::MeanOverallRatio(w.gt, results, k);
    out.push_back(std::move(p));
  }
  return out;
}

double FieldAtRatio(const std::vector<SweepPoint>& sweep, double target,
                    double SweepPoint::*field) {
  if (sweep.empty()) return 0.0;
  // Sort by ratio ascending (most accurate first).
  std::vector<SweepPoint> pts = sweep;
  std::sort(pts.begin(), pts.end(),
            [](const SweepPoint& a, const SweepPoint& b) { return a.ratio < b.ratio; });
  if (target <= pts.front().ratio) return pts.front().*field;
  if (target >= pts.back().ratio) return pts.back().*field;
  for (size_t i = 1; i < pts.size(); ++i) {
    if (pts[i].ratio >= target) {
      const double t =
          (target - pts[i - 1].ratio) / (pts[i].ratio - pts[i - 1].ratio + 1e-30);
      return pts[i - 1].*field + t * (pts[i].*field - pts[i - 1].*field);
    }
  }
  return pts.back().*field;
}

double QueryNsAtRatio(const std::vector<SweepPoint>& sweep, double target) {
  return FieldAtRatio(sweep, target, &SweepPoint::query_ns);
}

Result<StorageStack> MakeStack(storage::DeviceKind kind, uint32_t count,
                               storage::InterfaceKind iface,
                               uint32_t queue_capacity) {
  StorageStack stack;
  storage::DeviceModel model = storage::GetDeviceModel(kind);
  model.queue_capacity = queue_capacity;
  if (count == 1) {
    E2_ASSIGN_OR_RETURN(auto dev, storage::SimulatedDevice::Create(model));
    stack.raw = std::move(dev);
  } else {
    std::vector<std::unique_ptr<storage::BlockDevice>> children;
    for (uint32_t i = 0; i < count; ++i) {
      E2_ASSIGN_OR_RETURN(auto dev, storage::SimulatedDevice::Create(model));
      children.push_back(std::move(dev));
    }
    E2_ASSIGN_OR_RETURN(auto striped,
                        storage::StripedDevice::Create(std::move(children)));
    stack.raw = std::move(striped);
  }
  const storage::InterfaceSpec spec = storage::GetInterfaceSpec(iface);
  stack.charged = std::make_unique<storage::ChargedDevice>(stack.raw.get(), spec);
  stack.name = model.name + " x " + std::to_string(count) + " / " + spec.name;
  return stack;
}

std::function<std::unique_ptr<storage::BlockDevice>(
    std::unique_ptr<storage::BlockDevice>)>
ChargeWrapper(storage::InterfaceKind iface) {
  const storage::InterfaceSpec spec = storage::GetInterfaceSpec(iface);
  return [spec](std::unique_ptr<storage::BlockDevice> queue)
             -> std::unique_ptr<storage::BlockDevice> {
    return std::make_unique<storage::ChargedDevice>(std::move(queue), spec);
  };
}

Status FillDeviceWithNoise(storage::BlockDevice* dev, uint64_t bytes) {
  util::Rng rng(7);
  util::AlignedBuffer chunk(1 << 20, 4096);
  for (size_t i = 0; i < chunk.size(); i += 4) {
    const uint32_t v = rng.NextU32();
    std::memcpy(chunk.data() + i, &v, 4);
  }
  for (uint64_t off = 0; off < bytes; off += chunk.size()) {
    const uint32_t len =
        static_cast<uint32_t>(std::min<uint64_t>(chunk.size(), bytes - off));
    E2_RETURN_NOT_OK(dev->Write(off, chunk.data(), len));
  }
  return Status::OK();
}

Result<std::unique_ptr<storage::BlockDevice>> MakeRealDevice(
    const Args& args, const std::string& path, uint64_t bytes,
    uint32_t queue_capacity, bool fill_noise) {
  E2_ASSIGN_OR_RETURN(storage::DeviceUri uri,
                      storage::ParseDeviceUri(args.device));
  if (uri.scheme != storage::DeviceUri::Scheme::kFile &&
      uri.scheme != storage::DeviceUri::Scheme::kUring) {
    return Status::InvalidArgument(
        "--device needs a file: or uring: URI for real-device mode, got '" +
        args.device + "'");
  }
  if (uri.path.empty()) uri.path = path;
  storage::DeviceUriOpenOptions opt;
  opt.create = true;
  opt.capacity = (bytes + (1 << 20) - 1) >> 20 << 20;  // whole MiBs
  opt.default_queue_capacity = queue_capacity;
  E2_ASSIGN_OR_RETURN(auto dev, storage::OpenDeviceUri(uri, opt));
  if (fill_noise) {
    // Random reads must hit real extents, not holes.
    const uint64_t fill_bytes = uri.capacity != 0 ? uri.capacity : opt.capacity;
    E2_RETURN_NOT_OK(FillDeviceWithNoise(dev.get(), fill_bytes));
  }
  return dev;
}

Result<MeasuredIops> MeasureRandomReadIops(storage::BlockDevice* dev,
                                           const IopsBenchOptions& options) {
  const uint32_t block = options.block_bytes;
  const uint32_t depth = std::max<uint32_t>(1, options.queue_depth);
  if (block == 0 || block % dev->io_alignment() != 0) {
    return Status::InvalidArgument("block size incompatible with device");
  }
  uint64_t span = options.span_bytes == 0
                      ? dev->capacity()
                      : std::min(options.span_bytes, dev->capacity());
  span = span / block * block;
  if (span < block) return Status::InvalidArgument("device too small");
  const uint64_t blocks = span / block;

  util::AlignedBuffer internal;
  uint8_t* arena = options.arena;
  if (arena == nullptr) {
    internal.Reset(static_cast<size_t>(depth) * block, 4096);
    arena = internal.data();
  } else if (options.arena_bytes < static_cast<size_t>(depth) * block) {
    return Status::InvalidArgument("arena smaller than queue_depth * block");
  }

  util::Rng rng(options.seed);
  dev->ResetStats();
  auto submit_one = [&](uint32_t slot) -> Status {
    storage::IoRequest req;
    req.offset = rng.NextU64Below(blocks) * block;
    req.length = block;
    req.buf = arena + static_cast<size_t>(slot) * block;
    req.user_data = slot;
    return dev->SubmitRead(req);
  };

  std::vector<uint32_t> free_slots;
  free_slots.reserve(depth);
  for (uint32_t i = depth; i > 0; --i) free_slots.push_back(i - 1);

  MeasuredIops out;
  out.block_bytes = block;
  out.queue_depth = depth;
  const uint64_t t0 = util::NowNs();
  const uint64_t t_end = t0 + options.duration_ms * 1000000ull;
  uint32_t inflight = 0;
  uint64_t completed = 0;
  storage::IoCompletion comps[64];

  // On any mid-sweep failure the sweep must still drain: reads in
  // flight target the (possibly function-local) arena, and returning
  // while the device can still write into it is a use-after-free.
  Status sweep_status = Status::OK();
  auto top_up = [&]() {
    while (sweep_status.ok() && !free_slots.empty()) {
      const Status st = submit_one(free_slots.back());
      if (st.ok()) {
        free_slots.pop_back();
        ++inflight;
        continue;
      }
      // Queue shallower than the requested depth: run at what it gives.
      if (st.code() != StatusCode::kResourceExhausted) sweep_status = st;
      return;
    }
  };
  top_up();

  while (sweep_status.ok() && util::NowNs() < t_end) {
    const size_t n = dev->PollCompletions(comps, 64);
    for (size_t i = 0; i < n; ++i) {
      if (comps[i].code != StatusCode::kOk) {
        sweep_status = Status::IoError("read failed during IOPS sweep");
      }
      free_slots.push_back(static_cast<uint32_t>(comps[i].user_data));
    }
    completed += n;
    inflight -= static_cast<uint32_t>(n);
    top_up();
  }
  while (inflight > 0) {
    const size_t n = dev->PollCompletions(comps, 64);
    for (size_t i = 0; i < n; ++i) {
      if (comps[i].code != StatusCode::kOk && sweep_status.ok()) {
        sweep_status = Status::IoError("read failed during IOPS sweep");
      }
    }
    completed += n;
    inflight -= static_cast<uint32_t>(n);
  }
  E2_RETURN_NOT_OK(sweep_status);
  const uint64_t elapsed = util::NowNs() - t0;
  out.reads = completed;
  if (elapsed > 0) {
    const double per_sec =
        static_cast<double>(completed) * 1e9 / static_cast<double>(elapsed);
    out.kiops = per_sec / 1e3;
    out.mbps = per_sec * block / (1 << 20);
  }
  const storage::DeviceStats stats = dev->stats();
  out.mean_lat_us = stats.read_latency.mean() / 1e3;
  out.p99_lat_us = static_cast<double>(stats.read_latency.Quantile(0.99)) / 1e3;
  return out;
}

Status CopyIndexImage(storage::BlockDevice* src, storage::BlockDevice* dst,
                      uint64_t bytes) {
  constexpr uint32_t kChunk = 1 << 20;
  // Aligned staging and alignment-rounded tail so a direct-I/O
  // destination (a real --device file under O_DIRECT) accepts the copy.
  util::AlignedBuffer buf(kChunk, 4096);
  const uint32_t align = std::max<uint32_t>(1, dst->io_alignment());
  uint64_t off = 0;
  while (off < bytes) {
    const uint32_t len =
        static_cast<uint32_t>(std::min<uint64_t>(kChunk, bytes - off));
    const uint32_t padded = (len + align - 1) / align * align;
    if (padded > len) std::memset(buf.data() + len, 0, padded - len);
    E2_RETURN_NOT_OK(src->ReadSync(off, buf.data(), len));
    E2_RETURN_NOT_OK(dst->Write(off, buf.data(), padded));
    off += len;
  }
  return Status::OK();
}

void PrintHeader(const std::string& title, const std::vector<std::string>& cols) {
  std::printf("\n== %s ==\n", title.c_str());
  for (size_t i = 0; i < cols.size(); ++i) {
    std::printf("%s%s", i ? " | " : "", cols[i].c_str());
  }
  std::printf("\n");
  for (size_t i = 0; i < cols.size(); ++i) {
    std::printf("%s%s", i ? "-|-" : "", std::string(cols[i].size(), '-').c_str());
  }
  std::printf("\n");
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::printf("%s%s", i ? " | " : "", cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string FmtBytes(uint64_t bytes) {
  char buf[64];
  if (bytes >= (1ULL << 30)) {
    std::snprintf(buf, sizeof(buf), "%.2f GB", static_cast<double>(bytes) / (1 << 30));
  } else if (bytes >= (1ULL << 20)) {
    std::snprintf(buf, sizeof(buf), "%.1f MB", static_cast<double>(bytes) / (1 << 20));
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f KB", static_cast<double>(bytes) / (1 << 10));
  }
  return buf;
}

}  // namespace e2lshos::bench
