// Monotonic nanosecond clock and calibrated busy-spin.
//
// The storage interface models (Table 3 of the paper) charge a fixed CPU
// cost per I/O submission; we reproduce that cost by spinning the
// submitting core for the modeled duration.
#pragma once

#include <chrono>
#include <cstdint>

namespace e2lshos::util {

/// \brief Monotonic wall-clock time in nanoseconds.
inline uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// \brief Busy-wait for approximately `ns` nanoseconds on the calling core.
///
/// Used to model per-request CPU overhead of storage interfaces
/// (io_uring ~1 us, SPDK ~350 ns, XLFDD ~50 ns). A zero duration returns
/// immediately with no clock read.
inline void BusySpinNs(uint64_t ns) {
  if (ns == 0) return;
  const uint64_t start = NowNs();
  while (NowNs() - start < ns) {
    // Relax the core a little while spinning.
#if defined(__x86_64__)
    __builtin_ia32_pause();
#endif
  }
}

/// \brief Simple scope timer accumulating elapsed nanoseconds into a sink.
class ScopedTimerNs {
 public:
  explicit ScopedTimerNs(uint64_t* sink) : sink_(sink), start_(NowNs()) {}
  ~ScopedTimerNs() { *sink_ += NowNs() - start_; }
  ScopedTimerNs(const ScopedTimerNs&) = delete;
  ScopedTimerNs& operator=(const ScopedTimerNs&) = delete;

 private:
  uint64_t* sink_;
  uint64_t start_;
};

}  // namespace e2lshos::util
