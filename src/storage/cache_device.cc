#include "storage/cache_device.h"

#include <algorithm>
#include <atomic>
#include <cstring>
#include <deque>
#include <unordered_map>
#include <vector>

#include "util/aligned_buffer.h"

namespace e2lshos::storage {

namespace {

/// SplitMix64 finalizer: block ids are sequential, so shard selection
/// needs a real mix or neighboring blocks would pile into one shard.
inline uint64_t MixBlockId(uint64_t z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// Store: the sharded-CLOCK block cache.
// ---------------------------------------------------------------------------

class CacheDevice::Store {
 public:
  Store(uint32_t block_bytes, uint64_t total_slots, uint32_t shards)
      : block_bytes_(block_bytes),
        shards_(std::min<uint64_t>(std::max(1u, shards), total_slots)) {
    const uint64_t per_shard = total_slots / shards_.size();
    for (auto& shard : shards_) {
      shard.ids.assign(per_shard, kFreeSlot);
      shard.ref.assign(per_shard, 0);
      shard.data.Reset(per_shard * block_bytes_, block_bytes_);
      shard.map.reserve(per_shard);
    }
  }

  uint32_t block_bytes() const { return block_bytes_; }
  uint64_t slots() const {
    return shards_.size() * shards_.front().ids.size();
  }
  uint64_t write_epoch() const {
    return write_epoch_.load(std::memory_order_acquire);
  }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }
  void ResetEvictions() { evictions_.store(0, std::memory_order_relaxed); }
  uint64_t bytes_cached() const {
    return resident_.load(std::memory_order_relaxed) *
           static_cast<uint64_t>(block_bytes_);
  }

  /// Copy [offset, offset+length) into `out` if every covered block is
  /// resident; on the first absent block returns false (bytes already
  /// copied are harmless — the miss path overwrites the whole extent).
  bool ReadIfCached(uint64_t offset, uint32_t length, void* out) {
    const uint64_t first = offset / block_bytes_;
    const uint64_t last = (offset + length - 1) / block_bytes_;
    for (uint64_t b = first; b <= last; ++b) {
      const uint64_t block_start = b * block_bytes_;
      const uint64_t lo = std::max(offset, block_start);
      const uint64_t hi = std::min<uint64_t>(offset + length,
                                             block_start + block_bytes_);
      Shard& shard = ShardOf(b);
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.map.find(b);
      if (it == shard.map.end()) return false;
      shard.ref[it->second] = 1;
      std::memcpy(static_cast<uint8_t*>(out) + (lo - offset),
                  shard.data.data() + it->second * block_bytes_ +
                      (lo - block_start),
                  hi - lo);
    }
    return true;
  }

  /// Insert the whole blocks of a completed fill. `epoch` is the write
  /// epoch sampled at submit: if any write landed since, the staged data
  /// may predate it, so the fill is dropped (the resident copy — patched
  /// by the write — is the source of truth; absent blocks simply miss
  /// again and re-read fresh bytes).
  void InsertBlocks(uint64_t offset, uint32_t length, const uint8_t* data,
                    uint64_t epoch) {
    const uint64_t first = offset / block_bytes_;
    const uint64_t count = length / block_bytes_;
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t b = first + i;
      Shard& shard = ShardOf(b);
      std::lock_guard<std::mutex> lock(shard.mu);
      if (write_epoch_.load(std::memory_order_acquire) != epoch) return;
      if (shard.map.count(b) != 0) continue;
      uint32_t slot;
      if (shard.used < shard.ids.size()) {
        slot = shard.used++;
        resident_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // CLOCK: sweep until a slot with a clear reference bit.
        while (shard.ref[shard.hand] != 0) {
          shard.ref[shard.hand] = 0;
          shard.hand = (shard.hand + 1) % shard.ids.size();
        }
        slot = shard.hand;
        shard.hand = (shard.hand + 1) % shard.ids.size();
        shard.map.erase(shard.ids[slot]);
        evictions_.fetch_add(1, std::memory_order_relaxed);
      }
      shard.ids[slot] = b;
      shard.ref[slot] = 1;
      std::memcpy(shard.data.data() + slot * block_bytes_,
                  data + i * block_bytes_, block_bytes_);
      shard.map.emplace(b, slot);
    }
  }

  /// Write-through coherence: bump the epoch (killing in-flight fills
  /// that may carry pre-write bytes), then patch resident blocks.
  void ApplyWrite(uint64_t offset, const uint8_t* data, uint32_t length) {
    write_epoch_.fetch_add(1, std::memory_order_acq_rel);
    const uint64_t first = offset / block_bytes_;
    const uint64_t last = (offset + length - 1) / block_bytes_;
    for (uint64_t b = first; b <= last; ++b) {
      const uint64_t block_start = b * block_bytes_;
      const uint64_t lo = std::max(offset, block_start);
      const uint64_t hi = std::min<uint64_t>(offset + length,
                                             block_start + block_bytes_);
      Shard& shard = ShardOf(b);
      std::lock_guard<std::mutex> lock(shard.mu);
      const auto it = shard.map.find(b);
      if (it == shard.map.end()) continue;
      std::memcpy(shard.data.data() + it->second * block_bytes_ +
                      (lo - block_start),
                  data + (lo - offset), hi - lo);
    }
  }

 private:
  static constexpr uint64_t kFreeSlot = UINT64_MAX;

  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, uint32_t> map;  ///< block id -> slot.
    std::vector<uint64_t> ids;                   ///< slot -> block id.
    std::vector<uint8_t> ref;                    ///< CLOCK reference bits.
    util::AlignedBuffer data;                    ///< slots * block_bytes.
    uint32_t hand = 0;
    uint32_t used = 0;
  };

  Shard& ShardOf(uint64_t block_id) {
    return shards_[MixBlockId(block_id) % shards_.size()];
  }

  const uint32_t block_bytes_;
  std::deque<Shard> shards_;  ///< deque: Shard is immovable (mutex).
  std::atomic<uint64_t> write_epoch_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> resident_{0};
};

// ---------------------------------------------------------------------------
// Lane: the hit/miss submit-poll path over one inner endpoint. The
// device-level path runs one lane over the inner device; every native
// queue runs its own lane over a private inner queue, so lanes never
// share a lock — only the store's per-shard locks are common ground.
// ---------------------------------------------------------------------------

class CacheDevice::Lane {
 public:
  Lane(Store* store, BlockDevice* endpoint, uint64_t device_capacity,
       uint32_t io_alignment, uint32_t inbox_capacity,
       uint32_t max_cached_read_blocks)
      : store_(store),
        endpoint_(endpoint),
        capacity_(device_capacity),
        align_(io_alignment),
        inbox_capacity_(std::max(1u, inbox_capacity)),
        max_cached_bytes_(static_cast<uint64_t>(max_cached_read_blocks) *
                          store->block_bytes()) {}

  Status SubmitRead(const IoRequest& req) {
    if (req.buf == nullptr || req.length == 0) {
      return Status::InvalidArgument("null buffer or zero length");
    }
    if (!RangeInCapacity(req.offset, req.length, capacity_)) {
      return Status::OutOfRange("read beyond device capacity");
    }
    // Enforce the inner device's alignment contract on the hit path too:
    // a cached copy must not make a request succeed that the bare device
    // would reject.
    if (align_ > 1 &&
        (req.offset % align_ != 0 || req.length % align_ != 0)) {
      return Status::InvalidArgument(
          "read not aligned to the device's io_alignment");
    }
    const uint32_t bb = store_->block_bytes();
    std::lock_guard<std::mutex> lock(mu_);
    if (inbox_.size() + in_flight_ >= inbox_capacity_) {
      return Status::ResourceExhausted("cache queue full");
    }
    const uint64_t widened_off = req.offset / bb * bb;
    const uint64_t widened_end = (req.offset + req.length + bb - 1) / bb * bb;
    // Cacheable = small enough and the widened extent stays on-device
    // (a clamped tail could break the inner alignment contract).
    const bool cacheable = widened_end - widened_off <= max_cached_bytes_ &&
                           widened_end <= capacity_;
    if (cacheable && store_->ReadIfCached(req.offset, req.length, req.buf)) {
      IoCompletion comp;
      comp.user_data = req.user_data;
      comp.code = StatusCode::kOk;
      comp.latency_ns = 0;
      inbox_.push_back(comp);
      ++stats_.reads_submitted;
      ++stats_.reads_completed;
      stats_.bytes_read += req.length;
      ++stats_.cache_hits;
      stats_.read_latency.Add(0);
      return Status::OK();
    }
    const size_t si = AcquireSlot();
    Slot& slot = *slots_[si];
    slot.orig = req;
    slot.epoch = store_->write_epoch();
    slot.bypass = !cacheable;
    IoRequest inner;
    inner.user_data = si;
    if (cacheable) {
      slot.widened_off = widened_off;
      slot.widened_len = static_cast<uint32_t>(widened_end - widened_off);
      if (slot.stage.size() < slot.widened_len) {
        slot.stage.Reset(slot.widened_len, std::max(bb, kSectorBytes));
      }
      inner.offset = widened_off;
      inner.length = slot.widened_len;
      inner.buf = slot.stage.data();
    } else {
      inner.offset = req.offset;
      inner.length = req.length;
      inner.buf = req.buf;
    }
    const Status submitted = endpoint_->SubmitRead(inner);
    if (!submitted.ok()) {
      ReleaseSlot(si);
      return submitted;  // e.g. ResourceExhausted: caller polls and retries
    }
    ++in_flight_;
    ++stats_.reads_submitted;
    ++stats_.cache_misses;
    return Status::OK();
  }

  size_t Poll(IoCompletion* out, size_t max) {
    std::lock_guard<std::mutex> lock(mu_);
    size_t n = 0;
    while (n < max && !inbox_.empty()) {
      out[n++] = inbox_.front();
      inbox_.pop_front();
    }
    if (n >= max || in_flight_ == 0) return n;
    IoCompletion raw[kPollBatch];
    const size_t got =
        endpoint_->PollCompletions(raw, std::min(max - n, kPollBatch));
    for (size_t i = 0; i < got; ++i) {
      const size_t si = static_cast<size_t>(raw[i].user_data);
      Slot& slot = *slots_[si];
      IoCompletion comp = raw[i];
      comp.user_data = slot.orig.user_data;
      if (comp.code == StatusCode::kOk && !slot.bypass) {
        std::memcpy(slot.orig.buf,
                    slot.stage.data() + (slot.orig.offset - slot.widened_off),
                    slot.orig.length);
        store_->InsertBlocks(slot.widened_off, slot.widened_len,
                             slot.stage.data(), slot.epoch);
      }
      ++stats_.reads_completed;
      stats_.bytes_read += slot.orig.length;
      stats_.read_latency.Add(comp.latency_ns);
      ReleaseSlot(si);
      --in_flight_;
      out[n++] = comp;
    }
    return n;
  }

  void AddWriteBytes(uint64_t bytes) {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.bytes_written += bytes;
  }

  uint32_t outstanding() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<uint32_t>(inbox_.size() + in_flight_);
  }

  DeviceStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  void ResetStats() {
    std::lock_guard<std::mutex> lock(mu_);
    stats_ = DeviceStats{};
  }

 private:
  static constexpr size_t kPollBatch = 64;

  struct Slot {
    util::AlignedBuffer stage;
    IoRequest orig;
    uint64_t widened_off = 0;
    uint32_t widened_len = 0;
    uint64_t epoch = 0;
    bool bypass = false;
  };

  size_t AcquireSlot() {
    if (!free_slots_.empty()) {
      const size_t si = free_slots_.back();
      free_slots_.pop_back();
      return si;
    }
    slots_.push_back(std::make_unique<Slot>());
    return slots_.size() - 1;
  }
  void ReleaseSlot(size_t si) { free_slots_.push_back(si); }

  Store* store_;
  BlockDevice* endpoint_;
  const uint64_t capacity_;
  const uint32_t align_;
  const uint32_t inbox_capacity_;
  const uint64_t max_cached_bytes_;

  mutable std::mutex mu_;
  std::deque<IoCompletion> inbox_;  ///< Hit completions awaiting Poll.
  std::vector<std::unique_ptr<Slot>> slots_;
  std::vector<size_t> free_slots_;
  uint32_t in_flight_ = 0;  ///< Miss reads outstanding on the endpoint.
  DeviceStats stats_;
};

// ---------------------------------------------------------------------------
// Queue: one native cache queue = a private lane over one inner queue.
// ---------------------------------------------------------------------------

class CacheDevice::Queue : public BlockDevice {
 public:
  Queue(CacheDevice* parent, std::unique_ptr<BlockDevice> endpoint,
        uint32_t id, uint32_t inbox_capacity)
      : parent_(parent),
        endpoint_(std::move(endpoint)),
        lane_(parent->store_.get(), endpoint_.get(), parent->capacity(),
              parent->io_alignment(), inbox_capacity,
              parent->options_.max_cached_read_blocks),
        id_(id) {
    parent_->queue_registry_.Add(this);
  }
  ~Queue() override { parent_->queue_registry_.Remove(this); }

  Status SubmitRead(const IoRequest& req) override {
    return lane_.SubmitRead(req);
  }
  size_t PollCompletions(IoCompletion* out, size_t max) override {
    return lane_.Poll(out, max);
  }
  Status Write(uint64_t offset, const void* data, uint32_t length) override {
    return parent_->Write(offset, data, length);
  }
  uint64_t capacity() const override { return parent_->capacity(); }
  uint32_t io_alignment() const override { return parent_->io_alignment(); }
  uint32_t outstanding() const override { return lane_.outstanding(); }
  std::string name() const override {
    return parent_->name() + " nq" + std::to_string(id_);
  }
  DeviceStats stats() const override { return lane_.stats(); }
  void ResetStats() override { lane_.ResetStats(); }

 private:
  CacheDevice* parent_;
  std::unique_ptr<BlockDevice> endpoint_;
  Lane lane_;
  uint32_t id_;
};

// ---------------------------------------------------------------------------
// CacheDevice.
// ---------------------------------------------------------------------------

CacheDevice::CacheDevice(std::unique_ptr<BlockDevice> owned,
                         BlockDevice* inner, const Options& options)
    : owned_(std::move(owned)), inner_(inner), options_(options) {
  const uint32_t bb = std::max(inner_->io_alignment(), kSectorBytes);
  store_ = std::make_unique<Store>(bb, options_.capacity_bytes / bb,
                                   options_.shards);
  lane_ = std::make_unique<Lane>(store_.get(), inner_, inner_->capacity(),
                                 inner_->io_alignment(),
                                 std::max(1u, options_.queue_capacity),
                                 options_.max_cached_read_blocks);
}

CacheDevice::~CacheDevice() = default;

Result<std::unique_ptr<CacheDevice>> CacheDevice::Create(
    std::unique_ptr<BlockDevice> inner, const Options& options) {
  if (inner == nullptr) return Status::InvalidArgument("null inner device");
  BlockDevice* raw = inner.get();
  const uint32_t bb = std::max(raw->io_alignment(), kSectorBytes);
  if (options.capacity_bytes < bb) {
    return Status::InvalidArgument(
        "cache capacity " + std::to_string(options.capacity_bytes) +
        " smaller than one cache block (" + std::to_string(bb) + " bytes)");
  }
  if (options.max_cached_read_blocks == 0) {
    return Status::InvalidArgument("max_cached_read_blocks must be >= 1");
  }
  return std::unique_ptr<CacheDevice>(
      new CacheDevice(std::move(inner), raw, options));
}

Result<std::unique_ptr<CacheDevice>> CacheDevice::Wrap(
    BlockDevice* inner, const Options& options) {
  if (inner == nullptr) return Status::InvalidArgument("null inner device");
  const uint32_t bb = std::max(inner->io_alignment(), kSectorBytes);
  if (options.capacity_bytes < bb) {
    return Status::InvalidArgument(
        "cache capacity " + std::to_string(options.capacity_bytes) +
        " smaller than one cache block (" + std::to_string(bb) + " bytes)");
  }
  if (options.max_cached_read_blocks == 0) {
    return Status::InvalidArgument("max_cached_read_blocks must be >= 1");
  }
  return std::unique_ptr<CacheDevice>(
      new CacheDevice(nullptr, inner, options));
}

Status CacheDevice::SubmitRead(const IoRequest& req) {
  return lane_->SubmitRead(req);
}

size_t CacheDevice::PollCompletions(IoCompletion* out, size_t max) {
  return lane_->Poll(out, max);
}

Status CacheDevice::Write(uint64_t offset, const void* data, uint32_t length) {
  E2_RETURN_NOT_OK(inner_->Write(offset, data, length));
  store_->ApplyWrite(offset, static_cast<const uint8_t*>(data), length);
  lane_->AddWriteBytes(length);
  return Status::OK();
}

uint32_t CacheDevice::outstanding() const {
  return lane_->outstanding() + queue_registry_.SumOutstanding();
}

std::string CacheDevice::name() const {
  return "cache(" + std::to_string(options_.capacity_bytes) + "B)+" +
         inner_->name();
}

uint32_t CacheDevice::cache_block_bytes() const {
  return store_->block_bytes();
}

DeviceStats CacheDevice::stats() const {
  DeviceStats out = lane_->stats();
  queue_registry_.MergeStats(&out);
  out.cache_evictions += store_->evictions();
  out.bytes_cached += store_->bytes_cached();
  // The lane counts cache-level reads (hits never reach the device); the
  // inner device's busy time is still the real hardware occupancy.
  out.busy_ns += inner_->stats().busy_ns;
  return out;
}

void CacheDevice::ResetStats() {
  lane_->ResetStats();
  queue_registry_.ResetAll();
  store_->ResetEvictions();
  inner_->ResetStats();
}

uint32_t CacheDevice::max_queues() const {
  MultiQueueDevice* mq =
      const_cast<CacheDevice*>(this)->inner_->multi_queue();
  return mq != nullptr ? mq->max_queues() : 0;
}

Result<std::unique_ptr<BlockDevice>> CacheDevice::CreateQueue(
    const QueueOptions& options) {
  MultiQueueDevice* mq = inner_->multi_queue();
  if (mq == nullptr) {
    return Status::FailedPrecondition(
        "inner device has no native queues; use AcquireQueues (router)");
  }
  E2_ASSIGN_OR_RETURN(auto endpoint, mq->CreateQueue(options));
  const uint32_t id = static_cast<uint32_t>(queue_registry_.size());
  return std::unique_ptr<BlockDevice>(
      std::make_unique<Queue>(this, std::move(endpoint), id,
                              std::max(1u, options.queue_capacity)));
}

}  // namespace e2lshos::storage
