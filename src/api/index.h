// The public facade of E2LSHoS: one object that builds, persists,
// reopens, queries, and serves an on-storage LSH index.
//
// The lower layers (core::IndexBuilder, core::QueryEngine,
// core::ShardedQueryEngine, core::StreamingServer, the storage devices)
// stay public for benches and tests, but every entry point — the CLI,
// the examples, a downstream embedder — goes through e2lshos::Index:
//
//   e2lshos::IndexSpec spec;
//   spec.lsh.rho = 0.25;
//   spec.device_uri = "sim:cssd";               // or "file:/data/img.bin"
//   auto index = e2lshos::Index::Build(spec, std::move(base));
//   (*index)->Save("/data/idx.meta");
//   auto results = (*index)->SearchBatch(queries, /*k=*/10);
//
//   auto reopened = e2lshos::Index::Open(
//       "/data/idx.meta", e2lshos::OpenSpec{"file:/data/img.bin?direct=1"},
//       std::move(base2));
//
// The facade owns the device, the base dataset, the StorageIndex, and
// the query engine, in that destruction-safe order — the lifetime
// footgun of the layered API (index and dataset must outlive the
// engine, device must outlive the index) cannot be reassembled through
// this door. Devices are selected by URI (storage::ParseDeviceUri):
// mem:, sim:cssd|essd|xlfdd|hdd[*N][?iface=...], file:PATH?direct=1&
// threads=N, uring:PATH?direct=1&sqpoll=1. Sharded serving takes one
// NATIVE device queue per shard when the backend supports it; the
// `queues=N` key caps that (0 = always the QueueRouter shim) and
// `fixed=1` (uring:) registers engine arenas for READ_FIXED I/O.
// `cache=SIZE` (any scheme) layers a transparent DRAM read cache over
// the device so hot buckets serve at memory speed (storage/cache_device.h).
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>

#include "core/builder.h"
#include "core/live_updater.h"
#include "core/query_engine.h"
#include "core/query_stream.h"
#include "core/sharded_engine.h"
#include "core/storage_index.h"
#include "core/streaming_server.h"
#include "data/dataset.h"
#include "storage/device_registry.h"

namespace e2lshos {

/// \brief Everything Index::Build needs beyond the dataset.
struct IndexSpec {
  /// E2LSH tuning knobs (rho, c, w, gamma, s_factor, seed).
  lsh::E2lshConfig lsh;
  /// On-storage layout (block size, table index bits).
  core::BuildOptions layout;
  /// Where the index lives: a storage device URI (see
  /// storage::ParseDeviceUri). Defaults to DRAM.
  std::string device_uri = "mem:";
  /// Device size when the URI does not carry `capacity=`. 0 = 32 GiB
  /// (sparse/demand-paged on every backend, so unused capacity is free).
  uint64_t device_capacity = 0;
  /// Fill `lsh.x_max` from the dataset (its largest absolute
  /// coordinate, defining the radius ladder) instead of trusting the
  /// config value. Leave on unless you know your x_max.
  bool auto_x_max = true;
};

/// \brief How Index::Open materializes the device serving the image.
struct OpenSpec {
  /// Device URI. For file:/uring: the backing file must hold the image
  /// the index was built into; for mem:/sim: the image is restored from
  /// the `<path>.image` sidecar written by Save().
  std::string device_uri;
};

/// \brief Query-engine shape; Index picks the plain single-engine path
/// or the sharded multi-core path from `shards`.
struct SearchSpec {
  uint32_t shards = 1;              ///< Engine shards; 0 = one per hw thread.
  uint32_t contexts_per_shard = 32; ///< Interleaved query contexts per shard.
  uint32_t inflight_per_shard = 256;  ///< Outstanding-I/O budget per shard.
  bool synchronous = false;         ///< Fig. 1(A) mode: one blocking I/O.
};

/// \brief Streaming-serving configuration for Index::Serve.
struct ServeSpec {
  uint32_t k = 10;                ///< Neighbors returned per query.
  uint32_t max_batch_size = 64;   ///< Micro-batch dispatch threshold.
  uint64_t max_wait_us = 200;     ///< Micro-batch age-out.
  uint64_t deadline_us = 0;       ///< Load shedding; 0 = off.
  /// Per-query completion callback (worker threads; must be
  /// thread-safe). Optional — poll Server::stats() for a stats-only run,
  /// or wire a core::FutureSink for pollable handles.
  std::function<void(core::QueryResult&&)> on_result;
  SearchSpec search;              ///< Engine shape behind the server.
  size_t queue_capacity = 1024;   ///< Submission-queue bound (backpressure).
};

class Index;

/// \brief A live serving session: a bounded submission queue feeding a
/// core::StreamingServer over the owning Index's engine.
///
/// Obtained from Index::Serve. Destroy the Server before its Index;
/// while a Server exists its Index rejects Search/SearchBatch/Configure
/// (FailedPrecondition) — the shard engines are single-owner. Destroying
/// the Server stops serving and joins the workers. Destroying the Index
/// first is a misuse but a safe one: serving is stopped there and the
/// orphaned Server goes inert (Submit fails on the closed queue).
class Server {
 public:
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Enqueue one query of Index::dim() floats; blocks while the queue is
  /// full (backpressure). Returns the id echoed in its QueryResult. `k`
  /// overrides ServeSpec::k for this query (0 = that default).
  Result<uint64_t> Submit(const float* query, uint32_t k = 0);
  /// Non-blocking variant; ResourceExhausted when full.
  Result<uint64_t> TrySubmit(const float* query, uint32_t k = 0);

  /// Close the queue: queued queries drain, further submissions fail.
  void Close();
  /// Block until all pulled queries are delivered (pair with Close) or
  /// Stop() takes effect.
  void Wait();
  /// Early shutdown: the queue closes (producers blocked in Submit wake
  /// with an error), in-flight queries are delivered exactly once,
  /// queries still queued are never pulled.
  void Stop();

  bool running() const { return server_->running(); }
  /// Merged serving metrics (latency percentiles, QPS, shed count).
  core::StreamingSnapshot stats() const { return server_->stats(); }
  /// Queries admitted but not yet pulled by a shard worker — the
  /// backpressure gauge a remote /stats endpoint reports.
  size_t queue_depth() const { return queue_->depth(); }
  uint32_t dim() const { return queue_->dim(); }

 private:
  friend class Index;
  Server(Index* owner, std::unique_ptr<core::SubmissionQueue> queue,
         std::unique_ptr<core::StreamingServer> server);

  Index* owner_;
  std::unique_ptr<core::SubmissionQueue> queue_;
  std::unique_ptr<core::StreamingServer> server_;
};

/// \brief A built (or reopened) E2LSHoS index with single-call access to
/// every serving mode. See the file comment for the canonical flows.
class Index {
 public:
  /// Build an index over `dataset` on the device `spec.device_uri`
  /// names, taking ownership of the dataset (std::move it in, or pass a
  /// copy to keep the original). Building needs a buffered device —
  /// a `direct=1` URI is rejected here with the pointer to the
  /// build-buffered / serve-direct workflow.
  static Result<std::unique_ptr<Index>> Build(const IndexSpec& spec,
                                              data::Dataset dataset);

  /// Reopen an index persisted with Save(): metadata from `path`, image
  /// from the URI's backing file (file:/uring:) or the `<path>.image`
  /// sidecar (mem:/sim:). `dataset` must be the base set the index was
  /// built over (shape-checked; ownership taken).
  static Result<std::unique_ptr<Index>> Open(const std::string& path,
                                             const OpenSpec& spec,
                                             data::Dataset dataset);

  /// Persist the metadata to `path`; on a volatile (mem:/sim:) device
  /// also dumps the byte image to `<path>.image` so Open() can restore
  /// it. File-backed indexes persist their image in the backing file.
  /// Fails (FailedPrecondition) while a Server is live — the image dump
  /// polls the device the serving shards own.
  Status Save(const std::string& path) const;

  /// Top-k ANNS for a single query of dim() floats.
  Result<std::vector<util::Neighbor>> Search(const float* query, uint32_t k,
                                             core::QueryStats* stats = nullptr);

  /// Top-k ANNS for every query in `queries`, through the configured
  /// engine (sharded across cores when SearchSpec::shards > 1).
  Result<core::BatchResult> SearchBatch(const data::Dataset& queries,
                                        uint32_t k);

  /// Reshape the query engine (shard count, context/inflight budgets).
  /// Cheap when nothing changed; rebuilds the engine otherwise.
  Status Configure(const SearchSpec& spec);

  /// Live mutations — legal while a Server is serving (unlike the query
  /// entry points): staged through core::LiveUpdater and published as
  /// epochs that in-flight queries pick up at micro-batch boundaries.
  /// Thread-safe against each other and against serving.
  ///
  /// Insert one row of dim() floats; returns the assigned id (== n()
  /// before the call). The row becomes searchable exactly when the
  /// epoch publishes — a SearchBatch starting after Insert returns is
  /// guaranteed to see it.
  Result<uint32_t> Insert(const float* row);
  /// Insert `count` contiguous rows; ids are consecutive from the
  /// returned first id, and all become visible together (one epoch).
  Result<uint32_t> InsertBatch(const float* rows, uint32_t count);
  /// Tombstone an id (idempotent; unknown ids accepted as no-ops).
  Status Remove(uint32_t id);
  Status RemoveBatch(const uint32_t* ids, uint32_t count);
  /// Erase an id's tombstone; a no-op when none exists.
  Status Restore(uint32_t id);
  Status RestoreBatch(const uint32_t* ids, uint32_t count);

  /// Start continuous serving: returns a Server handle accepting
  /// Submit() from any thread. One Server at a time; the Index must
  /// outlive it.
  Result<std::unique_ptr<Server>> Serve(const ServeSpec& spec);

  ~Index();
  Index(const Index&) = delete;
  Index& operator=(const Index&) = delete;

  /// Effective object count: includes live inserts as soon as they are
  /// staged.
  uint64_t n() const;
  uint32_t dim() const { return index_->dim(); }
  /// Device counters plus the live-update counters (updates applied,
  /// epochs published, staged bytes, reader-visible lag) — what the
  /// Stats RPC reports. Prefer this over device()->stats().
  storage::DeviceStats device_stats() const;
  /// On-storage / DRAM footprint breakdown (the paper's Table 6 story).
  core::IndexSizes sizes() const { return index_->sizes(); }
  /// The derived E2LSH parameter set (m, L, S, radius ladder).
  const lsh::E2lshParams& params() const { return index_->params(); }
  /// Resolved engine shard count under the current SearchSpec.
  uint32_t num_shards() const;
  /// The base dataset the index answers from (owned by this Index).
  const data::Dataset& base() const { return base_; }
  /// The device URI this index runs on (canonical form).
  std::string device_uri() const { return uri_.ToString(); }

  /// Re-tune the per-radius candidate cap S = s * L without rebuilding
  /// (the paper's query-time accuracy knob). Drops the current engine;
  /// fails while serving.
  Status SetCandidateCapFactor(double s_factor);

  /// Escape hatches for benches/tests that need the layers underneath.
  /// The returned pointers stay owned by this Index.
  storage::BlockDevice* device() { return device_.get(); }
  const core::StorageIndex* storage_index() const { return index_.get(); }

 private:
  friend class Server;
  Index() = default;

  /// Lazily (re)build the engine for the current SearchSpec.
  Status EnsureEngine();
  Status FailIfServing(const char* op) const;
  /// Lazily create the live updater (first mutation).
  core::LiveUpdater* EnsureLiveUpdater();

  storage::DeviceUri uri_;
  data::Dataset base_;
  std::unique_ptr<storage::BlockDevice> device_;
  std::unique_ptr<core::StorageIndex> index_;
  SearchSpec search_;
  std::unique_ptr<core::ShardedQueryEngine> engine_;
  /// Set while a Server owns the engine; cleared by its destructor.
  Server* serving_ = nullptr;
  /// Guards live_'s creation; LiveUpdater serializes mutations itself.
  /// Declared last: the updater (and its private device queue) must be
  /// torn down before the index and the device it points into.
  mutable std::mutex live_mu_;
  std::unique_ptr<core::LiveUpdater> live_;
};

}  // namespace e2lshos
