// Command-line front end over the e2lshos::Index facade: build, persist,
// query, and serve E2LSHoS indexes on any storage backend a device URI
// can name.
//
//   e2lshos_cli gen    --dataset SIFT --out data.fvecs [--n N] [--queries Q]
//   e2lshos_cli build  --base data.fvecs --index idx.bin --device URI
//                      [--rho R] [--c C] [--w W] [--gamma G] [--s S]
//                      [--max-n N]
//   e2lshos_cli query  --base data.fvecs --index idx.bin --device URI
//                      --queries q.fvecs [--k K] [--shards S]
//                      [--probe-contexts P] [--max-n N]
//   e2lshos_cli serve  --base data.fvecs --index idx.bin --device URI
//                      [--queries q.fvecs] [--count N] [--rate QPS]
//                      [--k K] [--shards S] [--batch B] [--max-wait-us W]
//                      [--deadline-us D] [--probe-contexts P] [--max-n N]
//
// The device URI selects and configures the backend in one string —
// file:/path/img.bin, file:/path/img.bin?direct=1&threads=8,
// uring:/path/img.bin?sqpoll=1, sim:cssd*4, mem: — replacing the old
// --image/--device/--direct/--sqpoll flag zoo. Build writes the image
// through the URI's device and the metadata to --index; query/serve
// reopen both. mem:/sim: indexes persist their image in a
// `<index>.image` sidecar, so even simulated runs survive restarts.
//
// Unknown flags and malformed values are errors with a usage hint,
// never silently ignored.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "api/index.h"
#include "data/io.h"
#include "data/registry.h"
#include "util/clock.h"
#include "util/parse.h"
#include "util/rng.h"

using namespace e2lshos;

namespace {

using FlagMap = std::map<std::string, std::string>;

/// Strict flag parser: every token must be a known `--flag value` pair.
Result<FlagMap> ParseFlags(int argc, char** argv,
                           const std::set<std::string>& known) {
  auto usage_hint = [&known]() {
    std::string hint = " (known flags:";
    for (const auto& k : known) hint += " --" + k;
    hint += "; run without arguments for usage)";
    return hint;
  };
  FlagMap flags;
  for (int i = 2; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.size() < 3 || token.compare(0, 2, "--") != 0) {
      return Status::InvalidArgument("expected a --flag, got '" + token + "'" +
                                     usage_hint());
    }
    const std::string name = token.substr(2);
    if (known.count(name) == 0) {
      return Status::InvalidArgument("unknown flag '" + token + "'" +
                                     usage_hint());
    }
    if (i + 1 >= argc) {
      return Status::InvalidArgument("flag '" + token + "' needs a value" +
                                     usage_hint());
    }
    if (!flags.emplace(name, argv[++i]).second) {
      return Status::InvalidArgument("flag '" + token + "' given twice");
    }
  }
  return flags;
}

/// Whole-string numeric parses (util::ParseU64/ParseF64): signs,
/// whitespace, trailing garbage, and overflow are errors, not zeros —
/// `--n -1` must not become 2^64-1 points.
Result<uint64_t> GetU(const FlagMap& f, const std::string& k, uint64_t dflt) {
  auto it = f.find(k);
  if (it == f.end()) return dflt;
  auto v = util::ParseU64(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument("flag --" + k + " expects a non-negative "
                                   "integer, got '" + it->second + "'");
  }
  return v;
}

/// For flags consumed as uint32 (--k, --shards, --batch, ...): an
/// out-of-range value is an error, never a modular wrap (--k 2^32
/// must not silently become k=0).
Result<uint32_t> GetU32(const FlagMap& f, const std::string& k, uint32_t dflt) {
  E2_ASSIGN_OR_RETURN(const uint64_t v, GetU(f, k, dflt));
  if (v > UINT32_MAX) {
    return Status::InvalidArgument("flag --" + k + " value " +
                                   std::to_string(v) + " is out of range");
  }
  return static_cast<uint32_t>(v);
}

Result<double> GetD(const FlagMap& f, const std::string& k, double dflt) {
  auto it = f.find(k);
  if (it == f.end()) return dflt;
  auto v = util::ParseF64(it->second);
  if (!v.ok()) {
    return Status::InvalidArgument("flag --" + k + " expects a non-negative "
                                   "number, got '" + it->second + "'");
  }
  return v;
}

std::string GetS(const FlagMap& f, const std::string& k) {
  auto it = f.find(k);
  return it == f.end() ? std::string() : it->second;
}

int Fail(const Status& st) {
  std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
  return 1;
}

#define CLI_ASSIGN(lhs, expr)               \
  auto lhs##_res = (expr);                  \
  if (!lhs##_res.ok()) return Fail(lhs##_res.status()); \
  auto lhs = std::move(lhs##_res).value();

int CmdGen(int argc, char** argv) {
  CLI_ASSIGN(flags, ParseFlags(argc, argv, {"dataset", "out", "n", "queries"}));
  const std::string name = GetS(flags, "dataset");
  const std::string out = GetS(flags, "out");
  if (name.empty() || out.empty()) {
    return Fail(Status::InvalidArgument("gen requires --dataset and --out"));
  }
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return Fail(spec.status());
  CLI_ASSIGN(n, GetU(flags, "n", 0));
  CLI_ASSIGN(nq, GetU(flags, "queries", 100));
  auto gen = data::MakeDataset(*spec, n, nq);
  if (Status st = data::SaveFvecs(gen.base, out); !st.ok()) return Fail(st);
  if (Status st = data::SaveFvecs(gen.queries, out + ".queries"); !st.ok()) {
    return Fail(st);
  }
  std::printf("wrote %llu vectors to %s (+%llu queries to %s.queries)\n",
              static_cast<unsigned long long>(gen.base.n()), out.c_str(),
              static_cast<unsigned long long>(gen.queries.n()), out.c_str());
  return 0;
}

/// Shared build/query/serve preamble: the base set and the required
/// --index / --device flags.
struct Common {
  data::Dataset base;
  std::string index_path;
  std::string device_uri;
};

Result<Common> LoadCommon(const FlagMap& flags, const char* cmd) {
  Common c;
  const std::string base_path = GetS(flags, "base");
  c.index_path = GetS(flags, "index");
  c.device_uri = GetS(flags, "device");
  if (base_path.empty() || c.index_path.empty() || c.device_uri.empty()) {
    return Status::InvalidArgument(
        std::string(cmd) +
        " requires --base, --index, and --device URI (e.g. "
        "file:/tmp/img.bin, sim:cssd, mem:)");
  }
  E2_ASSIGN_OR_RETURN(const uint64_t max_n, GetU(flags, "max-n", 0));
  E2_ASSIGN_OR_RETURN(c.base, data::LoadVectorFile(base_path, max_n));
  return c;
}

/// The --shards / --probe-contexts engine shape shared by query/serve.
Result<SearchSpec> MakeSearchSpec(const FlagMap& flags) {
  SearchSpec spec;
  E2_ASSIGN_OR_RETURN(spec.shards, GetU32(flags, "shards", 1));
  E2_ASSIGN_OR_RETURN(const uint32_t contexts,
                      GetU32(flags, "probe-contexts", 32));
  spec.contexts_per_shard = std::max<uint32_t>(1, contexts);
  return spec;
}

int CmdBuild(int argc, char** argv) {
  CLI_ASSIGN(flags,
             ParseFlags(argc, argv, {"base", "index", "device", "rho", "c", "w",
                                     "gamma", "s", "max-n", "capacity"}));
  IndexSpec spec;
  CLI_ASSIGN(c, GetD(flags, "c", 2.0));
  CLI_ASSIGN(w, GetD(flags, "w", 4.0));
  CLI_ASSIGN(rho, GetD(flags, "rho", 0.25));
  CLI_ASSIGN(gamma, GetD(flags, "gamma", 1.0));
  CLI_ASSIGN(s, GetD(flags, "s", 4.0));
  CLI_ASSIGN(capacity, GetU(flags, "capacity", 0));
  CLI_ASSIGN(common, LoadCommon(flags, "build"));
  std::printf("loaded %llu x %u vectors\n",
              static_cast<unsigned long long>(common.base.n()),
              common.base.dim());
  spec.lsh.c = c;
  spec.lsh.w = w;
  spec.lsh.rho = rho;
  spec.lsh.gamma = gamma;
  spec.lsh.s_factor = s;
  spec.device_uri = common.device_uri;
  spec.device_capacity = capacity;

  const uint64_t t0 = util::NowNs();
  auto index = Index::Build(spec, std::move(common.base));
  if (!index.ok()) return Fail(index.status());
  std::printf("device: %s\nparams: m=%u L=%u radii=%u\n",
              (*index)->device()->name().c_str(), (*index)->params().m,
              (*index)->params().L, (*index)->params().num_radii());
  if (Status st = (*index)->Save(common.index_path); !st.ok()) return Fail(st);
  const auto sizes = (*index)->sizes();
  std::printf("built in %.1fs: %.1f MB on storage, %.1f MB DRAM metadata\n",
              static_cast<double>(util::NowNs() - t0) / 1e9,
              static_cast<double>(sizes.storage_bytes) / (1 << 20),
              static_cast<double>(sizes.dram_index_bytes) / (1 << 20));
  return 0;
}

int CmdQuery(int argc, char** argv) {
  CLI_ASSIGN(flags, ParseFlags(argc, argv,
                               {"base", "index", "device", "queries", "k",
                                "shards", "probe-contexts", "max-n"}));
  CLI_ASSIGN(k, GetU32(flags, "k", 10));
  CLI_ASSIGN(search, MakeSearchSpec(flags));
  CLI_ASSIGN(common, LoadCommon(flags, "query"));
  const std::string query_path = GetS(flags, "queries");
  if (query_path.empty()) {
    return Fail(Status::InvalidArgument("query requires --queries"));
  }
  auto queries = data::LoadVectorFile(query_path);
  if (!queries.ok()) return Fail(queries.status());

  auto index = Index::Open(common.index_path, OpenSpec{common.device_uri},
                           std::move(common.base));
  if (!index.ok()) return Fail(index.status());
  std::printf("device: %s\n", (*index)->device()->name().c_str());

  if (Status st = (*index)->Configure(search); !st.ok()) return Fail(st);

  auto batch = (*index)->SearchBatch(*queries, k);
  if (!batch.ok()) return Fail(batch.status());

  for (uint64_t q = 0; q < std::min<uint64_t>(queries->n(), 5); ++q) {
    std::printf("query %llu:", static_cast<unsigned long long>(q));
    for (const auto& nb : batch->results[q]) {
      std::printf(" %u(%.3f)", nb.id, nb.dist);
    }
    std::printf("\n");
  }
  std::printf(
      "%llu queries on %u shard(s), %.0f qps, %.1f I/Os per query, "
      "%.1f radii per query\n",
      static_cast<unsigned long long>(queries->n()), (*index)->num_shards(),
      batch->QueriesPerSecond(), batch->MeanIos(), batch->MeanRadii());
  return 0;
}

int CmdServe(int argc, char** argv) {
  CLI_ASSIGN(flags,
             ParseFlags(argc, argv,
                        {"base", "index", "device", "queries", "count", "rate",
                         "k", "shards", "batch", "max-wait-us", "deadline-us",
                         "probe-contexts", "max-n"}));
  ServeSpec serve;
  CLI_ASSIGN(k, GetU32(flags, "k", 10));
  CLI_ASSIGN(batch, GetU32(flags, "batch", 64));
  CLI_ASSIGN(max_wait, GetU(flags, "max-wait-us", 200));
  CLI_ASSIGN(deadline, GetU(flags, "deadline-us", 0));
  serve.k = k;
  serve.max_batch_size = batch;
  serve.max_wait_us = max_wait;
  serve.deadline_us = deadline;
  CLI_ASSIGN(search, MakeSearchSpec(flags));
  serve.search = search;

  CLI_ASSIGN(common, LoadCommon(flags, "serve"));

  // Query source: a file (cycled up to --count), else random base rows
  // (the generator case — a load without a recorded query log).
  const std::string query_path = GetS(flags, "queries");
  data::Dataset queries;
  if (!query_path.empty()) {
    auto loaded = data::LoadVectorFile(query_path);
    if (!loaded.ok()) return Fail(loaded.status());
    if (loaded->dim() != common.base.dim()) {
      return Fail(Status::InvalidArgument("query dimension mismatch"));
    }
    queries = std::move(*loaded);
  }
  CLI_ASSIGN(count, GetU(flags, "count",
                         queries.n() > 0 ? queries.n() : 1000));
  CLI_ASSIGN(rate, GetD(flags, "rate", 0.0));  // 0 = unthrottled

  auto index = Index::Open(common.index_path, OpenSpec{common.device_uri},
                           std::move(common.base));
  if (!index.ok()) return Fail(index.status());
  std::printf("device: %s\n", (*index)->device()->name().c_str());

  auto server = (*index)->Serve(serve);
  if (!server.ok()) return Fail(server.status());

  const data::Dataset& base = (*index)->base();
  util::Rng rng(17);
  const uint64_t interval_ns =
      rate > 0 ? static_cast<uint64_t>(1e9 / rate) : 0;
  const uint64_t t0 = util::NowNs();
  uint64_t submitted = 0;
  for (uint64_t i = 0; i < count; ++i) {
    if (interval_ns > 0) {
      // Sleep off most of the interval, spin only the last stretch: the
      // pacing thread shares the host with the shard workers it drives.
      const uint64_t deadline_ns = t0 + i * interval_ns;
      uint64_t now = util::NowNs();
      if (deadline_ns > now + 200000) {
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(deadline_ns - now - 100000));
      }
      while (util::NowNs() < deadline_ns) {
      }
    }
    const float* vec = queries.n() > 0
                           ? queries.Row(i % queries.n())
                           : base.Row(rng.NextU64Below(base.n()));
    if ((*server)->Submit(vec).ok()) ++submitted;
  }
  (*server)->Close();
  (*server)->Wait();

  const core::StreamingSnapshot snap = (*server)->stats();
  std::printf(
      "served %llu/%llu queries on %u shard(s), k=%u, batch<=%u, "
      "max-wait %llu us\n",
      static_cast<unsigned long long>(snap.completed),
      static_cast<unsigned long long>(submitted), (*index)->num_shards(),
      serve.k, serve.max_batch_size,
      static_cast<unsigned long long>(serve.max_wait_us));
  std::printf("  offered rate: %s qps\n",
              rate > 0 ? std::to_string(static_cast<uint64_t>(rate)).c_str()
                       : "unthrottled");
  std::printf("  achieved:     %.0f qps overall, %.0f qps sustained window\n",
              snap.overall_qps, snap.sustained_qps);
  std::printf(
      "  latency (enqueue->completion): p50 %.2f ms, p95 %.2f ms, "
      "p99 %.2f ms, max %.2f ms\n",
      static_cast<double>(snap.p50_ns) / 1e6,
      static_cast<double>(snap.p95_ns) / 1e6,
      static_cast<double>(snap.p99_ns) / 1e6,
      static_cast<double>(snap.max_ns) / 1e6);
  std::printf("  micro-batches: %llu (mean size %.1f), failed queries: %llu\n",
              static_cast<unsigned long long>(snap.batches),
              snap.mean_batch_size,
              static_cast<unsigned long long>(snap.failed));
  if (serve.deadline_us > 0) {
    std::printf("  load shedding: %llu rejected past the %llu us deadline\n",
                static_cast<unsigned long long>(snap.rejected),
                static_cast<unsigned long long>(serve.deadline_us));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(
        stderr,
        "usage: %s {gen|build|query|serve} --flag value ...\n"
        "  gen    --dataset SIFT --out data.fvecs [--n N] [--queries Q]\n"
        "  build  --base data.fvecs --index idx.bin --device URI\n"
        "         [--rho R] [--c C] [--w W] [--gamma G] [--s S] [--max-n N]\n"
        "  query  --base data.fvecs --index idx.bin --device URI "
        "--queries q.fvecs\n"
        "         [--k K] [--shards S] [--probe-contexts P] [--max-n N]\n"
        "  serve  --base data.fvecs --index idx.bin --device URI "
        "[--queries q.fvecs]\n"
        "         [--count N] [--rate QPS] [--k K] [--shards S] [--batch B]\n"
        "         [--max-wait-us W] [--deadline-us D]\n"
        "device URIs: mem: | sim:cssd|essd|xlfdd|hdd[*N][?iface=...] |\n"
        "  file:PATH[?direct=1&threads=N] | uring:PATH[?direct=1&sqpoll=1"
        "&fixed=1]\n"
        "  (+ ?capacity=SIZE, ?queue=N, ?queues=N, ?cache=SIZE on any\n"
        "   scheme; queues=N caps native per-shard device queues, 0 forces\n"
        "   the router shim, fixed=1 [uring] registers engine arenas for\n"
        "   READ_FIXED, cache=SIZE adds a DRAM read cache; build needs a\n"
        "   buffered device — serve the same image with direct=1)\n",
        argv[0]);
    return 1;
  }
  const std::string cmd = argv[1];
  if (cmd == "gen") return CmdGen(argc, argv);
  if (cmd == "build") return CmdBuild(argc, argv);
  if (cmd == "query") return CmdQuery(argc, argv);
  if (cmd == "serve") return CmdServe(argc, argv);
  std::fprintf(stderr,
               "unknown command: %s (expected gen|build|query|serve)\n",
               cmd.c_str());
  return 1;
}
