// Cache-line / sector aligned heap buffers for I/O paths.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <utility>

namespace e2lshos::util {

/// \brief Owning buffer with configurable alignment (default 512 bytes,
/// the minimum sector size for NVMe reads used throughout the paper).
class AlignedBuffer {
 public:
  AlignedBuffer() = default;

  explicit AlignedBuffer(size_t size, size_t alignment = 512) { Reset(size, alignment); }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        alignment_(other.alignment_) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      alignment_ = other.alignment_;
    }
    return *this;
  }

  AlignedBuffer(const AlignedBuffer&) = delete;
  AlignedBuffer& operator=(const AlignedBuffer&) = delete;

  ~AlignedBuffer() { Free(); }

  /// Reallocate to `size` bytes with `alignment`; contents are zeroed.
  void Reset(size_t size, size_t alignment = 512) {
    Free();
    alignment_ = alignment;
    if (size == 0) return;
    // aligned_alloc requires size to be a multiple of alignment.
    const size_t padded = (size + alignment - 1) / alignment * alignment;
    data_ = static_cast<uint8_t*>(std::aligned_alloc(alignment, padded));
    if (data_ == nullptr) throw std::bad_alloc();
    std::memset(data_, 0, padded);
    size_ = size;
  }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t alignment() const { return alignment_; }

 private:
  void Free() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
  }

  uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t alignment_ = 512;
};

}  // namespace e2lshos::util
