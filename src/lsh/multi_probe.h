// Multi-Probe LSH probing sequences (Lv et al., VLDB 2007).
//
// The paper's Sec. 2.4 and conclusion single out Multi-Probe LSH as the
// kind of near-linear-index method that "is likely to benefit from modern
// storage devices" because it shares E2LSH's bucket structure. This
// module implements the query-directed probing sequence: given the
// residual positions of a query inside its m component buckets, generate
// the T perturbation vectors delta in {-1, 0, +1}^m with the smallest
// score
//
//     score(delta) = sum_j x_j(delta_j)^2,
//
// where x_j(-1) is the distance from the query's projection to the lower
// bucket boundary and x_j(+1) to the upper one. The classic min-heap
// subset expansion ("shift" and "expand" moves over atoms sorted by
// score) enumerates perturbations in exactly increasing score order.
#pragma once

#include <cstdint>
#include <vector>

#include "lsh/hash_function.h"

namespace e2lshos::lsh {

/// \brief Generates probing sequences for one compound hash evaluation.
class MultiProbeSequence {
 public:
  /// `residuals[j]` in [0, 1): fractional position of the query within
  /// component bucket j (from LshFunction::Project minus its floor).
  explicit MultiProbeSequence(const std::vector<float>& residuals);

  /// The `t`-th best perturbation (0-based; t = -1 conceptually is the
  /// unperturbed bucket, not produced here). Returns false when the
  /// sequence is exhausted. Each call emits deltas[m] in {-1, 0, +1}.
  bool Next(std::vector<int8_t>* deltas);

  /// Convenience: the full top-T list of perturbations.
  std::vector<std::vector<int8_t>> FirstT(uint32_t t);

 private:
  struct Atom {
    float score2;   // squared boundary distance
    uint32_t func;  // component index j
    int8_t delta;   // -1 or +1
  };
  struct Subset {
    float score;
    std::vector<uint32_t> atoms;  // indices into sorted_atoms_, ascending
    bool operator>(const Subset& o) const { return score > o.score; }
  };

  bool Valid(const Subset& s) const;

  uint32_t m_ = 0;
  std::vector<Atom> sorted_atoms_;  // 2m atoms by ascending score
  std::vector<Subset> heap_;
};

/// \brief Apply a perturbation to the m floor values and fold to the
/// 32-bit compound value (the perturbed bucket key).
uint32_t PerturbedHash32(const int32_t* floors, const int8_t* deltas, uint32_t m);

}  // namespace e2lshos::lsh
