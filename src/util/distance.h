// Distance and dot-product kernels.
//
// The paper accelerates hash value and distance computations with
// AVX-512 (Sec. 3.5); we provide AVX-512/AVX2 intrinsic paths with a
// portable scalar fallback. All method-vs-method comparisons share these
// kernels, so relative speedups are preserved.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#if defined(__AVX512F__) || defined(__AVX2__)
#include <immintrin.h>
#endif

namespace e2lshos::util {

/// \brief Squared Euclidean distance between two d-dimensional vectors.
inline float SquaredL2(const float* a, const float* b, size_t d) {
  size_t i = 0;
  float acc;
#if defined(__AVX512F__)
  __m512 vacc0 = _mm512_setzero_ps();
  __m512 vacc1 = _mm512_setzero_ps();
  for (; i + 32 <= d; i += 32) {
    const __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    const __m512 d1 =
        _mm512_sub_ps(_mm512_loadu_ps(a + i + 16), _mm512_loadu_ps(b + i + 16));
    vacc0 = _mm512_fmadd_ps(d0, d0, vacc0);
    vacc1 = _mm512_fmadd_ps(d1, d1, vacc1);
  }
  for (; i + 16 <= d; i += 16) {
    const __m512 d0 = _mm512_sub_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i));
    vacc0 = _mm512_fmadd_ps(d0, d0, vacc0);
  }
  acc = _mm512_reduce_add_ps(_mm512_add_ps(vacc0, vacc1));
#elif defined(__AVX2__)
  __m256 vacc = _mm256_setzero_ps();
  for (; i + 8 <= d; i += 8) {
    const __m256 diff = _mm256_sub_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i));
    vacc = _mm256_fmadd_ps(diff, diff, vacc);
  }
  __m128 lo = _mm256_castps256_ps128(vacc);
  __m128 hi = _mm256_extractf128_ps(vacc, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  acc = _mm_cvtss_f32(lo);
#else
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  for (; i + 4 <= d; i += 4) {
    const float d0 = a[i] - b[i];
    const float d1 = a[i + 1] - b[i + 1];
    const float d2 = a[i + 2] - b[i + 2];
    const float d3 = a[i + 3] - b[i + 3];
    acc0 += d0 * d0;
    acc1 += d1 * d1;
    acc2 += d2 * d2;
    acc3 += d3 * d3;
  }
  acc = acc0 + acc1 + acc2 + acc3;
#endif
  for (; i < d; ++i) {
    const float diff = a[i] - b[i];
    acc += diff * diff;
  }
  return acc;
}

/// \brief Euclidean distance.
inline float L2(const float* a, const float* b, size_t d) {
  return std::sqrt(SquaredL2(a, b, d));
}

/// \brief Dot product a . b over d dimensions.
inline float Dot(const float* a, const float* b, size_t d) {
  size_t i = 0;
  float acc;
#if defined(__AVX512F__)
  __m512 vacc0 = _mm512_setzero_ps();
  __m512 vacc1 = _mm512_setzero_ps();
  for (; i + 32 <= d; i += 32) {
    vacc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), vacc0);
    vacc1 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i + 16),
                            _mm512_loadu_ps(b + i + 16), vacc1);
  }
  for (; i + 16 <= d; i += 16) {
    vacc0 = _mm512_fmadd_ps(_mm512_loadu_ps(a + i), _mm512_loadu_ps(b + i), vacc0);
  }
  acc = _mm512_reduce_add_ps(_mm512_add_ps(vacc0, vacc1));
#elif defined(__AVX2__)
  __m256 vacc = _mm256_setzero_ps();
  for (; i + 8 <= d; i += 8) {
    vacc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), vacc);
  }
  __m128 lo = _mm256_castps256_ps128(vacc);
  __m128 hi = _mm256_extractf128_ps(vacc, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  acc = _mm_cvtss_f32(lo);
#else
  float acc0 = 0.f, acc1 = 0.f, acc2 = 0.f, acc3 = 0.f;
  for (; i + 4 <= d; i += 4) {
    acc0 += a[i] * b[i];
    acc1 += a[i + 1] * b[i + 1];
    acc2 += a[i + 2] * b[i + 2];
    acc3 += a[i + 3] * b[i + 3];
  }
  acc = acc0 + acc1 + acc2 + acc3;
#endif
  for (; i < d; ++i) acc += a[i] * b[i];
  return acc;
}

/// \brief Squared L2 norm of a vector.
inline float SquaredNorm(const float* a, size_t d) { return Dot(a, a, d); }

}  // namespace e2lshos::util
