// QALSH: query-aware LSH with collision counting and virtual rehashing
// (Huang et al., PVLDB 9(1), 2015).
//
// Each of K hash functions is a Gaussian projection h_i(o) = a_i . o with
// no offset; the bucket is *centered at the query's projection* at search
// time (query-aware bucketing). Objects are kept in per-line sorted
// projection arrays (the in-memory stand-in for the original B+-trees,
// matching QALSH_Mem). A query expands a window of half-width w*R/2
// around the query projection on every line for virtual radii
// R = 1, c, c^2, ...; an object colliding on at least `collision_threshold`
// lines becomes a candidate and its true distance is verified. The search
// stops when k verified candidates lie within c*R or the verification
// budget beta*n is exhausted.
//
// Query time and index are O(n log n) — the superlinear baseline of the
// paper's Fig. 2 (consistently slower than SRS).
#pragma once

#include <cmath>
#include <cstdint>
#include <memory>
#include <vector>

#include "data/dataset.h"
#include "util/topk.h"

namespace e2lshos::baselines {

struct QalshConfig {
  double c = 2.0;   ///< Approximation ratio; the paper's accuracy knob.
  double w = 2.719; ///< Bucket width (QALSH's optimal for c = 2).
  double success_prob = 0.5 - 1.0 / M_E;
  double beta = 0.0;       ///< Verification budget fraction; 0 = 100/n.
  uint32_t num_hashes = 0; ///< K; 0 = derived from the error bounds.
  uint64_t seed = 20150901;
};

struct QalshStats {
  uint64_t points_verified = 0;
  uint64_t window_entries_scanned = 0;  ///< Collision-count increments.
  uint32_t virtual_radii = 0;
  uint64_t wall_ns = 0;
};

class Qalsh {
 public:
  static Result<std::unique_ptr<Qalsh>> Build(const data::Dataset& base,
                                              const QalshConfig& config);

  std::vector<util::Neighbor> Search(const float* query, uint32_t k,
                                     QalshStats* stats = nullptr) const;

  struct BatchResult {
    std::vector<std::vector<util::Neighbor>> results;
    std::vector<QalshStats> stats;
    uint64_t wall_ns = 0;
    double QueriesPerSecond() const {
      return wall_ns == 0 ? 0.0
                          : static_cast<double>(results.size()) * 1e9 /
                                static_cast<double>(wall_ns);
    }
  };
  BatchResult SearchBatch(const data::Dataset& queries, uint32_t k) const;

  uint32_t num_hashes() const { return K_; }
  uint32_t collision_threshold() const { return threshold_; }
  uint64_t IndexMemoryBytes() const;

 private:
  /// Collision probability of the query-aware bucket of width w at
  /// distance s: P(|a.(o-q)| <= w/2) = 2 Phi(w / (2s)) - 1.
  static double CollisionProb(double w, double s);

  const data::Dataset* base_ = nullptr;
  QalshConfig config_;
  uint32_t K_ = 0;
  uint32_t threshold_ = 0;  ///< Min collisions to become a candidate.
  uint64_t verify_budget_ = 0;
  std::vector<float> proj_matrix_;            // K x dim
  std::vector<std::vector<float>> line_proj_; // per line: sorted projections
  std::vector<std::vector<uint32_t>> line_ids_;

  // Scratch reused across queries (engine is single-threaded per object,
  // clone per thread for parallel use).
  mutable std::vector<uint16_t> counts_;
  mutable std::vector<uint32_t> count_epoch_;
  mutable uint32_t epoch_ = 0;
};

}  // namespace e2lshos::baselines
