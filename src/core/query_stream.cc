#include "core/query_stream.h"

#include "util/clock.h"

namespace e2lshos::core {

StreamPull DatasetStream::TryPull(StreamQuery* out) {
  const uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= queries_->n()) return StreamPull::kClosed;
  out->id = idx;
  out->enqueue_ns = util::NowNs();
  const float* row = queries_->Row(idx);
  out->vec.assign(row, row + queries_->dim());
  return StreamPull::kReady;
}

StreamPull GeneratorStream::TryPull(StreamQuery* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (limit_ != 0 && emitted_ >= limit_) return StreamPull::kClosed;
  out->id = emitted_++;
  out->enqueue_ns = util::NowNs();
  out->vec.resize(sampler_.dim());
  sampler_.NextQuery(out->vec.data());
  return StreamPull::kReady;
}

Result<uint64_t> SubmissionQueue::Enqueue(const float* vec, uint32_t k) {
  StreamQuery q;
  q.id = next_id_++;
  q.enqueue_ns = util::NowNs();
  q.k = k;
  q.vec.assign(vec, vec + dim_);
  const uint64_t id = q.id;
  queue_.push_back(std::move(q));
  return id;
}

Result<uint64_t> SubmissionQueue::Submit(const float* vec, uint32_t k) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [this] { return closed_ || queue_.size() < capacity_; });
  if (closed_) return ClosedStatus();
  return Enqueue(vec, k);
}

Result<uint64_t> SubmissionQueue::TrySubmit(const float* vec, uint32_t k) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return ClosedStatus();
  if (queue_.size() >= capacity_) {
    return Status::ResourceExhausted("submission queue full");
  }
  return Enqueue(vec, k);
}

Status SubmissionQueue::ClosedStatus() const {
  return Status::FailedPrecondition(
      consumer_stopped_
          ? "serving stopped: the consumer exited without draining the "
            "submission queue"
          : "submission queue closed");
}

void SubmissionQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
}

void SubmissionQueue::ConsumerStopped() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A caller-requested Close() that drained normally keeps its plain
    // "closed" message; this path marks the abnormal order (consumer
    // died first) so a wedged producer's error says what happened.
    if (!closed_) consumer_stopped_ = true;
    closed_ = true;
  }
  not_full_.notify_all();
}

bool SubmissionQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t SubmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

StreamPull SubmissionQueue::TryPull(StreamQuery* out) {
  bool notify = false;
  StreamPull result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) {
      result = closed_ ? StreamPull::kClosed : StreamPull::kPending;
    } else {
      *out = std::move(queue_.front());
      queue_.pop_front();
      notify = !closed_;
      result = StreamPull::kReady;
    }
  }
  if (notify) not_full_.notify_one();
  return result;
}

}  // namespace e2lshos::core
