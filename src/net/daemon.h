// net::Daemon — the network serving daemon over e2lshos::Index::Serve.
//
// One process serves N indexes: each registered index gets its own
// api-level Server (bounded MPMC SubmissionQueue feeding the
// StreamingServer's per-shard workers) plus a FutureSink, and requests
// are routed to it by the index name carried in every Search /
// SearchBatch / Configure / Stats frame (see net/wire.h for the
// protocol). The daemon listens on a UNIX socket, a TCP socket, or
// both, with one handler thread per connection:
//
//   read frame -> decode -> Submit each query -> Take() futures ->
//   encode response -> write frame
//
// Backpressure is real admission control: a blocking Submit stalls only
// that connection while the submission queue is full, and a kFlagNoWait
// request maps a full queue to a per-query kResourceExhausted on the
// wire — the same code the deadline shedder (ServeSpec::deadline_us)
// delivers for queries that aged out while queued. Shard workers never
// block on a connection: results are delivered into the per-index
// FutureSink and the connection thread collects them, so a client that
// disconnected with queries in flight just means the collected results
// are dropped when the response write fails (SIGPIPE is suppressed;
// the IoError closes the handler).
//
// Shutdown (RequestStop is async-signal-safe — call it from a SIGTERM
// handler) drains cleanly: listeners close first, every connection gets
// shutdown(SHUT_RD) so handlers finish the frame they are serving and
// then see EOF, handlers are joined, and only then are the per-index
// servers stopped — in-flight queries complete and are answered before
// any engine worker goes away.
//
// Malformed input never tears down the listener: a frame with a bad
// length prefix (0, shorter than the header, over max_frame_bytes), bad
// magic/version, or a truncated/trailing-garbage body gets a
// kProtocolError response (best-effort) and that one connection is
// closed.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "api/index.h"
#include "net/wire.h"
#include "util/stats.h"
#include "util/status.h"

namespace e2lshos::net {

struct DaemonOptions {
  /// UNIX socket path; empty = no UNIX listener.
  std::string unix_path;
  /// TCP listen port; negative = no TCP listener, 0 = ephemeral (read
  /// the bound port back with tcp_port()).
  int tcp_port = -1;
  std::string tcp_host = "127.0.0.1";
  /// Per-connection frame cap; larger length prefixes are protocol
  /// errors, rejected before any allocation.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Per-connection socket timeouts (SO_RCVTIMEO / SO_SNDTIMEO), in
  /// milliseconds; 0 = never time out. A connection that stays silent
  /// (or cannot absorb its response) past the deadline is closed — a
  /// stalled or vanished client can no longer pin a handler thread
  /// forever.
  uint32_t recv_timeout_ms = 0;
  uint32_t send_timeout_ms = 0;
  /// Error-rate circuit breaker: when at least `breaker_min_rate`
  /// queries/sec flowed over the rolling window and the failed fraction
  /// (non-OK statuses, shed admissions, and partial results — queries
  /// that absorbed I/O errors or corrupt blocks) reaches
  /// `breaker_trip_ratio`, the daemon enters degraded mode and
  /// sheds Search/SearchBatch queries with kUnavailable (cheap, bounded
  /// work) until the failure share falls back to half the trip ratio.
  /// 0 disables the breaker.
  double breaker_trip_ratio = 0.0;
  double breaker_min_rate = 5.0;
  /// Serving shape applied to every index (k is each index's initial
  /// default_k; Configure overrides it per index at runtime).
  ServeSpec serve;
};

class Daemon {
 public:
  explicit Daemon(DaemonOptions options);
  /// Stops and joins everything still running.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Register an index under `name` before Start(). Takes ownership.
  /// Names must be unique and non-empty.
  Status AddIndex(const std::string& name, std::unique_ptr<Index> index);

  /// Open the listeners, start serving every registered index, spawn
  /// the accept threads. Fails without at least one listener or index.
  Status Start();

  /// Request shutdown. Async-signal-safe (one write to a pipe plus a
  /// relaxed atomic store) — this is the SIGTERM handler's entry point.
  void RequestStop();

  /// Block until a stop is requested, then drain: close listeners, wake
  /// and join every connection handler (in-flight requests finish and
  /// their responses are written), stop the per-index servers, release
  /// the sockets. Returns once the daemon is fully torn down.
  void Wait();

  /// Start() + Wait().
  Status Serve();

  /// The bound TCP port (after Start; 0 when no TCP listener).
  uint16_t tcp_port() const { return tcp_port_; }
  /// Live connection count (diagnostics; racy by nature).
  size_t connections() const;
  /// True while the error-rate breaker is tripped (queries are shed).
  bool degraded() const {
    return breaker_.degraded.load(std::memory_order_relaxed);
  }
  /// Queries shed by the breaker since startup.
  uint64_t breaker_shed() const {
    return breaker_.total_shed.load(std::memory_order_relaxed);
  }

 private:
  struct IndexEntry {
    std::string name;
    std::unique_ptr<Index> index;
    std::unique_ptr<Server> server;
    core::FutureSink sink;
    /// Applied when a Search frame carries k == 0; Configure sets it.
    std::atomic<uint32_t> default_k{10};
  };

  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop(int listen_fd);
  void HandleConnection(int fd);
  /// Decode + dispatch one request; returns the encoded response frame.
  /// A Status return means the connection must close (protocol error —
  /// the response, if any, was already placed in *frame).
  Status HandleFrame(const uint8_t* payload, size_t size,
                     std::vector<uint8_t>* frame);

  /// Per-type handlers: an error return is a malformed body (protocol
  /// error, close the connection); semantic failures (unknown index,
  /// dimension mismatch, k == 0) are OK returns whose response frame
  /// carries the error status.
  Status HandleSearchRequest(Reader* r, const FrameHeader& hdr, bool batch,
                             Writer* w);
  Status HandleConfigure(Reader* r, const FrameHeader& hdr, Writer* w);
  Status HandleStats(Reader* r, const FrameHeader& hdr, Writer* w);
  Status HandleHealth(Reader* r, const FrameHeader& hdr, Writer* w);
  Status HandleUpdate(Reader* r, const FrameHeader& hdr, Writer* w);
  IndexEntry* FindEntry(const std::string& name);
  /// Feed query outcomes to the breaker and re-evaluate its state.
  void RecordOutcomes(uint32_t queries, uint32_t failures);
  /// Capture the current health (state + rates) by value.
  WireHealth SnapshotHealth();
  /// Reap finished handler threads (called from the accept loops).
  void ReapConnections();

  /// Rolling failure/shed accounting behind the degraded-mode breaker.
  /// The windows are not thread-safe; connection handlers serialize on
  /// `mu`. `degraded` and `total_shed` are atomics so the shed fast path
  /// and the diagnostics accessors read them lock-free.
  struct Breaker {
    mutable std::mutex mu;
    util::SlidingWindowRate requests;
    util::SlidingWindowRate errors;
    util::SlidingWindowRate sheds;
    std::atomic<bool> degraded{false};
    std::atomic<uint64_t> total_shed{0};
  };

  DaemonOptions options_;
  std::map<std::string, std::unique_ptr<IndexEntry>> indexes_;
  Breaker breaker_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  uint16_t tcp_port_ = 0;
  /// Self-pipe the accept loops poll alongside their listen fd; never
  /// drained, so one RequestStop() write stays visible to every poller.
  int stop_pipe_[2] = {-1, -1};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  bool joined_ = false;

  std::vector<std::thread> accept_threads_;
  mutable std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::mutex lifecycle_mu_;  ///< Serializes Start/Wait/destruction.
};

}  // namespace e2lshos::net
