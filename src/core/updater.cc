#include "core/updater.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/aligned_buffer.h"

namespace e2lshos::core {

namespace {

/// \brief Updater I/O through a device whose io_alignment() may exceed
/// the extents the updater touches (8-byte table entries, block-sized
/// bucket blocks): sub-unit extents are staged through the covering
/// aligned window with a read-modify-write. Devices with alignment 1,
/// and extents already on unit boundaries, take the direct path — the
/// historical behavior, byte for byte.
class AlignedIo {
 public:
  explicit AlignedIo(storage::BlockDevice* device)
      : device_(device), unit_(device->io_alignment()) {}

  Status Read(uint64_t offset, void* out, uint32_t length) {
    if (unit_ <= 1) return device_->ReadSync(offset, out, length);
    if (Aligned(offset, length)) {
      // Aligned extent, but the caller's buffer pointer may not satisfy
      // the direct-I/O memory-alignment rule: bounce through the window.
      Reserve(length);
      E2_RETURN_NOT_OK(device_->ReadSync(offset, win_.data(), length));
      std::memcpy(out, win_.data(), length);
      return Status::OK();
    }
    E2_RETURN_NOT_OK(Stage(offset, length));
    std::memcpy(out, win_.data() + (offset - win_off_), length);
    return Status::OK();
  }

  /// Write `length` bytes at `offset`; returns the bytes that actually
  /// hit the device (the whole window when staged — the honest
  /// endurance number).
  Result<uint64_t> Write(uint64_t offset, const void* data, uint32_t length) {
    if (unit_ <= 1) {
      E2_RETURN_NOT_OK(device_->Write(offset, data, length));
      return static_cast<uint64_t>(length);
    }
    if (Aligned(offset, length)) {
      Reserve(length);
      std::memcpy(win_.data(), data, length);
      E2_RETURN_NOT_OK(device_->Write(offset, win_.data(), length));
      return static_cast<uint64_t>(length);
    }
    E2_RETURN_NOT_OK(Stage(offset, length));
    std::memcpy(win_.data() + (offset - win_off_), data, length);
    E2_RETURN_NOT_OK(device_->Write(win_off_, win_.data(), win_len_));
    return static_cast<uint64_t>(win_len_);
  }

 private:
  bool Aligned(uint64_t offset, uint32_t length) const {
    return offset % unit_ == 0 && length % unit_ == 0;
  }

  void Reserve(uint32_t length) {
    if (win_.size() < length) {
      win_.Reset(length, std::max(unit_, storage::kSectorBytes));
    }
  }

  Status Stage(uint64_t offset, uint32_t length) {
    const uint64_t lo = offset / unit_ * unit_;
    const uint64_t hi = (offset + length + unit_ - 1) / unit_ * unit_;
    win_off_ = lo;
    win_len_ = static_cast<uint32_t>(hi - lo);
    Reserve(win_len_);
    return device_->ReadSync(lo, win_.data(), win_len_);
  }

  storage::BlockDevice* device_;
  uint32_t unit_;
  uint64_t win_off_ = 0;
  uint32_t win_len_ = 0;
  util::AlignedBuffer win_;
};

}  // namespace

Status IndexUpdater::Insert(const data::Dataset& base, uint32_t id) {
  if (index_ == nullptr) return Status::InvalidArgument("null index");
  if (id >= base.n()) {
    return Status::InvalidArgument("dataset does not hold the inserted row yet");
  }
  const IndexLayout& layout = index_->layout_;
  E2_ASSIGN_OR_RETURN(const ObjectInfoCodec codec,
                      ObjectInfoCodec::MakeWithIdBits(layout.id_bits, layout.fp));
  if (id >= (1ULL << codec.id_bits)) {
    return Status::FailedPrecondition(
        "id exceeds the id space fixed at build time; rebuild the index");
  }

  storage::BlockDevice* device = index_->device_;
  AlignedIo io(device);
  const uint32_t per_block = layout.objects_per_block();
  std::vector<uint8_t> block(layout.block_bytes);
  const float* row = base.Row(id);

  for (uint32_t r = 0; r < layout.num_radii; ++r) {
    for (uint32_t l = 0; l < layout.L; ++l) {
      const uint32_t h = index_->family_.Get(r, l).Hash32(row);
      const uint32_t slot = layout.fp.TableIndex(h);
      const uint32_t fp = layout.fp.Fingerprint(h);
      const uint64_t table_addr = layout.TableEntryAddr(r, l, slot);

      uint64_t head = 0;
      if (index_->SlotNonEmpty(r, l, slot)) {
        E2_RETURN_NOT_OK(io.Read(table_addr, &head, 8));
      }

      bool appended_in_place = false;
      if (head != 0) {
        // Try to extend the head block in place.
        E2_RETURN_NOT_OK(io.Read(head, block.data(), layout.block_bytes));
        BlockHeader hdr = BlockHeader::DecodeFrom(block.data());
        if (hdr.count < per_block) {
          codec.Write(block.data() + kBlockHeaderBytes +
                          static_cast<size_t>(hdr.count) * kObjectInfoBytes,
                      id, fp);
          ++hdr.count;
          hdr.EncodeTo(block.data());
          if (index_->checksums_enabled_) {
            StampBlockCrc(block.data(), layout.block_bytes);
          }
          E2_ASSIGN_OR_RETURN(
              const uint64_t written,
              io.Write(head, block.data(), layout.block_bytes));
          bytes_written_ += written;
          appended_in_place = true;
        }
      }

      if (!appended_in_place) {
        // Prepend a fresh head block pointing at the old head (0 if the
        // bucket was empty).
        const uint64_t new_block = index_->next_block_idx_++;
        const uint64_t new_addr = layout.BlockAddr(new_block);
        if (new_addr + layout.block_bytes > device->capacity()) {
          return Status::OutOfRange("device full; cannot grow the index");
        }
        BlockHeader hdr;
        hdr.next = head;
        hdr.count = 1;
        hdr.EncodeTo(block.data());
        codec.Write(block.data() + kBlockHeaderBytes, id, fp);
        std::memset(block.data() + kBlockHeaderBytes + kObjectInfoBytes, 0,
                    layout.block_bytes - kBlockHeaderBytes - kObjectInfoBytes);
        if (index_->checksums_enabled_) {
          StampBlockCrc(block.data(), layout.block_bytes);
        }
        E2_ASSIGN_OR_RETURN(
            const uint64_t block_written,
            io.Write(new_addr, block.data(), layout.block_bytes));
        E2_ASSIGN_OR_RETURN(const uint64_t entry_written,
                            io.Write(table_addr, &new_addr, 8));
        if (index_->checksums_enabled_) {
          // The 8-byte entry changed its covering table sector: refresh
          // that sector's DRAM-resident CRC from the device bytes.
          const uint64_t sec = index_->TableSectorIndex(table_addr);
          const uint64_t sec_addr =
              layout.table_base + sec * storage::kSectorBytes;
          uint8_t sector[storage::kSectorBytes];
          const uint32_t valid = index_->TableSectorValidBytes(sec);
          E2_RETURN_NOT_OK(io.Read(sec_addr, sector, valid));
          index_->table_crcs_[sec] = index_->ComputeTableSectorCrc(sec, sector);
        }
        bytes_written_ += block_written + entry_written;
        index_->sizes_.bucket_bytes += layout.block_bytes;
        index_->sizes_.storage_bytes += layout.block_bytes;
        if (head == 0) {
          const uint64_t bit = index_->BitIndex(r, l, slot);
          index_->bitmap_[bit >> 6] |= 1ULL << (bit & 63);
          ++index_->sizes_.nonempty_slots;
        }
      }
      ++index_->sizes_.total_entries;
    }
  }
  // If the id was previously tombstoned, the insert re-activates it.
  index_->tombstones_.erase(id);
  // Grow the addressable range so the engine accepts the new id.
  if (id >= index_->n_) index_->n_ = id + 1;
  ++inserts_;
  return Status::OK();
}

Status IndexUpdater::Remove(uint32_t id) {
  if (index_ == nullptr) return Status::InvalidArgument("null index");
  index_->tombstones_.insert(id);
  return Status::OK();
}

Status IndexUpdater::Restore(uint32_t id) {
  if (index_ == nullptr) return Status::InvalidArgument("null index");
  index_->tombstones_.erase(id);
  return Status::OK();
}

}  // namespace e2lshos::core
