// Reproduces Figure 7: the storage IOPS requirement for E2LSHoS to match
// *in-memory E2LSH* speed (Eq. 15: 1/T_read >= N_IO / T_E2LSH), B = 512,
// for all datasets — and the Eq. 16 CPU-overhead requirement
// (T_request <= tens of nanoseconds).
#include "common.h"

#include "model/cost_model.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);

  bench::PrintHeader(
      "Figure 7: required IOPS for in-memory E2LSH speeds (B = 512)",
      {"Dataset", "ratio", "T_E2LSH us", "N_IO(512)", "required kIOPS",
       "T_request max ns (Eq.16)"});

  for (const auto& spec : data::PaperDatasets()) {
    if (!args.dataset.empty() && spec.name != args.dataset) continue;
    auto w = bench::MakeWorkload(spec, args.EffectiveN(spec), args.queries, 1);
    if (!w.ok()) continue;
    auto index = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
    if (!index.ok()) continue;
    const auto profile =
        bench::ProfileInMemoryIo(index->get(), *w, 1, bench::DefaultSFactors());

    double max_kiops = 0, min_treq = 1e18;
    const bench::IoProfilePoint* shown = nullptr;
    for (const auto& p : profile) {
      const double kiops =
          model::RequiredIopsAsync(p.IoAt(128), p.e2lsh_query_ns) / 1e3;
      const double treq =
          1e9 / model::RequiredRequestIopsInMemory(p.IoAt(128), p.e2lsh_query_ns);
      if (kiops > max_kiops) {
        max_kiops = kiops;
        min_treq = treq;
        shown = &p;
      }
    }
    if (shown == nullptr) continue;
    bench::PrintRow({spec.name, bench::Fmt(shown->ratio, 3),
                     bench::Fmt(shown->e2lsh_query_ns / 1e3, 1),
                     bench::Fmt(shown->IoAt(128), 1), bench::Fmt(max_kiops, 0),
                     bench::Fmt(min_treq, 0)});
  }
  std::printf(
      "\nExpected shape (paper): a few MIOPS storage-side (Observation 4) "
      "and a\nCPU overhead budget of no more than a few tens of ns per "
      "I/O — the XLFDD\ninterface regime. Requirements are stable across "
      "n and k because T_E2LSH and\nN_IO scale together.\n");
  return 0;
}
