// Tests for .fvecs / .bvecs dataset I/O.
#include <gtest/gtest.h>

#include <cstdio>

#include "data/generators.h"
#include "data/io.h"

namespace e2lshos::data {
namespace {

TEST(Io, FvecsRoundTrip) {
  GeneratorSpec spec;
  spec.dim = 12;
  spec.seed = 4;
  auto gen = Generate("io", 200, 1, spec);
  const std::string path = ::testing::TempDir() + "/e2_io_roundtrip.fvecs";
  ASSERT_TRUE(SaveFvecs(gen.base, path).ok());
  auto loaded = LoadFvecs(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->n(), gen.base.n());
  ASSERT_EQ(loaded->dim(), gen.base.dim());
  for (uint64_t i = 0; i < gen.base.n(); ++i) {
    for (uint32_t j = 0; j < gen.base.dim(); ++j) {
      EXPECT_EQ(loaded->Row(i)[j], gen.base.Row(i)[j]);
    }
  }
  std::remove(path.c_str());
}

TEST(Io, FvecsMaxVectorsLimit) {
  GeneratorSpec spec;
  spec.dim = 8;
  auto gen = Generate("io2", 100, 1, spec);
  const std::string path = ::testing::TempDir() + "/e2_io_limit.fvecs";
  ASSERT_TRUE(SaveFvecs(gen.base, path).ok());
  auto loaded = LoadFvecs(path, 17);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->n(), 17u);
  std::remove(path.c_str());
}

TEST(Io, BvecsParsesByteVectors) {
  const std::string path = ::testing::TempDir() + "/e2_io_bytes.bvecs";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t dim = 4;
  const uint8_t rows[2][4] = {{0, 1, 128, 255}, {7, 9, 11, 13}};
  for (const auto& r : rows) {
    std::fwrite(&dim, sizeof(dim), 1, f);
    std::fwrite(r, 1, 4, f);
  }
  std::fclose(f);

  auto loaded = LoadBvecs(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->n(), 2u);
  EXPECT_EQ(loaded->Row(0)[3], 255.f);
  EXPECT_EQ(loaded->Row(1)[0], 7.f);
  std::remove(path.c_str());
}

TEST(Io, RejectsMissingAndMalformedFiles) {
  EXPECT_EQ(LoadFvecs("/nonexistent.fvecs").status().code(), StatusCode::kNotFound);

  const std::string path = ::testing::TempDir() + "/e2_io_bad.fvecs";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const int32_t bad_dim = -5;
  std::fwrite(&bad_dim, sizeof(bad_dim), 1, f);
  std::fclose(f);
  EXPECT_FALSE(LoadFvecs(path).ok());
  std::remove(path.c_str());
}

TEST(Io, RejectsInconsistentDimensions) {
  const std::string path = ::testing::TempDir() + "/e2_io_mixed.fvecs";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const float vals[4] = {1, 2, 3, 4};
  int32_t d = 4;
  std::fwrite(&d, sizeof(d), 1, f);
  std::fwrite(vals, sizeof(float), 4, f);
  d = 3;
  std::fwrite(&d, sizeof(d), 1, f);
  std::fwrite(vals, sizeof(float), 3, f);
  std::fclose(f);
  EXPECT_FALSE(LoadFvecs(path).ok());
  std::remove(path.c_str());
}

TEST(Io, DispatchByExtension) {
  GeneratorSpec spec;
  spec.dim = 6;
  auto gen = Generate("io3", 10, 1, spec);
  const std::string path = ::testing::TempDir() + "/e2_io_dispatch.fvecs";
  ASSERT_TRUE(SaveFvecs(gen.base, path).ok());
  EXPECT_TRUE(LoadVectorFile(path).ok());
  EXPECT_FALSE(LoadVectorFile("/tmp/foo.txt").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace e2lshos::data
