// Query sources for streaming serving (the front half of the batched /
// streaming query API from ROADMAP).
//
// A QueryStream hands queries to the StreamingServer one at a time, so
// the serving layer can keep the device queue deep across what used to
// be batch boundaries. Three sources cover the serving scenarios:
//
//   * DatasetStream  — adapter over a materialized data::Dataset (replay
//     a recorded query log / benchmark query set);
//   * GeneratorStream — synthesizes queries on the fly from a
//     data::GeneratorSpec, optionally unbounded (soak testing);
//   * SubmissionQueue — bounded MPMC queue: any number of producer
//     threads Submit() queries while the server's shard workers pull.
//
// All streams are thread-safe on the pull side (several shard workers
// pull concurrently) and stamp each query's enqueue time, the start of
// the enqueue→completion latency the server reports.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "data/dataset.h"
#include "data/generators.h"
#include "util/rng.h"
#include "util/status.h"

namespace e2lshos::core {

/// \brief One query travelling through the serving pipeline.
struct StreamQuery {
  uint64_t id = 0;          ///< Stream-assigned, echoed in the result.
  uint64_t enqueue_ns = 0;  ///< When the query entered the stream.
  /// Per-query neighbor count; 0 = the server's ServerOptions::k. The
  /// network daemon sets this from the request frame so a remote k is
  /// honored exactly (not truncated from a wider engine run, which
  /// would not be bit-identical under distance ties).
  uint32_t k = 0;
  std::vector<float> vec;
};

enum class StreamPull {
  kReady,    ///< A query was written to *out.
  kPending,  ///< Nothing available now, but the stream is still open.
  kClosed,   ///< Drained and closed: no query will ever arrive again.
};

class QueryStream {
 public:
  virtual ~QueryStream() = default;

  /// Non-blocking pull; safe to call from many threads concurrently.
  /// Each query is handed out exactly once.
  virtual StreamPull TryPull(StreamQuery* out) = 0;

  virtual uint32_t dim() const = 0;

  /// The consumer side is gone: the serving loop's last worker exited
  /// (Stop(), engine teardown) and nothing will ever pull again.
  /// Sources with blocked producers must wake them with an error —
  /// a producer wedged in SubmissionQueue::Submit on a full queue would
  /// otherwise wait forever for a drain that cannot happen. Default is
  /// a no-op (pull-only sources have nobody to wake).
  virtual void ConsumerStopped() {}
};

/// \brief Replays a materialized dataset in row order, then closes.
/// The dataset must outlive the stream. Query ids are row indices.
class DatasetStream : public QueryStream {
 public:
  explicit DatasetStream(const data::Dataset* queries) : queries_(queries) {}

  StreamPull TryPull(StreamQuery* out) override;
  uint32_t dim() const override { return queries_->dim(); }

 private:
  const data::Dataset* queries_;
  std::atomic<uint64_t> next_{0};
};

/// \brief Synthesizes queries from a GeneratorSpec via data::PointSampler
/// (the same per-point logic — quantization grid included — that
/// data::Generate uses for materialized corpora); `limit` = 0 streams
/// forever (the caller stops the server instead of draining the stream).
class GeneratorStream : public QueryStream {
 public:
  GeneratorStream(const data::GeneratorSpec& spec, uint64_t limit)
      : sampler_(spec), limit_(limit) {}

  StreamPull TryPull(StreamQuery* out) override;
  uint32_t dim() const override { return sampler_.dim(); }

 private:
  std::mutex mu_;
  data::PointSampler sampler_;
  const uint64_t limit_;
  uint64_t emitted_ = 0;
};

/// \brief Bounded MPMC submission queue: the live-serving source.
///
/// Producer threads Submit() (blocking while the queue is full) or
/// TrySubmit(); the server's shard workers TryPull(). Close() ends the
/// stream: queued queries still drain, further submissions fail with
/// FailedPrecondition, and blocked producers wake immediately.
class SubmissionQueue : public QueryStream {
 public:
  SubmissionQueue(uint32_t dim, size_t capacity)
      : dim_(dim), capacity_(capacity == 0 ? 1 : capacity) {}

  /// Copy `dim()` floats from `vec` into the queue; blocks while full.
  /// Returns the assigned query id. `k` overrides the server's
  /// per-session neighbor count for this query (0 = server default).
  Result<uint64_t> Submit(const float* vec, uint32_t k = 0);

  /// Non-blocking submit; ResourceExhausted when full.
  Result<uint64_t> TrySubmit(const float* vec, uint32_t k = 0);

  void Close();
  bool closed() const;
  size_t depth() const;  ///< Queries currently queued.

  StreamPull TryPull(StreamQuery* out) override;
  uint32_t dim() const override { return dim_; }

  /// The serving side died (StreamingServer workers all exited without
  /// draining us). Closes the queue and wakes every producer blocked in
  /// Submit with FailedPrecondition — mentioning the dead consumer, not
  /// a caller-requested close. Queries still queued stay queued (and
  /// visible via depth()) but will never be pulled.
  void ConsumerStopped() override;

 private:
  Result<uint64_t> Enqueue(const float* vec, uint32_t k);  ///< mu_ held.
  Status ClosedStatus() const;                             ///< mu_ held.

  const uint32_t dim_;
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::deque<StreamQuery> queue_;
  uint64_t next_id_ = 0;
  bool closed_ = false;
  bool consumer_stopped_ = false;
};

}  // namespace e2lshos::core
