#include "data/generators.h"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace e2lshos::data {

namespace {

// Round one coordinate onto a 256-level grid over [0, range], emulating
// byte-typed datasets (SIFT/MNIST/BIGANN) while keeping float storage.
float ByteQuantizeValue(float v, double range) {
  const double step = range / 255.0;
  const double q = std::round(std::clamp(static_cast<double>(v), 0.0, range) / step);
  return static_cast<float>(q * step);
}

}  // namespace

PointSampler::PointSampler(const GeneratorSpec& spec)
    : spec_(spec), rng_(spec.seed) {
  if (spec_.kind == GeneratorKind::kClustered) {
    centers_.resize(static_cast<size_t>(spec_.num_clusters) * spec_.dim);
    for (auto& v : centers_) {
      v = static_cast<float>(rng_.Uniform(0.0, spec_.center_spread));
    }
  }
  if (spec_.byte_quantize) {
    switch (spec_.kind) {
      case GeneratorKind::kClustered:
        quantize_range_ = spec_.center_spread + 4.0 * spec_.cluster_std;
        break;
      case GeneratorKind::kUniform:
        quantize_range_ = spec_.scale;
        break;
      case GeneratorKind::kGaussian:
        break;  // the paper's GAUSS is float-typed; no grid
    }
  }
}

void PointSampler::Next(float* out) {
  switch (spec_.kind) {
    case GeneratorKind::kClustered: {
      const uint64_t c = rng_.NextU64Below(spec_.num_clusters);
      const float* center = centers_.data() + c * spec_.dim;
      for (uint32_t j = 0; j < spec_.dim; ++j) {
        out[j] = center[j] +
                 static_cast<float>(rng_.Gaussian(0.0, spec_.cluster_std));
      }
      break;
    }
    case GeneratorKind::kUniform:
      for (uint32_t j = 0; j < spec_.dim; ++j) {
        out[j] = static_cast<float>(rng_.Uniform(0.0, spec_.scale));
      }
      break;
    case GeneratorKind::kGaussian:
      for (uint32_t j = 0; j < spec_.dim; ++j) {
        out[j] = static_cast<float>(rng_.Gaussian(0.0, spec_.scale));
      }
      break;
  }
  if (quantize_range_ > 0.0) {
    for (uint32_t j = 0; j < spec_.dim; ++j) {
      out[j] = ByteQuantizeValue(out[j], quantize_range_);
    }
  }
}

void PointSampler::EnsurePopulation() {
  if (!population_.empty()) return;
  const uint64_t pop = std::max<uint64_t>(1, spec_.query_population);
  population_.resize(pop * spec_.dim);
  for (uint64_t i = 0; i < pop; ++i) {
    Next(population_.data() + i * spec_.dim);
  }
  if (spec_.query_dist == QueryDistribution::kZipf) {
    // Rank r carries weight 1/(r+1)^theta; the CDF makes each draw one
    // uniform plus a binary search.
    zipf_cdf_.resize(pop);
    double total = 0.0;
    for (uint64_t r = 0; r < pop; ++r) {
      total += 1.0 / std::pow(static_cast<double>(r + 1), spec_.zipf_theta);
      zipf_cdf_[r] = total;
    }
    for (auto& v : zipf_cdf_) v /= total;
  }
}

uint64_t PointSampler::NextRank() {
  const uint64_t pop = population_.size() / spec_.dim;
  if (spec_.query_dist == QueryDistribution::kZipf) {
    const double u = rng_.NextDouble();
    const auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
    return std::min<uint64_t>(
        static_cast<uint64_t>(it - zipf_cdf_.begin()), pop - 1);
  }
  // Hotspot: two-level draw over [0, hot) / [hot, pop).
  const uint64_t hot = std::min<uint64_t>(
      pop, std::max<uint64_t>(
               1, static_cast<uint64_t>(spec_.hotspot_fraction *
                                        static_cast<double>(pop))));
  if (hot >= pop || rng_.NextDouble() < spec_.hotspot_weight) {
    return rng_.NextU64Below(hot);
  }
  return hot + rng_.NextU64Below(pop - hot);
}

void PointSampler::NextQuery(float* out) {
  if (spec_.query_dist == QueryDistribution::kIndependent) {
    Next(out);
    return;
  }
  EnsurePopulation();
  const uint64_t rank = NextRank();
  std::memcpy(out, population_.data() + rank * spec_.dim,
              spec_.dim * sizeof(float));
}

GeneratedData Generate(const std::string& name, uint64_t n, uint64_t num_queries,
                       const GeneratorSpec& spec) {
  GeneratedData out;
  out.base = Dataset(name, spec.dim);
  out.base.Reserve(n);
  out.queries = Dataset(name + "-queries", spec.dim);
  out.queries.Reserve(num_queries);

  PointSampler sampler(spec);
  std::vector<float> point(spec.dim);
  for (uint64_t i = 0; i < n; ++i) {
    sampler.Next(point.data());
    out.base.Append(point.data());
  }
  for (uint64_t i = 0; i < num_queries; ++i) {
    sampler.NextQuery(point.data());
    out.queries.Append(point.data());
  }
  return out;
}

}  // namespace e2lshos::data
