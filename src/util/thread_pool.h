// Fixed-size thread pool with a shared task queue.
//
// Used by FileDevice to run real blocking preads asynchronously, and by
// multithreaded benchmark drivers (Fig. 16).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace e2lshos::util {

class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadPool() { Shutdown(); }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task for execution. Safe from any thread.
  void Submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      queue_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Enqueue a task and get a future for its result.
  template <typename F>
  auto SubmitWithResult(F&& f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    Submit([task] { (*task)(); });
    return fut;
  }

  /// Block until the queue is empty and all workers are idle.
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
  }

  size_t num_threads() const { return workers_.size(); }

  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopped_) return;
      stopped_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
      if (w.joinable()) w.join();
    }
  }

 private:
  void WorkerLoop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopped_ || !queue_.empty(); });
        if (stopped_ && queue_.empty()) return;
        task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        --active_;
        if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  size_t active_ = 0;
  bool stopped_ = false;
};

}  // namespace e2lshos::util
