#include "storage/interface_model.h"

#include "util/clock.h"

namespace e2lshos::storage {

InterfaceSpec GetInterfaceSpec(InterfaceKind kind) {
  switch (kind) {
    case InterfaceKind::kIoUring:
      return {"io_uring", 1000, 0};
    case InterfaceKind::kSpdk:
      return {"SPDK", 350, 0};
    case InterfaceKind::kXlfdd:
      return {"XLFDD-if", 50, 0};
    case InterfaceKind::kMmapSync:
      // Page-fault + page-cache management cost per 4 kB miss; the paper
      // attributes ~40% of mmap query time to CPU I/O overhead.
      return {"mmap-sync", 4000, 0};
  }
  return {"unknown", 0, 0};
}

std::vector<std::pair<InterfaceKind, std::string>> AllInterfaceKinds() {
  return {{InterfaceKind::kIoUring, "io_uring"},
          {InterfaceKind::kSpdk, "SPDK"},
          {InterfaceKind::kXlfdd, "XLFDD-if"},
          {InterfaceKind::kMmapSync, "mmap-sync"}};
}

Status ChargedDevice::SubmitRead(const IoRequest& req) {
  // The CPU cost is paid whether or not the submission succeeds: a full
  // queue is discovered only after talking to the device.
  util::BusySpinNs(spec_.submit_overhead_ns);
  io_cpu_ns_.fetch_add(spec_.submit_overhead_ns, std::memory_order_relaxed);
  return inner_->SubmitRead(req);
}

size_t ChargedDevice::PollCompletions(IoCompletion* out, size_t max) {
  const size_t n = inner_->PollCompletions(out, max);
  if (n > 0 && spec_.poll_overhead_ns > 0) {
    util::BusySpinNs(spec_.poll_overhead_ns * n);
    io_cpu_ns_.fetch_add(spec_.poll_overhead_ns * n, std::memory_order_relaxed);
  }
  return n;
}

uint32_t ChargedDevice::max_queues() const {
  MultiQueueDevice* mq = inner_->multi_queue();
  return mq != nullptr ? mq->max_queues() : 0;
}

Result<std::unique_ptr<BlockDevice>> ChargedDevice::CreateQueue(
    const QueueOptions& options) {
  MultiQueueDevice* mq = inner_->multi_queue();
  if (mq == nullptr) {
    return Status::FailedPrecondition(
        "inner device " + inner_->name() + " has no native queues");
  }
  E2_ASSIGN_OR_RETURN(auto queue, mq->CreateQueue(options));
  return std::unique_ptr<BlockDevice>(
      std::make_unique<ChargedDevice>(std::move(queue), spec_));
}

}  // namespace e2lshos::storage
