// E2LSHoS query processing (paper Sec. 5.4, Fig. 10).
//
// For each search radius R and compound hash l:
//   Step 1: hash the query, read the bucket address from the on-storage
//           hash table (one I/O) — skipped entirely for empty buckets
//           (DRAM bitmap).
//   Step 2: read the bucket block at that address (one I/O per block,
//           following the chain headers).
//   Step 3: check fingerprints, compute distances to surviving
//           candidates, update the top-k.
//
// To keep the device queue deep (the asynchronous regime of Fig. 1(B)),
// the engine interleaves many query contexts: while one query waits for
// data, others hash, issue, and distance-check. A context moves to the
// next radius only when all its probes for the current radius have
// drained; a query completes when the k-th best distance is within c*R
// (the (R,c)-NN ladder guarantee) or the ladder is exhausted.
//
// The synchronous mode (EngineOptions::synchronous) caps the queue depth
// at one outstanding I/O — the Fig. 1(A) baseline of Sec. 6.5.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/storage_index.h"
#include "data/dataset.h"
#include "util/aligned_buffer.h"
#include "util/topk.h"

namespace e2lshos::core {

struct EngineOptions {
  uint32_t num_contexts = 32;       ///< Queries processed concurrently.
  uint32_t max_inflight_ios = 256;  ///< Outstanding I/O cap (queue depth).
  bool synchronous = false;         ///< Fig. 1(A): one blocking I/O at a time.
  /// Register the engine's I/O arena with the device at construction so
  /// reads can go out as fixed-buffer I/O (UringDevice: READ_FIXED, no
  /// per-I/O page pinning). Best-effort: devices without support — or a
  /// shared device already holding a registration — run unregistered.
  bool register_fixed_buffers = false;
};

/// \brief Per-query instrumentation (drives the Sec. 4 analysis benches).
struct QueryStats {
  uint32_t radii_searched = 0;
  uint64_t ios = 0;                ///< Table reads + bucket block reads.
  uint64_t table_reads = 0;
  uint64_t bucket_block_reads = 0;
  uint64_t buckets_probed = 0;     ///< Non-empty buckets visited.
  uint64_t candidates = 0;         ///< Distinct candidates distance-checked.
  uint64_t fp_rejects = 0;         ///< Fingerprint mismatches discarded.
  uint64_t dup_skips = 0;          ///< Candidates seen more than once.
  uint64_t tombstone_skips = 0;    ///< Removed objects filtered out.
  uint64_t io_errors = 0;          ///< Failed reads / invalid entries skipped.
  uint64_t corrupt_blocks = 0;     ///< CRC-mismatched blocks/sectors dropped.
  uint64_t dropped_candidates = 0; ///< Entries discarded with corrupt blocks.
  /// Probes were dropped (I/O errors or checksum failures): the result is
  /// best-effort over the candidates that survived, never an error.
  bool partial = false;
  uint64_t wall_ns = 0;            ///< Query issue-to-answer latency.
};

/// \brief Results of a batch run.
struct BatchResult {
  std::vector<std::vector<util::Neighbor>> results;
  std::vector<QueryStats> stats;
  uint64_t wall_ns = 0;     ///< Whole-batch wall time.
  uint64_t compute_ns = 0;  ///< CPU time in hashing + distance checking.

  double MeanIos() const {
    if (stats.empty()) return 0.0;
    uint64_t total = 0;
    for (const auto& s : stats) total += s.ios;
    return static_cast<double>(total) / static_cast<double>(stats.size());
  }
  double MeanRadii() const {
    if (stats.empty()) return 0.0;
    uint64_t total = 0;
    for (const auto& s : stats) total += s.radii_searched;
    return static_cast<double>(total) / static_cast<double>(stats.size());
  }
  double QueriesPerSecond() const {
    if (wall_ns == 0) return 0.0;
    return static_cast<double>(results.size()) * 1e9 / static_cast<double>(wall_ns);
  }
};

class QueryEngine {
 public:
  /// The index and base dataset must outlive the engine. The device used
  /// is the one the index was built on.
  QueryEngine(const StorageIndex* index, const data::Dataset* base,
              const EngineOptions& options = {});

  /// Run top-k ANNS for every query in `queries`.
  Result<BatchResult> SearchBatch(const data::Dataset& queries, uint32_t k);

  /// Convenience: single query.
  Result<std::vector<util::Neighbor>> Search(const float* query, uint32_t k,
                                             QueryStats* stats = nullptr);

  /// True when the I/O arena was successfully registered with the device
  /// (EngineOptions::register_fixed_buffers accepted by the backend).
  bool fixed_buffers_active() const { return fixed_buffers_active_; }

 private:
  struct PendingIssue {
    uint64_t addr = 0;
    uint32_t expected_fp = 0;
    bool is_table = false;
    uint32_t chain_budget = 0;  ///< Remaining blocks this chain may span.
  };

  struct Context {
    int64_t query_idx = -1;  // -1 = idle
    const float* q = nullptr;
    std::unique_ptr<util::TopK> topk;
    std::unordered_set<uint32_t> checked;
    uint32_t radius_idx = 0;
    uint64_t checked_in_radius = 0;
    bool draining = false;  // candidate cap S reached for this radius
    uint32_t pending_ios = 0;
    std::deque<PendingIssue> to_issue;
    uint64_t start_ns = 0;
    QueryStats stats;
    std::vector<uint32_t> hashes;  // query hash32 per l at current radius
  };

  struct IoSlot {
    /// Slice of arena_ (slot_bytes wide, device-alignment aligned) — one
    /// contiguous arena, registrable with the device as a single fixed
    /// buffer, instead of per-slot allocations.
    uint8_t* buf = nullptr;
    uint32_t ctx = 0;
    uint32_t expected_fp = 0;
    bool is_table = false;
    bool in_use = false;
    uint32_t chain_budget = 0;
    /// Device byte address of the requested entry/block (pre-widening):
    /// locates the covering table sector for checksum verification.
    uint64_t addr = 0;
    /// Offset of the wanted bytes inside `buf`: table-entry reads are
    /// issued sector-aligned (8-byte extents are rejected by O_DIRECT
    /// devices), so the entry may sit mid-sector.
    uint32_t buf_offset = 0;
  };

  void StartQuery(Context* ctx, int64_t query_idx, const float* q, uint32_t k);
  void BeginRadius(Context* ctx);
  /// Try to submit queued probes; returns true if anything was submitted.
  bool IssueFrom(Context* ctx);
  void HandleCompletion(const storage::IoCompletion& comp, BatchResult* out,
                        const data::Dataset& queries, uint32_t k);
  void ProcessBucketBlock(Context* ctx, const IoSlot& slot);
  /// Radius drained: advance the ladder or finish the query.
  void MaybeAdvance(Context* ctx, BatchResult* out, const data::Dataset& queries,
                    uint32_t k);
  void FinishQuery(Context* ctx, BatchResult* out);

  const StorageIndex* index_;
  const data::Dataset* base_;
  EngineOptions options_;

  std::vector<Context> contexts_;
  /// Backing store for every slot's buffer (slots_ point into it).
  util::AlignedBuffer arena_;
  bool fixed_buffers_active_ = false;
  std::vector<IoSlot> slots_;
  std::vector<uint32_t> free_slots_;
  uint32_t inflight_ = 0;

  // Batch progress.
  int64_t next_query_ = 0;
  int64_t total_queries_ = 0;
  int64_t completed_queries_ = 0;
  uint64_t compute_ns_ = 0;
  ObjectInfoCodec codec_;
  /// Epoch pinned for the duration of the current batch (see
  /// core/epoch.h): acquired once per SearchBatch — the micro-batch
  /// boundary — so every query in the batch sees one consistent
  /// snapshot of live mutations. Null when none were published; the
  /// engine then runs the legacy (built-image) path byte for byte.
  std::shared_ptr<const EpochState> epoch_;
  /// Object count the pinned epoch (or the index) vouches for.
  uint64_t effective_n_ = 0;
  uint32_t max_chain_blocks_ = 0;  ///< Chain-cycle guard (corruption).
  /// Granularity of table-entry reads: the device-advertised direct-I/O
  /// alignment (4096 on a 4Kn drive), never below one 512-byte sector.
  uint32_t table_read_bytes_ = storage::kSectorBytes;
};

}  // namespace e2lshos::core
