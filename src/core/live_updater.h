// core::LiveUpdater — index mutation concurrent with serving.
//
// IndexUpdater (core/updater.h) mutates the StorageIndex and the device
// in place and therefore requires external synchronization against
// queries. LiveUpdater removes that requirement with epoch publication
// (core/epoch.h): every mutation is staged so that *nothing a reader can
// currently observe changes* until an atomic publish makes the whole
// mutation visible at once.
//
// The staging discipline, writer side:
//
//   * The StorageIndex itself is frozen. n, tombstones, the non-empty
//     bitmap, the table-sector CRCs, and the on-device hash tables keep
//     their built/loaded values while serving — with one shard the query
//     engine reads the primary StorageIndex directly, so any in-place
//     field mutation would race. All live state (effective n, the
//     tombstone set, the chain-head overlay, inserted coordinates) lives
//     here and reaches readers only inside published EpochStates.
//
//   * Device blocks are copy-on-write against the published boundary.
//     Blocks allocated since the last publish are writer-private and may
//     be rewritten freely; a published head block is never rewritten —
//     appending to one either copies it to a fresh private block (the
//     old block leaks until a rebuild; inserts are expected to be rare
//     relative to reads) or, when full, prepends a fresh block whose
//     `next` points at it. At each publish the private allocation
//     boundary is rounded up to the device's read-modify-write window
//     so no staged write can ever touch a published byte — readers can
//     observe torn data only through a window overlap, and there is
//     none.
//
//   * Hash-table entries are NOT written while live: redirected chain
//     heads travel in the epoch's overlay map instead, so concurrent
//     table-sector reads keep verifying against the unchanged CRCs. The
//     entries (plus bitmap bits, sizes, tombstones, n) are synced into
//     the StorageIndex and the device by Flush(), which requires
//     quiescence (no queries in flight) — Index::Save provides it.
//
// Thread safety: any number of mutator threads may call
// Insert/Remove/Restore concurrently (an internal mutex serializes
// them); readers never take that mutex. Flush() additionally requires
// that no query is executing.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/epoch.h"
#include "core/layout.h"
#include "core/storage_index.h"
#include "util/status.h"

namespace e2lshos::core {

class LiveUpdater {
 public:
  /// \brief Update-side counters, surfaced through DeviceStats and the
  /// Stats RPC.
  struct Counters {
    uint64_t inserts = 0;
    uint64_t removes = 0;
    uint64_t restores = 0;
    uint64_t epochs_published = 0;
    /// Bytes actually written to the device by staging (whole RMW
    /// windows — the honest endurance number, as IndexUpdater reports).
    uint64_t staged_bytes = 0;
    /// Operations staged but not yet published (reader-visible lag;
    /// nonzero only mid-batch).
    uint64_t pending_ops = 0;
  };

  /// The index (and its device) must outlive the updater. Effective n
  /// starts at index->n(); ids below it resolve through the base dataset
  /// the readers hold, ids at or above it through rows stored here.
  explicit LiveUpdater(StorageIndex* index);

  LiveUpdater(const LiveUpdater&) = delete;
  LiveUpdater& operator=(const LiveUpdater&) = delete;

  /// Insert one row (dim = index->dim() floats); returns the assigned
  /// id (== effective n before the call) and publishes a new epoch.
  Result<uint32_t> Insert(const float* row);
  /// Insert `count` contiguous rows; assigns ids first_id..first_id+
  /// count-1 and publishes ONCE after the last row — mid-batch rows are
  /// not reader-visible. Returns the first id. On error, rows staged
  /// before the failure remain inserted and published.
  Result<uint32_t> InsertBatch(const float* rows, uint32_t count);

  /// Tombstone an id (idempotent) and publish. Ids never inserted are
  /// accepted — the tombstone simply never matches a candidate.
  Status Remove(uint32_t id);
  Status RemoveBatch(const uint32_t* ids, uint32_t count);

  /// Erase an id's tombstone (a no-op when none exists, including for
  /// ids never inserted) and publish.
  Status Restore(uint32_t id);
  Status RestoreBatch(const uint32_t* ids, uint32_t count);

  /// Sync all staged state into the StorageIndex and the device: write
  /// the redirected table entries (refreshing table-sector CRCs), set
  /// bitmap bits, install tombstones/n/sizes/next-block, then publish an
  /// epoch with an empty overlay. Requires quiescence: no query may be
  /// in flight. After Flush, SaveIndexMeta persists the mutated index.
  Status Flush();

  Counters counters() const;
  /// Sequence of the newest published epoch (0 = none yet).
  uint64_t epoch_seq() const;
  /// Effective object count (staged, including unpublished ops).
  uint64_t n() const;

 private:
  /// Read-modify-write page cache over the device for one staged row:
  /// reads are served from staged pages first (so a row sees blocks a
  /// previous row in the same batch wrote), writes accumulate and hit
  /// the device in one WriteBatch burst — or are discarded wholesale if
  /// the row fails, keeping every row all-or-nothing on the device.
  class StagedIo;

  /// Stage one row end to end and flush its pages; commits overlay/row
  /// state only when every (radius, l) pair succeeded. mu_ held.
  Status StageInsertLocked(const float* row, uint32_t* id_out);
  /// Snapshot the staged state into a new EpochState and publish it;
  /// advances the private-block boundary past the published bytes'
  /// last RMW window. mu_ held.
  void PublishLocked();
  /// Append a row's coordinates to the chunked store. mu_ held.
  void AppendRowLocked(const float* row);

  StorageIndex* index_;
  mutable std::mutex mu_;

  /// Private read lane for staging. ReadSync spin-polls the device it is
  /// called on, so staging reads through the shared device would steal
  /// (and be robbed of) serving completions; every in-tree backend hands
  /// out native queues, and the updater takes one for itself. Null only
  /// on a device with no native queues, where staging falls back to the
  /// shared device — safe only when nothing else polls it.
  std::unique_ptr<storage::BlockDevice> read_queue_;

  ObjectInfoCodec codec_;
  uint32_t page_bytes_ = 0;  ///< RMW window: max(io_alignment, 512).

  // Staged truth (superset of the latest published epoch).
  uint64_t next_id_ = 0;      ///< Effective n.
  uint64_t base_rows_ = 0;    ///< Frozen base-dataset row count.
  uint64_t next_block_ = 0;   ///< Private bump allocator cursor.
  uint64_t private_floor_ = 0;  ///< Blocks >= this are writer-private.
  std::unordered_map<uint64_t, uint64_t> overlay_;
  std::unordered_set<uint32_t> tombstones_;
  static constexpr uint32_t kRowsPerChunk = 1024;
  std::vector<std::unique_ptr<float[]>> row_chunks_;
  uint64_t rows_ = 0;

  // Deltas applied to index_->sizes_ at Flush time.
  uint64_t staged_blocks_ = 0;
  uint64_t staged_entries_ = 0;
  uint64_t staged_new_slots_ = 0;

  // Copy-on-publish snapshots, reused while their ingredient is clean.
  bool overlay_dirty_ = true;
  bool tombstones_dirty_ = true;
  bool rows_dirty_ = true;
  std::shared_ptr<const std::unordered_map<uint64_t, uint64_t>> pub_overlay_;
  std::shared_ptr<const std::unordered_set<uint32_t>> pub_tombstones_;
  std::shared_ptr<const std::vector<const float*>> pub_chunks_;

  uint64_t seq_ = 0;
  Counters counters_;
};

}  // namespace e2lshos::core
