#include "data/io.h"

#include <cstdint>
#include <cstdio>
#include <vector>

namespace e2lshos::data {

namespace {

// Shared reader: `bytes_per_value` distinguishes fvecs (4) from bvecs (1).
Result<Dataset> LoadVecs(const std::string& path, uint64_t max_vectors,
                         bool byte_values) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::NotFound("cannot open " + path);

  int32_t dim = 0;
  if (std::fread(&dim, sizeof(dim), 1, f) != 1 || dim <= 0 || dim > (1 << 20)) {
    std::fclose(f);
    return Status::InvalidArgument(path + ": bad leading dimension");
  }
  std::fseek(f, 0, SEEK_SET);

  Dataset ds(path, static_cast<uint32_t>(dim));
  std::vector<float> row(dim);
  std::vector<uint8_t> brow(dim);
  while (max_vectors == 0 || ds.n() < max_vectors) {
    int32_t d = 0;
    if (std::fread(&d, sizeof(d), 1, f) != 1) break;  // clean EOF
    if (d != dim) {
      std::fclose(f);
      return Status::InvalidArgument(path + ": inconsistent dimensions");
    }
    if (byte_values) {
      if (std::fread(brow.data(), 1, brow.size(), f) != brow.size()) {
        std::fclose(f);
        return Status::InvalidArgument(path + ": truncated vector");
      }
      for (int32_t j = 0; j < dim; ++j) row[j] = static_cast<float>(brow[j]);
    } else {
      if (std::fread(row.data(), sizeof(float), row.size(), f) != row.size()) {
        std::fclose(f);
        return Status::InvalidArgument(path + ": truncated vector");
      }
    }
    ds.Append(row.data());
  }
  std::fclose(f);
  if (ds.n() == 0) return Status::InvalidArgument(path + ": no vectors");
  return ds;
}

}  // namespace

Result<Dataset> LoadFvecs(const std::string& path, uint64_t max_vectors) {
  return LoadVecs(path, max_vectors, /*byte_values=*/false);
}

Result<Dataset> LoadBvecs(const std::string& path, uint64_t max_vectors) {
  return LoadVecs(path, max_vectors, /*byte_values=*/true);
}

Status SaveFvecs(const Dataset& dataset, const std::string& path) {
  if (dataset.n() == 0) return Status::InvalidArgument("empty dataset");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open " + path + " for write");
  const int32_t dim = static_cast<int32_t>(dataset.dim());
  for (uint64_t i = 0; i < dataset.n(); ++i) {
    if (std::fwrite(&dim, sizeof(dim), 1, f) != 1 ||
        std::fwrite(dataset.Row(i), sizeof(float), dataset.dim(), f) !=
            dataset.dim()) {
      std::fclose(f);
      return Status::IoError("short write to " + path);
    }
  }
  std::fclose(f);
  return Status::OK();
}

Result<Dataset> LoadVectorFile(const std::string& path, uint64_t max_vectors) {
  // Dispatch on the extension anywhere in the suffix, so derived names
  // like "base.fvecs.queries" load with their parent's format.
  if (path.find(".fvecs") != std::string::npos) {
    return LoadFvecs(path, max_vectors);
  }
  if (path.find(".bvecs") != std::string::npos) {
    return LoadBvecs(path, max_vectors);
  }
  return Status::InvalidArgument("unknown vector file extension: " + path);
}

}  // namespace e2lshos::data
