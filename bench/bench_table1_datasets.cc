// Reproduces Table 1: the dataset corpus with hardness metrics
// (Relative Contrast and Local Intrinsic Dimensionality), printing our
// scaled synthetic stand-ins next to the paper's reference values.
#include "common.h"

#include "data/metrics.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);

  bench::PrintHeader("Table 1: Datasets (paper values in parentheses)",
                     {"Name", "n", "d", "Type", "RC (paper)", "LID (paper)",
                      "mean NN dist"});

  for (const auto& spec : data::PaperDatasets()) {
    if (!args.dataset.empty() && spec.name != args.dataset) continue;
    const uint64_t n = args.EffectiveN(spec);
    auto gen = data::MakeDataset(spec, n, 100);
    const auto gt = data::GroundTruth::Compute(gen.base, gen.queries, 20);
    const auto m = data::EstimateHardness(gen.base, gen.queries, gt);
    bench::PrintRow({spec.name, std::to_string(gen.base.n()),
                     std::to_string(gen.base.dim()), spec.paper_type,
                     bench::Fmt(m.rc) + " (" + bench::Fmt(spec.paper_rc) + ")",
                     bench::Fmt(m.lid, 1) + " (" + bench::Fmt(spec.paper_lid, 1) + ")",
                     bench::Fmt(m.mean_nn_distance)});
  }
  return 0;
}
