// Query latency under a concurrent writer (no single paper figure;
// quantifies the PR's live-mutation subsystem, core/live_updater.h):
// production ANN services take inserts while they serve, and the epoch
// publication design claims readers never block on writers. This bench
// puts a number on the residual interference.
//
// One cell = shards x target update rate on sim:cssd: the index serves
// a paced query stream through Index::Serve while a writer thread
// paces Index::Insert at the target rate (closed-loop when the device
// can't sustain it — the achieved rate is reported). Per cell: serving
// p50/p99 and QPS from the server's merged recorders, plus the update
// counters (updates_applied / epochs_published / update_staged_bytes)
// from DeviceStats.
//
// Headline acceptance cells: at the highest shard count, query p99
// with the writer running at the top update rate must stay within 2x
// of the no-writes p99 (headline_p99_ratio < 2). Those rows carry the
// headline_* keys bench/run_all.sh folds into BENCH_<n>.json.
#include "common.h"

#include <atomic>
#include <chrono>
#include <thread>

#include "api/index.h"

using namespace e2lshos;

namespace {

/// Pace `total` calls of `op` at `rate` per second (closed-loop when
/// rate == 0 is not used here; the writer breaks out via `stop`).
template <typename Op>
uint64_t PacedLoop(uint64_t rate, const std::atomic<bool>& stop, Op op) {
  const auto t0 = std::chrono::steady_clock::now();
  uint64_t done = 0;
  while (!stop.load(std::memory_order_relaxed)) {
    const auto due =
        t0 + std::chrono::nanoseconds(done * 1000000000ull / rate);
    std::this_thread::sleep_until(due);
    if (stop.load(std::memory_order_relaxed)) break;
    if (!op(done)) break;
    ++done;
  }
  return done;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  auto json = args.OpenJson();
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  const uint64_t n = args.n ? args.n : 2000;
  // Queries per cell; every cell answers the same paced stream so p99
  // differences isolate the writer's interference.
  const uint64_t nq = args.queries ? args.queries : (args.fast ? 96 : 256);
  // Below the knee in every cell (sim:cssd sustains ~800/s at these
  // engine shapes even with the writer on): p99 then measures genuine
  // interference from staging/publication, not unbounded queue growth.
  const uint64_t arrival_qps = 400;

  auto w = bench::MakeWorkload(*spec, n, 32, 1);
  if (!w.ok()) {
    std::fprintf(stderr, "workload: %s\n", w.status().ToString().c_str());
    return 1;
  }
  // Rows the writer inserts: same distribution, disjoint seed. Sized to
  // the id headroom the layout reserves (one spare bit over n).
  data::GeneratorSpec egen = spec->gen;
  egen.seed = spec->gen.seed + 4242;
  const uint64_t extra_cap = n;  // never exceeds the spare id bit
  data::GeneratedData extras = data::Generate("extras", extra_cap, 0, egen);

  std::vector<uint32_t> shard_counts = {1};
  if (!args.fast) shard_counts.push_back(2);
  if (args.shards != 0) shard_counts = {args.shards};
  // A SIFT insert stages ~50 CoW blocks + their RMW reads, so sim:cssd
  // closed-loops near 45/s: 20/s is a genuinely paced rate, 100/s runs
  // the writer flat out (the achieved rate is what's reported).
  const uint64_t update_rates[] = {0, 20, 100};
  const uint32_t max_shards = shard_counts.back();

  bench::PrintHeader(
      "Query p99 under concurrent inserts on sim:cssd (" + name +
          ", n=" + std::to_string(n) + ", " + std::to_string(nq) +
          " queries @ " + std::to_string(arrival_qps) + "/s)",
      {"shards", "target up/s", "achieved up/s", "QPS", "p50 us", "p99 us",
       "epochs"});

  int failures = 0;
  for (const uint32_t shards : shard_counts) {
    double p99_nowrites_us = 0.0;
    for (const uint64_t rate : update_rates) {
      // A fresh build per cell: inserts from the previous cell must not
      // grow this cell's index or id space.
      IndexSpec is;
      is.lsh.rho = 0.25;
      is.device_uri = args.device.empty() ? "sim:cssd" : args.device;
      is.device_capacity = 2ULL << 30;
      auto idx = Index::Build(is, w->gen.base /* copy */);
      if (!idx.ok()) {
        std::fprintf(stderr, "build: %s\n", idx.status().ToString().c_str());
        return 1;
      }
      ServeSpec serve;
      serve.k = 10;
      serve.max_batch_size = 16;
      serve.search.shards = shards;
      auto served = (*idx)->Serve(serve);
      if (!served.ok()) {
        std::fprintf(stderr, "serve: %s\n",
                     served.status().ToString().c_str());
        return 1;
      }
      auto server = std::move(*served);

      std::atomic<bool> stop_writer{false};
      uint64_t inserted = 0;
      std::thread writer;
      if (rate > 0) {
        writer = std::thread([&] {
          inserted = PacedLoop(rate, stop_writer, [&](uint64_t i) {
            return (*idx)->Insert(extras.base.Row(i % extras.base.n())).ok();
          });
        });
      }

      // The measured stream: nq paced submissions, then drain. The
      // writer keeps running through the drain so tail queries still
      // contend with publication.
      const auto t0 = std::chrono::steady_clock::now();
      std::atomic<bool> never{false};
      uint64_t submitted = 0;
      PacedLoop(arrival_qps, never, [&](uint64_t i) {
        if (i >= nq) return false;
        ++submitted;
        return server->Submit(w->gen.queries.Row(i % w->gen.queries.n()))
            .ok();
      });
      server->Close();
      server->Wait();
      const double elapsed_s =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const auto snap = server->stats();
      stop_writer.store(true, std::memory_order_relaxed);
      if (writer.joinable()) writer.join();
      const auto dstats = (*idx)->device_stats();
      server.reset();  // before the index

      const double achieved_rate =
          elapsed_s > 0 ? static_cast<double>(inserted) / elapsed_s : 0.0;
      const double p50_us = static_cast<double>(snap.p50_ns) / 1e3;
      const double p99_us = static_cast<double>(snap.p99_ns) / 1e3;
      const double qps = snap.overall_qps;
      if (rate == 0) p99_nowrites_us = p99_us;
      if (snap.completed != submitted || snap.failed != 0) ++failures;

      bench::PrintRow({std::to_string(shards), std::to_string(rate),
                       bench::Fmt(achieved_rate, 0), bench::Fmt(qps, 0),
                       bench::Fmt(p50_us, 1), bench::Fmt(p99_us, 1),
                       std::to_string(dstats.epochs_published)});
      if (json != nullptr) {
        util::JsonRow row;
        row.Set("bench", "update_serving")
            .Set("dataset", name)
            .Set("n", w->n())
            .Set("shards", shards)
            .Set("update_rate_target", rate)
            .Set("update_rate_achieved", achieved_rate)
            .Set("arrival_qps", arrival_qps)
            .Set("queries", nq)
            .Set("completed", snap.completed)
            .Set("failed", snap.failed)
            .Set("inserted", inserted)
            .Set("updates_applied", dstats.updates_applied)
            .Set("epochs_published", dstats.epochs_published)
            .Set("update_staged_bytes", dstats.update_staged_bytes)
            .Set("update_lag", dstats.update_lag)
            .Set("qps", qps)
            .Set("p50_us", p50_us)
            .Set("p99_us", p99_us);
        // The acceptance cells: top shard count at the top update rate
        // vs. its own no-writes baseline.
        if (shards == max_shards && rate == update_rates[2] &&
            p99_nowrites_us > 0) {
          row.Set("headline_p99_us_writes", p99_us)
              .Set("headline_p99_us_nowrites", p99_nowrites_us)
              .Set("headline_p99_ratio", p99_us / p99_nowrites_us);
        }
        json->Write(row);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape: p99 at a nonzero update rate stays within 2x of the "
      "same\nshard count's no-writes p99 — readers pick epochs up at "
      "micro-batch\nboundaries and never block on the writer; the residual "
      "interference is the\ndevice-level contention of staging I/O with "
      "query reads.\n");
  return failures == 0 ? 0 : 1;
}
