// Tests for index persistence: build an index on a real file, save the
// metadata, reopen everything in a "new process" (fresh objects), and
// verify queries produce identical answers.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

#include "core/builder.h"
#include "core/persistence.h"
#include "core/query_engine.h"
#include "data/generators.h"
#include "storage/file_device.h"
#include "storage/memory_device.h"

namespace e2lshos::core {
namespace {

struct TestData {
  data::GeneratedData gen;
  lsh::E2lshParams params;
};

TestData MakeData(uint64_t n = 3000, uint32_t dim = 24) {
  TestData t;
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = 9;
  t.gen = data::Generate("persist", n, 25, spec);
  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = 1000.0;  // no truncation: answers must match exactly
  cfg.x_max = t.gen.base.XMax();
  auto params = lsh::ComputeParams(n, dim, cfg);
  EXPECT_TRUE(params.ok());
  t.params = *params;
  return t;
}

TEST(Persistence, SaveLoadRoundTripsMetadata) {
  auto t = MakeData();
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  ASSERT_TRUE(dev.ok());
  auto idx = IndexBuilder::Build(t.gen.base, t.params, dev->get());
  ASSERT_TRUE(idx.ok());

  const std::string meta = ::testing::TempDir() + "/e2_meta_roundtrip.bin";
  ASSERT_TRUE(SaveIndexMeta(**idx, meta).ok());
  auto loaded = LoadIndexMeta(meta, dev->get());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  EXPECT_EQ((*loaded)->n(), (*idx)->n());
  EXPECT_EQ((*loaded)->dim(), (*idx)->dim());
  EXPECT_EQ((*loaded)->layout().L, (*idx)->layout().L);
  EXPECT_EQ((*loaded)->layout().fp.u, (*idx)->layout().fp.u);
  EXPECT_EQ((*loaded)->params().S, (*idx)->params().S);
  EXPECT_EQ((*loaded)->params().radii.size(), (*idx)->params().radii.size());
  EXPECT_EQ((*loaded)->sizes().storage_bytes, (*idx)->sizes().storage_bytes);
  std::remove(meta.c_str());
}

TEST(Persistence, ReopenedFileIndexAnswersIdentically) {
  auto t = MakeData();
  const std::string image = ::testing::TempDir() + "/e2_persist_image.bin";
  const std::string meta = ::testing::TempDir() + "/e2_persist_meta.bin";

  std::vector<std::vector<util::Neighbor>> before;
  {
    storage::FileDevice::Options opt;
    opt.capacity = 2ULL << 30;
    opt.io_threads = 2;
    auto dev = storage::FileDevice::Create(image, opt);
    ASSERT_TRUE(dev.ok());
    auto idx = IndexBuilder::Build(t.gen.base, t.params, dev->get());
    ASSERT_TRUE(idx.ok());
    ASSERT_TRUE(SaveIndexMeta(**idx, meta).ok());

    QueryEngine engine(idx->get(), &t.gen.base);
    auto batch = engine.SearchBatch(t.gen.queries, 5);
    ASSERT_TRUE(batch.ok());
    before = batch->results;
  }  // device and index destroyed: "process exit"

  {
    storage::FileDevice::Options opt;
    opt.io_threads = 2;
    auto dev = storage::FileDevice::Open(image, opt);
    ASSERT_TRUE(dev.ok()) << dev.status().ToString();
    auto idx = LoadIndexMeta(meta, dev->get());
    ASSERT_TRUE(idx.ok()) << idx.status().ToString();

    QueryEngine engine(idx->get(), &t.gen.base);
    auto batch = engine.SearchBatch(t.gen.queries, 5);
    ASSERT_TRUE(batch.ok());
    ASSERT_EQ(batch->results.size(), before.size());
    for (size_t q = 0; q < before.size(); ++q) {
      ASSERT_EQ(batch->results[q].size(), before[q].size()) << "query " << q;
      for (size_t i = 0; i < before[q].size(); ++i) {
        EXPECT_EQ(batch->results[q][i].id, before[q][i].id);
        EXPECT_FLOAT_EQ(batch->results[q][i].dist, before[q][i].dist);
      }
    }
  }
  std::remove(image.c_str());
  std::remove(meta.c_str());
}

TEST(Persistence, RejectsCorruptMagic) {
  const std::string path = ::testing::TempDir() + "/e2_bad_magic.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("NOTANIDX-GARBAGE", f);
  std::fclose(f);
  auto dev = storage::MemoryDevice::Create(1 << 20);
  ASSERT_TRUE(dev.ok());
  EXPECT_FALSE(LoadIndexMeta(path, dev->get()).ok());
  std::remove(path.c_str());
}

TEST(Persistence, RejectsMissingFileAndNullDevice) {
  auto dev = storage::MemoryDevice::Create(1 << 20);
  ASSERT_TRUE(dev.ok());
  EXPECT_EQ(LoadIndexMeta("/nonexistent/meta.bin", dev->get()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LoadIndexMeta("/tmp/whatever.bin", nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Persistence, RejectsTooSmallDevice) {
  auto t = MakeData();
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  ASSERT_TRUE(dev.ok());
  auto idx = IndexBuilder::Build(t.gen.base, t.params, dev->get());
  ASSERT_TRUE(idx.ok());
  const std::string meta = ::testing::TempDir() + "/e2_meta_small.bin";
  ASSERT_TRUE(SaveIndexMeta(**idx, meta).ok());
  auto tiny = storage::MemoryDevice::Create(1 << 16);
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(LoadIndexMeta(meta, tiny->get()).status().code(),
            StatusCode::kOutOfRange);
  std::remove(meta.c_str());
}

TEST(Persistence, TruncatedFileRejected) {
  auto t = MakeData(800);
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  ASSERT_TRUE(dev.ok());
  auto idx = IndexBuilder::Build(t.gen.base, t.params, dev->get());
  ASSERT_TRUE(idx.ok());
  const std::string meta = ::testing::TempDir() + "/e2_meta_trunc.bin";
  ASSERT_TRUE(SaveIndexMeta(**idx, meta).ok());
  // Truncate the tail off.
  ::truncate(meta.c_str(), 64);
  EXPECT_FALSE(LoadIndexMeta(meta, dev->get()).ok());
  std::remove(meta.c_str());
}

}  // namespace
}  // namespace e2lshos::core
