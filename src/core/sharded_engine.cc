#include "core/sharded_engine.h"

#include <algorithm>
#include <future>
#include <thread>

#include "util/clock.h"

namespace e2lshos::core {

std::vector<ShardRange> PartitionBatch(uint64_t n, uint32_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  std::vector<ShardRange> ranges(num_shards);
  const uint64_t base = n / num_shards;
  const uint64_t extra = n % num_shards;
  uint64_t cursor = 0;
  for (uint32_t s = 0; s < num_shards; ++s) {
    ranges[s].begin = cursor;
    cursor += base + (s < extra ? 1 : 0);
    ranges[s].end = cursor;
  }
  return ranges;
}

BatchResult MergeShardResults(std::vector<BatchResult>&& shard_results,
                              const std::vector<ShardRange>& ranges,
                              uint64_t batch_wall_ns) {
  BatchResult out;
  uint64_t total = 0;
  for (const auto& r : ranges) total = std::max(total, r.end);
  out.results.resize(total);
  out.stats.resize(total);
  for (size_t s = 0; s < ranges.size() && s < shard_results.size(); ++s) {
    BatchResult& shard = shard_results[s];
    // Results and stats are bounded independently: a caller-built shard
    // result may carry fewer (or no) stats entries.
    const uint64_t nr = std::min<uint64_t>(ranges[s].size(), shard.results.size());
    for (uint64_t i = 0; i < nr; ++i) {
      out.results[ranges[s].begin + i] = std::move(shard.results[i]);
    }
    const uint64_t ns = std::min<uint64_t>(ranges[s].size(), shard.stats.size());
    for (uint64_t i = 0; i < ns; ++i) {
      out.stats[ranges[s].begin + i] = shard.stats[i];
    }
    out.compute_ns += shard.compute_ns;
  }
  // Whole-batch wall time from one clock, NOT the sum of per-shard wall
  // times: shards run in parallel, so the sum can exceed the true batch
  // latency by up to the shard count.
  out.wall_ns = batch_wall_ns;
  return out;
}

uint32_t ResolveShardCount(uint32_t requested) {
  if (requested == 0) {
    requested = std::max(1u, std::thread::hardware_concurrency());
  }
  return std::min(requested, kMaxShards);
}

ShardedQueryEngine::ShardedQueryEngine(const StorageIndex* index,
                                       const data::Dataset* base,
                                       const ShardOptions& options)
    : index_(index), base_(base) {
  uint32_t shards = ResolveShardCount(options.num_shards);
  // Never more shards than the global budgets: each engine needs at
  // least one context and one in-flight I/O to make progress, and the
  // per-shard floor of one would otherwise let the total outstanding
  // I/O exceed the configured queue-depth cap.
  shards = std::min(shards, std::max(1u, options.total_contexts));
  shards = std::min(shards, std::max(1u, options.total_inflight_ios));

  shard_opts_.num_contexts = std::max(1u, options.total_contexts / shards);
  shard_opts_.max_inflight_ios = std::max(1u, options.total_inflight_ios / shards);
  shard_opts_.synchronous = options.synchronous;
  shard_opts_.register_fixed_buffers = options.register_fixed_buffers;

  if (shards == 1 && !options.wrap_shard_device) {
    // Degenerate case: one engine straight on the index's device — no
    // queue indirection, no worker thread, no batch slicing.
    engines_.push_back(std::make_unique<QueryEngine>(index_, base_, shard_opts_));
    return;
  }

  // One device queue per shard: native rings when the device offers them
  // (and policy allows), the QueueRouter shim otherwise.
  storage::AcquireOptions aq;
  aq.queue.queue_capacity = shard_opts_.max_inflight_ios;
  aq.force_router = options.queue_mode == QueueMode::kRouter;
  aq.max_native = options.max_native_queues;
  storage::QueueSet queue_set =
      storage::AcquireQueues(index_->device(), shards, aq);
  native_queues_ = queue_set.native;
  router_ = std::move(queue_set.router);

  shard_devices_.reserve(shards);
  views_.reserve(shards);
  engines_.reserve(shards);
  for (uint32_t s = 0; s < shards; ++s) {
    std::unique_ptr<storage::BlockDevice> queue =
        std::move(queue_set.queues[s]);
    if (options.wrap_shard_device) {
      queue = options.wrap_shard_device(std::move(queue));
    }
    shard_devices_.push_back(std::move(queue));
    views_.push_back(index_->WithDevice(shard_devices_.back().get()));
    engines_.push_back(std::make_unique<QueryEngine>(views_.back().get(), base_,
                                                     shard_opts_));
  }
  pool_ = std::make_unique<util::ThreadPool>(shards);
}

Result<BatchResult> ShardedQueryEngine::SearchBatch(const data::Dataset& queries,
                                                    uint32_t k) {
  if (queries.dim() != base_->dim()) {
    return Status::InvalidArgument("query dimension mismatch");
  }
  if (k == 0) return Status::InvalidArgument("k must be > 0");

  if (pool_ == nullptr) {
    // Single-shard fast path: run inline on the caller's thread.
    return engines_[0]->SearchBatch(queries, k);
  }

  const std::vector<ShardRange> ranges = PartitionBatch(queries.n(), num_shards());

  // Contiguous per-shard query slices (the engine API takes a Dataset;
  // the one-time copy is tiny next to the base data, and keeps every
  // shard's working set on its own cache lines).
  std::vector<data::Dataset> slices(ranges.size());
  for (size_t s = 0; s < ranges.size(); ++s) {
    if (ranges[s].size() == 0) continue;
    data::Dataset slice(queries.name(), queries.dim());
    slice.mutable_data().assign(
        queries.Row(ranges[s].begin),
        queries.Row(ranges[s].begin) + ranges[s].size() * queries.dim());
    slice.set_n(ranges[s].size());
    slices[s] = std::move(slice);
  }

  std::vector<std::future<Result<BatchResult>>> futures(ranges.size());
  const uint64_t batch_start = util::NowNs();
  for (size_t s = 0; s < ranges.size(); ++s) {
    if (ranges[s].size() == 0) continue;
    QueryEngine* engine = engines_[s].get();
    const data::Dataset* slice = &slices[s];
    futures[s] = pool_->SubmitWithResult(
        [engine, slice, k] { return engine->SearchBatch(*slice, k); });
  }

  // Collect every shard before acting on errors: outstanding futures
  // reference the slices above.
  std::vector<BatchResult> shard_results(ranges.size());
  Status first_error = Status::OK();
  for (size_t s = 0; s < ranges.size(); ++s) {
    if (!futures[s].valid()) continue;
    Result<BatchResult> r = futures[s].get();
    if (!r.ok()) {
      if (first_error.ok()) first_error = r.status();
      continue;
    }
    shard_results[s] = std::move(r).value();
  }
  const uint64_t batch_wall_ns = util::NowNs() - batch_start;
  if (!first_error.ok()) return first_error;

  return MergeShardResults(std::move(shard_results), ranges, batch_wall_ns);
}

}  // namespace e2lshos::core
