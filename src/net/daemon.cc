#include "net/daemon.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/socket.h"
#include "util/clock.h"

namespace e2lshos::net {

namespace {

/// Best-effort error frame for input we could not parse at all: type is
/// the bare response bit (the request type is unknown or untrusted),
/// code is kProtocolError.
std::vector<uint8_t> ProtocolErrorFrame(uint64_t request_id,
                                        const std::string& message) {
  Writer w;
  w.Begin(kResponseBit, request_id);
  w.U8(static_cast<uint8_t>(WireCode::kProtocolError));
  w.Str(message);
  return w.Finish();
}

}  // namespace

Daemon::Daemon(DaemonOptions options) : options_(std::move(options)) {
  // The stop pipe exists from construction so RequestStop() is safe to
  // call (e.g. from a signal handler installed early) at any time.
  if (::pipe(stop_pipe_) == 0) {
    ::fcntl(stop_pipe_[0], F_SETFD, FD_CLOEXEC);
    ::fcntl(stop_pipe_[1], F_SETFD, FD_CLOEXEC);
  }
}

Daemon::~Daemon() {
  RequestStop();
  Wait();
  CloseFd(stop_pipe_[0]);
  CloseFd(stop_pipe_[1]);
}

Status Daemon::AddIndex(const std::string& name,
                        std::unique_ptr<Index> index) {
  if (name.empty()) return Status::InvalidArgument("index name is empty");
  if (index == nullptr) return Status::InvalidArgument("index is null");
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) {
    return Status::FailedPrecondition("AddIndex after Start");
  }
  auto entry = std::make_unique<IndexEntry>();
  entry->name = name;
  entry->index = std::move(index);
  if (!indexes_.emplace(name, std::move(entry)).second) {
    return Status::InvalidArgument("index '" + name +
                                   "' is already registered");
  }
  return Status::OK();
}

Status Daemon::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (started_) return Status::FailedPrecondition("daemon already started");
  if (stop_pipe_[0] < 0) return Status::Internal("stop pipe unavailable");
  if (indexes_.empty()) {
    return Status::FailedPrecondition("no indexes registered");
  }
  if (options_.unix_path.empty() && options_.tcp_port < 0) {
    return Status::InvalidArgument(
        "no listener configured (set unix_path and/or tcp_port)");
  }
  if (options_.tcp_port > 65535) {
    return Status::InvalidArgument("tcp_port " +
                                   std::to_string(options_.tcp_port) +
                                   " out of range (0..65535)");
  }
  if (options_.max_frame_bytes < kHeaderBytes) {
    return Status::InvalidArgument("max_frame_bytes below the frame header");
  }

  auto abort_start = [this](const Status& st) {
    for (auto& [name, entry] : indexes_) entry->server.reset();
    CloseFd(unix_fd_);
    unix_fd_ = -1;
    CloseFd(tcp_fd_);
    tcp_fd_ = -1;
    return st;
  };

  for (auto& [name, entry] : indexes_) {
    ServeSpec spec = options_.serve;
    if (spec.k == 0) spec.k = 10;
    entry->default_k.store(spec.k, std::memory_order_relaxed);
    entry->sink.FailPending(Status::Internal("restart"));  // paranoia
    spec.on_result = entry->sink.Callback();
    auto server = entry->index->Serve(spec);
    if (!server.ok()) return abort_start(server.status());
    entry->server = std::move(*server);
  }

  if (!options_.unix_path.empty()) {
    auto fd = ListenUnix(options_.unix_path);
    if (!fd.ok()) return abort_start(fd.status());
    unix_fd_ = *fd;
  }
  if (options_.tcp_port >= 0) {
    auto fd = ListenTcp(options_.tcp_host,
                        static_cast<uint16_t>(options_.tcp_port));
    if (!fd.ok()) return abort_start(fd.status());
    tcp_fd_ = *fd;
    auto port = LocalPort(tcp_fd_);
    if (!port.ok()) return abort_start(port.status());
    tcp_port_ = *port;
  }

  started_ = true;
  joined_ = false;
  if (unix_fd_ >= 0) {
    accept_threads_.emplace_back([this] { AcceptLoop(unix_fd_); });
  }
  if (tcp_fd_ >= 0) {
    accept_threads_.emplace_back([this] { AcceptLoop(tcp_fd_); });
  }
  return Status::OK();
}

void Daemon::RequestStop() {
  // Async-signal-safe: one relaxed store and one pipe write. The byte
  // is never read back, so every accept loop's poll() and Wait() keep
  // seeing POLLIN no matter who looks first.
  stopping_.store(true, std::memory_order_relaxed);
  if (stop_pipe_[1] >= 0) {
    const char b = 's';
    [[maybe_unused]] ssize_t rc = ::write(stop_pipe_[1], &b, 1);
  }
}

void Daemon::Wait() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!started_ || joined_) return;

  // Block until RequestStop. The pipe byte is left unread (see above);
  // the timeout re-checks the flag in case the pipe write failed.
  pollfd pfd{stop_pipe_[0], POLLIN, 0};
  while (!stopping_.load(std::memory_order_relaxed)) {
    ::poll(&pfd, 1, 200);
  }

  // 1. Stop accepting: the loops see the stop pipe and exit.
  for (auto& t : accept_threads_) {
    if (t.joinable()) t.join();
  }
  accept_threads_.clear();
  CloseFd(unix_fd_);
  unix_fd_ = -1;
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  CloseFd(tcp_fd_);
  tcp_fd_ = -1;

  // 2. Drain connections. SHUT_RD wakes handlers blocked between
  // frames with a clean EOF while leaving the write side intact, so a
  // handler mid-request still collects its in-flight results and ships
  // the response before exiting — that is the drain guarantee.
  {
    std::lock_guard<std::mutex> conns_lock(conns_mu_);
    for (auto& c : conns_) ::shutdown(c->fd, SHUT_RD);
  }
  std::vector<std::unique_ptr<Connection>> all;
  {
    std::lock_guard<std::mutex> conns_lock(conns_mu_);
    all.swap(conns_);
  }
  for (auto& c : all) {
    if (c->thread.joinable()) c->thread.join();
    CloseFd(c->fd);
  }

  // 3. Only now stop the per-index servers: every submitted query was
  // already delivered (handlers joined), so Close() + Wait() is a
  // no-op drain, and no engine worker disappeared under a live query.
  for (auto& [name, entry] : indexes_) {
    if (entry->server != nullptr) {
      entry->server->Close();
      entry->server->Wait();
    }
    entry->sink.FailPending(
        Status::FailedPrecondition("daemon stopped"));
    entry->server.reset();
  }
  joined_ = true;
}

Status Daemon::Serve() {
  E2_RETURN_NOT_OK(Start());
  Wait();
  return Status::OK();
}

size_t Daemon::connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

void Daemon::AcceptLoop(int listen_fd) {
  for (;;) {
    pollfd fds[2] = {{listen_fd, POLLIN, 0}, {stop_pipe_[0], POLLIN, 0}};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (fds[1].revents != 0) return;  // stop requested
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED || errno == EAGAIN) {
        continue;
      }
      return;  // listener died
    }
    const int one = 1;
    // No-op (ENOTSUP) on the UNIX listener's children.
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Connection timeouts: a peer that stalls mid-frame (or never sends
    // one) gets its recv/send cut with kDeadlineExceeded and the handler
    // closes — it cannot pin a thread forever. Best-effort.
    if (options_.recv_timeout_ms > 0) {
      SetRecvTimeout(fd, options_.recv_timeout_ms);
    }
    if (options_.send_timeout_ms > 0) {
      SetSendTimeout(fd, options_.send_timeout_ms);
    }

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* c = conn.get();
    c->thread = std::thread([this, c] {
      HandleConnection(c->fd);
      c->done.store(true, std::memory_order_release);
    });
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    ReapConnections();
  }
}

void Daemon::ReapConnections() {
  std::vector<std::unique_ptr<Connection>> dead;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        dead.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& c : dead) {
    if (c->thread.joinable()) c->thread.join();
    CloseFd(c->fd);
  }
}

void Daemon::HandleConnection(int fd) {
  for (;;) {
    uint8_t lenbuf[4];
    bool eof = false;
    if (!ReadFull(fd, lenbuf, sizeof(lenbuf), &eof).ok() || eof) break;
    const uint32_t len = static_cast<uint32_t>(lenbuf[0]) |
                         (static_cast<uint32_t>(lenbuf[1]) << 8) |
                         (static_cast<uint32_t>(lenbuf[2]) << 16) |
                         (static_cast<uint32_t>(lenbuf[3]) << 24);
    if (Status st = ValidateFrameLength(len, options_.max_frame_bytes);
        !st.ok()) {
      // The length prefix itself is garbage: answer (best-effort) and
      // close this connection — the stream cannot be resynchronized.
      // The listener and every other connection keep serving.
      const auto frame = ProtocolErrorFrame(0, st.message());
      WriteFull(fd, frame.data(), frame.size());
      break;
    }
    std::vector<uint8_t> payload(len);
    if (!ReadFull(fd, payload.data(), len).ok()) break;

    std::vector<uint8_t> frame;
    const Status st = HandleFrame(payload.data(), payload.size(), &frame);
    if (!frame.empty() && !WriteFull(fd, frame.data(), frame.size()).ok()) {
      // Peer is gone; any results just collected are dropped here, on
      // the connection thread — never on a shard worker.
      break;
    }
    if (!st.ok()) break;  // protocol error: close after the error frame
    if (stopping_.load(std::memory_order_relaxed)) break;
  }
  // Signal EOF to the peer immediately; the fd itself is closed by the
  // reaper / Wait() after this thread is joined (no fd-reuse races).
  ::shutdown(fd, SHUT_RDWR);
}

Daemon::IndexEntry* Daemon::FindEntry(const std::string& name) {
  // indexes_ is immutable after Start (AddIndex rejects), so handler
  // threads read it without a lock.
  auto it = indexes_.find(name);
  return it == indexes_.end() ? nullptr : it->second.get();
}

Status Daemon::HandleFrame(const uint8_t* payload, size_t size,
                           std::vector<uint8_t>* frame) {
  Reader r(payload, size);
  FrameHeader hdr;
  if (Status st = r.Header(&hdr); !st.ok()) {
    *frame = ProtocolErrorFrame(0, st.message());
    return st;
  }
  Writer w;
  switch (static_cast<MsgType>(hdr.type)) {
    case MsgType::kPing: {
      if (Status st = r.ExpectEnd(); !st.ok()) {
        *frame = ProtocolErrorFrame(hdr.request_id, st.message());
        return st;
      }
      w.Begin(hdr.type | kResponseBit, hdr.request_id);
      EncodeStatus(&w, Status::OK());
      *frame = w.Finish();
      return Status::OK();
    }
    case MsgType::kSearch:
    case MsgType::kSearchBatch: {
      if (Status st = HandleSearchRequest(
              &r, hdr, static_cast<MsgType>(hdr.type) == MsgType::kSearchBatch,
              &w);
          !st.ok()) {
        *frame = ProtocolErrorFrame(hdr.request_id, st.message());
        return st;
      }
      *frame = w.Finish();
      return Status::OK();
    }
    case MsgType::kConfigure: {
      if (Status st = HandleConfigure(&r, hdr, &w); !st.ok()) {
        *frame = ProtocolErrorFrame(hdr.request_id, st.message());
        return st;
      }
      *frame = w.Finish();
      return Status::OK();
    }
    case MsgType::kStats: {
      if (Status st = HandleStats(&r, hdr, &w); !st.ok()) {
        *frame = ProtocolErrorFrame(hdr.request_id, st.message());
        return st;
      }
      *frame = w.Finish();
      return Status::OK();
    }
    case MsgType::kHealth: {
      if (Status st = HandleHealth(&r, hdr, &w); !st.ok()) {
        *frame = ProtocolErrorFrame(hdr.request_id, st.message());
        return st;
      }
      *frame = w.Finish();
      return Status::OK();
    }
    case MsgType::kUpdate: {
      if (Status st = HandleUpdate(&r, hdr, &w); !st.ok()) {
        *frame = ProtocolErrorFrame(hdr.request_id, st.message());
        return st;
      }
      *frame = w.Finish();
      return Status::OK();
    }
    default: {
      const Status st = Status::InvalidArgument(
          "unknown message type " + std::to_string(hdr.type));
      *frame = ProtocolErrorFrame(hdr.request_id, st.message());
      return st;
    }
  }
}

Status Daemon::HandleSearchRequest(Reader* r, const FrameHeader& hdr,
                                   bool batch, Writer* w) {
  std::string name;
  uint32_t k, flags, count = 1, dim;
  E2_RETURN_NOT_OK(r->Str(&name));
  E2_RETURN_NOT_OK(r->U32(&k));
  E2_RETURN_NOT_OK(r->U32(&flags));
  if (batch) E2_RETURN_NOT_OK(r->U32(&count));
  E2_RETURN_NOT_OK(r->U32(&dim));
  const uint64_t vec_bytes = static_cast<uint64_t>(count) * dim * 4;
  if (vec_bytes != r->remaining()) {
    return Status::InvalidArgument("vector payload is " +
                                   std::to_string(r->remaining()) +
                                   " bytes, expected " +
                                   std::to_string(vec_bytes));
  }
  const uint8_t* raw = nullptr;
  if (vec_bytes > 0) E2_RETURN_NOT_OK(r->Raw(&raw, vec_bytes));
  E2_RETURN_NOT_OK(r->ExpectEnd());

  // Body was well-formed; everything from here is a semantic error that
  // answers on the same connection instead of closing it.
  auto respond_error = [&](const Status& st) {
    w->Begin(hdr.type | kResponseBit, hdr.request_id);
    EncodeStatus(w, st);
    return Status::OK();
  };

  IndexEntry* entry = FindEntry(name);
  if (entry == nullptr) {
    return respond_error(
        Status::NotFound("no index named '" + name + "' is served here"));
  }
  if (dim != entry->server->dim()) {
    return respond_error(Status::InvalidArgument(
        "query dim " + std::to_string(dim) + " != index dim " +
        std::to_string(entry->server->dim())));
  }
  if (k == 0) k = entry->default_k.load(std::memory_order_relaxed);
  if (k == 0) {
    return respond_error(Status::InvalidArgument("k is 0"));
  }
  // The response must fit the same frame cap the request obeyed: 13
  // bytes of per-query framing plus 8 per neighbor, plus the preamble.
  const uint64_t worst_response =
      kHeaderBytes + 8 + 4 +
      static_cast<uint64_t>(count) * (13 + static_cast<uint64_t>(k) * 8);
  if (worst_response > options_.max_frame_bytes) {
    return respond_error(Status::InvalidArgument(
        "response for " + std::to_string(count) + " queries x k=" +
        std::to_string(k) + " would exceed the " +
        std::to_string(options_.max_frame_bytes) +
        "-byte frame cap; split the batch"));
  }

  if (breaker_.degraded.load(std::memory_order_relaxed)) {
    // Degraded mode: shed the whole request with kUnavailable before
    // touching the engine — bounded work per frame while the device is
    // misbehaving. Clients with retries enabled back off and resend.
    breaker_.total_shed.fetch_add(count, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(breaker_.mu);
      breaker_.sheds.Record(util::NowNs(), count);
    }
    RecordOutcomes(count, 0);  // sheds are not failures: let it clear
    w->Begin(hdr.type | kResponseBit, hdr.request_id);
    EncodeStatus(w, Status::Unavailable(
                        "daemon degraded (error-rate breaker tripped); "
                        "retry later"));
    return Status::OK();
  }

  // The frame's floats may be unaligned; copy once.
  std::vector<float> vals(static_cast<size_t>(count) * dim);
  if (vec_bytes > 0) std::memcpy(vals.data(), raw, vec_bytes);

  const bool nowait = (flags & kFlagNoWait) != 0;
  std::vector<core::QueryFuture> futures(count);
  std::vector<Status> admit(count, Status::OK());
  for (uint32_t i = 0; i < count; ++i) {
    const float* vec = vals.data() + static_cast<size_t>(i) * dim;
    // Blocking Submit is the backpressure path: a full queue stalls
    // only this connection. kFlagNoWait turns it into admission
    // control: full -> per-query ResourceExhausted on the wire.
    auto id = nowait ? entry->server->TrySubmit(vec, k)
                     : entry->server->Submit(vec, k);
    if (id.ok()) {
      futures[i] = entry->sink.Register(*id);
    } else {
      admit[i] = id.status();
    }
  }

  w->Begin(hdr.type | kResponseBit, hdr.request_id);
  EncodeStatus(w, Status::OK());
  w->U32(count);
  uint32_t failures = 0;
  for (uint32_t i = 0; i < count; ++i) {
    WireQueryResult out;
    bool failed = false;
    if (admit[i].ok()) {
      core::QueryResult qr = futures[i].Take();
      out.status = qr.status;
      out.latency_ns = qr.latency_ns;
      out.neighbors = std::move(qr.neighbors);
      // A partial result (I/O errors or corrupt blocks absorbed
      // best-effort) still ships OK to the client, but it IS a device
      // failure — exactly the signal the breaker watches.
      failed = !qr.status.ok() || qr.stats.partial;
    } else {
      out.status = admit[i];
      failed = true;
    }
    if (failed) ++failures;
    EncodeQueryResult(w, out);
  }
  RecordOutcomes(count, failures);
  return Status::OK();
}

void Daemon::RecordOutcomes(uint32_t queries, uint32_t failures) {
  if (options_.breaker_trip_ratio <= 0.0 || queries == 0) return;
  const uint64_t now = util::NowNs();
  std::lock_guard<std::mutex> lock(breaker_.mu);
  breaker_.requests.Record(now, queries);
  if (failures > 0) breaker_.errors.Record(now, failures);
  const double req_rate = breaker_.requests.RatePerSec(now);
  const double err_rate = breaker_.errors.RatePerSec(now);
  const double share = req_rate > 0.0 ? err_rate / req_rate : 0.0;
  if (breaker_.degraded.load(std::memory_order_relaxed)) {
    // Hysteresis: recover only once the failure share decays to half
    // the trip ratio (shed queries are recorded as non-failures, so the
    // error window empties while the breaker is open).
    if (share <= options_.breaker_trip_ratio * 0.5) {
      breaker_.degraded.store(false, std::memory_order_relaxed);
    }
  } else if (req_rate >= options_.breaker_min_rate &&
             share >= options_.breaker_trip_ratio) {
    breaker_.degraded.store(true, std::memory_order_relaxed);
  }
}

WireHealth Daemon::SnapshotHealth() {
  WireHealth h;
  const uint64_t now = util::NowNs();
  std::lock_guard<std::mutex> lock(breaker_.mu);
  h.error_rate = breaker_.errors.RatePerSec(now);
  h.shed_rate = breaker_.sheds.RatePerSec(now);
  h.total_shed = breaker_.total_shed.load(std::memory_order_relaxed);
  const double req_rate = breaker_.requests.RatePerSec(now);
  const double share = req_rate > 0.0 ? h.error_rate / req_rate : 0.0;
  if (breaker_.degraded.load(std::memory_order_relaxed)) {
    // Unhealthy = degraded with (nearly) nothing succeeding; degraded =
    // breaker open but some traffic was still completing recently.
    h.state = share >= 0.95 ? 2 : 1;
  } else {
    h.state = 0;
  }
  return h;
}

Status Daemon::HandleHealth(Reader* r, const FrameHeader& hdr, Writer* w) {
  E2_RETURN_NOT_OK(r->ExpectEnd());
  w->Begin(hdr.type | kResponseBit, hdr.request_id);
  EncodeStatus(w, Status::OK());
  EncodeHealth(w, SnapshotHealth());
  return Status::OK();
}

Status Daemon::HandleConfigure(Reader* r, const FrameHeader& hdr, Writer* w) {
  std::string name;
  uint32_t default_k;
  E2_RETURN_NOT_OK(r->Str(&name));
  E2_RETURN_NOT_OK(r->U32(&default_k));
  E2_RETURN_NOT_OK(r->ExpectEnd());

  w->Begin(hdr.type | kResponseBit, hdr.request_id);
  IndexEntry* entry = FindEntry(name);
  if (entry == nullptr) {
    EncodeStatus(w, Status::NotFound("no index named '" + name +
                                     "' is served here"));
  } else if (default_k == 0) {
    EncodeStatus(w, Status::InvalidArgument("default k must be > 0"));
  } else {
    entry->default_k.store(default_k, std::memory_order_relaxed);
    EncodeStatus(w, Status::OK());
  }
  return Status::OK();
}

Status Daemon::HandleStats(Reader* r, const FrameHeader& hdr, Writer* w) {
  std::string name;
  E2_RETURN_NOT_OK(r->Str(&name));
  E2_RETURN_NOT_OK(r->ExpectEnd());

  w->Begin(hdr.type | kResponseBit, hdr.request_id);
  IndexEntry* entry = FindEntry(name);
  if (entry == nullptr) {
    EncodeStatus(w, Status::NotFound("no index named '" + name +
                                     "' is served here"));
    return Status::OK();
  }
  // Every ingredient is captured by value under its own lock (the
  // streaming snapshot merges per-shard recorders under their mutexes,
  // the device snapshot is the PR-2 by-value pattern), so the Stats RPC
  // never serializes a half-updated histogram.
  const core::StreamingSnapshot snap = entry->server->stats();
  const storage::DeviceStats dev = entry->index->device_stats();
  WireStats stats;
  stats.completed = snap.completed;
  stats.failed = snap.failed;
  stats.rejected = snap.rejected;
  stats.batches = snap.batches;
  stats.p50_ns = snap.p50_ns;
  stats.p95_ns = snap.p95_ns;
  stats.p99_ns = snap.p99_ns;
  stats.max_ns = snap.max_ns;
  stats.mean_latency_ns = snap.mean_latency_ns;
  stats.mean_batch_size = snap.mean_batch_size;
  stats.sustained_qps = snap.sustained_qps;
  stats.overall_qps = snap.overall_qps;
  stats.queue_depth = entry->server->queue_depth();
  stats.reads_completed = dev.reads_completed;
  stats.bytes_read = dev.bytes_read;
  stats.cache_hits = dev.cache_hits;
  stats.cache_misses = dev.cache_misses;
  stats.faults_injected = dev.faults_injected;
  stats.retries = dev.retries;
  stats.retries_exhausted = dev.retries_exhausted;
  stats.updates_applied = dev.updates_applied;
  stats.epochs_published = dev.epochs_published;
  stats.update_staged_bytes = dev.update_staged_bytes;
  stats.update_lag = dev.update_lag;
  EncodeStatus(w, Status::OK());
  EncodeStats(w, stats);
  return Status::OK();
}

Status Daemon::HandleUpdate(Reader* r, const FrameHeader& hdr, Writer* w) {
  std::string name;
  uint8_t op_raw;
  uint32_t count;
  E2_RETURN_NOT_OK(r->Str(&name));
  E2_RETURN_NOT_OK(r->U8(&op_raw));
  E2_RETURN_NOT_OK(r->U32(&count));
  if (op_raw > static_cast<uint8_t>(UpdateOp::kRestore)) {
    return Status::InvalidArgument("unknown update op " +
                                   std::to_string(op_raw));
  }
  const UpdateOp op = static_cast<UpdateOp>(op_raw);

  uint32_t dim = 0;
  const uint8_t* raw = nullptr;
  uint64_t payload_bytes;
  if (op == UpdateOp::kInsert) {
    E2_RETURN_NOT_OK(r->U32(&dim));
    payload_bytes = static_cast<uint64_t>(count) * dim * 4;
  } else {
    payload_bytes = static_cast<uint64_t>(count) * 4;
  }
  if (payload_bytes != r->remaining()) {
    return Status::InvalidArgument(
        "update payload is " + std::to_string(r->remaining()) +
        " bytes, expected " + std::to_string(payload_bytes));
  }
  if (payload_bytes > 0) E2_RETURN_NOT_OK(r->Raw(&raw, payload_bytes));
  E2_RETURN_NOT_OK(r->ExpectEnd());

  auto respond_error = [&](const Status& st) {
    w->Begin(hdr.type | kResponseBit, hdr.request_id);
    EncodeStatus(w, st);
    return Status::OK();
  };

  IndexEntry* entry = FindEntry(name);
  if (entry == nullptr) {
    return respond_error(
        Status::NotFound("no index named '" + name + "' is served here"));
  }
  if (count == 0) {
    return respond_error(Status::InvalidArgument("empty update"));
  }

  WireUpdateAck ack;
  Status applied = Status::OK();
  if (op == UpdateOp::kInsert) {
    if (dim != entry->index->dim()) {
      return respond_error(Status::InvalidArgument(
          "row dim " + std::to_string(dim) + " != index dim " +
          std::to_string(entry->index->dim())));
    }
    // The frame's floats may be unaligned; copy once.
    std::vector<float> rows(static_cast<size_t>(count) * dim);
    std::memcpy(rows.data(), raw, payload_bytes);
    auto first = entry->index->InsertBatch(rows.data(), count);
    if (first.ok()) {
      ack.first_id = *first;
      ack.count_applied = count;
    } else {
      applied = first.status();
    }
  } else {
    std::vector<uint32_t> ids(count);
    std::memcpy(ids.data(), raw, payload_bytes);
    applied = op == UpdateOp::kRemove
                  ? entry->index->RemoveBatch(ids.data(), count)
                  : entry->index->RestoreBatch(ids.data(), count);
    if (applied.ok()) ack.count_applied = count;
  }

  w->Begin(hdr.type | kResponseBit, hdr.request_id);
  if (!applied.ok()) {
    EncodeStatus(w, applied);
    return Status::OK();
  }
  ack.epoch = entry->index->device_stats().epochs_published;
  EncodeStatus(w, Status::OK());
  EncodeUpdateAck(w, ack);
  return Status::OK();
}

}  // namespace e2lshos::net
