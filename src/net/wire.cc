#include "net/wire.h"

#include <cstring>

namespace e2lshos::net {

WireCode WireCodeFromStatus(const Status& status) {
  // StatusCode values 0..8 are mirrored verbatim (see the enum comment).
  return static_cast<WireCode>(static_cast<uint8_t>(status.code()));
}

Status StatusFromWire(WireCode code, const std::string& message) {
  if (code == WireCode::kOk) return Status::OK();
  if (code == WireCode::kProtocolError) {
    return Status::InvalidArgument("protocol error: " + message);
  }
  const uint8_t raw = static_cast<uint8_t>(code);
  if (raw > static_cast<uint8_t>(StatusCode::kUnavailable)) {
    return Status::Internal("unknown wire status code " + std::to_string(raw) +
                            ": " + message);
  }
  return Status(static_cast<StatusCode>(raw), message);
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void Writer::Begin(uint8_t type, uint64_t request_id) {
  buf_.clear();
  U32(0);  // length placeholder, patched by Finish()
  U16(kWireMagic);
  U8(kWireVersion);
  U8(type);
  U64(request_id);
}

void Writer::U16(uint16_t v) {
  buf_.push_back(static_cast<uint8_t>(v));
  buf_.push_back(static_cast<uint8_t>(v >> 8));
}

void Writer::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void Writer::F32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U32(bits);
}

void Writer::F64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  U64(bits);
}

void Writer::Str(const std::string& s) {
  const size_t n = s.size() > 65535 ? 65535 : s.size();
  U16(static_cast<uint16_t>(n));
  Raw(s.data(), n);
}

void Writer::Raw(const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), p, p + n);
}

std::vector<uint8_t> Writer::Finish() {
  const uint32_t len = static_cast<uint32_t>(buf_.size() - 4);
  for (int i = 0; i < 4; ++i) buf_[i] = static_cast<uint8_t>(len >> (8 * i));
  return std::move(buf_);
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

Status Reader::Need(size_t n) const {
  if (static_cast<size_t>(end_ - p_) < n) {
    return Status(StatusCode::kInvalidArgument, "truncated frame");
  }
  return Status::OK();
}

Status Reader::U8(uint8_t* v) {
  E2_RETURN_NOT_OK(Need(1));
  *v = *p_++;
  return Status::OK();
}

Status Reader::U16(uint16_t* v) {
  E2_RETURN_NOT_OK(Need(2));
  *v = static_cast<uint16_t>(p_[0] | (p_[1] << 8));
  p_ += 2;
  return Status::OK();
}

Status Reader::U32(uint32_t* v) {
  E2_RETURN_NOT_OK(Need(4));
  *v = 0;
  for (int i = 0; i < 4; ++i) *v |= static_cast<uint32_t>(p_[i]) << (8 * i);
  p_ += 4;
  return Status::OK();
}

Status Reader::U64(uint64_t* v) {
  E2_RETURN_NOT_OK(Need(8));
  *v = 0;
  for (int i = 0; i < 8; ++i) *v |= static_cast<uint64_t>(p_[i]) << (8 * i);
  p_ += 8;
  return Status::OK();
}

Status Reader::F32(float* v) {
  uint32_t bits;
  E2_RETURN_NOT_OK(U32(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status Reader::F64(double* v) {
  uint64_t bits;
  E2_RETURN_NOT_OK(U64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status Reader::Str(std::string* s) {
  uint16_t n;
  E2_RETURN_NOT_OK(U16(&n));
  E2_RETURN_NOT_OK(Need(n));
  s->assign(reinterpret_cast<const char*>(p_), n);
  p_ += n;
  return Status::OK();
}

Status Reader::Raw(const uint8_t** data, size_t n) {
  E2_RETURN_NOT_OK(Need(n));
  *data = p_;
  p_ += n;
  return Status::OK();
}

Status Reader::ExpectEnd() const {
  if (p_ != end_) {
    return Status::InvalidArgument("trailing garbage in frame");
  }
  return Status::OK();
}

Status Reader::Header(FrameHeader* out) {
  uint16_t magic;
  uint8_t version;
  E2_RETURN_NOT_OK(U16(&magic));
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  E2_RETURN_NOT_OK(U8(&version));
  if (version != kWireVersion) {
    return Status::InvalidArgument("unsupported protocol version " +
                                   std::to_string(version));
  }
  E2_RETURN_NOT_OK(U8(&out->type));
  E2_RETURN_NOT_OK(U64(&out->request_id));
  return Status::OK();
}

Status ValidateFrameLength(uint32_t len, uint32_t max_frame_bytes) {
  if (len < kHeaderBytes) {
    return Status::InvalidArgument("frame length " + std::to_string(len) +
                                   " below the " +
                                   std::to_string(kHeaderBytes) +
                                   "-byte header");
  }
  if (len > max_frame_bytes) {
    return Status::InvalidArgument("frame length " + std::to_string(len) +
                                   " exceeds the " +
                                   std::to_string(max_frame_bytes) +
                                   "-byte cap");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Shared body encoders/decoders
// ---------------------------------------------------------------------------

void EncodeStatus(Writer* w, const Status& status) {
  w->U8(static_cast<uint8_t>(WireCodeFromStatus(status)));
  w->Str(status.ok() ? std::string() : status.message());
}

Status DecodeStatus(Reader* r, Status* out) {
  uint8_t code;
  std::string message;
  E2_RETURN_NOT_OK(r->U8(&code));
  E2_RETURN_NOT_OK(r->Str(&message));
  *out = StatusFromWire(static_cast<WireCode>(code), message);
  return Status::OK();
}

void EncodeStats(Writer* w, const WireStats& s) {
  w->U64(s.completed);
  w->U64(s.failed);
  w->U64(s.rejected);
  w->U64(s.batches);
  w->U64(s.p50_ns);
  w->U64(s.p95_ns);
  w->U64(s.p99_ns);
  w->U64(s.max_ns);
  w->F64(s.mean_latency_ns);
  w->F64(s.mean_batch_size);
  w->F64(s.sustained_qps);
  w->F64(s.overall_qps);
  w->U64(s.queue_depth);
  w->U64(s.reads_completed);
  w->U64(s.bytes_read);
  w->U64(s.cache_hits);
  w->U64(s.cache_misses);
  w->U64(s.faults_injected);
  w->U64(s.retries);
  w->U64(s.retries_exhausted);
  w->U64(s.updates_applied);
  w->U64(s.epochs_published);
  w->U64(s.update_staged_bytes);
  w->U64(s.update_lag);
}

Status DecodeStats(Reader* r, WireStats* out) {
  E2_RETURN_NOT_OK(r->U64(&out->completed));
  E2_RETURN_NOT_OK(r->U64(&out->failed));
  E2_RETURN_NOT_OK(r->U64(&out->rejected));
  E2_RETURN_NOT_OK(r->U64(&out->batches));
  E2_RETURN_NOT_OK(r->U64(&out->p50_ns));
  E2_RETURN_NOT_OK(r->U64(&out->p95_ns));
  E2_RETURN_NOT_OK(r->U64(&out->p99_ns));
  E2_RETURN_NOT_OK(r->U64(&out->max_ns));
  E2_RETURN_NOT_OK(r->F64(&out->mean_latency_ns));
  E2_RETURN_NOT_OK(r->F64(&out->mean_batch_size));
  E2_RETURN_NOT_OK(r->F64(&out->sustained_qps));
  E2_RETURN_NOT_OK(r->F64(&out->overall_qps));
  E2_RETURN_NOT_OK(r->U64(&out->queue_depth));
  E2_RETURN_NOT_OK(r->U64(&out->reads_completed));
  E2_RETURN_NOT_OK(r->U64(&out->bytes_read));
  E2_RETURN_NOT_OK(r->U64(&out->cache_hits));
  E2_RETURN_NOT_OK(r->U64(&out->cache_misses));
  E2_RETURN_NOT_OK(r->U64(&out->faults_injected));
  E2_RETURN_NOT_OK(r->U64(&out->retries));
  E2_RETURN_NOT_OK(r->U64(&out->retries_exhausted));
  E2_RETURN_NOT_OK(r->U64(&out->updates_applied));
  E2_RETURN_NOT_OK(r->U64(&out->epochs_published));
  E2_RETURN_NOT_OK(r->U64(&out->update_staged_bytes));
  E2_RETURN_NOT_OK(r->U64(&out->update_lag));
  return Status::OK();
}

void EncodeHealth(Writer* w, const WireHealth& h) {
  w->U8(h.state);
  w->F64(h.error_rate);
  w->F64(h.shed_rate);
  w->U64(h.total_shed);
}

Status DecodeHealth(Reader* r, WireHealth* out) {
  E2_RETURN_NOT_OK(r->U8(&out->state));
  E2_RETURN_NOT_OK(r->F64(&out->error_rate));
  E2_RETURN_NOT_OK(r->F64(&out->shed_rate));
  E2_RETURN_NOT_OK(r->U64(&out->total_shed));
  return Status::OK();
}

void EncodeUpdateAck(Writer* w, const WireUpdateAck& ack) {
  w->U32(ack.count_applied);
  w->U32(ack.first_id);
  w->U64(ack.epoch);
}

Status DecodeUpdateAck(Reader* r, WireUpdateAck* out) {
  E2_RETURN_NOT_OK(r->U32(&out->count_applied));
  E2_RETURN_NOT_OK(r->U32(&out->first_id));
  E2_RETURN_NOT_OK(r->U64(&out->epoch));
  return Status::OK();
}

void EncodeQueryResult(Writer* w, const WireQueryResult& result) {
  w->U8(static_cast<uint8_t>(WireCodeFromStatus(result.status)));
  w->U64(result.latency_ns);
  w->U32(static_cast<uint32_t>(result.neighbors.size()));
  for (const util::Neighbor& nb : result.neighbors) {
    w->U32(nb.id);
    w->F32(nb.dist);
  }
}

Status DecodeQueryResult(Reader* r, WireQueryResult* out) {
  uint8_t code;
  E2_RETURN_NOT_OK(r->U8(&code));
  out->status = StatusFromWire(static_cast<WireCode>(code), std::string());
  E2_RETURN_NOT_OK(r->U64(&out->latency_ns));
  uint32_t nk;
  E2_RETURN_NOT_OK(r->U32(&nk));
  // nk is bounded by the frame itself: each neighbor needs 8 bytes, so
  // a lying count fails Need() before any oversized reserve.
  if (static_cast<uint64_t>(nk) * 8 > r->remaining()) {
    return Status::InvalidArgument("neighbor count exceeds frame");
  }
  out->neighbors.clear();
  out->neighbors.reserve(nk);
  for (uint32_t i = 0; i < nk; ++i) {
    util::Neighbor nb;
    E2_RETURN_NOT_OK(r->U32(&nb.id));
    E2_RETURN_NOT_OK(r->F32(&nb.dist));
    out->neighbors.push_back(nb);
  }
  return Status::OK();
}

}  // namespace e2lshos::net
