// Bulk-loaded R-tree over low-dimensional points with best-first
// incremental nearest-neighbor traversal.
//
// This is the index structure behind SRS (Sun et al. VLDB'14): objects
// are projected to an m-dimensional space (m = 8 in the paper's SRS
// configuration) and candidates are produced in increasing projected
// distance. The paper's Sec. 4.2 observes SRS "visits tens of thousands
// of R-tree nodes to find thousands of candidates" — the node-visit
// counter here feeds that comparison.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "util/status.h"

namespace e2lshos::baselines {

class RTree {
 public:
  /// Bulk-load `n` points of dimension `dim` (row-major). Points are
  /// copied; ids are their input positions. Top-down packing: sort along
  /// cycling dimensions into `fanout`-way chunks, MBRs built bottom-up.
  static Result<RTree> Build(const float* points, uint64_t n, uint32_t dim,
                             uint32_t fanout = 32);

  uint64_t n() const { return ids_.size(); }
  uint32_t dim() const { return dim_; }
  uint64_t MemoryBytes() const;

  /// \brief Best-first incremental NN scan from a query point.
  class Iterator {
   public:
    /// Advance to the next nearest point; returns false when exhausted.
    bool Next(uint32_t* id, float* dist2);

    uint64_t nodes_visited() const { return nodes_visited_; }

   private:
    friend class RTree;
    struct Entry {
      float dist2;
      uint64_t code;  // (index << 1) | is_point
      bool operator>(const Entry& o) const { return dist2 > o.dist2; }
    };
    Iterator(const RTree* tree, const float* q);

    const RTree* tree_;
    std::vector<float> q_;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> pq_;
    uint64_t nodes_visited_ = 0;
  };

  Iterator Iterate(const float* query) const { return Iterator(this, query); }

 private:
  struct Node {
    uint32_t first = 0;   ///< First child node, or first point (leaf).
    uint32_t count = 0;   ///< Children or points.
    bool leaf = false;
    uint32_t box = 0;     ///< Index into boxes_ (2 * dim floats).
  };

  float MinDist2(uint32_t node, const float* q) const;
  uint32_t BuildRecursive(std::vector<uint32_t>& order, uint64_t begin,
                          uint64_t end, uint32_t level,
                          const float* points);

  uint32_t dim_ = 0;
  uint32_t fanout_ = 32;
  uint32_t root_ = 0;
  std::vector<Node> nodes_;
  std::vector<uint32_t> children_;  // child node ids, referenced by Node
  std::vector<float> boxes_;        // lo[dim], hi[dim] per node
  std::vector<float> leaf_pts_;     // points in leaf order
  std::vector<uint32_t> ids_;       // original ids in leaf order
};

}  // namespace e2lshos::baselines
