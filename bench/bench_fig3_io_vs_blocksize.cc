// Reproduces Figure 3: average number of I/Os required to answer a query
// on the SIFT dataset for varying read block size B (128 B / 512 B /
// 4 KB / unlimited), across the accuracy range. Follows the paper's
// Fig. 3 accounting: 4-byte object entries, so B bytes hold B/4 objects,
// plus one hash-table I/O per probed bucket.
#include "common.h"

using namespace e2lshos;

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  auto w = bench::MakeWorkload(*spec, args.EffectiveN(*spec), args.queries, 1);
  if (!w.ok()) return 1;
  auto index = e2lsh::InMemoryE2lsh::Build(w->gen.base, w->params);
  if (!index.ok()) return 1;

  const auto profile =
      bench::ProfileInMemoryIo(index->get(), *w, 1, bench::DefaultSFactors());

  bench::PrintHeader(
      "Figure 3: avg I/Os per query vs accuracy for varying block size B (" +
          name + ")",
      {"s_factor", "overall ratio", "B=128 (32/io)", "B=512 (128/io)",
       "B=4K (512/io)", "B=inf"});
  for (const auto& p : profile) {
    bench::PrintRow({bench::Fmt(p.s_factor, 1), bench::Fmt(p.ratio, 3),
                     bench::Fmt(p.IoAt(32), 1), bench::Fmt(p.IoAt(128), 1),
                     bench::Fmt(p.IoAt(512), 1), bench::Fmt(p.IoInf(), 1)});
  }
  std::printf(
      "\nExpected shape (paper): more I/Os at higher accuracy (smaller "
      "ratio);\nsmaller B needs more I/Os; the B=512 curve sits close to "
      "B=inf because\nmost buckets fit a single block.\n");

  // --device file:/uring: measure what this host's storage actually
  // delivers at each block size, so the I/O counts above can be priced
  // (query I/O time ~= N_IO / IOPS).
  if (!args.device.empty()) {
    const std::string path = args.EffectiveDevicePath("fig3");
    auto dev = bench::MakeRealDevice(args, path, 128ULL << 20);
    if (!dev.ok()) {
      std::fprintf(stderr, "measured-IOPS footer skipped: %s\n",
                   dev.status().ToString().c_str());
      return 0;
    }
    std::printf("\nMeasured random-read kIOPS on %s (QD 64):",
                (*dev)->name().c_str());
    for (const uint32_t block : {512u, 4096u}) {
      bench::IopsBenchOptions opt;
      opt.block_bytes = block;
      opt.queue_depth = 64;
      auto pt = bench::MeasureRandomReadIops(dev->get(), opt);
      if (pt.ok()) std::printf("  B=%u: %.1f", block, pt->kiops);
    }
    std::printf("\n");
    dev->reset();
    std::remove(path.c_str());
  }
  return 0;
}
