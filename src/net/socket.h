// POSIX socket plumbing for the net layer: endpoint parsing with strict
// validation, UNIX/TCP listeners and connectors, and full-length
// read/write helpers that survive the ugly realities of a live wire —
// short reads/writes, EINTR, and peers that vanish mid-frame. SIGPIPE
// never fires from these paths: sends go out with MSG_NOSIGNAL, so a
// write to a dead peer is an IoError status, not a process kill.
#pragma once

#include <cstdint>
#include <string>

#include "util/status.h"

namespace e2lshos::net {

/// \brief A parsed listen/connect address: `unix:PATH` or
/// `tcp:HOST:PORT`.
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  ///< kUnix: filesystem socket path.
  std::string host;  ///< kTcp.
  uint16_t port = 0; ///< kTcp; 0 allowed only where a listener binds
                     ///< an ephemeral port.
};

/// Parse `unix:PATH` / `tcp:HOST:PORT`. Validation is strict: the port
/// goes through util::ParseU64 and must be 1..65535 (0 or 70000 or
/// "80x" never truncate into a bindable value; pass `allow_port_zero`
/// for listeners that want an ephemeral port), and a UNIX path must fit
/// sockaddr_un::sun_path with its terminator.
Result<Endpoint> ParseEndpoint(const std::string& spec,
                               bool allow_port_zero = false);

/// Validate a bare UNIX socket path against the sockaddr_un limit.
Status ValidateUnixPath(const std::string& path);

/// Create, bind, and listen on a UNIX socket. An existing socket file
/// at `path` is unlinked first (the standard daemon-restart idiom).
Result<int> ListenUnix(const std::string& path, int backlog = 128);

/// Create, bind, and listen on a TCP socket (IPv4). `port` 0 binds an
/// ephemeral port; read it back with LocalPort.
Result<int> ListenTcp(const std::string& host, uint16_t port,
                      int backlog = 128);

/// The port a bound TCP socket ended up on.
Result<uint16_t> LocalPort(int fd);

/// Connect to a parsed endpoint (blocking).
Result<int> Connect(const Endpoint& ep);

/// Arm SO_RCVTIMEO / SO_SNDTIMEO on a connected socket. With a receive
/// timeout set, a stalled peer surfaces from ReadFull as
/// kDeadlineExceeded instead of blocking forever. 0 ms disables.
Status SetRecvTimeout(int fd, uint32_t timeout_ms);
Status SetSendTimeout(int fd, uint32_t timeout_ms);

/// Read exactly `n` bytes, retrying short reads and EINTR. EOF before
/// the first byte is distinguishable: *eof_at_start is set and OK is
/// returned with zero bytes read (a clean between-frames close). EOF
/// mid-buffer is an IoError (the peer died inside a frame). A socket
/// receive timeout (SetRecvTimeout) expiring surfaces as
/// kDeadlineExceeded — the stream position is then unknown, so the
/// caller must close or resynchronize the connection.
Status ReadFull(int fd, void* buf, size_t n, bool* eof_at_start = nullptr);

/// Write exactly `n` bytes, retrying short writes and EINTR, with
/// MSG_NOSIGNAL so a dead peer yields IoError instead of SIGPIPE.
Status WriteFull(int fd, const void* buf, size_t n);

/// Best-effort close that retries EINTR.
void CloseFd(int fd);

}  // namespace e2lshos::net
