#include "net/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "util/parse.h"

namespace e2lshos::net {

namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> MakeInetAddr(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("'" + host +
                                   "' is not an IPv4 address (use dotted "
                                   "quad, e.g. 127.0.0.1)");
  }
  return addr;
}

}  // namespace

Status ValidateUnixPath(const std::string& path) {
  if (path.empty()) {
    return Status::InvalidArgument("UNIX socket path is empty");
  }
  // sun_path must hold the path plus its NUL terminator.
  constexpr size_t kMax = sizeof(sockaddr_un{}.sun_path) - 1;
  if (path.size() > kMax) {
    return Status::InvalidArgument(
        "UNIX socket path is " + std::to_string(path.size()) +
        " bytes; sockaddr_un caps it at " + std::to_string(kMax));
  }
  return Status::OK();
}

Result<Endpoint> ParseEndpoint(const std::string& spec, bool allow_port_zero) {
  Endpoint ep;
  if (spec.compare(0, 5, "unix:") == 0) {
    ep.kind = Endpoint::Kind::kUnix;
    ep.path = spec.substr(5);
    E2_RETURN_NOT_OK(ValidateUnixPath(ep.path));
    return ep;
  }
  if (spec.compare(0, 4, "tcp:") == 0) {
    ep.kind = Endpoint::Kind::kTcp;
    const std::string rest = spec.substr(4);
    const size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == rest.size()) {
      return Status::InvalidArgument("tcp endpoint '" + spec +
                                     "' must be tcp:HOST:PORT");
    }
    ep.host = rest.substr(0, colon);
    E2_ASSIGN_OR_RETURN(const uint64_t port,
                        util::ParseU64(rest.substr(colon + 1)));
    if (port > 65535 || (port == 0 && !allow_port_zero)) {
      return Status::InvalidArgument("port " + rest.substr(colon + 1) +
                                     " out of range (1..65535)");
    }
    ep.port = static_cast<uint16_t>(port);
    return ep;
  }
  return Status::InvalidArgument("endpoint '" + spec +
                                 "' must be unix:PATH or tcp:HOST:PORT");
}

Result<int> ListenUnix(const std::string& path, int backlog) {
  E2_RETURN_NOT_OK(ValidateUnixPath(path));
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_UNIX)");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Errno("bind(" + path + ")");
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen(" + path + ")");
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<int> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  E2_ASSIGN_OR_RETURN(sockaddr_in addr, MakeInetAddr(host, port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st =
        Errno("bind(" + host + ":" + std::to_string(port) + ")");
    CloseFd(fd);
    return st;
  }
  if (::listen(fd, backlog) != 0) {
    const Status st = Errno("listen");
    CloseFd(fd);
    return st;
  }
  return fd;
}

Result<uint16_t> LocalPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<int> Connect(const Endpoint& ep) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket(AF_UNIX)");
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, ep.path.c_str(), ep.path.size() + 1);
    int rc;
    do {
      rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    } while (rc != 0 && errno == EINTR);
    if (rc != 0) {
      const Status st = Errno("connect(" + ep.path + ")");
      CloseFd(fd);
      return st;
    }
    return fd;
  }
  E2_ASSIGN_OR_RETURN(sockaddr_in addr, MakeInetAddr(ep.host, ep.port));
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket(AF_INET)");
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    const Status st =
        Errno("connect(" + ep.host + ":" + std::to_string(ep.port) + ")");
    CloseFd(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Status SetRecvTimeout(int fd, uint32_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_RCVTIMEO)");
  }
  return Status::OK();
}

Status SetSendTimeout(int fd, uint32_t timeout_ms) {
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(timeout_ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Errno("setsockopt(SO_SNDTIMEO)");
  }
  return Status::OK();
}

Status ReadFull(int fd, void* buf, size_t n, bool* eof_at_start) {
  if (eof_at_start != nullptr) *eof_at_start = false;
  uint8_t* p = static_cast<uint8_t*>(buf);
  size_t got = 0;
  while (got < n) {
    const ssize_t rc = ::recv(fd, p + got, n - got, 0);
    if (rc > 0) {
      got += static_cast<size_t>(rc);
      continue;
    }
    if (rc == 0) {
      if (got == 0 && eof_at_start != nullptr) {
        *eof_at_start = true;
        return Status::OK();
      }
      return Status::IoError("connection closed mid-frame (" +
                             std::to_string(got) + "/" + std::to_string(n) +
                             " bytes)");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // SO_RCVTIMEO expired: distinct from transport failure so callers
      // can surface a deadline instead of a generic I/O error.
      return Status::DeadlineExceeded(
          "recv timed out (" + std::to_string(got) + "/" + std::to_string(n) +
          " bytes)");
    }
    return Errno("recv");
  }
  return Status::OK();
}

Status WriteFull(int fd, const void* buf, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  size_t sent = 0;
  while (sent < n) {
    const ssize_t rc = ::send(fd, p + sent, n - sent, MSG_NOSIGNAL);
    if (rc > 0) {
      sent += static_cast<size_t>(rc);
      continue;
    }
    if (rc < 0 && errno == EINTR) continue;
    if (rc < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return Status::DeadlineExceeded("send timed out (" +
                                      std::to_string(sent) + "/" +
                                      std::to_string(n) + " bytes)");
    }
    return Errno("send");
  }
  return Status::OK();
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = ::close(fd);
  } while (rc != 0 && errno == EINTR);
}

}  // namespace e2lshos::net
