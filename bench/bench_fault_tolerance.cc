// Fault-tolerance sweep (PR 9; no single paper figure — supports the
// Sec. 7 reliability discussion): what do injected storage faults cost,
// and what does the fault-handling stack give back? One index image is
// built once (format v3, per-block CRC32C) and copied onto a fresh
// `mem:` stack per cell; the fault layer is then dialed across rates in
// three modes:
//
//   transient  fault=submit:f,complete:f  behind retry=6 — every fault
//              is retried to success, so results stay bit-identical to
//              the fault-free run and the partial rate must stay 0; the
//              cost shows up only as latency (retries).
//   corrupt    fault=corrupt:f — a fraction f of block offsets returns
//              scrambled bytes; checksums catch every one, the engine
//              drops the affected candidates and flags the query
//              partial. The partial rate tracks f, QPS barely moves.
//   mixed      all fault classes at once plus stall spikes, behind
//              retry — the chaos-soak configuration, measured.
//
// Per cell: QPS, p99 latency, partial-query rate, dropped candidates,
// and the device's own fault/retry counters. JSONL rows (--json) carry
// the same keys; CI diffs their schema against
// bench/baselines/bench_fault_tolerance.schema.
#include "common.h"

#include <algorithm>
#include <string>

#include "core/query_engine.h"
#include "storage/memory_device.h"

using namespace e2lshos;

namespace {

// p99 of per-query wall latency, in microseconds.
double P99Us(const std::vector<core::QueryStats>& stats) {
  if (stats.empty()) return 0.0;
  std::vector<uint64_t> ns;
  ns.reserve(stats.size());
  for (const auto& s : stats) ns.push_back(s.wall_ns);
  std::sort(ns.begin(), ns.end());
  const size_t idx = (ns.size() - 1) * 99 / 100;
  return static_cast<double>(ns[idx]) / 1e3;
}

bool SameResults(const std::vector<std::vector<util::Neighbor>>& a,
                 const std::vector<std::vector<util::Neighbor>>& b) {
  if (a.size() != b.size()) return false;
  for (size_t q = 0; q < a.size(); ++q) {
    if (a[q].size() != b[q].size()) return false;
    for (size_t i = 0; i < a[q].size(); ++i) {
      if (a[q][i].id != b[q][i].id || a[q][i].dist != b[q][i].dist)
        return false;
    }
  }
  return true;
}

std::string FmtRate(double f) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", f);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::Args::Parse(argc, argv);
  auto json = args.OpenJson();
  const std::string name = args.dataset.empty() ? "SIFT" : args.dataset;
  auto spec = data::GetDatasetSpec(name);
  if (!spec.ok()) return 1;
  const uint64_t n = args.n ? args.n : 2000;
  const uint64_t nq = args.queries ? args.queries : 128;

  auto w = bench::MakeWorkload(*spec, n, nq, 1);
  if (!w.ok()) {
    std::fprintf(stderr, "workload: %s\n", w.status().ToString().c_str());
    return 1;
  }

  // Candidate draining (the paper's cap of S examined candidates) stops
  // a radius after the first S candidates *in completion order*, so any
  // timing change — including a retried read — can legitimately shift
  // which candidates are examined. Push the cap out of reach so the
  // transient cells' bit-identity check is well-defined: with no
  // draining, the result is a pure function of the surviving bytes.
  w->params.s_factor = 1000.0;
  w->params.S = static_cast<uint64_t>(w->params.s_factor * w->params.L);

  // Build once on an instant device; every cell gets a byte-identical
  // copy of the image, so result diffs are attributable to faults alone.
  auto master_dev = storage::MemoryDevice::Create(1ULL << 30);
  if (!master_dev.ok()) return 1;
  auto master =
      core::IndexBuilder::Build(w->gen.base, w->params, master_dev->get());
  if (!master.ok()) {
    std::fprintf(stderr, "build: %s\n", master.status().ToString().c_str());
    return 1;
  }
  const uint64_t image_bytes = (*master)->sizes().storage_bytes;
  const uint64_t capacity = (image_bytes + (1ULL << 20)) & ~((1ULL << 20) - 1);

  struct Mode {
    const char* label;
    // Builds the fault/retry URI suffix for rate f; empty = clean stack.
    std::string (*suffix)(double f);
  };
  const Mode modes[] = {
      {"transient",
       [](double f) {
         return "&fault=submit:" + FmtRate(f) + ",complete:" + FmtRate(f) +
                ",seed:41&retry=6,backoff:50";
       }},
      {"corrupt",
       [](double f) { return "&fault=corrupt:" + FmtRate(f) + ",seed:41"; }},
      {"mixed",
       [](double f) {
         return "&fault=submit:" + FmtRate(f) + ",complete:" + FmtRate(f) +
                ",corrupt:" + FmtRate(f) + ",stall:200,stallp:" + FmtRate(f) +
                ",seed:41&retry=6,backoff:50";
       }},
  };
  const double rates[] = {0.0, 0.01, 0.02, 0.05, 0.10};

  core::EngineOptions opts;
  opts.num_contexts = 32;
  opts.max_inflight_ios = 256;

  bench::PrintHeader(
      "Fault-rate sweep on mem: (" + name + ", n=" + std::to_string(n) +
          ", queries=" + std::to_string(nq) +
          ", image=" + bench::FmtBytes(image_bytes) + ")",
      {"mode", "rate", "QPS", "p99 us", "partial", "dropped", "retries",
       "faults"});

  // The fault-free reference results: transient cells must match them
  // bit-for-bit (retries make faults invisible in the result bits).
  std::vector<std::vector<util::Neighbor>> reference;

  int exit_code = 0;
  for (const auto& mode : modes) {
    for (const double f : rates) {
      std::string uri = "mem:?capacity=" + std::to_string(capacity);
      if (f > 0.0) uri += mode.suffix(f);
      auto dev = storage::OpenDeviceUri(uri, storage::DeviceUriOpenOptions{});
      if (!dev.ok()) {
        std::fprintf(stderr, "open %s: %s\n", uri.c_str(),
                     dev.status().ToString().c_str());
        return 1;
      }
      // Writes pass through the fault layer untouched, so the on-device
      // image is pristine; only the read path sees faults.
      if (!bench::CopyIndexImage(master_dev->get(), dev->get(), image_bytes)
               .ok()) {
        return 1;
      }
      auto view = (*master)->WithDevice(dev->get());
      core::QueryEngine engine(view.get(), &w->gen.base, opts);
      auto batch = engine.SearchBatch(w->gen.queries, 10);
      if (!batch.ok()) {
        std::fprintf(stderr, "batch (%s, f=%g): %s\n", mode.label, f,
                     batch.status().ToString().c_str());
        return 1;
      }
      if (f == 0.0 && reference.empty()) reference = batch->results;

      uint64_t partial = 0, corrupt_blocks = 0, dropped = 0, io_errors = 0;
      for (const auto& s : batch->stats) {
        partial += s.partial ? 1 : 0;
        corrupt_blocks += s.corrupt_blocks;
        dropped += s.dropped_candidates;
        io_errors += s.io_errors;
      }
      const double partial_rate =
          static_cast<double>(partial) / static_cast<double>(nq);
      const auto dstats = (*dev)->stats();
      const double qps = batch->QueriesPerSecond();
      const double p99_us = P99Us(batch->stats);
      const bool transient = std::string(mode.label) == "transient";
      const bool identical = SameResults(batch->results, reference);
      // Retried transients must be invisible in the result bits.
      if (transient && !identical) {
        std::fprintf(stderr,
                     "FAIL: transient f=%g results differ from fault-free "
                     "reference\n",
                     f);
        exit_code = 1;
      }

      bench::PrintRow({mode.label, FmtRate(f), bench::Fmt(qps, 0),
                       bench::Fmt(p99_us, 1),
                       bench::Fmt(partial_rate * 100, 1) + "%",
                       std::to_string(dropped), std::to_string(dstats.retries),
                       std::to_string(dstats.faults_injected)});
      if (json != nullptr) {
        util::JsonRow row;
        row.Set("bench", "fault_tolerance")
            .Set("dataset", name)
            .Set("n", w->n())
            .Set("queries", nq)
            .Set("mode", mode.label)
            .Set("fault_rate", f)
            .Set("qps", qps)
            .Set("p99_us", p99_us)
            .Set("partial_rate", partial_rate)
            .Set("corrupt_blocks", corrupt_blocks)
            .Set("dropped_candidates", dropped)
            .Set("io_errors", io_errors)
            .Set("faults_injected", dstats.faults_injected)
            .Set("retries", dstats.retries)
            .Set("retries_exhausted", dstats.retries_exhausted)
            .Set("results_identical", static_cast<uint64_t>(identical ? 1 : 0));
        json->Write(row);
      }
    }
    std::printf("\n");
  }

  std::printf(
      "Expected shape: transient faults behind retry never surface (partial "
      "0%%,\nresults bit-identical to fault-free; the cost is p99). Corrupt "
      "offsets are\ncaught by the per-block CRC32C: the partial rate tracks "
      "the fault rate while\nQPS stays close to clean, since dropped probes "
      "skip distance checks. Mixed is\nthe chaos-soak configuration: "
      "everything at once, still no hard errors.\n");
  return exit_code;
}
