#include "storage/sparse_backing.h"

#include <sys/mman.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace e2lshos::storage {

SparseBacking::~SparseBacking() { Unmap(); }

SparseBacking::SparseBacking(SparseBacking&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)),
      capacity_(std::exchange(other.capacity_, 0)) {}

SparseBacking& SparseBacking::operator=(SparseBacking&& other) noexcept {
  if (this != &other) {
    Unmap();
    base_ = std::exchange(other.base_, nullptr);
    capacity_ = std::exchange(other.capacity_, 0);
  }
  return *this;
}

Status SparseBacking::Map(uint64_t capacity) {
  Unmap();
  if (capacity == 0) return Status::InvalidArgument("capacity must be > 0");
  void* p = ::mmap(nullptr, capacity, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (p == MAP_FAILED) {
    return Status::IoError(std::string("mmap failed: ") + std::strerror(errno));
  }
  base_ = static_cast<uint8_t*>(p);
  capacity_ = capacity;
  return Status::OK();
}

void SparseBacking::Unmap() {
  if (base_ != nullptr) {
    ::munmap(base_, capacity_);
    base_ = nullptr;
    capacity_ = 0;
  }
}

}  // namespace e2lshos::storage
