// The eight-dataset corpus of the paper's Table 1, reproduced as scaled
// synthetic workloads.
//
//   Name    n(x10^3)   d    type    RC    LID
//   MSONG      983    420   float  4.04   23.8
//   SIFT     1,000    128   byte   3.20   21.7
//   GIST     1,000    960   float  2.14   47.3
//   RAND     1,000    100   float  1.42   49.6
//   GLOVE    1,183    100   float  2.20   22.1
//   GAUSS    2,000    512   float  1.14  147.1
//   MNIST    8,000    784   byte   3.00   20.4
//   BIGANN 1,000,000  128   byte   3.55   25.4
//
// Each entry carries a generator spec tuned to approximate the paper's
// hardness (RC ordering) at the same dimensionality, plus the per-dataset
// E2LSH tuning: rho is chosen so L matches the paper's Table 4 values at
// the paper's n (L = n^rho), which at our scaled n yields proportionally
// smaller L — the same methodology at reduced scale.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/generators.h"
#include "lsh/params.h"
#include "util/status.h"

namespace e2lshos::data {

struct DatasetSpec {
  std::string name;
  uint64_t default_n = 0;      ///< Scaled default database size.
  uint64_t default_queries = 100;
  GeneratorSpec gen;
  lsh::E2lshConfig lsh;        ///< Tuned per-dataset E2LSH knobs.

  // Paper reference values (Table 1 / Table 4) for reporting.
  uint64_t paper_n_thousands = 0;
  double paper_rc = 0.0;
  double paper_lid = 0.0;
  uint32_t paper_L = 0;
  const char* paper_type = "";
};

/// All eight Table 1 datasets in paper order.
std::vector<DatasetSpec> PaperDatasets();

/// Look up one dataset spec by (case-sensitive) name, e.g. "SIFT".
Result<DatasetSpec> GetDatasetSpec(const std::string& name);

/// Instantiate a spec: generate base + query sets. `n_override` replaces
/// the default scaled size when > 0.
GeneratedData MakeDataset(const DatasetSpec& spec, uint64_t n_override = 0,
                          uint64_t num_queries_override = 0);

}  // namespace e2lshos::data
