// End-to-end fault-tolerance tests for the storage -> core pipeline:
//
//  * `fault=` / `retry=` as first-class device-URI layers (parse,
//    canonical round-trip, OpenDeviceUri stacking order);
//  * format-v3 block + table checksums: a corrupted bucket block is
//    detected and its candidates dropped (never returned), corruption
//    is visible in QueryStats (corrupt_blocks / dropped_candidates /
//    partial), and persistence round-trips the CRC sidecar;
//  * the updater keeps checksums valid across inserts;
//  * RetryDevice makes transient faults invisible: with retries enabled
//    and the same engine seed, results are bit-identical to a
//    fault-free run;
//  * sharded vs single engine report identical per-query corruption
//    accounting under the same deterministic fault seed, across
//    mem: / sim:cssd*4 / file: backends at shard counts 1 and 4.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/persistence.h"
#include "core/query_engine.h"
#include "core/sharded_engine.h"
#include "core/updater.h"
#include "data/generators.h"
#include "storage/device_registry.h"
#include "storage/faulty_device.h"
#include "storage/memory_device.h"
#include "storage/retry_device.h"

namespace e2lshos::core {
namespace {

struct Fixture {
  data::GeneratedData gen;
  lsh::E2lshParams params;
  std::unique_ptr<storage::MemoryDevice> device;
  std::unique_ptr<StorageIndex> index;
};

Fixture MakeFixture(uint64_t n = 3000, uint32_t dim = 24,
                    bool checksums = true) {
  Fixture f;
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = dim;
  spec.num_clusters = 16;
  spec.cluster_std = 3.0 / std::sqrt(2.0 * dim);
  spec.center_spread = 10.0 * std::sqrt(6.0 / dim);
  spec.seed = 31;
  f.gen = data::Generate("ftol", n, 40, spec);
  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = 1000.0;  // no draining: deterministic candidate sets
  cfg.x_max = f.gen.base.XMax();
  auto params = lsh::ComputeParams(n, dim, cfg);
  EXPECT_TRUE(params.ok());
  f.params = *params;
  auto dev = storage::MemoryDevice::Create(2ULL << 30);
  EXPECT_TRUE(dev.ok());
  f.device = std::move(dev.value());
  BuildOptions opt;
  opt.checksums = checksums;
  auto idx = IndexBuilder::Build(f.gen.base, f.params, f.device.get(), opt);
  EXPECT_TRUE(idx.ok());
  f.index = std::move(idx.value());
  return f;
}

void ExpectBatchesEqual(const BatchResult& got, const BatchResult& want) {
  ASSERT_EQ(got.results.size(), want.results.size());
  for (size_t q = 0; q < want.results.size(); ++q) {
    ASSERT_EQ(got.results[q].size(), want.results[q].size()) << "query " << q;
    for (size_t i = 0; i < want.results[q].size(); ++i) {
      EXPECT_EQ(got.results[q][i].id, want.results[q][i].id)
          << "query " << q << " rank " << i;
      EXPECT_EQ(got.results[q][i].dist, want.results[q][i].dist)
          << "query " << q << " rank " << i;
    }
  }
}

// ---------------------------------------------------------------------------
// URI layer
// ---------------------------------------------------------------------------

TEST(FaultUri, ParseAndCanonicalRoundTrip) {
  auto uri = storage::ParseDeviceUri(
      "sim:cssd?fault=submit:0.01,complete:0.02,corrupt:0.03,stall:500,"
      "seed:42&retry=5,backoff:300,deadline:100000");
  ASSERT_TRUE(uri.ok());
  EXPECT_TRUE(uri->fault);
  EXPECT_DOUBLE_EQ(uri->fault_submit, 0.01);
  EXPECT_DOUBLE_EQ(uri->fault_complete, 0.02);
  EXPECT_DOUBLE_EQ(uri->fault_corrupt, 0.03);
  EXPECT_EQ(uri->fault_stall_usec, 500u);
  EXPECT_GT(uri->fault_stall_rate, 0.0);  // stallp default kicks in
  EXPECT_EQ(uri->fault_seed, 42u);
  EXPECT_EQ(uri->retry_attempts, 5u);
  EXPECT_EQ(uri->retry_backoff_usec, 300u);
  EXPECT_EQ(uri->retry_deadline_usec, 100000u);

  // Canonical form reparses to the same configuration.
  auto again = storage::ParseDeviceUri(uri->ToString());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ToString(), uri->ToString());
  EXPECT_DOUBLE_EQ(again->fault_corrupt, uri->fault_corrupt);
  EXPECT_EQ(again->retry_attempts, uri->retry_attempts);
}

TEST(FaultUri, RejectsMalformedSpecs) {
  for (const char* bad : {
           "mem:?fault=submit:2.0",       // probability out of range
           "mem:?fault=submit:-0.1",      // negative
           "mem:?fault=bogus:0.1",        // unknown sub-key
           "mem:?fault=submit",           // missing value
           "mem:?retry=0x3",              // not a number
       }) {
    EXPECT_FALSE(storage::ParseDeviceUri(bad).ok()) << bad;
  }
}

TEST(FaultUri, OpenStacksFaultInsideRetry) {
  auto dev = storage::OpenDeviceUri(
      "mem:?capacity=1048576&fault=corrupt:0.1&retry=3",
      storage::DeviceUriOpenOptions{});
  ASSERT_TRUE(dev.ok());
  // Layering is innermost-out: bare -> fault -> retry.
  const std::string name = (*dev)->name();
  const size_t faulty_pos = name.find("(faulty)");
  const size_t retry_pos = name.find("(retry)");
  ASSERT_NE(faulty_pos, std::string::npos) << name;
  ASSERT_NE(retry_pos, std::string::npos) << name;
  EXPECT_LT(faulty_pos, retry_pos) << name;
}

// ---------------------------------------------------------------------------
// Checksums (format v3)
// ---------------------------------------------------------------------------

TEST(Checksums, CleanIndexVerifiesEverywhere) {
  auto f = MakeFixture();
  ASSERT_TRUE(f.index->checksums_enabled());
  EXPECT_FALSE(f.index->table_crcs().empty());
  QueryEngine engine(f.index.get(), &f.gen.base);
  auto batch = engine.SearchBatch(f.gen.queries, 10);
  ASSERT_TRUE(batch.ok());
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    EXPECT_EQ(batch->stats[q].corrupt_blocks, 0u) << "query " << q;
    EXPECT_EQ(batch->stats[q].dropped_candidates, 0u) << "query " << q;
    EXPECT_FALSE(batch->stats[q].partial) << "query " << q;
  }
}

TEST(Checksums, CorruptedBlockNeverReturnsCandidates) {
  // Flip one payload byte in EVERY bucket block: with checksums on, no
  // candidate can survive — every returned neighbor would have come
  // from a block whose CRC now fails.
  auto f = MakeFixture();
  const IndexLayout& layout = f.index->layout();
  const IndexSizes sizes = f.index->sizes();
  // Header bytes [kBlockCrcOffset+4, 16) are zero in every valid block
  // and covered by the CRC, so this write is a guaranteed corruption.
  const uint8_t junk = 0x5A;
  for (uint64_t addr = layout.bucket_base;
       addr < layout.bucket_base + sizes.bucket_bytes;
       addr += layout.block_bytes) {
    ASSERT_TRUE(f.device->Write(addr + kBlockCrcOffset + 4, &junk, 1).ok());
  }
  QueryEngine engine(f.index.get(), &f.gen.base);
  auto batch = engine.SearchBatch(f.gen.queries, 10);
  ASSERT_TRUE(batch.ok());
  uint64_t corrupt = 0, dropped = 0;
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    EXPECT_TRUE(batch->results[q].empty()) << "query " << q;
    EXPECT_TRUE(batch->stats[q].partial) << "query " << q;
    corrupt += batch->stats[q].corrupt_blocks;
    dropped += batch->stats[q].dropped_candidates;
  }
  EXPECT_GT(corrupt, 0u);
  EXPECT_GT(dropped, 0u);
}

TEST(Checksums, CorruptedTableSectorIsDetected) {
  // Scribble over the whole table region: chain-head addresses can no
  // longer be trusted, so queries must drop those probes (counted in
  // corrupt_blocks) instead of following garbage pointers.
  auto f = MakeFixture();
  const IndexLayout& layout = f.index->layout();
  const std::vector<uint8_t> junk(4096, 0xEE);
  for (uint64_t off = 0; off < layout.total_table_bytes();
       off += junk.size()) {
    const uint32_t len = static_cast<uint32_t>(std::min<uint64_t>(
        junk.size(), layout.total_table_bytes() - off));
    ASSERT_TRUE(
        f.device->Write(layout.table_base + off, junk.data(), len).ok());
  }
  QueryEngine engine(f.index.get(), &f.gen.base);
  auto batch = engine.SearchBatch(f.gen.queries, 10);
  ASSERT_TRUE(batch.ok());
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    EXPECT_TRUE(batch->results[q].empty()) << "query " << q;
    EXPECT_GT(batch->stats[q].corrupt_blocks, 0u) << "query " << q;
    EXPECT_TRUE(batch->stats[q].partial) << "query " << q;
  }
}

TEST(Checksums, DisabledBuildSkipsVerification) {
  auto f = MakeFixture(1500, 24, /*checksums=*/false);
  EXPECT_FALSE(f.index->checksums_enabled());
  EXPECT_TRUE(f.index->table_crcs().empty());
  QueryEngine engine(f.index.get(), &f.gen.base);
  auto batch = engine.SearchBatch(f.gen.queries, 5);
  ASSERT_TRUE(batch.ok());
}

TEST(Checksums, PersistenceRoundTripsCrcSidecar) {
  auto f = MakeFixture(1500);
  const std::string path = ::testing::TempDir() + "ft_meta_" +
                           std::to_string(::getpid()) + ".bin";
  ASSERT_TRUE(SaveIndexMeta(*f.index, path).ok());
  auto loaded = LoadIndexMeta(path, f.device.get());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)->checksums_enabled());
  EXPECT_EQ((*loaded)->table_crcs(), f.index->table_crcs());

  QueryEngine before(f.index.get(), &f.gen.base);
  QueryEngine after(loaded->get(), &f.gen.base);
  auto want = before.SearchBatch(f.gen.queries, 10);
  auto got = after.SearchBatch(f.gen.queries, 10);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  ExpectBatchesEqual(*got, *want);
  std::remove(path.c_str());
}

TEST(Checksums, PersistenceRoundTripsChecksumlessIndex) {
  auto f = MakeFixture(1500, 24, /*checksums=*/false);
  const std::string path = ::testing::TempDir() + "ft_meta_v2ish_" +
                           std::to_string(::getpid()) + ".bin";
  ASSERT_TRUE(SaveIndexMeta(*f.index, path).ok());
  auto loaded = LoadIndexMeta(path, f.device.get());
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE((*loaded)->checksums_enabled());
  EXPECT_TRUE((*loaded)->table_crcs().empty());
  std::remove(path.c_str());
}

TEST(Checksums, UpdaterMaintainsChecksumsAcrossInserts) {
  auto f = MakeFixture(2000);
  // Insert 200 fresh objects (perturbed copies of existing rows): every
  // touched block is re-stamped and every touched table sector's CRC
  // refreshed, so a full-verification query stays clean.
  data::Dataset& base = f.gen.base;
  IndexUpdater updater(f.index.get());
  std::vector<float> row(base.dim());
  for (uint32_t i = 0; i < 200; ++i) {
    const float* src = base.Row(i % 2000);
    for (uint32_t d = 0; d < base.dim(); ++d) row[d] = src[d] + 0.25f;
    base.Append(row.data());
    ASSERT_TRUE(updater.Insert(base, 2000 + i).ok()) << "insert " << i;
  }
  QueryEngine engine(f.index.get(), &f.gen.base);
  auto batch = engine.SearchBatch(f.gen.queries, 10);
  ASSERT_TRUE(batch.ok());
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    EXPECT_EQ(batch->stats[q].corrupt_blocks, 0u) << "query " << q;
    EXPECT_FALSE(batch->stats[q].partial) << "query " << q;
  }
}

// ---------------------------------------------------------------------------
// Retry invisibility
// ---------------------------------------------------------------------------

TEST(RetryInvisibility, RetriedTransientFaultsDoNotChangeResults) {
  auto f = MakeFixture();
  QueryEngine clean(f.index.get(), &f.gen.base);
  auto want = clean.SearchBatch(f.gen.queries, 10);
  ASSERT_TRUE(want.ok());

  storage::FaultyDevice::Options fopt;
  fopt.submit_fail_rate = 0.05;
  fopt.completion_fail_rate = 0.05;
  fopt.seed = 77;
  storage::FaultyDevice faulty(f.device.get(), fopt);
  storage::RetryDevice::Options ropt;
  ropt.max_attempts = 8;  // P(8 consecutive transient failures) ~ 0
  ropt.backoff_usec = 50;
  storage::RetryDevice retry(&faulty, ropt);

  auto view = f.index->WithDevice(&retry);
  QueryEngine engine(view.get(), &f.gen.base);
  auto got = engine.SearchBatch(f.gen.queries, 10);
  ASSERT_TRUE(got.ok());

  // Faults were injected and absorbed; no query saw an I/O error.
  EXPECT_GT(faulty.injected_submit_failures() +
                faulty.injected_completion_failures(),
            0u);
  EXPECT_GT(retry.retries(), 0u);
  EXPECT_EQ(retry.retries_exhausted(), 0u);
  for (uint64_t q = 0; q < f.gen.queries.n(); ++q) {
    EXPECT_EQ(got->stats[q].io_errors, 0u) << "query " << q;
    EXPECT_FALSE(got->stats[q].partial) << "query " << q;
  }
  // Bit-identical to the fault-free run.
  ExpectBatchesEqual(*got, *want);

  // The retry counters surface through DeviceStats for the daemon.
  const storage::DeviceStats stats = retry.stats();
  EXPECT_EQ(stats.retries, retry.retries());
  EXPECT_GT(stats.faults_injected, 0u);
}

// ---------------------------------------------------------------------------
// Sharded vs single corruption accounting (deterministic fault seed)
// ---------------------------------------------------------------------------

TEST(ShardedFaultParity, IdenticalAccountingAcrossBackendsAndShards) {
  data::GeneratorSpec spec;
  spec.kind = data::GeneratorKind::kClustered;
  spec.dim = 16;
  spec.num_clusters = 8;
  spec.cluster_std = 3.0 / std::sqrt(32.0);
  spec.center_spread = 10.0 * std::sqrt(6.0 / 16.0);
  spec.seed = 5;
  auto gen = data::Generate("ftol_shard", 2000, 24, spec);
  lsh::E2lshConfig cfg;
  cfg.rho = 0.25;
  cfg.s_factor = 1000.0;
  cfg.x_max = gen.base.XMax();
  auto params = lsh::ComputeParams(gen.base.n(), gen.base.dim(), cfg);
  ASSERT_TRUE(params.ok());

  const std::string file_path = ::testing::TempDir() + "ft_parity_" +
                                std::to_string(::getpid()) + ".img";
  const std::vector<std::string> uris = {
      "mem:?capacity=268435456",
      "sim:cssd*4",
      "file:" + file_path + "?capacity=268435456",
  };
  storage::DeviceUriOpenOptions open_opt;
  open_opt.create = true;  // file: backend: create the backing image
  // Cap sim: children below their multi-TB nameplate — sanitizer runs
  // cannot map that much even sparsely.
  open_opt.capacity = 256ULL << 20;
  for (const std::string& uri : uris) {
    auto dev = storage::OpenDeviceUri(uri, open_opt);
    ASSERT_TRUE(dev.ok()) << uri;
    auto idx = IndexBuilder::Build(gen.base, *params, dev->get());
    ASSERT_TRUE(idx.ok()) << uri;

    // Corruption is a pure function of (seed, offset): every engine
    // shape over the same device image must report the same per-query
    // corruption accounting.
    storage::FaultyDevice::Options fopt;
    fopt.corrupt_rate = 0.25;
    fopt.seed = 99;
    storage::FaultyDevice faulty(dev->get(), fopt);
    auto view = (*idx)->WithDevice(&faulty);

    QueryEngine single(view.get(), &gen.base);
    auto ref = single.SearchBatch(gen.queries, 10);
    ASSERT_TRUE(ref.ok()) << uri;
    uint64_t ref_corrupt = 0;
    for (uint64_t q = 0; q < gen.queries.n(); ++q) {
      ref_corrupt += ref->stats[q].corrupt_blocks;
    }
    EXPECT_GT(ref_corrupt, 0u) << uri;  // the fault plane actually fired

    for (const uint32_t shards : {1u, 4u}) {
      ShardOptions sopt;
      sopt.num_shards = shards;
      ShardedQueryEngine engine(view.get(), &gen.base, sopt);
      auto got = engine.SearchBatch(gen.queries, 10);
      ASSERT_TRUE(got.ok()) << uri << " shards=" << shards;
      for (uint64_t q = 0; q < gen.queries.n(); ++q) {
        EXPECT_EQ(got->stats[q].corrupt_blocks, ref->stats[q].corrupt_blocks)
            << uri << " shards=" << shards << " query " << q;
        EXPECT_EQ(got->stats[q].dropped_candidates,
                  ref->stats[q].dropped_candidates)
            << uri << " shards=" << shards << " query " << q;
        EXPECT_EQ(got->stats[q].partial, ref->stats[q].partial)
            << uri << " shards=" << shards << " query " << q;
      }
      ExpectBatchesEqual(*got, *ref);
    }
  }
  std::remove(file_path.c_str());
}

}  // namespace
}  // namespace e2lshos::core
