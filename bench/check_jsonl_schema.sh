#!/usr/bin/env sh
# Diff the row *schema* of a bench's JSONL output against a checked-in
# baseline, so a renamed/dropped/added key fails CI fast without ever
# flaking on measured values.
#
#   bench/check_jsonl_schema.sh rows.jsonl bench/baselines/NAME.schema
#
# The schema of a file is the sorted set of distinct key signatures,
# one per line, where a row's signature is its comma-joined key list in
# emission order (util::JsonRow keeps insertion order, so the signature
# is deterministic). A bench emitting several row kinds (e.g. table2 +
# table5 rows) contributes one signature per kind.
#
# Extraction is textual (keys matched as [{,]"key":), which is exact for
# the flat rows util::JsonRow emits — simple keys, scalar values. To
# regenerate a baseline after an intentional schema change:
#
#   ./build/bench_table2_devices --fast --json rows.jsonl
#   bench/check_jsonl_schema.sh rows.jsonl /dev/null; # prints the actual
#   bench/check_jsonl_schema.sh --print rows.jsonl \
#       > bench/baselines/bench_table2_devices.schema
set -eu

print_only=0
if [ "${1:-}" = "--print" ]; then
  print_only=1
  shift
fi
rows="$1"

signatures() {
  awk '
    {
      line = $0; keys = "";
      while (match(line, /[{,]"[A-Za-z0-9_.-]+":/)) {
        k = substr(line, RSTART + 2, RLENGTH - 4);
        keys = keys == "" ? k : keys "," k;
        line = substr(line, RSTART + RLENGTH);
      }
      if (keys != "") print keys;
    }' "$1" | sort -u
}

if [ "$print_only" = "1" ]; then
  signatures "$rows"
  exit 0
fi

baseline="$2"
actual="$(mktemp)"
trap 'rm -f "$actual"' EXIT
signatures "$rows" > "$actual"

if ! diff -u "$baseline" "$actual"; then
  echo "" >&2
  echo "JSONL row schema of $rows diverged from $baseline." >&2
  echo "If the change is intentional, regenerate the baseline with:" >&2
  echo "  $0 --print $rows > $baseline" >&2
  exit 1
fi
echo "schema OK: $rows matches $baseline"
