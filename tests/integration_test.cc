// End-to-end integration tests: the full paper pipeline on a scaled
// SIFT-like dataset — all four methods (in-memory E2LSH, E2LSHoS, SRS,
// QALSH) answering the same queries, with the paper's qualitative
// relationships asserted.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/qalsh.h"
#include "baselines/srs.h"
#include "core/builder.h"
#include "core/query_engine.h"
#include "data/ground_truth.h"
#include "data/registry.h"
#include "e2lsh/in_memory.h"
#include "storage/device_registry.h"
#include "storage/file_device.h"
#include "storage/interface_model.h"
#include "storage/memory_device.h"

namespace e2lshos {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto spec = data::GetDatasetSpec("SIFT");
    ASSERT_TRUE(spec.ok());
    spec_ = new data::DatasetSpec(*spec);
    gen_ = new data::GeneratedData(data::MakeDataset(*spec_, 10000, 50));
    gt_ = new data::GroundTruth(
        data::GroundTruth::Compute(gen_->base, gen_->queries, 100, 1));

    lsh::E2lshConfig cfg = spec_->lsh;
    cfg.x_max = gen_->base.XMax();
    auto params = lsh::ComputeParams(gen_->base.n(), gen_->base.dim(), cfg);
    ASSERT_TRUE(params.ok());
    params_ = new lsh::E2lshParams(*params);
  }

  static void TearDownTestSuite() {
    delete params_;
    delete gt_;
    delete gen_;
    delete spec_;
  }

  static data::DatasetSpec* spec_;
  static data::GeneratedData* gen_;
  static data::GroundTruth* gt_;
  static lsh::E2lshParams* params_;
};

data::DatasetSpec* PipelineTest::spec_ = nullptr;
data::GeneratedData* PipelineTest::gen_ = nullptr;
data::GroundTruth* PipelineTest::gt_ = nullptr;
lsh::E2lshParams* PipelineTest::params_ = nullptr;

TEST_F(PipelineTest, AllMethodsReachUsableAccuracy) {
  // In-memory E2LSH.
  auto mem = e2lsh::InMemoryE2lsh::Build(gen_->base, *params_);
  ASSERT_TRUE(mem.ok());
  const double r_e2lsh =
      data::MeanOverallRatio(*gt_, (*mem)->SearchBatch(gen_->queries, 1).results, 1);

  // E2LSHoS on an instant device.
  auto dev = storage::MemoryDevice::Create(4ULL << 30);
  ASSERT_TRUE(dev.ok());
  auto idx = core::IndexBuilder::Build(gen_->base, *params_, dev->get());
  ASSERT_TRUE(idx.ok());
  core::QueryEngine engine(idx->get(), &gen_->base);
  auto os_batch = engine.SearchBatch(gen_->queries, 1);
  ASSERT_TRUE(os_batch.ok());
  const double r_os = data::MeanOverallRatio(*gt_, os_batch->results, 1);

  // SRS.
  baselines::SrsConfig srs_cfg;
  srs_cfg.max_verify = gen_->base.n() / 10;
  auto srs = baselines::Srs::Build(gen_->base, srs_cfg);
  ASSERT_TRUE(srs.ok());
  const double r_srs =
      data::MeanOverallRatio(*gt_, (*srs)->SearchBatch(gen_->queries, 1).results, 1);

  // QALSH.
  auto qalsh = baselines::Qalsh::Build(gen_->base, {});
  ASSERT_TRUE(qalsh.ok());
  const double r_qalsh = data::MeanOverallRatio(
      *gt_, (*qalsh)->SearchBatch(gen_->queries, 1).results, 1);

  EXPECT_LT(r_e2lsh, 1.35);
  EXPECT_LT(r_os, 1.35);
  EXPECT_LT(r_srs, 1.35);
  EXPECT_LT(r_qalsh, 1.35);
}

TEST_F(PipelineTest, E2lshComputationallyCheaperThanQalsh) {
  // Paper Observation 1 (Fig. 2): per-query CPU cost of E2LSH is well
  // below the small-index methods; QALSH is the consistently slowest.
  // (The E2LSH-vs-SRS gap widens with n and is exercised at larger scale
  // by bench_fig2; at this test's 10k points only the QALSH gap is
  // guaranteed to be decisive.)
  auto mem = e2lsh::InMemoryE2lsh::Build(gen_->base, *params_);
  ASSERT_TRUE(mem.ok());
  auto qalsh = baselines::Qalsh::Build(gen_->base, {});
  ASSERT_TRUE(qalsh.ok());

  const auto e2lsh_batch = (*mem)->SearchBatch(gen_->queries, 1);
  const auto qalsh_batch = (*qalsh)->SearchBatch(gen_->queries, 1);
  EXPECT_LT(e2lsh_batch.wall_ns, qalsh_batch.wall_ns);
}

TEST_F(PipelineTest, IoCountInPaperBallpark) {
  // Paper Observation 2: several hundred I/Os per query for many
  // workloads (Table 4 spans ~49 to ~791 at full scale; our scaled
  // datasets land lower but must stay within sane bounds).
  auto mem = e2lsh::InMemoryE2lsh::Build(gen_->base, *params_);
  ASSERT_TRUE(mem.ok());
  const auto batch = (*mem)->SearchBatch(gen_->queries, 1);
  const double n_io = batch.MeanIosInfiniteBlock();
  EXPECT_GT(n_io, 5.0);
  EXPECT_LT(n_io, 5000.0);
}

TEST_F(PipelineTest, E2lshosOnFileDeviceWorks) {
  // Real filesystem I/O path end to end.
  const std::string path = ::testing::TempDir() + "/e2_integration_index.bin";
  storage::FileDevice::Options opt;
  opt.capacity = 4ULL << 30;
  opt.io_threads = 2;
  auto dev = storage::FileDevice::Create(path, opt);
  ASSERT_TRUE(dev.ok());
  auto idx = core::IndexBuilder::Build(gen_->base, *params_, dev->get());
  ASSERT_TRUE(idx.ok());
  core::QueryEngine engine(idx->get(), &gen_->base, {.num_contexts = 8});
  auto batch = engine.SearchBatch(gen_->queries, 1);
  ASSERT_TRUE(batch.ok());
  const double ratio = data::MeanOverallRatio(*gt_, batch->results, 1);
  EXPECT_LT(ratio, 1.35);
  std::remove(path.c_str());
}

TEST_F(PipelineTest, AsyncBeatsSyncOnSlowStorage) {
  // Sec. 6.5: the asynchronous engine hides storage latency; with a
  // latency-bound simulated device, sync execution is far slower.
  storage::DeviceModel model = storage::GetDeviceModel(storage::DeviceKind::kCssd);
  model.service_time_ns = 40000;  // 40 us latency, 25 kIOPS at QD1
  model.capacity_bytes = 4ULL << 30;
  auto ssd = storage::SimulatedDevice::Create(model);
  ASSERT_TRUE(ssd.ok());
  auto idx = core::IndexBuilder::Build(gen_->base, *params_, ssd->get());
  ASSERT_TRUE(idx.ok());

  data::Dataset few("few", gen_->queries.dim());
  for (uint64_t q = 0; q < 10; ++q) few.Append(gen_->queries.Row(q));

  core::QueryEngine async_engine(idx->get(), &gen_->base, {.num_contexts = 32});
  auto async_res = async_engine.SearchBatch(few, 1);
  ASSERT_TRUE(async_res.ok());

  core::QueryEngine sync_engine(idx->get(), &gen_->base, {.synchronous = true});
  auto sync_res = sync_engine.SearchBatch(few, 1);
  ASSERT_TRUE(sync_res.ok());

  EXPECT_GT(static_cast<double>(sync_res->wall_ns),
            1.5 * static_cast<double>(async_res->wall_ns));
}

TEST_F(PipelineTest, MemoryFootprintStory) {
  // Table 6: E2LSHoS keeps a large index on storage but only a small
  // DRAM-resident part, comparable to SRS's whole index.
  auto dev = storage::MemoryDevice::Create(4ULL << 30);
  ASSERT_TRUE(dev.ok());
  auto idx = core::IndexBuilder::Build(gen_->base, *params_, dev->get());
  ASSERT_TRUE(idx.ok());
  auto mem = e2lsh::InMemoryE2lsh::Build(gen_->base, *params_);
  ASSERT_TRUE(mem.ok());

  const auto sizes = (*idx)->sizes();
  // On-storage index far exceeds the DRAM-resident remainder.
  EXPECT_GT(sizes.storage_bytes, 8 * sizes.dram_index_bytes);
  // In-memory E2LSH pays the full index in DRAM.
  EXPECT_GT((*mem)->IndexMemoryBytes(), 4 * sizes.dram_index_bytes);
}

}  // namespace
}  // namespace e2lshos
