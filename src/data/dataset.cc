#include "data/dataset.h"

#include <cmath>

namespace e2lshos::data {

float Dataset::XMax() const {
  float mx = 0.f;
  for (const float v : data_) mx = std::max(mx, std::abs(v));
  return mx;
}

Result<Dataset> Dataset::SplitTail(uint64_t count) {
  if (count > n_) return Status::InvalidArgument("split larger than dataset");
  Dataset tail(name_ + "-tail", d_);
  tail.Reserve(count);
  const uint64_t start = n_ - count;
  for (uint64_t i = start; i < n_; ++i) tail.Append(Row(i));
  data_.resize(start * d_);
  n_ = start;
  return tail;
}

}  // namespace e2lshos::data
