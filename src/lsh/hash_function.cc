#include "lsh/hash_function.h"

#include <cmath>

#include "util/distance.h"
#include "util/mathutil.h"

namespace e2lshos::lsh {

LshFunction::LshFunction(uint32_t dim, double w, util::Rng& rng) : w_(w) {
  a_.resize(dim);
  for (auto& v : a_) v = static_cast<float>(rng.Gaussian());
  b_ = rng.Uniform(0.0, w);
}

int32_t LshFunction::Hash(const float* o) const {
  const double proj = static_cast<double>(util::Dot(a_.data(), o, a_.size())) + b_;
  return static_cast<int32_t>(std::floor(proj / w_));
}

double LshFunction::Project(const float* o) const {
  return (static_cast<double>(util::Dot(a_.data(), o, a_.size())) + b_) / w_;
}

CompoundHash::CompoundHash(uint32_t dim, uint32_t m, double w, util::Rng& rng) {
  funcs_.reserve(m);
  for (uint32_t j = 0; j < m; ++j) funcs_.emplace_back(dim, w, rng);
}

uint32_t CompoundHash::Fold(const int32_t* values, uint32_t m) {
  // FNV-1a over the component hashes, then a splitmix-style avalanche so
  // the low u bits used as the table index are well mixed.
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint32_t j = 0; j < m; ++j) {
    h ^= static_cast<uint32_t>(values[j]);
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<uint32_t>(h);
}

uint32_t CompoundHash::Hash32(const float* o) const {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const auto& f : funcs_) {
    h ^= static_cast<uint32_t>(f.Hash(o));
    h *= 0x100000001b3ULL;
  }
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return static_cast<uint32_t>(h);
}

void CompoundHash::HashVector(const float* o, int32_t* out) const {
  for (uint32_t j = 0; j < funcs_.size(); ++j) out[j] = funcs_[j].Hash(o);
}

void CompoundHash::HashWithResiduals(const float* o, int32_t* floors,
                                     float* residuals) const {
  for (uint32_t j = 0; j < funcs_.size(); ++j) {
    const double proj = funcs_[j].Project(o);
    const double fl = std::floor(proj);
    floors[j] = static_cast<int32_t>(fl);
    residuals[j] = static_cast<float>(proj - fl);
  }
}

double CollisionProbability(double x) {
  if (x <= 0.0) return 0.0;
  const double kSqrt2Pi = 2.5066282746310002;
  return 1.0 - 2.0 * util::NormalCdf(-x) -
         (2.0 / (kSqrt2Pi * x)) * (1.0 - std::exp(-0.5 * x * x));
}

}  // namespace e2lshos::lsh
