#include "storage/device_registry.h"

#include "storage/file_device.h"
#include "storage/uring_device.h"

namespace e2lshos::storage {

DeviceModel GetDeviceModel(DeviceKind kind) {
  DeviceModel m;
  switch (kind) {
    case DeviceKind::kCssd:
      // QD1: 7.2 kIOPS -> 138.9 us; QD128: 273 kIOPS -> 38 units.
      m.name = "cSSD";
      m.service_time_ns = 138900;
      m.parallel_units = 38;
      m.capacity_bytes = 2ULL << 40;  // 2 TB
      break;
    case DeviceKind::kEssd:
      // QD1: 27.6 kIOPS -> 36.2 us; QD128: 1400 kIOPS -> 51 units.
      m.name = "eSSD";
      m.service_time_ns = 36230;
      m.parallel_units = 51;
      m.capacity_bytes = 800ULL << 30;  // 800 GB
      break;
    case DeviceKind::kXlfdd:
      // QD1: 132.3 kIOPS -> 7.56 us; QD128: 3860 kIOPS -> 29 units.
      m.name = "XLFDD";
      m.service_time_ns = 7560;
      m.parallel_units = 29;
      m.capacity_bytes = 520ULL << 30;  // 520 GB
      break;
    case DeviceKind::kHdd:
      // QD1: 0.21 kIOPS -> 4.76 ms; NCQ gives a modest boost at depth.
      m.name = "HDD";
      m.service_time_ns = 4760000;
      m.parallel_units = 3;
      m.capacity_bytes = 10ULL << 40;  // 10 TB
      break;
  }
  m.queue_capacity = 1024;
  return m;
}

std::vector<std::pair<DeviceKind, std::string>> AllDeviceKinds() {
  return {{DeviceKind::kCssd, "cSSD"},
          {DeviceKind::kEssd, "eSSD"},
          {DeviceKind::kXlfdd, "XLFDD"},
          {DeviceKind::kHdd, "HDD"}};
}

Result<std::unique_ptr<SimulatedDevice>> MakeDevice(DeviceKind kind) {
  return SimulatedDevice::Create(GetDeviceModel(kind));
}

std::string StorageConfig::DisplayName() const {
  return GetDeviceModel(kind).name + " x " + std::to_string(count);
}

std::vector<StorageConfig> Table5Configs() {
  return {{DeviceKind::kCssd, 1},
          {DeviceKind::kCssd, 4},
          {DeviceKind::kEssd, 1},
          {DeviceKind::kEssd, 8},
          {DeviceKind::kXlfdd, 12}};
}

Result<FileBackendKind> ParseFileBackendKind(const std::string& name) {
  if (name == "file") return FileBackendKind::kFile;
  if (name == "uring") return FileBackendKind::kUring;
  return Status::InvalidArgument("unknown device backend '" + name +
                                 "' (expected file|uring)");
}

const char* FileBackendName(FileBackendKind kind) {
  return kind == FileBackendKind::kUring ? "uring" : "file";
}

bool FileBackendAvailable(FileBackendKind kind) {
  return kind == FileBackendKind::kFile || UringDevice::Available();
}

namespace {

FileDevice::Options ToFileOptions(const FileBackendOptions& options) {
  FileDevice::Options opt;
  opt.capacity = options.capacity;
  opt.queue_capacity = options.queue_capacity;
  opt.direct_io = options.direct_io;
  opt.io_threads = options.io_threads;
  return opt;
}

UringDevice::Options ToUringOptions(const FileBackendOptions& options) {
  UringDevice::Options opt;
  opt.capacity = options.capacity;
  opt.queue_capacity = options.queue_capacity;
  opt.direct_io = options.direct_io;
  opt.sqpoll = options.sqpoll;
  return opt;
}

}  // namespace

Result<std::unique_ptr<BlockDevice>> CreateFileBackend(
    FileBackendKind kind, const std::string& path,
    const FileBackendOptions& options) {
  if (kind == FileBackendKind::kUring) {
    E2_ASSIGN_OR_RETURN(auto dev,
                        UringDevice::Create(path, ToUringOptions(options)));
    return std::unique_ptr<BlockDevice>(std::move(dev));
  }
  E2_ASSIGN_OR_RETURN(auto dev, FileDevice::Create(path, ToFileOptions(options)));
  return std::unique_ptr<BlockDevice>(std::move(dev));
}

Result<std::unique_ptr<BlockDevice>> OpenFileBackend(
    FileBackendKind kind, const std::string& path,
    const FileBackendOptions& options) {
  if (kind == FileBackendKind::kUring) {
    E2_ASSIGN_OR_RETURN(auto dev,
                        UringDevice::Open(path, ToUringOptions(options)));
    return std::unique_ptr<BlockDevice>(std::move(dev));
  }
  E2_ASSIGN_OR_RETURN(auto dev, FileDevice::Open(path, ToFileOptions(options)));
  return std::unique_ptr<BlockDevice>(std::move(dev));
}

}  // namespace e2lshos::storage
